// Checks the paper's "this predicate is first-order definable" assertions
// by evaluating the defining RegFO formulas (core/definability.h) against
// the built-in predicates, region by region. Regions are pinned through
// their witness points with in(...) atoms — on arrangements the containing
// region is unique, so the pinning is exact.

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "core/definability.h"
#include "core/evaluator.h"
#include "db/region_extension.h"

namespace lcdb {
namespace {

ConstraintDatabase Db(const std::string& formula,
                      const std::vector<std::string>& vars) {
  auto f = ParseDnf(formula, vars);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, vars);
}

/// "p1, p2, ..." rendering of a witness point as query terms.
std::string PointTerms(const Vec& p) {
  std::string out;
  for (size_t i = 0; i < p.size(); ++i) {
    if (i > 0) out += ", ";
    out += p[i].ToString();
  }
  return out;
}

/// Evaluates a formula text with free region variable R pinned to the
/// region containing `witness`.
bool EvalUnary(const RegionExtension& ext, const std::string& formula,
               const Vec& witness) {
  std::string query = "exists R . (in(" + PointTerms(witness) + "; R) & (" +
                      formula + "))";
  auto r = EvaluateSentenceText(ext, query);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << query;
  return r.ok() && *r;
}

/// Same with free R and R' pinned to two regions.
bool EvalBinary(const RegionExtension& ext, const std::string& formula,
                const Vec& w1, const Vec& w2) {
  std::string query = "exists R R' . (in(" + PointTerms(w1) + "; R) & in(" +
                      PointTerms(w2) + "; R') & (" + formula + "))";
  auto r = EvaluateSentenceText(ext, query);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << "\nquery: " << query;
  return r.ok() && *r;
}

TEST(DefinabilityTest, Adjacency1D) {
  ConstraintDatabase db = Db("(x > 0 & x < 1) | x = 3", {"x"});
  auto ext = MakeArrangementExtension(db);
  const std::string adj = AdjDefinitionText(1);
  for (size_t a = 0; a < ext->num_regions(); ++a) {
    for (size_t b = 0; b < ext->num_regions(); ++b) {
      if (a == b) continue;  // the built-in is irreflexive by convention
      EXPECT_EQ(EvalBinary(*ext, adj, ext->RegionWitness(a),
                           ext->RegionWitness(b)),
                ext->Adjacent(a, b))
          << "regions " << a << ", " << b;
    }
  }
}

TEST(DefinabilityTest, Adjacency2DSpotChecks) {
  ConstraintDatabase db = Db("x >= 0 & y >= 0 & x + y <= 4", {"x", "y"});
  auto ext = MakeArrangementExtension(db);
  const std::string adj = AdjDefinitionText(2);
  // Sample pairs: every region against the interior cell and one vertex.
  size_t interior = ext->num_regions(), vertex = ext->num_regions();
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    if (ext->RegionSubsetOfS(r) && ext->RegionDim(r) == 2) interior = r;
    if (ext->RegionDim(r) == 0 && vertex == ext->num_regions()) vertex = r;
  }
  ASSERT_LT(interior, ext->num_regions());
  ASSERT_LT(vertex, ext->num_regions());
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    for (size_t probe : {interior, vertex}) {
      if (r == probe) continue;
      EXPECT_EQ(EvalBinary(*ext, adj, ext->RegionWitness(r),
                           ext->RegionWitness(probe)),
                ext->Adjacent(r, probe))
          << "regions " << r << ", " << probe;
    }
  }
}

TEST(DefinabilityTest, Boundedness) {
  ConstraintDatabase db = Db("(x >= 0 & x <= 1) | x = 9", {"x"});
  auto ext = MakeArrangementExtension(db);
  const std::string bounded = BoundedDefinitionText(1);
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    EXPECT_EQ(EvalUnary(*ext, bounded, ext->RegionWitness(r)),
              ext->RegionBounded(r))
        << "region " << r;
  }
}

TEST(DefinabilityTest, Boundedness2D) {
  ConstraintDatabase db = Db("x >= 0 & y >= 0 & x + y <= 4", {"x", "y"});
  auto ext = MakeArrangementExtension(db);
  const std::string bounded = BoundedDefinitionText(2);
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    EXPECT_EQ(EvalUnary(*ext, bounded, ext->RegionWitness(r)),
              ext->RegionBounded(r))
        << "region " << r;
  }
}

TEST(DefinabilityTest, ZeroDimensionality) {
  ConstraintDatabase db = Db("(x > 0 & x < 1) | x = 3 | x = 5", {"x"});
  auto ext = MakeArrangementExtension(db);
  const std::string zero = ZeroDimDefinitionText(1);
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    EXPECT_EQ(EvalUnary(*ext, zero, ext->RegionWitness(r)),
              ext->RegionDim(r) == 0)
        << "region " << r;
  }
}

TEST(DefinabilityTest, LexOrderMatchesRbitRanks) {
  ConstraintDatabase db = Db("x = 2 | x = -1 | x = 7", {"x"});
  auto ext = MakeArrangementExtension(db);
  const std::string less = ZeroDimLexLessText(1);
  const auto& zeros = ext->ZeroDimRegions();
  ASSERT_EQ(zeros.size(), 3u);
  for (size_t i = 0; i < zeros.size(); ++i) {
    for (size_t j = 0; j < zeros.size(); ++j) {
      EXPECT_EQ(EvalBinary(*ext, less, ext->ZeroDimPoint(zeros[i]),
                           ext->ZeroDimPoint(zeros[j])),
                i < j)
          << i << " vs " << j;
    }
  }
}

TEST(DefinabilityTest, LexOrder2D) {
  ConstraintDatabase db =
      Db("(x = 0 & y = 1) | (x = 0 & y = 0) | (x = 1 & y = 0)", {"x", "y"});
  auto ext = MakeArrangementExtension(db);
  const std::string less = ZeroDimLexLessText(2);
  const auto& zeros = ext->ZeroDimRegions();
  // The arrangement of the three points' hyperplanes has more vertices than
  // the three relation points; the ranks still order lexicographically.
  for (size_t i = 0; i < zeros.size(); ++i) {
    for (size_t j = 0; j < zeros.size(); ++j) {
      EXPECT_EQ(EvalBinary(*ext, less, ext->ZeroDimPoint(zeros[i]),
                           ext->ZeroDimPoint(zeros[j])),
                i < j)
          << i << " vs " << j;
    }
  }
}

}  // namespace
}  // namespace lcdb
