#include <random>

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "decomp/decomposition.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

Conjunction ParseConj(const std::string& text) {
  auto r = ParseDnf(text, kXY);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r->disjuncts()[0];
}

bool Covered(const std::vector<DecompRegion>& regions, const Vec& p) {
  for (const DecompRegion& r : regions) {
    if (r.region.Contains(p)) return true;
  }
  return false;
}

size_t CountKind(const std::vector<DecompRegion>& regions, DecompKind kind) {
  size_t n = 0;
  for (const DecompRegion& r : regions) {
    if (r.kind == kind) ++n;
  }
  return n;
}

// The paper's Figures 7/8 worked example: a convex pentagon decomposes into
// three 2-dimensional inner regions (fan from p1), the two inner diagonals
// p1p3 and p1p4, five outer edges and five vertices — 15 regions.
TEST(DecompositionTest, PaperPentagonExample) {
  Conjunction pentagon = ParseConj(
      "x + 2y >= 0 & 2x - y <= 5 & 2x + y <= 7 & x - 2y >= -4 & x >= 0");
  std::vector<DecompRegion> regions = DecomposeDisjunct(pentagon, 0);
  auto counts = RegionCountsByDimension(regions, 2);
  EXPECT_EQ(counts[0], 5u);
  EXPECT_EQ(counts[1], 7u);
  EXPECT_EQ(counts[2], 3u);
  EXPECT_EQ(regions.size(), 15u);
  // The three triangles of the fan are the only 2-dimensional regions and
  // all are inner.
  for (const DecompRegion& r : regions) {
    if (r.region.Dimension() == 2) EXPECT_EQ(r.kind, DecompKind::kInner);
  }
  // The inner diagonals p1p3 and p1p4 from p_low = (0,0).
  GeneratorRegion diag13 = GeneratorRegion::OpenSegment(V({0, 0}), V({3, 1}));
  GeneratorRegion diag14 = GeneratorRegion::OpenSegment(V({0, 0}), V({2, 3}));
  size_t inner_diagonals = 0;
  for (const DecompRegion& r : regions) {
    if (r.region == diag13 || r.region == diag14) {
      EXPECT_EQ(r.kind, DecompKind::kInner);
      ++inner_diagonals;
    }
  }
  EXPECT_EQ(inner_diagonals, 2u);
  // Boundary edges are outer.
  GeneratorRegion edge12 = GeneratorRegion::OpenSegment(V({0, 0}), V({2, -1}));
  for (const DecompRegion& r : regions) {
    if (r.region == edge12) EXPECT_EQ(r.kind, DecompKind::kOuter);
  }
}

TEST(DecompositionTest, PentagonCoverage) {
  Conjunction pentagon = ParseConj(
      "x + 2y >= 0 & 2x - y <= 5 & 2x + y <= 7 & x - 2y >= -4 & x >= 0");
  std::vector<DecompRegion> regions = DecomposeDisjunct(pentagon, 0);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> num(-8, 14);
  std::uniform_int_distribution<int64_t> den(1, 4);
  int inside_samples = 0;
  for (int iter = 0; iter < 150; ++iter) {
    Vec p = {Rational(num(rng), den(rng)), Rational(num(rng), den(rng))};
    if (!pentagon.Satisfies(p)) continue;
    ++inside_samples;
    EXPECT_TRUE(Covered(regions, p)) << VecToString(p);
  }
  EXPECT_GT(inside_samples, 10);
  // Vertices and edge midpoints are covered too.
  EXPECT_TRUE(Covered(regions, V({0, 0})));
  EXPECT_TRUE(Covered(regions, {Rational(1), Rational(-1, 2)}));
  // Points outside the closed pentagon are in no region.
  EXPECT_FALSE(Covered(regions, V({10, 10})));
  EXPECT_FALSE(Covered(regions, V({-1, 0})));
}

TEST(DecompositionTest, TriangleFan) {
  // A triangle: one inner 2-region, three edges, three vertices, and the
  // degenerate "diagonals" coincide with edges.
  Conjunction triangle = ParseConj("y >= 0 & y <= x & x <= 2");
  std::vector<DecompRegion> regions = DecomposeDisjunct(triangle, 0);
  auto counts = RegionCountsByDimension(regions, 2);
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 3u);
  EXPECT_EQ(counts[2], 1u);
}

TEST(DecompositionTest, SingletonPolyhedron) {
  Conjunction point = ParseConj("x = 1 & y = 2");
  std::vector<DecompRegion> regions = DecomposeDisjunct(point, 0);
  ASSERT_EQ(regions.size(), 1u);
  EXPECT_EQ(regions[0].region.Dimension(), 0);
  EXPECT_TRUE(regions[0].region.Contains(V({1, 2})));
}

TEST(DecompositionTest, SegmentPolyhedron) {
  // Lower-dimensional polyhedron: a closed segment.
  Conjunction seg = ParseConj("y = 0 & x >= 0 & x <= 1");
  std::vector<DecompRegion> regions = DecomposeDisjunct(seg, 0);
  auto counts = RegionCountsByDimension(regions, 2);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 0u);
  EXPECT_TRUE(Covered(regions, {Rational(1, 2), Rational(0)}));
  EXPECT_TRUE(Covered(regions, V({0, 0})));
  EXPECT_TRUE(Covered(regions, V({1, 0})));
}

TEST(DecompositionTest, OpenPolyhedronStillCovered) {
  // Open triangle: outer regions lie in the closure but every point of the
  // open set is covered (the paper only requires covering S).
  Conjunction open_tri = ParseConj("y > 0 & y < x & x < 2");
  std::vector<DecompRegion> regions = DecomposeDisjunct(open_tri, 0);
  std::mt19937_64 rng(11);
  std::uniform_int_distribution<int64_t> num(0, 8);
  for (int iter = 0; iter < 100; ++iter) {
    Vec p = {Rational(num(rng), 4), Rational(num(rng), 4)};
    if (!open_tri.Satisfies(p)) continue;
    EXPECT_TRUE(Covered(regions, p)) << VecToString(p);
  }
}

TEST(DecompositionTest, UnboundedWedge) {
  // Figure 10-style unbounded polyhedron.
  Conjunction wedge = ParseConj("x >= 0 & y >= 0 & x + y >= 1");
  std::vector<DecompRegion> regions = DecomposeDisjunct(wedge, 0);
  EXPECT_GT(CountKind(regions, DecompKind::kRay), 0u);
  EXPECT_GT(CountKind(regions, DecompKind::kUnboundedHull), 0u);
  // The up(psi) rays along the axes from the cube boundary must be present:
  // vertices (0,1) and (1,0), cube bound 2(c+1) = 4.
  GeneratorRegion up_ray = GeneratorRegion::OpenRay(V({0, 4}), V({0, 3}));
  GeneratorRegion right_ray = GeneratorRegion::OpenRay(V({4, 0}), V({3, 0}));
  bool found_up = false, found_right = false;
  for (const DecompRegion& r : regions) {
    if (r.region == up_ray) found_up = true;
    if (r.region == right_ray) found_right = true;
  }
  EXPECT_TRUE(found_up);
  EXPECT_TRUE(found_right);
  // Coverage of points far outside the cube.
  EXPECT_TRUE(Covered(regions, V({100, 100})));
  EXPECT_TRUE(Covered(regions, V({0, 50})));
  EXPECT_TRUE(Covered(regions, V({37, 1})));
  EXPECT_FALSE(Covered(regions, V({-1, 5})));
  // Coverage of random points of the wedge.
  std::mt19937_64 rng(13);
  std::uniform_int_distribution<int64_t> num(0, 40);
  for (int iter = 0; iter < 60; ++iter) {
    Vec p = {Rational(num(rng), 2), Rational(num(rng), 2)};
    if (!wedge.Satisfies(p)) continue;
    EXPECT_TRUE(Covered(regions, p)) << VecToString(p);
  }
}

TEST(DecompositionTest, HalfplaneWithoutVertices) {
  // No vertex at all: coordinate bound falls back to vert'(psi).
  Conjunction half = ParseConj("x >= 1");
  std::vector<DecompRegion> regions = DecomposeDisjunct(half, 0);
  EXPECT_FALSE(regions.empty());
  EXPECT_TRUE(Covered(regions, V({1, 0})));
  EXPECT_TRUE(Covered(regions, V({50, -50})));
  EXPECT_TRUE(Covered(regions, V({2, 3})));
  EXPECT_FALSE(Covered(regions, V({0, 0})));
}

TEST(DecompositionTest, InfeasibleDisjunctYieldsNothing) {
  // Built directly (the DNF parser would prune the empty disjunct).
  Conjunction empty(2, {LinearAtom({Rational(1), Rational(0)}, RelOp::kLt,
                                   Rational(0)),
                        LinearAtom({Rational(1), Rational(0)}, RelOp::kGt,
                                   Rational(0))});
  EXPECT_TRUE(DecomposeDisjunct(empty, 0).empty());
}

TEST(DecompositionTest, FormulaUnionKeepsDisjunctProvenance) {
  auto f = ParseDnf("(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
                    "(x >= 3 & x <= 4 & y >= 0 & y <= 1)",
                    kXY);
  ASSERT_TRUE(f.ok());
  std::vector<DecompRegion> regions = DecomposeFormula(*f);
  bool saw0 = false, saw1 = false;
  for (const DecompRegion& r : regions) {
    if (r.disjunct == 0) saw0 = true;
    if (r.disjunct == 1) saw1 = true;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
  EXPECT_TRUE(Covered(regions, {Rational(1, 2), Rational(1, 2)}));
  EXPECT_TRUE(Covered(regions, {Rational(7, 2), Rational(1, 2)}));
  EXPECT_FALSE(Covered(regions, V({2, 0})));
}

TEST(DecompositionTest, OverlappingDisjunctsAllowed) {
  // Note 7.1: regions for different polyhedra may overlap.
  auto f = ParseDnf("(x >= 0 & x <= 2 & y >= 0 & y <= 2) | "
                    "(x >= 1 & x <= 3 & y >= 0 & y <= 2)",
                    kXY);
  ASSERT_TRUE(f.ok());
  std::vector<DecompRegion> regions = DecomposeFormula(*f);
  // The overlap zone is covered by regions of both disjuncts.
  Vec mid = {Rational(3, 2), Rational(1)};
  size_t covering = 0;
  for (const DecompRegion& r : regions) {
    if (r.region.Contains(mid)) ++covering;
  }
  EXPECT_GE(covering, 2u);
}

class DecompPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DecompPropertyTest, RandomPolytopesAreCovered) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  std::uniform_int_distribution<int64_t> rhs(1, 6);
  for (int iter = 0; iter < 4; ++iter) {
    // Random bounded polyhedron: a box plus up to two extra halfplanes.
    std::vector<LinearAtom> atoms;
    const int64_t bx = rhs(rng), by = rhs(rng);
    atoms.emplace_back(Vec{Rational(1), Rational(0)}, RelOp::kLe, Rational(bx));
    atoms.emplace_back(Vec{Rational(1), Rational(0)}, RelOp::kGe, Rational(-bx));
    atoms.emplace_back(Vec{Rational(0), Rational(1)}, RelOp::kLe, Rational(by));
    atoms.emplace_back(Vec{Rational(0), Rational(1)}, RelOp::kGe, Rational(-by));
    for (int extra = 0; extra < 2; ++extra) {
      Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
      if (VecIsZero(c)) continue;
      atoms.emplace_back(c, RelOp::kLe, Rational(rhs(rng)));
    }
    Conjunction poly(2, std::move(atoms));
    if (!poly.IsFeasible()) continue;
    std::vector<DecompRegion> regions = DecomposeDisjunct(poly, 0);
    ASSERT_FALSE(regions.empty());
    std::uniform_int_distribution<int64_t> sample(-12, 12);
    for (int s = 0; s < 40; ++s) {
      Vec p = {Rational(sample(rng), 2), Rational(sample(rng), 2)};
      if (!poly.Satisfies(p)) continue;
      EXPECT_TRUE(Covered(regions, p))
          << VecToString(p) << " in " << poly.ToString(kXY);
    }
    // All regions live inside the closure of the polyhedron.
    Conjunction closure = poly.ClosureConjunction();
    for (const DecompRegion& r : regions) {
      EXPECT_TRUE(closure.Satisfies(r.region.Witness()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecompPropertyTest,
                         ::testing::Values(41u, 43u, 47u));

}  // namespace
}  // namespace lcdb
