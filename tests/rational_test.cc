#include "arith/rational.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

namespace lcdb {
namespace {

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  EXPECT_EQ(Rational(2, 4).ToString(), "1/2");
  EXPECT_EQ(Rational(-2, 4).ToString(), "-1/2");
  EXPECT_EQ(Rational(2, -4).ToString(), "-1/2");
  EXPECT_EQ(Rational(-2, -4).ToString(), "1/2");
  EXPECT_EQ(Rational(0, 7).ToString(), "0");
  EXPECT_EQ(Rational(0, -7).den().ToInt64(), 1);
  EXPECT_EQ(Rational(6, 3).ToString(), "2");
  EXPECT_TRUE(Rational(6, 3).IsInteger());
  EXPECT_FALSE(Rational(1, 3).IsInteger());
}

TEST(RationalTest, FromString) {
  EXPECT_EQ(Rational::FromString("3/4").value(), Rational(3, 4));
  EXPECT_EQ(Rational::FromString("-3/4").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString("3/-4").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString(" 7 ").value(), Rational(7));
  EXPECT_EQ(Rational::FromString("10/5").value(), Rational(2));
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("a/b").ok());
}

TEST(RationalTest, ArithmeticBasics) {
  Rational half(1, 2), third(1, 3);
  EXPECT_EQ(half + third, Rational(5, 6));
  EXPECT_EQ(half - third, Rational(1, 6));
  EXPECT_EQ(half * third, Rational(1, 6));
  EXPECT_EQ(half / third, Rational(3, 2));
  EXPECT_EQ(-half, Rational(-1, 2));
  EXPECT_EQ(half.Abs(), half);
  EXPECT_EQ((-half).Abs(), half);
}

TEST(RationalTest, ComparisonCrossMultiplies) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_LT(Rational(2, 7), Rational(3, 10));  // 20/70 < 21/70
  EXPECT_FALSE(Rational(1, 2) < Rational(1, 2));
}

TEST(RationalTest, Midpoint) {
  EXPECT_EQ(Rational::Midpoint(Rational(0), Rational(1)), Rational(1, 2));
  EXPECT_EQ(Rational::Midpoint(Rational(1, 3), Rational(2, 3)), Rational(1, 2));
  Rational m = Rational::Midpoint(Rational(1, 7), Rational(1, 5));
  EXPECT_LT(Rational(1, 7), m);
  EXPECT_LT(m, Rational(1, 5));
}

TEST(RationalTest, SignAndZero) {
  EXPECT_EQ(Rational(3, 4).Sign(), 1);
  EXPECT_EQ(Rational(-3, 4).Sign(), -1);
  EXPECT_EQ(Rational().Sign(), 0);
  EXPECT_TRUE(Rational().IsZero());
}

class RationalPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RationalPropertyTest, FieldAxioms) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> num(-1000, 1000);
  std::uniform_int_distribution<int64_t> den(1, 1000);
  for (int iter = 0; iter < 60; ++iter) {
    Rational a(num(rng), den(rng));
    Rational b(num(rng), den(rng));
    Rational c(num(rng), den(rng));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!b.IsZero()) {
      EXPECT_EQ((a / b) * b, a);
    }
    if (!a.IsZero()) {
      EXPECT_EQ(a / a, Rational(1));
    }
    // Normalization invariant: gcd(num, den) == 1, den > 0.
    Rational sum = a + b;
    EXPECT_GT(sum.den().Sign(), 0);
    EXPECT_TRUE(BigInt::Gcd(sum.num(), sum.den()).IsOne());
    // Order compatible with addition.
    if (a < b) {
      EXPECT_LT(a + c, b + c);
    }
    // String round trip.
    EXPECT_EQ(Rational::FromString(a.ToString()).value(), a);
  }
}

TEST_P(RationalPropertyTest, OrderDensity) {
  std::mt19937_64 rng(GetParam() + 99);
  std::uniform_int_distribution<int64_t> num(-500, 500);
  std::uniform_int_distribution<int64_t> den(1, 500);
  for (int iter = 0; iter < 40; ++iter) {
    Rational a(num(rng), den(rng));
    Rational b(num(rng), den(rng));
    if (b < a) std::swap(a, b);
    if (a == b) continue;
    Rational mid = Rational::Midpoint(a, b);
    EXPECT_LT(a, mid);
    EXPECT_LT(mid, b);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalPropertyTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u));

}  // namespace
}  // namespace lcdb
