// Unit tests of the plan pipeline itself: optimizer pass counters, the
// cost win the passes buy (node evaluations), and the explain rendering.
// Byte-identity of answers across modes is covered by
// plan_equivalence_test.cc.

#include <gtest/gtest.h>

#include <string>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

Evaluator::Stats EvalStats(const RegionExtension& ext, const std::string& text,
                           bool optimize) {
  auto query = ParseQuery(text, ext.database().relation_name());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  Evaluator::Options options;
  options.optimize = optimize;
  Evaluator evaluator(ext, options);
  auto answer = evaluator.Evaluate(**query);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  return evaluator.stats();
}

std::string Explain(const RegionExtension& ext, const std::string& text,
                    bool optimize = true) {
  auto query = ParseQuery(text, ext.database().relation_name());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  Evaluator::Options options;
  options.optimize = optimize;
  Evaluator evaluator(ext, options);
  auto explained = evaluator.Explain(**query);
  EXPECT_TRUE(explained.ok()) << explained.status().ToString();
  return explained.ok() ? *explained : "<error>";
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PlanOptimizerTest, NodeEvaluationsStrictlyLowerOnRegLfpWorkload) {
  // The acceptance experiment: on the bench_reglfp workload (RegionConn
  // over a comb arrangement) the pass pipeline must strictly reduce
  // Stats::node_evaluations versus the unoptimized plan.
  ConstraintDatabase db = MakeComb(3, true);
  auto ext = MakeArrangementExtension(db);
  const auto with = EvalStats(*ext, RegionConnQueryText(), true);
  const auto without = EvalStats(*ext, RegionConnQueryText(), false);
  EXPECT_LT(with.node_evaluations, without.node_evaluations);
  // The win comes from narrowing the region-pure sentence to boolean mode:
  // symbolic visits all but vanish.
  EXPECT_GT(with.plan.narrowed_subtrees, 0u);
  EXPECT_LE(with.node_evaluations, 2u);
}

TEST(PlanOptimizerTest, RegionConnPassCounters) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const auto stats = EvalStats(*ext, RegionConnQueryText(), true);
  EXPECT_GT(stats.plan.plan_nodes, 0u);
  EXPECT_GT(stats.plan.narrowed_subtrees, 0u);
  // forall Rx Ry (subset(Rx) & subset(Ry) -> ...): subset(Rx) is invariant
  // in the inner Ry loop and must be hoisted past it.
  EXPECT_GT(stats.plan.hoisted_invariants, 0u);
  EXPECT_GT(stats.plan.cacheable_marked, 0u);
}

TEST(PlanOptimizerTest, ConstantFoldingAndPruning) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const auto folded =
      EvalStats(*ext, "exists R . (subset(R) & (1 < 2))", true);
  EXPECT_GT(folded.plan.folded_constants, 0u);
  const auto pruned =
      EvalStats(*ext, "exists R . (subset(R) & (1 > 2))", true);
  EXPECT_GT(pruned.plan.pruned_branches, 0u);
  // A constant-false body kills the whole region loop at compile time: the
  // execution visits only the root.
  EXPECT_LE(pruned.node_evaluations + pruned.bool_evaluations, 2u);
}

TEST(PlanOptimizerTest, CommonSubplanElimination) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const auto stats =
      EvalStats(*ext, "exists R . (subset(R) & subset(R))", true);
  EXPECT_GT(stats.plan.cse_merged, 0u);
}

TEST(PlanOptimizerTest, QuantifierAndConjunctReordering) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  // R' has a cheap single-variable guard, R has none: the chain must be
  // reordered to loop over R' outermost.
  const auto quantifiers =
      EvalStats(*ext, "exists R R' . (subset(R') & adj(R, R'))", true);
  EXPECT_GT(quantifiers.plan.reordered_quantifiers, 0u);
  // The cheap region atom must be tested before the nested region loop.
  const auto conjuncts = EvalStats(
      *ext, "exists R . ((exists R' . adj(R, R')) & subset(R))", true);
  EXPECT_GT(conjuncts.plan.reordered_conjuncts, 0u);
}

TEST(PlanOptimizerTest, OptimizeOffDisablesCaching) {
  // With the pipeline disabled no MarkCacheable pass runs, so the executor
  // never memoizes — the ablation the EXPERIMENTS.md row measures. The
  // exists-x subformula depends only on R, so under the R' loop it is a
  // cache hit for every R' after the first.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string query =
      "forall R R' . ((exists x . in(x, x; R)) | adj(R, R') | true)";
  const auto raw = EvalStats(*ext, query, false);
  EXPECT_EQ(raw.memo_hits, 0u);
  const auto optimized = EvalStats(*ext, query, true);
  EXPECT_GT(optimized.memo_hits, 0u);
  EXPECT_LT(optimized.node_evaluations, raw.node_evaluations);
}

TEST(PlanOptimizerTest, OpTimingsPopulated) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const auto stats = EvalStats(*ext, RegionConnQueryText(), true);
  auto it = stats.op_timings.find("fixpoint");
  ASSERT_NE(it, stats.op_timings.end());
  EXPECT_EQ(it->second.count, 1u);
}

TEST(PlanExplainTest, OptimizedPlanRendering) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string out = Explain(*ext, RegionConnQueryText());
  // Narrowed to boolean loops, with per-operator annotations and the pass
  // counter footer.
  EXPECT_TRUE(Contains(out, "all_region")) << out;
  EXPECT_TRUE(Contains(out, "fixpoint lfp")) << out;
  EXPECT_TRUE(Contains(out, "cache=region-key")) << out;
  EXPECT_TRUE(Contains(out, "fanout=")) << out;
  EXPECT_TRUE(Contains(out, "plan_nodes=")) << out;
}

TEST(PlanExplainTest, RawPlanKeepsSymbolicOperators) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string out = Explain(*ext, RegionConnQueryText(), false);
  EXPECT_TRUE(Contains(out, "expand.forall")) << out;
  EXPECT_FALSE(Contains(out, "cache=region-key")) << out;
}

TEST(PlanExplainTest, SharedSubplansPrintedOnce) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string out =
      Explain(*ext, "exists R . (subset(R) | subset(R))");
  EXPECT_TRUE(Contains(out, "(shared, see above)")) << out;
}

TEST(PlanExplainTest, QueriesWithFreeElementVariables) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  // The in(...) atom keeps the subtree element-sorted, so the quantifier
  // stays a symbolic region expansion (no narrowing applies).
  const std::string out =
      Explain(*ext, "exists R . (subset(R) & in(x, y; R))");
  EXPECT_TRUE(Contains(out, "expand.exists")) << out;
  EXPECT_TRUE(Contains(out, "in_region")) << out;
}

}  // namespace
}  // namespace lcdb
