// Tests for the tier-3 static verifiers (analysis/plan_verify.h,
// analysis/bytecode_verify.h): corpus acceptance with zero false positives,
// hand-built violations of every plan invariant class, hand-mutated
// bytecode violations, the VM's refusal of unverified programs, the
// --no-verify ablation, and the analysis.verify.* metrics family.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "analysis/bytecode_verify.h"
#include "analysis/plan_verify.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "core/typecheck.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "plan/bytecode.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "plan/vm.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {
namespace {

ConstraintDatabase IntervalsDb() {
  return *LoadDatabaseFromString(
      "relation S(x)\nformula (x > 0 & x < 1) | x = 5");
}

/// Parse + typecheck + plan + optimize, the way the evaluator facade does.
CompiledPlan CompilePlan(const RegionExtension& ext, const std::string& text) {
  auto query = ParseQuery(text, ext.database().relation_name());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto info = TypeCheck(**query, ext.database());
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  CompiledPlan plan = BuildPlan(**query, *info, ext);
  PlanPassStats pass_stats;
  OptimizePlan(&plan, &pass_stats);
  return plan;
}

PlanPtr Node(PlanOp op) {
  auto n = std::make_shared<PlanNode>();
  n->op = op;
  return n;
}

/// DFS for the first node satisfying `pred` (plans are DAGs; first match in
/// preorder). Returns nullptr when none matches.
PlanNode* FindNode(PlanNode* node, bool (*pred)(const PlanNode&)) {
  if (pred(*node)) return node;
  for (const PlanPtr& child : node->children) {
    if (PlanNode* hit = FindNode(child.get(), pred)) return hit;
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Plan verifier: acceptance.

TEST(PlanVerifyTest, AcceptsOptimizedAndRawPlans) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  const std::string text = "exists x . (S(x) & x > 0)";
  VerifyStats stats;
  CompiledPlan optimized = CompilePlan(*ext, text);
  EXPECT_TRUE(VerifyPlan(optimized, "test", &stats).ok());
  auto query = ParseQuery(text, db.relation_name());
  auto info = TypeCheck(**query, db);
  CompiledPlan raw = BuildPlan(**query, *info, *ext);
  EXPECT_TRUE(VerifyPlan(raw, "test", &stats).ok());
  EXPECT_EQ(stats.plans_verified, 2u);
  EXPECT_GT(stats.plan_nodes_verified, 0u);
  EXPECT_EQ(stats.violations, 0u);
}

TEST(PlanVerifyTest, AcceptsRegionConnectivityPlan) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  CompiledPlan plan = CompilePlan(*ext, RegionConnQueryText());
  EXPECT_TRUE(VerifyPlan(plan, "test").ok());
}

// ---------------------------------------------------------------------------
// Plan verifier: one hand-built violation per invariant class. Every
// rejection is a clean LCDB012 kInternal naming the context and sub-reason.

void ExpectPlanRejected(const PlanNode& root, const std::string& substring,
                        size_t num_columns = 1, size_t num_regions = 3) {
  Status s = VerifyPlan(root, num_columns, num_regions, "unit");
  ASSERT_FALSE(s.ok()) << "expected rejection containing '" << substring
                       << "'";
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_NE(s.message().find("LCDB012"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find("unit"), std::string::npos) << s.ToString();
  EXPECT_NE(s.message().find(substring), std::string::npos) << s.ToString();
}

TEST(PlanVerifyTest, RejectsWrongArity) {
  PlanPtr root = Node(PlanOp::kNegateSym);  // needs exactly one child
  ExpectPlanRejected(*root, "operator arity");
}

TEST(PlanVerifyTest, RejectsNullChild) {
  PlanPtr root = Node(PlanOp::kNegateSym);
  root->children.push_back(nullptr);
  ExpectPlanRejected(*root, "null child");
}

TEST(PlanVerifyTest, RejectsModeConfusion) {
  // Boolean child under a symbolic connective: the executor would read a
  // DnfFormula that was never produced.
  PlanPtr sym = Node(PlanOp::kConstFormula);
  sym->const_formula = DnfFormula::False(1);
  DeriveAnnotations(sym.get(), 3);
  PlanPtr boolean = Node(PlanOp::kConstBool);
  DeriveAnnotations(boolean.get(), 3);
  PlanPtr root = Node(PlanOp::kAndSym);
  root->children = {sym, boolean};
  ExpectPlanRejected(*root, "mode confusion");
}

TEST(PlanVerifyTest, RejectsCycle) {
  PlanPtr a = Node(PlanOp::kNegateSym);
  PlanPtr b = Node(PlanOp::kNegateSym);
  a->children.push_back(b);
  b->children.push_back(a);  // cycle: the executor's walk would not return
  ExpectPlanRejected(*a, "cycle");
  // Break it so the shared_ptr loop does not leak.
  b->children.clear();
}

TEST(PlanVerifyTest, RejectsMissingPayload) {
  PlanPtr root = Node(PlanOp::kConstFormula);  // no formula attached
  ExpectPlanRejected(*root, "missing payload");
}

TEST(PlanVerifyTest, RejectsColumnOutOfRange) {
  PlanPtr child = Node(PlanOp::kConstFormula);
  child->const_formula = DnfFormula::False(1);
  DeriveAnnotations(child.get(), 3);
  PlanPtr root = Node(PlanOp::kExistsElim);
  root->column = 7;  // plan has 1 column
  root->children.push_back(child);
  ExpectPlanRejected(*root, "column out of range");
}

TEST(PlanVerifyTest, RejectsStaleAnnotations) {
  PlanPtr root = Node(PlanOp::kInRegion);
  root->region_args = {"R"};
  DeriveAnnotations(root.get(), 3);
  ASSERT_FALSE(root->free_region.empty());
  root->free_region.clear();  // stale: would silently corrupt memo keys
  ExpectPlanRejected(*root, "annotation mismatch");
}

TEST(PlanVerifyTest, RejectsCacheMarkedConstant) {
  PlanPtr root = Node(PlanOp::kConstBool);
  DeriveAnnotations(root.get(), 3);
  root->cache = CachePolicy::kByRegionKey;
  ExpectPlanRejected(*root, "cache key ill-formed");
}

TEST(PlanVerifyTest, RejectsUnclosedRoot) {
  PlanPtr root = Node(PlanOp::kInRegion);
  root->region_args = {"R"};
  DeriveAnnotations(root.get(), 3);
  ExpectPlanRejected(*root, "plan not closed");
}

// ---------------------------------------------------------------------------
// Bytecode verifier: acceptance + hand-mutated violations.

BytecodeProgram CompileProgram(const RegionExtension& ext,
                               const std::string& text) {
  return CompileToBytecode(CompilePlan(ext, text));
}

void ExpectBytecodeRejected(const BytecodeProgram& program,
                            const std::string& substring) {
  BytecodeVerifyResult result = VerifyBytecode(program);
  ASSERT_FALSE(result.status.ok())
      << "expected rejection containing '" << substring << "'";
  EXPECT_EQ(result.status.code(), StatusCode::kInternal);
  EXPECT_NE(result.status.message().find("LCDB012"), std::string::npos)
      << result.status.ToString();
  EXPECT_NE(result.status.message().find(substring), std::string::npos)
      << result.status.ToString();
}

TEST(BytecodeVerifyTest, AcceptsCompiledPrograms) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  for (const std::string& text :
       {std::string("exists x . (S(x, y) & x > 0)"), RegionConnQueryText(),
        RegionConnTcQueryText(false)}) {
    BytecodeProgram program = CompileProgram(*ext, text);
    BytecodeVerifyResult result = VerifyBytecode(program);
    EXPECT_TRUE(result.status.ok()) << text << "\n"
                                    << result.status.ToString();
    EXPECT_EQ(result.procs_verified, program.procs.size());
    EXPECT_EQ(result.instructions_verified, program.TotalInstructions());
    EXPECT_EQ(result.unreachable_procs, 0u) << text;
  }
}

TEST(BytecodeVerifyTest, FixpointProgramProvesLoopsAndCounters) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program = CompileProgram(*ext, RegionConnQueryText());
  BytecodeVerifyResult result = VerifyBytecode(program);
  ASSERT_TRUE(result.status.ok()) << result.status.ToString();
  // The region loops lowered from quantifier expansion all carry a
  // checkpoint source, and every loop counter feeding set.region is
  // interval-proved inside [0, |Reg|).
  EXPECT_GT(result.loops_verified, 0u);
  EXPECT_GT(result.counters_total, 0u);
  EXPECT_EQ(result.counters_bounded, result.counters_total);
}

TEST(BytecodeVerifyTest, RejectsEmptyAndWrongModePrograms) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program =
      CompileProgram(*ext, "exists x . (S(x) & x > 0)");
  BytecodeProgram empty = program;
  empty.procs.clear();
  ExpectBytecodeRejected(empty, "no procs");
  BytecodeProgram wrong_mode = program;
  wrong_mode.procs[0].symbolic = false;
  ExpectBytecodeRejected(wrong_mode, "entry proc must be symbolic");
}

TEST(BytecodeVerifyTest, RejectsRegisterAndJumpMutations) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program =
      CompileProgram(*ext, "exists x . (S(x) & x > 0)");

  {
    // Flip a destination register out of the register file.
    BytecodeProgram mutant = program;
    VmProc& proc = mutant.procs[0];
    bool mutated = false;
    for (VmInstr& in : proc.code) {
      if (in.op == VmOp::kConstFormula || in.op == VmOp::kQeExists) {
        in.a = proc.num_sregs + 17;
        mutated = true;
        break;
      }
    }
    ASSERT_TRUE(mutated);
    ExpectBytecodeRejected(mutant, "register out of range");
  }
  {
    // Aim a jump outside the proc.
    BytecodeProgram mutant = program;
    for (VmInstr& in : mutant.procs[0].code) {
      if (in.op == VmOp::kJmp || in.op == VmOp::kJmpIfSymFalse ||
          in.op == VmOp::kJmpIfSymTrue) {
        in.b = static_cast<uint32_t>(mutant.procs[0].code.size()) + 9;
        ExpectBytecodeRejected(mutant, "jump target out of range");
        return;
      }
    }
    // No conditional jump in this program — acceptable, covered by the
    // mutation harness over the full corpus.
  }
}

TEST(BytecodeVerifyTest, RejectsDroppedLeaveAndFallOffEnd) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program = CompileProgram(*ext, RegionConnQueryText());

  bool found_leave = false;
  for (size_t p = 0; p < program.procs.size() && !found_leave; ++p) {
    for (size_t pc = 0; pc < program.procs[p].code.size(); ++pc) {
      const VmInstr& in = program.procs[p].code[pc];
      if (in.op == VmOp::kLeaveSym || in.op == VmOp::kLeaveBool) {
        // Overwrite the Leave with a harmless no-op: the matching Enter's
        // bracket never closes, so every path to ret/halt is unbalanced.
        BytecodeProgram mutant = program;
        VmInstr& target = mutant.procs[p].code[pc];
        target = VmInstr{};
        target.op = VmOp::kBeginOp;
        target.imm = 0;
        ExpectBytecodeRejected(mutant, "bracket");
        found_leave = true;
        break;
      }
    }
  }
  EXPECT_TRUE(found_leave);

  // Make the entry proc's halt a fallthrough op: control falls off the end.
  BytecodeProgram mutant = program;
  VmInstr& last = mutant.procs[0].code.back();
  ASSERT_EQ(last.op, VmOp::kHalt);
  last.op = VmOp::kLoadTrueSym;
  last.a = 0;
  ExpectBytecodeRejected(mutant, "falls off the end");
}

TEST(BytecodeVerifyTest, RejectsRetargetedBackEdge) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program = CompileProgram(*ext, RegionConnQueryText());
  for (size_t p = 0; p < program.procs.size(); ++p) {
    for (size_t pc = 0; pc < program.procs[p].code.size(); ++pc) {
      if (program.procs[p].code[pc].op == VmOp::kLoopNext) {
        BytecodeProgram mutant = program;
        // One past the head is no longer a kLoopHead.
        mutant.procs[p].code[pc].b += 1;
        ExpectBytecodeRejected(mutant,
                               "loop back-edge does not target its loop.head");
        return;
      }
    }
  }
  FAIL() << "expected at least one loop in the connectivity program";
}

// ---------------------------------------------------------------------------
// VM gate + ablation + metrics.

TEST(VerifyGateTest, VmRefusesUnverifiedProgram) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program =
      CompileProgram(*ext, "exists x . (S(x) & x > 0)");
  ASSERT_FALSE(program.verified);
  Evaluator::Options options;
  options.use_bytecode = true;
  Evaluator::Stats stats;
  BytecodeVm vm(program, *ext, options, &stats);
  try {
    vm.Run();
    FAIL() << "expected the VM to refuse the unverified program";
  } catch (const QueryInterrupt& interrupt) {
    EXPECT_EQ(interrupt.status().code(), StatusCode::kInternal);
    EXPECT_NE(interrupt.status().message().find("LCDB012"),
              std::string::npos);
    EXPECT_NE(interrupt.status().message().find("unverified"),
              std::string::npos);
  }
  // The ablation switch waives the gate; answers are unchanged.
  options.verify = false;
  BytecodeVm unchecked(program, *ext, options, &stats);
  EXPECT_NO_THROW(unchecked.Run());
}

TEST(VerifyGateTest, EvaluateRunsVerifiersOnBothBackends) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  const std::string text = "exists x . (S(x) & x > 0)";
  Evaluator::Options options;
  for (bool vm : {false, true}) {
    options.use_bytecode = vm;
    Evaluator evaluator(*ext, options);
    auto parsed = ParseQuery(text, db.relation_name());
    ASSERT_TRUE(parsed.ok());
    auto answer = evaluator.Evaluate(**parsed);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    const VerifyStats& verify = evaluator.stats().verify;
    EXPECT_EQ(verify.plans_verified, 1u);
    EXPECT_EQ(verify.violations, 0u);
    EXPECT_EQ(verify.programs_verified, vm ? 1u : 0u);
    const auto values = evaluator.stats().ToMetrics().values;
    ASSERT_TRUE(values.count("analysis.verify.plans"));
    EXPECT_EQ(values.at("analysis.verify.plans"), 1u);
    ASSERT_TRUE(values.count("analysis.verify.violations"));
    EXPECT_EQ(values.at("analysis.verify.violations"), 0u);
    if (vm) {
      EXPECT_GE(values.at("analysis.verify.instructions"), 1u);
    }
  }
}

TEST(VerifyGateTest, NoVerifyAblationSkipsVerifiersAndStillAnswers) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  const std::string text = "exists x . (S(x) & x > 0)";
  Evaluator::Options options;
  options.use_bytecode = true;
  options.verify = false;
  Evaluator evaluator(*ext, options);
  auto parsed = ParseQuery(text, db.relation_name());
  ASSERT_TRUE(parsed.ok());
  auto answer = evaluator.Evaluate(**parsed);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_EQ(evaluator.stats().verify.plans_verified, 0u);
  EXPECT_EQ(evaluator.stats().verify.programs_verified, 0u);
  // The family stays schema-stable at zero.
  const auto values = evaluator.stats().ToMetrics().values;
  ASSERT_TRUE(values.count("analysis.verify.plans"));
  EXPECT_EQ(values.at("analysis.verify.plans"), 0u);
}

TEST(VerifyGateTest, ExplainRunsThePlanVerifier) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  Evaluator evaluator(*ext);
  auto parsed = ParseQuery("exists x . (S(x) & x > 0)", db.relation_name());
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(evaluator.Explain(**parsed).ok());
  EXPECT_EQ(evaluator.stats().verify.plans_verified, 1u);
  ASSERT_TRUE(evaluator.ExplainBytecode(**parsed).ok());
  EXPECT_EQ(evaluator.stats().verify.plans_verified, 1u);
  EXPECT_EQ(evaluator.stats().verify.programs_verified, 1u);
}

}  // namespace
}  // namespace lcdb
