#include <random>

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "db/region_extension.h"
#include "geometry/convex_closure.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};
const std::vector<std::string> kX = {"x"};

DnfFormula Parse(const std::string& text,
                 const std::vector<std::string>& vars = kXY) {
  auto r = ParseDnf(text, vars);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : DnfFormula::False(vars.size());
}

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

TEST(ConvexClosureTest, TwoPointsGiveSegment) {
  DnfFormula two = Parse("(x = 0 & y = 0) | (x = 2 & y = 2)");
  auto hull = ConvexClosure(two);
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  EXPECT_TRUE(hull->Satisfies(V({1, 1})));
  EXPECT_TRUE(hull->Satisfies(V({0, 0})));
  EXPECT_TRUE(hull->Satisfies(V({2, 2})));
  EXPECT_FALSE(hull->Satisfies(V({1, 0})));
  EXPECT_FALSE(hull->Satisfies(V({3, 3})));
  EXPECT_EQ(hull->disjuncts().size(), 1u);
}

TEST(ConvexClosureTest, TwoBoxesGiveTheirHull) {
  DnfFormula boxes = Parse(
      "(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
      "(x >= 3 & x <= 4 & y >= 0 & y <= 1)");
  auto hull = ConvexClosure(boxes);
  ASSERT_TRUE(hull.ok());
  // The hull is the bounding box [0,4] x [0,1].
  auto expected = Parse("x >= 0 & x <= 4 & y >= 0 & y <= 1");
  EXPECT_TRUE(AreEquivalent(*hull, expected));
}

TEST(ConvexClosureTest, OpenSetGivesClosedHull) {
  // Closed convex hull by definition: the open unit square hulls to the
  // closed one (documented in DESIGN.md).
  DnfFormula open_square = Parse("x > 0 & x < 1 & y > 0 & y < 1");
  auto hull = ConvexClosure(open_square);
  ASSERT_TRUE(hull.ok());
  auto expected = Parse("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  EXPECT_TRUE(AreEquivalent(*hull, expected));
}

TEST(ConvexClosureTest, ConvexInputIsAFixedPoint) {
  for (const char* text :
       {"x >= 0 & x <= 1 & y >= 0 & y <= 1",
        "x + y <= 4 & x >= 0 & y >= 0", "x = y & x >= 0 & x <= 1"}) {
    DnfFormula f = Parse(text);
    auto hull = ConvexClosure(f);
    ASSERT_TRUE(hull.ok()) << text;
    EXPECT_TRUE(AreEquivalent(*hull, f)) << text;
    // Idempotence.
    auto again = ConvexClosure(*hull);
    ASSERT_TRUE(again.ok());
    EXPECT_TRUE(AreEquivalent(*again, *hull)) << text;
  }
}

TEST(ConvexClosureTest, UnboundedWedge) {
  // Hull of two rays from the origin: the wedge between them.
  DnfFormula rays = Parse("(y = 0 & x >= 0) | (x = 0 & y >= 0)");
  auto hull = ConvexClosure(rays);
  ASSERT_TRUE(hull.ok());
  auto expected = Parse("x >= 0 & y >= 0");
  EXPECT_TRUE(AreEquivalent(*hull, expected));
}

TEST(ConvexClosureTest, MixedBoundedUnbounded) {
  // A point plus a ray: the hull is the ray's line... no — conv of {(0,5)}
  // and the ray {y = 0, x >= 0} is the filled strip between them.
  DnfFormula f = Parse("(x = 0 & y = 5) | (y = 0 & x >= 0)");
  auto hull = ConvexClosure(f);
  ASSERT_TRUE(hull.ok());
  EXPECT_TRUE(hull->Satisfies(V({0, 5})));
  EXPECT_TRUE(hull->Satisfies(V({10, 0})));
  EXPECT_TRUE(hull->Satisfies({Rational(1), Rational(1)}));   // between
  EXPECT_TRUE(hull->Satisfies({Rational(50), Rational(2)}));  // far out
  EXPECT_FALSE(hull->Satisfies(V({0, 6})));
  EXPECT_FALSE(hull->Satisfies(V({-1, 0})));
  EXPECT_FALSE(hull->Satisfies(V({5, 6})));
}

TEST(ConvexClosureTest, FullLineViaRays) {
  DnfFormula line = Parse("x = 0", kX);
  // In 1-D, hull of a point is the point.
  auto hull = ConvexClosure(line);
  ASSERT_TRUE(hull.ok());
  EXPECT_TRUE(AreEquivalent(*hull, line));
  // Hull of two half-lines covering R is R.
  DnfFormula halves = Parse("x >= 1 | x <= -1", kX);
  auto full = ConvexClosure(halves);
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(AreEquivalent(*full, DnfFormula::True(1)));
}

TEST(ConvexClosureTest, EmptyInput) {
  DnfFormula empty = DnfFormula::False(2);
  auto hull = ConvexClosure(empty);
  ASSERT_TRUE(hull.ok());
  EXPECT_TRUE(hull->IsSyntacticallyFalse());
}

TEST(ConvexClosureTest, GeneratorsArePruned) {
  // Many collinear points: only the extremes survive pruning.
  DnfFormula points = Parse("x = 0 | x = 1 | x = 2 | x = 3", kX);
  auto gens = ConvexClosureGenerators(points);
  ASSERT_TRUE(gens.ok());
  EXPECT_EQ(gens->points().size(), 2u);
  EXPECT_TRUE(gens->rays().empty());
}

class ConvexClosurePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ConvexClosurePropertyTest, HullContainsInputAndMidpoints) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coord(-5, 5);
  std::uniform_int_distribution<int> pieces(1, 3);
  // Random union of boxes and points.
  std::vector<Conjunction> disjuncts;
  const int n = pieces(rng);
  for (int i = 0; i < n; ++i) {
    int64_t x0 = coord(rng), x1 = coord(rng), y0 = coord(rng), y1 = coord(rng);
    if (x1 < x0) std::swap(x0, x1);
    if (y1 < y0) std::swap(y0, y1);
    disjuncts.push_back(Conjunction(
        2, {LinearAtom({Rational(1), Rational(0)}, RelOp::kGe, Rational(x0)),
            LinearAtom({Rational(1), Rational(0)}, RelOp::kLe, Rational(x1)),
            LinearAtom({Rational(0), Rational(1)}, RelOp::kGe, Rational(y0)),
            LinearAtom({Rational(0), Rational(1)}, RelOp::kLe, Rational(y1))}));
  }
  DnfFormula f(2, std::move(disjuncts));
  auto hull = ConvexClosure(f);
  ASSERT_TRUE(hull.ok());
  std::uniform_int_distribution<int64_t> probe(-12, 12);
  for (int iter = 0; iter < 60; ++iter) {
    Vec p = {Rational(probe(rng), 2), Rational(probe(rng), 2)};
    Vec q = {Rational(probe(rng), 2), Rational(probe(rng), 2)};
    if (f.Satisfies(p)) {
      EXPECT_TRUE(hull->Satisfies(p)) << VecToString(p);
      if (f.Satisfies(q)) {
        // Convexity: midpoints of input points are in the hull.
        Vec mid = {Rational::Midpoint(p[0], q[0]),
                   Rational::Midpoint(p[1], q[1])};
        EXPECT_TRUE(hull->Satisfies(mid)) << VecToString(mid);
      }
    }
  }
  // Tightness: hull points are convex combinations of generators, so the
  // hull of the hull is the hull.
  auto again = ConvexClosure(*hull);
  ASSERT_TRUE(again.ok());
  EXPECT_TRUE(AreEquivalent(*again, *hull));
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConvexClosurePropertyTest,
                         ::testing::Values(9u, 19u, 29u, 39u));

TEST(HullOperatorTest, SegmentMembership) {
  // The Section 8 operator in the query language, over any database.
  auto f = ParseDnf("x = 0", kX);
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeArrangementExtension(db);
  // (1,1) is on the segment between (0,0) and (2,2).
  auto on = EvaluateSentenceText(
      *ext, "[hull u, v : (u = 0 & v = 0) | (u = 2 & v = 2)](1, 1)");
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  EXPECT_TRUE(*on);
  auto off = EvaluateSentenceText(
      *ext, "[hull u, v : (u = 0 & v = 0) | (u = 2 & v = 2)](1, 0)");
  ASSERT_TRUE(off.ok());
  EXPECT_FALSE(*off);
}

TEST(HullOperatorTest, FigureFiveMultiplicationInTheLanguage) {
  // The paper's Figure 5, now INSIDE the (extended) query language:
  // x*y = z iff (x, y-1) in hull{(0,y), (z,0)}. With y = 3, z = 6 the
  // unique solution is x = 2.
  auto f = ParseDnf("x = 0", kX);
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeArrangementExtension(db);
  auto answer = EvaluateQueryText(
      *ext, "[hull u, v : (u = 0 & v = 3) | (u = 6 & v = 0)](x, 2)");
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  auto expected = ParseDnf("x = 2", kX);
  EXPECT_TRUE(AreEquivalent(answer->formula, *expected))
      << answer->ToString();
}

TEST(HullOperatorTest, HullOfRelation) {
  // Hull of the database relation itself (via the S atom in the body).
  auto f = ParseDnf("(x > 0 & x < 1) | (x > 2 & x < 3)", kX);
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeArrangementExtension(db);
  auto hull = EvaluateQueryText(*ext, "[hull u : S(u)](x)");
  ASSERT_TRUE(hull.ok()) << hull.status().ToString();
  auto expected = ParseDnf("x >= 0 & x <= 3", kX);
  EXPECT_TRUE(AreEquivalent(hull->formula, *expected)) << hull->ToString();
}

TEST(HullOperatorTest, NonConvexityIsDetectable) {
  // "S is convex" is now expressible: S equals the hull of S. The split
  // interval database is not convex, a single interval is.
  const std::string convexity =
      "forall x . (S(x) <-> ([hull u : S(u)](x) & S(x))) & "
      "forall y . ([hull u : S(u)](y) -> S(y))";
  auto split = ParseDnf("(x > 0 & x < 1) | (x > 2 & x < 3)", kX);
  ConstraintDatabase db1("S", *split, {"x"});
  auto ext1 = MakeArrangementExtension(db1);
  auto r1 = EvaluateSentenceText(*ext1, convexity);
  ASSERT_TRUE(r1.ok()) << r1.status().ToString();
  EXPECT_FALSE(*r1);
  auto solid = ParseDnf("x >= 0 & x <= 3", kX);
  ConstraintDatabase db2("S", *solid, {"x"});
  auto ext2 = MakeArrangementExtension(db2);
  auto r2 = EvaluateSentenceText(*ext2, convexity);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
}

TEST(HullOperatorTest, TypeErrors) {
  auto f = ParseDnf("x = 0", kX);
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeArrangementExtension(db);
  // Extra free element variable in the body.
  auto bad = EvaluateSentenceText(
      *ext, "exists w . ([hull u : u = w](3) & w = w)");
  EXPECT_FALSE(bad.ok());
  // Wrong applied arity is a parse error.
  auto arity = ParseQuery("[hull u, v : u = v](1)", "S");
  EXPECT_FALSE(arity.ok());
}

}  // namespace
}  // namespace lcdb
