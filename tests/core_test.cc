#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "core/typecheck.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

ConstraintDatabase Db1(const std::string& formula) {
  auto f = ParseDnf(formula, {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

ConstraintDatabase Db2(const std::string& formula) {
  auto f = ParseDnf(formula, {"x", "y"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x", "y"});
}

FormulaPtr Parse(const std::string& text, const std::string& relation = "S") {
  auto r = ParseQuery(text, relation);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for: " << text;
  return r.ok() ? std::move(*r) : MakeFalse();
}

bool Sentence(const ConstraintDatabase& db, const std::string& text) {
  auto ext = MakeArrangementExtension(db);
  auto result = EvaluateSentenceText(*ext, text);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for: " << text;
  return result.ok() && *result;
}

TEST(QueryParserTest, RoundTripToString) {
  for (const char* text : {
           "S(x, y)",
           "exists x . S(x, x + 1)",
           "forall x y . (S(x, y) -> x <= y)",
           "exists R . (subset(R) & dim(R) = 1)",
           "adj(R1, R2) | R1 = R2",
           "in(x, 2y + 1; R)",
           "[lfp M R R' : (R = R' & subset(R)) | (exists Z . (M(R, Z) & "
           "adj(Z, R') & subset(R')))](Rx, Ry)",
           "[tc R ; R' : adj(R, R')](A ; B)",
           "[rbit x : x = 5/3](Rn, Rd)",
       }) {
    FormulaPtr f = Parse(text);
    // Reparse the printed form; printing again must be a fixed point.
    FormulaPtr g = Parse(f->ToString());
    EXPECT_EQ(f->ToString(), g->ToString()) << text;
  }
}

TEST(QueryParserTest, SyntaxErrors) {
  const std::string r = "S";
  EXPECT_FALSE(ParseQuery("", r).ok());
  EXPECT_FALSE(ParseQuery("S(x", r).ok());
  EXPECT_FALSE(ParseQuery("exists . S(x)", r).ok());
  EXPECT_FALSE(ParseQuery("exists x y S(x, y)", r).ok());  // missing '.'
  EXPECT_FALSE(ParseQuery("x <", r).ok());
  EXPECT_FALSE(ParseQuery("[lfp M : true](R)", r).ok());
  EXPECT_FALSE(ParseQuery("[tc R : adj(R, R)](A ; B)", r).ok());
  EXPECT_FALSE(ParseQuery("unknownpred(x)", r).ok());
  EXPECT_FALSE(ParseQuery("S(x) extra", r).ok());
  EXPECT_FALSE(ParseQuery("x + * 3 < 1", r).ok());
  EXPECT_FALSE(ParseQuery("R = x", r).ok());
}

TEST(TypeCheckTest, RejectsIllFormedQueries) {
  ConstraintDatabase db = Db2("x >= 0 & y >= 0");
  auto check = [&](const std::string& text) {
    auto q = ParseQuery(text, "S");
    EXPECT_TRUE(q.ok()) << text;
    return TypeCheck(**q, db).status();
  };
  // Free region variable.
  EXPECT_FALSE(check("subset(R)").ok());
  // Relation arity mismatch.
  EXPECT_FALSE(check("exists x . S(x)").ok());
  // Unknown relation.
  {
    auto q = ParseQuery("exists x y . T(x, y)", "T");
    ASSERT_TRUE(q.ok());
    EXPECT_FALSE(TypeCheck(**q, db).ok());
  }
  // Unbound set variable.
  EXPECT_FALSE(check("exists R Z . M(R, Z)").ok());
  // LFP body not positive in M: typechecks (scoping and sorts are fine) but
  // the static analyzer rejects it before evaluation (LCDB001; see
  // analysis_test.cc). Evaluate surfaces it as kInvalidArgument.
  EXPECT_TRUE(check("exists A B . [lfp M R R' : !(M(R, R'))](A, B)").ok());
  {
    auto ext = MakeArrangementExtension(db);
    auto r = EvaluateSentenceText(*ext,
                                  "exists A B . [lfp M R R' : !(M(R, R'))]"
                                  "(A, B)");
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
    EXPECT_NE(r.status().message().find("LCDB001"), std::string::npos);
  }
  // LFP body with a free element variable.
  EXPECT_FALSE(check("exists x A B . [lfp M R R' : M(R, R') | x > 0](A, B)")
                   .ok());
  // LFP body using an outer region variable.
  EXPECT_FALSE(
      check("exists Q A B . [lfp M R R' : M(R, R') | adj(R, Q)](A, B)").ok());
  // TC body with element variable.
  EXPECT_FALSE(
      check("exists x A B . [tc R ; R' : adj(R, R') & x = x](A ; B)").ok());
  // Set arity mismatch.
  EXPECT_FALSE(
      check("exists A . [lfp M R R' : M(R, R) | M(R, R', R)](A, A)").ok());
  // Shadowing.
  EXPECT_FALSE(check("exists x . exists x . S(x, x)").ok());
  // rBIT body with an extra free element variable.
  EXPECT_FALSE(
      check("exists y A B . [rbit x : x = y](A, B) & y = y").ok());
  // Positive queries pass.
  EXPECT_TRUE(check("exists x y . S(x, y)").ok());
  EXPECT_TRUE(check(ConnQueryText(2)).ok());
  EXPECT_TRUE(check(RegionConnQueryText()).ok());
}

TEST(TypeCheckTest, PositivityAnalysis) {
  auto positive = [](const std::string& text) {
    auto q = ParseQuery(text, "S");
    EXPECT_TRUE(q.ok());
    // The parsed fixpoint body is children[0] of the LFP node under the
    // two exists-quantifier wrappers; instead test IsPositiveIn directly on
    // the whole formula.
    return IsPositiveIn(**q, "M");
  };
  EXPECT_TRUE(positive("M(R, R)"));
  EXPECT_FALSE(positive("!(M(R, R))"));
  EXPECT_TRUE(positive("!(!(M(R, R)))"));
  EXPECT_FALSE(positive("M(R, R) -> adj(R, R)"));
  EXPECT_TRUE(positive("adj(R, R) -> M(R, R)"));
  EXPECT_FALSE(positive("M(R, R) <-> adj(R, R)"));
  EXPECT_TRUE(positive("N(R) <-> adj(R, R)"));  // other set variables free
  EXPECT_TRUE(positive("exists Z . (M(R, Z) & adj(Z, R))"));
}

TEST(RegFoTest, BooleanSentences1D) {
  ConstraintDatabase db = Db1("(x > 0 & x < 1) | x = 5");
  EXPECT_TRUE(Sentence(db, "exists x . S(x)"));
  EXPECT_TRUE(Sentence(db, "exists x . (S(x) & x > 2)"));
  EXPECT_FALSE(Sentence(db, "exists x . (S(x) & x > 6)"));
  EXPECT_TRUE(Sentence(db, "forall x . (S(x) -> x > 0)"));
  EXPECT_FALSE(Sentence(db, "forall x . (S(x) -> x < 3)"));
  EXPECT_TRUE(Sentence(db, "forall x . (x > 0 & x < 1 -> S(x))"));
}

TEST(RegFoTest, RegionSentences) {
  // Closed triangle: regions of dims 0,1,2 inside S.
  ConstraintDatabase db = Db2("x >= 0 & y >= 0 & x + y <= 4");
  EXPECT_TRUE(Sentence(db, "exists R . (subset(R) & dim(R) = 2)"));
  EXPECT_TRUE(Sentence(db, "exists R . (subset(R) & dim(R) = 0)"));
  EXPECT_TRUE(Sentence(db, "forall R . (subset(R) -> bounded(R))"));
  EXPECT_FALSE(Sentence(db, "forall R . bounded(R)"));
  EXPECT_TRUE(Sentence(db, "exists R R' . (subset(R) & subset(R') & "
                           "adj(R, R') & dim(R) = 0 & dim(R') = 1)"));
  // Every point of S lies in a region contained in S.
  EXPECT_TRUE(Sentence(
      db, "forall x y . (S(x, y) -> exists R . (in(x, y; R) & subset(R)))"));
  // The containment relation is functional on arrangements.
  EXPECT_TRUE(Sentence(db, "forall x y . exists R . in(x, y; R)"));
  EXPECT_FALSE(Sentence(
      db,
      "exists x y R R' . (in(x, y; R) & in(x, y; R') & !(R = R'))"));
}

TEST(RegFoTest, NonBooleanAnswers) {
  ConstraintDatabase db = Db1("(x > 0 & x < 1) | (x > 2 & x < 3)");
  auto ext = MakeArrangementExtension(db);
  // Identity query returns (a representation of) S itself.
  auto identity = EvaluateQueryText(*ext, "S(x)");
  ASSERT_TRUE(identity.ok()) << identity.status().ToString();
  EXPECT_EQ(identity->free_vars, std::vector<std::string>{"x"});
  EXPECT_TRUE(AreEquivalent(identity->formula, db.representation()));
  // Shift: exists y (S(y) & x = y + 1)  ==  (1,2) | (3,4).
  auto shifted = EvaluateQueryText(*ext, "exists y . (S(y) & x = y + 1)");
  ASSERT_TRUE(shifted.ok()) << shifted.status().ToString();
  auto expected = ParseDnf("(x > 1 & x < 2) | (x > 3 & x < 4)", {"x"});
  ASSERT_TRUE(expected.ok());
  EXPECT_TRUE(AreEquivalent(shifted->formula, *expected));
  // Downward closure: exists y (S(y) & x < y)  ==  x < 3.
  auto below = EvaluateQueryText(*ext, "exists y . (S(y) & x < y)");
  ASSERT_TRUE(below.ok());
  auto expected2 = ParseDnf("x < 3", {"x"});
  EXPECT_TRUE(AreEquivalent(below->formula, *expected2));
  // A region-flavoured non-boolean query: points in 1-dimensional regions
  // contained in S (the open intervals).
  auto open_part = EvaluateQueryText(
      *ext, "exists R . (in(x; R) & subset(R) & dim(R) = 1)");
  ASSERT_TRUE(open_part.ok());
  EXPECT_TRUE(AreEquivalent(open_part->formula, db.representation()));
}

TEST(RegFoTest, TwoVariableAnswer) {
  ConstraintDatabase db = Db2("x >= 0 & y >= 0 & x + y <= 4");
  auto ext = MakeArrangementExtension(db);
  auto r = EvaluateQueryText(*ext, "S(x, y) & x = y");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->free_vars.size(), 2u);
  auto expected = ParseDnf("x >= 0 & y >= 0 & x + y <= 4 & x = y",
                           {"x", "y"});
  EXPECT_TRUE(AreEquivalent(r->formula, *expected));
}

TEST(RegLfpTest, PaperConnQuery1D) {
  // Connected: one interval (two overlapping disjunct representations).
  ConstraintDatabase connected = Db1("(x >= 0 & x <= 2) | (x >= 1 & x <= 3)");
  EXPECT_TRUE(Sentence(connected, ConnQueryText(1)));
  // Disconnected: two separated intervals.
  ConstraintDatabase split = Db1("(x >= 0 & x <= 1) | (x >= 2 & x <= 3)");
  EXPECT_FALSE(Sentence(split, ConnQueryText(1)));
  // Touching intervals are connected (shared endpoint region).
  ConstraintDatabase touching = Db1("(x >= 0 & x <= 1) | (x >= 1 & x <= 2)");
  EXPECT_TRUE(Sentence(touching, ConnQueryText(1)));
  // Half-open gap: (0,1) and [1,2] touch at 1 but 1 is only in the second.
  ConstraintDatabase half = Db1("(x > 0 & x < 1) | (x > 1 & x < 2)");
  EXPECT_FALSE(Sentence(half, ConnQueryText(1)));
}

TEST(RegLfpTest, RegionConnOnCombs) {
  for (size_t teeth : {1u, 2u, 3u}) {
    ConstraintDatabase connected = MakeComb(teeth, true);
    ConstraintDatabase split = MakeComb(teeth, false);
    EXPECT_TRUE(Sentence(connected, RegionConnQueryText())) << teeth;
    EXPECT_EQ(Sentence(split, RegionConnQueryText()), teeth == 1) << teeth;
  }
  EXPECT_TRUE(Sentence(MakeStaircase(3), RegionConnQueryText()));
  EXPECT_FALSE(Sentence(MakeBoxGrid(2), RegionConnQueryText()));
}

TEST(RegLfpTest, PaperConnQuery2D) {
  // The literal point-quantified Conn on a small 2D instance.
  ConstraintDatabase two_boxes =
      Db2("(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
          "(x >= 3 & x <= 4 & y >= 0 & y <= 1)");
  EXPECT_FALSE(Sentence(two_boxes, ConnQueryText(2)));
  ConstraintDatabase one_box = Db2("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  EXPECT_TRUE(Sentence(one_box, ConnQueryText(2)));
}

TEST(RegLfpTest, LfpEqualsIfpOnPositiveBody) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string lfp = RegionConnQueryText();
  std::string ifp = lfp;
  ifp.replace(ifp.find("[lfp"), 4, "[ifp");
  auto a = EvaluateSentenceText(*ext, lfp);
  auto b = EvaluateSentenceText(*ext, ifp);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(RegPfpTest, ConvergentAndDivergent) {
  ConstraintDatabase db = Db1("x >= 0 & x <= 1");
  // Convergent PFP (monotone body): behaves like LFP.
  EXPECT_TRUE(Sentence(db,
                       "exists A . [pfp M R : M(R) | subset(R)](A)"));
  // Divergent PFP: complementation flips every stage, never a fixpoint;
  // the result is the empty set.
  EXPECT_FALSE(Sentence(db, "exists A . [pfp M R : !(M(R))](A)"));
}

TEST(RegTcTest, TcMatchesLfpConnectivity) {
  for (bool connected : {true, false}) {
    ConstraintDatabase db = MakeComb(2, connected);
    auto ext = MakeArrangementExtension(db);
    auto via_lfp = EvaluateSentenceText(*ext, RegionConnQueryText());
    auto via_tc = EvaluateSentenceText(*ext, RegionConnTcQueryText(false));
    ASSERT_TRUE(via_lfp.ok() && via_tc.ok());
    EXPECT_EQ(*via_lfp, *via_tc);
    EXPECT_EQ(*via_tc, connected);
  }
}

TEST(RegTcTest, TcReflexive) {
  ConstraintDatabase db = Db1("x = 0");
  // Even with an empty edge relation, X reaches itself (length-1 sequence).
  EXPECT_TRUE(Sentence(db, "forall X . [tc R ; R' : false](X ; X)"));
  EXPECT_FALSE(
      Sentence(db, "exists X Y . (!(X = Y) & [tc R ; R' : false](X ; Y))"));
}

TEST(RegTcTest, DtcRequiresUniqueSuccessor) {
  // S = [0, 1]: the open interval (0, 1) has TWO adjacent in-S endpoint
  // vertices, so the in-S adjacency step from the 1-dimensional region is
  // not deterministic — TC reaches a vertex from it, DTC does not.
  ConstraintDatabase db = Db1("x >= 0 & x <= 1");
  auto ext = MakeArrangementExtension(db);
  auto tc = EvaluateSentenceText(
      *ext,
      "exists X Y . (dim(X) = 1 & subset(X) & dim(Y) = 0 & subset(Y) & "
      "[tc R ; R' : subset(R) & subset(R') & adj(R, R')](X ; Y))");
  ASSERT_TRUE(tc.ok()) << tc.status().ToString();
  EXPECT_TRUE(*tc);
  auto dtc = EvaluateSentenceText(
      *ext,
      "exists X Y . (dim(X) = 1 & subset(X) & dim(Y) = 0 & subset(Y) & "
      "[dtc R ; R' : subset(R) & subset(R') & adj(R, R')](X ; Y))");
  ASSERT_TRUE(dtc.ok());
  EXPECT_FALSE(*dtc);
  // From a vertex, the in-S successor IS unique, so DTC reaches the
  // interval in the opposite direction.
  auto dtc_rev = EvaluateSentenceText(
      *ext,
      "exists X Y . (dim(X) = 0 & subset(X) & dim(Y) = 1 & subset(Y) & "
      "[dtc R ; R' : subset(R) & subset(R') & adj(R, R')](X ; Y))");
  ASSERT_TRUE(dtc_rev.ok());
  EXPECT_TRUE(*dtc_rev);
}

TEST(RbitTest, BitsOfFiveThirds) {
  // 0-dim regions at x = 1, 2, 3: ranks 0, 1, 2.
  ConstraintDatabase db = Db1("x = 1 | x = 2 | x = 3");
  auto ext = MakeArrangementExtension(db);
  // a = 5/3: numerator 5 = 101b (bits 0 and 2), denominator 3 = 11b
  // (bits 0 and 1).
  auto probe = [&](int64_t pn, int64_t pd) {
    std::string q = "exists Rn Rd . (in(" + std::to_string(pn) +
                    "; Rn) & in(" + std::to_string(pd) +
                    "; Rd) & [rbit x : x = 5/3](Rn, Rd))";
    auto r = EvaluateSentenceText(*ext, q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  };
  EXPECT_TRUE(probe(1, 1));   // bit0 num, bit0 den
  EXPECT_TRUE(probe(1, 2));   // bit0 num, bit1 den
  EXPECT_TRUE(probe(3, 1));   // bit2 num, bit0 den
  EXPECT_FALSE(probe(2, 1));  // bit1 of 5 is 0
  EXPECT_FALSE(probe(1, 3));  // bit2 of 3 is 0
  EXPECT_FALSE(probe(3, 3));
}

TEST(RbitTest, ZeroAndNonSingletonCases) {
  ConstraintDatabase db = Db1("(x >= 0 & x <= 1) | x = 4");
  auto ext = MakeArrangementExtension(db);
  // a = 0: pairs (R, R) of equal higher-dimensional regions.
  auto zero_eq = EvaluateSentenceText(
      *ext, "exists R . (dim(R) = 1 & [rbit x : x = 0](R, R))");
  ASSERT_TRUE(zero_eq.ok());
  EXPECT_TRUE(*zero_eq);
  auto zero_point = EvaluateSentenceText(
      *ext, "exists R . (dim(R) = 0 & [rbit x : x = 0](R, R))");
  ASSERT_TRUE(zero_point.ok());
  EXPECT_FALSE(*zero_point);
  auto zero_neq = EvaluateSentenceText(
      *ext,
      "exists R R' . (!(R = R') & [rbit x : x = 0](R, R'))");
  ASSERT_TRUE(zero_neq.ok());
  EXPECT_FALSE(*zero_neq);
  // Non-singleton body: empty relation.
  auto interval = EvaluateSentenceText(
      *ext, "exists R R' . [rbit x : x > 0](R, R')");
  ASSERT_TRUE(interval.ok());
  EXPECT_FALSE(*interval);
  auto empty = EvaluateSentenceText(
      *ext, "exists R R' . [rbit x : x > 0 & x < 0](R, R')");
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(*empty);
  // Region-parameterized body: a is the rank-dependent... the body may use
  // the applied regions themselves (P̄ parameters of Definition 5.1).
  auto param = EvaluateSentenceText(
      *ext,
      "exists R R' . (dim(R) = 0 & in(4; R) & [rbit x : in(x; R)](R, R'))");
  ASSERT_TRUE(param.ok());
  // Body defines {4}; numerator 4 = 100b, so bit must be at rank 2 — but
  // there are only ranks 0 and 1 (points 0, 1, 4 => ranks 0,1,2). Rank of
  // the region containing 4 is 2, and bit 2 of 4 is 1; denominator 1 has
  // bit 0 at rank 0. So some pair exists.
  EXPECT_TRUE(*param);
}

TEST(EvaluatorTest, MemoizationAblationAgrees) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  Evaluator::Options with_memo;
  Evaluator::Options without_memo;
  without_memo.memoize = false;
  auto a = EvaluateSentenceText(*ext, RegionConnQueryText(), with_memo);
  auto b = EvaluateSentenceText(*ext, RegionConnQueryText(), without_memo);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(*a, *b);
}

TEST(EvaluatorTest, StatsPopulated) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  FormulaPtr q = Parse(RegionConnQueryText());
  Evaluator ev(*ext);
  auto r = ev.EvaluateSentence(*q);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(ev.stats().bool_evaluations, 0u);
  EXPECT_GT(ev.stats().fixpoint_iterations, 0u);
  EXPECT_EQ(ev.stats().fixpoints_computed, 1u);
  EXPECT_GT(ev.stats().region_expansions, 0u);
  // A query whose per-region subformula is re-evaluated across an outer
  // region quantifier exercises the memo table.
  FormulaPtr q2 = Parse(
      "forall R R' . ((exists x . in(x, x; R)) | adj(R, R') | true)");
  Evaluator ev2(*ext);
  auto r2 = ev2.EvaluateSentence(*q2);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(*r2);
  EXPECT_GT(ev2.stats().memo_hits, 0u);
  EXPECT_GT(ev2.stats().qe_eliminations, 0u);
}

TEST(EvaluatorTest, DecompositionExtensionQueries) {
  // Region-level queries work over the Section 7 decomposition as well.
  ConstraintDatabase two_boxes =
      Db2("(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
          "(x >= 3 & x <= 4 & y >= 0 & y <= 1)");
  auto ext = MakeDecompositionExtension(two_boxes);
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok()) << conn.status().ToString();
  EXPECT_FALSE(*conn);
  ConstraintDatabase one_box = Db2("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  auto ext2 = MakeDecompositionExtension(one_box);
  auto conn2 = EvaluateSentenceText(*ext2, RegionConnQueryText());
  ASSERT_TRUE(conn2.ok());
  EXPECT_TRUE(*conn2);
  // Note 7.1: decomposition regions need not cover R^d — points outside S
  // are in no region.
  auto covered = EvaluateSentenceText(
      *ext2, "forall x y . exists R . in(x, y; R)");
  ASSERT_TRUE(covered.ok());
  EXPECT_FALSE(*covered);
  // But every point of S is in at least one region (Appendix A).
  auto covers_s = EvaluateSentenceText(
      *ext2, "forall x y . (S(x, y) -> exists R . in(x, y; R))");
  ASSERT_TRUE(covers_s.ok());
  EXPECT_TRUE(*covers_s);
}

TEST(EvaluatorTest, EmptyDatabase) {
  ConstraintDatabase db("S", DnfFormula::False(1), {"x"});
  EXPECT_FALSE(Sentence(db, "exists x . S(x)"));
  EXPECT_TRUE(Sentence(db, RegionConnQueryText()));  // vacuously connected
  EXPECT_TRUE(Sentence(db, ConnQueryText(1)));
}

TEST(EvaluatorTest, SentenceRejectsFreeVariables) {
  ConstraintDatabase db = Db1("x = 0");
  auto ext = MakeArrangementExtension(db);
  auto r = EvaluateSentenceText(*ext, "S(x)");
  EXPECT_FALSE(r.ok());
}

TEST(EvaluatorTest, TupleSpaceCapIsAStatusNotACrash) {
  ConstraintDatabase db = MakeComb(2, true);  // 63 regions
  auto ext = MakeArrangementExtension(db);
  Evaluator::Options tiny;
  tiny.max_tuple_space = 100;  // 63^2 tuples exceed this
  auto r = EvaluateSentenceText(*ext, RegionConnQueryText(), tiny);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(r.status().IsResourceFailure());
  // A unary fixed point fits.
  auto ok = EvaluateSentenceText(
      *ext, "exists A . [lfp M R : M(R) | subset(R)](A)", tiny);
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_TRUE(*ok);
}

TEST(RiverTest, PaperPollutionQuery) {
  // chem1 upstream at 0, chem2 downstream at 2: combination found.
  {
    ConstraintDatabase db = MakeRiverScenario(3, {}, {0}, {2});
    auto ext = MakeArrangementExtension(db);
    auto r = EvaluateSentenceText(*ext, RiverPollutionQueryText());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_TRUE(*r);
  }
  // Only chem1, no chem2: no marking.
  {
    ConstraintDatabase db = MakeRiverScenario(3, {}, {0}, {});
    auto ext = MakeArrangementExtension(db);
    auto r = EvaluateSentenceText(*ext, RiverPollutionQueryText());
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r);
  }
  // Only chem2: no marking either (the chem1 conjunct never fires).
  {
    ConstraintDatabase db = MakeRiverScenario(3, {}, {}, {2});
    auto ext = MakeArrangementExtension(db);
    auto r = EvaluateSentenceText(*ext, RiverPollutionQueryText());
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(*r);
  }
}

}  // namespace
}  // namespace lcdb
