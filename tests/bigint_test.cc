#include "arith/bigint.h"

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace lcdb {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.IsZero());
  EXPECT_EQ(z.Sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_EQ(z.BitLength(), 0u);
}

TEST(BigIntTest, SmallConstruction) {
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  for (const char* text :
       {"0", "1", "-1", "123456789012345678901234567890",
        "-999999999999999999999999999999999999", "42"}) {
    auto parsed = BigInt::FromString(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed->ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
}

TEST(BigIntTest, FromStringNegativeZeroNormalizes) {
  auto parsed = BigInt::FromString("-0");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->IsZero());
  EXPECT_FALSE(parsed->IsNegative());
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  auto a = BigInt::FromString("4294967295").value();  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  auto b = BigInt::FromString("18446744073709551615").value();  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, MixedSignAddition) {
  EXPECT_EQ((BigInt(10) + BigInt(-3)).ToInt64(), 7);
  EXPECT_EQ((BigInt(-10) + BigInt(3)).ToInt64(), -7);
  EXPECT_EQ((BigInt(-10) + BigInt(10)).Sign(), 0);
  EXPECT_EQ((BigInt(3) - BigInt(10)).ToInt64(), -7);
}

TEST(BigIntTest, MultiplicationLarge) {
  auto a = BigInt::FromString("123456789012345678901234567890").value();
  auto b = BigInt::FromString("987654321098765432109876543210").value();
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).Sign(), 0);
  EXPECT_EQ((a * BigInt(-1)).ToString(),
            "-123456789012345678901234567890");
}

TEST(BigIntTest, DivModTruncatesTowardZero) {
  BigInt q, r;
  BigInt::DivMod(BigInt(7), BigInt(2), &q, &r);
  EXPECT_EQ(q.ToInt64(), 3);
  EXPECT_EQ(r.ToInt64(), 1);
  BigInt::DivMod(BigInt(-7), BigInt(2), &q, &r);
  EXPECT_EQ(q.ToInt64(), -3);
  EXPECT_EQ(r.ToInt64(), -1);
  BigInt::DivMod(BigInt(7), BigInt(-2), &q, &r);
  EXPECT_EQ(q.ToInt64(), -3);
  EXPECT_EQ(r.ToInt64(), 1);
  BigInt::DivMod(BigInt(-7), BigInt(-2), &q, &r);
  EXPECT_EQ(q.ToInt64(), 3);
  EXPECT_EQ(r.ToInt64(), -1);
}

TEST(BigIntTest, DivisionLarge) {
  auto a = BigInt::FromString("121932631137021795226185032733622923332237463801111263526900")
               .value();
  auto b = BigInt::FromString("987654321098765432109876543210").value();
  EXPECT_EQ((a / b).ToString(), "123456789012345678901234567890");
  EXPECT_EQ((a % b).Sign(), 0);
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)).ToInt64(), 6);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)).ToInt64(), 5);
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)).Sign(), 0);
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)).ToInt64(), 1);
}

TEST(BigIntTest, BitAccess) {
  BigInt v(0b101101);
  EXPECT_TRUE(v.Bit(0));
  EXPECT_FALSE(v.Bit(1));
  EXPECT_TRUE(v.Bit(2));
  EXPECT_TRUE(v.Bit(3));
  EXPECT_FALSE(v.Bit(4));
  EXPECT_TRUE(v.Bit(5));
  EXPECT_FALSE(v.Bit(6));
  EXPECT_FALSE(v.Bit(1000));
  EXPECT_EQ(v.BitLength(), 6u);
  // Bits of the magnitude for negatives.
  EXPECT_TRUE(BigInt(-3).Bit(0));
  EXPECT_TRUE(BigInt(-3).Bit(1));
}

TEST(BigIntTest, Pow2) {
  EXPECT_EQ(BigInt::Pow2(0).ToInt64(), 1);
  EXPECT_EQ(BigInt::Pow2(10).ToInt64(), 1024);
  EXPECT_EQ(BigInt::Pow2(100).ToString(), "1267650600228229401496703205376");
  EXPECT_EQ(BigInt::Pow2(100).BitLength(), 101u);
  EXPECT_TRUE(BigInt::Pow2(100).Bit(100));
  EXPECT_FALSE(BigInt::Pow2(100).Bit(99));
}

TEST(BigIntTest, ComparisonTotalOrder) {
  std::vector<BigInt> sorted = {
      BigInt::FromString("-100000000000000000000").value(), BigInt(-2),
      BigInt(0), BigInt(1), BigInt(2),
      BigInt::FromString("100000000000000000000").value()};
  for (size_t i = 0; i < sorted.size(); ++i) {
    for (size_t j = 0; j < sorted.size(); ++j) {
      EXPECT_EQ(sorted[i] < sorted[j], i < j) << i << " " << j;
      EXPECT_EQ(sorted[i] == sorted[j], i == j);
      EXPECT_EQ(sorted[i] <= sorted[j], i <= j);
    }
  }
}

TEST(BigIntTest, FitsInt64Boundary) {
  EXPECT_TRUE(BigInt(INT64_MAX).FitsInt64());
  EXPECT_TRUE(BigInt(INT64_MIN).FitsInt64());
  EXPECT_FALSE((BigInt(INT64_MAX) + BigInt(1)).FitsInt64());
  EXPECT_FALSE((BigInt(INT64_MIN) - BigInt(1)).FitsInt64());
  EXPECT_EQ(BigInt(INT64_MIN).ToInt64(), INT64_MIN);
}

// Property sweep: random 64/128-bit arithmetic checked against a reference
// implementation built from int64 pieces.
class BigIntPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BigIntPropertyTest, RingAxiomsAndDivision) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> dist(-1'000'000'000'000'000,
                                              1'000'000'000'000'000);
  for (int iter = 0; iter < 50; ++iter) {
    const int64_t x = dist(rng);
    const int64_t y = dist(rng);
    const int64_t z = dist(rng);
    BigInt a(x), b(y), c(z);
    // Commutativity / associativity of + on exact values.
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    // Distributivity.
    EXPECT_EQ(a * (b + c), a * b + a * c);
    // Subtraction inverts addition.
    EXPECT_EQ((a + b) - b, a);
    // Division identity: a = (a/b)*b + a%b, |a%b| < |b|.
    if (y != 0) {
      BigInt q = a / b;
      BigInt r = a % b;
      EXPECT_EQ(q * b + r, a);
      EXPECT_TRUE(r.Abs() < b.Abs());
      if (!r.IsZero()) {
        EXPECT_EQ(r.Sign(), a.Sign());
      }
    }
    // Gcd divides both and is positive.
    BigInt g = BigInt::Gcd(a, b);
    if (!a.IsZero() || !b.IsZero()) {
      EXPECT_GT(g.Sign(), 0);
      if (!a.IsZero()) {
        EXPECT_EQ((a % g).Sign(), 0);
      }
      if (!b.IsZero()) {
        EXPECT_EQ((b % g).Sign(), 0);
      }
    }
    // String round-trip.
    EXPECT_EQ(BigInt::FromString(a.ToString()).value(), a);
    // Hash equality consistency.
    EXPECT_EQ(a.Hash(), BigInt(x).Hash());
  }
}

TEST_P(BigIntPropertyTest, WideMultiplicationMatchesRepeatedAddition) {
  std::mt19937_64 rng(GetParam() * 7919 + 13);
  std::uniform_int_distribution<int64_t> dist(-1'000'000, 1'000'000);
  std::uniform_int_distribution<int> small(0, 30);
  for (int iter = 0; iter < 10; ++iter) {
    BigInt a(dist(rng));
    // Build a large value via squaring, then check bit identities.
    BigInt big = a * a * a * a;
    int k = small(rng);
    BigInt shifted = big * BigInt::Pow2(static_cast<size_t>(k));
    for (size_t bit = 0; bit < 20; ++bit) {
      EXPECT_EQ(shifted.Bit(bit + static_cast<size_t>(k)), big.Bit(bit));
    }
    EXPECT_EQ(shifted / BigInt::Pow2(static_cast<size_t>(k)), big);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntPropertyTest,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u));

}  // namespace
}  // namespace lcdb
