// Tests for the fleet-observability layer (engine/obslog.h,
// engine/profiler.h): the query flight recorder's bounded ring and JSONL
// schema, automatic appends from the Evaluator and QuerySession, the
// continuous profiler's deterministic sampling policy and tail-based trace
// retention, and post-mortem bundle serialization.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "db/region_extension.h"
#include "engine/obslog.h"
#include "engine/profiler.h"
#include "engine/session.h"
#include "engine/trace.h"
#include "util/status.h"

namespace lcdb {
namespace {

TEST(ObsLogTest, StatusCodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "parse_error");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "invalid_argument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "resource_exhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "deadline_exceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCancelled), "cancelled");
}

TEST(ObsLogTest, FailureTaxonomy) {
  EXPECT_EQ(ClassifyFailure(Status::Ok()), FailureClass::kNone);
  EXPECT_EQ(ClassifyFailure(Status::ParseError("x")), FailureClass::kInvalid);
  EXPECT_EQ(ClassifyFailure(Status::InvalidArgument("x")),
            FailureClass::kInvalid);
  EXPECT_EQ(ClassifyFailure(Status::ResourceExhausted("x")),
            FailureClass::kResource);
  EXPECT_EQ(ClassifyFailure(Status::DeadlineExceeded("x")),
            FailureClass::kResource);
  EXPECT_EQ(ClassifyFailure(Status::Cancelled("x")),
            FailureClass::kCancelled);
  EXPECT_EQ(ClassifyFailure(Status::Internal("x")), FailureClass::kFault);
  EXPECT_EQ(ClassifyFailure(Status::Unsupported("x")), FailureClass::kFault);
  EXPECT_STREQ(FailureClassName(FailureClass::kResource), "resource");
  EXPECT_STREQ(FailureClassName(FailureClass::kNone), "none");
}

TEST(ObsLogTest, RecordToJsonCarriesTheSchema) {
  QueryRecord r;
  r.sequence = 7;
  r.query_hash = 42;
  r.backend = "vm";
  r.plan_fingerprint = 99;
  r.typecheck_ns = 10;
  r.execute_ns = 20;
  r.total_ns = 35;
  r.tripped_budget = "max_tuple_space";
  r.outcome = "resource";
  r.status_code = "resource_exhausted";
  r.retries = 2;
  r.sampled = true;
  const std::string json = r.ToJson();
  EXPECT_NE(json.find("\"schema\":\"lcdb.query_record.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"seq\":7"), std::string::npos);
  EXPECT_NE(json.find("\"query_hash\":42"), std::string::npos);
  EXPECT_NE(json.find("\"backend\":\"vm\""), std::string::npos);
  EXPECT_NE(json.find("\"plan_fingerprint\":99"), std::string::npos);
  EXPECT_NE(json.find("\"phase_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"governor\""), std::string::npos);
  EXPECT_NE(json.find("\"cache\""), std::string::npos);
  EXPECT_NE(json.find("\"outcome\":\"resource\""), std::string::npos);
  EXPECT_NE(json.find("\"status\":\"resource_exhausted\""),
            std::string::npos);
  EXPECT_NE(json.find("\"retries\":2"), std::string::npos);
  EXPECT_NE(json.find("\"sampled\":true"), std::string::npos);
}

TEST(ObsLogTest, RingBoundsAndTailOrder) {
  QueryFlightRecorder recorder(QueryFlightRecorder::Options{.capacity = 4});
  for (uint64_t i = 1; i <= 10; ++i) {
    QueryRecord r;
    r.query_hash = i;
    EXPECT_EQ(recorder.Append(r), i);  // sequences are monotone past drops
  }
  EXPECT_EQ(recorder.size(), 4u);
  EXPECT_EQ(recorder.appended(), 10u);
  EXPECT_EQ(recorder.dropped(), 6u);

  const std::vector<QueryRecord> tail = recorder.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].sequence, 9u);  // oldest first
  EXPECT_EQ(tail[1].sequence, 10u);
  // Asking past the ring clamps to what is retained.
  EXPECT_EQ(recorder.Tail(100).size(), 4u);

  // One JSONL line per retained record.
  const std::string jsonl = recorder.ToJsonl();
  size_t lines = 0;
  for (char c : jsonl) lines += (c == '\n');
  EXPECT_EQ(lines, 4u);
}

TEST(ObsLogTest, AnnotateLastRewritesTheNewestRecord) {
  QueryFlightRecorder recorder;
  recorder.AnnotateLast(1, 1, "fault", true);  // empty ring: no-op
  QueryRecord r;
  recorder.Append(r);
  recorder.Append(r);
  recorder.AnnotateLast(3, 2, "resource", true);
  const std::vector<QueryRecord> tail = recorder.Tail(2);
  ASSERT_EQ(tail.size(), 2u);
  EXPECT_EQ(tail[0].retries, 0u);  // the older record is untouched
  EXPECT_EQ(tail[1].retries, 3u);
  EXPECT_EQ(tail[1].resumes, 2u);
  EXPECT_EQ(tail[1].outcome, "resource");
  EXPECT_TRUE(tail[1].sampled);
}

TEST(ObsLogTest, ScopedInstallMirrorsTheTracer) {
  EXPECT_EQ(ActiveFlightRecorderOrNull(), nullptr);
  QueryFlightRecorder recorder;
  {
    ScopedFlightRecorder scoped(recorder);
    EXPECT_EQ(ActiveFlightRecorderOrNull(), &recorder);
    {  // installs nest; the innermost wins and the outer is restored
      QueryFlightRecorder inner;
      ScopedFlightRecorder scoped_inner(inner);
      EXPECT_EQ(ActiveFlightRecorderOrNull(), &inner);
    }
    EXPECT_EQ(ActiveFlightRecorderOrNull(), &recorder);
  }
  EXPECT_EQ(ActiveFlightRecorderOrNull(), nullptr);
}

/// One-region interval database, the smallest corpus that exercises the
/// whole evaluate pipeline.
std::unique_ptr<RegionExtension> TinyExtension() {
  auto f = ParseDnf("(x > 0 & x < 1) | x = 5", {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  ConstraintDatabase db("S", *f, {"x"});
  return MakeArrangementExtension(db);
}

TEST(ObsLogTest, EvaluatorAppendsOneRecordPerCall) {
  auto ext = TinyExtension();
  QueryFlightRecorder recorder;
  ScopedFlightRecorder scoped(recorder);

  auto parsed = ParseQuery("exists x . (S(x) & x > 2)", "S");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Evaluator evaluator(*ext);
  auto answer = evaluator.Evaluate(**parsed);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();

  ASSERT_EQ(recorder.appended(), 1u);
  const QueryRecord r = recorder.Tail(1)[0];
  EXPECT_EQ(r.backend, "tree");  // default Evaluator backend
  EXPECT_EQ(r.outcome, "none");
  EXPECT_EQ(r.status_code, "ok");
  EXPECT_NE(r.query_hash, 0u);
  EXPECT_NE(r.plan_fingerprint, 0u);
  EXPECT_GT(r.total_ns, 0u);
  // Phase timings sit inside the total.
  EXPECT_LE(r.typecheck_ns + r.plan_build_ns + r.plan_optimize_ns +
                r.execute_ns,
            r.total_ns);

  // A typecheck rejection still appends — outcome invalid, no plan.
  auto bad = ParseQuery("S(x, y)", "S");
  ASSERT_TRUE(bad.ok()) << bad.status().ToString();
  auto rejected = evaluator.Evaluate(**bad);
  ASSERT_FALSE(rejected.ok());
  ASSERT_EQ(recorder.appended(), 2u);
  const QueryRecord r2 = recorder.Tail(1)[0];
  EXPECT_EQ(r2.outcome, "invalid");
  EXPECT_EQ(r2.plan_fingerprint, 0u);
}

TEST(ObsLogTest, TraceSpansDroppedIsExported) {
  auto ext = TinyExtension();
  // Even this small query begins a few dozen spans (typecheck, analyze,
  // the pass pipeline, execution, LP solves); a capacity-1 tracer must
  // drop most of them, and the evaluator must export the count.
  auto parsed = ParseQuery("exists x . (S(x) & x > 2)", "S");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  QueryTracer tracer(QueryTracer::Options{.capacity = 1});
  ScopedTracer scoped(tracer);
  Evaluator evaluator(*ext);
  auto answer = evaluator.Evaluate(**parsed);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_GT(evaluator.stats().trace_spans_dropped, 0u);
  const MetricsSnapshot snap = evaluator.stats().ToMetrics();
  EXPECT_GT(snap.values.at("trace.spans_dropped"), 0u);
}

TEST(ObsLogTest, SamplingIsDeterministic) {
  // Query k (1-based) is sampled iff (k-1) % N == 0, so exactly
  // ceil(queries / N) of any prefix are sampled — no RNG.
  ContinuousProfiler::Options options;
  options.sample_every = 64;
  ContinuousProfiler profiler(options);
  uint64_t sampled = 0;
  for (int i = 0; i < 130; ++i) sampled += profiler.ShouldSample() ? 1 : 0;
  EXPECT_EQ(sampled, 3u);  // ceil(130 / 64): queries 1, 65, 129

  ContinuousProfiler off(ContinuousProfiler::Options{.sample_every = 0});
  EXPECT_FALSE(off.ShouldSample());
  ContinuousProfiler all(ContinuousProfiler::Options{.sample_every = 1});
  EXPECT_TRUE(all.ShouldSample());
  EXPECT_TRUE(all.ShouldSample());
}

TEST(ObsLogTest, ProfilerFoldsSpansAndRetainsTheTail) {
  ContinuousProfiler::Options options;
  options.sample_every = 1;
  options.keep_traces = 2;
  ContinuousProfiler profiler(options);

  QueryTracer tracer;
  tracer.EndSpan(tracer.BeginSpan("plan.execute"));
  tracer.EndSpan(tracer.BeginSpan("plan.execute"));
  tracer.EndSpan(tracer.BeginSpan("qe.project"));

  ASSERT_TRUE(profiler.ShouldSample());
  profiler.RecordQuery(1000, false, &tracer);
  const MetricsSnapshot snap = profiler.Metrics();
  EXPECT_EQ(snap.values.at("profile.queries"), 1u);
  EXPECT_EQ(snap.values.at("profile.sampled"), 1u);
  EXPECT_EQ(snap.histograms.at("profile.op.plan.execute").count, 2u);
  EXPECT_EQ(snap.histograms.at("profile.op.qe.project").count, 1u);
  EXPECT_EQ(snap.histograms.at("profile.query.total_ns").count, 1u);

  // Retention is bounded and failure-biased: overflow evicts the oldest
  // non-failed tree first, so a failed trace survives later successes.
  ASSERT_TRUE(profiler.ShouldSample());
  profiler.RecordQuery(2000, /*failed=*/true, &tracer);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(profiler.ShouldSample());
    profiler.RecordQuery(500 + i, false, &tracer);
  }
  ASSERT_LE(profiler.retained().size(), 2u);
  bool kept_failed = false;
  for (const auto& t : profiler.retained()) kept_failed |= t.failed;
  EXPECT_TRUE(kept_failed);
}

TEST(ObsLogTest, PostmortemWriterIsABoundedRing) {
  const std::string dir = ::testing::TempDir() + "/lcdb_obslog_pm";
  std::filesystem::remove_all(dir);
  PostmortemWriter writer(
      PostmortemWriter::Options{.directory = dir, .max_bundles = 2});
  PostmortemBundle b;
  b.query_hash = 1;
  b.query_text = "exists x . \"quoted\"";
  b.status_code = "internal";
  b.status_message = "boom";
  b.failure_class = "fault";
  b.ladder.push_back("vm->tree@1");
  for (int i = 0; i < 3; ++i) {
    auto path = writer.Write(b);
    ASSERT_TRUE(path.ok()) << path.status().ToString();
    EXPECT_TRUE(std::filesystem::exists(*path));
  }
  EXPECT_EQ(writer.written(), 3u);
  // Slot 3 % 2 wrapped onto slot 1: the directory never exceeds the bound.
  size_t files = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    (void)entry;
    ++files;
  }
  EXPECT_EQ(files, 2u);

  std::ifstream in(writer.last_path());
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema\":\"lcdb.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\\\"quoted\\\""), std::string::npos)  // escaped
      << json;
  EXPECT_NE(json.find("\"ladder\":[\"vm->tree@1\"]"), std::string::npos);
}

TEST(ObsLogTest, SessionSamplesExactlyEveryNthQuery) {
  auto ext = TinyExtension();
  QueryFlightRecorder recorder;
  ScopedFlightRecorder scoped(recorder);
  SessionOptions options;
  options.profile.sample_every = 4;
  QuerySession session(*ext, options);
  for (int i = 0; i < 10; ++i) {
    auto answer = session.Evaluate("exists x . (S(x) & x > 2)");
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  }
  ASSERT_NE(session.profiler(), nullptr);
  EXPECT_EQ(session.profiler()->queries_seen(), 10u);
  EXPECT_EQ(session.profiler()->queries_sampled(), 3u);  // ceil(10 / 4)
  // The recorder's sampled flags agree with the profiler's counts.
  uint64_t flagged = 0;
  for (const QueryRecord& r : recorder.Tail(100)) flagged += r.sampled;
  EXPECT_EQ(flagged, 3u);
  // The sampled queries funded the per-op histograms.
  const MetricsSnapshot metrics = session.Metrics();
  EXPECT_EQ(metrics.values.at("profile.sampled"), 3u);
  EXPECT_GT(metrics.histograms.at("profile.op.plan.execute").count, 0u);
}

TEST(ObsLogTest, SessionWritesABundlePerFailedCall) {
  auto ext = TinyExtension();
  const std::string dir = ::testing::TempDir() + "/lcdb_obslog_session_pm";
  std::filesystem::remove_all(dir);
  QueryFlightRecorder recorder;
  ScopedFlightRecorder scoped(recorder);
  SessionOptions options;
  options.postmortem_dir = dir;
  options.max_retries = 0;
  QuerySession session(*ext, options);

  // A parse error never reaches the evaluator, yet still yields a bundle
  // and a (synthesized) flight-recorder record.
  auto bad = session.Evaluate("not a query (((");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(session.postmortems_written(), 1u);
  ASSERT_EQ(recorder.appended(), 1u);
  const QueryRecord r = recorder.Tail(1)[0];
  EXPECT_EQ(r.backend, "none");
  EXPECT_EQ(r.outcome, "invalid");

  std::ifstream in(session.last_postmortem_path());
  ASSERT_TRUE(in.good()) << session.last_postmortem_path();
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string json = buffer.str();
  EXPECT_NE(json.find("\"schema\":\"lcdb.postmortem.v1\""),
            std::string::npos);
  EXPECT_NE(json.find("\"failure_class\":\"invalid\""), std::string::npos);
  EXPECT_NE(json.find("\"flight_tail\""), std::string::npos);

  // A successful call writes nothing new.
  auto ok = session.Evaluate("exists x . (S(x) & x > 2)");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(session.postmortems_written(), 1u);
}

}  // namespace
}  // namespace lcdb
