// Tests for the plan bytecode pipeline (plan/bytecode.h, plan/vm.h): the
// disassembler's golden listing, inline-cache hit/miss/invalidation
// accounting across ScopedKernel swaps, vm.* stats plumbing, the
// use_bytecode && !optimize rejection, per-op memo-hit attribution parity
// between the tree walk and the VM, governor budget trips landing
// mid-bytecode-loop, and failpoint unwinds leaving the evaluator reusable.

#include <gtest/gtest.h>

#include <string>

#include "analysis/bytecode_verify.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "core/typecheck.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "plan/bytecode.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "plan/vm.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {
namespace {

ConstraintDatabase IntervalsDb() {
  auto f = ParseDnf("(x > 0 & x < 1) | x = 5", {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

/// Compiles `text` against `ext` to an optimized bytecode program, the way
/// the evaluator facade does — tier-3 verification included, since the VM
/// refuses programs whose `verified` flag is unset.
BytecodeProgram Compile(const RegionExtension& ext, const std::string& text) {
  auto query = ParseQuery(text, ext.database().relation_name());
  EXPECT_TRUE(query.ok()) << query.status().ToString();
  auto info = TypeCheck(**query, ext.database());
  EXPECT_TRUE(info.ok()) << info.status().ToString();
  CompiledPlan plan = BuildPlan(**query, *info, ext);
  PlanPassStats pass_stats;
  OptimizePlan(&plan, &pass_stats);
  BytecodeProgram program = CompileToBytecode(plan);
  BytecodeVerifyResult verdict = VerifyBytecode(program);
  EXPECT_TRUE(verdict.status.ok()) << verdict.status.ToString();
  program.verified = verdict.status.ok();
  return program;
}

Evaluator::Options VmOptions() {
  Evaluator::Options options;
  options.use_bytecode = true;
  return options;
}

TEST(VmTest, DisassemblerGolden) {
  // A query touching both modes (symbolic QE + boolean region loop) and a
  // memo-marked subplan, pinned byte-for-byte. If lowering legitimately
  // changes, update the golden — the point is that it cannot drift
  // unnoticed.
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  BytecodeProgram program =
      Compile(*ext, "exists R . (subset(R) & exists y . (S(y) & y >= 0))");
  EXPECT_EQ(
      DisassembleBytecode(program),
      "proc 0 (main): sym sregs=4 bregs=1 iregs=1\n"
      "  0000  enter.sym     s0 #0 expand.exists memo=m0 skip->0029\n"
      "  0001  begin.op      expand.exists [timed,expand]\n"
      "  0002  load.false    s0\n"
      "  0003  load.imm      i0 0\n"
      "  0004  loop.head     i0 exit->0027 stride=0\n"
      "  0005  set_region    R = i0\n"
      "  0006  enter.sym     s1 #1 and.sym memo=m1 skip->0024\n"
      "  0007  enter.sym     s1 #2 lift_bool\n"
      "  0008  enter.bool    b0 #3 region_atom\n"
      "  0009  region_atom   b0 R\n"
      "  0010  leave.bool    b0\n"
      "  0011  lift_bool     s1 b0\n"
      "  0012  leave.sym     s1\n"
      "  0013  jmp.sym_false s1 ->0023\n"
      "  0014  enter.sym     s2 #4 qe.exists memo=m2 skip->0022\n"
      "  0015  begin.op      qe.exists [timed,qe]\n"
      "  0016  enter.sym     s3 #5 const.formula\n"
      "  0017  const.formula s3 {(-x0 < 0 & x0 < 1 & -x0 <= 0)...}\n"
      "  0018  leave.sym     s3\n"
      "  0019  qe.exists     s2 s3 col0\n"
      "  0020  end.op        qe.exists\n"
      "  0021  leave.sym     s2 memo=m2\n"
      "  0022  and.sym       s1 s2\n"
      "  0023  leave.sym     s1 memo=m1\n"
      "  0024  or.sym        s0 s1\n"
      "  0025  jmp.sym_true  s0 ->0027\n"
      "  0026  loop.next     i0 ->0004\n"
      "  0027  end.op        expand.exists\n"
      "  0028  leave.sym     s0 memo=m0\n"
      "  0029  halt          \n"
      "memo m0: regions={}\n"
      "memo m1: regions={R}\n"
      "memo m2: regions={}\n"
      "-- 1 proc(s), 30 instruction(s), 0 inline cache slot(s)\n");
}

TEST(VmTest, DisassemblerListsEveryProcAndFootersMatch) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  BytecodeProgram program = Compile(*ext, RegionConnQueryText());
  const std::string listing = DisassembleBytecode(program);
  for (size_t p = 0; p < program.procs.size(); ++p) {
    EXPECT_NE(listing.find("proc " + std::to_string(p)), std::string::npos);
  }
  EXPECT_NE(listing.find("proc 0 (main)"), std::string::npos);
  EXPECT_NE(listing.find(std::to_string(program.procs.size()) + " proc(s)"),
            std::string::npos);
  EXPECT_NE(
      listing.find(std::to_string(program.TotalInstructions()) +
                   " instruction(s)"),
      std::string::npos);
  // A fixpoint query lowers its body as a separate proc and a fixpoint
  // site referencing it.
  EXPECT_GE(program.procs.size(), 2u);
  EXPECT_EQ(program.fixpoint_sites.size(), 1u);
}

TEST(VmTest, VmStatsPopulatedAndByteIdentical) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());

  Evaluator tree(*ext);
  auto tree_answer = tree.Evaluate(**query);
  ASSERT_TRUE(tree_answer.ok());
  // The tree backend never touches the VM counters.
  EXPECT_EQ(tree.stats().vm.instructions, 0u);
  EXPECT_EQ(tree.stats().vm.procs, 0u);

  Evaluator vm(*ext, VmOptions());
  auto vm_answer = vm.Evaluate(**query);
  ASSERT_TRUE(vm_answer.ok());
  EXPECT_EQ(tree_answer->ToString(), vm_answer->ToString());
  EXPECT_GT(vm.stats().vm.instructions, 0u);
  EXPECT_GE(vm.stats().vm.procs, 2u);
  EXPECT_GT(vm.stats().vm.code_instructions, 0u);
  // Core evaluation telemetry matches the tree walk exactly (same memo
  // cadence, same operator visits).
  EXPECT_EQ(tree.stats().node_evaluations, vm.stats().node_evaluations);
  EXPECT_EQ(tree.stats().bool_evaluations, vm.stats().bool_evaluations);
  EXPECT_EQ(tree.stats().memo_hits, vm.stats().memo_hits);
  EXPECT_EQ(tree.stats().fixpoint_iterations, vm.stats().fixpoint_iterations);
  // vm.* metrics are schema-stable on both backends.
  EXPECT_NE(tree.stats().ToJson().find("\"vm.instructions\":0"),
            std::string::npos);
  EXPECT_NE(vm.stats().ToJson().find("\"vm.procs\":"), std::string::npos);
}

TEST(VmTest, OpTimingMemoHitsSettleIdentically) {
  // Satellite contract: per-op memo-hit attribution must agree between the
  // backends (total_ns is wall-clock and excluded).
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator tree(*ext);
  ASSERT_TRUE(tree.Evaluate(**query).ok());
  Evaluator vm(*ext, VmOptions());
  ASSERT_TRUE(vm.Evaluate(**query).ok());
  EXPECT_EQ(tree.stats().op_timings.size(), vm.stats().op_timings.size());
  for (const auto& [op, timing] : tree.stats().op_timings) {
    auto it = vm.stats().op_timings.find(op);
    ASSERT_NE(it, vm.stats().op_timings.end()) << op;
    EXPECT_EQ(timing.count, it->second.count) << op;
    EXPECT_EQ(timing.memo_hits, it->second.memo_hits) << op;
  }
}

TEST(VmTest, InlineCacheHitsAndKernelSwapInvalidation) {
  // Drive the VM directly across several Run() calls (memoization off so
  // kernel call sites re-execute): a re-run under the same kernel hits the
  // inline caches; a ScopedKernel swap invalidates on first touch. The rBIT
  // site is monomorphic here — the constant body `x > 0` yields the same
  // implication key for every (R, R') pair — so after the first miss every
  // later probe under the same kernel is a hit.
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel_a;
  Evaluator::Options options;
  options.memoize = false;
  options.use_bytecode = true;
  Evaluator::Stats stats;
  BytecodeProgram program = [&] {
    ScopedKernel scoped(kernel_a);
    return Compile(*ext, "exists R R' . [rbit x : x > 0](R, R')");
  }();
  ASSERT_GT(program.num_icache_slots, 0u);
  BytecodeVm vm(program, *ext, options, &stats);

  std::string first;
  {
    ScopedKernel scoped(kernel_a);
    first = vm.Run().ToString();
  }
  ASSERT_GT(stats.vm.icache_misses, 0u);
  EXPECT_EQ(stats.vm.icache_invalidations, 0u);
  const uint64_t misses_after_first = stats.vm.icache_misses;

  {
    // Same kernel: every site serves its verdict from the inline cache.
    ScopedKernel scoped(kernel_a);
    EXPECT_EQ(vm.Run().ToString(), first);
  }
  EXPECT_GT(stats.vm.icache_hits, 0u);
  EXPECT_EQ(stats.vm.icache_misses, misses_after_first);

  {
    // Swapped kernel: stale slots are dropped (counted), then refilled.
    ConstraintKernel kernel_b;
    ScopedKernel scoped(kernel_b);
    EXPECT_EQ(vm.Run().ToString(), first);
  }
  EXPECT_GT(stats.vm.icache_invalidations, 0u);
  EXPECT_GT(stats.vm.icache_misses, misses_after_first);
}

TEST(VmTest, ClearCacheInvalidatesInlineCaches) {
  // Satellite contract: a cleared kernel must never serve a stale inline-
  // cache hit. ClearCache() bumps the kernel's cache epoch; every filled
  // slot was pinned under the old epoch, so the next probe invalidates and
  // re-misses instead of serving the retired verdict.
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  Evaluator::Options options;
  options.memoize = false;
  options.use_bytecode = true;
  Evaluator::Stats stats;
  BytecodeProgram program = [&] {
    ScopedKernel scoped(kernel);
    return Compile(*ext, "exists R R' . [rbit x : x > 0](R, R')");
  }();
  ASSERT_GT(program.num_icache_slots, 0u);
  BytecodeVm vm(program, *ext, options, &stats);
  ScopedKernel scoped(kernel);

  const std::string first = vm.Run().ToString();
  ASSERT_GT(stats.vm.icache_misses, 0u);
  const uint64_t misses_after_first = stats.vm.icache_misses;

  // Sanity: without a clear, the re-run is pure hits — no new misses.
  EXPECT_EQ(vm.Run().ToString(), first);
  EXPECT_EQ(stats.vm.icache_misses, misses_after_first);
  EXPECT_GT(stats.vm.icache_hits, 0u);

  const uint64_t epoch_before = kernel.CacheEpoch();
  kernel.ClearCache();
  EXPECT_GT(kernel.CacheEpoch(), epoch_before);

  // Post-clear: same kernel pointer, new epoch — every filled slot's first
  // probe must drop the stale verdict (counted as an invalidation) and
  // re-miss into the kernel; later probes of the refilled slot may hit
  // again under the *new* epoch, which is correct.
  EXPECT_EQ(vm.Run().ToString(), first);
  EXPECT_GT(stats.vm.icache_invalidations, 0u);
  EXPECT_GT(stats.vm.icache_misses, misses_after_first);

  // InvalidateDisjunct moves the epoch too (lemma backend only): another
  // run after it re-misses again rather than serving stale slots.
  if (kernel.lemma_db() != nullptr) {
    const uint64_t misses_after_clear = stats.vm.icache_misses;
    const uint64_t invalidations_after_clear = stats.vm.icache_invalidations;
    kernel.InvalidateDisjunct(0);
    EXPECT_EQ(vm.Run().ToString(), first);
    EXPECT_GT(stats.vm.icache_misses, misses_after_clear);
    EXPECT_GT(stats.vm.icache_invalidations, invalidations_after_clear);
  }
}

TEST(VmTest, GovernorBudgetsTripMidLoop) {
  // Each budget must trip from inside bytecode execution (fixpoint loops,
  // dispatch checkpoints) and surface as the documented Status, with the
  // budget named in the governor stats.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);

  struct Case {
    const char* budget;
    GovernorLimits limits;
    StatusCode code;
    std::string query;
  };
  GovernorLimits fixpoint_limits;
  fixpoint_limits.max_fixpoint_iterations = 1;
  GovernorLimits pivot_limits;
  pivot_limits.max_simplex_pivots = 1;
  GovernorLimits space_limits;
  space_limits.max_tuple_space = 1;
  GovernorLimits deadline_limits;
  deadline_limits.wall_clock_ms = 0;
  // The conn query needs no kernel decisions at eval time (adjacency and
  // subset flags are precomputed with the arrangement), so the pivot budget
  // is exercised with an element-sort projection that must simplify through
  // the feasibility oracle.
  const Case cases[] = {
      {"max_fixpoint_iterations", fixpoint_limits,
       StatusCode::kResourceExhausted, RegionConnQueryText()},
      {"max_simplex_pivots", pivot_limits, StatusCode::kResourceExhausted,
       "exists x . S(x, y)"},
      {"max_tuple_space", space_limits, StatusCode::kResourceExhausted,
       RegionConnQueryText()},
      {"wall_clock_ms", deadline_limits, StatusCode::kDeadlineExceeded,
       RegionConnQueryText()},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.budget);
    auto query = ParseQuery(c.query, db.relation_name());
    ASSERT_TRUE(query.ok());
    // Fresh kernel per case: the process-default kernel's feasibility cache
    // would otherwise satisfy the pivot case without running the simplex.
    ConstraintKernel kernel;
    ScopedKernel scoped_kernel(kernel);
    QueryGovernor governor(c.limits);
    ScopedGovernor scoped(governor);
    Evaluator evaluator(*ext, VmOptions());
    auto answer = evaluator.Evaluate(**query);
    ASSERT_FALSE(answer.ok());
    EXPECT_EQ(answer.status().code(), c.code);
    EXPECT_EQ(governor.stats().tripped_budget, c.budget);
    EXPECT_EQ(evaluator.stats().governor.tripped_budget, c.budget);
  }
}

TEST(VmTest, FailpointUnwindLeavesEvaluatorReusable) {
  // Injected faults at the executor root and inside fixpoint/closure loops
  // must unwind through the VM (closing its operator timers) and leave the
  // evaluator able to answer the same query correctly afterwards.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  std::string tc_query = RegionConnTcQueryText(false);
  for (const auto& [site, text] :
       {std::pair<const char*, std::string>{"plan.execute",
                                            RegionConnQueryText()},
        {"fixpoint.stage", RegionConnQueryText()},
        {"closure.build", tc_query}}) {
    SCOPED_TRACE(site);
    auto query = ParseQuery(text, db.relation_name());
    ASSERT_TRUE(query.ok());
    Evaluator evaluator(*ext, VmOptions());
    ArmFailpoint(site, StatusCode::kInternal, "injected");
    auto failed = evaluator.Evaluate(**query);
    DisarmAllFailpoints();
    ASSERT_FALSE(failed.ok());
    EXPECT_EQ(failed.status().code(), StatusCode::kInternal);
    auto recovered = evaluator.Evaluate(**query);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    Evaluator oracle(*ext);
    auto expected = oracle.Evaluate(**query);
    ASSERT_TRUE(expected.ok());
    EXPECT_EQ(expected->ToString(), recovered->ToString());
  }
}

TEST(VmTest, ExplainBytecodeMatchesDirectDisassembly) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  const std::string text = "exists y . (S(y) & y >= 0)";
  auto query = ParseQuery(text, db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(*ext);
  auto listing = evaluator.ExplainBytecode(**query);
  ASSERT_TRUE(listing.ok()) << listing.status().ToString();
  EXPECT_EQ(*listing, DisassembleBytecode(Compile(*ext, text)));
  EXPECT_GT(evaluator.stats().vm.code_instructions, 0u);

  Evaluator::Options raw;
  raw.optimize = false;
  Evaluator rejecting(*ext, raw);
  auto rejected = rejecting.ExplainBytecode(**query);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kInvalidArgument);
}

TEST(VmTest, PlanCostStatsExported) {
  // The tier-2 pass runs on every optimized compile; its aggregates land
  // in stats and the plan.cost.* metrics family.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(*ext, VmOptions());
  ASSERT_TRUE(evaluator.Evaluate(**query).ok());
  EXPECT_GT(evaluator.stats().plan_cost.nodes, 0u);
  EXPECT_GT(evaluator.stats().plan_cost.total_bigint_ops, 0u);
  EXPECT_NE(evaluator.stats().ToJson().find("\"plan.cost.nodes\":"),
            std::string::npos);

  // Explain carries the cost column and footer.
  auto explain = evaluator.Explain(**query);
  ASSERT_TRUE(explain.ok());
  EXPECT_NE(explain->find("| est: calls="), std::string::npos);
  EXPECT_NE(explain->find("-- cost: nodes="), std::string::npos);
}

}  // namespace
}  // namespace lcdb
