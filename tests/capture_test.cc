#include <gtest/gtest.h>

#include "capture/encoding.h"
#include "capture/region_order.h"
#include "capture/turing_machine.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

ConstraintDatabase Db1(const std::string& formula) {
  auto f = ParseDnf(formula, {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

ConstraintDatabase Db2(const std::string& formula) {
  auto f = ParseDnf(formula, {"x", "y"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x", "y"});
}

TEST(RegionOrderTest, DimMajorBoundedFirst) {
  ConstraintDatabase db = Db2("x >= 0 & y >= 0 & x + y <= 4");
  auto ext = MakeArrangementExtension(db);
  std::vector<size_t> order = CaptureRegionOrder(*ext);
  ASSERT_EQ(order.size(), ext->num_regions());
  // Bounded regions first, dimension ascending within each group.
  bool seen_unbounded = false;
  int last_dim = -1;
  for (size_t r : order) {
    if (!ext->RegionBounded(r)) {
      if (!seen_unbounded) {
        seen_unbounded = true;
        last_dim = -1;
      }
    } else {
      EXPECT_FALSE(seen_unbounded) << "bounded region after unbounded";
    }
    EXPECT_GE(ext->RegionDim(r), last_dim);
    last_dim = ext->RegionDim(r);
  }
  // The first three regions are the vertices in lexicographic order.
  EXPECT_EQ(ext->RegionDim(order[0]), 0);
  EXPECT_EQ(ext->ZeroDimPoint(order[0]),
            (Vec{Rational(0), Rational(0)}));
  EXPECT_EQ(ext->ZeroDimPoint(order[1]),
            (Vec{Rational(0), Rational(4)}));
  EXPECT_EQ(ext->ZeroDimPoint(order[2]),
            (Vec{Rational(4), Rational(0)}));
}

TEST(RegionOrderTest, RanksAreInversePermutation) {
  ConstraintDatabase db = Db1("(x >= 0 & x <= 1) | x = 3");
  auto ext = MakeArrangementExtension(db);
  std::vector<size_t> order = CaptureRegionOrder(*ext);
  std::vector<size_t> ranks = CaptureRegionRanks(*ext);
  for (size_t i = 0; i < order.size(); ++i) {
    EXPECT_EQ(ranks[order[i]], i);
  }
  // Total order: all ranks distinct.
  std::vector<size_t> sorted = ranks;
  std::sort(sorted.begin(), sorted.end());
  for (size_t i = 0; i < sorted.size(); ++i) EXPECT_EQ(sorted[i], i);
}

TEST(RegionOrderTest, Deterministic) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext1 = MakeArrangementExtension(db);
  auto ext2 = MakeArrangementExtension(db);
  EXPECT_EQ(CaptureRegionOrder(*ext1), CaptureRegionOrder(*ext2));
}

TEST(SmallCoordinateTest, Holds) {
  ConstraintDatabase db = Db1("x = 3 | x = -2");
  auto ext = MakeArrangementExtension(db);
  EXPECT_TRUE(HasSmallCoordinateProperty(*ext));
}

TEST(SmallCoordinateTest, ViolatedByHugeCoordinate) {
  // A single vertex at 2^40 with only ~3 regions violates 2^(c*n) for c=1.
  ConstraintDatabase db = Db1("x = 1099511627776");
  auto ext = MakeArrangementExtension(db);
  EXPECT_EQ(ext->num_regions(), 3u);
  EXPECT_FALSE(HasSmallCoordinateProperty(*ext, 1));
  EXPECT_TRUE(HasSmallCoordinateProperty(*ext, 64));
}

TEST(EncodingTest, FormatBasics) {
  // S = {1} in R^1: one vertex (in S), two unbounded 1-dim faces (not).
  ConstraintDatabase db = Db1("x = 1");
  auto ext = MakeArrangementExtension(db);
  std::string enc = EncodeDatabase(*ext);
  // 1 = numerator "1", denominator "1"; in S; no bounded 1-dim regions;
  // two unbounded 1-dim bits, both 0.
  EXPECT_EQ(enc, "1/1;1|###00");
}

TEST(EncodingTest, NegativeAndRationalCoordinates) {
  ConstraintDatabase db = Db1("2x = -3 | x = 2");
  auto ext = MakeArrangementExtension(db);
  std::string enc = EncodeDatabase(*ext);
  // Vertices at -3/2 and 2 (lex order: -3/2 first). -3 LSB-first = 11,
  // den 2 = 01; 2 = 01 / 1.
  EXPECT_EQ(enc.substr(0, enc.find('#')), "-11/01;1|01/1;1|");
}

TEST(EncodingTest, DeterministicAndSeparatorsPresent) {
  ConstraintDatabase db = Db2("x >= 0 & y >= 0 & x + y <= 4");
  auto ext = MakeArrangementExtension(db);
  std::string enc = EncodeDatabase(*ext);
  EXPECT_EQ(enc, EncodeDatabase(*ext));
  EXPECT_NE(enc.find("##"), std::string::npos);
  // Three vertex records.
  size_t records = 0;
  for (size_t i = 0; i < enc.find('#'); ++i) {
    if (enc[i] == '|') ++records;
  }
  EXPECT_EQ(records, 3u);
}

TEST(TuringMachineTest, BasicRun) {
  // A two-state machine: accept iff the first character is '1'.
  TuringMachine tm(0, 1, 2);
  tm.AddTransition(0, '1', 1, '1', TuringMachine::Move::kStay);
  tm.AddTransition(0, '0', 2, '0', TuringMachine::Move::kStay);
  auto r1 = tm.Run("1");
  EXPECT_TRUE(r1.halted);
  EXPECT_TRUE(r1.accepted);
  auto r0 = tm.Run("0");
  EXPECT_TRUE(r0.halted);
  EXPECT_FALSE(r0.accepted);
  // Missing transition rejects.
  auto rx = tm.Run("x");
  EXPECT_TRUE(rx.halted);
  EXPECT_FALSE(rx.accepted);
}

TEST(TuringMachineTest, StepLimit) {
  // A machine that loops forever.
  TuringMachine tm(0, 1, 2);
  tm.AddTransition(0, ' ', 0, ' ', TuringMachine::Move::kStay);
  auto r = tm.Run("", 100);
  EXPECT_FALSE(r.halted);
  EXPECT_EQ(r.steps, 100u);
}

TEST(CaptureTest, SNonEmptyAgreesWithRegFO) {
  // The Turing machine run on the Theorem 6.4 encoding must agree with the
  // direct evaluation of the corresponding query — the two sides of the
  // capture theorem.
  TuringMachine tm = TuringMachine::SNonEmptyChecker();
  for (const char* formula :
       {"x = 1", "x > 0 & x < 0", "x >= 0", "x < 1",
        "(x > 0 & x < 1) | x = 7", "x = 1 & x = 2"}) {
    ConstraintDatabase db = Db1(formula);
    auto ext = MakeArrangementExtension(db);
    auto direct = EvaluateSentenceText(*ext, "exists x . S(x)");
    ASSERT_TRUE(direct.ok());
    auto run = tm.Run(EncodeDatabase(*ext));
    ASSERT_TRUE(run.halted) << formula;
    EXPECT_EQ(run.accepted, *direct) << formula;
  }
}

TEST(CaptureTest, SNonEmptyAbstractness) {
  // Two different representations of the same database: the encodings
  // differ, the decided abstract query agrees (Section 2).
  ConstraintDatabase rep1 = Db1("0 < x & x < 10");
  ConstraintDatabase rep2 = Db1("(0 < x & x < 6) | (6 < x & x < 10) | x = 6");
  auto ext1 = MakeArrangementExtension(rep1);
  auto ext2 = MakeArrangementExtension(rep2);
  std::string enc1 = EncodeDatabase(*ext1);
  std::string enc2 = EncodeDatabase(*ext2);
  EXPECT_NE(enc1, enc2);
  TuringMachine tm = TuringMachine::SNonEmptyChecker();
  EXPECT_TRUE(tm.Run(enc1).accepted);
  EXPECT_TRUE(tm.Run(enc2).accepted);
}

TEST(CaptureTest, AllVerticesCheckerAgreesWithRegFO) {
  TuringMachine tm = TuringMachine::AllVerticesInSChecker();
  for (const char* formula :
       {"x >= 0 & x <= 1",           // both vertices in S
        "x > 0 & x < 1",             // vertices NOT in the open S
        "(x >= 0 & x <= 1) | x = 5", // all three in S
        "(x >= 0 & x < 1) | x = 5"}) {
    ConstraintDatabase db = Db1(formula);
    auto ext = MakeArrangementExtension(db);
    auto direct = EvaluateSentenceText(
        *ext, "forall R . (dim(R) = 0 -> subset(R))");
    ASSERT_TRUE(direct.ok());
    auto run = tm.Run(EncodeDatabase(*ext));
    ASSERT_TRUE(run.halted) << formula;
    EXPECT_EQ(run.accepted, *direct) << formula;
  }
}

TEST(CaptureTest, ParityChecker) {
  // Parity of the number of 0-dimensional regions: a PTIME property beyond
  // RegFO (needs the fixed-point machinery per Theorem 6.4); here we check
  // the machine against a direct count.
  TuringMachine tm = TuringMachine::ZeroDimParityChecker();
  for (const char* formula :
       {"x = 1", "x = 1 | x = 2", "x = 1 | x = 2 | x = 3",
        "x >= 0 & x <= 1"}) {
    ConstraintDatabase db = Db1(formula);
    auto ext = MakeArrangementExtension(db);
    auto run = tm.Run(EncodeDatabase(*ext));
    ASSERT_TRUE(run.halted) << formula;
    EXPECT_EQ(run.accepted, ext->ZeroDimRegions().size() % 2 == 0)
        << formula;
  }
}

TEST(CaptureTest, EncodingScalesPolynomially) {
  // Theorem 6.4 needs the representation computable in PTIME; measure the
  // encoding length against the region count on a growing family.
  size_t last_len = 0;
  for (size_t teeth : {1u, 2u, 3u}) {
    ConstraintDatabase db = MakeComb(teeth, true);
    auto ext = MakeArrangementExtension(db);
    std::string enc = EncodeDatabase(*ext);
    EXPECT_GT(enc.size(), last_len);
    // Linear in the number of regions up to the coordinate-bit factor.
    EXPECT_LE(enc.size(), 32 * ext->num_regions());
    last_len = enc.size();
  }
}

}  // namespace
}  // namespace lcdb
