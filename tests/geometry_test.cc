#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "geometry/generator_region.h"
#include "geometry/hyperplane.h"
#include "geometry/predicates.h"
#include "geometry/vertex_enumeration.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

Conjunction ParseConj(const std::string& text,
                      const std::vector<std::string>& vars = kXY) {
  auto r = ParseDnf(text, vars);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->disjuncts().size(), 1u);
  return r->disjuncts()[0];
}

TEST(HyperplaneTest, CanonicalOrientationMergesAtoms) {
  auto le = ParseAtom("x + y <= 1", kXY).value();
  auto ge = ParseAtom("x + y >= 1", kXY).value();
  auto scaled = ParseAtom("2x + 2y < 2", kXY).value();
  Hyperplane h1 = Hyperplane::FromAtom(le);
  Hyperplane h2 = Hyperplane::FromAtom(ge);
  Hyperplane h3 = Hyperplane::FromAtom(scaled);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1, h3);
  EXPECT_EQ(h1.Hash(), h2.Hash());
}

TEST(HyperplaneTest, SideOf) {
  Hyperplane h = Hyperplane::FromAtom(ParseAtom("x + y = 1", kXY).value());
  EXPECT_EQ(h.SideOf(V({2, 2})), 1);
  EXPECT_EQ(h.SideOf(V({0, 0})), -1);
  EXPECT_EQ(h.SideOf(V({0, 1})), 0);
}

TEST(HyperplaneTest, PositionVectorAndFormula) {
  std::vector<Hyperplane> planes = {
      Hyperplane::FromAtom(ParseAtom("x = 0", kXY).value()),
      Hyperplane::FromAtom(ParseAtom("y = 0", kXY).value())};
  SignVector sv = PositionVector(planes, V({3, -2}));
  EXPECT_EQ(sv, (SignVector{1, -1}));
  EXPECT_EQ(SignVectorToString(sv), "(+, -)");
  Conjunction face = SignVectorConjunction(planes, sv);
  EXPECT_TRUE(face.Satisfies(V({3, -2})));
  EXPECT_TRUE(face.Satisfies(V({1, -5})));
  EXPECT_FALSE(face.Satisfies(V({-1, -5})));
  EXPECT_FALSE(face.Satisfies(V({0, -5})));
}

TEST(HyperplaneTest, ClosureSignVectorOrder) {
  // Face on both planes is in the closure of every orthant.
  EXPECT_TRUE(InClosureOf({0, 0}, {1, -1}));
  EXPECT_TRUE(InClosureOf({1, 0}, {1, 1}));
  EXPECT_FALSE(InClosureOf({1, 0}, {-1, 1}));
  EXPECT_FALSE(InClosureOf({1, 1}, {1, 0}));
  EXPECT_TRUE(InClosureOf({1, 1}, {1, 1}));
}

TEST(VertexEnumerationTest, UnitSquare) {
  Conjunction square =
      ParseConj("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  std::vector<Vec> vertices = VerticesOf(square);
  ASSERT_EQ(vertices.size(), 4u);
  EXPECT_EQ(vertices[0], V({0, 0}));  // lex sorted
  EXPECT_EQ(vertices[1], V({0, 1}));
  EXPECT_EQ(vertices[2], V({1, 0}));
  EXPECT_EQ(vertices[3], V({1, 1}));
}

TEST(VertexEnumerationTest, TriangleDropsOutsideIntersections) {
  // The paper's Appendix A point "p": intersections outside closure(psi) are
  // not vertices.
  Conjunction triangle = ParseConj("y >= 0 & y <= x & x <= 2");
  std::vector<Vec> vertices = VerticesOf(triangle);
  ASSERT_EQ(vertices.size(), 3u);
  EXPECT_EQ(vertices[0], V({0, 0}));
  EXPECT_EQ(vertices[1], V({2, 0}));
  EXPECT_EQ(vertices[2], V({2, 2}));
}

TEST(VertexEnumerationTest, ParallelPlanesNoUniqueIntersection) {
  std::vector<Hyperplane> planes = {
      Hyperplane::FromAtom(ParseAtom("x = 0", kXY).value()),
      Hyperplane::FromAtom(ParseAtom("x = 1", kXY).value())};
  EXPECT_TRUE(EnumerateIntersectionPoints(planes, 2).empty());
}

TEST(VertexEnumerationTest, OpenPolyhedronVerticesOnClosure) {
  // Open triangle still has the boundary vertices (they lie in the closure).
  Conjunction open_triangle = ParseConj("y > 0 & y < x & x < 2");
  EXPECT_EQ(VerticesOf(open_triangle).size(), 3u);
}

TEST(GeneratorRegionTest, OpenSegmentMembership) {
  GeneratorRegion seg = GeneratorRegion::OpenSegment(V({0, 0}), V({2, 2}));
  EXPECT_TRUE(seg.Contains(V({1, 1})));
  EXPECT_FALSE(seg.Contains(V({0, 0})));  // endpoint excluded
  EXPECT_FALSE(seg.Contains(V({2, 2})));
  EXPECT_FALSE(seg.Contains(V({1, 0})));
  EXPECT_FALSE(seg.Contains(V({3, 3})));
  GeneratorRegion closed = seg.ClosureRegion();
  EXPECT_TRUE(closed.Contains(V({0, 0})));
  EXPECT_TRUE(closed.Contains(V({2, 2})));
  EXPECT_EQ(seg.Dimension(), 1);
}

TEST(GeneratorRegionTest, OpenTriangleMembershipAndDimension) {
  GeneratorRegion tri =
      GeneratorRegion::OpenHull(2, {V({0, 0}), V({2, 0}), V({0, 2})});
  EXPECT_EQ(tri.Dimension(), 2);
  EXPECT_TRUE(tri.Contains({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(tri.Contains(V({1, 0})));  // boundary edge excluded
  EXPECT_FALSE(tri.Contains(V({0, 0})));
  EXPECT_TRUE(tri.ClosureRegion().Contains(V({1, 0})));
  EXPECT_TRUE(tri.Contains(tri.Witness()));
}

TEST(GeneratorRegionTest, DegenerateHullDropsToLowerDimension) {
  // Appendix A: generator points need not be distinct/affinely independent.
  GeneratorRegion seg =
      GeneratorRegion::OpenHull(2, {V({0, 0}), V({1, 1}), V({1, 1})});
  EXPECT_EQ(seg.Dimension(), 1);
  EXPECT_TRUE(seg.Contains({Rational(1, 2), Rational(1, 2)}));
  GeneratorRegion pt = GeneratorRegion::OpenHull(2, {V({3, 4})});
  EXPECT_EQ(pt.Dimension(), 0);
  EXPECT_TRUE(pt.Contains(V({3, 4})));
  EXPECT_FALSE(pt.Contains(V({3, 5})));
}

TEST(GeneratorRegionTest, OpenRay) {
  GeneratorRegion ray = GeneratorRegion::OpenRay(V({1, 1}), V({1, 0}));
  EXPECT_TRUE(ray.Contains(V({5, 1})));
  EXPECT_FALSE(ray.Contains(V({1, 1})));  // apex excluded (a > 0)
  EXPECT_FALSE(ray.Contains(V({0, 1})));  // behind the apex
  EXPECT_TRUE(ray.ClosureRegion().Contains(V({1, 1})));
  EXPECT_EQ(ray.Dimension(), 1);
}

TEST(GeneratorRegionTest, IntersectionTests) {
  GeneratorRegion tri =
      GeneratorRegion::OpenHull(2, {V({0, 0}), V({4, 0}), V({0, 4})});
  GeneratorRegion seg_inside = GeneratorRegion::OpenSegment(V({1, 1}), V({2, 1}));
  GeneratorRegion seg_outside =
      GeneratorRegion::OpenSegment(V({5, 5}), V({6, 6}));
  GeneratorRegion edge = GeneratorRegion::OpenSegment(V({0, 0}), V({4, 0}));
  EXPECT_TRUE(tri.Intersects(seg_inside));
  EXPECT_FALSE(tri.Intersects(seg_outside));
  EXPECT_FALSE(tri.Intersects(edge));  // open triangle excludes its edge
  EXPECT_TRUE(tri.ClosureRegion().Intersects(edge));
  EXPECT_TRUE(tri.AdjacentTo(edge));
  EXPECT_FALSE(tri.AdjacentTo(seg_outside));
}

TEST(GeneratorRegionTest, IntersectsConjunction) {
  GeneratorRegion seg = GeneratorRegion::OpenSegment(V({-1, 0}), V({1, 0}));
  Conjunction right = ParseConj("x > 0");
  EXPECT_TRUE(seg.IntersectsConjunction(right));
  Conjunction far_right = ParseConj("x > 1");
  EXPECT_FALSE(seg.IntersectsConjunction(far_right));
  Conjunction boundary = ParseConj("x >= 1");
  EXPECT_FALSE(seg.IntersectsConjunction(boundary));  // endpoint not in seg
}

TEST(GeneratorRegionTest, ToConjunctionMatchesMembership) {
  GeneratorRegion tri =
      GeneratorRegion::OpenHull(2, {V({0, 0}), V({2, 0}), V({0, 2})});
  Conjunction formula = tri.ToConjunction();
  // Sample grid: formula satisfaction must equal membership.
  for (int64_t x = -1; x <= 3; ++x) {
    for (int64_t y = -1; y <= 3; ++y) {
      for (int64_t den = 1; den <= 2; ++den) {
        Vec p = {Rational(x, den), Rational(y, den)};
        EXPECT_EQ(formula.Satisfies(p), tri.Contains(p))
            << VecToString(p) << " formula=" << formula.ToString(kXY);
      }
    }
  }
}

TEST(GeneratorRegionTest, RayToConjunction) {
  GeneratorRegion ray = GeneratorRegion::OpenRay(V({0, 0}), V({1, 1}));
  Conjunction formula = ray.ToConjunction();
  EXPECT_TRUE(formula.Satisfies(V({2, 2})));
  EXPECT_FALSE(formula.Satisfies(V({0, 0})));
  EXPECT_FALSE(formula.Satisfies(V({2, 1})));
  EXPECT_FALSE(formula.Satisfies(V({-1, -1})));
}

TEST(PredicatesTest, RelativeInteriorFullDim) {
  Conjunction square = ParseConj("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  Conjunction interior = RelativeInterior(square);
  EXPECT_TRUE(interior.Satisfies({Rational(1, 2), Rational(1, 2)}));
  EXPECT_FALSE(interior.Satisfies(V({0, 0})));
  EXPECT_FALSE(interior.Satisfies({Rational(0), Rational(1, 2)})) ;
}

TEST(PredicatesTest, RelativeInteriorDetectsImplicitEqualities) {
  // {x <= 0, x >= 0} is the line x = 0; its *relative* interior is itself.
  Conjunction line = ParseConj("x <= 0 & x >= 0");
  Conjunction interior = RelativeInterior(line);
  EXPECT_TRUE(interior.Satisfies(V({0, 7})));
  EXPECT_FALSE(interior.Satisfies(V({1, 0})));
}

TEST(PredicatesTest, RayInClosure) {
  Conjunction wedge = ParseConj("y >= 0 & y <= x");
  EXPECT_TRUE(RayInClosure(V({0, 0}), V({1, 0}), wedge));
  EXPECT_TRUE(RayInClosure(V({0, 0}), V({1, 1}), wedge));
  EXPECT_TRUE(RayInClosure(V({2, 1}), V({1, 0}), wedge));
  EXPECT_FALSE(RayInClosure(V({0, 0}), V({0, 1}), wedge));
  EXPECT_FALSE(RayInClosure(V({0, 0}), V({-1, 0}), wedge));
  EXPECT_FALSE(RayInClosure(V({0, 1}), V({1, 0}), wedge));  // start outside
}

TEST(PredicatesTest, CubeAndBoundedness) {
  EXPECT_EQ(MaxAbsCoordinate({V({1, -3}), V({2, 2})}), Rational(3));
  EXPECT_EQ(MaxAbsCoordinate({}), Rational(0));
  auto cube = CubeAtoms(2, Rational(3));
  EXPECT_EQ(cube.size(), 4u);  // x = ±8, y = ±8
  Conjunction square = ParseConj("x >= 0 & x <= 1 & y >= 0 & y <= 1");
  EXPECT_TRUE(IsBoundedPolyhedron(square));
  Conjunction halfplane = ParseConj("x >= 0");
  EXPECT_FALSE(IsBoundedPolyhedron(halfplane));
  // Appendix A criterion: the bounded square misses all cube facets.
  Rational c = MaxAbsCoordinate(VerticesOf(square));
  for (const LinearAtom& facet : CubeAtoms(2, c)) {
    std::vector<LinearAtom> atoms = square.atoms();
    atoms.push_back(facet);
    EXPECT_FALSE(Conjunction(2, atoms).IsFeasible());
  }
  // The unbounded polyhedron meets some facet.
  Conjunction wedge = ParseConj("y >= 0 & y <= x");
  Rational cw = MaxAbsCoordinate(VerticesOf(wedge));
  bool meets = false;
  for (const LinearAtom& facet : CubeAtoms(2, cw)) {
    std::vector<LinearAtom> atoms = wedge.atoms();
    atoms.push_back(facet);
    if (Conjunction(2, atoms).IsFeasible()) meets = true;
  }
  EXPECT_TRUE(meets);
}

TEST(PredicatesTest, InnerCubeIsOpenBox) {
  auto icube = InnerCubeAtoms(2, Rational(0));
  Conjunction box(2, icube);
  EXPECT_TRUE(box.Satisfies(V({0, 0})));
  EXPECT_TRUE(box.Satisfies(V({1, -1})));
  EXPECT_FALSE(box.Satisfies(V({2, 0})));
  EXPECT_FALSE(box.Satisfies(V({0, -2})));
}

}  // namespace
}  // namespace lcdb
