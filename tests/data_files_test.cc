// Loads every sample database shipped in data/ and sanity-checks it against
// its documented properties. LCDB_TEST_DATA_DIR is injected by CMake.

#include <gtest/gtest.h>

#include "core/evaluator.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "decomp/decomposition.h"

namespace lcdb {
namespace {

#ifndef LCDB_TEST_DATA_DIR
#define LCDB_TEST_DATA_DIR "data"
#endif

ConstraintDatabase Load(const std::string& name) {
  auto db = LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) + "/" + name);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return *db;
}

TEST(DataFilesTest, Triangle) {
  ConstraintDatabase db = Load("triangle.lcdb");
  EXPECT_EQ(db.arity(), 2u);
  auto ext = MakeArrangementExtension(db);
  EXPECT_EQ(ext->num_regions(), 19u);
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(*conn);
}

TEST(DataFilesTest, Comb) {
  ConstraintDatabase db = Load("comb.lcdb");
  auto ext = MakeArrangementExtension(db);
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(*conn);
}

TEST(DataFilesTest, Intervals) {
  ConstraintDatabase db = Load("intervals.lcdb");
  EXPECT_EQ(db.arity(), 1u);
  EXPECT_TRUE(db.Contains({Rational(1, 2)}));
  EXPECT_TRUE(db.Contains({Rational(5)}));
  EXPECT_FALSE(db.Contains({Rational(1)}));
  auto ext = MakeArrangementExtension(db);
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(*conn);
}

TEST(DataFilesTest, PentagonDecomposition) {
  ConstraintDatabase db = Load("pentagon.lcdb");
  auto regions = DecomposeFormula(db.representation());
  EXPECT_EQ(regions.size(), 15u);
}

TEST(DataFilesTest, WedgeIsUnbounded) {
  ConstraintDatabase db = Load("wedge.lcdb");
  auto ext = MakeArrangementExtension(db);
  auto has_unbounded = EvaluateSentenceText(
      *ext, "exists R . (subset(R) & !(bounded(R)))");
  ASSERT_TRUE(has_unbounded.ok());
  EXPECT_TRUE(*has_unbounded);
}

TEST(DataFilesTest, RoundTripAllFiles) {
  for (const char* name : {"triangle.lcdb", "comb.lcdb", "intervals.lcdb",
                           "pentagon.lcdb", "wedge.lcdb"}) {
    ConstraintDatabase db = Load(name);
    auto reparsed = LoadDatabaseFromString(SaveDatabaseToString(db));
    ASSERT_TRUE(reparsed.ok()) << name;
    EXPECT_EQ(reparsed->arity(), db.arity()) << name;
    EXPECT_EQ(reparsed->relation_name(), db.relation_name()) << name;
  }
}

}  // namespace
}  // namespace lcdb
