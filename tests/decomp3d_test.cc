// Three-dimensional exercises of the Appendix A decomposition and the
// arrangement — the worked figures in the paper are planar, but the
// definitions (d-tuples of hyperplanes, open hulls of d+1 vertices, d-fold
// multisets) are dimension-generic and deserve coverage at d = 3.

#include <random>

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "decomp/decomposition.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXYZ = {"x", "y", "z"};

Conjunction ParseConj(const std::string& text) {
  auto f = ParseDnf(text, kXYZ);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return f->disjuncts()[0];
}

bool Covered(const std::vector<DecompRegion>& regions, const Vec& p) {
  for (const DecompRegion& r : regions) {
    if (r.region.Contains(p)) return true;
  }
  return false;
}

TEST(Decomp3dTest, SimplexInventory) {
  // The standard 3-simplex: 4 vertices, 6 edges, 4 facet triangles + the
  // fan structure from p_low. With p_low = origin, every facet is already
  // a triangle, so the inner 3-dimensional fan has exactly one cell per
  // opposite facet... verified structurally: counts by dimension and
  // coverage.
  Conjunction simplex =
      ParseConj("x >= 0 & y >= 0 & z >= 0 & x + y + z <= 2");
  std::vector<DecompRegion> regions = DecomposeDisjunct(simplex, 0);
  auto counts = RegionCountsByDimension(regions, 3);
  EXPECT_EQ(counts[0], 4u);  // vertices
  // Six edges of the simplex; diagonals coincide with edges here.
  EXPECT_EQ(counts[1], 6u);
  // Four open facet triangles.
  EXPECT_EQ(counts[2], 4u);
  // The interior fan from p_low: the whole open simplex.
  EXPECT_EQ(counts[3], 1u);
  // Coverage: rational sample points of the closed simplex lie in some
  // region.
  std::mt19937_64 rng(5);
  std::uniform_int_distribution<int64_t> num(0, 8);
  int inside = 0;
  for (int iter = 0; iter < 120; ++iter) {
    Vec p = {Rational(num(rng), 4), Rational(num(rng), 4),
             Rational(num(rng), 4)};
    if (!simplex.Satisfies(p)) continue;
    ++inside;
    EXPECT_TRUE(Covered(regions, p)) << VecToString(p);
  }
  EXPECT_GT(inside, 20);
  EXPECT_FALSE(Covered(regions, {Rational(1), Rational(1), Rational(1)}));
}

TEST(Decomp3dTest, BoxCoverage) {
  Conjunction box = ParseConj(
      "x >= 0 & x <= 1 & y >= 0 & y <= 1 & z >= 0 & z <= 1");
  std::vector<DecompRegion> regions = DecomposeDisjunct(box, 0);
  auto counts = RegionCountsByDimension(regions, 3);
  EXPECT_EQ(counts[0], 8u);  // corners
  EXPECT_GE(counts[1], 12u);  // at least the edges (plus face diagonals)
  EXPECT_GE(counts[2], 6u);   // at least the facets
  EXPECT_GE(counts[3], 1u);
  std::mt19937_64 rng(7);
  std::uniform_int_distribution<int64_t> num(0, 4);
  for (int iter = 0; iter < 80; ++iter) {
    Vec p = {Rational(num(rng), 4), Rational(num(rng), 4),
             Rational(num(rng), 4)};
    EXPECT_TRUE(Covered(regions, p)) << VecToString(p);
  }
}

TEST(Decomp3dTest, UnboundedOctant) {
  Conjunction octant = ParseConj("x >= 0 & y >= 0 & z >= 0");
  std::vector<DecompRegion> regions = DecomposeDisjunct(octant, 0);
  EXPECT_FALSE(regions.empty());
  // Far-out points of the octant are covered by ray/hull regions.
  EXPECT_TRUE(Covered(regions, {Rational(100), Rational(0), Rational(0)}));
  EXPECT_TRUE(Covered(regions, {Rational(50), Rational(50), Rational(50)}));
  EXPECT_TRUE(Covered(regions, {Rational(0), Rational(77), Rational(3)}));
  EXPECT_FALSE(Covered(regions, {Rational(-1), Rational(0), Rational(0)}));
}

TEST(Arrangement3dTest, QueriesOverASolid) {
  // Region logic over a 3-ary database: a solid box.
  auto f = ParseDnf("x >= 0 & x <= 1 & y >= 0 & y <= 1 & z >= 0 & z <= 1",
                    kXYZ);
  ASSERT_TRUE(f.ok());
  ConstraintDatabase db("S", *f, kXYZ);
  auto ext = MakeArrangementExtension(db);
  // Dimensions 0..3 all occur inside S (corner, edge, facet, interior).
  for (int dim = 0; dim <= 3; ++dim) {
    auto r = EvaluateSentenceText(
        *ext, "exists R . (subset(R) & dim(R) = " + std::to_string(dim) + ")");
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(*r) << dim;
  }
  // The solid is connected.
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_TRUE(*conn);
  // A 3-D projection query: the shadow on the z axis.
  auto shadow = EvaluateQueryText(*ext, "exists x . exists y . S(x, y, z)");
  ASSERT_TRUE(shadow.ok());
  auto expected = ParseDnf("z >= 0 & z <= 1", {"z"});
  EXPECT_TRUE(AreEquivalent(shadow->formula, *expected));
}

TEST(Arrangement3dTest, TwoCubesDisconnected) {
  auto f = ParseDnf(
      "(x >= 0 & x <= 1 & y >= 0 & y <= 1 & z >= 0 & z <= 1) | "
      "(x >= 3 & x <= 4 & y >= 0 & y <= 1 & z >= 0 & z <= 1)",
      kXYZ);
  ASSERT_TRUE(f.ok());
  ConstraintDatabase db("S", *f, kXYZ);
  auto ext = MakeArrangementExtension(db);
  auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(*conn);
}

}  // namespace
}  // namespace lcdb
