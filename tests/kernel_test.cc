// Tests for the constraint kernel (engine/kernel.h) and the
// canonicalization pass behind its cache keys (constraint/canonical.h):
// scaling/order invariance and hash stability of the canonical form, cache
// hit/miss/eviction accounting, and end-to-end equivalence of cached vs
// uncached evaluation on the paper's workloads (river pollution, region
// connectivity, the Figure 5 multiplication trick).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraint/canonical.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "geometry/generator_region.h"
#include "qe/fourier_motzkin.h"

namespace lcdb {
namespace {

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

// --- Canonicalization -----------------------------------------------------

TEST(CanonicalTest, ScalingInvariance) {
  // 2x + 4y <= 6 and x + 2y <= 3 describe the same half-plane; both
  // canonicalize to the same encoding and hash.
  CanonicalSystem a = CanonicalizeSystem(
      2, {LinearConstraint(V({2, 4}), RelOp::kLe, Rational(6))});
  CanonicalSystem b = CanonicalizeSystem(
      2, {LinearConstraint(V({1, 2}), RelOp::kLe, Rational(3))});
  EXPECT_EQ(a.encoding, b.encoding);
  EXPECT_EQ(a.hash, b.hash);
  // Rational scaling and relation orientation normalize the same way:
  // -x/3 - 2y/3 >= -1 is again the same constraint.
  CanonicalSystem c = CanonicalizeSystem(
      2, {LinearConstraint({Rational(-1, 3), Rational(-2, 3)}, RelOp::kGe,
                           Rational(-1))});
  EXPECT_EQ(a.encoding, c.encoding);
}

TEST(CanonicalTest, AtomOrderAndDuplicateInvariance) {
  LinearConstraint first(V({1, 0}), RelOp::kLe, Rational(1));
  LinearConstraint second(V({0, 1}), RelOp::kLt, Rational(2));
  CanonicalSystem a = CanonicalizeSystem(2, {first, second});
  CanonicalSystem b = CanonicalizeSystem(2, {second, first, second});
  EXPECT_EQ(a.encoding, b.encoding);
  EXPECT_EQ(a.hash, b.hash);
  EXPECT_EQ(a.atoms.size(), 2u);
}

TEST(CanonicalTest, ConstantAtomsFold) {
  // A constant-true atom (0 <= 1) imposes nothing.
  CanonicalSystem with_true = CanonicalizeSystem(
      2, {LinearConstraint(V({0, 0}), RelOp::kLe, Rational(1)),
          LinearConstraint(V({1, 0}), RelOp::kLe, Rational(0))});
  CanonicalSystem bare = CanonicalizeSystem(
      2, {LinearConstraint(V({1, 0}), RelOp::kLe, Rational(0))});
  EXPECT_EQ(with_true.encoding, bare.encoding);
  // A constant-false atom (0 <= -1) makes the whole system trivially false.
  CanonicalSystem contradiction = CanonicalizeSystem(
      2, {LinearConstraint(V({1, 0}), RelOp::kLe, Rational(0)),
          LinearConstraint(V({0, 0}), RelOp::kLe, Rational(-1))});
  EXPECT_TRUE(contradiction.syntactically_false);
  EXPECT_EQ(contradiction.encoding, "n2:F");
}

TEST(CanonicalTest, HashAndEncodingStability) {
  // Golden values: the cache key format must stay stable across runs and
  // platforms, since telemetry (collision counts) and any future persisted
  // cache depend on it.
  EXPECT_EQ(StableHash64(""), 1469598103934665603ull);
  EXPECT_EQ(StableHash64("abc"), 16242233503745875709ull);
  CanonicalSystem s = CanonicalizeSystem(
      2, {LinearConstraint(V({1, 2}), RelOp::kLe, Rational(3))});
  EXPECT_EQ(s.encoding, "n2:l1,2|3;");
  EXPECT_EQ(s.hash, 16908621879805183800ull);
  EXPECT_EQ(s.hash, StableHash64(s.encoding));
}

TEST(CanonicalTest, ConjunctionAndSystemEntryPointsAgree) {
  // The Conjunction-level and LP-level canonicalizers must produce the same
  // key for the same system — that alignment is what makes cache entries
  // shared across layers.
  Conjunction conj(2, {LinearAtom(V({2, -2}), RelOp::kLt, Rational(4)),
                       LinearAtom(V({0, 3}), RelOp::kEq, Rational(6))});
  CanonicalSystem from_conj = CanonicalizeConjunction(conj);
  CanonicalSystem from_system =
      CanonicalizeSystem(conj.num_vars(), conj.ToConstraints());
  EXPECT_EQ(from_conj.encoding, from_system.encoding);
  EXPECT_EQ(from_conj.hash, from_system.hash);
}

// --- Kernel cache accounting ---------------------------------------------

TEST(KernelTest, RepeatedQueryHitsCache) {
  ConstraintKernel kernel;
  Conjunction conj(2, {LinearAtom(V({1, 0}), RelOp::kLe, Rational(1)),
                       LinearAtom(V({0, 1}), RelOp::kGe, Rational(0))});
  EXPECT_TRUE(kernel.IsFeasible(conj));
  EXPECT_TRUE(kernel.IsFeasible(conj));
  // A scaled copy of the same system is the same cache entry.
  Conjunction scaled(2, {LinearAtom(V({3, 0}), RelOp::kLe, Rational(3)),
                         LinearAtom(V({0, 2}), RelOp::kGe, Rational(0))});
  EXPECT_TRUE(kernel.IsFeasible(scaled));
  const KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.feasibility_queries, 3u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_EQ(stats.cache_hits, 2u);
  EXPECT_EQ(stats.oracle_calls, 1u);
}

TEST(KernelTest, MemoizeOffAlwaysPaysOracle) {
  ConstraintKernel kernel(ConstraintKernel::Options{/*memoize=*/false});
  Conjunction conj(1, {LinearAtom(V({1}), RelOp::kLt, Rational(0))});
  EXPECT_TRUE(kernel.IsFeasible(conj));
  EXPECT_TRUE(kernel.IsFeasible(conj));
  const KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.cache_hits, 0u);
  EXPECT_EQ(stats.oracle_calls, 2u);
  EXPECT_GE(stats.simplex_invocations, 2u);
}

TEST(KernelTest, TrivialAnswersSkipOracle) {
  ConstraintKernel kernel;
  // Syntactically false and empty systems are decided by canonicalization.
  EXPECT_FALSE(
      kernel
          .CheckFeasibility(
              2, {LinearConstraint(V({0, 0}), RelOp::kLe, Rational(-1))})
          .feasible);
  FeasibilityResult empty = kernel.CheckFeasibility(2, {});
  EXPECT_TRUE(empty.feasible);
  EXPECT_EQ(empty.witness.size(), 2u);
  const KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.trivial_answers, 2u);
  EXPECT_EQ(stats.oracle_calls, 0u);
}

TEST(KernelTest, WitnessSatisfiesEveryConstraint) {
  ConstraintKernel kernel;
  Conjunction conj(2, {LinearAtom(V({1, 1}), RelOp::kLt, Rational(3)),
                       LinearAtom(V({1, -1}), RelOp::kGe, Rational(1)),
                       LinearAtom(V({0, 1}), RelOp::kGt, Rational(0))});
  FeasibilityResult r = kernel.Feasibility(conj);
  ASSERT_TRUE(r.feasible);
  for (const LinearAtom& atom : conj.atoms()) {
    EXPECT_TRUE(atom.Satisfies(r.witness));
  }
  // The cached copy returns the same witness.
  FeasibilityResult again = kernel.Feasibility(conj);
  EXPECT_EQ(again.witness, r.witness);
  EXPECT_EQ(kernel.stats().cache_hits, 1u);
}

TEST(KernelTest, ImplicationCacheHits) {
  ConstraintKernel kernel;
  Conjunction conj(1, {LinearAtom(V({1}), RelOp::kLe, Rational(1))});
  LinearAtom weaker(V({1}), RelOp::kLe, Rational(2));
  LinearAtom unrelated(V({1}), RelOp::kGe, Rational(0));
  EXPECT_TRUE(kernel.ImpliesAtom(conj, weaker));
  EXPECT_TRUE(kernel.ImpliesAtom(conj, weaker));
  EXPECT_FALSE(kernel.ImpliesAtom(conj, unrelated));
  const KernelStats stats = kernel.stats();
  EXPECT_EQ(stats.implication_queries, 3u);
  EXPECT_EQ(stats.implication_cache_hits, 1u);
  EXPECT_EQ(stats.implication_cache_misses, 2u);
}

TEST(KernelTest, LruEvictionKeepsAnswersCorrect) {
  ConstraintKernel kernel(
      ConstraintKernel::Options{/*memoize=*/true, /*max_entries=*/2});
  for (int round = 0; round < 2; ++round) {
    for (int64_t k = 0; k < 6; ++k) {
      Conjunction conj(1, {LinearAtom(V({1}), RelOp::kLe, Rational(k)),
                           LinearAtom(V({1}), RelOp::kGe, Rational(k))});
      EXPECT_TRUE(kernel.IsFeasible(conj)) << "k=" << k;
    }
  }
  const KernelStats stats = kernel.stats();
  EXPECT_GT(stats.cache_evictions, 0u);
  EXPECT_EQ(stats.feasibility_queries, 12u);
}

TEST(KernelTest, ScopedKernelOverridesCurrent) {
  ConstraintKernel& before = CurrentKernel();
  ConstraintKernel local;
  {
    ScopedKernel scope(local);
    EXPECT_EQ(&CurrentKernel(), &local);
    Conjunction conj(1, {LinearAtom(V({1}), RelOp::kEq, Rational(7))});
    EXPECT_TRUE(conj.IsFeasible());  // routed through `local`
    EXPECT_EQ(local.stats().feasibility_queries, 1u);
  }
  EXPECT_EQ(&CurrentKernel(), &before);
}

// --- Cached vs uncached equivalence on real workloads ---------------------

TEST(KernelEquivalenceTest, QePresimplifyMatchesPlainElimination) {
  // The Fourier-Motzkin presimplify pass (redundancy elimination before
  // projection) must not change the eliminated formula's meaning.
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    std::vector<LinearAtom> atoms;
    for (int64_t i = 0; i < 9; ++i) {
      const int64_t a = static_cast<int64_t>((seed * 31 + i * 17) % 7) - 3;
      const int64_t b = static_cast<int64_t>((seed * 13 + i * 29) % 7) - 3;
      const int64_t c = static_cast<int64_t>((seed * 7 + i * 11) % 7) - 3;
      Vec coeffs = V({a, b, c});
      if (VecIsZero(coeffs)) coeffs = V({1, 0, 0});
      atoms.emplace_back(coeffs, i % 3 == 0 ? RelOp::kGe : RelOp::kLe,
                         Rational(static_cast<int64_t>((seed + i) % 5) - 2));
    }
    DnfFormula f(3, {Conjunction(3, atoms)});
    DnfFormula pre = ExistsVariables(f, {0, 1}, QeOptions{true});
    DnfFormula plain = ExistsVariables(f, {0, 1}, QeOptions{false});
    EXPECT_TRUE(AreEquivalent(pre, plain)) << "seed=" << seed;
  }
}

TEST(KernelEquivalenceTest, RiverQueryCachedVsUncached) {
  ConstraintDatabase db = MakeRiverScenario(2, {}, {0}, {1});
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel on(ConstraintKernel::Options{/*memoize=*/true});
  ConstraintKernel off(ConstraintKernel::Options{/*memoize=*/false});

  bool sentence_on = false, sentence_off = false;
  DnfFormula open_on = DnfFormula::False(0);
  DnfFormula open_off = DnfFormula::False(0);
  {
    ScopedKernel scope(on);
    auto sentence = EvaluateSentenceText(*ext, RiverPollutionQueryText());
    ASSERT_TRUE(sentence.ok()) << sentence.status().ToString();
    sentence_on = *sentence;
    auto open = EvaluateQueryText(*ext, "exists y . S(x, y)");
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    open_on = open->formula;
  }
  {
    ScopedKernel scope(off);
    auto sentence = EvaluateSentenceText(*ext, RiverPollutionQueryText());
    ASSERT_TRUE(sentence.ok()) << sentence.status().ToString();
    sentence_off = *sentence;
    auto open = EvaluateQueryText(*ext, "exists y . S(x, y)");
    ASSERT_TRUE(open.ok()) << open.status().ToString();
    open_off = open->formula;
  }

  EXPECT_TRUE(sentence_on);
  EXPECT_EQ(sentence_on, sentence_off);
  EXPECT_GT(on.stats().cache_hits, 0u);
  EXPECT_EQ(off.stats().cache_hits, 0u);
  // The cache must save actual LP work, not just bookkeeping.
  EXPECT_LT(on.stats().simplex_invocations, off.stats().simplex_invocations);
  ScopedKernel scope(on);
  EXPECT_TRUE(AreEquivalent(open_on, open_off));
}

TEST(KernelEquivalenceTest, MultiplicationFigureCachedVsUncached) {
  // Figure 5's trick: x * y = z iff (x, y-1) lies on the closed segment
  // from (0, y) to (z, 0). The Contains test runs through the kernel's
  // feasibility oracle; cached and uncached kernels must agree on every
  // probe of a small rational grid.
  ConstraintKernel on(ConstraintKernel::Options{/*memoize=*/true});
  ConstraintKernel off(ConstraintKernel::Options{/*memoize=*/false});
  auto says_product = [](const Rational& x, const Rational& y,
                         const Rational& z) {
    GeneratorRegion segment =
        GeneratorRegion::ClosedSegment({Rational(0), y}, {z, Rational(0)});
    return segment.Contains({x, y - Rational(1)});
  };
  for (int64_t xn = 1; xn <= 3; ++xn) {
    for (int64_t yn = 1; yn <= 3; ++yn) {
      const Rational x(xn, 2);
      const Rational y = Rational(yn, 2) + Rational(1);
      for (const Rational& z :
           {x * y, x * y + Rational(1, 97), x * y - Rational(1, 97)}) {
        bool verdict_on, verdict_off;
        {
          ScopedKernel scope(on);
          verdict_on = says_product(x, y, z);
        }
        {
          ScopedKernel scope(off);
          verdict_off = says_product(x, y, z);
        }
        EXPECT_EQ(verdict_on, verdict_off);
        EXPECT_EQ(verdict_on, z == x * y);
      }
    }
  }
  EXPECT_GT(on.stats().feasibility_queries, 0u);
}

}  // namespace
}  // namespace lcdb
