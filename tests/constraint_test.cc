#include <random>

#include <gtest/gtest.h>

#include "constraint/dnf_formula.h"
#include "constraint/linear_atom.h"
#include "constraint/parser.h"
#include "constraint/simplify.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};
const std::vector<std::string> kX = {"x"};

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

DnfFormula Parse(const std::string& text,
                 const std::vector<std::string>& vars = kXY) {
  auto r = ParseDnf(text, vars);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
  return r.ok() ? *r : DnfFormula::False(vars.size());
}

TEST(LinearAtomTest, CanonicalizationScalesToIntegers) {
  // x/2 + y/3 <= 1/6  ->  3x + 2y <= 1.
  LinearAtom a({Rational(1, 2), Rational(1, 3)}, RelOp::kLe, Rational(1, 6));
  EXPECT_EQ(a.ToString(kXY), "3x + 2y <= 1");
}

TEST(LinearAtomTest, GreaterRelationsFlip) {
  LinearAtom a(V({2, 0}), RelOp::kGe, Rational(4));
  EXPECT_EQ(a.rel(), RelOp::kLe);
  EXPECT_EQ(a.ToString(kXY), "-x <= -2");
  LinearAtom b(V({1, 0}), RelOp::kGt, Rational(0));
  EXPECT_EQ(b.rel(), RelOp::kLt);
}

TEST(LinearAtomTest, EqualityLeadingCoefficientPositive) {
  LinearAtom a(V({-2, 4}), RelOp::kEq, Rational(-6));
  EXPECT_EQ(a.ToString(kXY), "x - 2y = 3");
  LinearAtom b(V({2, -4}), RelOp::kEq, Rational(6));
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
}

TEST(LinearAtomTest, GcdReduction) {
  LinearAtom a(V({4, 6}), RelOp::kLe, Rational(10));
  EXPECT_EQ(a.ToString(kXY), "2x + 3y <= 5");
}

TEST(LinearAtomTest, SatisfiesAndNegate) {
  LinearAtom a(V({1, 1}), RelOp::kLt, Rational(2));
  EXPECT_TRUE(a.Satisfies(V({0, 0})));
  EXPECT_FALSE(a.Satisfies(V({1, 1})));
  auto neg = a.Negate();
  ASSERT_EQ(neg.size(), 1u);
  EXPECT_FALSE(neg[0].Satisfies(V({0, 0})));
  EXPECT_TRUE(neg[0].Satisfies(V({1, 1})));

  LinearAtom eq(V({1, 0}), RelOp::kEq, Rational(0));
  auto eq_neg = eq.Negate();
  ASSERT_EQ(eq_neg.size(), 2u);
  EXPECT_TRUE(eq_neg[0].Satisfies(V({-1, 0})) ^ eq_neg[1].Satisfies(V({-1, 0})));
}

TEST(LinearAtomTest, ConstantAtoms) {
  LinearAtom t(V({0, 0}), RelOp::kLe, Rational(1));
  EXPECT_TRUE(t.IsConstant());
  EXPECT_TRUE(t.ConstantValue());
  LinearAtom f(V({0, 0}), RelOp::kGt, Rational(0));
  EXPECT_TRUE(f.IsConstant());
  EXPECT_FALSE(f.ConstantValue());
  LinearAtom z(V({0, 0}), RelOp::kEq, Rational(0));
  EXPECT_TRUE(z.ConstantValue());
}

TEST(LinearAtomTest, SubstituteAffine) {
  // x + y <= 3 under x := 2u, y := u + v - 1  gives 3u + v <= 4.
  LinearAtom a(V({1, 1}), RelOp::kLe, Rational(3));
  std::vector<AffineExpr> map = {
      AffineExpr({Rational(2), Rational(0)}, Rational(0)),
      AffineExpr({Rational(1), Rational(1)}, Rational(-1))};
  LinearAtom sub = a.Substitute(map, 2);
  EXPECT_EQ(sub.ToString({"u", "v"}), "3u + v <= 4");
}

TEST(ConjunctionTest, NormalizationSortsAndDedupes) {
  LinearAtom a(V({1, 0}), RelOp::kLe, Rational(1));
  LinearAtom b(V({0, 1}), RelOp::kLe, Rational(1));
  Conjunction c(2, {b, a, a});
  EXPECT_EQ(c.atoms().size(), 2u);
  Conjunction c2(2, {a, b});
  EXPECT_EQ(c, c2);
}

TEST(ConjunctionTest, ConstantFalseCollapses) {
  LinearAtom f(V({0, 0}), RelOp::kLt, Rational(0));
  LinearAtom a(V({1, 0}), RelOp::kLe, Rational(1));
  Conjunction c(2, {a, f});
  EXPECT_TRUE(c.IsSyntacticallyFalse());
  EXPECT_FALSE(c.IsFeasible());
}

TEST(ConjunctionTest, FeasibilityAndWitness) {
  Conjunction square(2, {LinearAtom(V({1, 0}), RelOp::kGt, Rational(0)),
                         LinearAtom(V({1, 0}), RelOp::kLt, Rational(1)),
                         LinearAtom(V({0, 1}), RelOp::kGt, Rational(0)),
                         LinearAtom(V({0, 1}), RelOp::kLt, Rational(1))});
  EXPECT_TRUE(square.IsFeasible());
  Vec w = square.FindWitness();
  ASSERT_EQ(w.size(), 2u);
  EXPECT_TRUE(square.Satisfies(w));
  // Empty open interval.
  Conjunction empty(1, {LinearAtom(V({1}), RelOp::kLt, Rational(0)),
                        LinearAtom(V({1}), RelOp::kGt, Rational(0))});
  EXPECT_FALSE(empty.IsFeasible());
  EXPECT_FALSE(empty.IsSyntacticallyFalse());  // semantic, not syntactic
}

TEST(ConjunctionTest, RemoveRedundantAtoms) {
  Conjunction c(1, {LinearAtom(V({1}), RelOp::kLe, Rational(1)),
                    LinearAtom(V({1}), RelOp::kLe, Rational(5)),
                    LinearAtom(V({1}), RelOp::kGe, Rational(0))});
  c.RemoveRedundantAtoms();
  EXPECT_EQ(c.atoms().size(), 2u);  // x <= 5 implied by x <= 1
}

TEST(DnfFormulaTest, BooleanAlgebra) {
  DnfFormula f = Parse("x < 0 | x > 1", kX);
  EXPECT_EQ(f.disjuncts().size(), 2u);
  DnfFormula neg = f.Negate();
  // Complement is [0, 1].
  EXPECT_TRUE(neg.Satisfies(V({0})));
  EXPECT_TRUE(neg.Satisfies(V({1})));
  EXPECT_FALSE(neg.Satisfies(V({2})));
  EXPECT_FALSE(neg.Satisfies(V({-1})));
  // Double negation is semantically identity.
  EXPECT_TRUE(AreEquivalent(neg.Negate(), f));
}

TEST(DnfFormulaTest, AndOrSemantics) {
  DnfFormula a = Parse("x >= 0", kXY);
  DnfFormula b = Parse("y >= 0", kXY);
  DnfFormula both = a.And(b);
  EXPECT_TRUE(both.Satisfies(V({1, 1})));
  EXPECT_FALSE(both.Satisfies(V({1, -1})));
  DnfFormula either = a.Or(b);
  EXPECT_TRUE(either.Satisfies(V({1, -1})));
  EXPECT_FALSE(either.Satisfies(V({-1, -1})));
}

TEST(DnfFormulaTest, TrueFalseAlgebra) {
  DnfFormula t = DnfFormula::True(2);
  DnfFormula f = DnfFormula::False(2);
  DnfFormula a = Parse("x = y", kXY);
  EXPECT_TRUE(AreEquivalent(a.And(t), a));
  EXPECT_TRUE(a.And(f).IsSyntacticallyFalse());
  EXPECT_TRUE(AreEquivalent(a.Or(f), a));
  EXPECT_TRUE(a.Or(t).IsSyntacticallyTrue());
  EXPECT_TRUE(t.Negate().IsSyntacticallyFalse());
  EXPECT_TRUE(f.Negate().IsSyntacticallyTrue());
}

TEST(DnfFormulaTest, SimplifyPrunesEmptyDisjuncts) {
  DnfFormula f = Parse("(x < 0 & x > 0) | x = 1", kX);
  EXPECT_EQ(f.disjuncts().size(), 1u);
}

TEST(ParserTest, RoundTripThroughToString) {
  for (const char* text :
       {"x + y <= 3", "2x - 3y < 5", "x = y", "x < 0 | x > 1",
        "x >= 0 & y >= 0 & x + y <= 1", "1/2 x + 1/3 y = 1"}) {
    DnfFormula f = Parse(text);
    auto reparsed = ParseDnf(f.ToString(kXY), kXY);
    ASSERT_TRUE(reparsed.ok()) << f.ToString(kXY);
    EXPECT_TRUE(AreEquivalent(f, *reparsed)) << text;
  }
}

TEST(ParserTest, NotEqualDesugars) {
  DnfFormula f = Parse("x != 0", kX);
  EXPECT_EQ(f.disjuncts().size(), 2u);
  EXPECT_TRUE(f.Satisfies(V({1})));
  EXPECT_TRUE(f.Satisfies(V({-1})));
  EXPECT_FALSE(f.Satisfies(V({0})));
}

TEST(ParserTest, NegationAndParens) {
  DnfFormula f = Parse("!(x < 0 | x > 1)", kX);
  EXPECT_TRUE(f.Satisfies(V({0})));
  EXPECT_FALSE(f.Satisfies(V({-1})));
  DnfFormula g = Parse("!(x < 0) & !(x > 1)", kX);
  EXPECT_TRUE(AreEquivalent(f, g));
}

TEST(ParserTest, ConstantsOnBothSides) {
  DnfFormula f = Parse("x + 1 <= y + 3", kXY);
  EXPECT_TRUE(f.Satisfies(V({2, 0})));
  EXPECT_FALSE(f.Satisfies(V({3, 0})));
}

TEST(ParserTest, TrueFalseLiterals) {
  EXPECT_TRUE(Parse("true", kX).IsSyntacticallyTrue());
  EXPECT_TRUE(Parse("false", kX).IsSyntacticallyFalse());
  EXPECT_TRUE(AreEquivalent(Parse("x < 1 & true", kX), Parse("x < 1", kX)));
}

TEST(ParserTest, Errors) {
  EXPECT_FALSE(ParseDnf("x <", kX).ok());
  EXPECT_FALSE(ParseDnf("z < 1", kX).ok());  // unknown variable
  EXPECT_FALSE(ParseDnf("x < 1 (", kX).ok());
  EXPECT_FALSE(ParseDnf("(x < 1", kX).ok());
  EXPECT_FALSE(ParseDnf("x << 1", kX).ok());
  EXPECT_FALSE(ParseDnf("", kX).ok());
  EXPECT_FALSE(ParseDnf("x < 1/0", kX).ok());
}

TEST(SimplifyTest, ImplicationAndEquivalence) {
  DnfFormula narrow = Parse("x > 0 & x < 1", kX);
  DnfFormula wide = Parse("x >= 0 & x <= 1", kX);
  EXPECT_TRUE(Implies(narrow, wide));
  EXPECT_FALSE(Implies(wide, narrow));
  EXPECT_FALSE(AreEquivalent(narrow, wide));
  // The paper's Section 2 example: two representations of (0, 10).
  DnfFormula r1 = Parse("0 < x & x < 10", kX);
  DnfFormula r2 = Parse("(0 < x & x < 6) | (6 < x & x < 10) | x = 6", kX);
  EXPECT_TRUE(AreEquivalent(r1, r2));
}

TEST(SimplifyTest, DifferenceComputesSetMinus) {
  DnfFormula interval = Parse("x >= 0 & x <= 10", kX);
  DnfFormula hole = Parse("x > 3 & x < 7", kX);
  DnfFormula diff = Difference(interval, hole);
  EXPECT_TRUE(diff.Satisfies(V({3})));
  EXPECT_TRUE(diff.Satisfies(V({7})));
  EXPECT_FALSE(diff.Satisfies(V({5})));
  EXPECT_TRUE(diff.Satisfies(V({0})));
}

TEST(SimplifyTest, StrongSimplifyPreservesSemantics) {
  // RemoveRedundantAtoms / SimplifyStrong must never change the relation.
  for (const char* text :
       {"x >= 0 & x <= 5 & x <= 9 & x >= -3",
        "(x > 0 & x < 2 & x < 10) | (x >= 1 & x <= 3)",
        "x = 1 & x >= 0", "(x < 0 & x > 1) | x = 2"}) {
    DnfFormula f = Parse(text, kX);
    DnfFormula g = f;
    g.SimplifyStrong();
    EXPECT_TRUE(AreEquivalent(f, g)) << text;
    EXPECT_LE(g.AtomCount(), f.AtomCount()) << text;
  }
}

TEST(SimplifyTest, SubstitutionPreservesSemanticsUnderComposition) {
  // (f o sigma) o tau == f o (sigma then tau) pointwise, sampled.
  DnfFormula f = Parse("x + y <= 3 | x - y > 1");
  std::vector<AffineExpr> swap_map = {AffineExpr::Variable(2, 1),
                                      AffineExpr::Variable(2, 0)};
  DnfFormula swapped = f.Substitute(swap_map, 2);
  DnfFormula twice = swapped.Substitute(swap_map, 2);
  EXPECT_TRUE(AreEquivalent(twice, f));
  for (int64_t x = -3; x <= 3; ++x) {
    for (int64_t y = -3; y <= 3; ++y) {
      EXPECT_EQ(swapped.Satisfies(V({x, y})), f.Satisfies(V({y, x})));
    }
  }
}

class DnfPropertyTest : public ::testing::TestWithParam<uint32_t> {};

// Random formulas: boolean algebra laws checked by point sampling.
TEST_P(DnfPropertyTest, DeMorganAndDistributivityBySampling) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  std::uniform_int_distribution<int> rel_pick(0, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  auto random_formula = [&](size_t atoms) {
    DnfFormula f = DnfFormula::False(2);
    for (size_t i = 0; i < atoms; ++i) {
      Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
      DnfFormula atom = DnfFormula::FromAtom(
          LinearAtom(c, rels[rel_pick(rng)], Rational(coeff(rng))));
      f = (i % 2 == 0) ? f.Or(atom) : f.And(atom);
    }
    return f;
  };
  std::uniform_int_distribution<int64_t> pt(-4, 4);
  for (int iter = 0; iter < 12; ++iter) {
    DnfFormula a = random_formula(2);
    DnfFormula b = random_formula(2);
    DnfFormula not_a = a.Negate();
    DnfFormula a_and_b = a.And(b);
    DnfFormula a_or_b = a.Or(b);
    DnfFormula demorgan = a_and_b.Negate();
    DnfFormula expected = not_a.Or(b.Negate());
    for (int s = 0; s < 40; ++s) {
      Vec p = {Rational(pt(rng), 1 + s % 3), Rational(pt(rng), 1 + s % 2)};
      EXPECT_NE(a.Satisfies(p), not_a.Satisfies(p));
      EXPECT_EQ(a_and_b.Satisfies(p), a.Satisfies(p) && b.Satisfies(p));
      EXPECT_EQ(a_or_b.Satisfies(p), a.Satisfies(p) || b.Satisfies(p));
      EXPECT_EQ(demorgan.Satisfies(p), expected.Satisfies(p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DnfPropertyTest,
                         ::testing::Values(3u, 17u, 42u));

}  // namespace
}  // namespace lcdb
