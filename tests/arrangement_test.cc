#include <random>

#include <gtest/gtest.h>

#include "arrangement/arrangement.h"
#include "arrangement/incidence_graph.h"
#include "constraint/parser.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

Hyperplane H(const std::string& text,
             const std::vector<std::string>& vars = kXY) {
  return Hyperplane::FromAtom(ParseAtom(text, vars).value());
}

TEST(ArrangementTest, SingleLineSplitsPlane) {
  Arrangement arr = Arrangement::Build({H("x = 0")}, 2);
  EXPECT_EQ(arr.num_faces(), 3u);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 1u);
  EXPECT_EQ(counts[2], 2u);
}

TEST(ArrangementTest, TwoCrossingLines) {
  Arrangement arr = Arrangement::Build({H("x = 0"), H("y = 0")}, 2);
  EXPECT_EQ(arr.num_faces(), 9u);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 1u);  // origin
  EXPECT_EQ(counts[1], 4u);  // four half-axes
  EXPECT_EQ(counts[2], 4u);  // four quadrants
}

TEST(ArrangementTest, PaperExampleThreeLinesGeneralPosition) {
  // Figure 3 of the paper: an arrangement with seven 2-dimensional faces
  // e1..e7, nine 1-dimensional faces l1..l9, three vertices p1..p3 — three
  // hyperplanes in general position.
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4")}, 2);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 9u);
  EXPECT_EQ(counts[2], 7u);
  EXPECT_EQ(arr.num_faces(), 19u);
}

TEST(ArrangementTest, ParallelLines) {
  Arrangement arr = Arrangement::Build({H("x = 0"), H("x = 1")}, 2);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 0u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 3u);
}

TEST(ArrangementTest, DuplicatePlanesCollapse) {
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("2x = 0"), H("x <= 0" /* same */)}, 2);
  EXPECT_EQ(arr.planes().size(), 1u);
  EXPECT_EQ(arr.num_faces(), 3u);
}

TEST(ArrangementTest, EmptyPlaneList) {
  Arrangement arr = Arrangement::Build({}, 2);
  EXPECT_EQ(arr.num_faces(), 1u);
  EXPECT_EQ(arr.face(0).dim, 2);
  EXPECT_FALSE(arr.face(0).bounded);
  EXPECT_EQ(arr.LocateFace(V({5, -3})), 0u);
  EXPECT_TRUE(arr.FaceFormula(0).IsTrue());
}

TEST(ArrangementTest, OneDimensional) {
  std::vector<std::string> x = {"x"};
  Arrangement arr = Arrangement::Build(
      {H("x = 0", x), H("x = 1", x), H("x = 5", x)}, 1);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 3u);
  EXPECT_EQ(counts[1], 4u);
}

TEST(ArrangementTest, WitnessInFaceAndFormulaConsistency) {
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4")}, 2);
  for (size_t i = 0; i < arr.num_faces(); ++i) {
    Conjunction formula = arr.FaceFormula(i);
    EXPECT_TRUE(formula.Satisfies(arr.face(i).witness)) << i;
    EXPECT_EQ(arr.LocateFace(arr.face(i).witness), i);
  }
}

TEST(ArrangementTest, FacesPartitionThePlane) {
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4"),
                          H("x - y = 1")},
                         2);
  std::mt19937_64 rng(12345);
  std::uniform_int_distribution<int64_t> num(-12, 12);
  std::uniform_int_distribution<int64_t> den(1, 4);
  for (int iter = 0; iter < 200; ++iter) {
    Vec p = {Rational(num(rng), den(rng)), Rational(num(rng), den(rng))};
    size_t face = arr.LocateFace(p);
    size_t containing = 0;
    for (size_t i = 0; i < arr.num_faces(); ++i) {
      if (arr.FaceFormula(i).Satisfies(p)) {
        ++containing;
        EXPECT_EQ(i, face);
      }
    }
    EXPECT_EQ(containing, 1u) << VecToString(p);
  }
}

TEST(ArrangementTest, BoundedFaces) {
  // Triangle lines: exactly one bounded 2-face (the open triangle), three
  // bounded edges, three vertices.
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4")}, 2);
  size_t bounded2 = 0, bounded1 = 0, bounded0 = 0;
  for (const Face& f : arr.faces()) {
    if (!f.bounded) continue;
    if (f.dim == 2) ++bounded2;
    if (f.dim == 1) ++bounded1;
    if (f.dim == 0) ++bounded0;
  }
  EXPECT_EQ(bounded2, 1u);
  EXPECT_EQ(bounded1, 3u);
  EXPECT_EQ(bounded0, 3u);
}

TEST(ArrangementTest, AdjacencySymmetricAndDimensionSeparated) {
  Arrangement arr = Arrangement::Build({H("x = 0"), H("y = 0")}, 2);
  for (size_t f = 0; f < arr.num_faces(); ++f) {
    EXPECT_FALSE(arr.Adjacent(f, f));
    for (size_t g = 0; g < arr.num_faces(); ++g) {
      EXPECT_EQ(arr.Adjacent(f, g), arr.Adjacent(g, f));
      if (arr.Adjacent(f, g)) {
        // The paper: adjacent regions have strictly different dimensions.
        EXPECT_NE(arr.face(f).dim, arr.face(g).dim);
      }
      if (arr.Incident(f, g)) EXPECT_TRUE(arr.Adjacent(f, g));
    }
  }
  // Origin adjacent to every other face in the two-axes arrangement.
  size_t origin = arr.LocateFace(V({0, 0}));
  for (size_t g = 0; g < arr.num_faces(); ++g) {
    if (g != origin) EXPECT_TRUE(arr.Adjacent(origin, g));
  }
}

TEST(ArrangementTest, EulerCharacteristicOfLineArrangements) {
  // For any arrangement of lines in R^2: V - E + C == 1.
  std::vector<std::vector<Hyperplane>> cases = {
      {H("x = 0")},
      {H("x = 0"), H("y = 0")},
      {H("x = 0"), H("y = 0"), H("x + y = 4")},
      {H("x = 0"), H("y = 0"), H("x + y = 4"), H("x - y = 1")},
      {H("x = 0"), H("x = 1"), H("y = 0"), H("x + 2y = 3")},
  };
  for (auto& planes : cases) {
    Arrangement arr = Arrangement::Build(planes, 2);
    auto counts = arr.FaceCountsByDimension();
    int euler = static_cast<int>(counts[0]) - static_cast<int>(counts[1]) +
                static_cast<int>(counts[2]);
    EXPECT_EQ(euler, 1);
  }
}

TEST(ArrangementTest, GeneralPositionCountFormulas) {
  // n lines in general position: C(n,2) vertices, n^2 edges,
  // 1 + n + C(n,2) cells.
  std::vector<Hyperplane> planes = {H("x = 0"), H("y = 0"), H("x + y = 4"),
                                    H("x - y = 1"), H("x + 2y = -3")};
  const size_t n = planes.size();
  Arrangement arr = Arrangement::Build(planes, 2);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], n * (n - 1) / 2);
  EXPECT_EQ(counts[1], n * n);
  EXPECT_EQ(counts[2], 1 + n + n * (n - 1) / 2);
}

TEST(ArrangementTest, ThreeDimensionalAxes) {
  std::vector<std::string> xyz = {"x", "y", "z"};
  Arrangement arr = Arrangement::Build(
      {H("x = 0", xyz), H("y = 0", xyz), H("z = 0", xyz)}, 3);
  auto counts = arr.FaceCountsByDimension();
  EXPECT_EQ(counts[0], 1u);   // origin
  EXPECT_EQ(counts[1], 6u);   // half-axes
  EXPECT_EQ(counts[2], 12u);  // quarter-planes
  EXPECT_EQ(counts[3], 8u);   // octants
}

TEST(IncidenceGraphTest, CrossingLinesStructure) {
  Arrangement arr = Arrangement::Build({H("x = 0"), H("y = 0")}, 2);
  IncidenceGraph graph(arr);
  size_t origin = arr.LocateFace(V({0, 0}));
  // Vertex: four incident edges up, improper bottom down.
  EXPECT_EQ(graph.Up(origin).size(), 4u);
  ASSERT_EQ(graph.Down(origin).size(), 1u);
  EXPECT_EQ(graph.Down(origin)[0], IncidenceGraph::kBottom);
  // Every 1-face: up to two quadrants, down to the origin.
  for (size_t f = 0; f < arr.num_faces(); ++f) {
    if (arr.face(f).dim != 1) continue;
    EXPECT_EQ(graph.Up(f).size(), 2u);
    ASSERT_EQ(graph.Down(f).size(), 1u);
    EXPECT_EQ(graph.Down(f)[0], origin);
  }
  // Every quadrant: up to the improper top.
  for (size_t f = 0; f < arr.num_faces(); ++f) {
    if (arr.face(f).dim != 2) continue;
    ASSERT_EQ(graph.Up(f).size(), 1u);
    EXPECT_EQ(graph.Up(f)[0], IncidenceGraph::kTop);
    EXPECT_EQ(graph.Down(f).size(), 2u);
  }
  EXPECT_FALSE(graph.DescribeNeighbourhood(arr, origin).empty());
}

TEST(IncidenceGraphTest, PaperFigure4Neighbourhood) {
  // Around a vertex of the three-line arrangement: p2-like vertex has four
  // incident 1-faces (it lies on two of the three lines).
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4")}, 2);
  IncidenceGraph graph(arr);
  size_t p = arr.LocateFace(V({0, 4}));  // intersection of x=0 and x+y=4
  EXPECT_EQ(arr.face(p).dim, 0);
  EXPECT_EQ(graph.Up(p).size(), 4u);
  for (size_t e : graph.Up(p)) {
    EXPECT_EQ(arr.face(e).dim, 1);
    // And each such edge leads up to two 2-faces.
    size_t proper_up = 0;
    for (size_t c : graph.Up(e)) {
      if (c != IncidenceGraph::kTop) ++proper_up;
    }
    EXPECT_EQ(proper_up, 2u);
  }
}

TEST(IncidenceGraphTest, DiamondProperty) {
  // A classic face-lattice invariant: for faces F < H with dim(H) =
  // dim(F) + 2 and F in cl(H), there are exactly TWO faces G between them
  // (F < G < H). Holds for arrangements of hyperplanes.
  Arrangement arr =
      Arrangement::Build({H("x = 0"), H("y = 0"), H("x + y = 4")}, 2);
  for (size_t f = 0; f < arr.num_faces(); ++f) {
    for (size_t h = 0; h < arr.num_faces(); ++h) {
      if (arr.face(f).dim + 2 != arr.face(h).dim) continue;
      if (!InClosureOf(arr.face(f).sign, arr.face(h).sign)) continue;
      size_t between = 0;
      for (size_t g = 0; g < arr.num_faces(); ++g) {
        if (arr.face(g).dim != arr.face(f).dim + 1) continue;
        if (arr.Incident(f, g) && arr.Incident(g, h)) ++between;
      }
      EXPECT_EQ(between, 2u) << "F=" << f << " H=" << h;
    }
  }
}

class ArrangementPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ArrangementPropertyTest, RandomArrangementInvariants) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  for (int iter = 0; iter < 6; ++iter) {
    std::vector<Hyperplane> planes;
    for (int i = 0; i < 4; ++i) {
      Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
      if (VecIsZero(c)) c[0] = Rational(1);
      planes.push_back(
          Hyperplane::FromAtom(LinearAtom(c, RelOp::kEq, Rational(coeff(rng)))));
    }
    Arrangement arr = Arrangement::Build(planes, 2);
    // Euler characteristic of the plane.
    auto counts = arr.FaceCountsByDimension();
    EXPECT_EQ(static_cast<int>(counts[0]) - static_cast<int>(counts[1]) +
                  static_cast<int>(counts[2]),
              1);
    // Distinct faces have distinct sign vectors, and witnesses locate home.
    for (size_t f = 0; f < arr.num_faces(); ++f) {
      EXPECT_EQ(arr.LocateFace(arr.face(f).witness), f);
      EXPECT_EQ(PositionVector(arr.planes(), arr.face(f).witness),
                arr.face(f).sign);
    }
    // 0-dimensional faces are always bounded.
    for (const Face& face : arr.faces()) {
      if (face.dim == 0) EXPECT_TRUE(face.bounded);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ArrangementPropertyTest,
                         ::testing::Values(5u, 25u, 125u));

}  // namespace
}  // namespace lcdb
