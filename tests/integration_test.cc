// Cross-cutting integration and property tests: the generic logic
// evaluator, the transitive-closure logics, the geometric baselines and the
// two region decompositions must all tell one consistent story on randomly
// generated databases.

#include <random>

#include <gtest/gtest.h>

#include "capture/encoding.h"
#include "capture/turing_machine.h"
#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/queries.h"
#include "db/geometric_baselines.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

/// A random 1-D database: a union of intervals/points with small bounds.
ConstraintDatabase RandomDb1(uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int> pieces(1, 4);
  std::uniform_int_distribution<int64_t> coord(-6, 6);
  std::uniform_int_distribution<int> kind(0, 3);
  std::vector<Conjunction> disjuncts;
  const int n = pieces(rng);
  for (int i = 0; i < n; ++i) {
    int64_t a = coord(rng), b = coord(rng);
    if (b < a) std::swap(a, b);
    switch (kind(rng)) {
      case 0:  // closed interval
        disjuncts.push_back(
            Conjunction(1, {LinearAtom({Rational(1)}, RelOp::kGe, Rational(a)),
                            LinearAtom({Rational(1)}, RelOp::kLe, Rational(b))}));
        break;
      case 1:  // open interval (may be empty)
        disjuncts.push_back(
            Conjunction(1, {LinearAtom({Rational(1)}, RelOp::kGt, Rational(a)),
                            LinearAtom({Rational(1)}, RelOp::kLt, Rational(b))}));
        break;
      case 2:  // point
        disjuncts.push_back(Conjunction(
            1, {LinearAtom({Rational(1)}, RelOp::kEq, Rational(a))}));
        break;
      default:  // half-open
        disjuncts.push_back(
            Conjunction(1, {LinearAtom({Rational(1)}, RelOp::kGe, Rational(a)),
                            LinearAtom({Rational(1)}, RelOp::kLt,
                                       Rational(b + 1))}));
        break;
    }
  }
  return ConstraintDatabase("S", DnfFormula(1, std::move(disjuncts)), {"x"});
}

class RandomDbTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomDbTest, ConnectivityConsensus) {
  // LFP connectivity == TC connectivity == union-find baseline, on both the
  // literal and region forms, over the arrangement extension.
  ConstraintDatabase db = RandomDb1(GetParam());
  auto ext = MakeArrangementExtension(db);
  const bool baseline = SpatialConnectivityBaseline(*ext);
  auto lfp = EvaluateSentenceText(*ext, RegionConnQueryText());
  auto tc = EvaluateSentenceText(*ext, RegionConnTcQueryText(false));
  auto literal = EvaluateSentenceText(*ext, ConnQueryText(1));
  ASSERT_TRUE(lfp.ok() && tc.ok() && literal.ok());
  EXPECT_EQ(*lfp, baseline) << db.ToString();
  EXPECT_EQ(*tc, baseline) << db.ToString();
  EXPECT_EQ(*literal, baseline) << db.ToString();
}

TEST_P(RandomDbTest, ProjectionAnswersMatchPinnedEmptiness) {
  // The symbolic answer of `exists y (S(x+y...))`-style queries agrees with
  // direct LP-decided membership for sampled x.
  ConstraintDatabase db = RandomDb1(GetParam() * 31 + 5);
  auto ext = MakeArrangementExtension(db);
  auto shifted = EvaluateQueryText(*ext, "exists y . (S(y) & x = y + 2)");
  ASSERT_TRUE(shifted.ok());
  for (int64_t num = -16; num <= 16; ++num) {
    Rational x(num, 2);
    const bool expected = db.Contains({x - Rational(2)});
    EXPECT_EQ(shifted->formula.Satisfies({x}), expected)
        << "x=" << x.ToString() << " db=" << db.ToString();
  }
}

TEST_P(RandomDbTest, RegionsClassifyMembership) {
  // Arrangement faces are homogeneous: sampled points agree with the
  // in-S flag of their face; decomposition regions in S are subsets of S.
  ConstraintDatabase db = RandomDb1(GetParam() * 7 + 1);
  auto arr = MakeArrangementExtension(db);
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> num(-20, 20);
  for (int i = 0; i < 50; ++i) {
    Vec p = {Rational(num(rng), 3)};
    bool in_some_in_s_region = false;
    for (size_t r = 0; r < arr->num_regions(); ++r) {
      if (arr->ContainsPoint(r, p)) {
        EXPECT_EQ(arr->RegionSubsetOfS(r), db.Contains(p));
        in_some_in_s_region |= arr->RegionSubsetOfS(r);
      }
    }
    EXPECT_EQ(in_some_in_s_region, db.Contains(p));
  }
}

TEST_P(RandomDbTest, CaptureAgreesOnRandomDatabases) {
  ConstraintDatabase db = RandomDb1(GetParam() * 13 + 3);
  auto ext = MakeArrangementExtension(db);
  auto direct = EvaluateSentenceText(*ext, "exists x . S(x)");
  ASSERT_TRUE(direct.ok());
  auto run = TuringMachine::SNonEmptyChecker().Run(EncodeDatabase(*ext));
  ASSERT_TRUE(run.halted);
  EXPECT_EQ(run.accepted, *direct) << db.ToString();
}

TEST_P(RandomDbTest, LfpIfpAgreeOnPositiveBodies) {
  ConstraintDatabase db = RandomDb1(GetParam() * 17 + 11);
  auto ext = MakeArrangementExtension(db);
  const std::string lfp = RegionConnQueryText();
  std::string ifp = lfp;
  ifp.replace(ifp.find("[lfp"), 4, "[ifp");
  std::string pfp = lfp;
  pfp.replace(pfp.find("[lfp"), 4, "[pfp");
  auto a = EvaluateSentenceText(*ext, lfp);
  auto b = EvaluateSentenceText(*ext, ifp);
  // PFP of a monotone body also converges to the same set.
  auto c = EvaluateSentenceText(*ext, pfp);
  ASSERT_TRUE(a.ok() && b.ok() && c.ok());
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(*a, *c);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomDbTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(ExtensionConsensusTest, ArrangementAndDecompositionAgree) {
  // Connectivity verdicts agree between the Section 3 and Section 7
  // decompositions on closed databases (where decomposition regions are
  // all inside S).
  struct Case {
    const char* formula;
    bool connected;
  };
  const Case cases[] = {
      {"x >= 0 & x <= 1 & y >= 0 & y <= 1", true},
      {"(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
       "(x >= 2 & x <= 3 & y >= 0 & y <= 1)",
       false},
      {"(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
       "(x >= 1 & x <= 2 & y >= 0 & y <= 1)",
       true},
  };
  for (const Case& c : cases) {
    auto f = ParseDnf(c.formula, {"x", "y"});
    ASSERT_TRUE(f.ok());
    ConstraintDatabase db("S", *f, {"x", "y"});
    for (auto make : {MakeArrangementExtension, MakeDecompositionExtension}) {
      auto ext = make(db);
      auto conn = EvaluateSentenceText(*ext, RegionConnQueryText());
      ASSERT_TRUE(conn.ok()) << c.formula;
      EXPECT_EQ(*conn, c.connected) << c.formula << " on " << ext->kind();
    }
  }
}

TEST(ClosureTest, AnswersAreClosedUnderFurtherQuerying) {
  // Section 2's closure: a query answer is itself a valid representation —
  // feed it back in as a database and query again.
  ConstraintDatabase db = MakeComb(2, /*connected=*/false);
  auto ext = MakeArrangementExtension(db);
  auto shadow = EvaluateQueryText(*ext, "exists y . S(x, y)");
  ASSERT_TRUE(shadow.ok());
  ConstraintDatabase db2("S", shadow->formula, {"x"});
  auto ext2 = MakeArrangementExtension(db2);
  // The shadow of a 2-teeth comb is two disjoint intervals.
  auto conn = EvaluateSentenceText(*ext2, RegionConnQueryText());
  ASSERT_TRUE(conn.ok());
  EXPECT_FALSE(*conn);
  auto count = EvaluateSentenceText(
      *ext2, "exists x . (S(x) & x > 1 & x < 2)");
  ASSERT_TRUE(count.ok());
  EXPECT_FALSE(*count);  // the gap between the teeth
}

TEST(ReachabilityConsensusTest, PointwiseReachability) {
  ConstraintDatabase db = MakeComb(2, /*connected=*/false);
  auto ext = MakeArrangementExtension(db);
  Vec a = {Rational(1, 2), Rational(1, 2)};
  Vec b = {Rational(1, 2), Rational(3, 2)};
  Vec c = {Rational(5, 2), Rational(1, 2)};
  EXPECT_TRUE(RegionReachabilityBaseline(*ext, a, b));
  EXPECT_FALSE(RegionReachabilityBaseline(*ext, a, c));
  // Same via the logic: points pinned with in(...) atoms.
  auto reach = [&](const Vec& from, const Vec& to) {
    std::string q =
        "exists Rx Ry . (in(" + from[0].ToString() + ", " +
        from[1].ToString() + "; Rx) & in(" + to[0].ToString() + ", " +
        to[1].ToString() +
        "; Ry) & [lfp M R R' : (R = R' & subset(R)) | (exists Z . (M(R, Z) & "
        "adj(Z, R') & subset(R')))](Rx, Ry))";
    auto r = EvaluateSentenceText(*ext, q);
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    return r.ok() && *r;
  };
  EXPECT_TRUE(reach(a, b));
  EXPECT_FALSE(reach(a, c));
}

}  // namespace
}  // namespace lcdb
