#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "db/database.h"
#include "db/geometric_baselines.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

ConstraintDatabase MakeDb(const std::string& formula) {
  auto f = ParseDnf(formula, kXY);
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, kXY);
}

TEST(DatabaseTest, BasicAccessors) {
  ConstraintDatabase db = MakeDb("x >= 0 & y >= 0 & x + y <= 4");
  EXPECT_EQ(db.relation_name(), "S");
  EXPECT_EQ(db.arity(), 2u);
  EXPECT_TRUE(db.Contains(V({1, 1})));
  EXPECT_FALSE(db.Contains(V({4, 4})));
  EXPECT_GT(db.Size(), 0u);
  EXPECT_NE(db.ToString().find("S(x, y)"), std::string::npos);
}

TEST(DatabaseIoTest, RoundTrip) {
  ConstraintDatabase db = MakeDb("(x >= 0 & y >= 0 & x + y <= 4) | x = y");
  std::string text = SaveDatabaseToString(db);
  auto loaded = LoadDatabaseFromString(text);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->relation_name(), "S");
  EXPECT_EQ(loaded->arity(), 2u);
  for (int64_t x = -2; x <= 5; ++x) {
    for (int64_t y = -2; y <= 5; ++y) {
      EXPECT_EQ(loaded->Contains(V({x, y})), db.Contains(V({x, y})));
    }
  }
}

TEST(DatabaseIoTest, ParsesMultilineFormula) {
  auto loaded = LoadDatabaseFromString(
      "# a comment\n"
      "relation R(u, v)\n"
      "formula u >= 0 &\n"
      "  v >= 0\n");
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->relation_name(), "R");
  EXPECT_TRUE(loaded->Contains(V({1, 1})));
  EXPECT_FALSE(loaded->Contains(V({-1, 1})));
}

TEST(DatabaseIoTest, Errors) {
  EXPECT_FALSE(LoadDatabaseFromString("").ok());
  EXPECT_FALSE(LoadDatabaseFromString("formula x > 0").ok());
  EXPECT_FALSE(LoadDatabaseFromString("relation S(x)\n").ok());
  EXPECT_FALSE(LoadDatabaseFromString("relation S\nformula x > 0").ok());
  EXPECT_FALSE(LoadDatabaseFromString("relation S(x)\nformula y > 0").ok());
  EXPECT_FALSE(LoadDatabaseFromString("junk\n").ok());
  EXPECT_FALSE(LoadDatabaseFromFile("/nonexistent/path.lcdb").ok());
}

TEST(RegionExtensionTest, ArrangementBasics) {
  // Triangle: 19 faces, those inside the triangle are in S.
  ConstraintDatabase db = MakeDb("x >= 0 & y >= 0 & x + y <= 4");
  auto ext = MakeArrangementExtension(db);
  EXPECT_EQ(ext->kind(), "arrangement");
  EXPECT_EQ(ext->num_regions(), 19u);
  size_t in_s = 0;
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    EXPECT_EQ(ext->RegionSubsetOfS(r), ext->RegionIntersectsS(r));
    if (ext->RegionSubsetOfS(r)) ++in_s;
    // Witness is inside the region and satisfies its formula.
    Vec w = ext->RegionWitness(r);
    EXPECT_TRUE(ext->ContainsPoint(r, w));
    EXPECT_TRUE(ext->RegionFormula(r).Satisfies(w));
  }
  // Closed triangle: 1 open cell + 3 open edges + 3 vertices are in S.
  EXPECT_EQ(in_s, 7u);
  // The three triangle corners are the 0-dimensional regions, lex sorted.
  ASSERT_EQ(ext->ZeroDimRegions().size(), 3u);
  EXPECT_EQ(ext->ZeroDimPoint(ext->ZeroDimRegions()[0]), V({0, 0}));
  EXPECT_EQ(ext->ZeroDimPoint(ext->ZeroDimRegions()[1]), V({0, 4}));
  EXPECT_EQ(ext->ZeroDimPoint(ext->ZeroDimRegions()[2]), V({4, 0}));
  EXPECT_EQ(ext->ZeroDimRank(ext->ZeroDimRegions()[2]), 2u);
}

TEST(RegionExtensionTest, DecompositionBasics) {
  ConstraintDatabase db = MakeDb("x >= 0 & y >= 0 & x + y <= 4");
  auto ext = MakeDecompositionExtension(db);
  EXPECT_EQ(ext->kind(), "decomposition");
  EXPECT_GT(ext->num_regions(), 0u);
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    Vec w = ext->RegionWitness(r);
    EXPECT_TRUE(ext->ContainsPoint(r, w));
    EXPECT_TRUE(ext->RegionFormula(r).Satisfies(w));
    // For a closed polytope every region is inside S.
    EXPECT_TRUE(ext->RegionSubsetOfS(r));
    EXPECT_TRUE(ext->RegionIntersectsS(r));
    EXPECT_TRUE(ext->RegionBounded(r));
  }
  EXPECT_EQ(ext->ZeroDimRegions().size(), 3u);
}

TEST(RegionExtensionTest, DecompositionSubsetVsIntersects) {
  // Open square: outer regions lie on the boundary — they intersect the
  // closure but are NOT subsets of the open S.
  ConstraintDatabase db = MakeDb("x > 0 & x < 1 & y > 0 & y < 1");
  auto ext = MakeDecompositionExtension(db);
  bool saw_boundary_region = false;
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    if (!ext->RegionSubsetOfS(r)) {
      saw_boundary_region = true;
      EXPECT_FALSE(ext->RegionIntersectsS(r));  // boundary misses open S
    }
  }
  EXPECT_TRUE(saw_boundary_region);
}

TEST(RegionExtensionTest, AdjacencySymmetricIrreflexive) {
  ConstraintDatabase db = MakeDb("x >= 0 & y >= 0 & x + y <= 4");
  for (auto make : {MakeArrangementExtension, MakeDecompositionExtension}) {
    auto ext = make(db);
    for (size_t a = 0; a < ext->num_regions(); ++a) {
      EXPECT_FALSE(ext->Adjacent(a, a));
      for (size_t b = a + 1; b < ext->num_regions(); ++b) {
        EXPECT_EQ(ext->Adjacent(a, b), ext->Adjacent(b, a));
      }
    }
  }
}

TEST(BaselineTest, CombConnectivity) {
  for (size_t teeth : {1u, 2u, 3u}) {
    ConstraintDatabase connected = MakeComb(teeth, /*connected=*/true);
    ConstraintDatabase split = MakeComb(teeth, /*connected=*/false);
    auto ext_c = MakeArrangementExtension(connected);
    auto ext_s = MakeArrangementExtension(split);
    EXPECT_TRUE(SpatialConnectivityBaseline(*ext_c)) << teeth;
    EXPECT_EQ(SpatialConnectivityBaseline(*ext_s), teeth == 1) << teeth;
    EXPECT_EQ(CountComponentsBaseline(*ext_s), teeth);
  }
}

TEST(BaselineTest, StaircaseIsConnectedThroughCorners) {
  ConstraintDatabase db = MakeStaircase(3);
  auto ext = MakeArrangementExtension(db);
  EXPECT_TRUE(SpatialConnectivityBaseline(*ext));
  EXPECT_EQ(CountComponentsBaseline(*ext), 1u);
}

TEST(BaselineTest, BoxGridComponents) {
  ConstraintDatabase db = MakeBoxGrid(2);
  auto ext = MakeArrangementExtension(db);
  EXPECT_EQ(CountComponentsBaseline(*ext), 4u);
  EXPECT_FALSE(SpatialConnectivityBaseline(*ext));
}

TEST(BaselineTest, Reachability) {
  ConstraintDatabase db = MakeComb(2, /*connected=*/false);
  auto ext = MakeArrangementExtension(db);
  // Inside the same bar: reachable.
  Vec a = {Rational(1, 2), Rational(1, 2)};
  Vec b = {Rational(1, 2), Rational(3, 2)};
  EXPECT_TRUE(RegionReachabilityBaseline(*ext, a, b));
  // Different bars: not reachable.
  Vec c = {Rational(5, 2), Rational(1, 2)};
  EXPECT_FALSE(RegionReachabilityBaseline(*ext, a, c));
  // Point outside S: not reachable.
  Vec outside = {Rational(-5), Rational(0)};
  EXPECT_FALSE(RegionReachabilityBaseline(*ext, a, outside));
}

TEST(BaselineTest, UnionFind) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumClasses(), 5u);
  uf.Union(0, 1);
  uf.Union(3, 4);
  EXPECT_EQ(uf.NumClasses(), 3u);
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  uf.Union(1, 0);  // no-op
  EXPECT_EQ(uf.NumClasses(), 3u);
}

TEST(WorkloadTest, RandomHyperplanesDeterministicAndDistinct) {
  auto a = RandomHyperplanes(8, 2, 5, 42);
  auto b = RandomHyperplanes(8, 2, 5, 42);
  ASSERT_EQ(a.size(), 8u);
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]);
    for (size_t j = i + 1; j < a.size(); ++j) EXPECT_FALSE(a[i] == a[j]);
  }
}

TEST(WorkloadTest, RandomSlabs) {
  ConstraintDatabase db = MakeRandomSlabs(5, 2, 4, 7);
  EXPECT_EQ(db.representation().disjuncts().size(), 5u);
  EXPECT_EQ(db.arity(), 2u);
}

TEST(WorkloadTest, RiverScenarioLayers) {
  ConstraintDatabase db = MakeRiverScenario(4, {1, 3}, {1}, {3});
  EXPECT_EQ(db.arity(), 2u);
  // River points at layer 1.
  EXPECT_TRUE(db.Contains({Rational(1, 2), Rational(1)}));
  EXPECT_TRUE(db.Contains({Rational(7, 2), Rational(1)}));
  EXPECT_FALSE(db.Contains({Rational(9, 2), Rational(1)}));
  // Spring at layer 2 over [0, 1].
  EXPECT_TRUE(db.Contains({Rational(1, 2), Rational(2)}));
  EXPECT_FALSE(db.Contains({Rational(3, 2), Rational(2)}));
  // City markers at layer 3.
  EXPECT_TRUE(db.Contains({Rational(3, 2), Rational(3)}));
  EXPECT_FALSE(db.Contains({Rational(1, 2), Rational(3)}));
  // Chemicals at layers 4 and 5.
  EXPECT_TRUE(db.Contains({Rational(3, 2), Rational(4)}));
  EXPECT_TRUE(db.Contains({Rational(7, 2), Rational(5)}));
  EXPECT_FALSE(db.Contains({Rational(7, 2), Rational(4)}));
}

}  // namespace
}  // namespace lcdb
