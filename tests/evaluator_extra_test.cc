// Additional evaluator coverage: nested fixed points, TC over tuple width
// m = 2, the meets() predicate on the overlapping decomposition, iff/implies
// in symbolic contexts, and operator interplay (hull under quantifiers, TC
// of an LFP-guarded step relation).

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

ConstraintDatabase Db1(const std::string& formula) {
  auto f = ParseDnf(formula, {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

bool Sentence(const RegionExtension& ext, const std::string& text) {
  auto r = EvaluateSentenceText(ext, text);
  EXPECT_TRUE(r.ok()) << r.status().ToString() << " for " << text;
  return r.ok() && *r;
}

TEST(EvaluatorExtraTest, NestedFixedPoints) {
  // Inner LFP: reachability within S. Outer LFP over single regions: the
  // set of regions reachable from some 0-dimensional region of S — nested
  // fixed points with distinct set variables.
  ConstraintDatabase db = Db1("(x >= 0 & x <= 1) | (x >= 3 & x <= 4)");
  auto ext = MakeArrangementExtension(db);
  const std::string nested =
      "exists A . (dim(A) = 1 & subset(A) & "
      "[lfp N R : (dim(R) = 0 & subset(R)) | "
      " (exists Z . (N(Z) & adj(Z, R) & subset(R) & "
      "  [lfp M P P' : (P = P' & subset(P)) | (exists W . (M(P, W) & "
      "adj(W, P') & subset(P')))](Z, R)))](A))";
  EXPECT_TRUE(Sentence(*ext, nested));
}

TEST(EvaluatorExtraTest, TransitiveClosureOverPairs) {
  // TC with m = 2: step relation on *pairs* of regions that moves both
  // components along adjacency simultaneously; reachability of (B1,B2)
  // from (A1,A2) then requires component-wise connectivity.
  ConstraintDatabase db = Db1("x >= 0 & x <= 2");
  auto ext = MakeArrangementExtension(db);
  const std::string tc2 =
      "forall A1 A2 B1 B2 . (subset(A1) & subset(A2) & subset(B1) & "
      "subset(B2) -> "
      "[tc R1, R2 ; Q1, Q2 : subset(Q1) & subset(Q2) & "
      "(adj(R1, Q1) | R1 = Q1) & (adj(R2, Q2) | R2 = Q2)]"
      "(A1, A2 ; B1, B2))";
  EXPECT_TRUE(Sentence(*ext, tc2));
  // Disconnect the database: pairs across components become unreachable.
  ConstraintDatabase split = Db1("(x >= 0 & x <= 1) | (x >= 3 & x <= 4)");
  auto ext2 = MakeArrangementExtension(split);
  EXPECT_FALSE(Sentence(*ext2, tc2));
}

TEST(EvaluatorExtraTest, MeetsOnOverlappingDecomposition) {
  // On the Section 7 decomposition of an open set, boundary regions meet
  // the closure but not S; meets() distinguishes them from subset().
  auto f = ParseDnf("x > 0 & x < 2", {"x"});
  ASSERT_TRUE(f.ok());
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeDecompositionExtension(db);
  EXPECT_TRUE(Sentence(*ext, "exists R . (meets(R) & subset(R))"));
  EXPECT_TRUE(Sentence(*ext, "exists R . (!(meets(R)) & !(subset(R)))"));
  // subset implies meets for nonempty regions.
  EXPECT_TRUE(Sentence(*ext, "forall R . (subset(R) -> meets(R))"));
}

TEST(EvaluatorExtraTest, IffAndImpliesSymbolic) {
  ConstraintDatabase db = Db1("x >= 0 & x <= 2");
  auto ext = MakeArrangementExtension(db);
  // iff with element variables on both sides.
  auto r = EvaluateQueryText(*ext, "S(x) <-> (x >= 0 & x <= 2)");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->formula.IsSyntacticallyTrue() ||
              AreEquivalent(r->formula, DnfFormula::True(1)));
  auto half = EvaluateQueryText(*ext, "S(x) <-> x >= 1");
  ASSERT_TRUE(half.ok());
  // True exactly where both hold or both fail: [1,2] union complement of
  // [0,2] ∪ [1,inf) ... = [1,2] ∪ (-inf,0).
  auto expected = ParseDnf("(x >= 1 & x <= 2) | x < 0", {"x"});
  EXPECT_TRUE(AreEquivalent(half->formula, *expected));
  // implies.
  auto imp = EvaluateQueryText(*ext, "S(x) -> x >= 1");
  ASSERT_TRUE(imp.ok());
  auto expected2 = ParseDnf("x < 0 | x > 2 | x >= 1", {"x"});
  EXPECT_TRUE(AreEquivalent(imp->formula, *expected2));
}

TEST(EvaluatorExtraTest, HullUnderQuantifiers) {
  // The hull operator under an element quantifier: is there a point whose
  // hull-membership certificate lies strictly inside?
  ConstraintDatabase db = Db1("x = 0 | x = 4");
  auto ext = MakeArrangementExtension(db);
  EXPECT_TRUE(Sentence(
      *ext, "exists y . ([hull u : S(u)](y) & y > 1 & y < 3)"));
  EXPECT_FALSE(Sentence(*ext, "exists y . ([hull u : S(u)](y) & y > 5)"));
  // Universal form: everything in the hull is within the bounding range.
  EXPECT_TRUE(Sentence(
      *ext, "forall y . ([hull u : S(u)](y) -> (y >= 0 & y <= 4))"));
}

TEST(EvaluatorExtraTest, RegionParameterizedHull) {
  // Hull body referring to a region parameter: the hull of one region.
  ConstraintDatabase db = Db1("(x > 0 & x < 1) | x = 3");
  auto ext = MakeArrangementExtension(db);
  // For the open-interval region, the hull adds its endpoints.
  EXPECT_TRUE(Sentence(
      *ext,
      "exists R . (subset(R) & dim(R) = 1 & [hull u : in(u; R)](0) & "
      "[hull u : in(u; R)](1) & [hull u : in(u; R)](1/2))"));
  EXPECT_FALSE(Sentence(
      *ext, "exists R . (subset(R) & [hull u : in(u; R)](7))"));
}

TEST(EvaluatorExtraTest, DimAtomNegativeCases) {
  ConstraintDatabase db = Db1("x = 0");
  auto ext = MakeArrangementExtension(db);
  EXPECT_FALSE(Sentence(*ext, "exists R . dim(R) = 2"));  // 1-D database
  EXPECT_TRUE(Sentence(*ext, "exists R . dim(R) = 1"));
  EXPECT_TRUE(Sentence(*ext, "exists R . dim(R) = 0"));
}

TEST(EvaluatorExtraTest, CombTcPairAgreesWithConnectivity) {
  for (bool connected : {true, false}) {
    ConstraintDatabase db = MakeComb(2, connected);
    auto ext = MakeArrangementExtension(db);
    // TC of the adjacency step guarded by an LFP membership: operators
    // compose (the TC body may not use set variables per Def. 7.2, so the
    // guard is a nested *closed* LFP application).
    const std::string q =
        "forall A B . (subset(A) & subset(B) -> "
        "[tc R ; Q : subset(R) & subset(Q) & adj(R, Q) & "
        "[lfp M P P' : (P = P' & subset(P)) | (exists W . (M(P, W) & "
        "adj(W, P') & subset(P')))](R, Q)](A ; B))";
    auto r = EvaluateSentenceText(*ext, q);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(*r, connected);
  }
}

TEST(EvaluatorExtraTest, EmptyRegionSortQuantifiers) {
  // A database whose arrangement is just R^1 (no atoms => one region, not
  // in S). Quantifiers behave sanely.
  ConstraintDatabase db("S", DnfFormula::False(1), {"x"});
  auto ext = MakeArrangementExtension(db);
  EXPECT_EQ(ext->num_regions(), 1u);
  EXPECT_FALSE(Sentence(*ext, "exists R . subset(R)"));
  EXPECT_TRUE(Sentence(*ext, "forall R . !(subset(R))"));
  EXPECT_TRUE(Sentence(*ext, "exists R . dim(R) = 1"));
}

}  // namespace
}  // namespace lcdb
