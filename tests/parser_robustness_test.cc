// Robustness of the two text parsers: malformed, truncated and shuffled
// inputs must produce ParseError statuses — never crashes — and valid
// inputs survive mutation-based round trips.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "core/parser.h"
#include "db/io.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};

TEST(ParserRobustnessTest, TruncationsNeverCrash) {
  const std::string query =
      "forall x1 x2 y1 y2 . (S(x1, x2) & S(y1, y2) -> exists Rx Ry . ("
      "in(x1, x2; Rx) & in(y1, y2; Ry) & [lfp M R R' : (R = R' & subset(R)) "
      "| (exists Z . (M(R, Z) & adj(Z, R') & subset(R')))](Rx, Ry)))";
  for (size_t cut = 0; cut <= query.size(); ++cut) {
    auto r = ParseQuery(query.substr(0, cut), "S");
    if (cut == query.size()) {
      EXPECT_TRUE(r.ok());
    }
    // Every prefix either parses or reports a ParseError; no other outcome.
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << cut;
    }
  }
}

TEST(ParserRobustnessTest, RandomCharacterMutationsNeverCrash) {
  const std::string base = "(x >= 0 & y >= 0 & x + y <= 4) | x = y";
  const char kNoise[] = "()[]<>=!&|+-*/;:,.xyzRS0123456789 ";
  std::mt19937_64 rng(321);
  std::uniform_int_distribution<size_t> pos(0, base.size() - 1);
  std::uniform_int_distribution<size_t> noise(0, sizeof(kNoise) - 2);
  for (int iter = 0; iter < 300; ++iter) {
    std::string mutated = base;
    for (int hits = 0; hits < 3; ++hits) {
      mutated[pos(rng)] = kNoise[noise(rng)];
    }
    auto formula = ParseDnf(mutated, kXY);
    auto query = ParseQuery(mutated, "S");
    if (!formula.ok()) {
      EXPECT_EQ(formula.status().code(), StatusCode::kParseError);
    }
    // Queries that parse must also print and reparse.
    if (query.ok()) {
      auto again = ParseQuery((*query)->ToString(), "S");
      EXPECT_TRUE(again.ok()) << mutated << " => " << (*query)->ToString();
    }
  }
}

TEST(ParserRobustnessTest, RandomTokenSoupNeverCrashes) {
  const char* kTokens[] = {"exists", "forall", "lfp",  "[",  "]", "(", ")",
                           "x",      "R",      "M",    "&",  "|", "!", "<",
                           "=",      "+",      "1",    "/",  ";", ":", ".",
                           "in",     "adj",    "hull", "tc", ","};
  std::mt19937_64 rng(654);
  std::uniform_int_distribution<size_t> pick(0, std::size(kTokens) - 1);
  std::uniform_int_distribution<int> len(1, 25);
  for (int iter = 0; iter < 400; ++iter) {
    std::string soup;
    const int n = len(rng);
    for (int i = 0; i < n; ++i) {
      soup += kTokens[pick(rng)];
      soup += " ";
    }
    auto r = ParseQuery(soup, "S");
    if (!r.ok()) {
      EXPECT_EQ(r.status().code(), StatusCode::kParseError) << soup;
    }
  }
}

TEST(ParserRobustnessTest, DatabaseFilesMalformed) {
  const char* kBad[] = {
      "relation S(x)\nformula x < ",
      "relation S(x\nformula x < 1",
      "relation (x)\nformula x < 1",
      "relation S()\nformula x < 1",
      "relation S(x) extra\nformula x < 1",
      "formula x < 1\nrelation S(x)",
      "relation S(x)\nrelation T(y)\nformula x < 1",
  };
  for (const char* text : kBad) {
    auto r = LoadDatabaseFromString(text);
    EXPECT_FALSE(r.ok()) << text;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError) << text;
  }
  // The duplicate-relation case: last header wins or error — either way no
  // crash; currently the second header replaces... verify defined error.
}

TEST(ParserRobustnessTest, DeeplyNestedParensParse) {
  std::string deep = "x < 1";
  for (int i = 0; i < 200; ++i) deep = "(" + deep + ")";
  auto f = ParseDnf(deep, kXY);
  ASSERT_TRUE(f.ok());
  auto q = ParseQuery(deep, "S");
  EXPECT_TRUE(q.ok());
  std::string unbalanced = "(" + deep;
  EXPECT_FALSE(ParseDnf(unbalanced, kXY).ok());
  EXPECT_FALSE(ParseQuery(unbalanced, "S").ok());
}

TEST(ParserRobustnessTest, HugeNumbersParseExactly) {
  const std::string big =
      "x <= 123456789012345678901234567890123456789/"
      "98765432109876543210987654321";
  auto f = ParseDnf(big, kXY);
  ASSERT_TRUE(f.ok());
  // Exactness: the atom survives the round trip unchanged semantically.
  auto again = ParseDnf(f->ToString(kXY), kXY);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(f->ToString(kXY), again->ToString(kXY));
}

}  // namespace
}  // namespace lcdb
