// QuerySession (engine/session.h): failure taxonomy, the deterministic
// degradation ladder, bounded retries with budget escalation and
// checkpoint/resume, the quarantine list, and the session.* metrics export.
// Failpoints are *persistent* — once past skip_hits they fire on every
// subsequent hit until disarmed — so an armed internal fault drives the
// ladder all the way down, which is exactly what the ladder-order test
// wants.

#include <gtest/gtest.h>

#include <string>

#include "core/evaluator.h"
#include "core/queries.h"
#include "db/workloads.h"
#include "engine/governor.h"
#include "engine/session.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailpoints(); }
};

TEST_F(SessionTest, ClassifyFailure) {
  EXPECT_EQ(ClassifyFailure(Status::Ok()), FailureClass::kNone);
  EXPECT_EQ(ClassifyFailure(Status::ParseError("x")), FailureClass::kInvalid);
  EXPECT_EQ(ClassifyFailure(Status::InvalidArgument("x")),
            FailureClass::kInvalid);
  EXPECT_EQ(ClassifyFailure(Status::ResourceExhausted("x")),
            FailureClass::kResource);
  EXPECT_EQ(ClassifyFailure(Status::DeadlineExceeded("x")),
            FailureClass::kResource);
  EXPECT_EQ(ClassifyFailure(Status::Cancelled("x")), FailureClass::kCancelled);
  EXPECT_EQ(ClassifyFailure(Status::Internal("x")), FailureClass::kFault);
  EXPECT_EQ(ClassifyFailure(Status::Unsupported("x")), FailureClass::kFault);
}

TEST_F(SessionTest, SuccessfulQueryPassesThrough) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QuerySession session(*ext);
  auto truth = session.EvaluateSentence(RegionConnQueryText());
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  EXPECT_TRUE(*truth);
  EXPECT_EQ(session.stats().queries, 1u);
  EXPECT_EQ(session.stats().successes, 1u);
  EXPECT_EQ(session.stats().attempts, 1u);
  EXPECT_EQ(session.stats().retries, 0u);
}

TEST_F(SessionTest, InvalidQueriesNeverRetry) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QuerySession session(*ext);
  // Parse error: rejected before any attempt runs.
  auto parse = session.Evaluate("exists . (");
  ASSERT_FALSE(parse.ok());
  EXPECT_EQ(session.stats().invalid, 1u);
  EXPECT_EQ(session.stats().attempts, 0u);
  // Type error: one attempt, classified invalid, no retries.
  auto type = session.Evaluate("S(x)");  // arity mismatch (db arity 2)
  ASSERT_FALSE(type.ok());
  EXPECT_EQ(session.stats().invalid, 2u);
  EXPECT_EQ(session.stats().attempts, 1u);
  EXPECT_EQ(session.stats().retries, 0u);
  // Invalid inputs never count toward quarantine.
  EXPECT_FALSE(session.IsQuarantined("S(x)"));
}

TEST_F(SessionTest, LadderDropsRungsInOrderOnPersistentFault) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.eval.use_bytecode = true;
  options.trace = true;
  options.max_retries = 10;
  options.quarantine_threshold = 100;
  QuerySession session(*ext, options);
  ArmFailpoint("fixpoint.stage", StatusCode::kInternal, "injected fault");
  auto answer = session.Evaluate(RegionConnQueryText());
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInternal);
  // Every rung dropped, newest machinery first, then nothing left to shed.
  const auto& log = session.degradation_log();
  ASSERT_EQ(log.size(), 4u);
  EXPECT_EQ(log[0].rung, "vm->tree");
  EXPECT_EQ(log[1].rung, "lemma->lru");
  EXPECT_EQ(log[2].rung, "memoize->off");
  EXPECT_EQ(log[3].rung, "trace->off");
  EXPECT_EQ(session.stats().degradations, 4u);
  EXPECT_EQ(session.stats().retries, 4u);
  EXPECT_EQ(session.stats().attempts, 5u);
  EXPECT_EQ(session.stats().failures, 1u);
}

TEST_F(SessionTest, PersistentPlanFaultDegradesThenSessionRecovers) {
  // A persistent fault at the plan-executor entry fails every attempt; the
  // ladder still degrades in order (vm->tree first). Once the fault is
  // disarmed the *same* session serves the query again — a failed call
  // must leave no residue beyond its quarantine streak.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.eval.use_bytecode = true;
  options.quarantine_threshold = 100;
  QuerySession session(*ext, options);
  ArmFailpoint("plan.execute", StatusCode::kInternal, "injected fault");
  auto failed = session.Evaluate(RegionConnQueryText());
  ASSERT_FALSE(failed.ok());
  EXPECT_GE(session.stats().degradations, 1u);
  EXPECT_EQ(session.degradation_log().front().rung, "vm->tree");
  DisarmAllFailpoints();
  // The fault gone, the same session answers again (no quarantine yet).
  auto truth = session.EvaluateSentence(RegionConnQueryText());
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  EXPECT_TRUE(*truth);
}

TEST_F(SessionTest, ResourceRetryEscalatesBudgetsAndResumes) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  // Reference answer, unbudgeted.
  auto reference = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(reference.ok());
  SessionOptions options;
  // A one-iteration budget trips inside the first Kleene loop; escalation
  // (x4 per retry) plus resume (completed stages are never redone) must
  // land the query within a few retries.
  options.limits.max_fixpoint_iterations = 1;
  options.budget_escalation = 4;
  options.max_retries = 6;
  QuerySession session(*ext, options);
  auto truth = session.EvaluateSentence(RegionConnQueryText());
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  EXPECT_EQ(*truth, *reference);
  EXPECT_EQ(session.stats().successes, 1u);
  EXPECT_GT(session.stats().retries, 0u);
  EXPECT_GT(session.stats().budget_escalations, 0u);
  EXPECT_GT(session.stats().resumes, 0u);
}

TEST_F(SessionTest, CancelledNeverRetries) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.max_retries = 5;
  QuerySession session(*ext, options);
  ArmFailpoint("fixpoint.stage", StatusCode::kCancelled, "injected cancel");
  auto answer = session.Evaluate(RegionConnQueryText());
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kCancelled);
  EXPECT_EQ(session.stats().attempts, 1u);
  EXPECT_EQ(session.stats().retries, 0u);
  // A cancel is the caller's choice, not a poisoned query.
  EXPECT_FALSE(session.IsQuarantined(RegionConnQueryText()));
}

TEST_F(SessionTest, QuarantineAfterDeterministicFailures) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.max_retries = 0;
  options.quarantine_threshold = 2;
  QuerySession session(*ext, options);
  const std::string text = RegionConnQueryText();
  ArmFailpoint("fixpoint.stage", StatusCode::kInternal, "injected fault");
  EXPECT_FALSE(session.Evaluate(text).ok());
  EXPECT_FALSE(session.IsQuarantined(text));
  EXPECT_FALSE(session.Evaluate(text).ok());
  EXPECT_TRUE(session.IsQuarantined(text));
  EXPECT_EQ(session.stats().quarantined, 1u);
  // The third call is rejected without running an attempt.
  const uint64_t attempts_before = session.stats().attempts;
  auto rejected = session.Evaluate(text);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(session.stats().attempts, attempts_before);
  EXPECT_EQ(session.stats().quarantine_rejections, 1u);
  // Lifting the quarantine (and the fault) restores service.
  DisarmAllFailpoints();
  session.ClearQuarantine();
  EXPECT_EQ(session.stats().quarantined, 0u);
  auto truth = session.EvaluateSentence(text);
  ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  // A success resets the failure streak.
  EXPECT_FALSE(session.IsQuarantined(text));
}

TEST_F(SessionTest, SuccessResetsFailureStreak) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.max_retries = 0;
  options.quarantine_threshold = 2;
  QuerySession session(*ext, options);
  const std::string text = RegionConnQueryText();
  ArmFailpoint("fixpoint.stage", StatusCode::kInternal, "injected fault");
  EXPECT_FALSE(session.Evaluate(text).ok());
  DisarmAllFailpoints();
  EXPECT_TRUE(session.Evaluate(text).ok());  // streak back to zero
  ArmFailpoint("fixpoint.stage", StatusCode::kInternal, "injected fault");
  EXPECT_FALSE(session.Evaluate(text).ok());
  // One failure since the success: still below the threshold of 2.
  EXPECT_FALSE(session.IsQuarantined(text));
}

TEST_F(SessionTest, MetricsExportMergesSessionAndEvaluatorFamilies) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QuerySession session(*ext);
  ASSERT_TRUE(session.Evaluate(RegionConnQueryText()).ok());
  MetricsSnapshot snapshot = session.Metrics();
  // The session.* family the issue specifies...
  EXPECT_EQ(snapshot.values.at("session.queries"), 1u);
  EXPECT_EQ(snapshot.values.at("session.successes"), 1u);
  EXPECT_EQ(snapshot.values.at("session.retries"), 0u);
  EXPECT_EQ(snapshot.values.at("session.resumes"), 0u);
  EXPECT_EQ(snapshot.values.at("session.degradations"), 0u);
  EXPECT_EQ(snapshot.values.at("session.quarantined"), 0u);
  // ...merged over the wrapped evaluator's families in one namespace.
  EXPECT_GT(snapshot.values.at("evaluator.node_evaluations"), 0u);
  EXPECT_GT(snapshot.values.at("evaluator.fixpoint_iterations"), 0u);
  // The kernel family is present even when this region-only query needs no
  // feasibility decision at evaluation time (adjacency is precomputed).
  EXPECT_EQ(snapshot.values.count("kernel.feasibility_queries"), 1u);
  EXPECT_EQ(snapshot.labels.at("session.last_failure_class"), "none");
  const std::string json = snapshot.ToJson();
  EXPECT_NE(json.find("\"session.queries\":1"), std::string::npos);
}

TEST_F(SessionTest, MetricsSnapshotMerge) {
  MetricsSnapshot a;
  a.values["x"] = 2;
  a.labels["l"] = "old";
  MetricsSnapshot b;
  b.values["x"] = 3;
  b.values["y"] = 1;
  b.labels["l"] = "new";
  b.histograms["h"].buckets = {1, 2};
  b.histograms["h"].count = 3;
  b.histograms["h"].sum = 5;
  a.Merge(b);
  EXPECT_EQ(a.values["x"], 5u);
  EXPECT_EQ(a.values["y"], 1u);
  EXPECT_EQ(a.labels["l"], "new");
  EXPECT_EQ(a.histograms["h"].count, 3u);
  a.Merge(b);
  EXPECT_EQ(a.histograms["h"].buckets[1], 4u);
}

TEST_F(SessionTest, SetLimitsAppliesToSubsequentQueries) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  SessionOptions options;
  options.max_retries = 0;
  options.quarantine_threshold = 100;
  QuerySession session(*ext, options);
  ASSERT_TRUE(session.Evaluate(RegionConnQueryText()).ok());
  GovernorLimits strangled;
  strangled.max_fixpoint_iterations = 0;  // trips on the first Kleene stage
  session.set_limits(strangled);
  auto starved = session.Evaluate(RegionConnQueryText());
  ASSERT_FALSE(starved.ok());
  EXPECT_TRUE(starved.status().IsResourceFailure());
  session.set_limits(GovernorLimits{});
  EXPECT_TRUE(session.Evaluate(RegionConnQueryText()).ok());
}

}  // namespace
}  // namespace lcdb
