// Static query analyzer tests: one triggering query and one near-miss per
// LCDB diagnostic code, the caret/JSON renderers, span threading from the
// parser, the Evaluate integration (clean kInvalidArgument with carets),
// the analysis.* metrics family, and a corpus sweep asserting that every
// query the test suite actually evaluates is analyzer-error-free.
// LCDB_TEST_DATA_DIR / LCDB_TEST_SOURCE_DIR are injected by CMake.

#include <gtest/gtest.h>

#include <algorithm>
#include <fstream>
#include <string>
#include <tuple>
#include <vector>

#include "analysis/analyzer.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "core/typecheck.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

#ifndef LCDB_TEST_DATA_DIR
#define LCDB_TEST_DATA_DIR "data"
#endif
#ifndef LCDB_TEST_SOURCE_DIR
#define LCDB_TEST_SOURCE_DIR "."
#endif

// Arity-1 database (relation "S") for element-variable queries.
const ConstraintDatabase& Db1() {
  static const ConstraintDatabase db = *LoadDatabaseFromString(
      "relation S(x)\nformula (x > 0 & x < 1) | x = 5");
  return db;
}

// Arity-2 database (relation "S") for region-heavy queries.
const ConstraintDatabase& Db2() {
  static const ConstraintDatabase db = MakeComb(1, true);
  return db;
}

// Parses, typechecks and analyzes; any front-end failure is a test failure.
AnalysisResult Analyze(const std::string& text, const ConstraintDatabase& db,
                       const AnalyzerOptions& options = {}) {
  auto query = ParseQuery(text, db.relation_name());
  EXPECT_TRUE(query.ok()) << text << "\n" << query.status().ToString();
  if (!query.ok()) return {};
  auto info = TypeCheck(**query, db);
  EXPECT_TRUE(info.ok()) << text << "\n" << info.status().ToString();
  if (!info.ok()) return {};
  return AnalyzeQuery(**query, *info, options);
}

const Diagnostic* Find(const AnalysisResult& result, const std::string& code) {
  for (const Diagnostic& d : result.diagnostics) {
    if (d.code == code) return &d;
  }
  return nullptr;
}

bool HasCode(const AnalysisResult& result, const std::string& code) {
  return Find(result, code) != nullptr;
}

// ---------------------------------------------------------------------------
// LCDB001 — LFP positivity (error).

TEST(AnalyzerTest, Lcdb001NegatedLfpVariableIsAnError) {
  const std::string text = "exists A . [lfp M R : !(M(R))](A)";
  AnalysisResult result = Analyze(text, Db2());
  ASSERT_TRUE(HasCode(result, "LCDB001")) << RenderDiagnostics(
      result.diagnostics, text);
  EXPECT_TRUE(result.has_errors());
  const Diagnostic* d = Find(result, "LCDB001");
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  // The span points at the offending set atom, not the whole query.
  ASSERT_TRUE(d->span.valid());
  EXPECT_EQ(text.substr(d->span.begin, d->span.end - d->span.begin), "M(R)");
  EXPECT_NE(d->fix.find("even number of negations"), std::string::npos);
}

TEST(AnalyzerTest, Lcdb001DoubleNegationIsPositive) {
  // Two negations cancel: the body is positive in M (Definition 5.1).
  AnalysisResult result =
      Analyze("exists A . [lfp M R : !(!(M(R)))](A)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB001"));
  EXPECT_FALSE(result.has_errors());
}

TEST(AnalyzerTest, Lcdb001ImplicationLhsIsNegative) {
  AnalysisResult result =
      Analyze("exists A . [lfp M R : (M(R) -> subset(R))](A)", Db2());
  EXPECT_TRUE(HasCode(result, "LCDB001"));
}

// ---------------------------------------------------------------------------
// LCDB002 — IFP/PFP non-positivity (note only; their semantics don't need
// monotonicity).

TEST(AnalyzerTest, Lcdb002NonPositivePfpIsANote) {
  AnalysisResult result =
      Analyze("exists A . [pfp M R : !(M(R))](A)", Db2());
  const Diagnostic* d = Find(result, "LCDB002");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kNote);
  EXPECT_FALSE(result.has_errors());
  EXPECT_FALSE(HasCode(result, "LCDB001"));
}

TEST(AnalyzerTest, Lcdb002PositiveIfpIsClean) {
  AnalysisResult result =
      Analyze("exists A . [ifp M R : M(R) | subset(R)](A)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB002"));
}

// ---------------------------------------------------------------------------
// LCDB003 — range restriction of free element variables (error).

TEST(AnalyzerTest, Lcdb003PurelyNegativeFreeVariableIsAnError) {
  AnalysisResult result = Analyze("!(S(x, x))", Db2());
  const Diagnostic* d = Find(result, "LCDB003");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
  EXPECT_NE(d->message.find("'x'"), std::string::npos);
}

TEST(AnalyzerTest, Lcdb003PositiveOccurrenceSatisfiesIt) {
  AnalysisResult result = Analyze("x < 2 & !(S(x, x))", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB003"));
}

TEST(AnalyzerTest, Lcdb003IffCountsAsBothPolarities) {
  // p <-> q expands to implications in both directions, so an occurrence
  // under <-> can be taken positively.
  AnalysisResult result = Analyze("S(x, x) <-> x > 0", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB003"));
}

// ---------------------------------------------------------------------------
// LCDB004 — tuple-space growth (warning past the cap, error on overflow).

TEST(AnalyzerTest, Lcdb004WarnsPastConfiguredCap) {
  AnalyzerOptions options;
  options.num_regions = 100;
  options.max_tuple_space = 10;  // 100^2 = 10000 > 10
  AnalysisResult result =
      Analyze("exists A B . [lfp M R R' : M(R, R')](A, B)", Db2(), options);
  const Diagnostic* d = Find(result, "LCDB004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("10000"), std::string::npos);
  EXPECT_FALSE(result.has_errors());
}

TEST(AnalyzerTest, Lcdb004OverflowIsAnError) {
  AnalyzerOptions options;
  options.num_regions = size_t{1} << 20;  // (2^20)^4 overflows 64 bits
  AnalysisResult result = Analyze(
      "exists A B C D . [lfp M R R' Q Q' : M(R, R', Q, Q')](A, B, C, D)",
      Db2(), options);
  const Diagnostic* d = Find(result, "LCDB004");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kError);
}

TEST(AnalyzerTest, Lcdb004SilentWithoutARegionCount) {
  // Lint without an extension (num_regions = 0) can't bound the space.
  AnalyzerOptions options;
  options.max_tuple_space = 1;
  AnalysisResult result =
      Analyze("exists A B . [lfp M R R' : M(R, R')](A, B)", Db2(), options);
  EXPECT_FALSE(HasCode(result, "LCDB004"));
}

// ---------------------------------------------------------------------------
// LCDB005 — DTC determinism precondition (warning).

TEST(AnalyzerTest, Lcdb005UnpinnedDtcTargetWarns) {
  AnalysisResult result =
      Analyze("exists A B . [dtc R ; R' : adj(R, R')](A ; B)", Db2());
  const Diagnostic* d = Find(result, "LCDB005");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("R'"), std::string::npos);
}

TEST(AnalyzerTest, Lcdb005RegionEqualityPinsTheTarget) {
  AnalysisResult result = Analyze(
      "exists A B . [dtc R ; R' : adj(R, R') & R' = R](A ; B)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB005"));
}

TEST(AnalyzerTest, Lcdb005PlainTcIsExempt) {
  // TC follows every edge by definition; only DTC needs determinism.
  AnalysisResult result =
      Analyze("exists A B . [tc R ; R' : adj(R, R')](A ; B)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB005"));
}

// ---------------------------------------------------------------------------
// LCDB006 / LCDB007 — kernel-backed guard truth (warnings).

TEST(AnalyzerTest, Lcdb006VacuousGuardWarns) {
  const std::string text = "exists x . (S(x) & (x > 2 & x < 1))";
  AnalysisResult result = Analyze(text, Db1());
  const Diagnostic* d = Find(result, "LCDB006");
  ASSERT_NE(d, nullptr) << RenderDiagnostics(result.diagnostics, text);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_EQ(result.stats.guards_proved_unsat, 1u);
}

TEST(AnalyzerTest, Lcdb007TautologicalGuardWarns) {
  AnalysisResult result =
      Analyze("exists x . (S(x) & (x < 1 | x >= 1))", Db1());
  EXPECT_TRUE(HasCode(result, "LCDB007"));
  EXPECT_EQ(result.stats.guards_proved_tautology, 1u);
}

TEST(AnalyzerTest, GuardWithBothOutcomesPossibleIsClean) {
  AnalysisResult result = Analyze("exists x . (S(x) & x > 2)", Db1());
  EXPECT_FALSE(HasCode(result, "LCDB006"));
  EXPECT_FALSE(HasCode(result, "LCDB007"));
  EXPECT_EQ(result.stats.guards_classified, 1u);
}

TEST(AnalyzerTest, GuardClassificationCanBeDisabled) {
  AnalyzerOptions options;
  options.classify_guards = false;
  AnalysisResult result =
      Analyze("exists x . (S(x) & (x > 2 & x < 1))", Db1(), options);
  EXPECT_FALSE(HasCode(result, "LCDB006"));
  EXPECT_EQ(result.stats.guards_classified, 0u);
}

TEST(AnalyzerTest, OversizedGuardsAreSkippedNotSolved) {
  // (The vacuous guard above is no good here: DNF conjunction simplifies
  // it to an empty formula before the size check sees any atoms.)
  AnalyzerOptions options;
  options.guard.max_atoms = 0;
  AnalysisResult result =
      Analyze("exists x . (S(x) & (x < 1 | x >= 1))", Db1(), options);
  EXPECT_FALSE(HasCode(result, "LCDB007"));
  EXPECT_EQ(result.stats.guards_skipped_size, 1u);
  EXPECT_EQ(result.stats.guards_classified, 0u);
}

// ---------------------------------------------------------------------------
// LCDB008 — unused bound variables (warning).

TEST(AnalyzerTest, Lcdb008UnusedElementBinderWarns) {
  AnalysisResult result = Analyze("exists x y . (S(x) & x > 0)", Db1());
  const Diagnostic* d = Find(result, "LCDB008");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
  EXPECT_NE(d->message.find("'y'"), std::string::npos);
}

TEST(AnalyzerTest, Lcdb008UnusedRegionBinderWarns) {
  AnalysisResult result = Analyze("exists A B . subset(A)", Db2());
  const Diagnostic* d = Find(result, "LCDB008");
  ASSERT_NE(d, nullptr);
  EXPECT_NE(d->message.find("'B'"), std::string::npos);
}

TEST(AnalyzerTest, Lcdb008UsedBindersAreClean) {
  AnalysisResult result = Analyze("exists x y . S(x, y)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB008"));
}

// ---------------------------------------------------------------------------
// LCDB009 — fixpoint body independent of its set variable (warning).

TEST(AnalyzerTest, Lcdb009ConstantFixpointBodyWarns) {
  AnalysisResult result =
      Analyze("exists A . [lfp M R : subset(R)](A)", Db2());
  const Diagnostic* d = Find(result, "LCDB009");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kWarning);
}

TEST(AnalyzerTest, Lcdb009BodyUsingTheSetVariableIsClean) {
  AnalysisResult result =
      Analyze("exists A . [lfp M R : M(R) | subset(R)](A)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB009"));
}

// ---------------------------------------------------------------------------
// LCDB010 — TC applied to identical tuples (note).

TEST(AnalyzerTest, Lcdb010ReflexiveTcApplicationIsANote) {
  AnalysisResult result =
      Analyze("exists A . [tc R ; R' : adj(R, R')](A ; A)", Db2());
  const Diagnostic* d = Find(result, "LCDB010");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, DiagSeverity::kNote);
}

TEST(AnalyzerTest, Lcdb010DistinctTuplesAreClean) {
  AnalysisResult result =
      Analyze("exists A B . [tc R ; R' : adj(R, R')](A ; B)", Db2());
  EXPECT_FALSE(HasCode(result, "LCDB010"));
}

// ---------------------------------------------------------------------------
// LCDB900 / LCDB901 — lint front-end wrapping of parse/typecheck failures.

TEST(LintTest, Lcdb900ParseFailure) {
  LintReport report = LintQueryText("not a valid query ((((", Db1());
  EXPECT_FALSE(report.parse_ok);
  EXPECT_TRUE(report.has_errors());
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "LCDB900");
}

TEST(LintTest, Lcdb901TypecheckFailure) {
  LintReport report = LintQueryText("subset(R)", Db1());
  EXPECT_TRUE(report.parse_ok);
  EXPECT_FALSE(report.typecheck_ok);
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].code, "LCDB901");
  EXPECT_NE(report.diagnostics[0].message.find("free region variable"),
            std::string::npos);
}

TEST(LintTest, CleanQueryReportsNothing) {
  LintReport report = LintQueryText("exists x . (S(x) & x > 2)", Db1());
  EXPECT_TRUE(report.parse_ok);
  EXPECT_TRUE(report.typecheck_ok);
  EXPECT_FALSE(report.has_errors());
  EXPECT_TRUE(report.diagnostics.empty());
}

// ---------------------------------------------------------------------------
// Rendering and JSON.

TEST(DiagnosticsTest, CaretRenderingPointsAtTheSpan) {
  const std::string text = "exists A . [lfp M R : !(M(R))](A)";
  AnalysisResult result = Analyze(text, Db2());
  std::string rendered = RenderDiagnostics(result.diagnostics, text);
  EXPECT_NE(rendered.find("error[LCDB001]"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("--> offset"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("^^^^"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find(text), std::string::npos) << rendered;
}

TEST(DiagnosticsTest, JsonShape) {
  const std::string text = "exists A . [lfp M R : !(M(R))](A)";
  AnalysisResult result = Analyze(text, Db2());
  std::string json = DiagnosticsToJson(result.diagnostics);
  EXPECT_EQ(json.front(), '[');
  EXPECT_EQ(json.back(), ']');
  EXPECT_NE(json.find("\"code\":\"LCDB001\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"severity\":\"error\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"begin\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"fix\":"), std::string::npos) << json;
}

TEST(DiagnosticsTest, EmptyListIsAnEmptyJsonArray) {
  EXPECT_EQ(DiagnosticsToJson({}), "[]");
}

// Golden: the exact serialized `--lint=json` object for a deterministic
// LCDB006 lint — key set, key order, span offsets and fix note. Tooling
// parses this stream; any schema change must be deliberate and show up
// here.
TEST(DiagnosticsTest, JsonGoldenKeySet) {
  const std::string text = "exists x . (S(x) & (x > 2 & x < 1))";
  LintReport report = LintQueryText(text, Db1());
  ASSERT_TRUE(report.parse_ok && report.typecheck_ok);
  EXPECT_EQ(
      DiagnosticsToJson(report.diagnostics),
      "[{\"code\":\"LCDB006\",\"severity\":\"warning\",\"message\":"
      "\"subquery is provably unsatisfiable (vacuous)\",\"begin\":20,"
      "\"end\":33,\"fix\":\"this branch contributes nothing; remove it or "
      "fix the bounds\"}]");
}

// --lint output is deduplicated and stable: one diagnostic per distinct
// (code, span, message), identical output on repeated runs, and textually
// identical guards at *different* spans are never over-merged.
TEST(DiagnosticsTest, LintOutputIsStableAndMinimal) {
  const std::string text =
      "exists x . (S(x) & (x > 2 & x < 1) & (x > 2 & x < 1))";
  LintReport first = LintQueryText(text, Db1());
  LintReport second = LintQueryText(text, Db1());
  EXPECT_EQ(DiagnosticsToJson(first.diagnostics),
            DiagnosticsToJson(second.diagnostics));
  std::vector<std::tuple<std::string, size_t, size_t, std::string>> keys;
  size_t vacuous = 0;
  for (const Diagnostic& d : first.diagnostics) {
    keys.emplace_back(d.code, d.span.begin, d.span.end, d.message);
    if (d.code == "LCDB006") ++vacuous;
  }
  std::vector<std::tuple<std::string, size_t, size_t, std::string>> unique =
      keys;
  std::sort(unique.begin(), unique.end());
  unique.erase(std::unique(unique.begin(), unique.end()), unique.end());
  EXPECT_EQ(keys.size(), unique.size())
      << "duplicate diagnostics in: " << DiagnosticsToJson(first.diagnostics);
  // The two guards sit at distinct source spans: both must survive.
  EXPECT_EQ(vacuous, 2u) << DiagnosticsToJson(first.diagnostics);
  EXPECT_EQ(first.stats.warnings,
            static_cast<uint64_t>(first.stats.diagnostics))
      << "stats must be recounted after deduplication";
}

// ---------------------------------------------------------------------------
// Evaluate integration: analyzer errors become clean kInvalidArgument
// statuses with caret-rendered diagnostics, before any engine work.

TEST(AnalyzerIntegrationTest, EvaluateRejectsNonPositiveLfpWithCarets) {
  auto ext = MakeArrangementExtension(Db2());
  auto result =
      EvaluateSentenceText(*ext, "exists A . [lfp M R : !(M(R))](A)");
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  const std::string message = result.status().ToString();
  EXPECT_NE(message.find("LCDB001"), std::string::npos) << message;
  EXPECT_NE(message.find('^'), std::string::npos) << message;
}

TEST(AnalyzerIntegrationTest, WarningsDoNotBlockEvaluation) {
  auto ext = MakeArrangementExtension(Db1());
  // Vacuous guard (LCDB006) is advisory; the query still evaluates.
  auto result =
      EvaluateSentenceText(*ext, "exists x . (S(x) & (x > 2 & x < 1))");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_FALSE(*result);
}

TEST(AnalyzerIntegrationTest, StatsFlowIntoTheMetricsRegistry) {
  auto ext = MakeArrangementExtension(Db1());
  Evaluator evaluator(*ext);
  auto parsed = ParseQuery("exists x . (S(x) & (x > 2 & x < 1))", "S");
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(evaluator.Evaluate(**parsed).ok());
  const auto values = evaluator.stats().ToMetrics().values;
  ASSERT_TRUE(values.count("analysis.queries_analyzed"));
  EXPECT_GE(values.at("analysis.queries_analyzed"), 1u);
  ASSERT_TRUE(values.count("analysis.warnings"));
  EXPECT_GE(values.at("analysis.warnings"), 1u);
  EXPECT_GE(values.at("analysis.guards_proved_unsat"), 1u);
}

// ---------------------------------------------------------------------------
// Corpus sweep: every query the repo actually evaluates must be free of
// analyzer *errors* (warnings and notes are allowed — e.g. the DTC variant
// of the connectivity query legitimately draws LCDB005).

void ExpectNoAnalyzerErrors(const std::string& text,
                            const ConstraintDatabase& db,
                            const std::string& origin) {
  LintReport report = LintQueryText(text, db);
  if (!report.parse_ok || !report.typecheck_ok) return;  // not our corpus
  EXPECT_EQ(report.stats.errors, 0u)
      << origin << ": " << text << "\n"
      << RenderDiagnostics(report.diagnostics, text);
}

TEST(AnalyzerCorpusTest, CannedQueriesOverDataFilesHaveNoErrors) {
  const std::vector<std::string> files = {
      "comb.lcdb", "intervals.lcdb", "pentagon.lcdb", "triangle.lcdb",
      "wedge.lcdb"};
  for (const std::string& name : files) {
    auto db =
        LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) + "/" + name);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    const std::vector<std::string> queries = {
        RegionConnQueryText(),
        RegionConnTcQueryText(false),
        RegionConnTcQueryText(true),
        ConnQueryText(db->arity()),
        RiverPollutionQueryText(),
    };
    for (const std::string& query : queries) {
      ExpectNoAnalyzerErrors(query, *db, name);
    }
  }
}

TEST(AnalyzerCorpusTest, SmokeScriptQueriesHaveNoErrors) {
  // The lcdbsh smoke script's `query`/`explain` lines must evaluate, so
  // none of them may trip an analyzer error. (Its `lint` lines demonstrate
  // errors on purpose and are excluded.) The script's `db` command defines
  // an arity-1 relation S, which is what we lint against.
  std::ifstream smoke(std::string(LCDB_TEST_SOURCE_DIR) +
                      "/tests/lcdbsh_smoke.txt");
  ASSERT_TRUE(smoke.good());
  size_t checked = 0;
  std::string line;
  while (std::getline(smoke, line)) {
    std::string text;
    if (line.rfind("query ", 0) == 0) {
      text = line.substr(6);
    } else if (line.rfind("explain analyze ", 0) == 0) {
      text = line.substr(16);
    } else if (line.rfind("explain ", 0) == 0) {
      text = line.substr(8);
    } else {
      continue;
    }
    LintReport report = LintQueryText(text, Db1());
    if (!report.parse_ok || !report.typecheck_ok) continue;  // pathological
    ++checked;
    EXPECT_EQ(report.stats.errors, 0u)
        << text << "\n" << RenderDiagnostics(report.diagnostics, text);
  }
  EXPECT_GE(checked, 5u);  // the script evaluates at least this many
}

}  // namespace
}  // namespace lcdb
