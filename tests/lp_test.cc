#include <random>

#include <gtest/gtest.h>

#include "lp/feasibility.h"
#include "lp/simplex.h"

namespace lcdb {
namespace {

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

LinearConstraint C(std::initializer_list<int64_t> coeffs, RelOp rel,
                   int64_t rhs) {
  return LinearConstraint(V(coeffs), rel, Rational(rhs));
}

TEST(SimplexTest, SimpleMaximization) {
  // max x + y  s.t.  x <= 3, y <= 4, x + y <= 5, x,y >= 0.
  std::vector<LinearConstraint> cs = {
      C({1, 0}, RelOp::kLe, 3), C({0, 1}, RelOp::kLe, 4),
      C({1, 1}, RelOp::kLe, 5), C({1, 0}, RelOp::kGe, 0),
      C({0, 1}, RelOp::kGe, 0)};
  LpResult r = MaximizeLp(2, cs, V({1, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(5));
  EXPECT_TRUE(cs[2].Satisfies(r.solution));
}

TEST(SimplexTest, FreeVariablesCanGoNegative) {
  // max -x  s.t.  x >= -7   =>  optimum at x = -7.
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kGe, -7)};
  LpResult r = MaximizeLp(1, cs, V({-1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(7));
  EXPECT_EQ(r.solution[0], Rational(-7));
}

TEST(SimplexTest, EqualityConstraints) {
  // max y  s.t.  x + y = 10, x - y = 4  =>  x = 7, y = 3.
  std::vector<LinearConstraint> cs = {C({1, 1}, RelOp::kEq, 10),
                                      C({1, -1}, RelOp::kEq, 4)};
  LpResult r = MaximizeLp(2, cs, V({0, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.solution[0], Rational(7));
  EXPECT_EQ(r.solution[1], Rational(3));
}

TEST(SimplexTest, Infeasible) {
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kLe, 0),
                                      C({1}, RelOp::kGe, 1)};
  EXPECT_EQ(MaximizeLp(1, cs, V({1})).status, LpStatus::kInfeasible);
}

TEST(SimplexTest, Unbounded) {
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kGe, 0)};
  EXPECT_EQ(MaximizeLp(1, cs, V({1})).status, LpStatus::kUnbounded);
}

TEST(SimplexTest, RationalOptimum) {
  // max x  s.t.  3x <= 1  =>  x = 1/3.
  std::vector<LinearConstraint> cs = {C({3}, RelOp::kLe, 1)};
  LpResult r = MaximizeLp(1, cs, V({1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(1, 3));
}

TEST(SimplexTest, DegenerateVertexTerminates) {
  // Many constraints through the same optimum; Bland's rule must not cycle.
  std::vector<LinearConstraint> cs = {
      C({1, 1}, RelOp::kLe, 2),  C({1, -1}, RelOp::kLe, 0),
      C({-1, 1}, RelOp::kLe, 0), C({2, 2}, RelOp::kLe, 4),
      C({1, 0}, RelOp::kLe, 1),  C({0, 1}, RelOp::kLe, 1)};
  LpResult r = MaximizeLp(2, cs, V({1, 1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(2));
}

TEST(SimplexTest, NegativeRhsRequiresPhase1) {
  // x <= -3, x >= -10: optimum of max x is -3.
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kLe, -3),
                                      C({1}, RelOp::kGe, -10)};
  LpResult r = MaximizeLp(1, cs, V({1}));
  ASSERT_EQ(r.status, LpStatus::kOptimal);
  EXPECT_EQ(r.objective, Rational(-3));
}

TEST(FeasibilityTest, StrictSystemFeasible) {
  // 0 < x < 1.
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kGt, 0),
                                      C({1}, RelOp::kLt, 1)};
  FeasibilityResult r = CheckFeasibility(1, cs);
  ASSERT_TRUE(r.feasible);
  EXPECT_GT(r.witness[0], Rational(0));
  EXPECT_LT(r.witness[0], Rational(1));
}

TEST(FeasibilityTest, StrictSystemInfeasibleAtPoint) {
  // x >= 1 and x < 1: only the closure intersects.
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kGe, 1),
                                      C({1}, RelOp::kLt, 1)};
  EXPECT_FALSE(CheckFeasibility(1, cs).feasible);
}

TEST(FeasibilityTest, OpenHalfplaneIntersection) {
  // x + y > 2, x < 0  =>  y > 2 feasible.
  std::vector<LinearConstraint> cs = {C({1, 1}, RelOp::kGt, 2),
                                      C({1, 0}, RelOp::kLt, 0)};
  FeasibilityResult r = CheckFeasibility(2, cs);
  ASSERT_TRUE(r.feasible);
  for (const auto& c : cs) EXPECT_TRUE(c.Satisfies(r.witness));
}

TEST(FeasibilityTest, EqualityPlusStrict) {
  // x = y, x > 3: witness on the diagonal above 3.
  std::vector<LinearConstraint> cs = {C({1, -1}, RelOp::kEq, 0),
                                      C({1, 0}, RelOp::kGt, 3)};
  FeasibilityResult r = CheckFeasibility(2, cs);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.witness[0], r.witness[1]);
  EXPECT_GT(r.witness[0], Rational(3));
}

TEST(FeasibilityTest, PointSystem) {
  std::vector<LinearConstraint> cs = {C({1, 0}, RelOp::kEq, 2),
                                      C({0, 1}, RelOp::kEq, -5)};
  FeasibilityResult r = CheckFeasibility(2, cs);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.witness, V({2, -5}));
}

TEST(FeasibilityTest, DegenerateStrictContradiction) {
  // x < 0 and x > 0.
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kLt, 0),
                                      C({1}, RelOp::kGt, 0)};
  EXPECT_FALSE(CheckFeasibility(1, cs).feasible);
}

TEST(FeasibilityTest, EmptyConstraintListIsFeasible) {
  FeasibilityResult r = CheckFeasibility(3, {});
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.witness.size(), 3u);
}

TEST(BoundednessTest, BoxIsBounded) {
  std::vector<LinearConstraint> cs = {
      C({1, 0}, RelOp::kGe, 0), C({1, 0}, RelOp::kLe, 1),
      C({0, 1}, RelOp::kGe, 0), C({0, 1}, RelOp::kLe, 1)};
  EXPECT_TRUE(IsBoundedSystem(2, cs));
}

TEST(BoundednessTest, HalfplaneIsUnbounded) {
  std::vector<LinearConstraint> cs = {C({1, 0}, RelOp::kGe, 0)};
  EXPECT_FALSE(IsBoundedSystem(2, cs));
}

TEST(BoundednessTest, LineSegmentViaEqualities) {
  // Segment: y = 0, 0 <= x <= 1 in R^2.
  std::vector<LinearConstraint> cs = {C({0, 1}, RelOp::kEq, 0),
                                      C({1, 0}, RelOp::kGe, 0),
                                      C({1, 0}, RelOp::kLe, 1)};
  EXPECT_TRUE(IsBoundedSystem(2, cs));
}

TEST(BoundednessTest, EmptySetIsBounded) {
  std::vector<LinearConstraint> cs = {C({1}, RelOp::kLe, 0),
                                      C({1}, RelOp::kGe, 1)};
  EXPECT_TRUE(IsBoundedSystem(1, cs));
}

TEST(RedundancyTest, ImpliedConstraintDetected) {
  // Within x <= 1, the constraint x <= 5 is implied (negation inconsistent).
  std::vector<LinearConstraint> sys = {C({1}, RelOp::kLe, 1)};
  EXPECT_FALSE(IsConsistentWithNegation(1, sys, C({1}, RelOp::kLe, 5)));
  EXPECT_TRUE(IsConsistentWithNegation(1, sys, C({1}, RelOp::kLe, 0)));
  EXPECT_TRUE(IsConsistentWithNegation(1, sys, C({1}, RelOp::kEq, 0)));
}

class LpPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LpPropertyTest, WitnessSatisfiesAllConstraints) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-5, 5);
  std::uniform_int_distribution<int64_t> rhs(-10, 10);
  std::uniform_int_distribution<int> rel_pick(0, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  int feasible_count = 0;
  for (int iter = 0; iter < 60; ++iter) {
    const size_t n = 1 + (iter % 3);
    const size_t m = 1 + static_cast<size_t>(iter % 5);
    std::vector<LinearConstraint> cs;
    for (size_t i = 0; i < m; ++i) {
      Vec a(n);
      for (size_t j = 0; j < n; ++j) a[j] = Rational(coeff(rng));
      cs.emplace_back(std::move(a), rels[rel_pick(rng)], Rational(rhs(rng)));
    }
    FeasibilityResult r = CheckFeasibility(n, cs);
    if (r.feasible) {
      ++feasible_count;
      ASSERT_EQ(r.witness.size(), n);
      for (const auto& c : cs) {
        EXPECT_TRUE(c.Satisfies(r.witness));
      }
    }
  }
  // Random small systems are feasible reasonably often; guards against a
  // solver that trivially answers "infeasible".
  EXPECT_GT(feasible_count, 5);
}

TEST_P(LpPropertyTest, OptimumDominatesRandomFeasiblePoints) {
  std::mt19937_64 rng(GetParam() * 131 + 17);
  std::uniform_int_distribution<int64_t> coeff(-4, 4);
  std::uniform_int_distribution<int64_t> box(1, 10);
  for (int iter = 0; iter < 30; ++iter) {
    const size_t n = 2;
    // Random objective over a random box [-b1,b1] x [-b2,b2].
    const int64_t b1 = box(rng), b2 = box(rng);
    std::vector<LinearConstraint> cs = {
        C({1, 0}, RelOp::kLe, b1), C({1, 0}, RelOp::kGe, -b1),
        C({0, 1}, RelOp::kLe, b2), C({0, 1}, RelOp::kGe, -b2)};
    Vec obj(n);
    obj[0] = Rational(coeff(rng));
    obj[1] = Rational(coeff(rng));
    LpResult r = MaximizeLp(n, cs, obj);
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    // Optimum equals |c1|*b1 + |c2|*b2 for a box.
    Rational expected = obj[0].Abs() * Rational(b1) + obj[1].Abs() * Rational(b2);
    EXPECT_EQ(r.objective, expected);
    EXPECT_EQ(Dot(obj, r.solution), r.objective);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpPropertyTest,
                         ::testing::Values(7u, 77u, 777u, 7777u));

}  // namespace
}  // namespace lcdb
