// One negative test per diagnostic the type checker (core/typecheck.cc) can
// emit: each asserts both the rejection and the message, pinning the
// diagnostics as API. Constructs the parser cannot produce (wrong-length
// operator tuples, foreign relation names) are built through the AST
// factories directly.

#include <gtest/gtest.h>

#include <string>

#include "core/ast.h"
#include "core/parser.h"
#include "core/typecheck.h"
#include "db/workloads.h"

namespace lcdb {
namespace {

const ConstraintDatabase& Db() {
  static const ConstraintDatabase db = MakeComb(1, true);  // "S", arity 2
  return db;
}

void ExpectRejected(const FormulaNode& query, const std::string& message) {
  auto info = TypeCheck(query, Db());
  ASSERT_FALSE(info.ok()) << "accepted: " << query.ToString();
  EXPECT_NE(info.status().ToString().find(message), std::string::npos)
      << "wrong diagnostic for: " << query.ToString() << "\n  got: "
      << info.status().ToString() << "\n  want substring: " << message;
}

void ExpectRejectedText(const std::string& text, const std::string& message) {
  auto query = ParseQuery(text, "S");
  ASSERT_TRUE(query.ok()) << text << "\n" << query.status().ToString();
  ExpectRejected(**query, message);
}

ElementTerm Var(const std::string& name) {
  ElementTerm t;
  t.coeffs[name] = Rational(1);
  return t;
}

TEST(TypeCheckDiagnosticsTest, FreeRegionVariableAtRoot) {
  ExpectRejectedText("subset(R)", "query has free region variable 'R'");
}

TEST(TypeCheckDiagnosticsTest, RegionVariableInElementTerm) {
  // The parser already refuses a region variable in element-term position,
  // so the construct has to come from the factories.
  FormulaPtr query = MakeExistsRegion(
      "R", MakeAnd(MakeSubsetS("R"),
                   MakeCompare(Var("R"), RelOp::kLt,
                               ElementTerm::Constant(Rational(1)))));
  ExpectRejected(*query, "variable 'R' is not element-sorted");
}

TEST(TypeCheckDiagnosticsTest, ElementVariableAsRegionArgument) {
  ExpectRejectedText("exists x . (S(x, x) & subset(x))",
                     "variable 'x' is not region-sorted");
}

TEST(TypeCheckDiagnosticsTest, ShadowedBinding) {
  ExpectRejectedText("exists x . exists x . S(x, x)",
                     "variable 'x' shadows an outer binding");
}

TEST(TypeCheckDiagnosticsTest, UnknownRelation) {
  // The parser only produces atoms of the database's relation; a foreign
  // name can only arrive through the factories.
  FormulaPtr query = MakeRelationAtom("T", {Var("x"), Var("y")});
  ExpectRejected(*query, "unknown relation 'T'");
}

TEST(TypeCheckDiagnosticsTest, RelationArityMismatch) {
  ExpectRejectedText("S(x)", "relation arity mismatch (expected 2)");
}

TEST(TypeCheckDiagnosticsTest, InRegionArityMismatch) {
  ExpectRejectedText("exists R . in(x; R)",
                     "in(...) arity mismatch (expected 2)");
}

TEST(TypeCheckDiagnosticsTest, UnboundSetVariable) {
  FormulaPtr query = MakeExistsRegion("A", MakeSetAtom("M", {"A"}));
  ExpectRejected(*query, "unbound set variable 'M'");
}

TEST(TypeCheckDiagnosticsTest, SetVariableArityMismatch) {
  ExpectRejectedText("exists A . [lfp M R R' : M(R, R) | M(R, R', R)](A, A)",
                     "set variable arity mismatch for 'M'");
}

TEST(TypeCheckDiagnosticsTest, FixpointWithoutBoundVariables) {
  FormulaPtr query = MakeFixpoint(NodeKind::kLfp, "M", {}, MakeTrue(), {});
  ExpectRejected(*query, "fixed point needs bound region variables");
}

TEST(TypeCheckDiagnosticsTest, FixpointWrongLengthTuple) {
  FormulaPtr query = MakeExistsRegion(
      "A", MakeFixpoint(NodeKind::kLfp, "M", {"R", "R'"},
                        MakeSetAtom("M", {"R", "R'"}), {"A"}));
  ExpectRejected(*query, "fixed point applied to wrong-length tuple");
}

TEST(TypeCheckDiagnosticsTest, FixpointBodyWithFreeElementVariable) {
  ExpectRejectedText("exists x A . ([lfp M R : M(R) | x = x](A) & x = x)",
                     "fixed-point body has free element variable 'x'");
}

TEST(TypeCheckDiagnosticsTest, FixpointBodyUsesOuterRegion) {
  ExpectRejectedText(
      "exists Q A B . [lfp M R R' : M(R, R') | adj(R, Q)](A, B)",
      "fixed-point body uses outer region 'Q'");
}

TEST(TypeCheckDiagnosticsTest, FixpointBodyUsesOuterSetVariable) {
  ExpectRejectedText(
      "exists A . [lfp M R : M(R) | [ifp N Q : N(Q) | M(Q)](R)](A)",
      "fixed-point body uses outer set variable 'M'");
}

TEST(TypeCheckDiagnosticsTest, LfpPositivityIsNotATypecheckError) {
  // Positivity of LFP bodies is the static analyzer's LCDB001 (with a
  // source span; see analysis_test.cc), not a typecheck rejection: the
  // query scopes and sorts fine.
  auto query = ParseQuery("exists A . [lfp M R : !(M(R))](A)", "S");
  ASSERT_TRUE(query.ok());
  EXPECT_TRUE(TypeCheck(**query, Db()).ok());
}

TEST(TypeCheckDiagnosticsTest, MessagesCarrySourceOffsets) {
  // Parsed nodes carry spans; typecheck diagnostics point at the offending
  // offset so CLI users can find the subformula in a long query.
  auto query = ParseQuery("exists x . (S(x, x) & subset(x))", "S");
  ASSERT_TRUE(query.ok());
  auto info = TypeCheck(**query, Db());
  ASSERT_FALSE(info.ok());
  EXPECT_NE(info.status().message().find("at offset"), std::string::npos)
      << info.status().message();
}

TEST(TypeCheckDiagnosticsTest, TcOddBoundTuple) {
  FormulaPtr query = MakeTransitiveClosure(
      NodeKind::kTc, {"R"}, MakeSubsetS("R"), {"A"}, {"B"});
  ExpectRejected(*query, "TC needs a 2m-tuple of bound region variables");
}

TEST(TypeCheckDiagnosticsTest, TcWrongLengthTuples) {
  FormulaPtr query = MakeTransitiveClosure(
      NodeKind::kTc, {"R", "Q"}, MakeAdjacent("R", "Q"), {"A"}, {"B", "C"});
  ExpectRejected(*query, "TC applied to wrong-length tuples");
}

TEST(TypeCheckDiagnosticsTest, TcBodyWithFreeElementVariable) {
  ExpectRejectedText(
      "exists x A B . ([tc R ; R' : adj(R, R') & x = x](A ; B) & x = x)",
      "TC body has free element variable 'x'");
}

TEST(TypeCheckDiagnosticsTest, TcBodyUsesSetVariable) {
  ExpectRejectedText("exists A . [ifp M R : [tc Q ; Q2 : M(Q)](R ; R)](A)",
                     "TC body uses a set variable");
}

TEST(TypeCheckDiagnosticsTest, TcBodyUsesOuterRegion) {
  ExpectRejectedText("exists Q A B . [tc R ; R' : adj(R, Q)](A ; B)",
                     "TC body uses outer region 'Q'");
}

TEST(TypeCheckDiagnosticsTest, HullBodyWithExtraElementVariable) {
  ExpectRejectedText(
      "exists y x . ([hull u : S(u, y)](x) & y = 0 & x = 0)",
      "hull body has extra free element variable 'y'");
}

TEST(TypeCheckDiagnosticsTest, HullWrongLengthTermTuple) {
  FormulaPtr query =
      MakeHull({"u", "v"}, MakeRelationAtom("S", {Var("u"), Var("v")}),
               {Var("x")});
  ExpectRejected(*query, "hull applied to wrong-length term tuple");
}

TEST(TypeCheckDiagnosticsTest, RbitBodyUsesSetVariable) {
  ExpectRejectedText(
      "exists A . [ifp M R : [rbit x : (x = 1 & M(R))](R, R)](A)",
      "rBIT body uses a set variable");
}

TEST(TypeCheckDiagnosticsTest, RbitBodyWithExtraElementVariable) {
  ExpectRejectedText("exists y A B . ([rbit x : x = y](A, B) & y = y)",
                     "rBIT body has extra free element variable 'y'");
}

// The remaining diagnostic, "query has free set variable", is defensive:
// a set atom whose variable is not bound by an enclosing fixed point is
// already rejected as "unbound set variable", and fixed points erase their
// set variable from the free set they expose, so no well-formed tree can
// carry a free set variable to the root.

}  // namespace
}  // namespace lcdb
