# End-to-end check of `lcdbq --trace=out.json`: runs a traced, governed
# query, then asserts the trace file is a well-formed Chrome trace-event
# JSON object with the expected spans. Invoked by the LcdbqTrace ctest
# (examples/CMakeLists.txt) with -DLCDBQ=... -DDB=... -DTRACE=...
execute_process(
  COMMAND ${LCDBQ} ${DB} --conn --stats --timeout 60000 --trace=${TRACE}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lcdbq exited with ${rc}\n${out}\n${err}")
endif()
if(NOT out MATCHES "true")
  message(FATAL_ERROR "conn query over the comb should answer true:\n${out}")
endif()
if(NOT err MATCHES "# metrics: {")
  message(FATAL_ERROR "--stats should print the flat metrics JSON:\n${err}")
endif()

if(NOT EXISTS ${TRACE})
  message(FATAL_ERROR "--trace did not create ${TRACE}")
endif()
file(READ ${TRACE} trace)
string(LENGTH "${trace}" trace_len)
if(trace_len LESS 100)
  message(FATAL_ERROR "trace file implausibly small (${trace_len} bytes)")
endif()
# Chrome trace-event JSON-object flavour, as Perfetto loads it.
if(NOT trace MATCHES "^{\"traceEvents\":\\[")
  message(FATAL_ERROR "trace is not a traceEvents object:\n${trace}")
endif()
if(NOT trace MATCHES "\"displayTimeUnit\":\"ns\"")
  message(FATAL_ERROR "trace lacks displayTimeUnit")
endif()
# The spans the run must have produced: construction, evaluation, fixpoint.
foreach(span extension.build arrangement.build evaluate fixpoint.stage)
  if(NOT trace MATCHES "\"name\":\"${span}\"")
    message(FATAL_ERROR "trace lacks the ${span} span:\n${trace}")
  endif()
endforeach()
# Every event is a complete event with the mandatory fields.
if(NOT trace MATCHES "\"cat\":\"lcdb\",\"ph\":\"X\"")
  message(FATAL_ERROR "trace lacks complete (ph=X) events")
endif()
message("lcdbq trace OK: ${trace_len} bytes at ${TRACE}")
