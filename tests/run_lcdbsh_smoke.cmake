# Runs lcdbsh with the smoke script on stdin and fails on nonzero exit —
# i.e. on any crash, abort, or sanitizer report. Invoked by the LcdbshSmoke
# ctest (examples/CMakeLists.txt) with -DLCDBSH=... -DSCRIPT=...
execute_process(
  COMMAND ${LCDBSH}
  INPUT_FILE ${SCRIPT}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE out
  ERROR_VARIABLE err)
message("${out}")
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "lcdbsh exited with ${rc} on the smoke script\n${err}")
endif()
