// Tests of the activity-managed lemma database (engine/lemma_db.h) and its
// integration with the constraint kernel: cross-query lemma survival, the
// ISSUE-mandated InvalidateDisjunct exactness contract, tier-then-activity
// eviction, epoch movement, and the kernel.lemma.* metrics family.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "constraint/canonical.h"
#include "constraint/conjunction.h"
#include "constraint/dnf_formula.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "db/database.h"
#include "db/region_extension.h"
#include "engine/kernel.h"
#include "engine/lemma_db.h"
#include "engine/metrics.h"

namespace lcdb {
namespace {

// Conjunction over one variable: lo <= x <= hi (as strict/loose mix is
// irrelevant here, loose on both ends).
Conjunction Interval(int lo, int hi) {
  std::vector<LinearAtom> atoms;
  atoms.emplace_back(std::vector<Rational>{Rational(1)}, RelOp::kGe,
                     Rational(lo));
  atoms.emplace_back(std::vector<Rational>{Rational(1)}, RelOp::kLe,
                     Rational(hi));
  return Conjunction(1, std::move(atoms));
}

CanonicalSystem Canon(const Conjunction& conj) {
  return CanonicalizeConjunction(conj);
}

FeasibilityResult Feasible() {
  FeasibilityResult r;
  r.feasible = true;
  r.witness = Vec(1);
  return r;
}

TEST(LemmaDatabaseTest, HitBumpsActivityAndStats) {
  LemmaDatabase db;
  const CanonicalSystem canon = Canon(Interval(0, 1));
  EXPECT_FALSE(db.LookupFeasibility(canon).has_value());
  db.InsertFeasibility(canon, Feasible(), /*pivots=*/1);
  std::optional<FeasibilityResult> hit = db.LookupFeasibility(canon);
  ASSERT_TRUE(hit.has_value());
  EXPECT_TRUE(hit->feasible);
  const LemmaDbStats s = db.stats();
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.insertions, 1u);
  EXPECT_EQ(db.size(), 1u);
}

TEST(LemmaDatabaseTest, InfeasibleVerdictsArePinnedCore) {
  LemmaDatabase db;
  const CanonicalSystem canon = Canon(Interval(3, 1));  // empty interval
  FeasibilityResult infeasible;
  infeasible.feasible = false;
  db.InsertFeasibility(canon, infeasible, /*pivots=*/0);
  const std::array<size_t, 3> tiers = db.TierCounts();
  EXPECT_EQ(tiers[0], 1u);  // kCore
  EXPECT_EQ(tiers[1], 0u);
  EXPECT_EQ(tiers[2], 0u);
}

TEST(LemmaDatabaseTest, FrequentPromotionAfterRepeatedUse) {
  LemmaDatabase::Options options;
  options.frequent_uses = 2;
  LemmaDatabase db(options);
  const CanonicalSystem canon = Canon(Interval(0, 1));
  db.InsertFeasibility(canon, Feasible(), /*pivots=*/1);
  EXPECT_EQ(db.TierCounts()[2], 1u);  // transient on insert
  db.LookupFeasibility(canon);
  db.LookupFeasibility(canon);
  EXPECT_EQ(db.TierCounts()[1], 1u);  // promoted to frequent
  EXPECT_EQ(db.TierCounts()[2], 0u);
}

TEST(LemmaDatabaseTest, EvictionPrefersColdTransientsOverActiveAndCore) {
  LemmaDatabase::Options options;
  options.max_entries = 4;
  LemmaDatabase db(options);
  // One core lemma (expensive proof), one hot transient, two cold
  // transients. max_entries/8 is 0 at capacity 4, so each overflow evicts
  // exactly one entry — the worst-ranked one.
  const CanonicalSystem core = Canon(Interval(0, 1));
  db.InsertFeasibility(core, Feasible(), /*pivots=*/1000);  // core tier
  const CanonicalSystem hot = Canon(Interval(2, 3));
  db.InsertFeasibility(hot, Feasible(), /*pivots=*/1);
  for (int i = 0; i < 4; ++i) db.LookupFeasibility(hot);
  const CanonicalSystem cold1 = Canon(Interval(4, 5));
  const CanonicalSystem cold2 = Canon(Interval(6, 7));
  db.InsertFeasibility(cold1, Feasible(), /*pivots=*/1);
  db.InsertFeasibility(cold2, Feasible(), /*pivots=*/1);
  EXPECT_EQ(db.size(), 4u);
  // The fifth insertion overflows; the victim must be a cold transient.
  const CanonicalSystem fresh = Canon(Interval(8, 9));
  db.InsertFeasibility(fresh, Feasible(), /*pivots=*/1);
  const LemmaDbStats s = db.stats();
  EXPECT_GT(s.evictions_transient, 0u);
  EXPECT_EQ(s.evictions_core, 0u);
  // The core lemma and the hot lemma both survived.
  EXPECT_TRUE(db.LookupFeasibility(core).has_value());
  EXPECT_TRUE(db.LookupFeasibility(hot).has_value());
}

TEST(LemmaDatabaseTest, DecayStepsCountAtInterval) {
  LemmaDatabase::Options options;
  options.decay_interval = 2;
  LemmaDatabase db(options);
  for (int i = 0; i < 6; ++i) {
    db.InsertFeasibility(Canon(Interval(i, i + 1)), Feasible(), /*pivots=*/1);
  }
  EXPECT_EQ(db.stats().decays, 3u);
}

TEST(LemmaDatabaseTest, ClearAndInvalidateBumpEpoch) {
  LemmaDatabase db;
  const uint64_t e0 = db.epoch();
  db.Clear();
  EXPECT_EQ(db.epoch(), e0 + 1);
  // Invalidation moves the epoch even when nothing is dropped.
  EXPECT_EQ(db.InvalidateDisjunct(0), 0u);
  EXPECT_EQ(db.epoch(), e0 + 2);
}

TEST(LemmaDatabaseTest, OccurrenceListsTrackBoundDisjuncts) {
  DnfFormula rep(1, {Interval(0, 10), Interval(20, 30)});
  LemmaDatabase db;
  db.BindDisjuncts(rep);
  // A lemma over disjunct 0's atoms mentions exactly disjunct 0.
  const CanonicalSystem canon = Canon(Interval(0, 10));
  db.InsertFeasibility(canon, Feasible(), /*pivots=*/1);
  EXPECT_EQ(db.OccurrenceCount(0), 1u);
  EXPECT_EQ(db.OccurrenceCount(1), 0u);
  // Invalidating disjunct 1 drops nothing; disjunct 0 drops the lemma.
  EXPECT_EQ(db.InvalidateDisjunct(1), 0u);
  EXPECT_TRUE(db.LookupFeasibility(canon).has_value());
  EXPECT_EQ(db.InvalidateDisjunct(0), 1u);
  EXPECT_FALSE(db.LookupFeasibility(canon).has_value());
  EXPECT_EQ(db.stats().invalidations, 1u);
}

TEST(LemmaDatabaseTest, RebindClearsStaleOccurrenceLists) {
  DnfFormula rep_a(1, {Interval(0, 10)});
  DnfFormula rep_b(1, {Interval(20, 30), Interval(40, 50)});
  LemmaDatabase db;
  db.BindDisjuncts(rep_a);
  db.InsertFeasibility(Canon(Interval(0, 10)), Feasible(), /*pivots=*/1);
  EXPECT_EQ(db.OccurrenceCount(0), 1u);
  db.BindDisjuncts(rep_b);
  EXPECT_EQ(db.stats().rebinds, 2u);
  // The lemma survives the rebind (pure truth) but is now unattributed.
  EXPECT_EQ(db.size(), 1u);
  EXPECT_EQ(db.OccurrenceCount(0), 0u);
  // Re-binding the same representation is a no-op.
  db.BindDisjuncts(rep_b);
  EXPECT_EQ(db.stats().rebinds, 2u);
}

TEST(LemmaDatabaseTest, ImplicationAndFeasibilityShareOnePool) {
  LemmaDatabase db;
  const CanonicalSystem canon = Canon(Interval(0, 10));
  std::string key = canon.encoding;
  key.push_back('!');
  const uint64_t hash = StableHash64(key);
  db.InsertImplication(hash, key, canon.atoms, /*consistent=*/false,
                       /*pivots=*/1);
  db.InsertFeasibility(canon, Feasible(), /*pivots=*/1);
  EXPECT_EQ(db.size(), 2u);
  std::optional<bool> impl = db.LookupImplication(hash, key);
  ASSERT_TRUE(impl.has_value());
  EXPECT_FALSE(*impl);
  // A proved implication (consistent == false) is pinned core.
  EXPECT_GE(db.TierCounts()[0], 1u);
  // The feasibility keyspace never contains '!', so the pool stays disjoint:
  // a feasibility lookup under the implication's key shape misses.
  EXPECT_TRUE(db.LookupFeasibility(canon).has_value());
}

// --- Kernel integration ---

Conjunction ParseConj(const std::string& text) {
  DnfFormula f = ParseDnf(text, {"x"}).value();
  return f.disjuncts()[0];
}

TEST(KernelLemmaTest, LemmasSurviveAcrossScopedKernelScopes) {
  auto lemmas = std::make_shared<LemmaDatabase>();
  const Conjunction conj = ParseConj("x >= 0 & x <= 1");
  {
    ConstraintKernel kernel(ConstraintKernel::Options(), lemmas);
    ScopedKernel scope(kernel);
    CurrentKernel().IsFeasible(conj);
    EXPECT_EQ(kernel.stats().cache_misses, 1u);
  }
  // The first kernel is gone; a second one attached to the same store gets
  // a hit on its very first query.
  {
    ConstraintKernel kernel(ConstraintKernel::Options(), lemmas);
    ScopedKernel scope(kernel);
    CurrentKernel().IsFeasible(conj);
    const KernelStats s = kernel.stats();
    EXPECT_EQ(s.cache_hits, 1u);
    EXPECT_EQ(s.oracle_calls, 0u);
    EXPECT_EQ(s.lemma_hits, 1u);
  }
}

TEST(KernelLemmaTest, StatsReportLemmaDeltaSinceAttach) {
  auto lemmas = std::make_shared<LemmaDatabase>();
  const Conjunction warm = ParseConj("x >= 0 & x <= 1");
  {
    ConstraintKernel kernel(ConstraintKernel::Options(), lemmas);
    ScopedKernel scope(kernel);
    CurrentKernel().IsFeasible(warm);
  }
  ConstraintKernel kernel(ConstraintKernel::Options(), lemmas);
  // The pre-warm insertion happened before this kernel attached; its stats
  // start from zero but the occupancy gauge shows the shared store.
  KernelStats s = kernel.stats();
  EXPECT_EQ(s.lemma_insertions, 0u);
  EXPECT_EQ(s.lemma_occupancy, 1u);
  ScopedKernel scope(kernel);
  CurrentKernel().IsFeasible(warm);
  s = kernel.stats();
  EXPECT_EQ(s.lemma_hits, 1u);
  EXPECT_EQ(s.lemma_misses, 0u);
}

TEST(KernelLemmaTest, ClearCacheDropsLemmasAndMovesEpoch) {
  ConstraintKernel kernel;
  ASSERT_NE(kernel.lemma_db(), nullptr);
  ScopedKernel scope(kernel);
  const Conjunction conj = ParseConj("x >= 0 & x <= 1");
  CurrentKernel().IsFeasible(conj);
  EXPECT_EQ(kernel.lemma_db()->size(), 1u);
  const uint64_t epoch = kernel.CacheEpoch();
  kernel.ClearCache();
  EXPECT_EQ(kernel.lemma_db()->size(), 0u);
  EXPECT_GT(kernel.CacheEpoch(), epoch);
  // The cleared store re-learns on the next query.
  CurrentKernel().IsFeasible(conj);
  EXPECT_EQ(kernel.lemma_db()->size(), 1u);
}

TEST(KernelLemmaTest, LruBackendKeepsLemmaCountersZero) {
  ConstraintKernel::Options options;
  options.use_lemma_db = false;
  ConstraintKernel kernel(options);
  EXPECT_EQ(kernel.lemma_db(), nullptr);
  // Parse outside the scope: DNF construction prunes through the ambient
  // kernel and would otherwise inflate this kernel's counters.
  const Conjunction conj = ParseConj("x >= 0 & x <= 1");
  ScopedKernel scope(kernel);
  CurrentKernel().IsFeasible(conj);
  CurrentKernel().IsFeasible(conj);
  const KernelStats s = kernel.stats();
  EXPECT_EQ(s.cache_hits, 1u);
  EXPECT_EQ(s.lemma_hits, 0u);
  EXPECT_EQ(s.lemma_insertions, 0u);
}

TEST(KernelLemmaTest, SecondEvaluateHitsLemmasAndInvalidationIsExact) {
  // Two well-separated disjuncts; the query's constraint work touches both.
  DnfFormula rep(1, {Interval(0, 1), Interval(5, 6)});
  ConstraintDatabase db("S", rep, {"x"});
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ASSERT_NE(kernel.lemma_db(), nullptr);
  ScopedKernel scope(kernel);
  const std::string query = "S(x) & x >= 5";

  auto first = EvaluateQueryText(*ext, query);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_GT(kernel.lemma_db()->size(), 0u);

  // Second Evaluate on the same database: lemmas learned by the first run
  // answer from the store.
  kernel.ResetStats();
  auto second = EvaluateQueryText(*ext, query);
  ASSERT_TRUE(second.ok()) << second.status().ToString();
  EXPECT_GT(kernel.stats().lemma_hits, 0u);
  EXPECT_EQ(first->formula, second->formula);

  // InvalidateDisjunct drops exactly the lemmas whose occurrence lists
  // mention the changed disjunct — OccurrenceCount is the predicted drop —
  // and the re-evaluated answer is byte-identical.
  const size_t predicted = kernel.lemma_db()->OccurrenceCount(0);
  const size_t occupancy = kernel.lemma_db()->size();
  const size_t dropped = kernel.InvalidateDisjunct(0);
  EXPECT_EQ(dropped, predicted);
  EXPECT_EQ(kernel.lemma_db()->size(), occupancy - dropped);
  EXPECT_EQ(kernel.lemma_db()->OccurrenceCount(0), 0u);
  auto third = EvaluateQueryText(*ext, query);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  EXPECT_EQ(first->formula, third->formula);
}

TEST(KernelLemmaTest, MetricsRegistryExportsLemmaFamily) {
  ConstraintKernel kernel;
  const Conjunction conj = ParseConj("x >= 0 & x <= 1");
  ScopedKernel scope(kernel);
  CurrentKernel().IsFeasible(conj);
  CurrentKernel().IsFeasible(conj);
  MetricsRegistry registry;
  registry.RegisterKernelStats(kernel.stats());
  const MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_EQ(snapshot.values.at("kernel.lemma.hits"), 1u);
  EXPECT_EQ(snapshot.values.at("kernel.lemma.insertions"), 1u);
  EXPECT_EQ(snapshot.values.at("kernel.lemma.occupancy"), 1u);
  EXPECT_NE(snapshot.ToJson().find("\"kernel.lemma.hits\""),
            std::string::npos);
}

}  // namespace
}  // namespace lcdb
