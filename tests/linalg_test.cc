#include <random>

#include <gtest/gtest.h>

#include "linalg/gauss.h"
#include "linalg/matrix.h"

namespace lcdb {
namespace {

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

TEST(VecTest, Arithmetic) {
  Vec a = V({1, 2, 3});
  Vec b = V({4, 5, 6});
  EXPECT_EQ(VecAdd(a, b), V({5, 7, 9}));
  EXPECT_EQ(VecSub(b, a), V({3, 3, 3}));
  EXPECT_EQ(VecScale(Rational(2), a), V({2, 4, 6}));
  EXPECT_EQ(Dot(a, b), Rational(32));
  EXPECT_TRUE(VecIsZero(V({0, 0})));
  EXPECT_FALSE(VecIsZero(V({0, 1})));
  EXPECT_EQ(VecToString(a), "(1, 2, 3)");
}

TEST(VecTest, LexCompare) {
  EXPECT_LT(VecLexCompare(V({1, 2}), V({1, 3})), 0);
  EXPECT_LT(VecLexCompare(V({0, 9}), V({1, 0})), 0);
  EXPECT_EQ(VecLexCompare(V({1, 2}), V({1, 2})), 0);
  EXPECT_GT(VecLexCompare(V({2, 0}), V({1, 9})), 0);
}

TEST(GaussTest, UniqueSolution2x2) {
  // x + y = 3, x - y = 1  =>  x = 2, y = 1.
  Matrix a;
  a.AppendRow(V({1, 1}));
  a.AppendRow(V({1, -1}));
  SolveResult r = SolveLinearSystem(a, V({3, 1}));
  ASSERT_EQ(r.outcome, SolveOutcome::kUnique);
  EXPECT_EQ(r.solution, V({2, 1}));
}

TEST(GaussTest, RationalSolution) {
  // 2x + 3y = 1, 4x + 9y = 2 => x = 1/2, y = 0.
  Matrix a;
  a.AppendRow(V({2, 3}));
  a.AppendRow(V({4, 9}));
  SolveResult r = SolveLinearSystem(a, V({1, 2}));
  ASSERT_EQ(r.outcome, SolveOutcome::kUnique);
  EXPECT_EQ(r.solution[0], Rational(1, 2));
  EXPECT_EQ(r.solution[1], Rational(0));
}

TEST(GaussTest, InconsistentSystem) {
  Matrix a;
  a.AppendRow(V({1, 1}));
  a.AppendRow(V({2, 2}));
  SolveResult r = SolveLinearSystem(a, V({1, 3}));
  EXPECT_EQ(r.outcome, SolveOutcome::kInconsistent);
}

TEST(GaussTest, UnderdeterminedSystem) {
  Matrix a;
  a.AppendRow(V({1, 1}));
  SolveResult r = SolveLinearSystem(a, V({1}));
  EXPECT_EQ(r.outcome, SolveOutcome::kUnderdetermined);
}

TEST(GaussTest, RedundantRowsStillUnique) {
  Matrix a;
  a.AppendRow(V({1, 0}));
  a.AppendRow(V({0, 1}));
  a.AppendRow(V({1, 1}));
  SolveResult r = SolveLinearSystem(a, V({2, 3, 5}));
  ASSERT_EQ(r.outcome, SolveOutcome::kUnique);
  EXPECT_EQ(r.solution, V({2, 3}));
}

TEST(GaussTest, Rank) {
  Matrix a;
  a.AppendRow(V({1, 2, 3}));
  a.AppendRow(V({2, 4, 6}));
  a.AppendRow(V({1, 0, 1}));
  EXPECT_EQ(Rank(a), 2u);
  Matrix zero(3, 3);
  EXPECT_EQ(Rank(zero), 0u);
  Matrix id;
  id.AppendRow(V({1, 0}));
  id.AppendRow(V({0, 1}));
  EXPECT_EQ(Rank(id), 2u);
}

TEST(GaussTest, Determinant) {
  Matrix a;
  a.AppendRow(V({1, 2}));
  a.AppendRow(V({3, 4}));
  EXPECT_EQ(Determinant(a), Rational(-2));
  Matrix singular;
  singular.AppendRow(V({1, 2}));
  singular.AppendRow(V({2, 4}));
  EXPECT_EQ(Determinant(singular), Rational(0));
  Matrix perm;
  perm.AppendRow(V({0, 1}));
  perm.AppendRow(V({1, 0}));
  EXPECT_EQ(Determinant(perm), Rational(-1));
}

TEST(GaussTest, NullSpace) {
  Matrix a;
  a.AppendRow(V({1, 1, 0}));
  std::vector<Vec> basis = NullSpaceBasis(a);
  ASSERT_EQ(basis.size(), 2u);
  for (const Vec& v : basis) {
    EXPECT_EQ(Dot(V({1, 1, 0}), v), Rational(0));
  }
  Matrix full;
  full.AppendRow(V({1, 0}));
  full.AppendRow(V({0, 1}));
  EXPECT_TRUE(NullSpaceBasis(full).empty());
}

TEST(GaussTest, AffineDimension) {
  EXPECT_EQ(AffineDimension({}), -1);
  EXPECT_EQ(AffineDimension({V({1, 2})}), 0);
  EXPECT_EQ(AffineDimension({V({0, 0}), V({1, 1})}), 1);
  EXPECT_EQ(AffineDimension({V({0, 0}), V({1, 1}), V({2, 2})}), 1);
  EXPECT_EQ(AffineDimension({V({0, 0}), V({1, 0}), V({0, 1})}), 2);
  EXPECT_EQ(AffineDimension({V({0, 0, 0}), V({1, 0, 0}), V({0, 1, 0}),
                             V({0, 0, 1})}),
            3);
}

class GaussPropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(GaussPropertyTest, SolveThenVerify) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> entry(-9, 9);
  for (int iter = 0; iter < 25; ++iter) {
    const size_t n = 1 + static_cast<size_t>(iter % 4);
    Matrix a;
    Vec x_true(n);
    for (size_t i = 0; i < n; ++i) x_true[i] = Rational(entry(rng), 1 + (iter % 3));
    for (size_t r = 0; r < n; ++r) {
      Vec row(n);
      for (size_t c = 0; c < n; ++c) row[c] = Rational(entry(rng));
      a.AppendRow(row);
    }
    Vec b(n);
    for (size_t r = 0; r < n; ++r) {
      Vec row(n);
      for (size_t c = 0; c < n; ++c) row[c] = a.at(r, c);
      b[r] = Dot(row, x_true);
    }
    SolveResult res = SolveLinearSystem(a, b);
    if (res.outcome == SolveOutcome::kUnique) {
      EXPECT_EQ(res.solution, x_true);
      EXPECT_NE(Determinant(a), Rational(0));
    } else {
      // The matrix must be singular for a square consistent system.
      EXPECT_EQ(Determinant(a), Rational(0));
      EXPECT_EQ(res.outcome, SolveOutcome::kUnderdetermined);
    }
  }
}

TEST_P(GaussPropertyTest, NullSpaceVectorsAnnihilate) {
  std::mt19937_64 rng(GetParam() * 31 + 7);
  std::uniform_int_distribution<int64_t> entry(-5, 5);
  for (int iter = 0; iter < 20; ++iter) {
    const size_t rows = 1 + (iter % 3);
    const size_t cols = 2 + (iter % 4);
    Matrix a;
    for (size_t r = 0; r < rows; ++r) {
      Vec row(cols);
      for (size_t c = 0; c < cols; ++c) row[c] = Rational(entry(rng));
      a.AppendRow(row);
    }
    std::vector<Vec> basis = NullSpaceBasis(a);
    EXPECT_EQ(basis.size(), cols - Rank(a));
    for (const Vec& v : basis) {
      for (size_t r = 0; r < rows; ++r) {
        Vec row(cols);
        for (size_t c = 0; c < cols; ++c) row[c] = a.at(r, c);
        EXPECT_EQ(Dot(row, v), Rational(0));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GaussPropertyTest,
                         ::testing::Values(101u, 202u, 303u, 404u));

}  // namespace
}  // namespace lcdb
