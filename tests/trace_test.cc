// Tests for the span tracer (engine/trace.h): recording semantics (LIFO
// nesting, counters, the bounded ring), the stable span-tree golden over a
// full evaluation on a fresh kernel, the Chrome trace-event exporter's
// schema, and the contract that installing a tracer never changes query
// results on either execution path.

#include <gtest/gtest.h>

#include <string>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "engine/trace.h"

namespace lcdb {
namespace {

ConstraintDatabase IntervalsDb() {
  auto f = ParseDnf("(x > 0 & x < 1) | x = 5", {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

TEST(TraceTest, ManualSpansNestAndCount) {
  QueryTracer tracer;
  const uint64_t outer = tracer.BeginSpan("outer");
  const uint64_t inner = tracer.BeginSpan("inner");
  tracer.Counter("tuples", 7);
  tracer.Counter("tuples", 9);  // repeated names overwrite (final trip count)
  tracer.EndSpan(inner);
  tracer.EndSpan(outer);
  EXPECT_EQ(tracer.spans_begun(), 2u);
  EXPECT_EQ(tracer.spans_retained(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 0u);
  EXPECT_EQ(tracer.ToTreeString(/*zero_timestamps=*/true),
            "outer\n"
            "  inner tuples=9\n");
}

TEST(TraceTest, RingBoundDropsOldestCompletedSpans) {
  QueryTracer::Options options;
  options.capacity = 2;
  QueryTracer tracer(options);
  const uint64_t root = tracer.BeginSpan("root");
  for (int i = 0; i < 5; ++i) {
    const uint64_t child = tracer.BeginSpan("child");
    tracer.EndSpan(child);
  }
  tracer.EndSpan(root);
  EXPECT_EQ(tracer.spans_begun(), 6u);
  EXPECT_EQ(tracer.spans_retained(), 2u);
  EXPECT_EQ(tracer.spans_dropped(), 4u);
  // The last completed spans survive; the dropped root renders its
  // retained child as a root rather than losing it.
  const std::string tree = tracer.ToTreeString(/*zero_timestamps=*/true);
  EXPECT_NE(tree.find("root"), std::string::npos);
  EXPECT_NE(tree.find("child"), std::string::npos);
}

TEST(TraceTest, MismatchedEndUnwindsToTheTarget) {
  QueryTracer tracer;
  const uint64_t a = tracer.BeginSpan("a");
  tracer.BeginSpan("b");
  tracer.BeginSpan("c");
  tracer.EndSpan(a);  // closes c and b on the way down
  EXPECT_EQ(tracer.spans_retained(), 3u);
  EXPECT_EQ(tracer.ToTreeString(/*zero_timestamps=*/true),
            "a\n"
            "  b\n"
            "    c\n");
}

TEST(TraceTest, DisabledGuardIsInert) {
  ASSERT_EQ(CurrentTracerOrNull(), nullptr);
  TraceSpan span("never.recorded");
  EXPECT_FALSE(span.active());
  span.Counter("ignored", 1);  // must not crash
}

TEST(TraceTest, ScopedTracerNestsAndRestores) {
  QueryTracer outer_tracer;
  ScopedTracer outer(outer_tracer);
  {
    QueryTracer inner_tracer;
    ScopedTracer inner(inner_tracer);
    TraceSpan span("inner.only");
    EXPECT_EQ(CurrentTracerOrNull(), &inner_tracer);
  }
  EXPECT_EQ(CurrentTracerOrNull(), &outer_tracer);
  { TraceSpan span("outer.only"); }
  EXPECT_EQ(outer_tracer.spans_retained(), 1u);
  EXPECT_NE(outer_tracer.ToTreeString(true).find("outer.only"),
            std::string::npos);
}

// The golden: the span tree of one symbolic query on a fresh kernel (the
// process-default kernel's caches would otherwise change the lp.solve spans
// from run to run). Zeroed timestamps leave structure, names and counters —
// byte-stable. If an engine change legitimately alters the tree, update the
// golden; that is the point of pinning it.
TEST(TraceTest, GoldenSpanTree) {
  ConstraintDatabase db = IntervalsDb();
  auto ext = MakeArrangementExtension(db);
  auto parsed = ParseQuery("exists x . (S(x) & x > 2)", db.relation_name());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ConstraintKernel kernel;
  ScopedKernel scoped_kernel(kernel);
  QueryTracer tracer;
  {
    ScopedTracer scoped(tracer);
    Evaluator evaluator(*ext);
    auto r = evaluator.Evaluate(**parsed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  EXPECT_EQ(tracer.ToTreeString(/*zero_timestamps=*/true),
            // The evaluate span carries the lemma-database share of the
            // query's kernel work: the optimizer's folding pass re-asks one
            // system the analyzer already proved, hence exactly one hit.
            "evaluate lemma.hits=1\n"
            "  typecheck\n"
            // The analyzer classifies the element-pure guard `x > 2` (sat
            // both ways -> unknown); its two oracle decisions land in the
            // kernel cache before the optimizer runs.
            "  analyze\n"
            "    lp.solve pivots=2\n"
            "    lp.solve pivots=1\n"
            "  plan.build\n"
            "  plan.optimize plan_nodes=2\n"
            "    pass.fold\n"
            "      lp.solve pivots=2\n"
            "      lp.solve pivots=4\n"
            "    pass.narrow\n"
            "    pass.fold\n"
            "    pass.reorder_quantifiers\n"
            "    pass.hoist\n"
            "    pass.order_conjuncts\n"
            "    pass.cse\n"
            "    pass.mark_cacheable\n"
            // Tier-2 cost estimation over the optimized plan (its
            // est_bigint_ops counter is plan-shape arithmetic, stable).
            "  plan.cost est_bigint_ops=2\n"
            // Tier-3 plan verification gates execution (its plan_nodes
            // counter is the DAG size it walked).
            "  plan.verify plan_nodes=2\n"
            "  plan.execute rows=1\n"
            "    qe.exists\n"
            "      qe.project disjuncts_in=1 disjuncts_out=1\n");
}

TEST(TraceTest, ChromeTraceJsonIsWellFormed) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  ConstraintKernel kernel;
  ScopedKernel scoped_kernel(kernel);
  QueryTracer tracer;
  {
    ScopedTracer scoped(tracer);
    auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }
  ASSERT_GT(tracer.spans_retained(), 0u);
  const std::string json = tracer.ToChromeTraceJson();

  // Shape of the Chrome trace-event JSON-object flavour.
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(json.find("\"displayTimeUnit\":\"ns\""), std::string::npos);
  EXPECT_NE(json.find("\"spans_dropped\":0"), std::string::npos);

  // One complete event per retained span, each with the mandatory fields.
  size_t events = 0;
  for (size_t pos = json.find("\"ph\":\"X\""); pos != std::string::npos;
       pos = json.find("\"ph\":\"X\"", pos + 1)) {
    ++events;
  }
  EXPECT_EQ(events, tracer.spans_retained());
  EXPECT_NE(json.find("\"cat\":\"lcdb\""), std::string::npos);
  EXPECT_NE(json.find("\"pid\":1,\"tid\":1"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"fixpoint.stage\""), std::string::npos);

  // Structural well-formedness: braces and brackets balance and never go
  // negative outside string literals; quotes pair up.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (escaped) {
      escaped = false;
      continue;
    }
    if (in_string) {
      if (c == '\\') escaped = true;
      if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') in_string = true;
    if (c == '{') ++braces;
    if (c == '}') --braces;
    if (c == '[') ++brackets;
    if (c == ']') --brackets;
    ASSERT_GE(braces, 0);
    ASSERT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(TraceTest, CountersReachTheJsonArgs) {
  QueryTracer tracer;
  const uint64_t id = tracer.BeginSpan("stage");
  tracer.Counter("tuples", 42);
  tracer.EndSpan(id);
  const std::string json = tracer.ToChromeTraceJson();
  EXPECT_NE(json.find("\"tuples\":42"), std::string::npos);
  EXPECT_NE(json.find("\"parent\":0"), std::string::npos);
}

/// Installing a tracer must never change what a query returns — on either
/// execution path. (The tracer only observes; results stay byte-identical.)
void TracedResultsAreByteIdentical(bool use_plan) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto parsed =
      ParseQuery("exists x . S(x, y)", db.relation_name());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Evaluator::Options options;
  options.use_plan = use_plan;

  std::string untraced;
  {
    ConstraintKernel kernel;
    ScopedKernel scoped_kernel(kernel);
    Evaluator evaluator(*ext, options);
    auto r = evaluator.Evaluate(**parsed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    untraced = r->ToString();
  }
  std::string traced;
  {
    ConstraintKernel kernel;
    ScopedKernel scoped_kernel(kernel);
    QueryTracer tracer;
    ScopedTracer scoped(tracer);
    Evaluator evaluator(*ext, options);
    auto r = evaluator.Evaluate(**parsed);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    traced = r->ToString();
    EXPECT_GT(tracer.spans_retained(), 0u);
  }
  EXPECT_EQ(untraced, traced) << "use_plan=" << use_plan;
}

TEST(TraceTest, TracedResultsAreByteIdenticalPlanPath) {
  TracedResultsAreByteIdentical(/*use_plan=*/true);
}

TEST(TraceTest, TracedResultsAreByteIdenticalLegacyPath) {
  TracedResultsAreByteIdentical(/*use_plan=*/false);
}

}  // namespace
}  // namespace lcdb
