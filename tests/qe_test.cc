#include <random>

#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "qe/fourier_motzkin.h"

namespace lcdb {
namespace {

const std::vector<std::string> kXY = {"x", "y"};
const std::vector<std::string> kXYZ = {"x", "y", "z"};

DnfFormula Parse(const std::string& text,
                 const std::vector<std::string>& vars) {
  auto r = ParseDnf(text, vars);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.ok() ? *r : DnfFormula::False(vars.size());
}

Vec V(std::initializer_list<int64_t> values) {
  Vec out;
  for (int64_t v : values) out.emplace_back(v);
  return out;
}

TEST(FourierMotzkinTest, ProjectBandOntoAxis) {
  // exists y (x <= y & y <= 1)  ==  x <= 1.
  DnfFormula f = Parse("x <= y & y <= 1", kXY);
  DnfFormula proj = ExistsVariable(f, 1);
  EXPECT_FALSE(VariableOccurs(proj, 1));
  EXPECT_TRUE(AreEquivalent(proj, Parse("x <= 1", kXY)));
}

TEST(FourierMotzkinTest, StrictnessPropagates) {
  // exists y (x < y & y <= 1)  ==  x < 1.
  DnfFormula f = Parse("x < y & y <= 1", kXY);
  DnfFormula proj = ExistsVariable(f, 1);
  EXPECT_TRUE(AreEquivalent(proj, Parse("x < 1", kXY)));
  // exists y (x <= y & y <= 1) keeps <=.
  DnfFormula g = Parse("x <= y & y <= 1", kXY);
  EXPECT_TRUE(AreEquivalent(ExistsVariable(g, 1), Parse("x <= 1", kXY)));
}

TEST(FourierMotzkinTest, UnboundedVariableVanishes) {
  // exists y (y >= x): always true.
  DnfFormula f = Parse("y >= x", kXY);
  EXPECT_TRUE(AreEquivalent(ExistsVariable(f, 1), DnfFormula::True(2)));
}

TEST(FourierMotzkinTest, EqualitySubstitution) {
  // exists y (y = x + 1 & y <= 3)  ==  x <= 2.
  DnfFormula f = Parse("y = x + 1 & y <= 3", kXY);
  EXPECT_TRUE(AreEquivalent(ExistsVariable(f, 1), Parse("x <= 2", kXY)));
}

TEST(FourierMotzkinTest, TwoEqualities) {
  // exists y (y = x & y = 1)  ==  x = 1.
  DnfFormula f = Parse("y = x & y = 1", kXY);
  EXPECT_TRUE(AreEquivalent(ExistsVariable(f, 1), Parse("x = 1", kXY)));
}

TEST(FourierMotzkinTest, EmptyProjection) {
  // exists y (y < x & y > x) is empty.
  DnfFormula f = Parse("y < x & y > x", kXY);
  EXPECT_TRUE(ExistsVariable(f, 1).IsEmpty());
}

TEST(FourierMotzkinTest, ProjectTriangle) {
  // Triangle 0 <= y <= x <= 1 projects to [0,1] on x.
  DnfFormula f = Parse("y >= 0 & y <= x & x <= 1", kXY);
  DnfFormula proj = ExistsVariable(f, 1);
  EXPECT_TRUE(AreEquivalent(proj, Parse("x >= 0 & x <= 1", kXY)));
}

TEST(FourierMotzkinTest, DisjunctionProjectsPerDisjunct) {
  DnfFormula f = Parse("(y = x & x < 0) | (y = -x & x > 2)", kXY);
  DnfFormula proj = ExistsVariable(f, 1);
  EXPECT_TRUE(AreEquivalent(proj, Parse("x < 0 | x > 2", kXY)));
}

TEST(FourierMotzkinTest, ForallViaDuality) {
  // forall y (y > x | y < x) is false (y = x escapes); forall y (y >= x)
  // is false; forall y (x <= 1) is x <= 1.
  DnfFormula f = Parse("x <= 1", kXY);
  EXPECT_TRUE(AreEquivalent(ForallVariable(f, 1), f));
  DnfFormula g = Parse("y >= x", kXY);
  EXPECT_TRUE(ForallVariable(g, 1).IsEmpty());
  DnfFormula h = Parse("y > x | y < x | y = x", kXY);
  EXPECT_TRUE(AreEquivalent(ForallVariable(h, 1), DnfFormula::True(2)));
}

TEST(FourierMotzkinTest, MultiVariableElimination) {
  // exists y exists z (x = y + z & 0 <= y & y <= 1 & 0 <= z & z <= 1)
  //   ==  0 <= x <= 2.
  DnfFormula f =
      Parse("x = y + z & 0 <= y & y <= 1 & 0 <= z & z <= 1", kXYZ);
  DnfFormula proj = ExistsVariables(f, {1, 2});
  EXPECT_FALSE(VariableOccurs(proj, 1));
  EXPECT_FALSE(VariableOccurs(proj, 2));
  EXPECT_TRUE(AreEquivalent(proj, Parse("x >= 0 & x <= 2", kXYZ)));
}

TEST(FourierMotzkinTest, DropVariableReindexes) {
  DnfFormula f = Parse("x <= 1 & z >= 0", kXYZ);
  DnfFormula dropped = DropVariable(f, 1);  // remove unused y
  EXPECT_EQ(dropped.num_vars(), 2u);
  EXPECT_TRUE(dropped.Satisfies(V({0, 1})));
  EXPECT_FALSE(dropped.Satisfies(V({2, 1})));
  EXPECT_FALSE(dropped.Satisfies(V({0, -1})));
}

// Definable-set sanity: the projection of a definable set is definable and
// sampling agrees with a brute-force scan over candidate witnesses.
class QePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(QePropertyTest, ProjectionAgreesWithWitnessSearch) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  std::uniform_int_distribution<int> rel_pick(0, 4);
  std::uniform_int_distribution<int> natoms(1, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  for (int iter = 0; iter < 25; ++iter) {
    // Random conjunction over (x, y).
    std::vector<LinearAtom> atoms;
    const int m = natoms(rng);
    for (int i = 0; i < m; ++i) {
      Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
      atoms.emplace_back(c, rels[rel_pick(rng)], Rational(coeff(rng)));
    }
    DnfFormula f(2, {Conjunction(2, std::move(atoms))});
    DnfFormula proj = ExistsVariable(f, 1);
    ASSERT_FALSE(VariableOccurs(proj, 1));
    // For sample x values, "exists y" decided via LP on f with x pinned.
    for (int64_t num = -6; num <= 6; ++num) {
      Rational x(num, 2);
      // Pin x in f and check emptiness.
      std::vector<AffineExpr> pin = {AffineExpr::Constant(2, x),
                                     AffineExpr::Variable(2, 1)};
      DnfFormula pinned = f.Substitute(pin, 2);
      const bool has_witness = !pinned.IsEmpty();
      Vec probe = {x, Rational(0)};
      EXPECT_EQ(proj.Satisfies(probe), has_witness)
          << "x=" << x.ToString() << " f=" << f.ToString(kXY)
          << " proj=" << proj.ToString(kXY);
    }
  }
}

TEST_P(QePropertyTest, ExistsForallDuality) {
  std::mt19937_64 rng(GetParam() * 101 + 7);
  std::uniform_int_distribution<int64_t> coeff(-2, 2);
  std::uniform_int_distribution<int> rel_pick(0, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  for (int iter = 0; iter < 10; ++iter) {
    std::vector<Conjunction> disjuncts;
    for (int dj = 0; dj < 2; ++dj) {
      std::vector<LinearAtom> atoms;
      for (int i = 0; i < 2; ++i) {
        Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
        atoms.emplace_back(c, rels[rel_pick(rng)], Rational(coeff(rng)));
      }
      disjuncts.emplace_back(2, std::move(atoms));
    }
    DnfFormula f(2, std::move(disjuncts));
    // forall y f == !(exists y !f), checked semantically.
    DnfFormula lhs = ForallVariable(f, 1);
    DnfFormula rhs = ExistsVariable(f.Negate(), 1).Negate();
    EXPECT_TRUE(AreEquivalent(lhs, rhs)) << f.ToString(kXY);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QePropertyTest,
                         ::testing::Values(19u, 23u, 29u, 31u));

}  // namespace
}  // namespace lcdb
