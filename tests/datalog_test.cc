#include <gtest/gtest.h>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "datalog/spatial_datalog.h"

namespace lcdb {
namespace {

ConstraintDatabase Db1(const std::string& formula) {
  auto f = ParseDnf(formula, {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

TEST(SpatialDatalogTest, NaturalNumbersDiverge) {
  // The paper's Section 1 motivation: N(x) over (R, <, +) has no finitely
  // reachable fixpoint — stage k is {0, 1, ..., k} and keeps growing.
  ConstraintDatabase db = Db1("x = 0");
  auto r = EvaluateDatalog(NaturalNumbersProgram(), db, /*max_iterations=*/8,
                           "N");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_FALSE(r->converged);
  EXPECT_EQ(r->iterations, 8u);
  // Monotone growth of the representation, stage after stage.
  ASSERT_GE(r->stage_sizes.size(), 3u);
  for (size_t i = 1; i < r->stage_sizes.size(); ++i) {
    EXPECT_GT(r->stage_sizes[i], r->stage_sizes[i - 1]);
  }
  // Stage 8 contains exactly the first naturals.
  const DnfFormula& n = r->relations.at("N");
  EXPECT_TRUE(n.Satisfies({Rational(0)}));
  EXPECT_TRUE(n.Satisfies({Rational(5)}));
  EXPECT_FALSE(n.Satisfies({Rational(1, 2)}));
  EXPECT_FALSE(n.Satisfies({Rational(100)}));  // not yet derived
}

TEST(SpatialDatalogTest, DownwardClosureConverges) {
  ConstraintDatabase db = Db1("(x >= 1 & x <= 2) | x = 5");
  auto r = EvaluateDatalog(DownwardClosureProgram(), db, 10, "D");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  EXPECT_LE(r->iterations, 3u);
  auto expected = ParseDnf("x <= 5", {"x"});
  EXPECT_TRUE(AreEquivalent(r->relations.at("D"), *expected));
}

TEST(SpatialDatalogTest, BoundedCounterTerminates) {
  ConstraintDatabase db = Db1("x = 0");
  auto r = EvaluateDatalog(BoundedCounterProgram(4), db, 20, "C");
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  // Stages 0..4 derive one new point each, plus the fixpoint check stage.
  EXPECT_GE(r->iterations, 5u);
  EXPECT_LE(r->iterations, 7u);
  auto expected = ParseDnf("x = 0 | x = 1 | x = 2 | x = 3 | x = 4", {"x"});
  EXPECT_TRUE(AreEquivalent(r->relations.at("C"), *expected));
}

TEST(SpatialDatalogTest, EdbJoinAndProjection) {
  // P(x) :- S(y), x = 2y: scaling through a projection.
  ConstraintDatabase db = Db1("x >= 1 & x <= 2");
  DatalogProgram p;
  p.idb_arities["P"] = 1;
  p.rules.push_back(
      {"P",
       {"x"},
       {{DatalogLiteral::Kind::kEdb, "S", {"y"}, ""},
        {DatalogLiteral::Kind::kConstraint, "", {}, "x = 2y"}}});
  auto r = EvaluateDatalog(p, db, 5);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  auto expected = ParseDnf("x >= 2 & x <= 4", {"x"});
  EXPECT_TRUE(AreEquivalent(r->relations.at("P"), *expected));
}

TEST(SpatialDatalogTest, BinaryPredicateReachability) {
  // R(x, y): y reachable from x by steps of at most 1 within S. On a
  // connected interval this converges to the full square of S (every pair),
  // exercising arity-2 IDB relations.
  ConstraintDatabase db = Db1("x >= 0 & x <= 2");
  DatalogProgram p;
  p.idb_arities["R"] = 2;
  p.rules.push_back(
      {"R",
       {"x", "y"},
       {{DatalogLiteral::Kind::kEdb, "S", {"x"}, ""},
        {DatalogLiteral::Kind::kEdb, "S", {"y"}, ""},
        {DatalogLiteral::Kind::kConstraint, "", {},
         "x - y <= 1 & y - x <= 1"}}});
  p.rules.push_back(
      {"R",
       {"x", "y"},
       {{DatalogLiteral::Kind::kIdb, "R", {"x", "z"}, ""},
        {DatalogLiteral::Kind::kIdb, "R", {"z", "y"}, ""}}});
  auto r = EvaluateDatalog(p, db, 10);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->converged);
  auto expected = ParseDnf("x >= 0 & x <= 2 & y >= 0 & y <= 2", {"x", "y"});
  EXPECT_TRUE(AreEquivalent(r->relations.at("R"), *expected));
}

TEST(SpatialDatalogTest, Validation) {
  ConstraintDatabase db = Db1("x = 0");
  // Undeclared head.
  DatalogProgram bad1;
  bad1.rules.push_back({"Q", {"x"}, {{DatalogLiteral::Kind::kConstraint,
                                      "", {}, "x = 0"}}});
  EXPECT_FALSE(EvaluateDatalog(bad1, db, 3).ok());
  // Head arity mismatch.
  DatalogProgram bad2;
  bad2.idb_arities["Q"] = 2;
  bad2.rules.push_back({"Q", {"x"}, {{DatalogLiteral::Kind::kConstraint,
                                      "", {}, "x = 0"}}});
  EXPECT_FALSE(EvaluateDatalog(bad2, db, 3).ok());
  // EDB arity mismatch.
  DatalogProgram bad3;
  bad3.idb_arities["Q"] = 1;
  bad3.rules.push_back({"Q", {"x"}, {{DatalogLiteral::Kind::kEdb, "S",
                                      {"x", "y"}, ""}}});
  EXPECT_FALSE(EvaluateDatalog(bad3, db, 3).ok());
  // Unknown IDB in a body.
  DatalogProgram bad4;
  bad4.idb_arities["Q"] = 1;
  bad4.rules.push_back({"Q", {"x"}, {{DatalogLiteral::Kind::kIdb, "Z",
                                      {"x"}, ""}}});
  EXPECT_FALSE(EvaluateDatalog(bad4, db, 3).ok());
  // Constraint over an unknown variable.
  DatalogProgram bad5;
  bad5.idb_arities["Q"] = 1;
  bad5.rules.push_back({"Q", {"x"}, {{DatalogLiteral::Kind::kConstraint,
                                      "", {}, "x = w"}}});
  EXPECT_FALSE(EvaluateDatalog(bad5, db, 3).ok());
}

}  // namespace
}  // namespace lcdb
