// Seeded chaos harness (the robustness tentpole's sweep): randomized fault
// injection over every failpoint site, the data/ seed databases and the
// canned query corpus. Each round arms one site with a seeded probability
// window (random skip count) and a random failure code, runs a query, and
// asserts the three resilience contracts:
//
//   1. clean Statuses — an injected fault surfaces as exactly the injected
//      code/message, never a crash, abort or mangled error;
//   2. settled stats — the evaluator's telemetry exports a well-formed
//      metrics snapshot after every outcome, interrupted or not;
//   3. byte-identical post-failure reuse — the same evaluator (resuming
//      from the checkpoint token when one was issued) must then produce
//      the uninterrupted reference answer, byte for byte.
//
// The sweep is deterministic per seed. The seed comes from LCDB_CHAOS_SEED
// (decimal) and is echoed on every run, so any CI failure reproduces with
//   LCDB_CHAOS_SEED=<seed> ./chaos_test
// as EXPERIMENTS.md's chaos-telemetry section documents.

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <memory>
#include <random>
#include <sstream>
#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "engine/session.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {
namespace {

#ifndef LCDB_TEST_DATA_DIR
#define LCDB_TEST_DATA_DIR "data"
#endif

constexpr uint64_t kDefaultSeed = 20260809;
constexpr int kRequiredInjections = 200;

uint64_t ChaosSeed() {
  const char* env = std::getenv("LCDB_CHAOS_SEED");
  if (env != nullptr && *env != '\0') {
    return std::strtoull(env, nullptr, 10);
  }
  return kDefaultSeed;
}

void EchoSeed(uint64_t seed) {
  std::printf("[chaos] seed=%" PRIu64
              " (set LCDB_CHAOS_SEED=%" PRIu64 " to reproduce)\n",
              seed, seed);
  std::fflush(stdout);
}

/// The sites failpoint.h names, spanning every layer from the kernel's
/// decision entry to the plan-executor root. arrangement.split fires during
/// extension *construction*, so it gets its own round shape below.
const char* const kEvalSites[] = {"kernel.decide", "qe.project",
                                  "fixpoint.stage", "closure.build",
                                  "plan.execute"};
const StatusCode kCodes[] = {StatusCode::kResourceExhausted,
                             StatusCode::kDeadlineExceeded,
                             StatusCode::kInternal};

struct ChaosCase {
  ChaosCase(std::string name, std::string text, ConstraintDatabase database)
      : db_name(std::move(name)),
        query_text(std::move(text)),
        db(std::move(database)) {}

  std::string db_name;
  std::string query_text;
  ConstraintDatabase db;
  std::unique_ptr<RegionExtension> ext;
  FormulaPtr query;
  std::string reference;  ///< uninterrupted tree-walk answer
};

std::vector<std::string> CorpusQueries(size_t arity) {
  std::vector<std::string> queries = {
      RegionConnQueryText(),
      RegionConnTcQueryText(false),
      "exists R . (subset(R) & !(bounded(R)))",
  };
  if (arity == 1) {
    queries.push_back("exists R . (subset(R) & in(x; R))");
  } else if (arity == 2) {
    queries.push_back("exists R . (subset(R) & in(x, y; R))");
  }
  return queries;
}

std::vector<ChaosCase> BuildCorpus() {
  std::vector<ChaosCase> cases;
  for (const char* name : {"triangle.lcdb", "comb.lcdb", "intervals.lcdb",
                           "pentagon.lcdb", "wedge.lcdb"}) {
    auto db =
        LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) + "/" + name);
    EXPECT_TRUE(db.ok()) << db.status().ToString();
    if (!db.ok()) continue;
    for (const std::string& text : CorpusQueries(db->arity())) {
      ChaosCase c(name, text, *db);
      auto built = BuildArrangementExtension(c.db);
      EXPECT_TRUE(built.ok()) << built.status().ToString();
      if (!built.ok()) continue;
      c.ext = std::move(built).value();
      auto parsed = ParseQuery(text, c.db.relation_name());
      EXPECT_TRUE(parsed.ok()) << parsed.status().ToString();
      if (!parsed.ok()) continue;
      c.query = std::move(parsed).value();
      Evaluator evaluator(*c.ext);
      auto answer = evaluator.Evaluate(*c.query);
      EXPECT_TRUE(answer.ok()) << answer.status().ToString();
      if (!answer.ok()) continue;
      c.reference = answer->ToString();
      cases.push_back(std::move(c));
    }
  }
  return cases;
}

class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override { DisarmAllFailpoints(); }
};

TEST_F(ChaosTest, SeededInjectionSweep) {
  const uint64_t seed = ChaosSeed();
  EchoSeed(seed);
  std::mt19937_64 rng(seed);
  std::vector<ChaosCase> cases = BuildCorpus();
  ASSERT_FALSE(cases.empty());

  int fired = 0;
  int rounds = 0;
  const int kMaxRounds = 4000;  // backstop; the sweep converges far earlier
  while (fired < kRequiredInjections && rounds < kMaxRounds) {
    ++rounds;
    const ChaosCase& c = cases[rng() % cases.size()];
    SCOPED_TRACE("round " + std::to_string(rounds) + ": " + c.db_name +
                 " :: " + c.query_text);
    const char* site = kEvalSites[rng() % std::size(kEvalSites)];
    const StatusCode code = kCodes[rng() % std::size(kCodes)];
    const uint64_t skip = rng() % 8;
    Evaluator::Options options;
    options.use_bytecode = (rng() % 2) == 0;
    Evaluator evaluator(*c.ext, options);

    ArmFailpoint(site, code, "chaos-injected", skip);
    auto first = evaluator.Evaluate(*c.query);
    DisarmAllFailpoints();
    // Contract 2: telemetry is settled and exportable after any outcome.
    const std::string metrics = evaluator.stats().ToJson();
    ASSERT_FALSE(metrics.empty());

    if (first.ok()) {
      // The armed window was never reached (site not hit skip+1 times):
      // the answer must be the reference, untouched by the arming.
      EXPECT_EQ(first->ToString(), c.reference);
      continue;
    }
    ++fired;
    // Contract 1: the failure is exactly the injected Status.
    EXPECT_EQ(first.status().code(), code);
    EXPECT_NE(first.status().message().find("chaos-injected"),
              std::string::npos)
        << first.status().ToString();
    // Contract 3: the same evaluator, resumed from the checkpoint when the
    // failure carried one, reproduces the reference byte for byte.
    const uint64_t token = first.status().resume_token();
    if (!first.status().IsResourceFailure()) {
      EXPECT_EQ(token, 0u) << "non-resource failure carried a resume token";
    }
    auto second = evaluator.Evaluate(*c.query, token);
    ASSERT_TRUE(second.ok()) << second.status().ToString();
    EXPECT_EQ(second->ToString(), c.reference);
  }
  std::printf("[chaos] fired=%d rounds=%d\n", fired, rounds);
  EXPECT_GE(fired, kRequiredInjections)
      << "sweep did not reach the required injection count";
}

TEST_F(ChaosTest, ExtensionBuildInjection) {
  // The arrangement.split site fires during extension construction, not
  // query evaluation: inject there, require a clean Status from the build
  // boundary, then build clean and match the reference answer.
  const uint64_t seed = ChaosSeed() ^ 0x9e3779b97f4a7c15ull;
  EchoSeed(ChaosSeed());
  std::mt19937_64 rng(seed);
  auto db = LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) +
                                 "/triangle.lcdb");
  ASSERT_TRUE(db.ok());
  Evaluator::Options options;
  for (int round = 0; round < 20; ++round) {
    SCOPED_TRACE("round " + std::to_string(round));
    const StatusCode code = kCodes[rng() % std::size(kCodes)];
    const uint64_t skip = rng() % 4;
    ArmFailpoint("arrangement.split", code, "chaos-injected", skip);
    auto built = BuildArrangementExtension(*db);
    DisarmAllFailpoints();
    if (built.ok()) continue;  // window not reached
    EXPECT_EQ(built.status().code(), code);
    EXPECT_NE(built.status().message().find("chaos-injected"),
              std::string::npos);
    // Post-failure reuse: a clean rebuild works and answers correctly.
    auto clean = BuildArrangementExtension(*db);
    ASSERT_TRUE(clean.ok()) << clean.status().ToString();
    auto truth = EvaluateSentenceText(**clean, RegionConnQueryText());
    ASSERT_TRUE(truth.ok()) << truth.status().ToString();
  }
}

TEST_F(ChaosTest, SessionLevelSweep) {
  // The same storm through QuerySession: persistent injected faults must
  // come back as the clean final Status of an exhausted ladder (with
  // orderly session telemetry), and the session must serve the reference
  // answer immediately after the fault clears. Post-mortem contract: every
  // failed call under a configured postmortem_dir leaves a readable bundle.
  const uint64_t seed = ChaosSeed() + 1;
  EchoSeed(ChaosSeed());
  std::mt19937_64 rng(seed);
  std::vector<ChaosCase> cases = BuildCorpus();
  ASSERT_FALSE(cases.empty());
  const std::string postmortem_dir =
      ::testing::TempDir() + "/lcdb_chaos_postmortems";
  std::filesystem::remove_all(postmortem_dir);
  int failures = 0;
  for (int round = 0; round < 30; ++round) {
    const ChaosCase& c = cases[rng() % cases.size()];
    SCOPED_TRACE("round " + std::to_string(round) + ": " + c.db_name +
                 " :: " + c.query_text);
    SessionOptions options;
    options.eval.use_bytecode = (rng() % 2) == 0;
    options.max_retries = rng() % 3;
    options.quarantine_threshold = 0;  // never quarantine inside the sweep
    options.postmortem_dir = postmortem_dir;
    options.profile.sample_every = 2;  // exercise the profiler under chaos
    QuerySession session(*c.ext, options);
    const char* site = kEvalSites[rng() % std::size(kEvalSites)];
    const StatusCode code = kCodes[rng() % std::size(kCodes)];
    ArmFailpoint(site, code, "chaos-injected", rng() % 4);
    auto stormy = session.Evaluate(c.query_text);
    DisarmAllFailpoints();
    if (!stormy.ok()) {
      EXPECT_EQ(stormy.status().code(), code);
      ++failures;
      // The bundle is on disk, names the injected status, and carries the
      // schema marker the CI validator pins.
      EXPECT_EQ(session.postmortems_written(), 1u);
      const std::string& path = session.last_postmortem_path();
      ASSERT_FALSE(path.empty());
      std::ifstream in(path);
      ASSERT_TRUE(in.good()) << "missing bundle " << path;
      std::stringstream buffer;
      buffer << in.rdbuf();
      const std::string bundle = buffer.str();
      EXPECT_NE(bundle.find("\"schema\":\"lcdb.postmortem.v1\""),
                std::string::npos);
      EXPECT_NE(bundle.find("chaos-injected"), std::string::npos);
    } else {
      EXPECT_EQ(stormy->ToString(), c.reference);
      EXPECT_EQ(session.postmortems_written(), 0u);
    }
    ASSERT_FALSE(session.Metrics().ToJson().empty());
    auto after = session.Evaluate(c.query_text);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    EXPECT_EQ(after->ToString(), c.reference);
  }
  std::printf("[chaos] session failures with bundles: %d\n", failures);
}

}  // namespace
}  // namespace lcdb
