// Fault-injection matrix (util/failpoint.h): every named site, on both
// execution paths, must surface an injected failure as a clean Status at
// the Evaluate boundary — and after disarming, the same evaluator must
// answer byte-identically to a fresh one, proving the unwind left every
// kernel cache and memo table consistent.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "util/failpoint.h"
#include "util/interrupt.h"

namespace lcdb {
namespace {

/// RAII: no test leaves failpoints armed for its neighbors.
struct FailpointGuard {
  ~FailpointGuard() { DisarmAllFailpoints(); }
};

TEST(FailpointTest, UnarmedSitesCostNothingAndCountNothing) {
  FailpointGuard guard;
  ConstraintDatabase db = MakeComb(1, true);
  auto ext = MakeArrangementExtension(db);
  auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  // Hit accounting is active only while something is armed.
  EXPECT_EQ(FailpointHitCount("kernel.decide"), 0u);
}

TEST(FailpointTest, ArmDisarmLifecycle) {
  FailpointGuard guard;
  ArmFailpoint("kernel.decide", StatusCode::kInternal, "boom");
  ConstraintDatabase db = MakeComb(1, true);
  EXPECT_THROW(MakeArrangementExtension(db), QueryInterrupt);
  EXPECT_GE(FailpointHitCount("kernel.decide"), 1u);
  DisarmFailpoint("kernel.decide");
  auto ext = MakeArrangementExtension(db);  // healthy again
  EXPECT_GT(ext->num_regions(), 0u);
}

TEST(FailpointTest, SkipHitsDelaysTheFailure) {
  FailpointGuard guard;
  ConstraintDatabase db = MakeComb(1, true);
  auto ext = MakeArrangementExtension(db);
  // The first 5 kernel decisions succeed; the 6th throws, mid-query. (An
  // element projection is used because conn's region atoms are precomputed
  // and would never reach the kernel at eval time.)
  ArmFailpoint("kernel.decide", StatusCode::kInternal, "late boom",
               /*skip_hits=*/5);
  auto r = EvaluateSentenceText(*ext, "exists x y . (S(x, y) & x < y)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  EXPECT_GE(FailpointHitCount("kernel.decide"), 6u);
}

TEST(FailpointTest, ArrangementSplitFiresAtBuildTime) {
  FailpointGuard guard;
  // The arrangement builds eagerly in MakeArrangementExtension — outside
  // Evaluate's recovery boundary — so the interrupt reaches the caller as
  // an exception; lcdbsh's command loop is the catch there.
  ArmFailpoint("arrangement.split", StatusCode::kResourceExhausted,
               "split fault");
  ConstraintDatabase db = MakeComb(1, true);
  try {
    MakeArrangementExtension(db);
    FAIL() << "expected QueryInterrupt";
  } catch (const QueryInterrupt& interrupt) {
    EXPECT_EQ(interrupt.status().code(), StatusCode::kResourceExhausted);
    EXPECT_NE(std::string(interrupt.what()).find("arrangement.split"),
              std::string::npos);
  }
}

/// One matrix cell: inject at `site`, confirm the query dies with the
/// injected code, disarm, and confirm the surviving evaluator's answer is
/// byte-identical to a fresh evaluator's.
void InjectAndRecover(const std::string& site, const std::string& query_text,
                      bool use_plan) {
  FailpointGuard guard;
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto parsed = ParseQuery(query_text, db.relation_name());
  ASSERT_TRUE(parsed.ok()) << query_text;
  Evaluator::Options options;
  options.use_plan = use_plan;

  // A fresh kernel isolates this cell from cross-test cache state: the
  // injected unwind crosses *this* kernel's caches, and the byte-identical
  // check below proves they stayed consistent.
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);

  Evaluator survivor(*ext, options);
  ArmFailpoint(site, StatusCode::kInternal, "injected fault");
  auto killed = survivor.Evaluate(**parsed);
  DisarmFailpoint(site);
  ASSERT_FALSE(killed.ok())
      << site << " (use_plan=" << use_plan << ") did not fire";
  EXPECT_EQ(killed.status().code(), StatusCode::kInternal) << site;
  EXPECT_NE(killed.status().message().find(site), std::string::npos);
  EXPECT_GE(FailpointHitCount(site), 1u) << site;

  auto after = survivor.Evaluate(**parsed);
  ASSERT_TRUE(after.ok()) << site << ": " << after.status().ToString();
  Evaluator fresh(*ext, options);
  auto reference = fresh.Evaluate(**parsed);
  ASSERT_TRUE(reference.ok());
  EXPECT_EQ(after->ToString(), reference->ToString())
      << site << " (use_plan=" << use_plan << ")";
}

// conn exercises kernel decisions, QE and the LFP; the TC query exercises
// closure building. plan.execute exists only on the plan path.

TEST(FailpointTest, KernelDecidePlanPath) {
  InjectAndRecover("kernel.decide", "exists x . S(x, y)", true);
}
TEST(FailpointTest, KernelDecideLegacyPath) {
  InjectAndRecover("kernel.decide", "exists x . S(x, y)", false);
}

TEST(FailpointTest, QeProjectPlanPath) {
  InjectAndRecover("qe.project", "exists x . S(x, y)", true);
}
TEST(FailpointTest, QeProjectLegacyPath) {
  InjectAndRecover("qe.project", "exists x . S(x, y)", false);
}

TEST(FailpointTest, FixpointStagePlanPath) {
  InjectAndRecover("fixpoint.stage", RegionConnQueryText(), true);
}
TEST(FailpointTest, FixpointStageLegacyPath) {
  InjectAndRecover("fixpoint.stage", RegionConnQueryText(), false);
}

TEST(FailpointTest, ClosureBuildPlanPath) {
  InjectAndRecover("closure.build",
                   "exists A B . ([tc R ; R' : adj(R, R')](A ; B))", true);
}
TEST(FailpointTest, ClosureBuildLegacyPath) {
  InjectAndRecover("closure.build",
                   "exists A B . ([tc R ; R' : adj(R, R')](A ; B))", false);
}

TEST(FailpointTest, PlanExecutePlanPath) {
  InjectAndRecover("plan.execute", RegionConnQueryText(), true);
}

TEST(FailpointTest, MidFixpointInjectionLeavesCachesConsistent) {
  // Sharper variant of the matrix: die on the *third* Kleene stage, deep
  // inside the LFP, with the shared default kernel already warm — the next
  // evaluation must still be byte-identical to a fresh evaluator's.
  for (bool use_plan : {true, false}) {
    FailpointGuard guard;
    ConstraintDatabase db = MakeComb(2, true);
    auto ext = MakeArrangementExtension(db);
    auto parsed = ParseQuery(RegionConnQueryText(), db.relation_name());
    ASSERT_TRUE(parsed.ok());
    Evaluator::Options options;
    options.use_plan = use_plan;
    Evaluator survivor(*ext, options);
    ArmFailpoint("fixpoint.stage", StatusCode::kInternal, "mid-fixpoint",
                 /*skip_hits=*/2);
    auto killed = survivor.Evaluate(**parsed);
    DisarmAllFailpoints();
    ASSERT_FALSE(killed.ok());
    auto after = survivor.Evaluate(**parsed);
    ASSERT_TRUE(after.ok()) << after.status().ToString();
    Evaluator fresh(*ext, options);
    auto reference = fresh.Evaluate(**parsed);
    ASSERT_TRUE(reference.ok());
    EXPECT_EQ(after->ToString(), reference->ToString())
        << "use_plan=" << use_plan;
  }
}

TEST(FailpointTest, ExplainIsAlsoRecoverable) {
  FailpointGuard guard;
  ConstraintDatabase db = MakeComb(1, true);
  auto ext = MakeArrangementExtension(db);
  auto parsed =
      ParseQuery("exists x . (S(x, y) & x > 0 & x < 1)", db.relation_name());
  ASSERT_TRUE(parsed.ok());
  Evaluator evaluator(*ext);
  // The optimizer's folding pass consults the kernel (DNF simplification of
  // the relation's constant formula), so injection reaches Explain too —
  // and must come back as a Status, not an abort.
  ArmFailpoint("kernel.decide", StatusCode::kInternal, "explain fault");
  auto plan = evaluator.Explain(**parsed);
  DisarmAllFailpoints();
  ASSERT_FALSE(plan.ok());
  EXPECT_EQ(plan.status().code(), StatusCode::kInternal);
  auto healthy = evaluator.Explain(**parsed);
  EXPECT_TRUE(healthy.ok()) << healthy.status().ToString();
}

}  // namespace
}  // namespace lcdb
