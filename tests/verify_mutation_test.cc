// Mutation harness for the tier-3 static verifiers: seeded mutants over the
// compiled corpus (every data/*.lcdb seed database x the canned queries from
// core/queries.h) must each be rejected by VerifyPlan / VerifyBytecode with
// the expected LCDB012 sub-reason, and the *unmutated* corpus must verify
// cleanly and evaluate identically on the tree and bytecode backends (the
// zero-false-positive half of the contract).
//
// The mutant sample is seeded from LCDB_VERIFY_SEED (CI passes
// GITHUB_RUN_ID, so every CI run probes a different sample); any seed must
// pass. Mutation operators edit one instruction / one plan node in place,
// verify, then restore — a final re-verification per program proves the
// restore was exact. LCDB_TEST_DATA_DIR is injected by CMake.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <memory>
#include <random>
#include <string>
#include <string_view>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analysis/bytecode_verify.h"
#include "analysis/plan_verify.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "core/typecheck.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "plan/bytecode.h"
#include "plan/optimizer.h"
#include "plan/plan_ir.h"
#include "plan/planner.h"
#include "util/status.h"

namespace lcdb {
namespace {

#ifndef LCDB_TEST_DATA_DIR
#define LCDB_TEST_DATA_DIR "data"
#endif

/// At most this many mutants per (program, operator) pair; positions are
/// sampled with the run seed so different CI runs probe different sites.
constexpr size_t kSitesPerOperator = 4;

uint64_t RunSeed() {
  static const uint64_t seed = [] {
    uint64_t s = 0xc0ffee;  // fixed default for local runs
    if (const char* env = std::getenv("LCDB_VERIFY_SEED");
        env != nullptr && *env != '\0') {
      s = std::strtoull(env, nullptr, 10);
    }
    std::cerr << "[verify_mutation] LCDB_VERIFY_SEED=" << s << "\n";
    return s;
  }();
  return seed;
}

/// The corpus: every seed database in data/ with every canned query that
/// typechecks against it (mirrors the analyzer / plan-equivalence sweeps).
struct CorpusEntry {
  std::string label;
  std::string text;
  std::shared_ptr<RegionExtension> ext;
};

void BuildCorpus(std::vector<CorpusEntry>* corpus) {
  for (const char* name : {"comb.lcdb", "intervals.lcdb", "pentagon.lcdb",
                           "triangle.lcdb", "wedge.lcdb"}) {
    auto db =
        LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) + "/" + name);
    ASSERT_TRUE(db.ok()) << db.status().ToString();
    std::shared_ptr<RegionExtension> ext = MakeArrangementExtension(*db);
    const std::vector<std::string> texts = {
        RegionConnQueryText(),
        RegionConnTcQueryText(false),
        RegionConnTcQueryText(true),
        ConnQueryText(db->arity()),
        RiverPollutionQueryText(),
        "exists R R' . [rbit x : x > 0](R, R')",
    };
    for (const std::string& text : texts) {
      auto query = ParseQuery(text, db->relation_name());
      if (!query.ok()) continue;
      auto info = TypeCheck(**query, *db);
      if (!info.ok()) continue;  // e.g. arity-mismatched canned query
      corpus->push_back({std::string(name) + " :: " + text, text, ext});
    }
  }
  ASSERT_FALSE(corpus->empty());
}

CompiledPlan CompileEntry(const CorpusEntry& entry) {
  auto query = ParseQuery(entry.text, entry.ext->database().relation_name());
  EXPECT_TRUE(query.ok()) << entry.label;
  auto info = TypeCheck(**query, entry.ext->database());
  EXPECT_TRUE(info.ok()) << entry.label;
  CompiledPlan plan = BuildPlan(**query, *info, *entry.ext);
  PlanPassStats pass_stats;
  OptimizePlan(&plan, &pass_stats);
  return plan;
}

bool MessageMatches(const std::string& message,
                    const std::vector<std::string>& expected) {
  for (const std::string& want : expected) {
    if (message.find(want) != std::string::npos) return true;
  }
  return false;
}

/// Fisher-Yates shuffle, then keep the first kSitesPerOperator sites.
template <typename T>
std::vector<T> Sample(std::vector<T> sites, std::mt19937_64& rng) {
  for (size_t i = sites.size(); i > 1; --i) {
    std::uniform_int_distribution<size_t> pick(0, i - 1);
    std::swap(sites[i - 1], sites[pick(rng)]);
  }
  if (sites.size() > kSitesPerOperator) sites.resize(kSitesPerOperator);
  return sites;
}

// ---------------------------------------------------------------------------
// Bytecode mutation operators. Each edits one VmInstr in place; the caller
// snapshots and restores it around the verification run.

struct CodeSite {
  size_t proc = 0;
  size_t pc = 0;
};

struct BytecodeMutation {
  const char* name;
  std::function<bool(const BytecodeProgram&, const VmProc&, size_t pc,
                     const VmInstr&)>
      eligible;
  std::function<void(const BytecodeProgram&, const VmProc&, VmInstr&)> apply;
  /// Any one of these substrings in the rejection message kills the mutant.
  std::vector<std::string> expected;
};

bool WritesSReg(VmOp op) {
  switch (op) {
    case VmOp::kEnterSym:
    case VmOp::kLeaveSym:
    case VmOp::kConstFormula:
    case VmOp::kInRegion:
    case VmOp::kLiftBool:
    case VmOp::kNegSym:
    case VmOp::kAndSym:
    case VmOp::kOrSym:
    case VmOp::kIffSym:
    case VmOp::kLoadTrueSym:
    case VmOp::kLoadFalseSym:
    case VmOp::kHullFinish:
    case VmOp::kQeExists:
    case VmOp::kQeForall:
    case VmOp::kCallSym:
      return true;
    default:
      return false;
  }
}

bool WritesBReg(VmOp op) {
  switch (op) {
    case VmOp::kEnterBool:
    case VmOp::kLeaveBool:
    case VmOp::kLoadBool:
    case VmOp::kNotBool:
    case VmOp::kEqBool:
    case VmOp::kRegionAtom:
    case VmOp::kSetMember:
    case VmOp::kFixpointMember:
    case VmOp::kClosureMember:
    case VmOp::kRbitFinish:
    case VmOp::kNonEmpty:
    case VmOp::kCallBool:
      return true;
    default:
      return false;
  }
}

bool IsJump(VmOp op) {
  switch (op) {
    case VmOp::kJmp:
    case VmOp::kJmpIfSymFalse:
    case VmOp::kJmpIfSymTrue:
    case VmOp::kJmpIfFalseBool:
    case VmOp::kJmpIfTrueBool:
      return true;
    default:
      return false;
  }
}

bool IsCheckpointSource(VmOp op) {
  switch (op) {
    case VmOp::kEnterSym:
    case VmOp::kEnterBool:
    case VmOp::kFixpointMember:
    case VmOp::kClosureMember:
    case VmOp::kCallSym:
    case VmOp::kCallBool:
      return true;
    default:
      return false;
  }
}

std::vector<BytecodeMutation> BytecodeMutations() {
  std::vector<BytecodeMutation> ops;
  // Flip a destination register index out of the register file (the
  // "flip register indices" class of the acceptance experiment).
  ops.push_back(
      {"sreg-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return WritesSReg(in.op);
       },
       [](const BytecodeProgram&, const VmProc& proc, VmInstr& in) {
         in.a = proc.num_sregs + 17;
       },
       {"s-register out of range"}});
  ops.push_back(
      {"breg-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return WritesBReg(in.op);
       },
       [](const BytecodeProgram&, const VmProc& proc, VmInstr& in) {
         in.a = proc.num_bregs + 17;
       },
       {"b-register out of range"}});
  ops.push_back(
      {"ireg-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kLoadImm || in.op == VmOp::kLoopHead;
       },
       [](const BytecodeProgram&, const VmProc& proc, VmInstr& in) {
         in.a = proc.num_iregs + 3;
       },
       {"i-register out of range"}});
  // Aim a jump outside the proc.
  ops.push_back(
      {"jump-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return IsJump(in.op);
       },
       [](const BytecodeProgram&, const VmProc& proc, VmInstr& in) {
         in.b = static_cast<uint32_t>(proc.code.size()) + 9;
       },
       {"jump target out of range"}});
  // Turn a forward jump backward: only loop.next may jump backward.
  ops.push_back(
      {"jump-backward",
       [](const BytecodeProgram&, const VmProc&, size_t pc,
          const VmInstr& in) { return IsJump(in.op) && pc > 0; },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) { in.b = 0; },
       {"backward jump is not a loop back-edge"}});
  // Drop a Leave: replace it with an accounting no-op, so the matching
  // Enter's bracket never closes on any path.
  ops.push_back(
      {"drop-leave",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kLeaveSym || in.op == VmOp::kLeaveBool;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in = VmInstr{};
         in.op = VmOp::kBeginOp;
         in.imm = 0;
       },
       {"bracket"}});
  // Retype an Enter: its Leave no longer matches the open bracket, the
  // destination lands outside the b-register file, or the memo-hit edge
  // defines the wrong register file and a downstream read of the s-value
  // (or the proc's result register) is flagged undefined.
  ops.push_back(
      {"retype-enter",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kEnterSym;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in.op = VmOp::kEnterBool;
       },
       {"bracket", "register out of range", "undefined"}});
  // Corrupt side-table indices.
  ops.push_back(
      {"memo-desc-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         switch (in.op) {
           case VmOp::kEnterSym:
           case VmOp::kEnterBool:
           case VmOp::kLeaveSym:
           case VmOp::kLeaveBool:
             return in.imm != 0;
           default:
             return false;
         }
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         in.imm = static_cast<uint32_t>(program.memo_descs.size()) + 5;
       },
       {"memo descriptor id out of range"}});
  ops.push_back(
      {"region-slot-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kInRegion || in.op == VmOp::kRegionAtom ||
                in.op == VmOp::kSetRegion;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         const uint32_t bad =
             static_cast<uint32_t>(program.region_slot_names.size()) + 2;
         if (in.op == VmOp::kSetRegion) {
           in.a = bad;
         } else {
           in.b = bad;
         }
       },
       {"region slot out of range"}});
  ops.push_back(
      {"set-slot-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kSetMember;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         in.b = static_cast<uint32_t>(program.set_slot_names.size()) + 2;
       },
       {"set slot out of range"}});
  ops.push_back(
      {"slot-list-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kSetMember;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         in.imm = static_cast<uint32_t>(program.slot_lists.size()) + 2;
       },
       {"slot-list id out of range"}});
  ops.push_back(
      {"site-id-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kFixpointMember ||
                in.op == VmOp::kClosureMember || in.op == VmOp::kRbitFinish;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         switch (in.op) {
           case VmOp::kFixpointMember:
             in.imm =
                 static_cast<uint32_t>(program.fixpoint_sites.size()) + 1;
             break;
           case VmOp::kClosureMember:
             in.imm = static_cast<uint32_t>(program.closure_sites.size()) + 1;
             break;
           default:
             in.imm = static_cast<uint32_t>(program.rbit_sites.size()) + 1;
             break;
         }
       },
       {"site id out of range"}});
  ops.push_back(
      {"icache-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kNonEmpty || in.op == VmOp::kRbitFinish;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         in.c = static_cast<uint32_t>(program.num_icache_slots) + 1;
       },
       {"inline-cache slot out of range"}});
  ops.push_back(
      {"proc-id-out-of-range",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kCallSym || in.op == VmOp::kCallBool;
       },
       [](const BytecodeProgram& program, const VmProc&, VmInstr& in) {
         in.imm = static_cast<uint32_t>(program.procs.size()) + 1;
       },
       {"proc id out of range"}});
  // Retype a call: the callee's mode no longer matches (or the destination
  // register lands outside the other register file).
  ops.push_back(
      {"retype-call",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kCallSym || in.op == VmOp::kCallBool;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in.op = in.op == VmOp::kCallSym ? VmOp::kCallBool : VmOp::kCallSym;
       },
       {"mode confusion", "register out of range"}});
  // Retarget a loop back-edge off its loop.head.
  ops.push_back(
      {"retarget-back-edge",
       [](const BytecodeProgram&, const VmProc&, size_t pc,
          const VmInstr& in) {
         return in.op == VmOp::kLoopNext && in.b < pc;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) { in.b += 1; },
       {"loop back-edge", "jump target out of range"}});
  // Flip the back-edge counter register off the head's counter.
  ops.push_back(
      {"back-edge-counter-flip",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kLoopNext;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) { in.a += 1; },
       {"loop back-edge counter mismatch", "i-register out of range"}});
  // Strip the governor stride from a loop whose body has no other
  // checkpoint source (the "strip strides" class): the cycle becomes
  // governor-invisible and the verifier must prove that. The eligible site
  // is the back-edge; the *head* it targets is the instruction mutated
  // (see mutate_pc in MutateBytecode).
  ops.push_back(
      {"strip-stride",
       [](const BytecodeProgram&, const VmProc& proc, size_t pc,
          const VmInstr& in) {
         if (in.op != VmOp::kLoopNext || in.b >= pc) return false;
         const VmInstr& head = proc.code[in.b];
         if (head.op != VmOp::kLoopHead || head.imm == 0) return false;
         for (size_t body = in.b + 1; body < pc; ++body) {
           if (IsCheckpointSource(proc.code[body].op)) return false;
         }
         return true;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) { in.imm = 0; },
       {"loop without a governor checkpoint"}});
  // Swap the terminator class: ret only in callee procs, halt only in the
  // entry proc.
  ops.push_back(
      {"ret-in-entry",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kHalt;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in.op = VmOp::kRet;
       },
       {"ret in the entry proc"}});
  ops.push_back(
      {"halt-in-callee",
       [](const BytecodeProgram&, const VmProc&, size_t, const VmInstr& in) {
         return in.op == VmOp::kRet;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in.op = VmOp::kHalt;
       },
       {"halt outside the entry proc"}});
  // Make the terminator fall through: control falls off the end.
  ops.push_back(
      {"fall-off-end",
       [](const BytecodeProgram&, const VmProc& proc, size_t pc,
          const VmInstr& in) {
         return pc + 1 == proc.code.size() &&
                (in.op == VmOp::kRet || in.op == VmOp::kHalt);
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in = VmInstr{};
         in.op = VmOp::kBeginOp;
         in.imm = 0;
       },
       {"control falls off the end"}});
  // Replace the entry instruction with a read: nothing is defined at proc
  // entry, so the typestate dataflow must flag the use (the
  // defined-before-use / "retype registers" class).
  ops.push_back(
      {"undefined-sread-at-entry",
       [](const BytecodeProgram&, const VmProc& proc, size_t pc,
          const VmInstr& in) {
         return pc == 0 && proc.num_sregs > 0 && in.op != VmOp::kLoopHead;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in = VmInstr{};
         in.op = VmOp::kNegSym;  // reads s0, which is undefined at entry
         in.a = 0;
       },
       {"read of undefined s-register", "control falls off the end"}});
  ops.push_back(
      {"undefined-bread-at-entry",
       [](const BytecodeProgram&, const VmProc& proc, size_t pc,
          const VmInstr& in) {
         return pc == 0 && proc.num_bregs > 0 && in.op != VmOp::kLoopHead;
       },
       [](const BytecodeProgram&, const VmProc&, VmInstr& in) {
         in = VmInstr{};
         in.op = VmOp::kNotBool;  // reads b0, which is undefined at entry
         in.a = 0;
       },
       {"read of undefined b-register", "control falls off the end"}});
  return ops;
}

/// Runs every bytecode mutation operator against one program. Returns the
/// number of mutants generated; EXPECTs that each one is killed with the
/// right sub-reason and that the restored program verifies cleanly.
size_t MutateBytecode(BytecodeProgram& program, const std::string& label,
                      std::mt19937_64& rng) {
  size_t mutants = 0;
  for (const BytecodeMutation& mutation : BytecodeMutations()) {
    std::vector<CodeSite> sites;
    for (size_t p = 0; p < program.procs.size(); ++p) {
      const VmProc& proc = program.procs[p];
      for (size_t pc = 0; pc < proc.code.size(); ++pc) {
        if (mutation.eligible(program, proc, pc, proc.code[pc])) {
          sites.push_back({p, pc});
        }
      }
    }
    for (const CodeSite& site : Sample(std::move(sites), rng)) {
      VmProc& proc = program.procs[site.proc];
      const size_t mutate_pc =
          std::string_view(mutation.name) == "strip-stride"
              ? proc.code[site.pc].b
              : site.pc;
      const VmInstr snapshot = proc.code[mutate_pc];
      mutation.apply(program, proc, proc.code[mutate_pc]);
      BytecodeVerifyResult verdict = VerifyBytecode(program);
      EXPECT_FALSE(verdict.status.ok())
          << label << ": mutant survived operator " << mutation.name
          << " at proc " << site.proc << " pc " << site.pc;
      if (!verdict.status.ok()) {
        EXPECT_TRUE(
            MessageMatches(verdict.status.message(), mutation.expected))
            << label << ": operator " << mutation.name
            << " killed with the wrong sub-reason:\n"
            << verdict.status.ToString();
      }
      proc.code[mutate_pc] = snapshot;
      ++mutants;
    }
  }
  // The restores must be exact: the unmutated program still verifies.
  EXPECT_TRUE(VerifyBytecode(program).status.ok()) << label;
  return mutants;
}

// ---------------------------------------------------------------------------
// Plan mutation operators: mutate one node field in place, verify, restore.

struct PlanMutation {
  const char* name;
  std::function<bool(const PlanNode&)> eligible;
  /// Mutates the node and returns the undo closure.
  std::function<std::function<void()>(PlanNode&)> apply;
  std::vector<std::string> expected;
};

std::vector<PlanMutation> PlanMutations() {
  std::vector<PlanMutation> ops;
  // Stale annotation: clear a nonempty free-region set (would corrupt memo
  // keys silently at runtime).
  ops.push_back({"clear-free-region",
                 [](const PlanNode& n) { return !n.free_region.empty(); },
                 [](PlanNode& n) -> std::function<void()> {
                   auto saved = n.free_region;
                   n.free_region.clear();
                   return [&n, saved] { n.free_region = saved; };
                 },
                 {"annotation mismatch"}});
  ops.push_back({"bump-est-fanout",
                 [](const PlanNode&) { return true; },
                 [](PlanNode& n) -> std::function<void()> {
                   const size_t saved = n.est_fanout;
                   n.est_fanout = saved + 17;
                   return [&n, saved] { n.est_fanout = saved; };
                 },
                 {"annotation mismatch"}});
  // Ill-formed cache key: cache-mark a constant.
  ops.push_back({"cache-mark-constant",
                 [](const PlanNode& n) {
                   return (n.op == PlanOp::kConstFormula ||
                           n.op == PlanOp::kConstBool) &&
                          n.cache == CachePolicy::kNone;
                 },
                 [](PlanNode& n) -> std::function<void()> {
                   n.cache = CachePolicy::kByRegionKey;
                   return [&n] { n.cache = CachePolicy::kNone; };
                 },
                 {"cache key ill-formed"}});
  // Missing binder on a region quantifier.
  ops.push_back({"clear-region-binder",
                 [](const PlanNode& n) {
                   return n.op == PlanOp::kExpandExists ||
                          n.op == PlanOp::kExpandForall ||
                          n.op == PlanOp::kAnyRegion ||
                          n.op == PlanOp::kAllRegion;
                 },
                 [](PlanNode& n) -> std::function<void()> {
                   auto saved = n.region_var;
                   n.region_var.clear();
                   return [&n, saved] { n.region_var = saved; };
                 },
                 {"missing binder"}});
  // Mode confusion: swap a symbolic connective for its boolean twin, so
  // its (symbolic) children no longer match the operator's mode.
  ops.push_back({"retype-connective",
                 [](const PlanNode& n) {
                   return n.op == PlanOp::kAndSym || n.op == PlanOp::kOrSym;
                 },
                 [](PlanNode& n) -> std::function<void()> {
                   const PlanOp saved = n.op;
                   n.op = saved == PlanOp::kAndSym ? PlanOp::kAndBool
                                                   : PlanOp::kOrBool;
                   return [&n, saved] { n.op = saved; };
                 },
                 {"mode confusion"}});
  return ops;
}

/// Preorder over the plan DAG, each distinct node once.
void CollectNodes(PlanNode* node, std::unordered_set<PlanNode*>* seen,
                  std::vector<PlanNode*>* out) {
  if (node == nullptr || !seen->insert(node).second) return;
  out->push_back(node);
  for (const PlanPtr& child : node->children) {
    CollectNodes(child.get(), seen, out);
  }
}

size_t MutatePlan(CompiledPlan& plan, const std::string& label,
                  std::mt19937_64& rng) {
  std::vector<PlanNode*> nodes;
  std::unordered_set<PlanNode*> seen;
  CollectNodes(plan.root.get(), &seen, &nodes);
  size_t mutants = 0;
  for (const PlanMutation& mutation : PlanMutations()) {
    std::vector<PlanNode*> sites;
    for (PlanNode* node : nodes) {
      if (mutation.eligible(*node)) sites.push_back(node);
    }
    for (PlanNode* node : Sample(std::move(sites), rng)) {
      std::function<void()> undo = mutation.apply(*node);
      Status verdict = VerifyPlan(plan, "mutation");
      EXPECT_FALSE(verdict.ok())
          << label << ": plan mutant survived operator " << mutation.name
          << " on " << PlanOpName(node->op);
      if (!verdict.ok()) {
        EXPECT_TRUE(MessageMatches(verdict.message(), mutation.expected))
            << label << ": plan operator " << mutation.name
            << " killed with the wrong sub-reason:\n"
            << verdict.ToString();
      }
      undo();
      ++mutants;
    }
  }
  EXPECT_TRUE(VerifyPlan(plan, "mutation").ok()) << label;
  return mutants;
}

// ---------------------------------------------------------------------------

TEST(VerifyMutationTest, CorpusHasNoFalsePositivesOnEitherBackend) {
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  std::vector<CorpusEntry> corpus;
  BuildCorpus(&corpus);
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.label);
    // Static acceptance.
    CompiledPlan plan = CompileEntry(entry);
    EXPECT_TRUE(VerifyPlan(plan, "corpus").ok());
    BytecodeProgram program = CompileToBytecode(plan);
    BytecodeVerifyResult verdict = VerifyBytecode(program);
    EXPECT_TRUE(verdict.status.ok()) << verdict.status.ToString();
    // End-to-end acceptance with the verifier gates armed, tree vs VM.
    Evaluator::Options options;
    auto tree = EvaluateQueryText(*entry.ext, entry.text, options);
    options.use_bytecode = true;
    auto vm = EvaluateQueryText(*entry.ext, entry.text, options);
    ASSERT_TRUE(tree.ok()) << tree.status().ToString();
    ASSERT_TRUE(vm.ok()) << vm.status().ToString();
    EXPECT_EQ(tree->ToString(), vm->ToString());
  }
}

TEST(VerifyMutationTest, SeededMutantsAllKilled) {
  ConstraintKernel kernel;
  ScopedKernel scoped(kernel);
  std::mt19937_64 rng(RunSeed());
  std::vector<CorpusEntry> corpus;
  BuildCorpus(&corpus);
  size_t total = 0;
  for (const CorpusEntry& entry : corpus) {
    SCOPED_TRACE(entry.label);
    CompiledPlan plan = CompileEntry(entry);
    total += MutatePlan(plan, entry.label, rng);
    BytecodeProgram program = CompileToBytecode(plan);
    ASSERT_TRUE(VerifyBytecode(program).status.ok()) << entry.label;
    total += MutateBytecode(program, entry.label, rng);
  }
  std::cerr << "[verify_mutation] mutants=" << total << "\n";
  EXPECT_GE(total, 300u);
}

}  // namespace
}  // namespace lcdb
