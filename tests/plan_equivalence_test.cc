// Equivalence harness for the compile -> optimize -> execute pipeline: every
// seed database in data/ and every canned query from core/queries.h must
// produce *byte-identical* QueryAnswer formulas through
//   (a) the legacy single-pass tree walk (Options::use_plan = false, kept
//       for one release as the oracle),
//   (b) the raw plan (use_plan = true, optimize = false),
//   (c) the optimized plan (use_plan = true, optimize = true), and
//   (d) the bytecode VM over the optimized plan (use_bytecode = true),
//       traced and untraced — tracing must never change an answer.
// The optimizer's contract is representation preservation, not mere logical
// equivalence, so the comparison is on ToString() output.
// LCDB_TEST_DATA_DIR is injected by CMake.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/io.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "engine/trace.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {
namespace {

#ifndef LCDB_TEST_DATA_DIR
#define LCDB_TEST_DATA_DIR "data"
#endif

ConstraintDatabase Load(const std::string& name) {
  auto db = LoadDatabaseFromFile(std::string(LCDB_TEST_DATA_DIR) + "/" + name);
  EXPECT_TRUE(db.ok()) << db.status().ToString();
  return *db;
}

std::string AnswerVia(const RegionExtension& ext, const FormulaNode& query,
                      bool use_plan, bool optimize,
                      bool use_bytecode = false) {
  Evaluator::Options options;
  options.use_plan = use_plan;
  options.optimize = optimize;
  options.use_bytecode = use_bytecode;
  Evaluator evaluator(ext, options);
  auto answer = evaluator.Evaluate(query);
  EXPECT_TRUE(answer.ok()) << answer.status().ToString();
  if (!answer.ok()) return "<error>";
  return answer->ToString();
}

/// `check_raw` additionally runs the unoptimized plan, which executes with
/// no subformula caching at all — skipped for the workloads where that
/// ablation is minutes-expensive (it is still covered on the cheap ones).
void ExpectAllModesAgree(const RegionExtension& ext, const std::string& text,
                         bool check_raw = true) {
  auto query = ParseQuery(text, ext.database().relation_name());
  ASSERT_TRUE(query.ok()) << text << "\n" << query.status().ToString();
  const std::string legacy = AnswerVia(ext, **query, false, true);
  if (check_raw) {
    EXPECT_EQ(legacy, AnswerVia(ext, **query, true, false))
        << "raw plan diverges on: " << text;
  }
  EXPECT_EQ(legacy, AnswerVia(ext, **query, true, true))
      << "optimized plan diverges on: " << text;
  EXPECT_EQ(legacy, AnswerVia(ext, **query, true, true, true))
      << "bytecode VM diverges on: " << text;
  {
    // Traced VM run: span emission sits on the dispatch hot path, so it is
    // swept too — tracing must be observation only.
    QueryTracer tracer;
    ScopedTracer scoped(tracer);
    EXPECT_EQ(legacy, AnswerVia(ext, **query, true, true, true))
        << "traced bytecode VM diverges on: " << text;
  }
}

/// Queries exercising every operator family, parameterized on the
/// database's arity (element tuples must match it).
std::vector<std::string> QueriesForArity(size_t arity) {
  std::vector<std::string> queries = {
      RegionConnQueryText(),
      RegionConnTcQueryText(false),
      RegionConnTcQueryText(true),
      "exists R . (subset(R) & !(bounded(R)))",
      "forall R . (subset(R) -> exists R' . (adj(R, R') | R = R'))",
      "exists R R' . [rbit x : x > 0](R, R')",
  };
  if (arity == 1) {
    queries.push_back("exists R . (subset(R) & in(x; R))");
    queries.push_back("forall y . ([hull u : S(u)](y) -> y = y)");
    queries.push_back("exists y . (S(y) & y >= 0)");
  } else if (arity == 2) {
    queries.push_back("exists R . (subset(R) & in(x, y; R))");
    queries.push_back("exists x . S(x, y)");
    queries.push_back(
        "forall x y . (S(x, y) -> exists R . (in(x, y; R) & subset(R)))");
  }
  return queries;
}

TEST(PlanEquivalenceTest, DataFiles) {
  for (const char* name : {"triangle.lcdb", "comb.lcdb", "intervals.lcdb",
                           "pentagon.lcdb", "wedge.lcdb"}) {
    SCOPED_TRACE(name);
    ConstraintDatabase db = Load(name);
    auto ext = MakeArrangementExtension(db);
    for (const std::string& text : QueriesForArity(db.arity())) {
      ExpectAllModesAgree(*ext, text);
    }
  }
}

TEST(PlanEquivalenceTest, LiteralConnQuery) {
  // The paper's literal Conn query (element quantifiers + LFP) on small
  // box instances, connected and disconnected.
  for (bool connected : {true, false}) {
    SCOPED_TRACE(connected ? "connected" : "disconnected");
    auto f = ParseDnf(connected
                          ? "x >= 0 & x <= 1 & y >= 0 & y <= 1"
                          : "(x >= 0 & x <= 1 & y >= 0 & y <= 1) | "
                            "(x >= 3 & x <= 4 & y >= 0 & y <= 1)",
                      {"x", "y"});
    ASSERT_TRUE(f.ok()) << f.status().ToString();
    ConstraintDatabase db("S", *f, {"x", "y"});
    auto ext = MakeArrangementExtension(db);
    ExpectAllModesAgree(*ext, ConnQueryText(2), /*check_raw=*/false);
  }
}

TEST(PlanEquivalenceTest, RiverScenario) {
  // Fixpoint with set-dependent body over the Figure 6 encoding, in both
  // the polluted and clean configurations.
  for (bool polluted : {true, false}) {
    SCOPED_TRACE(polluted ? "polluted" : "clean");
    ConstraintDatabase db = polluted
                                ? MakeRiverScenario(3, {1}, {0}, {2})
                                : MakeRiverScenario(3, {1}, {0}, {});
    auto ext = MakeArrangementExtension(db);
    ExpectAllModesAgree(*ext, RiverPollutionQueryText(),
                        /*check_raw=*/false);
  }
}

TEST(PlanEquivalenceTest, FixpointFlavours) {
  // LFP / IFP / PFP variants of reachability plus a diverging PFP.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  std::string lfp = RegionConnQueryText();
  std::string ifp = lfp;
  ifp.replace(ifp.find("[lfp"), 4, "[ifp");
  std::string pfp = lfp;
  pfp.replace(pfp.find("[lfp"), 4, "[pfp");
  for (const std::string& text :
       {lfp, ifp, pfp,
        std::string("exists A . [pfp M R : !(M(R))](A)")}) {
    ExpectAllModesAgree(*ext, text);
  }
}

TEST(PlanEquivalenceTest, MemoizationOffAgrees) {
  // The ablation configuration (no caching anywhere) must also agree.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator::Options legacy_opts;
  legacy_opts.use_plan = false;
  legacy_opts.memoize = false;
  Evaluator legacy(*ext, legacy_opts);
  auto oracle = legacy.Evaluate(**query);
  ASSERT_TRUE(oracle.ok());
  Evaluator::Options plan_opts;
  plan_opts.memoize = false;
  Evaluator plan(*ext, plan_opts);
  auto answer = plan.Evaluate(**query);
  ASSERT_TRUE(answer.ok());
  EXPECT_EQ(oracle->ToString(), answer->ToString());
  Evaluator::Options vm_opts;
  vm_opts.memoize = false;
  vm_opts.use_bytecode = true;
  Evaluator vm(*ext, vm_opts);
  auto vm_answer = vm.Evaluate(**query);
  ASSERT_TRUE(vm_answer.ok());
  EXPECT_EQ(oracle->ToString(), vm_answer->ToString());
}

TEST(PlanEquivalenceTest, KernelBackendSweep) {
  // Kernel-backend sweep (satellite of the lemma-database PR): the LRU
  // baseline, the activity-managed lemma database, and memoize-off must all
  // produce byte-identical answers, on both the tree walk and the bytecode
  // VM, across the data/ seed databases and the canned query set. Lemma
  // truth is a pure function of the canonical encoding, so the backend can
  // only change hit rates — this sweep is the executable form of that
  // contract.
  struct Backend {
    const char* name;
    ConstraintKernel::Options options;
  };
  const Backend backends[] = {
      {"lru", {/*memoize=*/true, /*max_entries=*/1u << 18,
               /*use_lemma_db=*/false}},
      {"lemma-db", {/*memoize=*/true, /*max_entries=*/1u << 18,
                    /*use_lemma_db=*/true}},
      {"memoize-off", {/*memoize=*/false, /*max_entries=*/1u << 18,
                       /*use_lemma_db=*/false}},
  };
  for (const char* name : {"triangle.lcdb", "comb.lcdb", "intervals.lcdb",
                           "pentagon.lcdb", "wedge.lcdb"}) {
    SCOPED_TRACE(name);
    ConstraintDatabase db = Load(name);
    auto ext = MakeArrangementExtension(db);
    for (const std::string& text : QueriesForArity(db.arity())) {
      SCOPED_TRACE(text);
      auto query = ParseQuery(text, db.relation_name());
      ASSERT_TRUE(query.ok()) << query.status().ToString();
      std::string tree_oracle;
      std::string vm_oracle;
      for (const Backend& backend : backends) {
        SCOPED_TRACE(backend.name);
        ConstraintKernel kernel(backend.options);
        ScopedKernel scope(kernel);
        const std::string tree = AnswerVia(*ext, **query, true, true);
        const std::string vm = AnswerVia(*ext, **query, true, true, true);
        EXPECT_EQ(tree, vm);
        if (tree_oracle.empty()) {
          tree_oracle = tree;
          vm_oracle = vm;
        } else {
          EXPECT_EQ(tree, tree_oracle);
          EXPECT_EQ(vm, vm_oracle);
        }
      }
    }
  }
}

TEST(PlanEquivalenceTest, InterruptResumeSweep) {
  // Checkpoint/resume equivalence (core/resume.h): interrupt the Kleene
  // loop at stage k via the fixpoint.stage failpoint, resume with the token
  // the failure Status carries, and require the final answer byte-identical
  // to an uninterrupted run — across every backend (legacy walk, plan tree,
  // bytecode VM) x kernel backend (lemma DB, LRU) x interrupt stage.
  struct Backend {
    const char* name;
    bool use_plan;
    bool use_bytecode;
  };
  const Backend backends[] = {
      {"legacy", false, false}, {"tree", true, false}, {"vm", true, true}};
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string text = RegionConnQueryText();
  auto query = ParseQuery(text, db.relation_name());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (const Backend& backend : backends) {
    SCOPED_TRACE(backend.name);
    for (bool lemma_db : {true, false}) {
      SCOPED_TRACE(lemma_db ? "lemma-db" : "lru");
      ConstraintKernel::Options kernel_options;
      kernel_options.use_lemma_db = lemma_db;
      ConstraintKernel kernel(kernel_options);
      ScopedKernel scope(kernel);
      Evaluator::Options options;
      options.use_plan = backend.use_plan;
      options.use_bytecode = backend.use_bytecode;
      Evaluator reference_evaluator(*ext, options);
      auto reference = reference_evaluator.Evaluate(**query);
      ASSERT_TRUE(reference.ok()) << reference.status().ToString();
      for (uint64_t stage : {0u, 1u, 2u}) {
        SCOPED_TRACE("interrupt at stage " + std::to_string(stage));
        Evaluator evaluator(*ext, options);
        ArmFailpoint("fixpoint.stage", StatusCode::kResourceExhausted,
                     "injected stage interrupt", stage);
        auto interrupted = evaluator.Evaluate(**query);
        DisarmAllFailpoints();
        ASSERT_FALSE(interrupted.ok());
        ASSERT_TRUE(interrupted.status().IsResourceFailure());
        const uint64_t token = interrupted.status().resume_token();
        ASSERT_NE(token, 0u) << "resource failure carried no resume token";
        auto resumed = evaluator.Evaluate(**query, token);
        ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
        EXPECT_EQ(resumed->ToString(), reference->ToString());
        const Evaluator::Stats& s = evaluator.stats();
        EXPECT_GT(s.resume_fixpoints_resumed + s.resume_sets_restored, 0u)
            << "resume did not reuse the checkpoint";
      }
    }
  }
}

TEST(PlanEquivalenceTest, ResumeRestoresCompletedFixpoints) {
  // Interrupt *after* the left conjunct's fixpoint completed (the
  // closure.build site fires when the right conjunct's TC matrix starts):
  // the resumed run must restore the finished fixpoint set wholesale
  // instead of recomputing it.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  const std::string text =
      "(" + RegionConnQueryText() + ") & (" + RegionConnTcQueryText() + ")";
  auto query = ParseQuery(text, db.relation_name());
  ASSERT_TRUE(query.ok()) << query.status().ToString();
  for (bool use_bytecode : {false, true}) {
    SCOPED_TRACE(use_bytecode ? "vm" : "tree");
    Evaluator::Options options;
    options.use_bytecode = use_bytecode;
    Evaluator reference_evaluator(*ext, options);
    auto reference = reference_evaluator.Evaluate(**query);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    Evaluator evaluator(*ext, options);
    ArmFailpoint("closure.build", StatusCode::kDeadlineExceeded,
                 "injected post-fixpoint interrupt");
    auto interrupted = evaluator.Evaluate(**query);
    DisarmAllFailpoints();
    ASSERT_FALSE(interrupted.ok());
    const uint64_t token = interrupted.status().resume_token();
    ASSERT_NE(token, 0u);
    auto resumed = evaluator.Evaluate(**query, token);
    ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
    EXPECT_EQ(resumed->ToString(), reference->ToString());
    EXPECT_GT(evaluator.stats().resume_sets_restored, 0u);
  }
}

TEST(PlanEquivalenceTest, ResumeSurvivesVmToTreeDegradation) {
  // The QuerySession's vm->tree rung: a checkpoint captured on the VM must
  // replay on the tree executor (site keys are shared plan ordinals and the
  // resume fingerprint treats the two as one backend).
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator::Options tree_options;
  Evaluator tree_reference(*ext, tree_options);
  auto reference = tree_reference.Evaluate(**query);
  ASSERT_TRUE(reference.ok());
  Evaluator::Options options;
  options.use_bytecode = true;
  Evaluator evaluator(*ext, options);
  ArmFailpoint("fixpoint.stage", StatusCode::kResourceExhausted,
               "injected stage interrupt", 1);
  auto interrupted = evaluator.Evaluate(**query);
  DisarmAllFailpoints();
  ASSERT_FALSE(interrupted.ok());
  const uint64_t token = interrupted.status().resume_token();
  ASSERT_NE(token, 0u);
  evaluator.mutable_options().use_bytecode = false;  // degrade to the tree
  auto resumed = evaluator.Evaluate(**query, token);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->ToString(), reference->ToString());
  EXPECT_GT(evaluator.stats().resume_fixpoints_resumed, 0u);
}

TEST(PlanEquivalenceTest, ResumeTokenValidation) {
  // Tokens are single-use, instance-scoped and query-bound: replay, cross-
  // query use and unknown tokens are clean argument errors.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator evaluator(*ext, Evaluator::Options{});
  ArmFailpoint("fixpoint.stage", StatusCode::kResourceExhausted,
               "injected stage interrupt", 1);
  auto interrupted = evaluator.Evaluate(**query);
  DisarmAllFailpoints();
  ASSERT_FALSE(interrupted.ok());
  const uint64_t token = interrupted.status().resume_token();
  ASSERT_NE(token, 0u);

  // Wrong query: the fingerprint rejects and the token is consumed.
  auto other = ParseQuery("exists R . subset(R)", db.relation_name());
  ASSERT_TRUE(other.ok());
  auto mismatch = evaluator.Evaluate(**other, token);
  ASSERT_FALSE(mismatch.ok());
  EXPECT_EQ(mismatch.status().code(), StatusCode::kInvalidArgument);
  // Replay of the consumed token: unknown.
  auto replay = evaluator.Evaluate(**query, token);
  ASSERT_FALSE(replay.ok());
  EXPECT_EQ(replay.status().code(), StatusCode::kInvalidArgument);
  // A token the evaluator never issued.
  auto unknown = evaluator.Evaluate(**query, token + 1234);
  ASSERT_FALSE(unknown.ok());
  EXPECT_EQ(unknown.status().code(), StatusCode::kInvalidArgument);
  // Token 0 is a plain evaluation.
  auto plain = evaluator.Evaluate(**query, 0);
  EXPECT_TRUE(plain.ok()) << plain.status().ToString();
}

TEST(PlanEquivalenceTest, BytecodeRequiresOptimizedPlan) {
  // Lowering is defined over optimized plans only; the combination must be
  // a clean argument error, never a silent fallback to the tree walk.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto query = ParseQuery("exists y . (S(y) & y >= 0)", db.relation_name());
  ASSERT_TRUE(query.ok());
  Evaluator::Options options;
  options.use_bytecode = true;
  options.optimize = false;
  Evaluator evaluator(*ext, options);
  auto answer = evaluator.Evaluate(**query);
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(answer.status().message().find("optimized plan"),
            std::string::npos);
}

}  // namespace
}  // namespace lcdb
