// Tests for the per-query resource governor (engine/governor.h): every
// budget trips with the right status code, the zero-budget and already-
// expired-deadline edge cases behave, and — the robustness contract — an
// evaluator whose query was killed mid-fixpoint answers the next query
// byte-identically to a fresh evaluator, on both execution paths.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/governor.h"
#include "engine/kernel.h"

namespace lcdb {
namespace {

ConstraintDatabase Db1ForPfp() {
  auto f = ParseDnf("(x > 0 & x < 1) | x = 5", {"x"});
  EXPECT_TRUE(f.ok()) << f.status().ToString();
  return ConstraintDatabase("S", *f, {"x"});
}

/// Evaluates `text` under `limits` on a fresh kernel (so kernel caches from
/// other tests cannot absorb the budgeted work) and returns the status.
Status GovernedStatus(const RegionExtension& ext, const std::string& text,
                      const GovernorLimits& limits,
                      Evaluator::Options options = {}) {
  ConstraintKernel kernel;
  ScopedKernel scoped_kernel(kernel);
  QueryGovernor governor(limits);
  ScopedGovernor scoped(governor);
  auto r = EvaluateQueryText(ext, text, options);
  return r.status();
}

TEST(GovernorTest, UngovernedQueryStillWorks) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
}

TEST(GovernorTest, GovernedWithinBudgetSucceedsAndCounts) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QueryGovernor governor(GovernorLimits{});  // all budgets unlimited
  ScopedGovernor scoped(governor);
  auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_TRUE(*r);
  const GovernorStats stats = governor.stats();
  EXPECT_GT(stats.checkpoints, 0u);
  EXPECT_EQ(stats.budget_trips, 0u);
  EXPECT_TRUE(stats.tripped_budget.empty());
}

// NOTE: the conn query over the comb needs no kernel decisions at eval time
// (adjacency and subset flags are precomputed when the arrangement is
// built), so the kernel-facing budgets are exercised with an element-sort
// projection, which must simplify through the feasibility oracle.

TEST(GovernorTest, FeasibilityBudgetTrips) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_feasibility_queries = 3;
  Status s = GovernedStatus(*ext, "exists x . S(x, y)", limits);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("feasibility"), std::string::npos);
}

TEST(GovernorTest, ZeroFeasibilityBudgetTripsOnFirstQuery) {
  // An explicit 0 is a real budget (kUnlimited is the sentinel): the very
  // first kernel decision trips it.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_feasibility_queries = 0;
  Status s = GovernedStatus(*ext, "exists x . S(x, y)", limits);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
}

TEST(GovernorTest, SimplexPivotBudgetTrips) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_simplex_pivots = 2;
  Status s = GovernedStatus(*ext, "exists x . S(x, y)", limits);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("pivot"), std::string::npos);
}

TEST(GovernorTest, FixpointIterationBudgetTrips) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_fixpoint_iterations = 1;  // conn's LFP needs several stages
  for (bool use_plan : {true, false}) {
    Evaluator::Options options;
    options.use_plan = use_plan;
    Status s = GovernedStatus(*ext, RegionConnQueryText(), limits, options);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
        << "use_plan=" << use_plan << ": " << s.ToString();
    EXPECT_NE(s.message().find("fixpoint"), std::string::npos);
  }
}

TEST(GovernorTest, TupleSpaceBudgetTrips) {
  ConstraintDatabase db = MakeComb(2, true);  // 63 regions
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_tuple_space = 10;  // 63^2 pairs in conn's LFP
  for (bool use_plan : {true, false}) {
    Evaluator::Options options;
    options.use_plan = use_plan;
    Status s = GovernedStatus(*ext, RegionConnQueryText(), limits, options);
    EXPECT_EQ(s.code(), StatusCode::kResourceExhausted)
        << "use_plan=" << use_plan << ": " << s.ToString();
    EXPECT_NE(s.message().find("tuple space"), std::string::npos);
  }
}

TEST(GovernorTest, DnfDisjunctBudgetTrips) {
  // Projecting the comb onto one axis produces one disjunct per part —
  // far over a budget of 1.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_dnf_disjuncts = 1;
  Status s = GovernedStatus(*ext, "exists x . S(x, y)", limits);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("disjunct"), std::string::npos);
}

TEST(GovernorTest, BigIntBitBudgetTrips) {
  // Zero-budget edge for the coefficient ceiling: any surviving nonzero
  // coefficient has bit length >= 1 > 0.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.max_bigint_bits = 0;
  Status s = GovernedStatus(*ext, "exists x . S(x, y)", limits);
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s.ToString();
  EXPECT_NE(s.message().find("bits"), std::string::npos);
}

TEST(GovernorTest, ExpiredDeadlineTripsImmediately) {
  // wall_clock_ms = 0 is a real deadline that has already passed when the
  // query starts; the first strided deadline check raises it.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  GovernorLimits limits;
  limits.wall_clock_ms = 0;
  Status s = GovernedStatus(*ext, RegionConnQueryText(), limits);
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s.ToString();
  EXPECT_TRUE(s.IsResourceFailure());
}

TEST(GovernorTest, CancelFlagStopsTheQuery) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QueryGovernor governor((GovernorLimits()));
  governor.RequestCancel();  // cancel before the query even starts
  ScopedGovernor scoped(governor);
  auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled) << r.status().ToString();
  EXPECT_EQ(governor.stats().tripped_budget, "cancel");
}

TEST(GovernorTest, StatsNameTheTrippedBudget) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto parsed = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(parsed.ok());
  Evaluator evaluator(*ext);
  GovernorLimits limits;
  limits.max_fixpoint_iterations = 1;
  QueryGovernor governor(limits);
  ScopedGovernor scoped(governor);
  auto r = evaluator.Evaluate(**parsed);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(evaluator.stats().governor.tripped_budget,
            "max_fixpoint_iterations");
  EXPECT_GE(evaluator.stats().governor.budget_trips, 1u);
}

/// The robustness contract: kill a query mid-fixpoint, then answer the same
/// query on the *same* evaluator without a budget and require the result to
/// be byte-identical to a fresh evaluator's.
void PostTripReuseIsByteIdentical(bool use_plan) {
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  auto parsed = ParseQuery(RegionConnQueryText(), db.relation_name());
  ASSERT_TRUE(parsed.ok());
  Evaluator::Options options;
  options.use_plan = use_plan;

  Evaluator survivor(*ext, options);
  {
    GovernorLimits limits;
    limits.max_fixpoint_iterations = 2;  // dies inside the conn LFP
    QueryGovernor governor(limits);
    ScopedGovernor scoped(governor);
    auto killed = survivor.Evaluate(**parsed);
    ASSERT_FALSE(killed.ok());
    EXPECT_EQ(killed.status().code(), StatusCode::kResourceExhausted);
  }
  auto after = survivor.Evaluate(**parsed);  // ungoverned retry, same object
  ASSERT_TRUE(after.ok()) << after.status().ToString();

  Evaluator fresh(*ext, options);
  auto reference = fresh.Evaluate(**parsed);
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  EXPECT_EQ(after->ToString(), reference->ToString());
}

TEST(GovernorTest, PostTripReuseIsByteIdenticalPlanPath) {
  PostTripReuseIsByteIdentical(/*use_plan=*/true);
}

TEST(GovernorTest, PostTripReuseIsByteIdenticalLegacyPath) {
  PostTripReuseIsByteIdentical(/*use_plan=*/false);
}

TEST(GovernorTest, TupleSpaceOptionStillAStatus) {
  // The evaluator's own Options::max_tuple_space cap (no governor at all)
  // reports kResourceExhausted instead of crashing — legacy and plan path.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  for (bool use_plan : {true, false}) {
    Evaluator::Options tiny;
    tiny.use_plan = use_plan;
    tiny.max_tuple_space = 100;
    auto r = EvaluateSentenceText(*ext, RegionConnQueryText(), tiny);
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted)
        << "use_plan=" << use_plan;
  }
}

TEST(GovernorTest, ExtensionBuildBudgetTripIsAStatus) {
  // The Build* API is the recovery boundary for construction: a budget
  // tripping inside the arrangement's face splits surfaces as a Status
  // naming the budget, not as an escaping exception.
  ConstraintDatabase db = MakeComb(2, true);
  ConstraintKernel kernel;  // fresh: cached feasibility answers skip budgets
  ScopedKernel scoped_kernel(kernel);
  GovernorLimits limits;
  limits.max_feasibility_queries = 0;
  QueryGovernor governor(limits);
  ScopedGovernor scoped(governor);
  auto built = BuildArrangementExtension(db);
  ASSERT_FALSE(built.ok());
  EXPECT_EQ(built.status().code(), StatusCode::kResourceExhausted)
      << built.status().ToString();
  EXPECT_EQ(governor.stats().tripped_budget, "max_feasibility_queries");
}

TEST(GovernorTest, ExtensionBuildWithinBudgetSucceeds) {
  ConstraintDatabase db = MakeComb(2, true);
  QueryGovernor governor((GovernorLimits()));  // unlimited
  ScopedGovernor scoped(governor);
  auto arr = BuildArrangementExtension(db);
  ASSERT_TRUE(arr.ok()) << arr.status().ToString();
  EXPECT_EQ((*arr)->num_regions(), MakeArrangementExtension(db)->num_regions());
  auto dec = BuildDecompositionExtension(db);
  ASSERT_TRUE(dec.ok()) << dec.status().ToString();
  EXPECT_GT((*dec)->num_regions(), 0u);
}

TEST(GovernorTest, CancelFromAnotherThreadStopsTheQuery) {
  // RequestCancel is documented callable from any thread; this is the
  // TSan-checked proof. The worker evaluates in a loop under its governor;
  // once the main thread flips the flag, the next cooperative checkpoint
  // (a kernel feasibility query — each round gets a fresh kernel so the
  // cache cannot absorb them) must trip kCancelled.
  ConstraintDatabase db = MakeComb(2, true);
  auto ext = MakeArrangementExtension(db);
  QueryGovernor governor((GovernorLimits()));

  std::atomic<bool> first_round_done{false};
  Status final_status;
  std::thread worker([&] {
    ScopedGovernor scoped(governor);
    for (int i = 0; i < 100000; ++i) {
      ConstraintKernel kernel;
      ScopedKernel scoped_kernel(kernel);
      auto r = EvaluateSentenceText(*ext, RegionConnQueryText());
      if (!r.ok()) {
        final_status = r.status();
        return;
      }
      first_round_done.store(true);
    }
  });
  while (!first_round_done.load()) std::this_thread::yield();
  governor.RequestCancel();  // from outside the evaluating thread
  worker.join();
  EXPECT_EQ(final_status.code(), StatusCode::kCancelled)
      << final_status.ToString();
  EXPECT_EQ(governor.stats().tripped_budget, "cancel");
}

TEST(GovernorTest, DivergentPfpStillConvergesUnderHashDetection) {
  // The hash-based PFP cycle detector must agree with the old exact-set
  // scheme: [pfp M R : !(M(R))] flips between {} and everything, so the
  // revisit of {} ends it with the empty result (sentence => false), and
  // the hash hit's replay verification must not change that.
  ConstraintDatabase db = Db1ForPfp();
  auto ext = MakeArrangementExtension(db);
  for (bool use_plan : {true, false}) {
    Evaluator::Options options;
    options.use_plan = use_plan;
    auto r = EvaluateSentenceText(
        *ext, "exists A . [pfp M R : !(M(R))](A)", options);
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_FALSE(*r) << "use_plan=" << use_plan;
  }
}

}  // namespace
}  // namespace lcdb
