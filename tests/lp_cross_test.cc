// Cross-validation of the exact LP oracle against an independent decision
// procedure: Fourier–Motzkin elimination of *all* variables reduces a
// linear system to a variable-free formula whose truth is decidable by
// constant folding. Both engines are exact, so they must agree everywhere.

#include <random>

#include <gtest/gtest.h>

#include "lp/feasibility.h"
#include "qe/fourier_motzkin.h"

namespace lcdb {
namespace {

/// Decides feasibility by full Fourier-Motzkin elimination (no LP).
bool FeasibleByFourierMotzkin(size_t num_vars,
                              const std::vector<LinearConstraint>& system) {
  std::vector<LinearAtom> atoms;
  for (const LinearConstraint& c : system) {
    atoms.emplace_back(c.coeffs, c.rel, c.rhs);
  }
  DnfFormula f(num_vars, {Conjunction(num_vars, std::move(atoms))});
  // Note: Conjunction normalization only folds *constant* atoms; all
  // variable atoms survive to elimination.
  std::vector<size_t> all;
  for (size_t v = 0; v < num_vars; ++v) all.push_back(v);
  DnfFormula eliminated = ExistsVariables(f, std::move(all));
  return !eliminated.IsSyntacticallyFalse();
}

class LpCrossValidation : public ::testing::TestWithParam<uint32_t> {};

TEST_P(LpCrossValidation, FeasibilityAgreesWithFourierMotzkin) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> coeff(-4, 4);
  std::uniform_int_distribution<int> rel_pick(0, 4);
  std::uniform_int_distribution<size_t> nvars(1, 3);
  std::uniform_int_distribution<size_t> nrows(1, 6);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  size_t feasible = 0, infeasible = 0;
  for (int iter = 0; iter < 120; ++iter) {
    const size_t n = nvars(rng);
    const size_t m = nrows(rng);
    std::vector<LinearConstraint> system;
    for (size_t r = 0; r < m; ++r) {
      Vec c(n);
      for (size_t j = 0; j < n; ++j) c[j] = Rational(coeff(rng));
      system.emplace_back(std::move(c), rels[rel_pick(rng)],
                          Rational(coeff(rng)));
    }
    const FeasibilityResult lp = CheckFeasibility(n, system);
    const bool fm = FeasibleByFourierMotzkin(n, system);
    ASSERT_EQ(lp.feasible, fm) << "seed=" << GetParam() << " iter=" << iter;
    if (lp.feasible) {
      ++feasible;
      for (const LinearConstraint& c : system) {
        EXPECT_TRUE(c.Satisfies(lp.witness));
      }
    } else {
      ++infeasible;
    }
  }
  // Both outcomes must actually occur for the test to mean anything.
  EXPECT_GT(feasible, 10u);
  EXPECT_GT(infeasible, 10u);
}

TEST_P(LpCrossValidation, OptimumIsTightAgainstTheSystem) {
  std::mt19937_64 rng(GetParam() * 97 + 3);
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  for (int iter = 0; iter < 40; ++iter) {
    const size_t n = 2;
    // A random box guarantees boundedness.
    std::vector<LinearConstraint> system = {
        {{Rational(1), Rational(0)}, RelOp::kLe, Rational(5)},
        {{Rational(1), Rational(0)}, RelOp::kGe, Rational(-5)},
        {{Rational(0), Rational(1)}, RelOp::kLe, Rational(5)},
        {{Rational(0), Rational(1)}, RelOp::kGe, Rational(-5)},
    };
    // Plus a couple of random cuts (may make it infeasible).
    for (int extra = 0; extra < 2; ++extra) {
      Vec c = {Rational(coeff(rng)), Rational(coeff(rng))};
      system.push_back({std::move(c), RelOp::kLe, Rational(coeff(rng))});
    }
    Vec objective = {Rational(coeff(rng)), Rational(coeff(rng))};
    LpResult r = MaximizeLp(n, system, objective);
    if (r.status == LpStatus::kInfeasible) {
      EXPECT_FALSE(CheckFeasibility(n, system).feasible);
      continue;
    }
    ASSERT_EQ(r.status, LpStatus::kOptimal);
    // (a) The optimum is attained.
    EXPECT_EQ(Dot(objective, r.solution), r.objective);
    for (const LinearConstraint& c : system) {
      EXPECT_TRUE(c.Satisfies(r.solution));
    }
    // (b) Nothing beats it: system ∧ (obj > v) must be infeasible.
    std::vector<LinearConstraint> better = system;
    better.push_back({objective, RelOp::kGt, r.objective});
    EXPECT_FALSE(CheckFeasibility(n, better).feasible);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LpCrossValidation,
                         ::testing::Values(101u, 211u, 307u, 401u, 503u));

}  // namespace
}  // namespace lcdb
