// Tests for the unified metrics registry (engine/metrics.h): the four
// instrument kinds, snapshot-and-diff semantics, the flat JSON the CI job
// schema-validates, and the adapters that lift the engine's typed telemetry
// structs (KernelStats, GovernorStats, PlanPassStats, OpTimings,
// Evaluator::Stats) into the shared metric namespace.

#include <gtest/gtest.h>

#include <string>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "db/region_extension.h"
#include "engine/metrics.h"

namespace lcdb {
namespace {

TEST(MetricsTest, CountersAccumulateGaugesOverwrite) {
  MetricsRegistry registry;
  registry.Count("c", 2);
  registry.Count("c", 3);
  registry.Gauge("g", 7);
  registry.Gauge("g", 4);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values.at("c"), 5u);
  EXPECT_EQ(snap.values.at("g"), 4u);
}

TEST(MetricsTest, SnapshotDiffIsTheDelta) {
  MetricsRegistry registry;
  registry.Count("queries", 5);
  const MetricsSnapshot before = registry.Snapshot();
  registry.Count("queries", 3);
  registry.Gauge("nodes", 11);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = after.Diff(before);
  EXPECT_EQ(delta.values.at("queries"), 3u);
  EXPECT_EQ(delta.values.at("nodes"), 11u);  // absent before => full value

  // Diff clamps at zero instead of wrapping (a gauge can shrink).
  const MetricsSnapshot reverse = before.Diff(after);
  EXPECT_EQ(reverse.values.at("queries"), 0u);
}

TEST(MetricsTest, HistogramObservations) {
  MetricsRegistry registry;
  registry.Observe("lat", 0);
  registry.Observe("lat", 1);
  registry.Observe("lat", 1000);
  const MetricsSnapshot snap = registry.Snapshot();
  const auto& h = snap.histograms.at("lat");
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum, 1001u);
  uint64_t total = 0;
  for (uint64_t b : h.buckets) total += b;
  EXPECT_EQ(total, 3u);

  // Diff subtracts bucket-wise.
  registry.Observe("lat", 1);
  const auto delta = registry.Snapshot().Diff(snap);
  EXPECT_EQ(delta.histograms.at("lat").count, 1u);
  EXPECT_EQ(delta.histograms.at("lat").sum, 1u);
}

TEST(MetricsTest, ToJsonIsFlatAndTyped) {
  MetricsRegistry registry;
  registry.Count("kernel.oracle_calls", 2);
  registry.Label("governor.tripped_budget", "max_simplex_pivots");
  registry.Observe("lat", 3);
  const std::string json = registry.Snapshot().ToJson();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(json.back(), '}');
  EXPECT_NE(json.find("\"kernel.oracle_calls\":2"), std::string::npos);
  EXPECT_NE(json.find("\"governor.tripped_budget\":\"max_simplex_pivots\""),
            std::string::npos);
  // Histograms serialize as {"count":...,"sum":...,"buckets":[...]}.
  EXPECT_NE(json.find("\"lat\":{\"count\":1,\"sum\":3,\"buckets\":"),
            std::string::npos);
}

TEST(MetricsTest, HistogramPercentileEstimates) {
  MetricsRegistry registry;
  for (int i = 0; i < 100; ++i) registry.Observe("lat", 100);
  // Every observation lands in the [64, 128) bucket, so every percentile
  // estimate must interpolate inside it.
  const MetricsSnapshot snap = registry.Snapshot();
  const auto& h = snap.histograms.at("lat");
  EXPECT_GE(h.Percentile(0.5), 64u);
  EXPECT_LT(h.Percentile(0.5), 128u);
  EXPECT_GE(h.Percentile(0.99), h.Percentile(0.5));

  // An empty histogram and an all-zeros histogram both report 0.
  MetricsSnapshot::HistogramValue empty;
  EXPECT_EQ(empty.Percentile(0.5), 0u);
  MetricsRegistry zeros;
  zeros.Observe("z", 0);
  const MetricsSnapshot zsnap = zeros.Snapshot();
  EXPECT_EQ(zsnap.histograms.at("z").Percentile(0.9), 0u);
}

TEST(MetricsTest, HistogramOverflowRoundTripsThroughDiffAndMerge) {
  const uint64_t huge = uint64_t{1} << 45;  // past the last finite bucket
  MetricsRegistry registry;
  registry.Observe("lat", huge);
  const MetricsSnapshot before = registry.Snapshot();
  registry.Observe("lat", huge);
  registry.Observe("lat", 1);
  const MetricsSnapshot after = registry.Snapshot();

  const MetricsSnapshot delta = after.Diff(before);
  const auto& d = delta.histograms.at("lat");
  EXPECT_EQ(d.count, 2u);
  EXPECT_EQ(d.sum, huge + 1);
  EXPECT_EQ(d.buckets.back(), 1u);  // the overflow observation in the delta

  // Merge adds bucket-wise, so before + (after - before) == after exactly.
  MetricsSnapshot merged = before;
  merged.Merge(delta);
  const auto& m = merged.histograms.at("lat");
  const auto& a = after.histograms.at("lat");
  EXPECT_EQ(m.count, a.count);
  EXPECT_EQ(m.sum, a.sum);
  EXPECT_EQ(m.buckets, a.buckets);
  // The overflow bucket extrapolates beyond the last finite bucket bound.
  EXPECT_GE(a.Percentile(0.99),
            uint64_t{1} << (MetricsRegistry::kHistogramBuckets - 2));
}

TEST(MetricsTest, MergeUnionsDisjointLabelSets) {
  MetricsRegistry r1;
  MetricsRegistry r2;
  r1.Label("governor.tripped_budget", "max_tuple_space");
  r1.Count("a", 1);
  r2.Label("session.last_failure_class", "resource");
  r2.Count("b", 2);
  MetricsSnapshot merged = r1.Snapshot();
  merged.Merge(r2.Snapshot());
  EXPECT_EQ(merged.labels.at("governor.tripped_budget"), "max_tuple_space");
  EXPECT_EQ(merged.labels.at("session.last_failure_class"), "resource");
  EXPECT_EQ(merged.values.at("a"), 1u);
  EXPECT_EQ(merged.values.at("b"), 2u);

  // On a label collision the merged-in value wins.
  MetricsRegistry r3;
  r3.Label("governor.tripped_budget", "max_bigint_bits");
  merged.Merge(r3.Snapshot());
  EXPECT_EQ(merged.labels.at("governor.tripped_budget"), "max_bigint_bits");
}

TEST(MetricsTest, ExportsCarryPercentileEstimates) {
  MetricsRegistry registry;
  registry.Observe("lat", 100);
  const MetricsSnapshot snap = registry.Snapshot();
  const std::string json = snap.ToJson();
  EXPECT_NE(json.find("\"p50\":"), std::string::npos);
  EXPECT_NE(json.find("\"p90\":"), std::string::npos);
  EXPECT_NE(json.find("\"p99\":"), std::string::npos);
  const std::string text = snap.ToString();
  EXPECT_NE(text.find("lat.p50="), std::string::npos);
  EXPECT_NE(text.find("lat.p99="), std::string::npos);
}

TEST(MetricsTest, ClearEmptiesEverything) {
  MetricsRegistry registry;
  registry.Count("a", 1);
  registry.Label("b", "x");
  registry.Observe("c", 1);
  registry.Clear();
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_TRUE(snap.values.empty());
  EXPECT_TRUE(snap.labels.empty());
  EXPECT_TRUE(snap.histograms.empty());
}

TEST(MetricsTest, KernelStatsAdapter) {
  KernelStats stats;
  stats.feasibility_queries = 3;
  stats.cache_hits = 1;
  stats.simplex_pivots = 6;
  MetricsRegistry registry;
  registry.RegisterKernelStats(stats);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values.at("kernel.feasibility_queries"), 3u);
  EXPECT_EQ(snap.values.at("kernel.cache_hits"), 1u);
  EXPECT_EQ(snap.values.at("kernel.simplex_pivots"), 6u);
}

TEST(MetricsTest, GovernorStatsAdapterCarriesTheTrippedBudget) {
  GovernorStats stats;
  stats.checkpoints = 12;
  stats.budget_trips = 1;
  stats.tripped_budget = "max_tuple_space";
  MetricsRegistry registry;
  registry.RegisterGovernorStats(stats);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values.at("governor.checkpoints"), 12u);
  EXPECT_EQ(snap.values.at("governor.budget_trips"), 1u);
  EXPECT_EQ(snap.labels.at("governor.tripped_budget"), "max_tuple_space");
}

TEST(MetricsTest, OpTimingsAdapter) {
  OpTimings timings;
  timings["qe.exists"].count = 2;
  timings["qe.exists"].total_ns = 12345;
  MetricsRegistry registry;
  registry.RegisterOpTimings(timings);
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.values.at("op.qe.exists.count"), 2u);
  EXPECT_EQ(snap.values.at("op.qe.exists.total_ns"), 12345u);
}

TEST(MetricsTest, EvaluatorStatsExportAllFamilies) {
  auto f = ParseDnf("(x > 0 & x < 1) | x = 5", {"x"});
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  ConstraintDatabase db("S", *f, {"x"});
  auto ext = MakeArrangementExtension(db);
  auto parsed = ParseQuery("exists x . (S(x) & x > 2)", db.relation_name());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  Evaluator evaluator(*ext);
  auto r = evaluator.Evaluate(**parsed);
  ASSERT_TRUE(r.ok()) << r.status().ToString();

  const MetricsSnapshot snap = evaluator.stats().ToMetrics();
  EXPECT_GT(snap.values.at("evaluator.node_evaluations"), 0u);
  EXPECT_GT(snap.values.at("evaluator.qe_eliminations"), 0u);
  EXPECT_GT(snap.values.at("plan.plan_nodes"), 0u);
  // Every family shows up under its prefix in one flat namespace.
  ASSERT_TRUE(snap.values.count("kernel.feasibility_queries"));
  ASSERT_TRUE(snap.values.count("governor.checkpoints"));
  const std::string json = evaluator.stats().ToJson();
  EXPECT_NE(json.find("\"evaluator.node_evaluations\""), std::string::npos);
  EXPECT_NE(json.find("\"op.qe.exists.count\":1"), std::string::npos);
}

}  // namespace
}  // namespace lcdb
