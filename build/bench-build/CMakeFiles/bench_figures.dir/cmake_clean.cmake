file(REMOVE_RECURSE
  "../bench/bench_figures"
  "../bench/bench_figures.pdb"
  "CMakeFiles/bench_figures.dir/bench_figures.cc.o"
  "CMakeFiles/bench_figures.dir/bench_figures.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
