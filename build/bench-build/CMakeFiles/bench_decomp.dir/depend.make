# Empty dependencies file for bench_decomp.
# This may be replaced when dependencies are built.
