file(REMOVE_RECURSE
  "../bench/bench_decomp"
  "../bench/bench_decomp.pdb"
  "CMakeFiles/bench_decomp.dir/bench_decomp.cc.o"
  "CMakeFiles/bench_decomp.dir/bench_decomp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
