file(REMOVE_RECURSE
  "../bench/bench_reglfp"
  "../bench/bench_reglfp.pdb"
  "CMakeFiles/bench_reglfp.dir/bench_reglfp.cc.o"
  "CMakeFiles/bench_reglfp.dir/bench_reglfp.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_reglfp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
