# Empty dependencies file for bench_reglfp.
# This may be replaced when dependencies are built.
