file(REMOVE_RECURSE
  "../bench/bench_regfo"
  "../bench/bench_regfo.pdb"
  "CMakeFiles/bench_regfo.dir/bench_regfo.cc.o"
  "CMakeFiles/bench_regfo.dir/bench_regfo.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_regfo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
