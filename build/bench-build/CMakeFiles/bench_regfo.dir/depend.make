# Empty dependencies file for bench_regfo.
# This may be replaced when dependencies are built.
