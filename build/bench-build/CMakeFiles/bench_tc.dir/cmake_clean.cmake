file(REMOVE_RECURSE
  "../bench/bench_tc"
  "../bench/bench_tc.pdb"
  "CMakeFiles/bench_tc.dir/bench_tc.cc.o"
  "CMakeFiles/bench_tc.dir/bench_tc.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
