file(REMOVE_RECURSE
  "../bench/bench_arrangement"
  "../bench/bench_arrangement.pdb"
  "CMakeFiles/bench_arrangement.dir/bench_arrangement.cc.o"
  "CMakeFiles/bench_arrangement.dir/bench_arrangement.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
