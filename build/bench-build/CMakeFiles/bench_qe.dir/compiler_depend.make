# Empty compiler generated dependencies file for bench_qe.
# This may be replaced when dependencies are built.
