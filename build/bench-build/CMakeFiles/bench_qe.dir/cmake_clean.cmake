file(REMOVE_RECURSE
  "../bench/bench_qe"
  "../bench/bench_qe.pdb"
  "CMakeFiles/bench_qe.dir/bench_qe.cc.o"
  "CMakeFiles/bench_qe.dir/bench_qe.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
