file(REMOVE_RECURSE
  "CMakeFiles/river_pollution.dir/river_pollution.cpp.o"
  "CMakeFiles/river_pollution.dir/river_pollution.cpp.o.d"
  "river_pollution"
  "river_pollution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/river_pollution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
