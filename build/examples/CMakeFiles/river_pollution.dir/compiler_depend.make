# Empty compiler generated dependencies file for river_pollution.
# This may be replaced when dependencies are built.
