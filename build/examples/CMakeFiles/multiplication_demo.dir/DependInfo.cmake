
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/multiplication_demo.cpp" "examples/CMakeFiles/multiplication_demo.dir/multiplication_demo.cpp.o" "gcc" "examples/CMakeFiles/multiplication_demo.dir/multiplication_demo.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_capture.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_datalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arrangement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_qe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
