file(REMOVE_RECURSE
  "CMakeFiles/multiplication_demo.dir/multiplication_demo.cpp.o"
  "CMakeFiles/multiplication_demo.dir/multiplication_demo.cpp.o.d"
  "multiplication_demo"
  "multiplication_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multiplication_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
