# Empty compiler generated dependencies file for multiplication_demo.
# This may be replaced when dependencies are built.
