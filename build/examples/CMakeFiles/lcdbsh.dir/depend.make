# Empty dependencies file for lcdbsh.
# This may be replaced when dependencies are built.
