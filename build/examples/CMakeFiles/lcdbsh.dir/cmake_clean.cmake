file(REMOVE_RECURSE
  "CMakeFiles/lcdbsh.dir/lcdbsh.cpp.o"
  "CMakeFiles/lcdbsh.dir/lcdbsh.cpp.o.d"
  "lcdbsh"
  "lcdbsh.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdbsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
