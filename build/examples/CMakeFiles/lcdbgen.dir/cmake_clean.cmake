file(REMOVE_RECURSE
  "CMakeFiles/lcdbgen.dir/lcdbgen.cpp.o"
  "CMakeFiles/lcdbgen.dir/lcdbgen.cpp.o.d"
  "lcdbgen"
  "lcdbgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdbgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
