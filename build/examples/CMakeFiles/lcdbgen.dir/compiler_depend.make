# Empty compiler generated dependencies file for lcdbgen.
# This may be replaced when dependencies are built.
