# Empty compiler generated dependencies file for lcdbq.
# This may be replaced when dependencies are built.
