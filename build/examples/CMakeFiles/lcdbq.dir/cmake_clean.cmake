file(REMOVE_RECURSE
  "CMakeFiles/lcdbq.dir/lcdbq.cpp.o"
  "CMakeFiles/lcdbq.dir/lcdbq.cpp.o.d"
  "lcdbq"
  "lcdbq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdbq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
