file(REMOVE_RECURSE
  "CMakeFiles/arrangement_test.dir/arrangement_test.cc.o"
  "CMakeFiles/arrangement_test.dir/arrangement_test.cc.o.d"
  "arrangement_test"
  "arrangement_test.pdb"
  "arrangement_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrangement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
