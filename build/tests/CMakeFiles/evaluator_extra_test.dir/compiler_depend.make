# Empty compiler generated dependencies file for evaluator_extra_test.
# This may be replaced when dependencies are built.
