file(REMOVE_RECURSE
  "CMakeFiles/evaluator_extra_test.dir/evaluator_extra_test.cc.o"
  "CMakeFiles/evaluator_extra_test.dir/evaluator_extra_test.cc.o.d"
  "evaluator_extra_test"
  "evaluator_extra_test.pdb"
  "evaluator_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/evaluator_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
