file(REMOVE_RECURSE
  "CMakeFiles/lp_cross_test.dir/lp_cross_test.cc.o"
  "CMakeFiles/lp_cross_test.dir/lp_cross_test.cc.o.d"
  "lp_cross_test"
  "lp_cross_test.pdb"
  "lp_cross_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lp_cross_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
