# Empty dependencies file for lp_cross_test.
# This may be replaced when dependencies are built.
