file(REMOVE_RECURSE
  "CMakeFiles/definability_test.dir/definability_test.cc.o"
  "CMakeFiles/definability_test.dir/definability_test.cc.o.d"
  "definability_test"
  "definability_test.pdb"
  "definability_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/definability_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
