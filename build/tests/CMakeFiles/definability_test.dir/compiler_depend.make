# Empty compiler generated dependencies file for definability_test.
# This may be replaced when dependencies are built.
