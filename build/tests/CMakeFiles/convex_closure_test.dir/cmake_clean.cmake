file(REMOVE_RECURSE
  "CMakeFiles/convex_closure_test.dir/convex_closure_test.cc.o"
  "CMakeFiles/convex_closure_test.dir/convex_closure_test.cc.o.d"
  "convex_closure_test"
  "convex_closure_test.pdb"
  "convex_closure_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convex_closure_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
