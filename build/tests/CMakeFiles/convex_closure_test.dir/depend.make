# Empty dependencies file for convex_closure_test.
# This may be replaced when dependencies are built.
