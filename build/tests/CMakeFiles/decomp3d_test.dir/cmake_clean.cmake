file(REMOVE_RECURSE
  "CMakeFiles/decomp3d_test.dir/decomp3d_test.cc.o"
  "CMakeFiles/decomp3d_test.dir/decomp3d_test.cc.o.d"
  "decomp3d_test"
  "decomp3d_test.pdb"
  "decomp3d_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/decomp3d_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
