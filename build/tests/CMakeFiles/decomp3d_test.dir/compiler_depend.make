# Empty compiler generated dependencies file for decomp3d_test.
# This may be replaced when dependencies are built.
