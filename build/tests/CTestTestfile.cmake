# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/bigint_test[1]_include.cmake")
include("/root/repo/build/tests/rational_test[1]_include.cmake")
include("/root/repo/build/tests/linalg_test[1]_include.cmake")
include("/root/repo/build/tests/lp_test[1]_include.cmake")
include("/root/repo/build/tests/constraint_test[1]_include.cmake")
include("/root/repo/build/tests/qe_test[1]_include.cmake")
include("/root/repo/build/tests/geometry_test[1]_include.cmake")
include("/root/repo/build/tests/arrangement_test[1]_include.cmake")
include("/root/repo/build/tests/decomp_test[1]_include.cmake")
include("/root/repo/build/tests/db_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/capture_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/lp_cross_test[1]_include.cmake")
include("/root/repo/build/tests/data_files_test[1]_include.cmake")
include("/root/repo/build/tests/convex_closure_test[1]_include.cmake")
include("/root/repo/build/tests/decomp3d_test[1]_include.cmake")
include("/root/repo/build/tests/evaluator_extra_test[1]_include.cmake")
include("/root/repo/build/tests/datalog_test[1]_include.cmake")
include("/root/repo/build/tests/definability_test[1]_include.cmake")
include("/root/repo/build/tests/parser_robustness_test[1]_include.cmake")
