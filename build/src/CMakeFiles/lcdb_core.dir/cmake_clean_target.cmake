file(REMOVE_RECURSE
  "liblcdb_core.a"
)
