# Empty compiler generated dependencies file for lcdb_core.
# This may be replaced when dependencies are built.
