
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/ast.cc" "src/CMakeFiles/lcdb_core.dir/core/ast.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/ast.cc.o.d"
  "/root/repo/src/core/definability.cc" "src/CMakeFiles/lcdb_core.dir/core/definability.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/definability.cc.o.d"
  "/root/repo/src/core/evaluator.cc" "src/CMakeFiles/lcdb_core.dir/core/evaluator.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/evaluator.cc.o.d"
  "/root/repo/src/core/fixpoint.cc" "src/CMakeFiles/lcdb_core.dir/core/fixpoint.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/fixpoint.cc.o.d"
  "/root/repo/src/core/parser.cc" "src/CMakeFiles/lcdb_core.dir/core/parser.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/parser.cc.o.d"
  "/root/repo/src/core/queries.cc" "src/CMakeFiles/lcdb_core.dir/core/queries.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/queries.cc.o.d"
  "/root/repo/src/core/rbit.cc" "src/CMakeFiles/lcdb_core.dir/core/rbit.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/rbit.cc.o.d"
  "/root/repo/src/core/transitive_closure.cc" "src/CMakeFiles/lcdb_core.dir/core/transitive_closure.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/transitive_closure.cc.o.d"
  "/root/repo/src/core/typecheck.cc" "src/CMakeFiles/lcdb_core.dir/core/typecheck.cc.o" "gcc" "src/CMakeFiles/lcdb_core.dir/core/typecheck.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_db.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arrangement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_qe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
