file(REMOVE_RECURSE
  "CMakeFiles/lcdb_core.dir/core/ast.cc.o"
  "CMakeFiles/lcdb_core.dir/core/ast.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/definability.cc.o"
  "CMakeFiles/lcdb_core.dir/core/definability.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/evaluator.cc.o"
  "CMakeFiles/lcdb_core.dir/core/evaluator.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/fixpoint.cc.o"
  "CMakeFiles/lcdb_core.dir/core/fixpoint.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/parser.cc.o"
  "CMakeFiles/lcdb_core.dir/core/parser.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/queries.cc.o"
  "CMakeFiles/lcdb_core.dir/core/queries.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/rbit.cc.o"
  "CMakeFiles/lcdb_core.dir/core/rbit.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/transitive_closure.cc.o"
  "CMakeFiles/lcdb_core.dir/core/transitive_closure.cc.o.d"
  "CMakeFiles/lcdb_core.dir/core/typecheck.cc.o"
  "CMakeFiles/lcdb_core.dir/core/typecheck.cc.o.d"
  "liblcdb_core.a"
  "liblcdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
