
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arrangement/arrangement.cc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/arrangement.cc.o" "gcc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/arrangement.cc.o.d"
  "/root/repo/src/arrangement/face.cc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/face.cc.o" "gcc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/face.cc.o.d"
  "/root/repo/src/arrangement/incidence_graph.cc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/incidence_graph.cc.o" "gcc" "src/CMakeFiles/lcdb_arrangement.dir/arrangement/incidence_graph.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_qe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
