file(REMOVE_RECURSE
  "liblcdb_arrangement.a"
)
