file(REMOVE_RECURSE
  "CMakeFiles/lcdb_arrangement.dir/arrangement/arrangement.cc.o"
  "CMakeFiles/lcdb_arrangement.dir/arrangement/arrangement.cc.o.d"
  "CMakeFiles/lcdb_arrangement.dir/arrangement/face.cc.o"
  "CMakeFiles/lcdb_arrangement.dir/arrangement/face.cc.o.d"
  "CMakeFiles/lcdb_arrangement.dir/arrangement/incidence_graph.cc.o"
  "CMakeFiles/lcdb_arrangement.dir/arrangement/incidence_graph.cc.o.d"
  "liblcdb_arrangement.a"
  "liblcdb_arrangement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_arrangement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
