# Empty dependencies file for lcdb_arrangement.
# This may be replaced when dependencies are built.
