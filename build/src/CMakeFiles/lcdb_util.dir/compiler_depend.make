# Empty compiler generated dependencies file for lcdb_util.
# This may be replaced when dependencies are built.
