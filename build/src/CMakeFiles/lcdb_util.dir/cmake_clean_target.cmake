file(REMOVE_RECURSE
  "liblcdb_util.a"
)
