file(REMOVE_RECURSE
  "CMakeFiles/lcdb_util.dir/util/status.cc.o"
  "CMakeFiles/lcdb_util.dir/util/status.cc.o.d"
  "CMakeFiles/lcdb_util.dir/util/strings.cc.o"
  "CMakeFiles/lcdb_util.dir/util/strings.cc.o.d"
  "liblcdb_util.a"
  "liblcdb_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
