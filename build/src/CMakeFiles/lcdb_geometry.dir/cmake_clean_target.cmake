file(REMOVE_RECURSE
  "liblcdb_geometry.a"
)
