# Empty dependencies file for lcdb_geometry.
# This may be replaced when dependencies are built.
