file(REMOVE_RECURSE
  "CMakeFiles/lcdb_geometry.dir/geometry/convex_closure.cc.o"
  "CMakeFiles/lcdb_geometry.dir/geometry/convex_closure.cc.o.d"
  "CMakeFiles/lcdb_geometry.dir/geometry/generator_region.cc.o"
  "CMakeFiles/lcdb_geometry.dir/geometry/generator_region.cc.o.d"
  "CMakeFiles/lcdb_geometry.dir/geometry/hyperplane.cc.o"
  "CMakeFiles/lcdb_geometry.dir/geometry/hyperplane.cc.o.d"
  "CMakeFiles/lcdb_geometry.dir/geometry/predicates.cc.o"
  "CMakeFiles/lcdb_geometry.dir/geometry/predicates.cc.o.d"
  "CMakeFiles/lcdb_geometry.dir/geometry/vertex_enumeration.cc.o"
  "CMakeFiles/lcdb_geometry.dir/geometry/vertex_enumeration.cc.o.d"
  "liblcdb_geometry.a"
  "liblcdb_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
