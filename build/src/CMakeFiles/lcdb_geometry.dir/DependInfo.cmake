
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/convex_closure.cc" "src/CMakeFiles/lcdb_geometry.dir/geometry/convex_closure.cc.o" "gcc" "src/CMakeFiles/lcdb_geometry.dir/geometry/convex_closure.cc.o.d"
  "/root/repo/src/geometry/generator_region.cc" "src/CMakeFiles/lcdb_geometry.dir/geometry/generator_region.cc.o" "gcc" "src/CMakeFiles/lcdb_geometry.dir/geometry/generator_region.cc.o.d"
  "/root/repo/src/geometry/hyperplane.cc" "src/CMakeFiles/lcdb_geometry.dir/geometry/hyperplane.cc.o" "gcc" "src/CMakeFiles/lcdb_geometry.dir/geometry/hyperplane.cc.o.d"
  "/root/repo/src/geometry/predicates.cc" "src/CMakeFiles/lcdb_geometry.dir/geometry/predicates.cc.o" "gcc" "src/CMakeFiles/lcdb_geometry.dir/geometry/predicates.cc.o.d"
  "/root/repo/src/geometry/vertex_enumeration.cc" "src/CMakeFiles/lcdb_geometry.dir/geometry/vertex_enumeration.cc.o" "gcc" "src/CMakeFiles/lcdb_geometry.dir/geometry/vertex_enumeration.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_qe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
