file(REMOVE_RECURSE
  "CMakeFiles/lcdb_qe.dir/qe/fourier_motzkin.cc.o"
  "CMakeFiles/lcdb_qe.dir/qe/fourier_motzkin.cc.o.d"
  "liblcdb_qe.a"
  "liblcdb_qe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_qe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
