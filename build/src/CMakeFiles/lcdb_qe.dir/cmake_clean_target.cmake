file(REMOVE_RECURSE
  "liblcdb_qe.a"
)
