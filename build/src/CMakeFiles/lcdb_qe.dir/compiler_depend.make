# Empty compiler generated dependencies file for lcdb_qe.
# This may be replaced when dependencies are built.
