# Empty compiler generated dependencies file for lcdb_capture.
# This may be replaced when dependencies are built.
