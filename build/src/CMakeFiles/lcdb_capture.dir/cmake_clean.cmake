file(REMOVE_RECURSE
  "CMakeFiles/lcdb_capture.dir/capture/encoding.cc.o"
  "CMakeFiles/lcdb_capture.dir/capture/encoding.cc.o.d"
  "CMakeFiles/lcdb_capture.dir/capture/region_order.cc.o"
  "CMakeFiles/lcdb_capture.dir/capture/region_order.cc.o.d"
  "CMakeFiles/lcdb_capture.dir/capture/turing_machine.cc.o"
  "CMakeFiles/lcdb_capture.dir/capture/turing_machine.cc.o.d"
  "liblcdb_capture.a"
  "liblcdb_capture.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_capture.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
