file(REMOVE_RECURSE
  "liblcdb_capture.a"
)
