file(REMOVE_RECURSE
  "CMakeFiles/lcdb_arith.dir/arith/bigint.cc.o"
  "CMakeFiles/lcdb_arith.dir/arith/bigint.cc.o.d"
  "CMakeFiles/lcdb_arith.dir/arith/rational.cc.o"
  "CMakeFiles/lcdb_arith.dir/arith/rational.cc.o.d"
  "liblcdb_arith.a"
  "liblcdb_arith.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_arith.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
