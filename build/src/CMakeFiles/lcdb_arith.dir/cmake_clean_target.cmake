file(REMOVE_RECURSE
  "liblcdb_arith.a"
)
