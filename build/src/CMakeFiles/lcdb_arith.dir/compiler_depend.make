# Empty compiler generated dependencies file for lcdb_arith.
# This may be replaced when dependencies are built.
