# Empty compiler generated dependencies file for lcdb_db.
# This may be replaced when dependencies are built.
