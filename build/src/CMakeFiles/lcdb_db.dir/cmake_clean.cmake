file(REMOVE_RECURSE
  "CMakeFiles/lcdb_db.dir/db/arrangement_extension.cc.o"
  "CMakeFiles/lcdb_db.dir/db/arrangement_extension.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/database.cc.o"
  "CMakeFiles/lcdb_db.dir/db/database.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/decomp_extension.cc.o"
  "CMakeFiles/lcdb_db.dir/db/decomp_extension.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/geometric_baselines.cc.o"
  "CMakeFiles/lcdb_db.dir/db/geometric_baselines.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/io.cc.o"
  "CMakeFiles/lcdb_db.dir/db/io.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/region_extension.cc.o"
  "CMakeFiles/lcdb_db.dir/db/region_extension.cc.o.d"
  "CMakeFiles/lcdb_db.dir/db/workloads.cc.o"
  "CMakeFiles/lcdb_db.dir/db/workloads.cc.o.d"
  "liblcdb_db.a"
  "liblcdb_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
