
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/db/arrangement_extension.cc" "src/CMakeFiles/lcdb_db.dir/db/arrangement_extension.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/arrangement_extension.cc.o.d"
  "/root/repo/src/db/database.cc" "src/CMakeFiles/lcdb_db.dir/db/database.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/database.cc.o.d"
  "/root/repo/src/db/decomp_extension.cc" "src/CMakeFiles/lcdb_db.dir/db/decomp_extension.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/decomp_extension.cc.o.d"
  "/root/repo/src/db/geometric_baselines.cc" "src/CMakeFiles/lcdb_db.dir/db/geometric_baselines.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/geometric_baselines.cc.o.d"
  "/root/repo/src/db/io.cc" "src/CMakeFiles/lcdb_db.dir/db/io.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/io.cc.o.d"
  "/root/repo/src/db/region_extension.cc" "src/CMakeFiles/lcdb_db.dir/db/region_extension.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/region_extension.cc.o.d"
  "/root/repo/src/db/workloads.cc" "src/CMakeFiles/lcdb_db.dir/db/workloads.cc.o" "gcc" "src/CMakeFiles/lcdb_db.dir/db/workloads.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_arrangement.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_decomp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_qe.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_constraint.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
