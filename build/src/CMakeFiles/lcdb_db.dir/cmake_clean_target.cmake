file(REMOVE_RECURSE
  "liblcdb_db.a"
)
