file(REMOVE_RECURSE
  "CMakeFiles/lcdb_decomp.dir/decomp/decomposition.cc.o"
  "CMakeFiles/lcdb_decomp.dir/decomp/decomposition.cc.o.d"
  "liblcdb_decomp.a"
  "liblcdb_decomp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_decomp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
