file(REMOVE_RECURSE
  "liblcdb_decomp.a"
)
