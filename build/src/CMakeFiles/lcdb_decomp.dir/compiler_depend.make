# Empty compiler generated dependencies file for lcdb_decomp.
# This may be replaced when dependencies are built.
