file(REMOVE_RECURSE
  "liblcdb_linalg.a"
)
