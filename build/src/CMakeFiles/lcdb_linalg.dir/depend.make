# Empty dependencies file for lcdb_linalg.
# This may be replaced when dependencies are built.
