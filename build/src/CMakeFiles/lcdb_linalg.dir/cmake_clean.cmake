file(REMOVE_RECURSE
  "CMakeFiles/lcdb_linalg.dir/linalg/gauss.cc.o"
  "CMakeFiles/lcdb_linalg.dir/linalg/gauss.cc.o.d"
  "CMakeFiles/lcdb_linalg.dir/linalg/matrix.cc.o"
  "CMakeFiles/lcdb_linalg.dir/linalg/matrix.cc.o.d"
  "liblcdb_linalg.a"
  "liblcdb_linalg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_linalg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
