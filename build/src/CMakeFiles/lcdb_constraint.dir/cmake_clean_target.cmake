file(REMOVE_RECURSE
  "liblcdb_constraint.a"
)
