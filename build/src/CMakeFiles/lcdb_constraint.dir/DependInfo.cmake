
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/constraint/conjunction.cc" "src/CMakeFiles/lcdb_constraint.dir/constraint/conjunction.cc.o" "gcc" "src/CMakeFiles/lcdb_constraint.dir/constraint/conjunction.cc.o.d"
  "/root/repo/src/constraint/dnf_formula.cc" "src/CMakeFiles/lcdb_constraint.dir/constraint/dnf_formula.cc.o" "gcc" "src/CMakeFiles/lcdb_constraint.dir/constraint/dnf_formula.cc.o.d"
  "/root/repo/src/constraint/linear_atom.cc" "src/CMakeFiles/lcdb_constraint.dir/constraint/linear_atom.cc.o" "gcc" "src/CMakeFiles/lcdb_constraint.dir/constraint/linear_atom.cc.o.d"
  "/root/repo/src/constraint/parser.cc" "src/CMakeFiles/lcdb_constraint.dir/constraint/parser.cc.o" "gcc" "src/CMakeFiles/lcdb_constraint.dir/constraint/parser.cc.o.d"
  "/root/repo/src/constraint/simplify.cc" "src/CMakeFiles/lcdb_constraint.dir/constraint/simplify.cc.o" "gcc" "src/CMakeFiles/lcdb_constraint.dir/constraint/simplify.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/lcdb_lp.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_linalg.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_arith.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/lcdb_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
