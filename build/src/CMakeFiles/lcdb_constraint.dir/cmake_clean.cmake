file(REMOVE_RECURSE
  "CMakeFiles/lcdb_constraint.dir/constraint/conjunction.cc.o"
  "CMakeFiles/lcdb_constraint.dir/constraint/conjunction.cc.o.d"
  "CMakeFiles/lcdb_constraint.dir/constraint/dnf_formula.cc.o"
  "CMakeFiles/lcdb_constraint.dir/constraint/dnf_formula.cc.o.d"
  "CMakeFiles/lcdb_constraint.dir/constraint/linear_atom.cc.o"
  "CMakeFiles/lcdb_constraint.dir/constraint/linear_atom.cc.o.d"
  "CMakeFiles/lcdb_constraint.dir/constraint/parser.cc.o"
  "CMakeFiles/lcdb_constraint.dir/constraint/parser.cc.o.d"
  "CMakeFiles/lcdb_constraint.dir/constraint/simplify.cc.o"
  "CMakeFiles/lcdb_constraint.dir/constraint/simplify.cc.o.d"
  "liblcdb_constraint.a"
  "liblcdb_constraint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_constraint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
