# Empty compiler generated dependencies file for lcdb_constraint.
# This may be replaced when dependencies are built.
