file(REMOVE_RECURSE
  "liblcdb_datalog.a"
)
