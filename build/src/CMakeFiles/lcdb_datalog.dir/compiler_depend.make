# Empty compiler generated dependencies file for lcdb_datalog.
# This may be replaced when dependencies are built.
