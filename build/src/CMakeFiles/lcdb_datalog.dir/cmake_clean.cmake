file(REMOVE_RECURSE
  "CMakeFiles/lcdb_datalog.dir/datalog/spatial_datalog.cc.o"
  "CMakeFiles/lcdb_datalog.dir/datalog/spatial_datalog.cc.o.d"
  "liblcdb_datalog.a"
  "liblcdb_datalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_datalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
