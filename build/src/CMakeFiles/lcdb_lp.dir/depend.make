# Empty dependencies file for lcdb_lp.
# This may be replaced when dependencies are built.
