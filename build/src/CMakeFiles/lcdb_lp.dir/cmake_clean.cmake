file(REMOVE_RECURSE
  "CMakeFiles/lcdb_lp.dir/lp/feasibility.cc.o"
  "CMakeFiles/lcdb_lp.dir/lp/feasibility.cc.o.d"
  "CMakeFiles/lcdb_lp.dir/lp/simplex.cc.o"
  "CMakeFiles/lcdb_lp.dir/lp/simplex.cc.o.d"
  "liblcdb_lp.a"
  "liblcdb_lp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lcdb_lp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
