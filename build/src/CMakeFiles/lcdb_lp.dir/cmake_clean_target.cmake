file(REMOVE_RECURSE
  "liblcdb_lp.a"
)
