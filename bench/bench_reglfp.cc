// Experiment T6.1 (DESIGN.md): Theorem 6.1 — RegLFP data complexity is
// PTIME. The connectivity query (the paper's Section 5 flagship) is
// evaluated on comb/staircase families of growing region count; the
// benchmark reports regions, fixed-point iterations (bounded by |Reg|^k)
// and compares against the union-find geometric baseline.

#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "constraint/simplify.h"
#include "util/failpoint.h"
#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/geometric_baselines.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/obslog.h"
#include "engine/profiler.h"
#include "engine/trace.h"

namespace {

/// Oracle-call columns (EXPERIMENTS.md, "Oracle-call telemetry"): the
/// kernel counters an evaluator attributed to its own run, including the
/// share spent inside fixed-point iteration.
void ReportKernelCounters(benchmark::State& state,
                          const lcdb::Evaluator::Stats& stats) {
  state.counters["oracle_calls"] =
      static_cast<double>(stats.kernel.oracle_calls);
  state.counters["cache_hits"] =
      static_cast<double>(stats.kernel.cache_hits);
  state.counters["simplex_invocations"] =
      static_cast<double>(stats.kernel.simplex_invocations);
  state.counters["fixpoint_oracle_calls"] =
      static_cast<double>(stats.fixpoint_feasibility_queries);
}

void BM_RegLfpConnectivity(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const bool connected = state.range(1) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, connected);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  size_t iterations = 0;
  lcdb::Evaluator::Stats last_stats;
  for (auto _ : state) {
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (*result != connected) state.SkipWithError("wrong connectivity");
    iterations = evaluator.stats().fixpoint_iterations;
    last_stats = evaluator.stats();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["lfp_iterations"] = static_cast<double>(iterations);
  ReportKernelCounters(state, last_stats);
}

BENCHMARK(BM_RegLfpConnectivity)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Unit(benchmark::kMillisecond);

/// Governor overhead experiment (EXPERIMENTS.md, "Governor telemetry"):
/// the same connectivity run with a QueryGovernor installed whose budgets
/// are all unlimited — every checkpoint is paid for, none trips. Compare
/// this timing against BM_RegLfpConnectivity at the same arity to bound
/// the governed-path tax (goal: under 2%). The counters expose how many
/// checkpoints and strided deadline reads the run actually performed.
void BM_GovernedConnectivity(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  lcdb::GovernorStats gstats;
  for (auto _ : state) {
    lcdb::GovernorLimits limits;  // everything unlimited, nothing trips
    limits.wall_clock_ms = 600000;  // but the deadline clock is live
    lcdb::QueryGovernor governor(limits);
    lcdb::ScopedGovernor scoped(governor);
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("comb should be connected");
    gstats = governor.stats();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["governor_checkpoints"] =
      static_cast<double>(gstats.checkpoints);
  state.counters["deadline_checks"] =
      static_cast<double>(gstats.deadline_checks);
  state.counters["budget_trips"] = static_cast<double>(gstats.budget_trips);
}

BENCHMARK(BM_GovernedConnectivity)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Tracer overhead experiment (EXPERIMENTS.md, "Tracing and metrics"): the
/// connectivity run with tracing disabled (Arg 0 — every span site is one
/// relaxed atomic load, the failpoint contract) and enabled (Arg 1 — spans
/// recorded into a fresh per-iteration ring). Compare the Arg(0) timing
/// against BM_RegLfpConnectivity at the same arity to bound the
/// disabled-path tax (goal: under 2%); Arg(1) prices the recording path,
/// with the span volume in the counters.
void BM_TracingOverhead(benchmark::State& state) {
  const size_t teeth = 3;
  const bool enabled = state.range(0) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  uint64_t spans_recorded = 0;
  uint64_t spans_dropped = 0;
  for (auto _ : state) {
    std::unique_ptr<lcdb::QueryTracer> tracer;
    std::unique_ptr<lcdb::ScopedTracer> scoped;
    if (enabled) {
      tracer = std::make_unique<lcdb::QueryTracer>();
      scoped = std::make_unique<lcdb::ScopedTracer>(*tracer);
    }
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("comb should be connected");
    if (tracer != nullptr) {
      spans_recorded = tracer->spans_begun();
      spans_dropped = tracer->spans_dropped();
    }
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["tracing_enabled"] = enabled ? 1 : 0;
  state.counters["spans_recorded"] = static_cast<double>(spans_recorded);
  state.counters["spans_dropped"] = static_cast<double>(spans_dropped);
}

BENCHMARK(BM_TracingOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Fleet-observability overhead experiment (EXPERIMENTS.md, "Fleet
/// observability"): the connectivity run without any observability (Arg 0)
/// and with the full always-on stack (Arg 1) — a flight recorder appending
/// one record per query plus the continuous profiler at its production
/// 1-in-64 sampling rate, driven exactly as QuerySession drives it. The CI
/// acceptance gate compares the two timings: the Arg(1) tax must stay
/// under 2%, since a recorder that distorts the fleet it observes is
/// useless for attribution. Only every 64th iteration pays for span
/// recording; the other 63 pay one relaxed atomic load per span site plus
/// one record append.
void BM_ObsLogOverhead(benchmark::State& state) {
  const size_t teeth = 3;
  const bool enabled = state.range(0) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  std::unique_ptr<lcdb::QueryFlightRecorder> recorder;
  std::unique_ptr<lcdb::ScopedFlightRecorder> scoped_recorder;
  std::unique_ptr<lcdb::ContinuousProfiler> profiler;
  if (enabled) {
    recorder = std::make_unique<lcdb::QueryFlightRecorder>();
    scoped_recorder = std::make_unique<lcdb::ScopedFlightRecorder>(*recorder);
    lcdb::ContinuousProfiler::Options options;
    options.sample_every = 64;
    profiler = std::make_unique<lcdb::ContinuousProfiler>(options);
  }
  for (auto _ : state) {
    const bool sampled = profiler != nullptr && profiler->ShouldSample();
    std::unique_ptr<lcdb::QueryTracer> tracer;
    std::unique_ptr<lcdb::ScopedTracer> scoped_tracer;
    if (sampled) {
      tracer = std::make_unique<lcdb::QueryTracer>();
      scoped_tracer = std::make_unique<lcdb::ScopedTracer>(*tracer);
    }
    const uint64_t start_ns = lcdb::ObsNowNs();
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("comb should be connected");
    if (profiler != nullptr) {
      profiler->RecordQuery(lcdb::ObsNowNs() - start_ns, !result.ok(),
                            tracer.get());
    }
    benchmark::DoNotOptimize(*result);
  }
  state.counters["obslog_enabled"] = enabled ? 1 : 0;
  if (recorder != nullptr) {
    state.counters["records_appended"] =
        static_cast<double>(recorder->appended());
    state.counters["records_dropped"] =
        static_cast<double>(recorder->dropped());
  }
  if (profiler != nullptr) {
    state.counters["queries_sampled"] =
        static_cast<double>(profiler->queries_sampled());
  }
}

BENCHMARK(BM_ObsLogOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Kernel-memoization acceptance experiment on a full fixed-point workload:
/// the river-pollution sentence (Figure 6 — LFP with element-sort side
/// conditions, so its stages lean hard on the feasibility oracle) plus an
/// open connectivity query, evaluated against a caching kernel and a
/// cache-disabled kernel. The caching run must spend strictly fewer simplex
/// invocations, while both runs must agree — the sentence boolean exactly,
/// the open answer up to AreEquivalent. (The pure region-quantified
/// connectivity sentence is a poor subject here: the evaluator's own
/// subformula memo already removes its repeated oracle questions.)
void BM_KernelMemoRiver(benchmark::State& state) {
  lcdb::ConstraintDatabase db = lcdb::MakeRiverScenario(2, {}, {0}, {1});
  auto ext = lcdb::MakeArrangementExtension(db);
  // Warm the extension's lazy predicate caches under the default kernel so
  // neither measured run pays for (or gets credited with) that work.
  (void)lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
  lcdb::KernelStats with_memo, without_memo;
  bool equivalent = false;
  for (auto _ : state) {
    lcdb::ConstraintKernel on(
        lcdb::ConstraintKernel::Options{/*memoize=*/true});
    lcdb::ConstraintKernel off(
        lcdb::ConstraintKernel::Options{/*memoize=*/false});
    bool sentence_on = false, sentence_off = false;
    lcdb::DnfFormula open_on = lcdb::DnfFormula::False(0);
    lcdb::DnfFormula open_off = lcdb::DnfFormula::False(0);
    {
      lcdb::ScopedKernel scope(on);
      auto sentence =
          lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
      auto open = lcdb::EvaluateQueryText(*ext, "exists y . S(x, y)");
      if (!sentence.ok() || !open.ok()) {
        state.SkipWithError("evaluation failed");
        break;
      }
      sentence_on = *sentence;
      open_on = open->formula;
    }
    {
      lcdb::ScopedKernel scope(off);
      auto sentence =
          lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
      auto open = lcdb::EvaluateQueryText(*ext, "exists y . S(x, y)");
      if (!sentence.ok() || !open.ok()) {
        state.SkipWithError("evaluation failed");
        break;
      }
      sentence_off = *sentence;
      open_off = open->formula;
    }
    with_memo = on.stats();
    without_memo = off.stats();
    {
      lcdb::ScopedKernel scope(on);
      equivalent = sentence_on == sentence_off &&
                   lcdb::AreEquivalent(open_on, open_off);
    }
    if (!equivalent) state.SkipWithError("cached answer diverged");
    benchmark::DoNotOptimize(equivalent);
  }
  state.counters["oracle_calls_on"] =
      static_cast<double>(with_memo.oracle_calls);
  state.counters["oracle_calls_off"] =
      static_cast<double>(without_memo.oracle_calls);
  state.counters["simplex_invocations_on"] =
      static_cast<double>(with_memo.simplex_invocations);
  state.counters["simplex_invocations_off"] =
      static_cast<double>(without_memo.simplex_invocations);
  state.counters["cache_hits"] = static_cast<double>(with_memo.cache_hits);
  state.counters["answers_equivalent"] = equivalent ? 1 : 0;
}

BENCHMARK(BM_KernelMemoRiver)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Lemma-database acceptance experiment (ISSUE 7 / EXPERIMENTS.md "Lemma
/// database hit rate"): a repeated-query serving workload on the comb
/// family under three kernel configurations — the activity-managed lemma
/// database, the per-kernel LRU baseline, and memoize-off. The workload
/// models serving: every request (each round's arrangement refresh, and
/// each query after it) runs in a FRESH ConstraintKernel, exactly how the
/// evaluator's ScopedKernel scopes work per query. The lemma configuration
/// attaches all request kernels to one shared LemmaDatabase, so round 2's
/// refresh and every query hit the lemmas round 1 proved; the LRU
/// baseline's caches are per-kernel state that dies with each request, so
/// every request starts cold and only intra-request reuse hits. This is
/// the architectural difference the lemma DB exists for — lemma lifetime
/// decoupled from kernel scope — not a replacement-policy microbenchmark.
/// Acceptance: lemma_hit_rate >= lru_hit_rate (lemma_ge_lru == 1) and
/// byte-identical answers across all three configurations
/// (answers_identical == 1). A deliberately tight `capacity` keeps the
/// store under eviction pressure; the eviction-quality counters expose
/// *what* was evicted, not just how much.
void BM_LemmaDbVsLru(benchmark::State& state) {
  const int teeth = static_cast<int>(state.range(0));
  const size_t capacity = static_cast<size_t>(state.range(1));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, true);
  const std::vector<std::string> round = {
      lcdb::RegionConnQueryText(),
      "exists R . (subset(R) & !(bounded(R)))",
      "forall R . (subset(R) -> exists R' . (adj(R, R') | R = R'))",
      "exists R R' . [rbit x : x > 0](R, R')",
  };
  constexpr int kRounds = 3;
  lcdb::KernelStats lemma_stats, lru_stats;
  bool identical = false;
  for (auto _ : state) {
    lemma_stats = lcdb::KernelStats();
    lru_stats = lcdb::KernelStats();
    lcdb::LemmaDatabase::Options store_options;
    store_options.max_entries = capacity;
    auto store = std::make_shared<lcdb::LemmaDatabase>(store_options);
    const lcdb::ConstraintKernel::Options lemma_options{
        /*memoize=*/true, capacity, /*use_lemma_db=*/true};
    // Equal total budget for the baseline: the lemma DB is one unified
    // pool of `capacity` entries; the LRU kernel keeps two maps
    // (feasibility and implications) bounded separately, so each gets
    // half.
    const lcdb::ConstraintKernel::Options lru_options{
        /*memoize=*/true, capacity / 2, /*use_lemma_db=*/false};
    const lcdb::ConstraintKernel::Options off_options{/*memoize=*/false};

    std::vector<std::string> answers[3];
    bool failed = false;
    for (int config = 0; config < 3 && !failed; ++config) {
      // One request = one fresh kernel. Only the lemma configuration
      // carries state (the shared store) from one request to the next.
      auto request_kernel = [&]() {
        switch (config) {
          case 0:
            return std::make_unique<lcdb::ConstraintKernel>(lemma_options,
                                                            store);
          case 1:
            return std::make_unique<lcdb::ConstraintKernel>(lru_options);
          default:
            return std::make_unique<lcdb::ConstraintKernel>(off_options);
        }
      };
      auto settle = [&](const lcdb::ConstraintKernel& kernel) {
        if (config == 0) lemma_stats += kernel.stats();
        if (config == 1) lru_stats += kernel.stats();
      };
      for (int r = 0; r < kRounds && !failed; ++r) {
        // Request 0 of the round: refresh the arrangement. Its kernel
        // traffic (the dominant share) replays the same canonical systems
        // every round.
        std::shared_ptr<lcdb::RegionExtension> ext;
        {
          auto kernel = request_kernel();
          lcdb::ScopedKernel scope(*kernel);
          ext = lcdb::MakeArrangementExtension(db);
          settle(*kernel);
        }
        for (const std::string& text : round) {
          auto kernel = request_kernel();
          lcdb::ScopedKernel scope(*kernel);
          auto sentence = lcdb::EvaluateSentenceText(*ext, text);
          settle(*kernel);
          if (!sentence.ok()) {
            state.SkipWithError("evaluation failed");
            failed = true;
            break;
          }
          answers[config].push_back(*sentence ? "t" : "f");
        }
      }
    }
    if (failed) break;
    identical = answers[0] == answers[1] && answers[1] == answers[2];
    if (!identical) state.SkipWithError("backend answers diverged");
    benchmark::DoNotOptimize(identical);
  }
  auto hit_rate = [](const lcdb::KernelStats& s) {
    const double hits = static_cast<double>(s.cache_hits) +
                        static_cast<double>(s.implication_cache_hits);
    const double total = hits + static_cast<double>(s.cache_misses) +
                         static_cast<double>(s.implication_cache_misses);
    return total == 0.0 ? 0.0 : hits / total;
  };
  const double lemma_rate = hit_rate(lemma_stats);
  const double lru_rate = hit_rate(lru_stats);
  state.counters["lemma_hit_rate"] = lemma_rate;
  state.counters["lru_hit_rate"] = lru_rate;
  state.counters["lemma_ge_lru"] = lemma_rate >= lru_rate ? 1 : 0;
  state.counters["lemma_oracle_calls"] =
      static_cast<double>(lemma_stats.oracle_calls);
  state.counters["lru_oracle_calls"] =
      static_cast<double>(lru_stats.oracle_calls);
  state.counters["lemma_evictions_core"] =
      static_cast<double>(lemma_stats.lemma_evictions_core);
  state.counters["lemma_evictions_frequent"] =
      static_cast<double>(lemma_stats.lemma_evictions_frequent);
  state.counters["lemma_evictions_transient"] =
      static_cast<double>(lemma_stats.lemma_evictions_transient);
  state.counters["lru_evictions"] =
      static_cast<double>(lru_stats.cache_evictions);
  state.counters["answers_identical"] = identical ? 1 : 0;
}

BENCHMARK(BM_LemmaDbVsLru)
    ->Args({2, 96})
    ->Args({3, 192})
    ->Args({3, 512})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

/// Optimizer-ablation acceptance experiment (EXPERIMENTS.md, "Plan
/// optimizer telemetry"): the connectivity sentence through the plan
/// pipeline with the pass pipeline on vs off. The optimized run must spend
/// strictly fewer Stats::node_evaluations — the win comes from narrowing
/// the region-pure sentence to boolean mode and from cache marking
/// (optimize=false also runs without any subformula caching).
void BM_PlanOptimizerAblation(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  lcdb::Evaluator::Stats optimized, raw;
  for (auto _ : state) {
    for (bool optimize : {true, false}) {
      lcdb::Evaluator::Options options;
      options.optimize = optimize;
      lcdb::Evaluator evaluator(*ext, options);
      auto result = evaluator.EvaluateSentence(**query);
      if (!result.ok() || !*result) {
        state.SkipWithError("connectivity sentence broken");
        break;
      }
      (optimize ? optimized : raw) = evaluator.stats();
    }
    benchmark::DoNotOptimize(optimized.node_evaluations);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["node_evals_optimized"] =
      static_cast<double>(optimized.node_evaluations);
  state.counters["node_evals_raw"] =
      static_cast<double>(raw.node_evaluations);
  state.counters["bool_evals_optimized"] =
      static_cast<double>(optimized.bool_evaluations);
  state.counters["bool_evals_raw"] =
      static_cast<double>(raw.bool_evaluations);
  state.counters["memo_hits_optimized"] =
      static_cast<double>(optimized.memo_hits);
  state.counters["narrowed_subtrees"] =
      static_cast<double>(optimized.plan.narrowed_subtrees);
  state.counters["hoisted_invariants"] =
      static_cast<double>(optimized.plan.hoisted_invariants);
  state.counters["strictly_lower"] =
      optimized.node_evaluations < raw.node_evaluations ? 1 : 0;
}

BENCHMARK(BM_PlanOptimizerAblation)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

/// Dispatch-overhead experiment (EXPERIMENTS.md, "Bytecode VM telemetry"):
/// the connectivity sentence through the plan-tree walk (Arg 1 = 0) vs the
/// register-bytecode VM (Arg 1 = 1) on the comb family. Both backends are
/// byte-identical in answers and memo cadence, so the timing delta isolates
/// interpretation overhead: tree-node virtual-ish dispatch + string-keyed
/// environment maps against dense fixed-width instructions, flat register
/// slots, and inline-cached kernel call sites. Counters expose the VM's
/// instruction volume and inline-cache economics.
void BM_VmDispatch(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const bool use_vm = state.range(1) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  lcdb::Evaluator::Stats last;
  for (auto _ : state) {
    lcdb::Evaluator::Options options;
    options.use_bytecode = use_vm;
    lcdb::Evaluator evaluator(*ext, options);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("comb should be connected");
    last = evaluator.stats();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["vm"] = use_vm ? 1 : 0;
  state.counters["node_evals"] = static_cast<double>(last.node_evaluations);
  state.counters["vm_instructions"] =
      static_cast<double>(last.vm.instructions);
  state.counters["icache_hits"] = static_cast<double>(last.vm.icache_hits);
  state.counters["icache_misses"] =
      static_cast<double>(last.vm.icache_misses);
}

BENCHMARK(BM_VmDispatch)
    ->Args({2, 0})
    ->Args({2, 1})
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Unit(benchmark::kMillisecond);

/// Static-verification overhead experiment (EXPERIMENTS.md, "Static
/// verification telemetry"): the connectivity sentence through the bytecode
/// VM with the tier-3 verifiers ablated (Arg 0 — the `--no-verify` path:
/// no plan invariant walk, no abstract-interpretation pass, the VM's
/// refusal gate waived) and armed (Arg 1 — the default: VerifyPlan after
/// optimization plus the full bytecode dataflow before the first
/// instruction executes). Verification is compile-time-only work per
/// query, so the CI acceptance gate compares the two timings and requires
/// the Arg(1) tax to stay under 2%. Counters expose the verified volume.
void BM_VerifyOverhead(benchmark::State& state) {
  const size_t teeth = 3;
  const bool verify = state.range(0) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  lcdb::Evaluator::Stats last;
  for (auto _ : state) {
    lcdb::Evaluator::Options options;
    options.use_bytecode = true;
    options.verify = verify;
    lcdb::Evaluator evaluator(*ext, options);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("comb should be connected");
    last = evaluator.stats();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["verify_enabled"] = verify ? 1 : 0;
  state.counters["plans_verified"] =
      static_cast<double>(last.verify.plans_verified);
  state.counters["instructions_verified"] =
      static_cast<double>(last.verify.instructions_verified);
  state.counters["loops_verified"] =
      static_cast<double>(last.verify.loops_verified);
}

BENCHMARK(BM_VerifyOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

/// Checkpoint/resume acceptance experiment (EXPERIMENTS.md, "Chaos and
/// resilience telemetry"): the connectivity sentence under four modes.
///   mode 0  uninterrupted, checkpoint capture OFF — the baseline;
///   mode 1  uninterrupted, checkpoint capture ON — prices the capture
///           tax on the no-trip path (acceptance: within 2% of mode 0);
///   mode 2  the fixpoint.stage failpoint trips the Kleene loop after its
///           second stage, then the run resumes from the returned token;
///   mode 3  same trip, but the token is dropped and the query recomputes
///           from scratch — what resume saves.
/// Compare mode 2 vs mode 3 timings; `fixpoints_resumed`/`sets_restored`
/// confirm the resumed run actually continued from the checkpoint, and
/// every mode's answer must equal the uninterrupted reference byte for
/// byte (the resume contract from core/resume.h).
void BM_ResumeVsRecompute(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const int mode = static_cast<int>(state.range(1));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  std::string reference;
  {
    lcdb::Evaluator evaluator(*ext);
    auto answer = evaluator.Evaluate(**query);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      return;
    }
    reference = answer->ToString();
  }
  lcdb::Evaluator::Stats last;
  for (auto _ : state) {
    lcdb::Evaluator::Options options;
    options.capture_resume = mode != 0;
    lcdb::Evaluator evaluator(*ext, options);
    uint64_t token = 0;
    if (mode >= 2) {
      lcdb::ArmFailpoint("fixpoint.stage",
                         lcdb::StatusCode::kResourceExhausted,
                         "bench-injected trip", /*skip_hits=*/1);
      auto tripped = evaluator.Evaluate(**query);
      lcdb::DisarmAllFailpoints();
      if (tripped.ok()) {
        state.SkipWithError("expected the injected trip to fire");
        break;
      }
      if (mode == 2) token = tripped.status().resume_token();
    }
    auto answer = evaluator.Evaluate(**query, token);
    if (!answer.ok()) {
      state.SkipWithError(answer.status().ToString().c_str());
      break;
    }
    if (answer->ToString() != reference) {
      state.SkipWithError("post-trip answer diverged from the reference");
      break;
    }
    last = evaluator.stats();
    benchmark::DoNotOptimize(answer->formula);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["mode"] = mode;
  state.counters["fixpoint_iterations"] =
      static_cast<double>(last.fixpoint_iterations);
  state.counters["fixpoints_resumed"] =
      static_cast<double>(last.resume_fixpoints_resumed);
  state.counters["sets_restored"] =
      static_cast<double>(last.resume_sets_restored);
  state.counters["stages_skipped"] =
      static_cast<double>(last.resume_stages_skipped);
}

BENCHMARK(BM_ResumeVsRecompute)
    ->Args({3, 0})
    ->Args({3, 1})
    ->Args({3, 2})
    ->Args({3, 3})
    ->Args({4, 0})
    ->Args({4, 1})
    ->Args({4, 2})
    ->Args({4, 3})
    ->Unit(benchmark::kMillisecond);

void BM_RegLfpStaircase(benchmark::State& state) {
  const size_t steps = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeStaircase(steps);
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result =
        lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnQueryText());
    if (!result.ok() || !*result) state.SkipWithError("staircase broken");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RegLfpStaircase)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GeometricBaseline(benchmark::State& state) {
  // The comparator: same answers, hand-written algorithm (DESIGN.md's
  // substitution for the Grumbach-Kuper language [11]). "Who wins": the
  // baseline, by a wide interpretive margin — the generic evaluator pays
  // for full logic generality with the same polynomial shape.
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  // Warm the extension's lazy caches so only graph traversal is measured.
  (void)lcdb::SpatialConnectivityBaseline(*ext);
  for (auto _ : state) {
    bool connected = lcdb::SpatialConnectivityBaseline(*ext);
    if (!connected) state.SkipWithError("baseline wrong");
    benchmark::DoNotOptimize(connected);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_GeometricBaseline)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The paper's literal point-quantified Conn (element quantifiers + QE) on
// small instances — the expensive end of Theorem 6.1's algorithm.
void BM_LiteralConnQuery(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/false);
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result = lcdb::EvaluateSentenceText(*ext, lcdb::ConnQueryText(2));
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_LiteralConnQuery)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The river query (Figure 6): LFP with element-sort side conditions.
void BM_RiverQuery(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db =
      lcdb::MakeRiverScenario(len, {}, {0}, {len - 1});
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result =
        lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
    if (!result.ok() || !*result) state.SkipWithError("river broken");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RiverQuery)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
