// Experiment T6.1 (DESIGN.md): Theorem 6.1 — RegLFP data complexity is
// PTIME. The connectivity query (the paper's Section 5 flagship) is
// evaluated on comb/staircase families of growing region count; the
// benchmark reports regions, fixed-point iterations (bounded by |Reg|^k)
// and compares against the union-find geometric baseline.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/geometric_baselines.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

void BM_RegLfpConnectivity(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const bool connected = state.range(1) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, connected);
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RegionConnQueryText(), "S");
  size_t iterations = 0;
  for (auto _ : state) {
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (*result != connected) state.SkipWithError("wrong connectivity");
    iterations = evaluator.stats().fixpoint_iterations;
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["lfp_iterations"] = static_cast<double>(iterations);
}

BENCHMARK(BM_RegLfpConnectivity)
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Args({4, 1})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Unit(benchmark::kMillisecond);

void BM_RegLfpStaircase(benchmark::State& state) {
  const size_t steps = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeStaircase(steps);
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result =
        lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnQueryText());
    if (!result.ok() || !*result) state.SkipWithError("staircase broken");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RegLfpStaircase)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_GeometricBaseline(benchmark::State& state) {
  // The comparator: same answers, hand-written algorithm (DESIGN.md's
  // substitution for the Grumbach-Kuper language [11]). "Who wins": the
  // baseline, by a wide interpretive margin — the generic evaluator pays
  // for full logic generality with the same polynomial shape.
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  // Warm the extension's lazy caches so only graph traversal is measured.
  (void)lcdb::SpatialConnectivityBaseline(*ext);
  for (auto _ : state) {
    bool connected = lcdb::SpatialConnectivityBaseline(*ext);
    if (!connected) state.SkipWithError("baseline wrong");
    benchmark::DoNotOptimize(connected);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_GeometricBaseline)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

// The paper's literal point-quantified Conn (element quantifiers + QE) on
// small instances — the expensive end of Theorem 6.1's algorithm.
void BM_LiteralConnQuery(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/false);
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result = lcdb::EvaluateSentenceText(*ext, lcdb::ConnQueryText(2));
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_LiteralConnQuery)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

// The river query (Figure 6): LFP with element-sort side conditions.
void BM_RiverQuery(benchmark::State& state) {
  const size_t len = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db =
      lcdb::MakeRiverScenario(len, {}, {0}, {len - 1});
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto result =
        lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
    if (!result.ok() || !*result) state.SkipWithError("river broken");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RiverQuery)->Arg(2)->Arg(3)->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
