// Experiment MOT (Section 1 motivation): "A naive definition of least
// fixed-point logic leads to a non-terminating and undecidable language, as
// it is possible to define the natural numbers ... over (R, <, +)."
//
// This benchmark makes the motivation measurable: unrestricted spatial
// datalog stages for the naturals program grow without bound (divergence),
// while (a) semilinear-fixpoint programs converge and (b) the paper's
// region-restricted RegLFP connectivity runs to a *guaranteed* fixpoint on
// the same substrate. Prints the stage-size series, then times the stage
// computations.

#include <cstdio>

#include <benchmark/benchmark.h>

#include "constraint/parser.h"
#include "core/evaluator.h"
#include "core/queries.h"
#include "datalog/spatial_datalog.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

lcdb::ConstraintDatabase PointDb() {
  auto f = lcdb::ParseDnf("x = 0", {"x"});
  return lcdb::ConstraintDatabase("S", *f, {"x"});
}

void PrintDivergenceTable() {
  std::printf("Section 1 motivation: naive fixpoints over (R, <, +)\n\n");
  lcdb::ConstraintDatabase db = PointDb();
  auto nat = lcdb::EvaluateDatalog(lcdb::NaturalNumbersProgram(), db, 10, "N");
  std::printf("naturals program N(x):  converged=%s after %zu stages\n",
              nat->converged ? "yes" : "NO (divergent, as the paper argues)",
              nat->iterations);
  std::printf("  stage sizes |N_k|: ");
  for (size_t s : nat->stage_sizes) std::printf("%zu ", s);
  std::printf("\n\n");

  auto bounded = lcdb::EvaluateDatalog(lcdb::BoundedCounterProgram(5), db,
                                       20, "C");
  std::printf("bounded counter C(x), k=5: converged=%s after %zu stages\n",
              bounded->converged ? "yes" : "no", bounded->iterations);

  lcdb::ConstraintDatabase interval =
      lcdb::ConstraintDatabase("S", *lcdb::ParseDnf("(x >= 1 & x <= 2) | x = 5",
                                                    {"x"}),
                               {"x"});
  auto down = lcdb::EvaluateDatalog(lcdb::DownwardClosureProgram(), interval,
                                    10, "D");
  std::printf("downward closure D(x):   converged=%s after %zu stages\n",
              down->converged ? "yes" : "no", down->iterations);

  // The paper's remedy: fixpoints over the finite region sort always
  // terminate — run RegLFP connectivity on the same interval database.
  auto ext = lcdb::MakeArrangementExtension(interval);
  auto conn = lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnQueryText());
  std::printf("region-restricted RegLFP on the same database: terminated, "
              "connectivity=%s\n\n",
              (conn.ok() && *conn) ? "true" : "false");
}

void BM_NaturalsStages(benchmark::State& state) {
  const size_t stages = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = PointDb();
  size_t final_size = 0;
  for (auto _ : state) {
    auto r = lcdb::EvaluateDatalog(lcdb::NaturalNumbersProgram(), db, stages,
                                   "N");
    final_size = r->stage_sizes.empty() ? 0 : r->stage_sizes.back();
    benchmark::DoNotOptimize(r->converged);
  }
  state.counters["stages"] = static_cast<double>(stages);
  state.counters["final_formula_size"] = static_cast<double>(final_size);
}

BENCHMARK(BM_NaturalsStages)->Arg(4)->Arg(8)->Arg(16)
    ->Unit(benchmark::kMillisecond);

void BM_DownwardClosure(benchmark::State& state) {
  lcdb::ConstraintDatabase db =
      lcdb::ConstraintDatabase("S", *lcdb::ParseDnf("(x >= 1 & x <= 2) | x = 5",
                                                    {"x"}),
                               {"x"});
  for (auto _ : state) {
    auto r = lcdb::EvaluateDatalog(lcdb::DownwardClosureProgram(), db, 10);
    if (!r.ok() || !r->converged) state.SkipWithError("must converge");
    benchmark::DoNotOptimize(r->iterations);
  }
}

BENCHMARK(BM_DownwardClosure)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  PrintDivergenceTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
