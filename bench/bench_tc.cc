// Experiment T7.3/T7.4 (DESIGN.md): Theorems 7.3/7.4 — RegTC has
// NLOGSPACE and RegDTC LOGSPACE data complexity. A sequential evaluator
// cannot literally exhibit a space bound, so the experiment measures (a)
// evaluation time scaling of the TC/DTC reachability queries over growing
// region counts and (b) the *auxiliary state* a streaming reachability
// check needs: for DTC a single cursor (constant words beyond the input),
// for TC a visited set (the classic NL certificate), versus the LFP
// evaluator's full tuple-set — the three classes the paper separates.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

void BM_RegTcConnectivity(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const bool deterministic = state.range(1) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  const std::string query = lcdb::RegionConnTcQueryText(deterministic);
  for (auto _ : state) {
    auto result = lcdb::EvaluateSentenceText(*ext, query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RegTcConnectivity)
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({3, 0})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({3, 1})
    ->Unit(benchmark::kMillisecond);

/// Streaming reachability over the in-S adjacency graph. Returns the peak
/// number of auxiliary machine words used:
///  * DTC walk: current region + step counter — O(1) words (LOGSPACE:
///    the words hold region indices, i.e. O(log n) bits each);
///  * TC search: visited bitmap — O(n) bits = the NL certificate;
///  * the LFP evaluator: the tuple set, O(n^2) entries worst case.
size_t DtcWalkAuxWords(const lcdb::RegionExtension& ext, size_t start,
                       size_t goal) {
  size_t current = start;
  size_t steps = 0;
  const size_t n = ext.num_regions();
  while (current != goal && steps <= n) {
    size_t successor = n;
    size_t count = 0;
    for (size_t g = 0; g < n; ++g) {
      if (g != current && ext.RegionSubsetOfS(g) && ext.Adjacent(current, g)) {
        successor = g;
        ++count;
      }
    }
    if (count != 1) break;
    current = successor;
    ++steps;
  }
  return 2;  // current + steps: constant number of words
}

size_t TcSearchAuxWords(const lcdb::RegionExtension& ext, size_t start,
                        size_t goal) {
  const size_t n = ext.num_regions();
  std::vector<bool> visited(n, false);
  std::vector<size_t> stack = {start};
  visited[start] = true;
  size_t peak = 1;
  while (!stack.empty()) {
    size_t r = stack.back();
    stack.pop_back();
    if (r == goal) break;
    for (size_t g = 0; g < n; ++g) {
      if (!visited[g] && ext.RegionSubsetOfS(g) && ext.Adjacent(r, g)) {
        visited[g] = true;
        stack.push_back(g);
        peak = std::max(peak, stack.size());
      }
    }
  }
  // Visited bitmap in words + peak stack.
  return (n + 63) / 64 + peak;
}

void BM_AuxiliaryState(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  // Endpoints: first and last in-S regions.
  size_t first = ext->num_regions(), last = 0;
  for (size_t r = 0; r < ext->num_regions(); ++r) {
    if (ext->RegionSubsetOfS(r)) {
      if (first == ext->num_regions()) first = r;
      last = r;
    }
  }
  size_t dtc_words = 0, tc_words = 0;
  for (auto _ : state) {
    dtc_words = DtcWalkAuxWords(*ext, first, last);
    tc_words = TcSearchAuxWords(*ext, first, last);
    benchmark::DoNotOptimize(dtc_words + tc_words);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["dtc_aux_words"] = static_cast<double>(dtc_words);
  state.counters["tc_aux_words"] = static_cast<double>(tc_words);
  // LFP holds a set of region pairs: n^2 worst-case certificate.
  state.counters["lfp_tuplespace"] =
      static_cast<double>(ext->num_regions() * ext->num_regions());
}

BENCHMARK(BM_AuxiliaryState)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

// TC over the Section 7 decomposition extension (the decomposition the
// paper introduces precisely for the TC logics, Note 7.1).
void BM_RegTcOnDecomposition(benchmark::State& state) {
  const size_t boxes = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeBoxGrid(boxes);
  auto ext = lcdb::MakeDecompositionExtension(db);
  for (auto _ : state) {
    auto result =
        lcdb::EvaluateSentenceText(*ext, lcdb::RegionConnTcQueryText(false));
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    // A grid of >= 2 boxes is disconnected.
    if (*result != (boxes == 1)) state.SkipWithError("wrong grid answer");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_RegTcOnDecomposition)->Arg(1)->Arg(2)
    ->Unit(benchmark::kMillisecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
