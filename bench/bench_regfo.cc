// Experiment T4.3 (DESIGN.md): Theorem 4.3 — every RegFO query has PTIME
// data complexity. A fixed set of RegFO queries is evaluated over database
// families of growing representation size; polynomial scaling of the
// evaluation time (including arrangement construction) is the claim.

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

const char* const kQueries[] = {
    // Boolean: is there a point of S on the diagonal?
    "exists x y . (S(x, y) & x = y)",
    // Region-sorted: does some bounded 2-dimensional region lie in S?
    "exists R . (subset(R) & dim(R) = 2 & bounded(R))",
    // Mixed sorts: every point of S lies in a region contained in S.
    "forall x y . (S(x, y) -> exists R . (in(x, y; R) & subset(R)))",
};

void BM_RegFoQuery(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  const size_t query = static_cast<size_t>(state.range(1));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  for (auto _ : state) {
    // Data complexity includes building the region extension from the
    // representation (Theorem 3.1 is part of the Theorem 4.3 algorithm).
    auto ext = lcdb::MakeArrangementExtension(db);
    auto result = lcdb::EvaluateSentenceText(*ext, kQueries[query]);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    benchmark::DoNotOptimize(*result);
  }
  state.counters["db_size"] = static_cast<double>(db.Size());
}

BENCHMARK(BM_RegFoQuery)
    ->ArgsProduct({{1, 2, 3, 4}, {0, 1}})
    ->Unit(benchmark::kMillisecond);
// The mixed-sort query pays for QE under a universal quantifier; smaller
// sweep.
BENCHMARK(BM_RegFoQuery)
    ->Args({1, 2})
    ->Args({2, 2})
    ->Args({3, 2})
    ->Unit(benchmark::kMillisecond);

// Non-boolean answers: projection queries whose output formula grows with
// the input (closure in action).
void BM_RegFoProjection(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/false);
  auto ext = lcdb::MakeArrangementExtension(db);
  size_t answer_atoms = 0;
  for (auto _ : state) {
    auto result = lcdb::EvaluateQueryText(*ext, "exists y . S(x, y)");
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    answer_atoms = result->formula.AtomCount();
    benchmark::DoNotOptimize(answer_atoms);
  }
  state.counters["answer_atoms"] = static_cast<double>(answer_atoms);
}

BENCHMARK(BM_RegFoProjection)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
