// Experiment ABL (DESIGN.md): ablations of the design choices called out
// in DESIGN.md —
//  (a) memoization of set-independent subformulas in the fixed-point
//      evaluator (Evaluator::Options::memoize),
//  (b) the cheapest-first variable-ordering heuristic in multi-variable
//      Fourier-Motzkin elimination,
//  (c) redundant-atom removal in answer formulas (output size, not speed),
//  (d) the constraint kernel's feasibility/implication memoization
//      (ConstraintKernel::Options::memoize).

#include <random>

#include <benchmark/benchmark.h>

#include "core/evaluator.h"
#include "core/parser.h"
#include "core/queries.h"
#include "db/region_extension.h"
#include "db/workloads.h"
#include "engine/kernel.h"
#include "qe/fourier_motzkin.h"

namespace {

void BM_MemoizationAblation(benchmark::State& state) {
  // The river query's fixed-point body re-evaluates element-sort side
  // conditions (river/chem membership) for every region in every stage —
  // exactly what the memo table elides.
  const size_t len = static_cast<size_t>(state.range(0));
  const bool memoize = state.range(1) != 0;
  lcdb::ConstraintDatabase db =
      lcdb::MakeRiverScenario(len, {}, {0}, {len - 1});
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RiverPollutionQueryText(), "S");
  lcdb::Evaluator::Options options;
  options.memoize = memoize;
  for (auto _ : state) {
    lcdb::Evaluator evaluator(*ext, options);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("river query must hold");
    benchmark::DoNotOptimize(*result);
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["memo"] = memoize ? 1 : 0;
}

BENCHMARK(BM_MemoizationAblation)
    ->Args({2, 1})
    ->Args({2, 0})
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

lcdb::DnfFormula RandomSystem(size_t vars, size_t atoms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> coeff(-3, 3);
  std::vector<lcdb::LinearAtom> list;
  for (size_t i = 0; i < atoms; ++i) {
    lcdb::Vec c(vars);
    for (size_t j = 0; j < vars; ++j) c[j] = lcdb::Rational(coeff(rng));
    if (lcdb::VecIsZero(c)) c[i % vars] = lcdb::Rational(1);
    list.emplace_back(c, i % 2 ? lcdb::RelOp::kLe : lcdb::RelOp::kGe,
                      lcdb::Rational(coeff(rng)));
  }
  return lcdb::DnfFormula(vars, {lcdb::Conjunction(vars, std::move(list))});
}

void BM_QeOrderingAblation(benchmark::State& state) {
  const bool heuristic = state.range(0) != 0;
  const size_t vars = 4;
  lcdb::DnfFormula f = RandomSystem(vars, 10, 4242);
  for (auto _ : state) {
    lcdb::DnfFormula g = f;
    if (heuristic) {
      std::vector<size_t> all;
      for (size_t v = 0; v + 1 < vars; ++v) all.push_back(v);
      g = lcdb::ExistsVariables(g, all);  // cheapest-first ordering
    } else {
      for (size_t v = 0; v + 1 < vars; ++v) {
        g = lcdb::ExistsVariable(g, v);  // fixed textual order
      }
    }
    benchmark::DoNotOptimize(g.AtomCount());
  }
  state.counters["heuristic"] = heuristic ? 1 : 0;
}

BENCHMARK(BM_QeOrderingAblation)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond);

void BM_StrongSimplifyAblation(benchmark::State& state) {
  const bool strong = state.range(0) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeComb(3, /*connected=*/false);
  auto ext = lcdb::MakeArrangementExtension(db);
  size_t atoms = 0;
  for (auto _ : state) {
    auto result = lcdb::EvaluateQueryText(*ext, "exists y . S(x, y)");
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    lcdb::DnfFormula answer = result->formula;
    if (strong) answer.SimplifyStrong();
    atoms = answer.AtomCount();
    benchmark::DoNotOptimize(atoms);
  }
  state.counters["answer_atoms"] = static_cast<double>(atoms);
  state.counters["strong"] = strong ? 1 : 0;
}

BENCHMARK(BM_StrongSimplifyAblation)->Arg(0)->Arg(1)
    ->Unit(benchmark::kMillisecond);

void BM_KernelCacheAblation(benchmark::State& state) {
  // Ablation (d): the river query with the constraint kernel's caches on
  // vs off. With caches off every feasibility/implication question pays a
  // fresh simplex solve; the counters make the saving visible alongside
  // the wall-clock difference.
  const bool memoize = state.range(0) != 0;
  lcdb::ConstraintDatabase db = lcdb::MakeRiverScenario(2, {}, {0}, {1});
  auto ext = lcdb::MakeArrangementExtension(db);
  auto query = lcdb::ParseQuery(lcdb::RiverPollutionQueryText(), "S");
  // Warm the extension's lazy caches under the default kernel.
  (void)lcdb::EvaluateSentenceText(*ext, lcdb::RiverPollutionQueryText());
  lcdb::KernelStats stats;
  for (auto _ : state) {
    lcdb::ConstraintKernel kernel(
        lcdb::ConstraintKernel::Options{memoize});
    lcdb::ScopedKernel scope(kernel);
    lcdb::Evaluator evaluator(*ext);
    auto result = evaluator.EvaluateSentence(**query);
    if (!result.ok()) state.SkipWithError(result.status().ToString().c_str());
    if (!*result) state.SkipWithError("river query must hold");
    stats = kernel.stats();
    benchmark::DoNotOptimize(*result);
  }
  state.counters["memo"] = memoize ? 1 : 0;
  state.counters["oracle_calls"] = static_cast<double>(stats.oracle_calls);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["simplex_invocations"] =
      static_cast<double>(stats.simplex_invocations);
}

BENCHMARK(BM_KernelCacheAblation)->Arg(1)->Arg(0)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
