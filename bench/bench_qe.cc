// Experiment T4.3 (part 1, DESIGN.md): the quantifier-elimination engine
// behind RegFO's PTIME data complexity. Benchmarks Fourier-Motzkin
// elimination on growing conjunction sizes and variable counts, plus the
// negation/DNF algebra that the symbolic evaluator leans on.

#include <random>

#include <benchmark/benchmark.h>

#include "qe/fourier_motzkin.h"

namespace {

using lcdb::Conjunction;
using lcdb::DnfFormula;
using lcdb::LinearAtom;
using lcdb::Rational;
using lcdb::RelOp;
using lcdb::Vec;

/// A random conjunction of `atoms` constraints over `vars` variables.
DnfFormula RandomConjunction(size_t vars, size_t atoms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> coeff(-4, 4);
  std::uniform_int_distribution<int> rel(0, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  std::vector<LinearAtom> list;
  for (size_t i = 0; i < atoms; ++i) {
    Vec c(vars);
    for (size_t j = 0; j < vars; ++j) c[j] = Rational(coeff(rng));
    if (lcdb::VecIsZero(c)) c[i % vars] = Rational(1);
    list.emplace_back(c, rels[rel(rng)], Rational(coeff(rng)));
  }
  return DnfFormula(vars, {Conjunction(vars, std::move(list))});
}

void BM_ExistsVariable(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t atoms = static_cast<size_t>(state.range(1));
  DnfFormula f = RandomConjunction(vars, atoms, 42 * vars + atoms);
  size_t out_atoms = 0;
  for (auto _ : state) {
    DnfFormula g = lcdb::ExistsVariable(f, 0);
    out_atoms = g.AtomCount();
    benchmark::DoNotOptimize(g.num_vars());
  }
  state.counters["atoms_in"] = static_cast<double>(atoms);
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
}

BENCHMARK(BM_ExistsVariable)
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

void BM_EliminateAllVariables(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t atoms = static_cast<size_t>(state.range(1));
  DnfFormula f = RandomConjunction(vars, atoms, 7 * vars + atoms);
  std::vector<size_t> all;
  for (size_t v = 0; v < vars; ++v) all.push_back(v);
  for (auto _ : state) {
    DnfFormula g = lcdb::ExistsVariables(f, all);
    benchmark::DoNotOptimize(g.IsSyntacticallyTrue());
  }
}

BENCHMARK(BM_EliminateAllVariables)
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

void BM_NegateDnf(benchmark::State& state) {
  // Negation (the expensive DNF operation) over a union of boxes.
  const size_t boxes = static_cast<size_t>(state.range(0));
  std::vector<Conjunction> disjuncts;
  for (size_t b = 0; b < boxes; ++b) {
    const Rational lo(static_cast<int64_t>(2 * b));
    const Rational hi(static_cast<int64_t>(2 * b + 1));
    disjuncts.push_back(
        Conjunction(2, {LinearAtom({Rational(1), Rational(0)}, RelOp::kGe, lo),
                        LinearAtom({Rational(1), Rational(0)}, RelOp::kLe, hi),
                        LinearAtom({Rational(0), Rational(1)}, RelOp::kGe, lo),
                        LinearAtom({Rational(0), Rational(1)}, RelOp::kLe,
                                   hi)}));
  }
  DnfFormula f(2, std::move(disjuncts));
  size_t out = 0;
  for (auto _ : state) {
    DnfFormula g = f.Negate();
    out = g.disjuncts().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["disjuncts_out"] = static_cast<double>(out);
}

BENCHMARK(BM_NegateDnf)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ForallVariable(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  DnfFormula f = RandomConjunction(2, atoms, 1234 + atoms);
  for (auto _ : state) {
    DnfFormula g = lcdb::ForallVariable(f, 1);
    benchmark::DoNotOptimize(g.disjuncts().size());
  }
}

BENCHMARK(BM_ForallVariable)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
