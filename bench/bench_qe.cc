// Experiment T4.3 (part 1, DESIGN.md): the quantifier-elimination engine
// behind RegFO's PTIME data complexity. Benchmarks Fourier-Motzkin
// elimination on growing conjunction sizes and variable counts, plus the
// negation/DNF algebra that the symbolic evaluator leans on.

#include <random>

#include <benchmark/benchmark.h>

#include "constraint/simplify.h"
#include "engine/kernel.h"
#include "qe/fourier_motzkin.h"

namespace {

using lcdb::Conjunction;
using lcdb::ConstraintKernel;
using lcdb::DnfFormula;
using lcdb::KernelStats;
using lcdb::LinearAtom;
using lcdb::Rational;
using lcdb::RelOp;
using lcdb::ScopedKernel;
using lcdb::Vec;

/// Emits the oracle-call columns shared by all benches (EXPERIMENTS.md,
/// "Oracle-call telemetry"): how many feasibility/implication decisions the
/// workload asked for, how many were served from the kernel cache, and how
/// much simplex work the misses cost.
void ReportKernelCounters(benchmark::State& state, const KernelStats& stats) {
  state.counters["oracle_calls"] = static_cast<double>(stats.oracle_calls);
  state.counters["cache_hits"] = static_cast<double>(stats.cache_hits);
  state.counters["cache_misses"] = static_cast<double>(stats.cache_misses);
  state.counters["simplex_invocations"] =
      static_cast<double>(stats.simplex_invocations);
  state.counters["simplex_pivots"] =
      static_cast<double>(stats.simplex_pivots);
}

/// A random conjunction of `atoms` constraints over `vars` variables.
DnfFormula RandomConjunction(size_t vars, size_t atoms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> coeff(-4, 4);
  std::uniform_int_distribution<int> rel(0, 4);
  const RelOp rels[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kGe,
                        RelOp::kGt};
  std::vector<LinearAtom> list;
  for (size_t i = 0; i < atoms; ++i) {
    Vec c(vars);
    for (size_t j = 0; j < vars; ++j) c[j] = Rational(coeff(rng));
    if (lcdb::VecIsZero(c)) c[i % vars] = Rational(1);
    list.emplace_back(c, rels[rel(rng)], Rational(coeff(rng)));
  }
  return DnfFormula(vars, {Conjunction(vars, std::move(list))});
}

void BM_ExistsVariable(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t atoms = static_cast<size_t>(state.range(1));
  DnfFormula f = RandomConjunction(vars, atoms, 42 * vars + atoms);
  size_t out_atoms = 0;
  ConstraintKernel kernel;
  ScopedKernel scope(kernel);
  for (auto _ : state) {
    DnfFormula g = lcdb::ExistsVariable(f, 0);
    out_atoms = g.AtomCount();
    benchmark::DoNotOptimize(g.num_vars());
  }
  state.counters["atoms_in"] = static_cast<double>(atoms);
  state.counters["atoms_out"] = static_cast<double>(out_atoms);
  ReportKernelCounters(state, kernel.stats());
}

BENCHMARK(BM_ExistsVariable)
    ->Args({2, 4})
    ->Args({2, 8})
    ->Args({2, 16})
    ->Args({3, 8})
    ->Args({3, 16})
    ->Args({4, 12})
    ->Unit(benchmark::kMillisecond);

void BM_EliminateAllVariables(benchmark::State& state) {
  const size_t vars = static_cast<size_t>(state.range(0));
  const size_t atoms = static_cast<size_t>(state.range(1));
  DnfFormula f = RandomConjunction(vars, atoms, 7 * vars + atoms);
  std::vector<size_t> all;
  for (size_t v = 0; v < vars; ++v) all.push_back(v);
  ConstraintKernel kernel;
  ScopedKernel scope(kernel);
  for (auto _ : state) {
    DnfFormula g = lcdb::ExistsVariables(f, all);
    benchmark::DoNotOptimize(g.IsSyntacticallyTrue());
  }
  ReportKernelCounters(state, kernel.stats());
}

BENCHMARK(BM_EliminateAllVariables)
    ->Args({2, 8})
    ->Args({3, 8})
    ->Args({4, 8})
    ->Unit(benchmark::kMillisecond);

void BM_NegateDnf(benchmark::State& state) {
  // Negation (the expensive DNF operation) over a union of boxes.
  const size_t boxes = static_cast<size_t>(state.range(0));
  std::vector<Conjunction> disjuncts;
  for (size_t b = 0; b < boxes; ++b) {
    const Rational lo(static_cast<int64_t>(2 * b));
    const Rational hi(static_cast<int64_t>(2 * b + 1));
    disjuncts.push_back(
        Conjunction(2, {LinearAtom({Rational(1), Rational(0)}, RelOp::kGe, lo),
                        LinearAtom({Rational(1), Rational(0)}, RelOp::kLe, hi),
                        LinearAtom({Rational(0), Rational(1)}, RelOp::kGe, lo),
                        LinearAtom({Rational(0), Rational(1)}, RelOp::kLe,
                                   hi)}));
  }
  DnfFormula f(2, std::move(disjuncts));
  size_t out = 0;
  for (auto _ : state) {
    DnfFormula g = f.Negate();
    out = g.disjuncts().size();
    benchmark::DoNotOptimize(out);
  }
  state.counters["disjuncts_out"] = static_cast<double>(out);
}

BENCHMARK(BM_NegateDnf)->Arg(1)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_ForallVariable(benchmark::State& state) {
  const size_t atoms = static_cast<size_t>(state.range(0));
  DnfFormula f = RandomConjunction(2, atoms, 1234 + atoms);
  for (auto _ : state) {
    DnfFormula g = lcdb::ForallVariable(f, 1);
    benchmark::DoNotOptimize(g.disjuncts().size());
  }
}

BENCHMARK(BM_ForallVariable)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

/// The kernel-memoization acceptance experiment: the same two-variable
/// elimination is run against a caching kernel and a cache-disabled kernel.
/// QE's presimplify pass re-asks the oracle about systems (and subsystems)
/// it has already decided, so the caching run must spend strictly fewer
/// simplex invocations — and the two answers must be semantically
/// equivalent. `answers_equivalent` is the AreEquivalent verdict (1 = yes);
/// the equivalence check itself runs under the caching kernel *after* the
/// counters are captured, so it does not pollute them.
void BM_KernelMemoQe(benchmark::State& state) {
  // A feasible inequality system (every atom holds at the origin), so the
  // elimination actually walks the FM product and the redundancy pruning
  // instead of exiting on an infeasible input.
  std::mt19937_64 rng(99);
  std::uniform_int_distribution<int64_t> coeff(-4, 4);
  std::uniform_int_distribution<int64_t> slack(0, 4);
  std::vector<LinearAtom> list;
  for (size_t i = 0; i < 14; ++i) {
    Vec c(3);
    for (size_t j = 0; j < 3; ++j) c[j] = Rational(coeff(rng));
    if (lcdb::VecIsZero(c)) c[i % 3] = Rational(1);
    const bool upper = i % 2 == 0;
    list.emplace_back(c, upper ? RelOp::kLe : RelOp::kGe,
                      Rational(upper ? slack(rng) : -slack(rng)));
  }
  DnfFormula f(3, {Conjunction(3, std::move(list))});
  KernelStats with_memo, without_memo;
  bool equivalent = false;
  for (auto _ : state) {
    ConstraintKernel on(ConstraintKernel::Options{/*memoize=*/true});
    ConstraintKernel off(ConstraintKernel::Options{/*memoize=*/false});
    DnfFormula g_on = DnfFormula::False(0);
    DnfFormula g_off = DnfFormula::False(0);
    // Each elimination runs twice — the fixed-point evaluator re-eliminates
    // the same formulas across stages, and the repeat is where memoization
    // pays: the caching kernel answers the second pass from cache while the
    // ablated kernel pays the full LP bill again.
    {
      ScopedKernel scope(on);
      g_on = lcdb::ExistsVariables(f, {0, 1});
      benchmark::DoNotOptimize(lcdb::ExistsVariables(f, {0, 1}));
    }
    {
      ScopedKernel scope(off);
      g_off = lcdb::ExistsVariables(f, {0, 1});
      benchmark::DoNotOptimize(lcdb::ExistsVariables(f, {0, 1}));
    }
    with_memo = on.stats();
    without_memo = off.stats();
    {
      ScopedKernel scope(on);
      equivalent = lcdb::AreEquivalent(g_on, g_off);
    }
    if (!equivalent) state.SkipWithError("cached answer diverged");
    benchmark::DoNotOptimize(equivalent);
  }
  state.counters["oracle_calls_on"] =
      static_cast<double>(with_memo.oracle_calls);
  state.counters["oracle_calls_off"] =
      static_cast<double>(without_memo.oracle_calls);
  state.counters["simplex_invocations_on"] =
      static_cast<double>(with_memo.simplex_invocations);
  state.counters["simplex_invocations_off"] =
      static_cast<double>(without_memo.simplex_invocations);
  state.counters["cache_hits"] = static_cast<double>(with_memo.cache_hits);
  state.counters["answers_equivalent"] = equivalent ? 1 : 0;
}

BENCHMARK(BM_KernelMemoQe)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
