// Experiment T6.4 (DESIGN.md): the capture theorem's constructive
// machinery. Prints the agreement table between (a) Turing machines run on
// the Theorem 6.4 word encoding and (b) direct query evaluation, then
// benchmarks the polynomial cost of ordering + encoding (the β-formula's
// work in the proof).

#include <cstdio>

#include <benchmark/benchmark.h>

#include "capture/encoding.h"
#include "capture/region_order.h"
#include "capture/turing_machine.h"
#include "constraint/parser.h"
#include "core/evaluator.h"
#include "db/region_extension.h"
#include "db/workloads.h"

namespace {

void PrintAgreementTable() {
  std::printf(
      "\nT6.4 agreement: machine-on-encoding vs direct evaluation\n"
      "%-34s %-10s %-10s %-10s %s\n", "database", "property", "TM", "direct",
      "verdict");
  struct Case {
    const char* formula;
    const char* property;
    const char* query;
    lcdb::TuringMachine (*machine)();
  };
  const Case cases[] = {
      {"x = 1 | x = 3", "S nonempty", "exists x . S(x)",
       &lcdb::TuringMachine::SNonEmptyChecker},
      {"x > 0 & x < 0", "S nonempty", "exists x . S(x)",
       &lcdb::TuringMachine::SNonEmptyChecker},
      {"x >= 0 & x <= 2", "S nonempty", "exists x . S(x)",
       &lcdb::TuringMachine::SNonEmptyChecker},
      {"x >= 0 & x <= 1", "vertices in S",
       "forall R . (dim(R) = 0 -> subset(R))",
       &lcdb::TuringMachine::AllVerticesInSChecker},
      {"x > 0 & x < 1", "vertices in S",
       "forall R . (dim(R) = 0 -> subset(R))",
       &lcdb::TuringMachine::AllVerticesInSChecker},
  };
  bool all_ok = true;
  for (const Case& c : cases) {
    auto f = lcdb::ParseDnf(c.formula, {"x"});
    lcdb::ConstraintDatabase db("S", *f, {"x"});
    auto ext = lcdb::MakeArrangementExtension(db);
    auto direct = lcdb::EvaluateSentenceText(*ext, c.query);
    auto run = c.machine().Run(lcdb::EncodeDatabase(*ext));
    bool agree = run.halted && direct.ok() && run.accepted == *direct;
    all_ok &= agree;
    std::printf("%-34s %-10s %-10s %-10s %s\n", c.formula, c.property,
                run.accepted ? "accept" : "reject",
                (direct.ok() && *direct) ? "true" : "false",
                agree ? "ok" : "*** MISMATCH ***");
  }
  std::printf("capture pipeline %s\n\n",
              all_ok ? "consistent" : "INCONSISTENT");
}

void BM_CaptureEncoding(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  size_t bytes = 0;
  for (auto _ : state) {
    std::string enc = lcdb::EncodeDatabase(*ext);
    bytes = enc.size();
    benchmark::DoNotOptimize(enc.data());
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
  state.counters["encoding_bytes"] = static_cast<double>(bytes);
}

BENCHMARK(BM_CaptureEncoding)->Arg(1)->Arg(2)->Arg(4)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_CaptureRegionOrder(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  for (auto _ : state) {
    auto order = lcdb::CaptureRegionOrder(*ext);
    benchmark::DoNotOptimize(order.data());
  }
  state.counters["regions"] = static_cast<double>(ext->num_regions());
}

BENCHMARK(BM_CaptureRegionOrder)->Arg(1)->Arg(2)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_TuringMachineRun(benchmark::State& state) {
  const size_t teeth = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeComb(teeth, /*connected=*/true);
  auto ext = lcdb::MakeArrangementExtension(db);
  std::string enc = lcdb::EncodeDatabase(*ext);
  lcdb::TuringMachine tm = lcdb::TuringMachine::SNonEmptyChecker();
  for (auto _ : state) {
    auto run = tm.Run(enc);
    benchmark::DoNotOptimize(run.steps);
  }
  state.counters["tape_bytes"] = static_cast<double>(enc.size());
}

BENCHMARK(BM_TuringMachineRun)->Arg(1)->Arg(4)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  PrintAgreementTable();
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
