// Experiment F1-F4, F7-F10 (DESIGN.md): regenerates the paper's worked
// figures as tables — the face inventory of the Figures 1-3 arrangement,
// the Figure 4 incidence-graph neighbourhood, and the Appendix A
// decompositions of the Figures 7-10 polyhedra. Expected values from the
// paper's text are printed alongside the computed ones.

#include <cstdio>

#include "arrangement/arrangement.h"
#include "arrangement/incidence_graph.h"
#include "constraint/parser.h"
#include "decomp/decomposition.h"
#include "geometry/vertex_enumeration.h"

namespace {

using lcdb::Conjunction;
using lcdb::ParseDnf;

const std::vector<std::string> kXY = {"x", "y"};

Conjunction Poly(const std::string& text) {
  auto f = ParseDnf(text, kXY);
  if (!f.ok() || f->disjuncts().size() != 1) {
    std::fprintf(stderr, "bad polyhedron: %s\n", text.c_str());
    std::exit(1);
  }
  return f->disjuncts()[0];
}

void CheckRow(const char* what, size_t got, size_t expected) {
  std::printf("  %-38s computed=%3zu  paper=%3zu  %s\n", what, got, expected,
              got == expected ? "ok" : "*** MISMATCH ***");
}

void FiguresOneToThree() {
  std::printf("F1-F3: relation S, hyperplanes H(S), arrangement A(S)\n");
  std::printf("(three hyperplanes in general position; the paper reports\n");
  std::printf(" 7 two-dim faces e1..e7, 9 one-dim l1..l9, 3 vertices)\n");
  auto f = ParseDnf("x >= 0 & y >= 0 & x + y <= 4", kXY);
  lcdb::Arrangement arr = lcdb::Arrangement::FromFormula(*f);
  std::printf("  hyperplanes in H(S): %zu\n", arr.planes().size());
  auto counts = arr.FaceCountsByDimension();
  CheckRow("2-dimensional faces (e1..e7)", counts[2], 7);
  CheckRow("1-dimensional faces (l1..l9)", counts[1], 9);
  CheckRow("0-dimensional faces (p1..p3)", counts[0], 3);
  CheckRow("total faces", arr.num_faces(), 19);
  std::printf("\n");
}

void FigureFour() {
  std::printf("F4: incidence graph around a vertex (cf. paper's p2)\n");
  auto f = ParseDnf("x >= 0 & y >= 0 & x + y <= 4", kXY);
  lcdb::Arrangement arr = lcdb::Arrangement::FromFormula(*f);
  lcdb::IncidenceGraph graph(arr);
  size_t p = arr.LocateFace({lcdb::Rational(0), lcdb::Rational(4)});
  std::printf("%s", graph.DescribeNeighbourhood(arr, p).c_str());
  CheckRow("1-faces incident to the vertex", graph.Up(p).size(), 4);
  size_t improper_down = graph.Down(p).size();
  CheckRow("down-edges (improper bottom)", improper_down, 1);
  std::printf("\n");
}

void FiguresSevenEight() {
  std::printf("F7-F8: Section 7 decomposition of the pentagon polytope\n");
  std::printf("(paper: 3 two-dim fan regions, 7 one-dim of which the two\n");
  std::printf(" diagonals from p1 are inner, 5 vertices — 15 regions)\n");
  Conjunction pentagon = Poly(
      "x + 2y >= 0 & 2x - y <= 5 & 2x + y <= 7 & x - 2y >= -4 & x >= 0");
  auto regions = lcdb::DecomposeDisjunct(pentagon, 0);
  auto counts = lcdb::RegionCountsByDimension(regions, 2);
  CheckRow("2-dimensional regions (R1..R3)", counts[2], 3);
  CheckRow("1-dimensional regions (l1..l5 + diags)", counts[1], 7);
  CheckRow("0-dimensional regions (p1..p5)", counts[0], 5);
  size_t inner = 0;
  for (const auto& r : regions) {
    if (r.kind == lcdb::DecompKind::kInner) ++inner;
  }
  CheckRow("inner regions (3 triangles + 2 diagonals)", inner, 5);
  std::printf("\n");
}

void FigureNine() {
  std::printf("F9 (Appendix A): bounded polyhedron with an excluded\n");
  std::printf("intersection point p outside closure(psi)\n");
  Conjunction p = Poly("y >= 0 & y <= x & x <= 2");
  auto vertices = lcdb::VerticesOf(p);
  CheckRow("vertices of the triangle", vertices.size(), 3);
  // All pairwise hyperplane intersections: 3 (the third, like the paper's
  // point p for its polytope, coincides here with a vertex; use a shape
  // with a genuine outside intersection):
  // The quad below has one hyperplane intersection (3,3) outside its
  // closure — the analogue of the paper's point p in Figure 9.
  Conjunction q = Poly("y >= 0 & y <= 2 & y <= x & x + y <= 6");
  auto hp = lcdb::HyperplanesOf(q);
  auto all = lcdb::EnumerateIntersectionPoints(hp, 2);
  auto vq = lcdb::VerticesOf(q);
  std::printf("  quad: %zu pairwise intersection points, %zu are vertices\n",
              all.size(), vq.size());
  CheckRow("intersections dropped (the point p)", all.size() - vq.size(), 1);
  CheckRow("vertices kept", vq.size(), 4);
  std::printf("\n");
}

void FigureTen() {
  std::printf("F10 (Appendix A): unbounded polyhedron — icube clipping,\n");
  std::printf("up(psi) rays and unbounded hull regions\n");
  Conjunction wedge = Poly("x >= 0 & y >= 0 & x + y >= 1");
  auto regions = lcdb::DecomposeDisjunct(wedge, 0);
  size_t rays = 0, hulls = 0, bounded = 0;
  for (const auto& r : regions) {
    switch (r.kind) {
      case lcdb::DecompKind::kRay:
        ++rays;
        break;
      case lcdb::DecompKind::kUnboundedHull:
        ++hulls;
        break;
      default:
        ++bounded;
        break;
    }
  }
  std::printf("  bounded regions (from psi ∩ icube): %zu\n", bounded);
  std::printf("  unbounded ray regions (up pairs):   %zu\n", rays);
  std::printf("  unbounded hull regions:             %zu\n", hulls);
  std::printf("  (the paper's minimal picture has 2 rays and 1 hull; the\n");
  std::printf("   literal Appendix A rules admit every valid up pair, so\n");
  std::printf("   counts are >= the paper's and the regions still cover S)\n");
  bool has_up_ray = false, has_right_ray = false;
  lcdb::GeneratorRegion up_ray = lcdb::GeneratorRegion::OpenRay(
      {lcdb::Rational(0), lcdb::Rational(4)},
      {lcdb::Rational(0), lcdb::Rational(3)});
  lcdb::GeneratorRegion right_ray = lcdb::GeneratorRegion::OpenRay(
      {lcdb::Rational(4), lcdb::Rational(0)},
      {lcdb::Rational(3), lcdb::Rational(0)});
  for (const auto& r : regions) {
    if (r.region == up_ray) has_up_ray = true;
    if (r.region == right_ray) has_right_ray = true;
  }
  CheckRow("axis ray (0,4)+a(0,3) present", has_up_ray ? 1 : 0, 1);
  CheckRow("axis ray (4,0)+a(3,0) present", has_right_ray ? 1 : 0, 1);
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf("=== Figure reproductions (see EXPERIMENTS.md) ===\n\n");
  FiguresOneToThree();
  FigureFour();
  FiguresSevenEight();
  FigureNine();
  FigureTen();
  std::printf("F5 (multiplication from convex closure) is reproduced by\n");
  std::printf("examples/multiplication_demo; F6 (river) by\n");
  std::printf("examples/river_pollution.\n");
  return 0;
}
