// Experiment A.1 (DESIGN.md): Lemma A.1 — the Section 7 decomposition is
// NC^1-computable; sequentially, polynomial work in the representation
// size. The benchmark sweeps polytope vertex counts and disjunct counts,
// and compares region counts and build times against the arrangement of
// the same input (the trade-off Note 7.1 discusses: cheaper to compute,
// but regions overlap and do not partition R^d).

#include <benchmark/benchmark.h>

#include "arrangement/arrangement.h"
#include "constraint/parser.h"
#include "db/workloads.h"
#include "decomp/decomposition.h"

namespace {

/// A convex polygon with `k` vertices on a rational circle-ish fan.
lcdb::DnfFormula RegularishPolygon(size_t k) {
  // Vertices chosen on a convex position; half-plane per edge.
  std::vector<std::pair<int64_t, int64_t>> pts;
  for (size_t i = 0; i < k; ++i) {
    // A convex polygon: points on the parabola-like arc, mirrored.
    int64_t t = static_cast<int64_t>(i);
    pts.push_back({t, t * t});
  }
  // Upper chain closes the region: y <= big.
  std::vector<lcdb::LinearAtom> atoms;
  const int64_t top = static_cast<int64_t>((k - 1) * (k - 1));
  atoms.emplace_back(lcdb::Vec{lcdb::Rational(0), lcdb::Rational(1)},
                     lcdb::RelOp::kLe, lcdb::Rational(top));
  atoms.emplace_back(lcdb::Vec{lcdb::Rational(1), lcdb::Rational(0)},
                     lcdb::RelOp::kGe, lcdb::Rational(0));
  atoms.emplace_back(lcdb::Vec{lcdb::Rational(1), lcdb::Rational(0)},
                     lcdb::RelOp::kLe,
                     lcdb::Rational(static_cast<int64_t>(k - 1)));
  for (size_t i = 0; i + 1 < pts.size(); ++i) {
    // Edge between consecutive parabola points: y >= a x + b.
    auto [x1, y1] = pts[i];
    auto [x2, y2] = pts[i + 1];
    // Line through the two points: (y2-y1) x - (x2-x1) y = (y2-y1)x1 -
    // (x2-x1)y1; region above.
    lcdb::Rational a(y2 - y1), b(x2 - x1);
    lcdb::Rational rhs = a * lcdb::Rational(x1) - b * lcdb::Rational(y1);
    atoms.emplace_back(lcdb::Vec{a, -b}, lcdb::RelOp::kLe, rhs);
  }
  return lcdb::DnfFormula(
      2, {lcdb::Conjunction(2, std::move(atoms))});
}

void BM_DecomposePolygon(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  lcdb::DnfFormula f = RegularishPolygon(k);
  size_t regions = 0;
  for (auto _ : state) {
    auto rs = lcdb::DecomposeFormula(f);
    regions = rs.size();
    benchmark::DoNotOptimize(regions);
  }
  state.counters["vertices"] = static_cast<double>(k);
  state.counters["regions"] = static_cast<double>(regions);
}

BENCHMARK(BM_DecomposePolygon)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_ArrangementOfSameInput(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  lcdb::DnfFormula f = RegularishPolygon(k);
  size_t faces = 0;
  for (auto _ : state) {
    auto arr = lcdb::Arrangement::FromFormula(f);
    faces = arr.num_faces();
    benchmark::DoNotOptimize(faces);
  }
  state.counters["vertices"] = static_cast<double>(k);
  state.counters["faces"] = static_cast<double>(faces);
}

BENCHMARK(BM_ArrangementOfSameInput)->Arg(3)->Arg(4)->Arg(5)->Arg(6)
    ->Unit(benchmark::kMillisecond);

void BM_DecomposeSlabUnion(benchmark::State& state) {
  // Unbounded disjuncts exercise the icube/up(psi) machinery.
  const size_t n = static_cast<size_t>(state.range(0));
  lcdb::ConstraintDatabase db = lcdb::MakeRandomSlabs(n, 2, 3, 99 + n);
  size_t regions = 0;
  for (auto _ : state) {
    auto rs = lcdb::DecomposeFormula(db.representation());
    regions = rs.size();
    benchmark::DoNotOptimize(regions);
  }
  state.counters["disjuncts"] = static_cast<double>(n);
  state.counters["regions"] = static_cast<double>(regions);
}

BENCHMARK(BM_DecomposeSlabUnion)->Arg(1)->Arg(2)->Arg(3)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
