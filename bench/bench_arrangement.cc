// Experiment T3.1 (DESIGN.md): Theorem 3.1 — the arrangement A(S) of n
// hyperplanes in R^d is computable in polynomial time, with O(n^d) faces.
// The benchmark sweeps n for d in {1, 2, 3} and reports wall time, face
// counts and LP-oracle calls; the paper's claim shows as (a) polynomial
// growth of time with a log-log slope near d+1 or below and (b) face
// counts matching the O(n^d) combinatorics.

#include <cmath>
#include <cstdio>

#include <benchmark/benchmark.h>

#include "arrangement/arrangement.h"
#include "db/workloads.h"

namespace {

void BM_ArrangementBuild(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const size_t d = static_cast<size_t>(state.range(1));
  auto planes = lcdb::RandomHyperplanes(n, d, 6, /*seed=*/17 * n + d);
  size_t faces = 0, lp_calls = 0;
  for (auto _ : state) {
    lcdb::Arrangement arr = lcdb::Arrangement::Build(planes, d);
    faces = arr.num_faces();
    lp_calls = arr.lp_calls();
    benchmark::DoNotOptimize(arr.num_faces());
  }
  state.counters["faces"] = static_cast<double>(faces);
  state.counters["lp_calls"] = static_cast<double>(lp_calls);
  state.counters["n"] = static_cast<double>(n);
  state.counters["d"] = static_cast<double>(d);
}

// d = 1: faces are 2n + 1; time ~ n^2 (each insertion scans all faces).
BENCHMARK(BM_ArrangementBuild)
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({16, 1})
    ->Args({32, 1})
    ->Unit(benchmark::kMillisecond);
// d = 2: faces Theta(n^2).
BENCHMARK(BM_ArrangementBuild)
    ->Args({4, 2})
    ->Args({8, 2})
    ->Args({12, 2})
    ->Args({16, 2})
    ->Args({20, 2})
    ->Unit(benchmark::kMillisecond);
// d = 3: faces Theta(n^3).
BENCHMARK(BM_ArrangementBuild)
    ->Args({3, 3})
    ->Args({5, 3})
    ->Args({7, 3})
    ->Args({9, 3})
    ->Unit(benchmark::kMillisecond);

/// The same sweep as a printed series with growth exponents, so the
/// polynomial *shape* of Theorem 3.1 is visible directly in the output.
void PrintFaceGrowthTable() {
  std::printf("\nT3.1: face counts / O(n^d) check (random hyperplanes)\n");
  std::printf("%4s %4s %10s %12s %22s\n", "d", "n", "faces", "lp_calls",
              "faces growth exponent");
  for (size_t d : {1u, 2u}) {
    double prev_faces = 0, prev_n = 0;
    for (size_t n : {4u, 8u, 16u, 32u}) {
      auto planes = lcdb::RandomHyperplanes(n, d, 6, 17 * n + d);
      lcdb::Arrangement arr = lcdb::Arrangement::Build(planes, d);
      double exponent = 0;
      if (prev_faces > 0) {
        exponent = (std::log(static_cast<double>(arr.num_faces())) -
                    std::log(prev_faces)) /
                   (std::log(static_cast<double>(n)) - std::log(prev_n));
      }
      std::printf("%4zu %4zu %10zu %12zu %22.2f\n", d, n, arr.num_faces(),
                  arr.lp_calls(), exponent);
      prev_faces = static_cast<double>(arr.num_faces());
      prev_n = static_cast<double>(n);
    }
  }
  std::printf("(exponent should approach d; the paper's bound is O(n^d))\n");
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  PrintFaceGrowthTable();
  return 0;
}
