#ifndef LCDB_UTIL_FAILPOINT_H_
#define LCDB_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace lcdb {

/// Deterministic fault-injection points, compiled in unconditionally so the
/// test matrix exercises exactly the shipped binary. An unarmed process pays
/// one relaxed atomic load and a predicted branch per site hit; arming any
/// failpoint switches every site onto the slow (mutex + registry) path until
/// the registry is empty again.
///
/// A site is named by a stable string literal, e.g. LCDB_FAILPOINT
/// ("kernel.decide"). Arming a site makes its (skip_hits+1)-th hit throw a
/// QueryInterrupt carrying Status(code, message) — the exact propagation
/// path a real resource trip takes, which is the point: the matrix in
/// failpoint_test.cc proves every layer between the site and the recovery
/// boundary unwinds without aborting or corrupting memo/cache state.
///
/// Named sites (kept in sync with failpoint_test.cc):
///   kernel.decide      feasibility / implication decision entry
///   qe.project         one Fourier-Motzkin variable projection
///   arrangement.split  one (face, hyperplane) incremental split step
///   fixpoint.stage     one Kleene stage of an LFP/IFP/PFP operator
///   closure.build      TC/DTC closure-matrix construction entry
///   plan.execute       plan-executor root entry
void ArmFailpoint(std::string site, StatusCode code, std::string message,
                  uint64_t skip_hits = 0);
void DisarmFailpoint(const std::string& site);
void DisarmAllFailpoints();

/// Hits observed at `site` while any failpoint was armed (hit accounting is
/// active only on the slow path; an unarmed process counts nothing).
uint64_t FailpointHitCount(const std::string& site);

namespace internal {
extern std::atomic<int> g_armed_failpoints;
/// Slow path: records the hit and throws if `site` is armed and due.
void FailpointHit(const char* site);
}  // namespace internal

inline void FailpointCheck(const char* site) {
  if (internal::g_armed_failpoints.load(std::memory_order_relaxed) > 0) {
    internal::FailpointHit(site);
  }
}

}  // namespace lcdb

/// Marks an injection site. Reads as a statement; costs ~nothing unarmed.
#define LCDB_FAILPOINT(site) ::lcdb::FailpointCheck(site)

#endif  // LCDB_UTIL_FAILPOINT_H_
