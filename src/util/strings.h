#ifndef LCDB_UTIL_STRINGS_H_
#define LCDB_UTIL_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace lcdb {

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view s);

/// Splits `s` on `sep`, keeping empty pieces.
std::vector<std::string> Split(std::string_view s, char sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Joins `pieces` with `sep`.
std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep);

}  // namespace lcdb

#endif  // LCDB_UTIL_STRINGS_H_
