#ifndef LCDB_UTIL_INTERRUPT_H_
#define LCDB_UTIL_INTERRUPT_H_

#include <exception>
#include <string>
#include <utility>

#include "util/status.h"

namespace lcdb {

/// The transport of cooperative cancellation and fault injection: thrown by
/// QueryGovernor trip sites (engine/governor.h) and armed failpoints
/// (util/failpoint.h) deep inside a long-running loop, and converted back
/// into a plain `Status` at the nearest recovery boundary —
/// `Evaluator::Evaluate` / `Explain` for everything reachable from a query,
/// the caller's try block for extension construction.
///
/// Sites that may throw this MUST be interrupt-safe: no caches, memo tables
/// or shared structures may be left with partially-computed entries on
/// unwind. The repo-wide invariant (DESIGN.md, "Failure taxonomy and
/// resource governance") is insert-complete-entries-only, which makes every
/// layer trivially safe: an interrupt can only suppress an insertion, never
/// corrupt one.
class QueryInterrupt : public std::exception {
 public:
  explicit QueryInterrupt(Status status)
      : status_(std::move(status)), rendered_(status_.ToString()) {}

  const Status& status() const { return status_; }
  const char* what() const noexcept override { return rendered_.c_str(); }

 private:
  Status status_;
  std::string rendered_;
};

}  // namespace lcdb

#endif  // LCDB_UTIL_INTERRUPT_H_
