#ifndef LCDB_UTIL_RELOP_H_
#define LCDB_UTIL_RELOP_H_

#include <string>

#include "util/status.h"

namespace lcdb {

/// Comparison relation of a linear atom  sum a_i x_i  REL  b.
/// The paper disallows negation in representations but allows all five
/// relations (Section 2); != is expressed as a disjunction of < and >.
enum class RelOp { kLt, kLe, kEq, kGe, kGt };

inline bool IsStrict(RelOp rel) {
  return rel == RelOp::kLt || rel == RelOp::kGt;
}

/// The relation with < and > (and <= / >=) swapped; used when multiplying an
/// atom by a negative scalar.
inline RelOp Flip(RelOp rel) {
  switch (rel) {
    case RelOp::kLt:
      return RelOp::kGt;
    case RelOp::kLe:
      return RelOp::kGe;
    case RelOp::kEq:
      return RelOp::kEq;
    case RelOp::kGe:
      return RelOp::kLe;
    case RelOp::kGt:
      return RelOp::kLt;
  }
  LCDB_CHECK(false);
  return RelOp::kEq;
}

/// Relaxes strict comparisons to their non-strict counterparts (topological
/// closure of the solution set).
inline RelOp Closure(RelOp rel) {
  switch (rel) {
    case RelOp::kLt:
      return RelOp::kLe;
    case RelOp::kGt:
      return RelOp::kGe;
    default:
      return rel;
  }
}

inline const char* RelOpToString(RelOp rel) {
  switch (rel) {
    case RelOp::kLt:
      return "<";
    case RelOp::kLe:
      return "<=";
    case RelOp::kEq:
      return "=";
    case RelOp::kGe:
      return ">=";
    case RelOp::kGt:
      return ">";
  }
  return "?";
}

/// Evaluates `lhs REL rhs` for an already-computed comparison
/// (`cmp` = sign of lhs - rhs).
inline bool EvalRelOp(int cmp, RelOp rel) {
  switch (rel) {
    case RelOp::kLt:
      return cmp < 0;
    case RelOp::kLe:
      return cmp <= 0;
    case RelOp::kEq:
      return cmp == 0;
    case RelOp::kGe:
      return cmp >= 0;
    case RelOp::kGt:
      return cmp > 0;
  }
  return false;
}

}  // namespace lcdb

#endif  // LCDB_UTIL_RELOP_H_
