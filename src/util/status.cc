#include "util/status.h"

#include <cstdio>
#include <ostream>

namespace lcdb {

namespace {
const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kCancelled:
      return "Cancelled";
  }
  return "Unknown";
}
}  // namespace

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& extra) {
  std::fprintf(stderr, "LCDB_CHECK failed at %s:%d: %s%s%s\n", file, line,
               expr, extra.empty() ? "" : " — ", extra.c_str());
  std::abort();
}

}  // namespace internal
}  // namespace lcdb
