#include "util/failpoint.h"

#include <map>
#include <mutex>
#include <utility>

#include "util/interrupt.h"

namespace lcdb {

namespace internal {
std::atomic<int> g_armed_failpoints{0};
}  // namespace internal

namespace {

struct ArmedSite {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  uint64_t skip_hits = 0;
  bool armed = false;  ///< disarmed entries linger to keep their hit count
  uint64_t hits = 0;
};

std::mutex& RegistryMutex() {
  static std::mutex* mu = new std::mutex;  // leaked: used during shutdown
  return *mu;
}

std::map<std::string, ArmedSite>& Registry() {
  static auto* registry = new std::map<std::string, ArmedSite>;
  return *registry;
}

}  // namespace

void ArmFailpoint(std::string site, StatusCode code, std::string message,
                  uint64_t skip_hits) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  ArmedSite& entry = Registry()[std::move(site)];
  if (!entry.armed) {
    internal::g_armed_failpoints.fetch_add(1, std::memory_order_relaxed);
  }
  entry.code = code;
  entry.message = std::move(message);
  entry.skip_hits = skip_hits;
  entry.armed = true;
  entry.hits = 0;
}

void DisarmFailpoint(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  if (it == Registry().end() || !it->second.armed) return;
  it->second.armed = false;
  internal::g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
}

void DisarmAllFailpoints() {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  for (auto& [site, entry] : Registry()) {
    if (entry.armed) {
      entry.armed = false;
      internal::g_armed_failpoints.fetch_sub(1, std::memory_order_relaxed);
    }
  }
}

uint64_t FailpointHitCount(const std::string& site) {
  std::lock_guard<std::mutex> lock(RegistryMutex());
  auto it = Registry().find(site);
  return it == Registry().end() ? 0 : it->second.hits;
}

namespace internal {

void FailpointHit(const char* site) {
  StatusCode code;
  std::string message;
  {
    std::lock_guard<std::mutex> lock(RegistryMutex());
    auto it = Registry().find(site);
    if (it == Registry().end()) {
      // Unarmed site observed while others are armed: count it anyway so
      // tests can assert a site was exercised without injecting into it.
      ++Registry()[site].hits;
      return;
    }
    ArmedSite& entry = it->second;
    ++entry.hits;
    if (!entry.armed || entry.hits <= entry.skip_hits) return;
    code = entry.code;
    message = entry.message + " (failpoint '" + site + "')";
  }
  throw QueryInterrupt(Status(code, std::move(message)));
}

}  // namespace internal

}  // namespace lcdb
