#include "util/strings.h"

#include <cctype>

namespace lcdb {

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string Join(const std::vector<std::string>& pieces,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(pieces[i]);
  }
  return out;
}

}  // namespace lcdb
