#ifndef LCDB_UTIL_STATUS_H_
#define LCDB_UTIL_STATUS_H_

#include <cstdint>
#include <cstdlib>
#include <iosfwd>
#include <string>
#include <utility>
#include <variant>

namespace lcdb {

/// Error categories used across the library. The set is deliberately small:
/// parse errors (malformed input text), invalid arguments (well-formed but
/// semantically wrong inputs, e.g. a non-linear term), internal errors
/// (invariant violations that indicate a bug in lcdb itself), and the three
/// resource-governance codes (engine/governor.h): a per-query budget ran
/// out, the wall-clock deadline passed, or the caller cancelled the query.
enum class StatusCode {
  kOk = 0,
  kParseError = 1,
  kInvalidArgument = 2,
  kInternal = 3,
  kNotFound = 4,
  kUnsupported = 5,
  kResourceExhausted = 6,
  kDeadlineExceeded = 7,
  kCancelled = 8,
};

/// Arrow/RocksDB-style status object. Functions that can fail on user input
/// return `Status` (or `Result<T>`); invariant violations abort via
/// LCDB_CHECK instead.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }

  /// True for the three resource-governance codes — failures of the *query*
  /// (budget, deadline, cancel), not of the input or the engine. Callers
  /// like lcdbsh keep serving after these.
  bool IsResourceFailure() const {
    return code_ == StatusCode::kResourceExhausted ||
           code_ == StatusCode::kDeadlineExceeded ||
           code_ == StatusCode::kCancelled;
  }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Checkpoint/resume transport (core/resume.h): when a resource failure
  /// interrupted an Evaluate that had checkpointable fixpoint progress, the
  /// returned Status carries an opaque token; passing it to
  /// Evaluator::Evaluate(query, token) with a fresh budget continues from
  /// the saved stage. 0 means "nothing to resume". Tokens are single-use
  /// and scoped to the evaluator instance that issued them.
  uint64_t resume_token() const { return resume_token_; }
  void set_resume_token(uint64_t token) { resume_token_ = token; }

  /// Human-readable rendering, e.g. "ParseError: unexpected token ')'".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
  uint64_t resume_token_ = 0;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Minimal StatusOr-like result type: either a value or an error status.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error status keeps call
  /// sites terse (`return some_value;` / `return Status::ParseError(...);`).
  Result(T value) : payload_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                            // NOLINT(runtime/explicit)
      : payload_(std::move(status)) {}

  bool ok() const { return std::holds_alternative<T>(payload_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(payload_);
  }

  const T& value() const& { return std::get<T>(payload_); }
  T& value() & { return std::get<T>(payload_); }
  T&& value() && { return std::get<T>(std::move(payload_)); }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> payload_;
};

namespace internal {
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& extra);
}  // namespace internal

}  // namespace lcdb

/// Aborts the process with a diagnostic when `expr` is false. Used for
/// internal invariants only; user-facing failures return Status.
#define LCDB_CHECK(expr)                                          \
  do {                                                            \
    if (!(expr)) {                                                \
      ::lcdb::internal::CheckFailed(__FILE__, __LINE__, #expr, ""); \
    }                                                             \
  } while (0)

#define LCDB_CHECK_MSG(expr, msg)                                    \
  do {                                                               \
    if (!(expr)) {                                                   \
      ::lcdb::internal::CheckFailed(__FILE__, __LINE__, #expr, msg); \
    }                                                                \
  } while (0)

/// Propagates a non-OK status out of the enclosing function.
#define LCDB_RETURN_IF_ERROR(expr)           \
  do {                                       \
    ::lcdb::Status _st = (expr);             \
    if (!_st.ok()) return _st;               \
  } while (0)

/// Assigns the value of a Result<T> expression to `lhs`, or propagates the
/// error. `lhs` must be a declaration, e.g. LCDB_ASSIGN_OR_RETURN(auto x, f()).
#define LCDB_ASSIGN_OR_RETURN(lhs, rexpr)          \
  LCDB_ASSIGN_OR_RETURN_IMPL_(                     \
      LCDB_STATUS_CONCAT_(_result_, __LINE__), lhs, rexpr)

#define LCDB_ASSIGN_OR_RETURN_IMPL_(result, lhs, rexpr) \
  auto result = (rexpr);                                \
  if (!result.ok()) return result.status();             \
  lhs = std::move(result).value()

#define LCDB_STATUS_CONCAT_INNER_(a, b) a##b
#define LCDB_STATUS_CONCAT_(a, b) LCDB_STATUS_CONCAT_INNER_(a, b)

#endif  // LCDB_UTIL_STATUS_H_
