#include "arith/rational.h"

#include <ostream>

#include "util/strings.h"

namespace lcdb {

Rational::Rational(BigInt numerator, BigInt denominator)
    : num_(std::move(numerator)), den_(std::move(denominator)) {
  LCDB_CHECK_MSG(!den_.IsZero(), "rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.IsNegative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.IsZero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (!g.IsOne()) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Result<Rational> Rational::FromString(std::string_view text) {
  text = StripWhitespace(text);
  size_t slash = text.find('/');
  if (slash == std::string_view::npos) {
    LCDB_ASSIGN_OR_RETURN(BigInt n, BigInt::FromString(text));
    return Rational(std::move(n));
  }
  LCDB_ASSIGN_OR_RETURN(BigInt n,
                        BigInt::FromString(StripWhitespace(text.substr(0, slash))));
  LCDB_ASSIGN_OR_RETURN(BigInt d,
                        BigInt::FromString(StripWhitespace(text.substr(slash + 1))));
  if (d.IsZero()) return Status::ParseError("zero denominator: " + std::string(text));
  return Rational(std::move(n), std::move(d));
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  LCDB_CHECK_MSG(!other.IsZero(), "rational division by zero");
  return Rational(num_ * other.den_, den_ * other.num_);
}

bool Rational::operator<(const Rational& other) const {
  // Denominators are positive, so cross multiplication preserves order.
  return num_ * other.den_ < other.num_ * den_;
}

std::string Rational::ToString() const {
  if (den_.IsOne()) return num_.ToString();
  return num_.ToString() + "/" + den_.ToString();
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  return (a + b) * Rational(1, 2);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace lcdb
