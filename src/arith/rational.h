#ifndef LCDB_ARITH_RATIONAL_H_
#define LCDB_ARITH_RATIONAL_H_

#include <iosfwd>
#include <string>
#include <string_view>

#include "arith/bigint.h"
#include "util/status.h"

namespace lcdb {

/// Exact rational number: numerator / denominator with denominator > 0 and
/// gcd(|numerator|, denominator) == 1. This is the coordinate domain of
/// every geometric object in lcdb (arrangement vertices, witness points,
/// barycentric coordinates). The rBIT operator reads bits of `num()` and
/// `den()` directly.
class Rational {
 public:
  Rational() : num_(0), den_(1) {}
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  Rational(BigInt numerator, BigInt denominator);
  Rational(int64_t numerator, int64_t denominator)
      : Rational(BigInt(numerator), BigInt(denominator)) {}

  /// Parses "p", "-p", or "p/q" with integer p, q (q != 0).
  static Result<Rational> FromString(std::string_view text);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool IsZero() const { return num_.IsZero(); }
  int Sign() const { return num_.Sign(); }
  bool IsInteger() const { return den_.IsOne(); }

  Rational operator-() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// `other` must be nonzero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& other) const {
    return num_ == other.num_ && den_ == other.den_;
  }
  bool operator!=(const Rational& other) const { return !(*this == other); }
  bool operator<(const Rational& other) const;
  bool operator<=(const Rational& other) const { return !(other < *this); }
  bool operator>(const Rational& other) const { return other < *this; }
  bool operator>=(const Rational& other) const { return !(*this < other); }

  Rational Abs() const { return Sign() < 0 ? -*this : *this; }

  /// "p" if integral, otherwise "p/q".
  std::string ToString() const;

  size_t Hash() const { return num_.Hash() * 31 + den_.Hash(); }

  /// Midpoint (a+b)/2, used for witness-point construction.
  static Rational Midpoint(const Rational& a, const Rational& b);

 private:
  void Normalize();

  BigInt num_;
  BigInt den_;  // > 0
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace lcdb

#endif  // LCDB_ARITH_RATIONAL_H_
