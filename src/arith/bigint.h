#ifndef LCDB_ARITH_BIGINT_H_
#define LCDB_ARITH_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace lcdb {

/// Arbitrary-precision signed integer with a small-value fast path.
///
/// This is the paper's model of computation made concrete: linear constraint
/// databases over (R, <, +) with *integer* coefficients stored bitwise
/// (Section 2). All arithmetic in lcdb ultimately bottoms out here, and the
/// rBIT operator (Definition 5.1) reads individual bits via `Bit()`.
///
/// Representation: values with |v| <= kSmallMax live inline in an int64
/// (no heap allocation — the dominant case in LP pivoting and quantifier
/// elimination); larger values use sign + magnitude with base-2^32 limbs.
/// Invariants: `limbs_` is empty for small values; when non-empty it has no
/// trailing zero limbs and the magnitude exceeds kSmallMax.
class BigInt {
 public:
  BigInt() = default;
  BigInt(int64_t value);  // NOLINT(runtime/explicit) — numeric literal use.

  /// Parses an optionally signed decimal string, e.g. "-1234".
  static Result<BigInt> FromString(std::string_view text);

  bool IsZero() const { return limbs_.empty() && small_ == 0; }
  bool IsNegative() const {
    return limbs_.empty() ? small_ < 0 : negative_;
  }
  bool IsOne() const { return limbs_.empty() && small_ == 1; }

  int Sign() const {
    if (limbs_.empty()) return small_ == 0 ? 0 : (small_ < 0 ? -1 : 1);
    return negative_ ? -1 : 1;
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;

  /// Truncated division (C++ semantics: quotient rounds toward zero and the
  /// remainder has the sign of the dividend). `other` must be nonzero.
  BigInt operator/(const BigInt& other) const;
  BigInt operator%(const BigInt& other) const;

  /// Computes quotient and remainder in one pass (truncated division).
  static void DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                     BigInt* remainder);

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  bool operator==(const BigInt& other) const;
  bool operator!=(const BigInt& other) const { return !(*this == other); }
  bool operator<(const BigInt& other) const;
  bool operator<=(const BigInt& other) const { return !(other < *this); }
  bool operator>(const BigInt& other) const { return other < *this; }
  bool operator>=(const BigInt& other) const { return !(*this < other); }

  /// Greatest common divisor of the magnitudes; always non-negative.
  /// Gcd(0, 0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// Bit `i` (0-indexed, least significant first) of the magnitude.
  bool Bit(size_t i) const;

  /// Number of bits in the magnitude (0 for zero).
  size_t BitLength() const;

  /// Value as int64_t; the caller must know it fits (checked).
  int64_t ToInt64() const;

  /// True if the value fits in int64_t.
  bool FitsInt64() const;

  std::string ToString() const;

  /// 2^k.
  static BigInt Pow2(size_t k);

  size_t Hash() const;

 private:
  /// Largest magnitude kept inline. One bit of headroom below INT64_MIN/MAX
  /// so negation and magnitude handling never overflow.
  static constexpr int64_t kSmallMax = (int64_t{1} << 62) - 1;

  bool IsSmall() const { return limbs_.empty(); }
  /// Magnitude limbs of a small value (for mixed-representation paths).
  static std::vector<uint32_t> SmallLimbs(int64_t value);
  /// Installs a magnitude + sign, demoting to the small form when possible.
  void SetMagnitude(std::vector<uint32_t> limbs, bool negative);

  static int CompareMagnitude(const std::vector<uint32_t>& a,
                              const std::vector<uint32_t>& b);
  static std::vector<uint32_t> AddMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMagnitude(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static BigInt AddSigned(const std::vector<uint32_t>& a, bool a_neg,
                          const std::vector<uint32_t>& b, bool b_neg);

  int64_t small_ = 0;
  bool negative_ = false;            // big form only
  std::vector<uint32_t> limbs_;      // big form: little-endian base 2^32
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace lcdb

#endif  // LCDB_ARITH_BIGINT_H_
