#include "arith/bigint.h"

#include <algorithm>
#include <cctype>
#include <ostream>

namespace lcdb {

namespace {
constexpr uint64_t kBase = uint64_t{1} << 32;

size_t MagnitudeBitLength(const std::vector<uint32_t>& limbs) {
  if (limbs.empty()) return 0;
  uint32_t top = limbs.back();
  size_t bits = (limbs.size() - 1) * 32;
  while (top) {
    ++bits;
    top >>= 1;
  }
  return bits;
}
}  // namespace

BigInt::BigInt(int64_t value) {
  if (value >= -kSmallMax && value <= kSmallMax) {
    small_ = value;
    return;
  }
  // |value| exceeds the inline range (only near INT64_MIN/MAX).
  negative_ = value < 0;
  uint64_t magnitude = negative_ ? ~static_cast<uint64_t>(value) + 1
                                 : static_cast<uint64_t>(value);
  limbs_.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) limbs_.push_back(static_cast<uint32_t>(magnitude >> 32));
}

std::vector<uint32_t> BigInt::SmallLimbs(int64_t value) {
  std::vector<uint32_t> out;
  uint64_t magnitude = value < 0 ? ~static_cast<uint64_t>(value) + 1
                                 : static_cast<uint64_t>(value);
  if (magnitude) out.push_back(static_cast<uint32_t>(magnitude & 0xffffffffu));
  if (magnitude >> 32) out.push_back(static_cast<uint32_t>(magnitude >> 32));
  return out;
}

void BigInt::SetMagnitude(std::vector<uint32_t> limbs, bool negative) {
  while (!limbs.empty() && limbs.back() == 0) limbs.pop_back();
  if (limbs.size() <= 2) {
    uint64_t magnitude = 0;
    for (size_t i = limbs.size(); i-- > 0;) {
      magnitude = (magnitude << 32) | limbs[i];
    }
    if (magnitude <= static_cast<uint64_t>(kSmallMax)) {
      small_ = negative ? -static_cast<int64_t>(magnitude)
                        : static_cast<int64_t>(magnitude);
      negative_ = false;
      limbs_.clear();
      return;
    }
  }
  small_ = 0;
  negative_ = negative;
  limbs_ = std::move(limbs);
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  if (text.empty()) return Status::ParseError("empty integer literal");
  size_t pos = 0;
  bool negative = false;
  if (text[0] == '+' || text[0] == '-') {
    negative = text[0] == '-';
    pos = 1;
  }
  if (pos == text.size()) return Status::ParseError("sign without digits");
  BigInt out;
  const BigInt ten(10);
  for (; pos < text.size(); ++pos) {
    char c = text[pos];
    if (!std::isdigit(static_cast<unsigned char>(c))) {
      return Status::ParseError("invalid digit in integer literal: " +
                                std::string(text));
    }
    out = out * ten + BigInt(c - '0');
  }
  if (negative) out = -out;
  return out;
}

int BigInt::CompareMagnitude(const std::vector<uint32_t>& a,
                             const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

std::vector<uint32_t> BigInt::AddMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  const size_t n = std::max(a.size(), b.size());
  out.reserve(n + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t sum = carry;
    if (i < a.size()) sum += a[i];
    if (i < b.size()) sum += b[i];
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMagnitude(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  LCDB_CHECK(borrow == 0);
  return out;
}

BigInt BigInt::AddSigned(const std::vector<uint32_t>& a, bool a_neg,
                         const std::vector<uint32_t>& b, bool b_neg) {
  BigInt out;
  if (a_neg == b_neg) {
    out.SetMagnitude(AddMagnitude(a, b), a_neg);
    return out;
  }
  const int cmp = CompareMagnitude(a, b);
  if (cmp == 0) return out;
  if (cmp > 0) {
    out.SetMagnitude(SubMagnitude(a, b), a_neg);
  } else {
    out.SetMagnitude(SubMagnitude(b, a), b_neg);
  }
  return out;
}

BigInt BigInt::operator-() const {
  if (IsSmall()) return BigInt(-small_);
  BigInt out = *this;
  out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  if (IsSmall()) return BigInt(small_ < 0 ? -small_ : small_);
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (IsSmall() && other.IsSmall()) {
    // |small| <= 2^62 - 1 each, so the int64 sum cannot overflow.
    return BigInt(small_ + other.small_);
  }
  return AddSigned(IsSmall() ? SmallLimbs(small_) : limbs_, IsNegative(),
                   other.IsSmall() ? SmallLimbs(other.small_) : other.limbs_,
                   other.IsNegative());
}

BigInt BigInt::operator-(const BigInt& other) const {
  if (IsSmall() && other.IsSmall()) {
    return BigInt(small_ - other.small_);
  }
  return AddSigned(IsSmall() ? SmallLimbs(small_) : limbs_, IsNegative(),
                   other.IsSmall() ? SmallLimbs(other.small_) : other.limbs_,
                   !other.IsNegative());
}

BigInt BigInt::operator*(const BigInt& other) const {
  if (IsSmall() && other.IsSmall()) {
    int64_t product;
    if (!__builtin_mul_overflow(small_, other.small_, &product) &&
        product >= -kSmallMax && product <= kSmallMax) {
      BigInt out;
      out.small_ = product;
      return out;
    }
  }
  if (IsZero() || other.IsZero()) return BigInt();
  const std::vector<uint32_t> a = IsSmall() ? SmallLimbs(small_) : limbs_;
  const std::vector<uint32_t> b =
      other.IsSmall() ? SmallLimbs(other.small_) : other.limbs_;
  std::vector<uint32_t> prod(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = prod[i + j] + static_cast<uint64_t>(a[i]) * b[j] + carry;
      prod[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = prod[k] + carry;
      prod[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  BigInt out;
  out.SetMagnitude(std::move(prod), IsNegative() != other.IsNegative());
  return out;
}

void BigInt::DivMod(const BigInt& a, const BigInt& b, BigInt* quotient,
                    BigInt* remainder) {
  LCDB_CHECK_MSG(!b.IsZero(), "division by zero");
  if (a.IsSmall() && b.IsSmall()) {
    BigInt q, r;
    q.small_ = a.small_ / b.small_;
    r.small_ = a.small_ % b.small_;
    *quotient = std::move(q);
    *remainder = std::move(r);
    return;
  }
  const std::vector<uint32_t> am = a.IsSmall() ? SmallLimbs(a.small_) : a.limbs_;
  const std::vector<uint32_t> bm = b.IsSmall() ? SmallLimbs(b.small_) : b.limbs_;
  if (CompareMagnitude(am, bm) < 0) {
    *quotient = BigInt();
    *remainder = a;
    return;
  }
  // Schoolbook long division on magnitudes, one bit at a time. This is
  // O(bits * limbs), adequate for lcdb's coefficient sizes.
  const size_t bits = MagnitudeBitLength(am);
  std::vector<uint32_t> q(am.size(), 0);
  std::vector<uint32_t> r;
  for (size_t i = bits; i-- > 0;) {
    // r = r * 2 + bit_i(a)
    uint32_t carry = (am[i / 32] >> (i % 32)) & 1u;
    for (size_t k = 0; k < r.size(); ++k) {
      uint32_t next = r[k] >> 31;
      r[k] = (r[k] << 1) | carry;
      carry = next;
    }
    if (carry) r.push_back(carry);
    if (CompareMagnitude(r, bm) >= 0) {
      r = SubMagnitude(r, bm);
      while (!r.empty() && r.back() == 0) r.pop_back();
      q[i / 32] |= (uint32_t{1} << (i % 32));
    }
  }
  BigInt qi, ri;
  qi.SetMagnitude(std::move(q), a.IsNegative() != b.IsNegative());
  ri.SetMagnitude(std::move(r), a.IsNegative());
  *quotient = std::move(qi);
  *remainder = std::move(ri);
}

BigInt BigInt::operator/(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return q;
}

BigInt BigInt::operator%(const BigInt& other) const {
  BigInt q, r;
  DivMod(*this, other, &q, &r);
  return r;
}

bool BigInt::operator==(const BigInt& other) const {
  if (IsSmall() != other.IsSmall()) return false;  // forms are canonical
  if (IsSmall()) return small_ == other.small_;
  return negative_ == other.negative_ && limbs_ == other.limbs_;
}

bool BigInt::operator<(const BigInt& other) const {
  if (IsSmall() && other.IsSmall()) return small_ < other.small_;
  const bool a_neg = IsNegative(), b_neg = other.IsNegative();
  if (a_neg != b_neg) return a_neg;
  // At least one is big; the big one has the larger magnitude.
  int cmp;
  if (IsSmall()) {
    cmp = -1;  // |small| < |big|
  } else if (other.IsSmall()) {
    cmp = 1;
  } else {
    cmp = CompareMagnitude(limbs_, other.limbs_);
  }
  return a_neg ? cmp > 0 : cmp < 0;
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  if (a.IsSmall() && b.IsSmall()) {
    int64_t x = a.small_ < 0 ? -a.small_ : a.small_;
    int64_t y = b.small_ < 0 ? -b.small_ : b.small_;
    while (y != 0) {
      int64_t r = x % y;
      x = y;
      y = r;
    }
    return BigInt(x);
  }
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.IsZero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

bool BigInt::Bit(size_t i) const {
  if (IsSmall()) {
    if (i >= 63) return false;
    uint64_t magnitude =
        small_ < 0 ? static_cast<uint64_t>(-small_) : static_cast<uint64_t>(small_);
    return (magnitude >> i) & 1u;
  }
  const size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

size_t BigInt::BitLength() const {
  if (IsSmall()) {
    uint64_t magnitude =
        small_ < 0 ? static_cast<uint64_t>(-small_) : static_cast<uint64_t>(small_);
    size_t bits = 0;
    while (magnitude) {
      ++bits;
      magnitude >>= 1;
    }
    return bits;
  }
  return MagnitudeBitLength(limbs_);
}

bool BigInt::FitsInt64() const {
  if (IsSmall()) return true;
  const size_t bits = MagnitudeBitLength(limbs_);
  if (bits < 64) return true;
  if (bits > 64) return false;
  // Exactly 64 bits: only INT64_MIN (magnitude 2^63, negative) fits.
  return negative_ && bits == 64 && limbs_.size() == 2 && limbs_[0] == 0 &&
         limbs_[1] == 0x80000000u;
}

int64_t BigInt::ToInt64() const {
  if (IsSmall()) return small_;
  LCDB_CHECK_MSG(FitsInt64(), "BigInt does not fit in int64_t");
  uint64_t magnitude = 0;
  for (size_t i = limbs_.size(); i-- > 0;) {
    magnitude = (magnitude << 32) | limbs_[i];
  }
  return negative_ ? -static_cast<int64_t>(magnitude)
                   : static_cast<int64_t>(magnitude);
}

std::string BigInt::ToString() const {
  if (IsSmall()) return std::to_string(small_);
  // Repeatedly divide the magnitude by 10^9 to produce decimal chunks.
  std::vector<uint32_t> scratch(limbs_);
  std::string digits;
  constexpr uint64_t kChunk = 1000000000;
  while (!scratch.empty()) {
    uint64_t rem = 0;
    for (size_t i = scratch.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | scratch[i];
      scratch[i] = static_cast<uint32_t>(cur / kChunk);
      rem = cur % kChunk;
    }
    while (!scratch.empty() && scratch.back() == 0) scratch.pop_back();
    for (int i = 0; i < 9; ++i) {
      digits.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
    }
  }
  while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
  if (negative_) digits.push_back('-');
  std::reverse(digits.begin(), digits.end());
  return digits;
}

BigInt BigInt::Pow2(size_t k) {
  if (k < 62) return BigInt(int64_t{1} << k);
  std::vector<uint32_t> limbs(k / 32 + 1, 0);
  limbs.back() = uint32_t{1} << (k % 32);
  BigInt out;
  out.SetMagnitude(std::move(limbs), false);
  return out;
}

size_t BigInt::Hash() const {
  if (IsSmall()) {
    // Mix so that hash(small k) == hash of the same value in big form is
    // irrelevant: forms are canonical, equal values share a form.
    uint64_t v = static_cast<uint64_t>(small_);
    v ^= v >> 33;
    v *= 0xff51afd7ed558ccdull;
    v ^= v >> 33;
    return static_cast<size_t>(v);
  }
  size_t h = negative_ ? 0x9e3779b97f4a7c15ull : 0;
  for (uint32_t limb : limbs_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace lcdb
