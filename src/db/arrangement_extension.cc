#include <algorithm>
#include <memory>

#include "arrangement/arrangement.h"
#include "db/region_extension.h"
#include "engine/trace.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {
namespace {

/// Region extension whose second sort is the set of faces of A(S)
/// (Definition 4.1). Every face is either contained in or disjoint from S
/// (Section 3), so S-membership is decided once per face via its witness.
class ArrangementExtension : public RegionExtension {
 public:
  explicit ArrangementExtension(const ConstraintDatabase& db)
      : db_(db),
        arrangement_(Arrangement::FromFormula(db.representation())) {
    const size_t n = arrangement_.num_faces();
    in_s_.resize(n);
    formulas_.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      in_s_[i] = db_.Contains(arrangement_.face(i).witness);
      formulas_.push_back(arrangement_.FaceFormula(i));
    }
    for (size_t i = 0; i < n; ++i) {
      if (arrangement_.face(i).dim == 0) zero_dim_.push_back(i);
    }
    std::sort(zero_dim_.begin(), zero_dim_.end(), [&](size_t a, size_t b) {
      return VecLexCompare(arrangement_.face(a).witness,
                           arrangement_.face(b).witness) < 0;
    });
  }

  const ConstraintDatabase& database() const override { return db_; }
  std::string kind() const override { return "arrangement"; }
  size_t num_regions() const override { return arrangement_.num_faces(); }

  int RegionDim(size_t r) const override { return arrangement_.face(r).dim; }

  bool RegionBounded(size_t r) const override {
    return arrangement_.face(r).bounded;
  }

  bool Adjacent(size_t r1, size_t r2) const override {
    return arrangement_.Adjacent(r1, r2);
  }

  bool RegionSubsetOfS(size_t r) const override { return in_s_[r]; }
  bool RegionIntersectsS(size_t r) const override { return in_s_[r]; }

  bool ContainsPoint(size_t r, const Vec& point) const override {
    return arrangement_.LocateFace(point) == r;
  }

  const Conjunction& RegionFormula(size_t r) const override {
    return formulas_[r];
  }

  Vec RegionWitness(size_t r) const override {
    return arrangement_.face(r).witness;
  }

  const std::vector<size_t>& ZeroDimRegions() const override {
    return zero_dim_;
  }

  Vec ZeroDimPoint(size_t r) const override {
    LCDB_CHECK(arrangement_.face(r).dim == 0);
    return arrangement_.face(r).witness;
  }

  /// Accessor for callers that need the raw arrangement (benchmarks).
  const Arrangement& arrangement() const { return arrangement_; }

 private:
  ConstraintDatabase db_;
  Arrangement arrangement_;
  std::vector<bool> in_s_;
  std::vector<Conjunction> formulas_;
  std::vector<size_t> zero_dim_;
};

}  // namespace

Result<std::unique_ptr<RegionExtension>> BuildArrangementExtension(
    const ConstraintDatabase& db) {
  TraceSpan build_span("extension.build");
  try {
    std::unique_ptr<RegionExtension> ext =
        std::make_unique<ArrangementExtension>(db);
    build_span.Counter("regions", ext->num_regions());
    return ext;
  } catch (const QueryInterrupt& interrupt) {
    // Arrangement construction runs budgeted LP work (face splits all go
    // through the kernel), so a governed build can trip mid-way; the
    // half-built extension is abandoned and the budget named in the Status.
    return interrupt.status();
  }
}

std::unique_ptr<RegionExtension> MakeArrangementExtension(
    const ConstraintDatabase& db) {
  return std::make_unique<ArrangementExtension>(db);
}

}  // namespace lcdb
