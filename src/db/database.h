#ifndef LCDB_DB_DATABASE_H_
#define LCDB_DB_DATABASE_H_

#include <string>
#include <vector>

#include "constraint/dnf_formula.h"

namespace lcdb {

/// A linear constraint database B = ((R, <, +), S) with a single d-ary
/// spatial relation S finitely represented by a DNF formula with integer
/// coefficients (Section 2; the one-relation restriction follows the paper).
///
/// The database carries a *representation*, not just an abstract relation:
/// size and complexity statements are all relative to the representation,
/// and two different representations of the same relation are semantically
/// interchangeable (queries are abstract).
class ConstraintDatabase {
 public:
  ConstraintDatabase(std::string relation_name, DnfFormula representation,
                     std::vector<std::string> var_names = {});

  const std::string& relation_name() const { return relation_name_; }
  /// Arity d of the spatial relation.
  size_t arity() const { return representation_.num_vars(); }
  const DnfFormula& representation() const { return representation_; }
  const std::vector<std::string>& var_names() const { return var_names_; }

  /// The size |B| of the database: the size of its representation
  /// (Section 2).
  size_t Size() const { return representation_.SizeMeasure(); }

  /// Membership of a point in S.
  bool Contains(const Vec& point) const {
    return representation_.Satisfies(point);
  }

  std::string ToString() const;

 private:
  std::string relation_name_;
  DnfFormula representation_;
  std::vector<std::string> var_names_;
};

}  // namespace lcdb

#endif  // LCDB_DB_DATABASE_H_
