#ifndef LCDB_DB_IO_H_
#define LCDB_DB_IO_H_

#include <string>
#include <string_view>

#include "db/database.h"
#include "util/status.h"

namespace lcdb {

/// Text format for constraint databases:
///
///   # comment lines and blank lines are ignored
///   relation S(x, y)
///   formula (x >= 0 & y >= 0 & x + y <= 4) | x = y
///
/// The formula may span multiple lines; everything after the `formula`
/// keyword (to end of input) is parsed as one DNF expression.
Result<ConstraintDatabase> LoadDatabaseFromString(std::string_view text);

/// Reads a database from a file on disk.
Result<ConstraintDatabase> LoadDatabaseFromFile(const std::string& path);

/// Serializes; `LoadDatabaseFromString` round-trips the result.
std::string SaveDatabaseToString(const ConstraintDatabase& db);

/// Writes the database to a file.
Status SaveDatabaseToFile(const ConstraintDatabase& db,
                          const std::string& path);

}  // namespace lcdb

#endif  // LCDB_DB_IO_H_
