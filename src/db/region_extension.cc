#include "db/region_extension.h"

namespace lcdb {

size_t RegionExtension::ZeroDimRank(size_t r) const {
  const std::vector<size_t>& zeros = ZeroDimRegions();
  for (size_t i = 0; i < zeros.size(); ++i) {
    if (zeros[i] == r) return i;
  }
  return num_regions();
}

}  // namespace lcdb
