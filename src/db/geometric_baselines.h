#ifndef LCDB_DB_GEOMETRIC_BASELINES_H_
#define LCDB_DB_GEOMETRIC_BASELINES_H_

#include <vector>

#include "db/region_extension.h"

namespace lcdb {

/// Hand-written geometric algorithms over the region graph. These serve as
/// the *baselines* for the generic logic evaluator (DESIGN.md's substitution
/// for the Grumbach–Kuper comparator [11]): they compute the same answers as
/// the corresponding RegLFP/RegTC queries, directly, with union-find/BFS.

/// True iff S is topologically connected, decided by union-find over the
/// adjacency graph restricted to regions contained in S — the geometric
/// counterpart of the paper's Conn query (Section 5). An empty S counts as
/// connected (the query's universal quantification is vacuous).
bool SpatialConnectivityBaseline(const RegionExtension& ext);

/// Number of connected components of the sub-S region graph.
size_t CountComponentsBaseline(const RegionExtension& ext);

/// True iff the regions containing `from` and `to` are linked by a path of
/// adjacent regions contained in S (BFS) — the geometric counterpart of the
/// LFP reachability core of Conn.
bool RegionReachabilityBaseline(const RegionExtension& ext, const Vec& from,
                                const Vec& to);

/// Simple union-find used by the baselines (exposed for tests).
class UnionFind {
 public:
  explicit UnionFind(size_t n);
  size_t Find(size_t x);
  void Union(size_t a, size_t b);
  size_t NumClasses() const { return classes_; }

 private:
  std::vector<size_t> parent_;
  size_t classes_;
};

}  // namespace lcdb

#endif  // LCDB_DB_GEOMETRIC_BASELINES_H_
