#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_map>

#include "constraint/simplify.h"
#include "db/region_extension.h"
#include "decomp/decomposition.h"
#include "engine/trace.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {
namespace {

/// Region extension over the Section 7 / Appendix A decomposition. Regions
/// are generator regions; geometric predicates (adjacency, S-containment)
/// reduce to LP feasibility and are cached lazily because the logics only
/// touch the pairs their queries mention.
class DecompositionExtension : public RegionExtension {
 public:
  explicit DecompositionExtension(const ConstraintDatabase& db)
      : db_(db), regions_(DecomposeFormula(db.representation())) {
    formulas_.resize(regions_.size());
    subset_s_.resize(regions_.size());
    intersects_s_.resize(regions_.size());
    for (size_t i = 0; i < regions_.size(); ++i) {
      if (regions_[i].region.Dimension() == 0) zero_dim_.push_back(i);
    }
    std::sort(zero_dim_.begin(), zero_dim_.end(), [&](size_t a, size_t b) {
      int cmp = VecLexCompare(regions_[a].region.points()[0],
                              regions_[b].region.points()[0]);
      return cmp != 0 ? cmp < 0 : a < b;
    });
  }

  const ConstraintDatabase& database() const override { return db_; }
  std::string kind() const override { return "decomposition"; }
  size_t num_regions() const override { return regions_.size(); }

  int RegionDim(size_t r) const override {
    return regions_[r].region.Dimension();
  }

  bool RegionBounded(size_t r) const override {
    return regions_[r].region.rays().empty();
  }

  bool Adjacent(size_t r1, size_t r2) const override {
    if (r1 == r2) return false;
    const uint64_t key = (static_cast<uint64_t>(std::min(r1, r2)) << 32) |
                         static_cast<uint64_t>(std::max(r1, r2));
    auto it = adjacent_cache_.find(key);
    if (it != adjacent_cache_.end()) return it->second;
    const bool adj = regions_[r1].region.AdjacentTo(regions_[r2].region);
    adjacent_cache_.emplace(key, adj);
    return adj;
  }

  bool RegionSubsetOfS(size_t r) const override {
    if (!subset_s_[r].has_value()) {
      DnfFormula region_formula(db_.arity(), {RegionFormula(r)});
      subset_s_[r] = Implies(region_formula, db_.representation());
    }
    return *subset_s_[r];
  }

  bool RegionIntersectsS(size_t r) const override {
    if (!intersects_s_[r].has_value()) {
      bool intersects = false;
      for (const Conjunction& disjunct : db_.representation().disjuncts()) {
        if (regions_[r].region.IntersectsConjunction(disjunct)) {
          intersects = true;
          break;
        }
      }
      intersects_s_[r] = intersects;
    }
    return *intersects_s_[r];
  }

  bool ContainsPoint(size_t r, const Vec& point) const override {
    return regions_[r].region.Contains(point);
  }

  const Conjunction& RegionFormula(size_t r) const override {
    if (!formulas_[r].has_value()) {
      formulas_[r] = regions_[r].region.ToConjunction();
    }
    return *formulas_[r];
  }

  Vec RegionWitness(size_t r) const override {
    return regions_[r].region.Witness();
  }

  const std::vector<size_t>& ZeroDimRegions() const override {
    return zero_dim_;
  }

  Vec ZeroDimPoint(size_t r) const override {
    LCDB_CHECK(regions_[r].region.Dimension() == 0);
    return regions_[r].region.points()[0];
  }

  const std::vector<DecompRegion>& regions() const { return regions_; }

 private:
  ConstraintDatabase db_;
  std::vector<DecompRegion> regions_;
  mutable std::vector<std::optional<Conjunction>> formulas_;
  mutable std::vector<std::optional<bool>> subset_s_;
  mutable std::vector<std::optional<bool>> intersects_s_;
  mutable std::unordered_map<uint64_t, bool> adjacent_cache_;
  std::vector<size_t> zero_dim_;
};

}  // namespace

Result<std::unique_ptr<RegionExtension>> BuildDecompositionExtension(
    const ConstraintDatabase& db) {
  TraceSpan build_span("extension.build");
  try {
    std::unique_ptr<RegionExtension> ext =
        std::make_unique<DecompositionExtension>(db);
    build_span.Counter("regions", ext->num_regions());
    return ext;
  } catch (const QueryInterrupt& interrupt) {
    return interrupt.status();
  }
}

std::unique_ptr<RegionExtension> MakeDecompositionExtension(
    const ConstraintDatabase& db) {
  return std::make_unique<DecompositionExtension>(db);
}

}  // namespace lcdb
