#ifndef LCDB_DB_REGION_EXTENSION_H_
#define LCDB_DB_REGION_EXTENSION_H_

#include <memory>
#include <string>
#include <vector>

#include "db/database.h"
#include "util/status.h"

namespace lcdb {

/// The two-sorted region extension B^Reg = (R, Reg; <=, +, S, adj, ∈) of a
/// linear constraint database (Definition 4.1 and Note 7.1). The first sort
/// is handled symbolically by the evaluator; this interface exposes the
/// finite second sort: the set of regions with the relations the logics use.
///
/// Two implementations exist, matching the paper's two decompositions:
///  * ArrangementExtension — regions are the faces of the arrangement A(S)
///    (Sections 3-6). Faces partition R^d and each is contained in or
///    disjoint from S.
///  * DecompositionExtension — regions are the Appendix A generator regions
///    (Section 7). Regions may overlap, need not cover R^d, and need not be
///    contained in or disjoint from S (Note 7.1).
class RegionExtension {
 public:
  virtual ~RegionExtension() = default;

  virtual const ConstraintDatabase& database() const = 0;

  /// Identifies which decomposition produced the extension.
  virtual std::string kind() const = 0;

  virtual size_t num_regions() const = 0;

  /// Dimension of the affine support of the region.
  virtual int RegionDim(size_t r) const = 0;

  /// Whether the region is contained in some hypercube (Theorem 6.4's
  /// bounded/unbounded split).
  virtual bool RegionBounded(size_t r) const = 0;

  /// The adjacency relation adj of Definition 4.1: some point of one region
  /// has every epsilon-neighbourhood meeting the other. Irreflexive by
  /// convention, symmetric.
  virtual bool Adjacent(size_t r1, size_t r2) const = 0;

  /// R ⊆ S (the paper's `R ⊆ S` atoms in example queries).
  virtual bool RegionSubsetOfS(size_t r) const = 0;

  /// R ∩ S nonempty. On arrangements this coincides with RegionSubsetOfS.
  virtual bool RegionIntersectsS(size_t r) const = 0;

  /// The containment relation ∈ between points and regions.
  virtual bool ContainsPoint(size_t r, const Vec& point) const = 0;

  /// A quantifier-free formula defining the region (used by the evaluator
  /// to translate region atoms into element-sort constraints; proof of
  /// Theorem 4.3).
  virtual const Conjunction& RegionFormula(size_t r) const = 0;

  /// A rational point inside the region.
  virtual Vec RegionWitness(size_t r) const = 0;

  /// The 0-dimensional regions ordered lexicographically by their point
  /// (the order underlying the rBIT operator and the Theorem 6.4 encoding).
  virtual const std::vector<size_t>& ZeroDimRegions() const = 0;

  /// The unique point of a 0-dimensional region.
  virtual Vec ZeroDimPoint(size_t r) const = 0;

  /// Rank of a 0-dimensional region in the lexicographic order, or
  /// num_regions() if `r` is not 0-dimensional.
  size_t ZeroDimRank(size_t r) const;
};

/// Builds the Sections 3-6 extension (arrangement faces), recoverably.
/// Construction does feasibility work through the ambient kernel and any
/// installed governor, so a construction-time budget trip or cancellation
/// surfaces here as the Status naming what went wrong — the same recovery
/// boundary contract as Evaluator::Evaluate. Construction runs under an
/// "extension.build" trace span.
Result<std::unique_ptr<RegionExtension>> BuildArrangementExtension(
    const ConstraintDatabase& db);

/// Builds the Section 7 / Appendix A extension (generator regions),
/// recoverably; see BuildArrangementExtension.
Result<std::unique_ptr<RegionExtension>> BuildDecompositionExtension(
    const ConstraintDatabase& db);

/// Exception-escaping convenience wrapper over BuildArrangementExtension
/// for ungoverned callers (tests, benchmarks): a QueryInterrupt raised
/// during construction propagates to the caller.
std::unique_ptr<RegionExtension> MakeArrangementExtension(
    const ConstraintDatabase& db);

/// Exception-escaping convenience wrapper over BuildDecompositionExtension.
std::unique_ptr<RegionExtension> MakeDecompositionExtension(
    const ConstraintDatabase& db);

}  // namespace lcdb

#endif  // LCDB_DB_REGION_EXTENSION_H_
