#ifndef LCDB_DB_WORKLOADS_H_
#define LCDB_DB_WORKLOADS_H_

#include <cstdint>
#include <vector>

#include "db/database.h"
#include "geometry/hyperplane.h"

namespace lcdb {

/// Synthetic workload generators used by the benchmark harness and tests.
/// The paper has no published datasets; these generators produce families
/// with controlled region counts and connectivity structure so that the
/// complexity-theorem experiments (DESIGN.md, T3.1/T4.3/T6.1/T7.3) can
/// sweep input size.

/// A comb in R^2: `teeth` vertical bars; when `connected`, a horizontal
/// spine joins them (S connected), otherwise the bars are isolated.
/// Representation size grows linearly in `teeth`, and the LFP reachability
/// chain through the arrangement grows with it.
ConstraintDatabase MakeComb(size_t teeth, bool connected);

/// A staircase corridor of `steps` unit squares joined corner-to-corner —
/// the adjacency diameter of the region graph grows linearly in `steps`.
ConstraintDatabase MakeStaircase(size_t steps);

/// A k x k grid of pairwise-disjoint closed unit boxes (k^2 components).
ConstraintDatabase MakeBoxGrid(size_t k);

/// `n` pseudo-random hyperplanes in R^dim with integer coefficients in
/// [-max_coeff, max_coeff] (deterministic in `seed`; degenerate all-zero
/// rows are repaired).
std::vector<Hyperplane> RandomHyperplanes(size_t n, size_t dim,
                                          int64_t max_coeff, uint64_t seed);

/// A database whose relation is a union of `n` random halfplane slabs —
/// drives arrangement sizes for the Theorem 3.1 sweep.
ConstraintDatabase MakeRandomSlabs(size_t n, size_t dim, int64_t max_coeff,
                                   uint64_t seed);

/// The river scenario of the paper's Figure 6. The paper stores the
/// information whether a point belongs to the river, a city, etc. "in the
/// third dimension"; we use the same trick one dimension down — a 2-ary
/// relation over (x, layer) — because the river's lateral extent carries no
/// information (the relation would be a cylinder over it) and dropping it
/// keeps the arrangement small. Layers:
///   1 = river (an interval of `river_len` unit segments flowing in +x),
///   2 = the spring (the first river segment),
///   3 = cities (unit intervals at the given positions),
///   4 = chem1 markers, 5 = chem2 markers (unit intervals at positions
///       from `chem1_at` / `chem2_at`, indices into 0..river_len-1).
ConstraintDatabase MakeRiverScenario(size_t river_len,
                                     const std::vector<size_t>& cities,
                                     const std::vector<size_t>& chem1_at,
                                     const std::vector<size_t>& chem2_at);

}  // namespace lcdb

#endif  // LCDB_DB_WORKLOADS_H_
