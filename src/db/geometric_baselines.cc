#include "db/geometric_baselines.h"

#include <deque>

#include "util/status.h"

namespace lcdb {

UnionFind::UnionFind(size_t n) : parent_(n), classes_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];
    x = parent_[x];
  }
  return x;
}

void UnionFind::Union(size_t a, size_t b) {
  a = Find(a);
  b = Find(b);
  if (a == b) return;
  parent_[a] = b;
  --classes_;
}

namespace {

/// Indices of regions contained in S.
std::vector<size_t> RegionsInS(const RegionExtension& ext) {
  std::vector<size_t> in_s;
  for (size_t r = 0; r < ext.num_regions(); ++r) {
    if (ext.RegionSubsetOfS(r)) in_s.push_back(r);
  }
  return in_s;
}

}  // namespace

size_t CountComponentsBaseline(const RegionExtension& ext) {
  std::vector<size_t> in_s = RegionsInS(ext);
  UnionFind uf(in_s.size());
  for (size_t i = 0; i < in_s.size(); ++i) {
    for (size_t j = i + 1; j < in_s.size(); ++j) {
      if (ext.Adjacent(in_s[i], in_s[j])) uf.Union(i, j);
    }
  }
  return uf.NumClasses();
}

bool SpatialConnectivityBaseline(const RegionExtension& ext) {
  return CountComponentsBaseline(ext) <= 1;
}

bool RegionReachabilityBaseline(const RegionExtension& ext, const Vec& from,
                                const Vec& to) {
  // Locate the regions containing the endpoints; both must be inside S.
  size_t start = ext.num_regions(), goal = ext.num_regions();
  for (size_t r = 0; r < ext.num_regions(); ++r) {
    if (!ext.RegionSubsetOfS(r)) continue;
    if (start == ext.num_regions() && ext.ContainsPoint(r, from)) start = r;
    if (goal == ext.num_regions() && ext.ContainsPoint(r, to)) goal = r;
  }
  if (start == ext.num_regions() || goal == ext.num_regions()) return false;
  std::vector<bool> seen(ext.num_regions(), false);
  std::deque<size_t> queue = {start};
  seen[start] = true;
  while (!queue.empty()) {
    size_t r = queue.front();
    queue.pop_front();
    if (r == goal) return true;
    for (size_t g = 0; g < ext.num_regions(); ++g) {
      if (seen[g] || !ext.RegionSubsetOfS(g) || !ext.Adjacent(r, g)) continue;
      seen[g] = true;
      queue.push_back(g);
    }
  }
  return false;
}

}  // namespace lcdb
