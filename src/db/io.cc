#include "db/io.h"

#include <cctype>
#include <cstring>
#include <fstream>
#include <sstream>

#include "constraint/parser.h"
#include "util/strings.h"

namespace lcdb {

namespace {

Status ParseHeader(std::string_view line, std::string* name,
                   std::vector<std::string>* vars) {
  // relation NAME(v1, v2, ...)
  std::string_view rest = StripWhitespace(line.substr(strlen("relation")));
  size_t open = rest.find('(');
  size_t close = rest.rfind(')');
  if (open == std::string_view::npos || close == std::string_view::npos ||
      close < open) {
    return Status::ParseError("malformed relation header: " +
                              std::string(line));
  }
  *name = std::string(StripWhitespace(rest.substr(0, open)));
  if (name->empty()) return Status::ParseError("relation needs a name");
  if (!StripWhitespace(rest.substr(close + 1)).empty()) {
    return Status::ParseError("trailing input after relation header: " +
                              std::string(line));
  }
  for (const std::string& v :
       Split(rest.substr(open + 1, close - open - 1), ',')) {
    std::string trimmed(StripWhitespace(v));
    if (trimmed.empty()) {
      return Status::ParseError("empty variable name in header");
    }
    vars->push_back(std::move(trimmed));
  }
  if (vars->empty()) return Status::ParseError("relation needs variables");
  return Status::Ok();
}

}  // namespace

Result<ConstraintDatabase> LoadDatabaseFromString(std::string_view text) {
  std::string name;
  std::vector<std::string> vars;
  std::string formula_text;
  bool in_formula = false;
  bool saw_relation = false;
  for (const std::string& raw : Split(text, '\n')) {
    std::string_view line = StripWhitespace(raw);
    if (in_formula) {
      formula_text += " ";
      formula_text += line;
      continue;
    }
    if (line.empty() || line[0] == '#') continue;
    if (StartsWith(line, "relation")) {
      if (saw_relation) {
        // One spatial relation per database (the paper's Section 2
        // restriction, which this format follows).
        return Status::ParseError("duplicate relation header");
      }
      LCDB_RETURN_IF_ERROR(ParseHeader(line, &name, &vars));
      saw_relation = true;
    } else if (StartsWith(line, "formula")) {
      if (!saw_relation) {
        return Status::ParseError("formula before relation header");
      }
      formula_text = std::string(StripWhitespace(line.substr(strlen("formula"))));
      in_formula = true;
    } else {
      return Status::ParseError("unexpected line: " + std::string(line));
    }
  }
  if (!saw_relation) return Status::ParseError("missing relation header");
  if (!in_formula) return Status::ParseError("missing formula");
  LCDB_ASSIGN_OR_RETURN(DnfFormula formula, ParseDnf(formula_text, vars));
  return ConstraintDatabase(std::move(name), std::move(formula),
                            std::move(vars));
}

Result<ConstraintDatabase> LoadDatabaseFromFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return LoadDatabaseFromString(buffer.str());
}

std::string SaveDatabaseToString(const ConstraintDatabase& db) {
  std::string out = "# lcdb constraint database\nrelation ";
  out += db.relation_name() + "(";
  for (size_t i = 0; i < db.var_names().size(); ++i) {
    if (i > 0) out += ", ";
    out += db.var_names()[i];
  }
  out += ")\nformula ";
  out += db.representation().ToString(db.var_names());
  out += "\n";
  return out;
}

Status SaveDatabaseToFile(const ConstraintDatabase& db,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::InvalidArgument("cannot write " + path);
  out << SaveDatabaseToString(db);
  return Status::Ok();
}

}  // namespace lcdb
