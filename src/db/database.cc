#include "db/database.h"

#include "util/status.h"

namespace lcdb {

ConstraintDatabase::ConstraintDatabase(std::string relation_name,
                                       DnfFormula representation,
                                       std::vector<std::string> var_names)
    : relation_name_(std::move(relation_name)),
      representation_(std::move(representation)),
      var_names_(std::move(var_names)) {
  if (var_names_.empty()) {
    for (size_t i = 0; i < representation_.num_vars(); ++i) {
      var_names_.push_back("x" + std::to_string(i));
    }
  }
  LCDB_CHECK(var_names_.size() == representation_.num_vars());
}

std::string ConstraintDatabase::ToString() const {
  std::string out = relation_name_ + "(";
  for (size_t i = 0; i < var_names_.size(); ++i) {
    if (i > 0) out += ", ";
    out += var_names_[i];
  }
  out += ") := " + representation_.ToString(var_names_);
  return out;
}

}  // namespace lcdb
