#include "db/workloads.h"

#include <random>

#include "util/status.h"

namespace lcdb {

namespace {

LinearAtom Atom2(int64_t cx, int64_t cy, RelOp rel, int64_t rhs) {
  return LinearAtom({Rational(cx), Rational(cy)}, rel, Rational(rhs));
}

/// The closed axis-aligned box [x0, x1] x [y0, y1].
Conjunction Box(int64_t x0, int64_t x1, int64_t y0, int64_t y1) {
  return Conjunction(2, {Atom2(1, 0, RelOp::kGe, x0), Atom2(1, 0, RelOp::kLe, x1),
                         Atom2(0, 1, RelOp::kGe, y0), Atom2(0, 1, RelOp::kLe, y1)});
}

}  // namespace

ConstraintDatabase MakeComb(size_t teeth, bool connected) {
  LCDB_CHECK(teeth >= 1);
  std::vector<Conjunction> disjuncts;
  for (size_t i = 0; i < teeth; ++i) {
    const int64_t x = static_cast<int64_t>(2 * i);
    disjuncts.push_back(Box(x, x + 1, 0, 2));
  }
  if (connected) {
    disjuncts.push_back(Box(0, static_cast<int64_t>(2 * (teeth - 1) + 1), 2, 3));
  }
  return ConstraintDatabase("S", DnfFormula(2, std::move(disjuncts)),
                            {"x", "y"});
}

ConstraintDatabase MakeStaircase(size_t steps) {
  LCDB_CHECK(steps >= 1);
  std::vector<Conjunction> disjuncts;
  for (size_t i = 0; i < steps; ++i) {
    const int64_t t = static_cast<int64_t>(i);
    disjuncts.push_back(Box(t, t + 1, t, t + 1));
  }
  return ConstraintDatabase("S", DnfFormula(2, std::move(disjuncts)),
                            {"x", "y"});
}

ConstraintDatabase MakeBoxGrid(size_t k) {
  LCDB_CHECK(k >= 1);
  std::vector<Conjunction> disjuncts;
  for (size_t i = 0; i < k; ++i) {
    for (size_t j = 0; j < k; ++j) {
      disjuncts.push_back(Box(static_cast<int64_t>(2 * i),
                              static_cast<int64_t>(2 * i + 1),
                              static_cast<int64_t>(2 * j),
                              static_cast<int64_t>(2 * j + 1)));
    }
  }
  return ConstraintDatabase("S", DnfFormula(2, std::move(disjuncts)),
                            {"x", "y"});
}

std::vector<Hyperplane> RandomHyperplanes(size_t n, size_t dim,
                                          int64_t max_coeff, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> coeff(-max_coeff, max_coeff);
  std::vector<Hyperplane> planes;
  planes.reserve(n);
  while (planes.size() < n) {
    Vec c(dim);
    for (size_t i = 0; i < dim; ++i) c[i] = Rational(coeff(rng));
    if (VecIsZero(c)) c[planes.size() % dim] = Rational(1);
    Hyperplane h =
        Hyperplane::FromAtom(LinearAtom(c, RelOp::kEq, Rational(coeff(rng))));
    bool duplicate = false;
    for (const Hyperplane& existing : planes) {
      if (existing == h) {
        duplicate = true;
        break;
      }
    }
    if (!duplicate) planes.push_back(std::move(h));
  }
  return planes;
}

ConstraintDatabase MakeRandomSlabs(size_t n, size_t dim, int64_t max_coeff,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<int64_t> coeff(-max_coeff, max_coeff);
  std::vector<std::string> names;
  for (size_t i = 0; i < dim; ++i) names.push_back("x" + std::to_string(i));
  std::vector<Conjunction> disjuncts;
  while (disjuncts.size() < n) {
    Vec c(dim);
    for (size_t i = 0; i < dim; ++i) c[i] = Rational(coeff(rng));
    if (VecIsZero(c)) c[disjuncts.size() % dim] = Rational(1);
    const Rational base(coeff(rng));
    Conjunction slab(dim, {LinearAtom(c, RelOp::kGe, base),
                           LinearAtom(c, RelOp::kLe, base + Rational(1))});
    disjuncts.push_back(std::move(slab));
  }
  return ConstraintDatabase("S", DnfFormula(dim, std::move(disjuncts)),
                            std::move(names));
}

ConstraintDatabase MakeRiverScenario(size_t river_len,
                                     const std::vector<size_t>& cities,
                                     const std::vector<size_t>& chem1_at,
                                     const std::vector<size_t>& chem2_at) {
  LCDB_CHECK(river_len >= 1);
  // Layers on the l axis; every feature is a horizontal unit interval
  // {x in [c, c+1], l = layer}.
  auto strip = [](int64_t x0, int64_t x1, int64_t layer) {
    return Conjunction(2, {Atom2(1, 0, RelOp::kGe, x0),
                           Atom2(1, 0, RelOp::kLe, x1),
                           Atom2(0, 1, RelOp::kEq, layer)});
  };
  std::vector<Conjunction> disjuncts;
  disjuncts.push_back(strip(0, static_cast<int64_t>(river_len), 1));  // river
  disjuncts.push_back(strip(0, 1, 2));                                // spring
  for (size_t c : cities) {
    LCDB_CHECK(c < river_len);
    disjuncts.push_back(strip(static_cast<int64_t>(c),
                              static_cast<int64_t>(c) + 1, 3));
  }
  for (size_t c : chem1_at) {
    LCDB_CHECK(c < river_len);
    disjuncts.push_back(strip(static_cast<int64_t>(c),
                              static_cast<int64_t>(c) + 1, 4));
  }
  for (size_t c : chem2_at) {
    LCDB_CHECK(c < river_len);
    disjuncts.push_back(strip(static_cast<int64_t>(c),
                              static_cast<int64_t>(c) + 1, 5));
  }
  return ConstraintDatabase("S", DnfFormula(2, std::move(disjuncts)),
                            {"x", "l"});
}

}  // namespace lcdb
