#ifndef LCDB_CORE_PARSER_H_
#define LCDB_CORE_PARSER_H_

#include <string>
#include <string_view>

#include "core/ast.h"
#include "util/status.h"

namespace lcdb {

/// Parses a query of the region logics into an AST.
///
/// Syntax (precedence `<->` < `->` < `|` < `&` < `!`):
///
///   phi := phi <-> phi | phi -> phi | phi | phi | phi & phi | !phi
///        | (phi) | exists v1 v2... . phi | forall v1 v2... . phi
///        | atom | fixpoint
///
///   atom := true | false
///         | term REL term                REL in { < <= = >= > != }
///         | NAME(t1, ..., td)            relation atom (NAME = relation)
///         | M(R1, ..., Rk)               set atom (M bound by a fixpoint)
///         | in(t1, ..., td; R)           point-in-region (Def. 4.1's ∈)
///         | adj(R1, R2) | R1 = R2
///         | subset(R) | meets(R) | dim(R) = k | bounded(R)
///
///   fixpoint := [lfp M X1 ... Xk : phi](R1, ..., Rk)      (Def. 5.1)
///             | [ifp M X1 ... Xk : phi](R1, ..., Rk)
///             | [pfp M X1 ... Xk : phi](R1, ..., Rk)
///             | [tc X1..Xm ; Y1..Ym : phi](A1..Am ; B1..Bm)   (Def. 7.2)
///             | [dtc ... : phi](... ; ...)
///             | [rbit x : phi](Rn, Rd)                     (Def. 5.1)
///
/// Variable sorts follow the paper's convention: identifiers beginning with
/// a lowercase letter are element variables (range over R), identifiers
/// beginning with an uppercase letter are region variables (range over Reg)
/// or set variables (when bound by a fixpoint / applied to a tuple).
/// Terms are affine: rational literals (`3`, `5/2`), element variables,
/// `+`, `-` and scalar multiplication (`2x`, `1/2 * y`).
///
/// `relation_name` identifies the database relation S for relation atoms;
/// arity and variable-sort errors are caught later by TypeCheck.
Result<FormulaPtr> ParseQuery(std::string_view text,
                              const std::string& relation_name);

}  // namespace lcdb

#endif  // LCDB_CORE_PARSER_H_
