#include "core/ast.h"

#include "util/status.h"

namespace lcdb {

ElementTerm ElementTerm::Variable(std::string name) {
  ElementTerm t;
  t.coeffs.emplace(std::move(name), Rational(1));
  return t;
}

ElementTerm ElementTerm::Constant(Rational value) {
  ElementTerm t;
  t.constant = std::move(value);
  return t;
}

ElementTerm ElementTerm::Plus(const ElementTerm& other) const {
  ElementTerm t = *this;
  for (const auto& [name, coeff] : other.coeffs) {
    auto [it, inserted] = t.coeffs.emplace(name, coeff);
    if (!inserted) it->second += coeff;
    if (it->second.IsZero()) t.coeffs.erase(it);
  }
  t.constant += other.constant;
  return t;
}

ElementTerm ElementTerm::Minus(const ElementTerm& other) const {
  return Plus(other.Scaled(Rational(-1)));
}

ElementTerm ElementTerm::Scaled(const Rational& factor) const {
  ElementTerm t;
  if (factor.IsZero()) return t;
  for (const auto& [name, coeff] : coeffs) {
    t.coeffs.emplace(name, coeff * factor);
  }
  t.constant = constant * factor;
  return t;
}

std::string ElementTerm::ToString() const {
  std::string out;
  for (const auto& [name, coeff] : coeffs) {
    if (!out.empty()) out += " + ";
    if (coeff == Rational(1)) {
      out += name;
    } else if (coeff == Rational(-1)) {
      out += "-" + name;
    } else {
      out += coeff.ToString() + name;
    }
  }
  if (out.empty()) return constant.ToString();
  if (!constant.IsZero()) out += " + " + constant.ToString();
  return out;
}

namespace {

FormulaPtr NewNode(NodeKind kind) {
  auto node = std::make_unique<FormulaNode>();
  node->kind = kind;
  return node;
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

std::string JoinTerms(const std::vector<ElementTerm>& terms) {
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ", ";
    out += terms[i].ToString();
  }
  return out;
}

}  // namespace

FormulaPtr MakeTrue() { return NewNode(NodeKind::kTrue); }
FormulaPtr MakeFalse() { return NewNode(NodeKind::kFalse); }

FormulaPtr MakeCompare(ElementTerm lhs, RelOp rel, ElementTerm rhs) {
  auto node = NewNode(NodeKind::kCompare);
  node->lhs = std::move(lhs);
  node->rhs = std::move(rhs);
  node->rel = rel;
  return node;
}

FormulaPtr MakeRelationAtom(std::string relation,
                            std::vector<ElementTerm> terms) {
  auto node = NewNode(NodeKind::kRelationAtom);
  node->relation_name = std::move(relation);
  node->terms = std::move(terms);
  return node;
}

FormulaPtr MakeInRegion(std::vector<ElementTerm> terms, std::string region) {
  auto node = NewNode(NodeKind::kInRegion);
  node->terms = std::move(terms);
  node->region_args = {std::move(region)};
  return node;
}

FormulaPtr MakeAdjacent(std::string r1, std::string r2) {
  auto node = NewNode(NodeKind::kAdjacent);
  node->region_args = {std::move(r1), std::move(r2)};
  return node;
}

FormulaPtr MakeRegionEq(std::string r1, std::string r2) {
  auto node = NewNode(NodeKind::kRegionEq);
  node->region_args = {std::move(r1), std::move(r2)};
  return node;
}

FormulaPtr MakeSubsetS(std::string region) {
  auto node = NewNode(NodeKind::kSubsetS);
  node->region_args = {std::move(region)};
  return node;
}

FormulaPtr MakeIntersectsS(std::string region) {
  auto node = NewNode(NodeKind::kIntersectsS);
  node->region_args = {std::move(region)};
  return node;
}

FormulaPtr MakeDimAtom(std::string region, int dim) {
  auto node = NewNode(NodeKind::kDimAtom);
  node->region_args = {std::move(region)};
  node->dim_value = dim;
  return node;
}

FormulaPtr MakeBoundedAtom(std::string region) {
  auto node = NewNode(NodeKind::kBoundedAtom);
  node->region_args = {std::move(region)};
  return node;
}

FormulaPtr MakeSetAtom(std::string set_var, std::vector<std::string> regions) {
  auto node = NewNode(NodeKind::kSetAtom);
  node->set_var = std::move(set_var);
  node->region_args = std::move(regions);
  return node;
}

FormulaPtr MakeNot(FormulaPtr child) {
  auto node = NewNode(NodeKind::kNot);
  node->children.push_back(std::move(child));
  return node;
}

namespace {
FormulaPtr MakeBinary(NodeKind kind, FormulaPtr a, FormulaPtr b) {
  auto node = NewNode(kind);
  node->children.push_back(std::move(a));
  node->children.push_back(std::move(b));
  return node;
}

FormulaPtr MakeQuantifier(NodeKind kind, std::string var, FormulaPtr body) {
  auto node = NewNode(kind);
  node->bound_vars = {std::move(var)};
  node->children.push_back(std::move(body));
  return node;
}
}  // namespace

FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(NodeKind::kAnd, std::move(a), std::move(b));
}
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(NodeKind::kOr, std::move(a), std::move(b));
}
FormulaPtr MakeImplies(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(NodeKind::kImplies, std::move(a), std::move(b));
}
FormulaPtr MakeIff(FormulaPtr a, FormulaPtr b) {
  return MakeBinary(NodeKind::kIff, std::move(a), std::move(b));
}

FormulaPtr MakeExistsElem(std::string var, FormulaPtr body) {
  return MakeQuantifier(NodeKind::kExistsElem, std::move(var), std::move(body));
}
FormulaPtr MakeForallElem(std::string var, FormulaPtr body) {
  return MakeQuantifier(NodeKind::kForallElem, std::move(var), std::move(body));
}
FormulaPtr MakeExistsRegion(std::string var, FormulaPtr body) {
  return MakeQuantifier(NodeKind::kExistsRegion, std::move(var),
                        std::move(body));
}
FormulaPtr MakeForallRegion(std::string var, FormulaPtr body) {
  return MakeQuantifier(NodeKind::kForallRegion, std::move(var),
                        std::move(body));
}

FormulaPtr MakeFixpoint(NodeKind op, std::string set_var,
                        std::vector<std::string> bound_regions,
                        FormulaPtr body, std::vector<std::string> args) {
  LCDB_CHECK(op == NodeKind::kLfp || op == NodeKind::kIfp ||
             op == NodeKind::kPfp);
  auto node = NewNode(op);
  node->set_var = std::move(set_var);
  node->bound_vars = std::move(bound_regions);
  node->region_args = std::move(args);
  node->children.push_back(std::move(body));
  return node;
}

FormulaPtr MakeTransitiveClosure(NodeKind op,
                                 std::vector<std::string> bound_regions,
                                 FormulaPtr body,
                                 std::vector<std::string> args,
                                 std::vector<std::string> args2) {
  LCDB_CHECK(op == NodeKind::kTc || op == NodeKind::kDtc);
  auto node = NewNode(op);
  node->bound_vars = std::move(bound_regions);
  node->region_args = std::move(args);
  node->region_args2 = std::move(args2);
  node->children.push_back(std::move(body));
  return node;
}

FormulaPtr MakeRbit(std::string elem_var, FormulaPtr body, std::string r_num,
                    std::string r_den) {
  auto node = NewNode(NodeKind::kRbit);
  node->bound_vars = {std::move(elem_var)};
  node->region_args = {std::move(r_num), std::move(r_den)};
  node->children.push_back(std::move(body));
  return node;
}

FormulaPtr MakeHull(std::vector<std::string> elem_vars, FormulaPtr body,
                    std::vector<ElementTerm> terms) {
  auto node = NewNode(NodeKind::kHull);
  node->bound_vars = std::move(elem_vars);
  node->terms = std::move(terms);
  node->children.push_back(std::move(body));
  return node;
}

FormulaPtr CloneFormula(const FormulaNode& node) {
  auto copy = std::make_unique<FormulaNode>();
  copy->kind = node.kind;
  copy->span = node.span;
  copy->lhs = node.lhs;
  copy->rhs = node.rhs;
  copy->rel = node.rel;
  copy->terms = node.terms;
  copy->relation_name = node.relation_name;
  copy->region_args = node.region_args;
  copy->region_args2 = node.region_args2;
  copy->dim_value = node.dim_value;
  copy->set_var = node.set_var;
  copy->bound_vars = node.bound_vars;
  for (const auto& child : node.children) {
    copy->children.push_back(CloneFormula(*child));
  }
  return copy;
}

std::string FormulaNode::ToString() const {
  switch (kind) {
    case NodeKind::kTrue:
      return "true";
    case NodeKind::kFalse:
      return "false";
    case NodeKind::kCompare:
      return lhs.ToString() + " " + RelOpToString(rel) + " " + rhs.ToString();
    case NodeKind::kRelationAtom:
      return relation_name + "(" + JoinTerms(terms) + ")";
    case NodeKind::kInRegion:
      return "in(" + JoinTerms(terms) + "; " + region_args[0] + ")";
    case NodeKind::kAdjacent:
      return "adj(" + region_args[0] + ", " + region_args[1] + ")";
    case NodeKind::kRegionEq:
      return region_args[0] + " = " + region_args[1];
    case NodeKind::kSubsetS:
      return "subset(" + region_args[0] + ")";
    case NodeKind::kIntersectsS:
      return "meets(" + region_args[0] + ")";
    case NodeKind::kDimAtom:
      return "dim(" + region_args[0] + ") = " + std::to_string(dim_value);
    case NodeKind::kBoundedAtom:
      return "bounded(" + region_args[0] + ")";
    case NodeKind::kSetAtom:
      return set_var + "(" + JoinNames(region_args) + ")";
    case NodeKind::kNot:
      return "!(" + children[0]->ToString() + ")";
    case NodeKind::kAnd:
      return "(" + children[0]->ToString() + " & " + children[1]->ToString() +
             ")";
    case NodeKind::kOr:
      return "(" + children[0]->ToString() + " | " + children[1]->ToString() +
             ")";
    case NodeKind::kImplies:
      return "(" + children[0]->ToString() + " -> " +
             children[1]->ToString() + ")";
    case NodeKind::kIff:
      return "(" + children[0]->ToString() + " <-> " +
             children[1]->ToString() + ")";
    case NodeKind::kExistsElem:
    case NodeKind::kExistsRegion:
      return "exists " + bound_vars[0] + " (" + children[0]->ToString() + ")";
    case NodeKind::kForallElem:
    case NodeKind::kForallRegion:
      return "forall " + bound_vars[0] + " (" + children[0]->ToString() + ")";
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp: {
      const char* op = kind == NodeKind::kLfp
                           ? "lfp"
                           : (kind == NodeKind::kIfp ? "ifp" : "pfp");
      return std::string("[") + op + " " + set_var + " " +
             JoinNames(bound_vars) + " : " + children[0]->ToString() + "](" +
             JoinNames(region_args) + ")";
    }
    case NodeKind::kTc:
    case NodeKind::kDtc: {
      const char* op = kind == NodeKind::kTc ? "tc" : "dtc";
      const size_t m = bound_vars.size() / 2;
      std::vector<std::string> first(bound_vars.begin(),
                                     bound_vars.begin() + m);
      std::vector<std::string> second(bound_vars.begin() + m,
                                      bound_vars.end());
      return std::string("[") + op + " " + JoinNames(first) + "; " +
             JoinNames(second) + " : " + children[0]->ToString() + "](" +
             JoinNames(region_args) + "; " + JoinNames(region_args2) + ")";
    }
    case NodeKind::kRbit:
      return "[rbit " + bound_vars[0] + " : " + children[0]->ToString() +
             "](" + region_args[0] + ", " + region_args[1] + ")";
    case NodeKind::kHull:
      return "[hull " + JoinNames(bound_vars) + " : " +
             children[0]->ToString() + "](" + JoinTerms(terms) + ")";
  }
  return "?";
}

}  // namespace lcdb
