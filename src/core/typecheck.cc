#include "core/typecheck.h"

#include <algorithm>

namespace lcdb {

namespace {

/// Sorts tracked while walking the tree.
enum class VarSort { kElement, kRegion, kSet };

class Checker {
 public:
  explicit Checker(const ConstraintDatabase& db) : db_(db) {}

  Status Check(const FormulaNode& node) {
    LCDB_RETURN_IF_ERROR(Visit(node));
    // Root must be a query: no free region or set variables (Defs 4.2, 5.1).
    const FreeVars& fv = info_.free.at(&node);
    if (!fv.region.empty()) {
      return Status::InvalidArgument("query has free region variable '" +
                                     *fv.region.begin() + "'");
    }
    if (!fv.set_vars.empty()) {
      return Status::InvalidArgument("query has free set variable '" +
                                     *fv.set_vars.begin() + "'");
    }
    return Status::Ok();
  }

  TypeInfo TakeInfo() { return std::move(info_); }

 private:
  Status Error(const FormulaNode& node, const std::string& message) {
    std::string where = " in: " + node.ToString();
    if (node.span.valid()) {
      where += " (at offset " + std::to_string(node.span.begin) + ")";
    }
    return Status::InvalidArgument(message + where);
  }

  void NoteElementVar(const std::string& name) {
    if (std::find(element_appearance_.begin(), element_appearance_.end(),
                  name) == element_appearance_.end()) {
      element_appearance_.push_back(name);
    }
  }

  Status CheckTermVars(const FormulaNode& node, const ElementTerm& term,
                       FreeVars* fv) {
    for (const auto& [name, coeff] : term.coeffs) {
      if (bound_.count(name)) {
        if (bound_.at(name) != VarSort::kElement) {
          return Error(node, "variable '" + name + "' is not element-sorted");
        }
      }
      fv->element.insert(name);
      NoteElementVar(name);
    }
    return Status::Ok();
  }

  Status CheckRegionVar(const FormulaNode& node, const std::string& name,
                        FreeVars* fv) {
    auto it = bound_.find(name);
    if (it != bound_.end() && it->second != VarSort::kRegion) {
      return Error(node, "variable '" + name + "' is not region-sorted");
    }
    fv->region.insert(name);
    return Status::Ok();
  }

  Status Bind(const FormulaNode& node, const std::string& name,
              VarSort sort) {
    if (bound_.count(name)) {
      return Error(node, "variable '" + name + "' shadows an outer binding");
    }
    bound_.emplace(name, sort);
    if (sort == VarSort::kElement) NoteElementVar(name);
    return Status::Ok();
  }

  void Unbind(const std::string& name) { bound_.erase(name); }

  Status Visit(const FormulaNode& node) {
    FreeVars fv;
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
        break;
      case NodeKind::kCompare:
        LCDB_RETURN_IF_ERROR(CheckTermVars(node, node.lhs, &fv));
        LCDB_RETURN_IF_ERROR(CheckTermVars(node, node.rhs, &fv));
        break;
      case NodeKind::kRelationAtom:
        if (node.relation_name != db_.relation_name()) {
          return Error(node, "unknown relation '" + node.relation_name + "'");
        }
        if (node.terms.size() != db_.arity()) {
          return Error(node, "relation arity mismatch (expected " +
                                 std::to_string(db_.arity()) + ")");
        }
        for (const ElementTerm& t : node.terms) {
          LCDB_RETURN_IF_ERROR(CheckTermVars(node, t, &fv));
        }
        break;
      case NodeKind::kInRegion:
        if (node.terms.size() != db_.arity()) {
          return Error(node, "in(...) arity mismatch (expected " +
                                 std::to_string(db_.arity()) + ")");
        }
        for (const ElementTerm& t : node.terms) {
          LCDB_RETURN_IF_ERROR(CheckTermVars(node, t, &fv));
        }
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[0], &fv));
        break;
      case NodeKind::kAdjacent:
      case NodeKind::kRegionEq:
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[0], &fv));
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[1], &fv));
        break;
      case NodeKind::kSubsetS:
      case NodeKind::kIntersectsS:
      case NodeKind::kBoundedAtom:
      case NodeKind::kDimAtom:
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[0], &fv));
        break;
      case NodeKind::kSetAtom: {
        auto it = bound_.find(node.set_var);
        if (it == bound_.end() || it->second != VarSort::kSet) {
          return Error(node, "unbound set variable '" + node.set_var + "'");
        }
        auto arity_it = set_arity_.find(node.set_var);
        if (arity_it->second != node.region_args.size()) {
          return Error(node, "set variable arity mismatch for '" +
                                 node.set_var + "'");
        }
        fv.set_vars.insert(node.set_var);
        for (const std::string& r : node.region_args) {
          LCDB_RETURN_IF_ERROR(CheckRegionVar(node, r, &fv));
        }
        break;
      }
      case NodeKind::kNot:
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kImplies:
      case NodeKind::kIff:
        for (const auto& child : node.children) {
          LCDB_RETURN_IF_ERROR(Visit(*child));
          const FreeVars& cv = info_.free.at(child.get());
          fv.element.insert(cv.element.begin(), cv.element.end());
          fv.region.insert(cv.region.begin(), cv.region.end());
          fv.set_vars.insert(cv.set_vars.begin(), cv.set_vars.end());
        }
        break;
      case NodeKind::kExistsElem:
      case NodeKind::kForallElem: {
        const std::string& var = node.bound_vars[0];
        LCDB_RETURN_IF_ERROR(Bind(node, var, VarSort::kElement));
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        Unbind(var);
        fv = info_.free.at(node.children[0].get());
        fv.element.erase(var);
        break;
      }
      case NodeKind::kExistsRegion:
      case NodeKind::kForallRegion: {
        const std::string& var = node.bound_vars[0];
        LCDB_RETURN_IF_ERROR(Bind(node, var, VarSort::kRegion));
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        Unbind(var);
        fv = info_.free.at(node.children[0].get());
        fv.region.erase(var);
        break;
      }
      case NodeKind::kLfp:
      case NodeKind::kIfp:
      case NodeKind::kPfp: {
        if (node.bound_vars.empty()) {
          return Error(node, "fixed point needs bound region variables");
        }
        if (node.region_args.size() != node.bound_vars.size()) {
          return Error(node, "fixed point applied to wrong-length tuple");
        }
        LCDB_RETURN_IF_ERROR(Bind(node, node.set_var, VarSort::kSet));
        set_arity_.emplace(node.set_var, node.bound_vars.size());
        for (const std::string& r : node.bound_vars) {
          LCDB_RETURN_IF_ERROR(Bind(node, r, VarSort::kRegion));
        }
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        const FreeVars& body = info_.free.at(node.children[0].get());
        // Definition 5.1: free(body) = {M, X1..Xk}; in particular no free
        // element variables and no region variables from outer scope.
        if (!body.element.empty()) {
          return Error(node, "fixed-point body has free element variable '" +
                                 *body.element.begin() + "'");
        }
        for (const std::string& r : body.region) {
          if (std::find(node.bound_vars.begin(), node.bound_vars.end(), r) ==
              node.bound_vars.end()) {
            return Error(node, "fixed-point body uses outer region '" + r +
                                   "'");
          }
        }
        for (const std::string& m : body.set_vars) {
          if (m != node.set_var) {
            return Error(node,
                         "fixed-point body uses outer set variable '" + m +
                             "'");
          }
        }
        // Positivity of LFP bodies (Definition 5.1) is the analyzer's
        // LCDB001: analysis/analyzer.cc reports it with a source span, and
        // Evaluate rejects before planning. TypeCheck only scopes and sorts.
        for (const std::string& r : node.bound_vars) Unbind(r);
        Unbind(node.set_var);
        set_arity_.erase(node.set_var);
        for (const std::string& r : node.region_args) {
          LCDB_RETURN_IF_ERROR(CheckRegionVar(node, r, &fv));
        }
        break;
      }
      case NodeKind::kTc:
      case NodeKind::kDtc: {
        if (node.bound_vars.empty() || node.bound_vars.size() % 2 != 0) {
          return Error(node, "TC needs a 2m-tuple of bound region variables");
        }
        const size_t m = node.bound_vars.size() / 2;
        if (node.region_args.size() != m || node.region_args2.size() != m) {
          return Error(node, "TC applied to wrong-length tuples");
        }
        for (const std::string& r : node.bound_vars) {
          LCDB_RETURN_IF_ERROR(Bind(node, r, VarSort::kRegion));
        }
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        const FreeVars& body = info_.free.at(node.children[0].get());
        if (!body.element.empty()) {
          return Error(node, "TC body has free element variable '" +
                                 *body.element.begin() + "'");
        }
        if (!body.set_vars.empty()) {
          return Error(node, "TC body uses a set variable");
        }
        for (const std::string& r : body.region) {
          if (std::find(node.bound_vars.begin(), node.bound_vars.end(), r) ==
              node.bound_vars.end()) {
            return Error(node, "TC body uses outer region '" + r + "'");
          }
        }
        for (const std::string& r : node.bound_vars) Unbind(r);
        for (const std::string& r : node.region_args) {
          LCDB_RETURN_IF_ERROR(CheckRegionVar(node, r, &fv));
        }
        for (const std::string& r : node.region_args2) {
          LCDB_RETURN_IF_ERROR(CheckRegionVar(node, r, &fv));
        }
        break;
      }
      case NodeKind::kHull: {
        // Section 8 extension: bind the hull variables, require the body's
        // free element variables to be among them; free region and set
        // variables of the body stay free (the hulled set may be
        // parameterized, and conv is monotone so positivity analysis
        // recurses through transparently).
        for (const std::string& v : node.bound_vars) {
          LCDB_RETURN_IF_ERROR(Bind(node, v, VarSort::kElement));
        }
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        FreeVars body = info_.free.at(node.children[0].get());
        for (const std::string& v : node.bound_vars) {
          Unbind(v);
          body.element.erase(v);
        }
        if (!body.element.empty()) {
          return Error(node, "hull body has extra free element variable '" +
                                 *body.element.begin() + "'");
        }
        fv.region = body.region;
        fv.set_vars = body.set_vars;
        if (node.terms.size() != node.bound_vars.size()) {
          return Error(node, "hull applied to wrong-length term tuple");
        }
        for (const ElementTerm& t : node.terms) {
          LCDB_RETURN_IF_ERROR(CheckTermVars(node, t, &fv));
        }
        break;
      }
      case NodeKind::kRbit: {
        const std::string& var = node.bound_vars[0];
        LCDB_RETURN_IF_ERROR(Bind(node, var, VarSort::kElement));
        LCDB_RETURN_IF_ERROR(Visit(*node.children[0]));
        Unbind(var);
        FreeVars body = info_.free.at(node.children[0].get());
        if (!body.set_vars.empty()) {
          return Error(node, "rBIT body uses a set variable");
        }
        // Definition 5.1: exactly one free element variable (the bound one).
        body.element.erase(var);
        if (!body.element.empty()) {
          return Error(node, "rBIT body has extra free element variable '" +
                                 *body.element.begin() + "'");
        }
        // Free region variables P̄ of the body stay free in the rBIT atom.
        fv.region = body.region;
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[0], &fv));
        LCDB_RETURN_IF_ERROR(CheckRegionVar(node, node.region_args[1], &fv));
        break;
      }
    }
    info_.free.emplace(&node, std::move(fv));
    return Status::Ok();
  }

  const ConstraintDatabase& db_;
  TypeInfo info_;
  std::map<std::string, VarSort> bound_;
  std::map<std::string, size_t> set_arity_;
  std::vector<std::string> element_appearance_;
};

/// Marks nodes whose subtree contains a quantifier, an element-sort atom or
/// an operator (fixpoint/TC/rBIT) — evaluation of those does enough work to
/// justify a memo-table lookup. Returns the flag for `node`.
bool ComputeWorthCaching(const FormulaNode& node,
                         std::map<const FormulaNode*, bool>* out) {
  bool worth = false;
  switch (node.kind) {
    case NodeKind::kExistsElem:
    case NodeKind::kForallElem:
    case NodeKind::kExistsRegion:
    case NodeKind::kForallRegion:
    case NodeKind::kRelationAtom:
    case NodeKind::kInRegion:
    case NodeKind::kCompare:
    case NodeKind::kRbit:
    case NodeKind::kHull:
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp:
    case NodeKind::kTc:
    case NodeKind::kDtc:
      worth = true;
      break;
    default:
      break;
  }
  for (const auto& child : node.children) {
    worth |= ComputeWorthCaching(*child, out);
  }
  out->emplace(&node, worth);
  return worth;
}

void CollectElementVars(const FormulaNode& node,
                        std::vector<std::string>* out) {
  auto note = [out](const ElementTerm& term) {
    for (const auto& [name, coeff] : term.coeffs) {
      if (std::find(out->begin(), out->end(), name) == out->end()) {
        out->push_back(name);
      }
    }
  };
  if (node.kind == NodeKind::kCompare) {
    note(node.lhs);
    note(node.rhs);
  }
  for (const ElementTerm& t : node.terms) note(t);
  if (node.kind == NodeKind::kExistsElem || node.kind == NodeKind::kForallElem ||
      node.kind == NodeKind::kRbit || node.kind == NodeKind::kHull) {
    for (const std::string& v : node.bound_vars) {
      if (std::find(out->begin(), out->end(), v) == out->end()) {
        out->push_back(v);
      }
    }
  }
  for (const auto& child : node.children) CollectElementVars(*child, out);
}

}  // namespace

bool IsPositiveIn(const FormulaNode& node, const std::string& set_var,
                  bool polarity) {
  switch (node.kind) {
    case NodeKind::kSetAtom:
      return node.set_var != set_var || polarity;
    case NodeKind::kNot:
      return IsPositiveIn(*node.children[0], set_var, !polarity);
    case NodeKind::kImplies:
      return IsPositiveIn(*node.children[0], set_var, !polarity) &&
             IsPositiveIn(*node.children[1], set_var, polarity);
    case NodeKind::kIff:
      // Both polarities occur; positive only if M does not occur at all.
      return IsPositiveIn(*node.children[0], set_var, polarity) &&
             IsPositiveIn(*node.children[0], set_var, !polarity) &&
             IsPositiveIn(*node.children[1], set_var, polarity) &&
             IsPositiveIn(*node.children[1], set_var, !polarity);
    default:
      for (const auto& child : node.children) {
        if (!IsPositiveIn(*child, set_var, polarity)) return false;
      }
      return true;
  }
}

Result<TypeInfo> TypeCheck(const FormulaNode& root,
                           const ConstraintDatabase& db) {
  Checker checker(db);
  LCDB_RETURN_IF_ERROR(checker.Check(root));
  TypeInfo info = checker.TakeInfo();
  CollectElementVars(root, &info.all_element_vars);
  ComputeWorthCaching(root, &info.worth_caching);
  // Answer column order: free element variables in all_element_vars order
  // (first appearance in the tree), so Evaluate's column dropping preserves
  // exactly this order.
  const FreeVars& fv = info.free.at(&root);
  for (const std::string& v : info.all_element_vars) {
    if (fv.element.count(v)) info.free_element_order.push_back(v);
  }
  return info;
}

}  // namespace lcdb
