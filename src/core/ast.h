#ifndef LCDB_CORE_AST_H_
#define LCDB_CORE_AST_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "arith/rational.h"
#include "util/relop.h"

namespace lcdb {

/// An element-sort term: an affine expression over element variables,
/// sum coeff_v * v + constant. Terms of FO(R, <, +) are exactly these
/// (addition and rational scalar multiples; no multiplication of variables —
/// Section 4's Figure 5 shows why more would be unsafe).
struct ElementTerm {
  std::map<std::string, Rational> coeffs;
  Rational constant;

  static ElementTerm Variable(std::string name);
  static ElementTerm Constant(Rational value);

  ElementTerm Plus(const ElementTerm& other) const;
  ElementTerm Minus(const ElementTerm& other) const;
  ElementTerm Scaled(const Rational& factor) const;

  std::string ToString() const;
};

/// Node kinds of the two-sorted query languages RegFO, RegLFP, RegIFP,
/// RegPFP, RegTC, RegDTC (Definitions 4.2, 5.1, 7.2).
enum class NodeKind {
  // Atoms.
  kTrue,
  kFalse,
  kCompare,       ///< term REL term                    (element sort)
  kRelationAtom,  ///< S(t1, ..., td)
  kInRegion,      ///< in(t1, ..., td; R)   — the ∈ relation of Def. 4.1
  kAdjacent,      ///< adj(R1, R2)
  kRegionEq,      ///< R1 = R2
  kSubsetS,       ///< subset(R): R ⊆ S (derived, RegFO-definable)
  kIntersectsS,   ///< meets(R): R ∩ S ≠ ∅ (derived, RegFO-definable)
  kDimAtom,       ///< dim(R) = k (first-order definable by [21; 22; 2])
  kBoundedAtom,   ///< bounded(R) (first-order definable, proof of Thm 6.4)
  kSetAtom,       ///< M(R1, ..., Rk)       (Definition 5.1, first rule)
  // Connectives.
  kNot,
  kAnd,
  kOr,
  kImplies,
  kIff,
  // Quantifiers (two sorts, Definition 4.2).
  kExistsElem,
  kForallElem,
  kExistsRegion,
  kForallRegion,
  // Fixed-point operators over the region sort (Definition 5.1).
  kLfp,
  kIfp,
  kPfp,
  // Transitive closure operators (Definition 7.2).
  kTc,
  kDtc,
  // The rBIT operator (Definition 5.1).
  kRbit,
  // The convex-closure operator (the paper's Section 8 extension): the
  // applied term tuple lies in the closed convex hull of the set the body
  // defines over the bound element variables.
  kHull,
};

/// Half-open byte range [begin, end) into the query source text a node was
/// parsed from. The parser stamps every node it produces; nodes built
/// through the factories directly keep the invalid default, and diagnostic
/// renderers degrade to span-less messages for them.
struct SourceSpan {
  size_t begin = 0;
  size_t end = 0;

  bool valid() const { return end > begin; }
};

/// One AST node. A single struct with kind-dependent fields keeps the tree
/// uniform for the evaluator and the type checker; factory functions below
/// construct each kind with exactly its fields set.
struct FormulaNode {
  NodeKind kind = NodeKind::kTrue;

  /// Source range this node was parsed from (invalid when built directly).
  SourceSpan span;

  // kCompare.
  ElementTerm lhs, rhs;
  RelOp rel = RelOp::kEq;

  // kRelationAtom / kInRegion: argument terms.
  std::vector<ElementTerm> terms;
  std::string relation_name;  // kRelationAtom

  // Region variables: the single region of kInRegion/kSubsetS/kIntersectsS/
  // kDimAtom/kBoundedAtom, or the pair of kAdjacent/kRegionEq, or the
  // applied arguments of kSetAtom/kLfp/kIfp/kPfp, or the first applied
  // tuple of kTc/kDtc.
  std::vector<std::string> region_args;
  // Second applied tuple of kTc/kDtc.
  std::vector<std::string> region_args2;

  // kDimAtom.
  int dim_value = 0;

  // kSetAtom / fixed points: the set variable M.
  std::string set_var;

  // Bound variables: the single variable of element/region quantifiers and
  // kRbit; the tuple X1..Xk of fixed points; the 2m tuple (X̄ then X̄') of
  // kTc/kDtc.
  std::vector<std::string> bound_vars;

  // Subformulas (1 for unary nodes/quantifiers/fixed points, 2 for binary).
  std::vector<std::unique_ptr<FormulaNode>> children;

  std::string ToString() const;
};

using FormulaPtr = std::unique_ptr<FormulaNode>;

// ---- Factory functions (the public construction API). ----

FormulaPtr MakeTrue();
FormulaPtr MakeFalse();
FormulaPtr MakeCompare(ElementTerm lhs, RelOp rel, ElementTerm rhs);
FormulaPtr MakeRelationAtom(std::string relation, std::vector<ElementTerm> terms);
FormulaPtr MakeInRegion(std::vector<ElementTerm> terms, std::string region);
FormulaPtr MakeAdjacent(std::string r1, std::string r2);
FormulaPtr MakeRegionEq(std::string r1, std::string r2);
FormulaPtr MakeSubsetS(std::string region);
FormulaPtr MakeIntersectsS(std::string region);
FormulaPtr MakeDimAtom(std::string region, int dim);
FormulaPtr MakeBoundedAtom(std::string region);
FormulaPtr MakeSetAtom(std::string set_var, std::vector<std::string> regions);
FormulaPtr MakeNot(FormulaPtr child);
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeImplies(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeIff(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeExistsElem(std::string var, FormulaPtr body);
FormulaPtr MakeForallElem(std::string var, FormulaPtr body);
FormulaPtr MakeExistsRegion(std::string var, FormulaPtr body);
FormulaPtr MakeForallRegion(std::string var, FormulaPtr body);
/// [OP_{M, X1..Xk} body](args) for OP in {LFP, IFP, PFP}.
FormulaPtr MakeFixpoint(NodeKind op, std::string set_var,
                        std::vector<std::string> bound_regions,
                        FormulaPtr body, std::vector<std::string> args);
/// [TC_{X̄, X̄'} body](args, args2); bound = X̄ followed by X̄'.
FormulaPtr MakeTransitiveClosure(NodeKind op,
                                 std::vector<std::string> bound_regions,
                                 FormulaPtr body,
                                 std::vector<std::string> args,
                                 std::vector<std::string> args2);
/// [rBIT_x body](r_numerator, r_denominator).
FormulaPtr MakeRbit(std::string elem_var, FormulaPtr body,
                    std::string r_num, std::string r_den);
/// [hull x1..xk : body](t1, ..., tk) — Section 8 extension.
FormulaPtr MakeHull(std::vector<std::string> elem_vars, FormulaPtr body,
                    std::vector<ElementTerm> terms);

/// Deep copy.
FormulaPtr CloneFormula(const FormulaNode& node);

}  // namespace lcdb

#endif  // LCDB_CORE_AST_H_
