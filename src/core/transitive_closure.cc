#include <deque>
#include <string>

#include "core/evaluator.h"
#include "core/resume.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "util/failpoint.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

size_t Evaluator::TupleIndex(const Tuple& tuple) const {
  const size_t n = ext_.num_regions();
  size_t index = 0;
  for (size_t v : tuple) {
    LCDB_CHECK(v < n);
    index = index * n + v;
  }
  return index;
}

/// Builds the reachability bitmap of a TC/DTC operator (Definition 7.2):
/// the edge relation E = { (ū, v̄) : body(ū, v̄) } over m-tuples of regions,
/// closed reflexively and transitively. The paper's semantics admits the
/// length-one sequence Z_1 = X̄ = Ȳ, so the closure is reflexive.
///
/// For DTC the deterministic edge relation is used instead: ū -> v̄ only if
/// v̄ is the *unique* successor of ū.
///
/// The body has no free element variables and no region variables beyond
/// the bound 2m-tuple (type checker), so the matrix depends only on the
/// node and is cached.
const std::vector<std::vector<bool>>& Evaluator::ClosureMatrix(
    const FormulaNode& node) {
  auto cached = closure_cache_.find(&node);
  if (cached != closure_cache_.end()) return cached->second;

  // Resume fast path (core/resume.h): a prior interrupted run finished this
  // operator; reuse its matrix. Closures checkpoint at completed-matrix
  // granularity only — an interrupt mid-edge-build restarts the operator.
  if (ResumeCollector* resume = CurrentResumeCollectorOrNull()) {
    if (uint64_t site = resume->SiteKey(&node)) {
      if (const auto* done = resume->CompletedClosure(site)) {
        ++stats_.resume_sets_restored;
        return closure_cache_.emplace(&node, *done).first->second;
      }
    }
  }

  ++stats_.closures_computed;
  // Oracle decisions spent building the edge relation — the NLOGSPACE /
  // LOGSPACE results (Theorems 7.3/7.4) bound the closure, not this edge
  // construction, which is where all the LP work sits.
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t m = node.bound_vars.size() / 2;
  const size_t n = ext_.num_regions();
  size_t space = 1;
  for (size_t i = 0; i < m; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "TC tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "closure");

  // Enumerate all m-tuples once.
  std::vector<Tuple> tuples;
  tuples.reserve(space);
  Tuple tuple(m, 0);
  if (n > 0) {
    while (true) {
      tuples.push_back(tuple);
      size_t pos = m;
      bool advanced = false;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) {
          advanced = true;
          break;
        }
        tuple[pos] = 0;
      }
      if (!advanced) break;
    }
  }
  const size_t total = tuples.size();

  // Edge relation from the body.
  const FormulaNode& body = *node.children[0];
  RegionEnv env;
  SetEnv senv;
  std::vector<std::vector<bool>> edges(total, std::vector<bool>(total, false));
  for (size_t u = 0; u < total; ++u) {
    // Edge construction is the LP-heavy phase (total^2 body evaluations),
    // so it gets the per-row injection + cancellation point. An unwind
    // abandons only the local `edges` matrix; closure_cache_ is untouched.
    LCDB_FAILPOINT("closure.build");
    GovernorCheckpoint();
    for (size_t v = 0; v < total; ++v) {
      for (size_t i = 0; i < m; ++i) {
        env[node.bound_vars[i]] = tuples[u][i];
        env[node.bound_vars[m + i]] = tuples[v][i];
      }
      edges[u][v] = EvalBool(body, env, senv);
    }
  }

  if (node.kind == NodeKind::kDtc) {
    // Keep only unique successors.
    for (size_t u = 0; u < total; ++u) {
      size_t successors = 0;
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v]) ++successors;
      }
      if (successors != 1) {
        std::fill(edges[u].begin(), edges[u].end(), false);
      }
    }
  }

  // Reflexive-transitive closure by BFS from every source.
  std::vector<std::vector<bool>> closure(total,
                                         std::vector<bool>(total, false));
  for (size_t source = 0; source < total; ++source) {
    std::deque<size_t> queue = {source};
    closure[source][source] = true;  // length-one sequence
    while (!queue.empty()) {
      size_t u = queue.front();
      queue.pop_front();
      for (size_t v = 0; v < total; ++v) {
        if (edges[u][v] && !closure[source][v]) {
          closure[source][v] = true;
          queue.push_back(v);
        }
      }
    }
  }
  stats_.closure_feasibility_queries +=
      CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  return closure_cache_.emplace(&node, std::move(closure)).first->second;
}

}  // namespace lcdb
