#ifndef LCDB_CORE_RESUME_H_
#define LCDB_CORE_RESUME_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <set>
#include <vector>

namespace lcdb {

struct FormulaNode;
struct PlanNode;

/// Checkpoint/resume for fixpoint evaluation (ISSUE 8).
///
/// The paper's RegLFP/RegPFP semantics make long Kleene iterations the
/// dominant evaluation cost, and a tripped budget used to discard every
/// completed stage: QueryInterrupt unwinds past the fixpoint caches, which
/// only ever hold complete entries. The resume layer preserves that paid-for
/// work across the interrupt instead. While an Evaluate call runs, a
/// thread-local ResumeCollector (the same ambient-install idiom as
/// ScopedKernel / ScopedGovernor / ScopedTracer) observes the three fixpoint
/// engines — the legacy walk (core/fixpoint.cc), the plan-tree executor
/// (plan/executor.cc) and the bytecode VM (plan/vm.cc). When an interrupt
/// unwinds, each engine deposits:
///
///  * every *completed* fixpoint set and closure matrix (harvested from the
///    engine's per-query cache during the unwind), and
///  * for the fixpoint loops the interrupt crossed, the *in-progress*
///    approximation: the last fully computed Kleene stage, its iteration
///    counter, and — for PFP — the cycle detector's per-stage hash history.
///
/// The evaluator packages the collected ResumeState behind an opaque token
/// carried on the returned Status; a follow-up Evaluate(query, token) with a
/// fresh budget re-installs the state and continues from the saved stage.
/// Correctness rests on Definition 5.1: free(body) = {M, X̄}, so a fixpoint
/// (or closure) set is a pure function of its operator — independent of the
/// outer environment — and a saved approximation is valid wherever the same
/// operator is re-encountered.
///
/// Sites are keyed by deterministic pre-order ordinals over the fixpoint /
/// closure operators of the executed artifact (the optimized plan for the
/// plan backends, the AST for the legacy walk). Compilation and optimization
/// are deterministic, so re-evaluating the same query under the same options
/// assigns identical keys; the tree executor and the VM execute the same
/// plan, so a state captured under one is resumable under the other.
struct FixpointResumePoint {
  /// The last fully computed Kleene stage (stages are never partial: an
  /// interrupt mid-stage discards only that stage's tuples, and the stage
  /// function is pure, so recomputing it is deterministic).
  std::set<std::vector<size_t>> approximation;
  /// Number of fully completed stage transitions; the resumed loop continues
  /// at this iteration index.
  size_t iteration = 0;
  /// PFP cycle-detector history: one stable hash per completed stage,
  /// excluding the hash of `approximation` itself (the resumed loop's first
  /// SeenBefore call re-records it).
  std::vector<uint64_t> pfp_hashes;
};

/// Snapshot of recoverable evaluation progress, keyed by site ordinal.
struct ResumeState {
  std::map<uint64_t, std::set<std::vector<size_t>>> completed_fixpoints;
  std::map<uint64_t, std::vector<std::vector<bool>>> completed_closures;
  std::map<uint64_t, FixpointResumePoint> in_progress;

  bool empty() const {
    return completed_fixpoints.empty() && completed_closures.empty() &&
           in_progress.empty();
  }
};

/// Per-Evaluate collector the fixpoint engines talk to. Owned by the
/// evaluator for the duration of one Evaluate call and published through
/// ScopedResumeCollector; a null CurrentResumeCollectorOrNull() (capture
/// disabled, or code running outside Evaluate) degrades every hook to a
/// no-op.
class ResumeCollector {
 public:
  using TupleSet = std::set<std::vector<size_t>>;
  using BoolMatrix = std::vector<std::vector<bool>>;

  ResumeCollector() = default;
  explicit ResumeCollector(ResumeState seed) : state_(std::move(seed)) {}

  /// Site registration: assigns the next pre-order ordinal (1-based; 0 is
  /// the "unregistered" sentinel) to a fixpoint/closure operator node.
  void RegisterSite(const void* node) {
    site_keys_.emplace(node, site_keys_.size() + 1);
  }
  /// The ordinal assigned to `node`, or 0 when it was never registered.
  uint64_t SiteKey(const void* node) const {
    auto it = site_keys_.find(node);
    return it == site_keys_.end() ? 0 : it->second;
  }

  // --- Reuse (consulted at fixpoint/closure entry) ---

  const TupleSet* CompletedFixpoint(uint64_t site) const {
    auto it = state_.completed_fixpoints.find(site);
    return it == state_.completed_fixpoints.end() ? nullptr : &it->second;
  }
  const BoolMatrix* CompletedClosure(uint64_t site) const {
    auto it = state_.completed_closures.find(site);
    return it == state_.completed_closures.end() ? nullptr : &it->second;
  }
  /// Moves the in-progress point for `site` into `*point` and erases it
  /// (each checkpoint is consumed exactly once; the loop that consumed it
  /// either completes — landing in completed_fixpoints on the next capture —
  /// or re-checkpoints a fresher approximation).
  bool TakeInProgress(uint64_t site, FixpointResumePoint* point) {
    auto it = state_.in_progress.find(site);
    if (it == state_.in_progress.end()) return false;
    *point = std::move(it->second);
    state_.in_progress.erase(it);
    return true;
  }

  // --- Capture (called during an interrupt unwind) ---

  void CaptureInProgress(uint64_t site, TupleSet approximation,
                         size_t iteration, std::vector<uint64_t> pfp_hashes) {
    FixpointResumePoint& point = state_.in_progress[site];
    point.approximation = std::move(approximation);
    point.iteration = iteration;
    point.pfp_hashes = std::move(pfp_hashes);
  }
  void CaptureCompletedFixpoint(uint64_t site, const TupleSet& set) {
    state_.completed_fixpoints[site] = set;
  }
  void CaptureCompletedClosure(uint64_t site, const BoolMatrix& closure) {
    state_.completed_closures[site] = closure;
  }

  /// Anything worth a resume token?
  bool has_progress() const { return !state_.empty(); }
  ResumeState TakeState() { return std::move(state_); }

 private:
  ResumeState state_;
  std::map<const void*, uint64_t> site_keys_;
};

/// The collector the current thread's fixpoint engines report to, or null.
ResumeCollector* CurrentResumeCollectorOrNull();

/// RAII install of `collector` as the thread's current resume collector.
class ScopedResumeCollector {
 public:
  explicit ScopedResumeCollector(ResumeCollector& collector);
  ~ScopedResumeCollector();

  ScopedResumeCollector(const ScopedResumeCollector&) = delete;
  ScopedResumeCollector& operator=(const ScopedResumeCollector&) = delete;

 private:
  ResumeCollector* previous_;
};

/// Pre-order registration of every fixpoint (kLfp/kIfp/kPfp) and closure
/// (kTc/kDtc) operator in an AST — the legacy walk's site numbering.
void RegisterResumeSites(const FormulaNode& root, ResumeCollector& collector);

/// Pre-order registration of every kFixpointMember / kClosureMember node in
/// a plan — shared by the tree executor and the VM (both run the same plan
/// nodes, so a checkpoint taken under one backend resumes under the other).
/// CSE-shared subtrees are visited once.
void RegisterResumeSites(const PlanNode& root, ResumeCollector& collector);

}  // namespace lcdb

#endif  // LCDB_CORE_RESUME_H_
