#include "core/evaluator.h"

#include <algorithm>
#include <optional>

#include "analysis/analyzer.h"
#include "analysis/bytecode_verify.h"
#include "analysis/plan_verify.h"
#include "constraint/canonical.h"
#include "analysis/plan_cost.h"
#include "core/parser.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/obslog.h"
#include "engine/trace.h"
#include "geometry/convex_closure.h"
#include "plan/bytecode.h"
#include "plan/executor.h"
#include "plan/optimizer.h"
#include "plan/planner.h"
#include "plan/vm.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

Evaluator::Evaluator(const RegionExtension& extension)
    : Evaluator(extension, Options()) {}

Evaluator::Evaluator(const RegionExtension& extension, Options options)
    : ext_(extension), options_(options) {}

namespace {

/// Pre-checks that every fixed-point and TC operator's region-tuple space
/// n^k stays within the configured cap, so evaluation cannot run away on
/// adversarial arities (returned as a Status instead of aborting later).
Status CheckTupleSpaces(const FormulaNode& node, size_t num_regions,
                        size_t max_tuple_space) {
  size_t k = 0;
  switch (node.kind) {
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp:
      k = node.bound_vars.size();
      break;
    case NodeKind::kTc:
    case NodeKind::kDtc:
      // The closure matrix is quadratic in the m-tuple space.
      k = node.bound_vars.size();
      break;
    default:
      break;
  }
  if (k > 0 && num_regions > 1) {
    size_t space = 1;
    for (size_t i = 0; i < k; ++i) {
      if (space > max_tuple_space / num_regions) {
        return Status::ResourceExhausted(
            "operator tuple space exceeds max_tuple_space (" +
            std::to_string(max_tuple_space) + ") in: " +
            node.ToString().substr(0, 120));
      }
      space *= num_regions;
    }
  }
  for (const auto& child : node.children) {
    LCDB_RETURN_IF_ERROR(
        CheckTupleSpaces(*child, num_regions, max_tuple_space));
  }
  return Status::Ok();
}

/// Rejection shared by Evaluate and ExplainBytecode: bytecode lowering is
/// defined over *optimized* plans only (register allocation and the memo
/// descriptors assume the optimizer's annotations), so the combination is
/// an argument error, never a silent fallback to the tree walk.
Status BytecodeNeedsOptimizer() {
  return Status::InvalidArgument(
      "use_bytecode requires an optimized plan: bytecode lowering is "
      "defined over optimized plans only — drop --no-optimize or --vm");
}

}  // namespace

void Evaluator::SettleAmbient(const KernelStats& kernel_before,
                              TraceSpan* span) {
  const KernelStats delta = CurrentKernel().stats() - kernel_before;
  stats_.kernel += delta;
  if (span != nullptr) {
    // Lemma-database share of this query's kernel work; zero counters are
    // suppressed so the LRU / memoize-off configurations keep their span
    // shapes unchanged.
    if (delta.lemma_hits > 0) span->Counter("lemma.hits", delta.lemma_hits);
    const uint64_t lemma_evictions = delta.lemma_evictions_core +
                                     delta.lemma_evictions_frequent +
                                     delta.lemma_evictions_transient;
    if (lemma_evictions > 0) span->Counter("lemma.evictions", lemma_evictions);
    if (delta.lemma_invalidations > 0) {
      span->Counter("lemma.invalidations", delta.lemma_invalidations);
    }
  }
  if (QueryGovernor* g = CurrentGovernorOrNull()) stats_.governor = g->stats();
}

Result<QueryAnswer> Evaluator::Evaluate(const FormulaNode& query) {
  return EvaluateImpl(query, nullptr, nullptr);
}

Result<QueryAnswer> Evaluator::Evaluate(const FormulaNode& query,
                                        uint64_t resume_token) {
  return EvaluateImpl(query, nullptr, nullptr, resume_token);
}

uint64_t Evaluator::ResumeFingerprint(const FormulaNode& query) const {
  // Site ordinals are pre-order positions in the executed artifact, which
  // is determined by the query text plus the backend-selection options:
  // plan vs legacy walk (use_bytecode forces the plan path) and optimized
  // vs raw plan. memoize and the tree-vs-VM choice do not move sites — both
  // plan backends execute the same plan nodes and share its numbering, so a
  // token survives a VM -> tree-walk degradation step.
  std::string key = query.ToString();
  key += (options_.use_plan || options_.use_bytecode) ? "|plan" : "|walk";
  key += options_.optimize ? "|opt" : "|raw";
  return StableHash64(key);
}

Result<QueryAnswer> Evaluator::EvaluateImpl(const FormulaNode& query,
                                            PlanProfile* profile,
                                            CompiledPlan* plan_out,
                                            uint64_t resume_token) {
  if (options_.use_bytecode && !options_.optimize) {
    return BytecodeNeedsOptimizer();
  }
  // Flight-recorder instrumentation (engine/obslog.h): per-phase clocks are
  // read only when a recorder is installed, so the uninstrumented path
  // keeps the one-relaxed-load contract of the tracer/failpoint sites.
  QueryFlightRecorder* recorder = ActiveFlightRecorderOrNull();
  QueryRecord record;
  const uint64_t record_start_ns = recorder != nullptr ? ObsNowNs() : 0;
  QueryTracer* ambient_tracer = ActiveTracerOrNull();
  const uint64_t tracer_dropped_before =
      ambient_tracer != nullptr ? ambient_tracer->spans_dropped() : 0;
  if (recorder != nullptr) {
    record.query_hash =
        StableHash64(source_.empty() ? query.ToString() : source_);
    record.backend =
        options_.use_bytecode
            ? "vm"
            : ((options_.use_plan || plan_out != nullptr) ? "tree"
                                                          : "legacy");
  }
  // Rejections before the kernel window carry no kernel/governor data.
  auto append_early_failure = [&](const Status& status) {
    if (recorder == nullptr) return;
    record.total_ns = ObsNowNs() - record_start_ns;
    record.outcome = FailureClassName(ClassifyFailure(status));
    record.status_code = StatusCodeName(status.code());
    recorder->Append(std::move(record));
  };
  TraceSpan evaluate_span("evaluate");
  const uint64_t typecheck_start_ns = recorder != nullptr ? ObsNowNs() : 0;
  Result<TypeInfo> checked = [&] {
    TraceSpan typecheck_span("typecheck");
    return TypeCheck(query, ext_.database());
  }();
  if (recorder != nullptr) {
    record.typecheck_ns = ObsNowNs() - typecheck_start_ns;
  }
  if (!checked.ok()) {
    append_early_failure(checked.status());
    return checked.status();
  }
  TypeInfo info = std::move(checked).value();
  if (Status tuple_spaces = CheckTupleSpaces(query, ext_.num_regions(),
                                             options_.max_tuple_space);
      !tuple_spaces.ok()) {
    append_early_failure(tuple_spaces);
    return tuple_spaces;
  }
  info_ = &info;
  num_columns_ = info.all_element_vars.size();
  // Per-query caches depend on node identity; clear between queries. The
  // per-operator timings are per-query too: without the reset repeated
  // Evaluate calls silently accumulate into one blurred total.
  memo_.clear();
  bool_memo_.clear();
  fixpoint_cache_.clear();
  closure_cache_.clear();
  stats_.op_timings.clear();
  stats_.vm = VmStats();
  stats_.verify = VerifyStats();
  stats_.plan_cost = PlanCostStats();

  // Checkpoint/resume plumbing (core/resume.h). A nonzero token re-installs
  // the ResumeState a prior interrupted run stashed; the collector is
  // published thread-locally so all three fixpoint engines reach it without
  // signature changes. Tokens are single-use: the stored state is consumed
  // here whether or not the continuation succeeds.
  std::optional<ResumeCollector> resume_collector;
  std::optional<ScopedResumeCollector> scoped_resume;
  if (options_.capture_resume) {
    ResumeState resume_seed;
    if (resume_token != 0) {
      auto stored = resume_states_.find(resume_token);
      if (stored == resume_states_.end()) {
        Status unknown =
            Status::InvalidArgument("unknown or expired resume token");
        append_early_failure(unknown);
        return unknown;
      }
      const bool matches =
          stored->second.fingerprint == ResumeFingerprint(query);
      if (matches) resume_seed = std::move(stored->second.state);
      resume_states_.erase(stored);
      if (!matches) {
        Status mismatch = Status::InvalidArgument(
            "resume token does not match this query/backend");
        append_early_failure(mismatch);
        return mismatch;
      }
    }
    resume_collector.emplace(std::move(resume_seed));
    scoped_resume.emplace(*resume_collector);
  } else if (resume_token != 0) {
    Status uncapturable = Status::InvalidArgument(
        "resume token passed but Options::capture_resume is off");
    append_early_failure(uncapturable);
    return uncapturable;
  }

  // Attribute the kernel's oracle work to this evaluation: everything the
  // pipeline spends (DNF algebra, constant folding, QE, region tests) lands
  // between these two snapshots of the ambient kernel. Plan compilation
  // happens inside the window because the optimizer's folding pass issues
  // feasibility queries of its own.
  // Bind the lemma store's occurrence index to this extension's database
  // representation (cheap no-op when it is already bound or under the
  // LRU/memoize-off backends), so lemmas learned below carry per-disjunct
  // occurrence lists for targeted invalidation.
  CurrentKernel().BindLemmaOccurrences(ext_.database().representation());
  const KernelStats kernel_before = CurrentKernel().stats();
  stats_.governor = GovernorStats();
  // Bookkeeping shared by the success and interrupt exits. Every cache the
  // unwind can cross inserts complete entries only, and the per-query memos
  // above are cleared on entry, so a tripped query leaves the evaluator
  // ready for the next one with no residue.
  auto settle = [&] {
    SettleAmbient(kernel_before, &evaluate_span);
    if (ambient_tracer != nullptr) {
      // Ring evictions during this query: span-level attribution is now
      // incomplete, which the trace.spans_dropped counter makes visible.
      stats_.trace_spans_dropped +=
          ambient_tracer->spans_dropped() - tracer_dropped_before;
    }
    info_ = nullptr;
  };
  // Settled-exit counterpart of append_early_failure: fills the governor
  // and kernel columns from the attempt's final stats and appends. Called
  // with Status::Ok() on the success path.
  auto finish_record = [&](const Status& status) {
    if (recorder == nullptr) return;
    record.total_ns = ObsNowNs() - record_start_ns;
    record.governor_checkpoints = stats_.governor.checkpoints;
    record.governor_budget_trips = stats_.governor.budget_trips;
    record.tripped_budget = stats_.governor.tripped_budget;
    const KernelStats kernel_delta = CurrentKernel().stats() - kernel_before;
    record.kernel_cache_hits =
        kernel_delta.cache_hits + kernel_delta.implication_cache_hits;
    record.kernel_cache_misses =
        kernel_delta.cache_misses + kernel_delta.implication_cache_misses;
    record.lemma_hits = kernel_delta.lemma_hits;
    record.lemma_misses = kernel_delta.lemma_misses;
    record.outcome = FailureClassName(ClassifyFailure(status));
    record.status_code = StatusCodeName(status.code());
    record.resume_token = status.resume_token();
    recorder->Append(std::move(record));
  };
  DnfFormula result = DnfFormula::False(num_columns_);
  try {
    // Mandatory static analysis between typecheck and planning. Inside the
    // kernel window and the try block: guard classification consults the
    // ambient oracle, so its work counts against this query's budgets, and
    // every truth it establishes is memoized for the optimizer's folding
    // pass downstream. Hard diagnostics turn into a clean rejection before
    // any plan is built.
    {
      TraceSpan analyze_span("analyze");
      const uint64_t analyze_start_ns =
          recorder != nullptr ? ObsNowNs() : 0;
      AnalyzerOptions analyzer_options;
      analyzer_options.num_regions = ext_.num_regions();
      analyzer_options.max_tuple_space = options_.max_tuple_space;
      AnalysisResult analysis = AnalyzeQuery(query, info, analyzer_options);
      stats_.analysis = analysis.stats;
      if (recorder != nullptr) {
        record.analyze_ns = ObsNowNs() - analyze_start_ns;
      }
      if (!analysis.diagnostics.empty()) {
        analyze_span.Counter("diagnostics", analysis.diagnostics.size());
      }
      if (analysis.has_errors()) {
        settle();
        Status rejected = AnalysisErrorStatus(analysis, source_);
        finish_record(rejected);
        return rejected;
      }
    }
    // EXPLAIN ANALYZE's profile keys are plan nodes, so a plan_out request
    // forces the plan pipeline even under use_plan=false; the bytecode VM
    // only exists behind it.
    if (options_.use_plan || plan_out != nullptr || options_.use_bytecode) {
      CompiledPlan plan;
      {
        TraceSpan build_span("plan.build");
        const uint64_t build_start_ns =
            recorder != nullptr ? ObsNowNs() : 0;
        plan = BuildPlan(query, info, ext_);
        if (recorder != nullptr) {
          record.plan_build_ns = ObsNowNs() - build_start_ns;
        }
      }
      const uint64_t optimize_start_ns =
          recorder != nullptr ? ObsNowNs() : 0;
      if (options_.optimize) {
        {
          TraceSpan optimize_span("plan.optimize");
          stats_.plan = PlanPassStats();
          OptimizePlan(&plan, &stats_.plan);
          optimize_span.Counter("plan_nodes", stats_.plan.plan_nodes);
        }
        // Tier-2 pass over the optimized plan: cost estimates feed the
        // plan.cost.* metrics family (and the EXPLAIN cost column). Pure
        // plan-shape arithmetic — no kernel calls — but traced so its
        // share of compile time is visible.
        TraceSpan cost_span("plan.cost");
        PlanCostOptions cost_options;
        cost_options.max_tuple_space = options_.max_tuple_space;
        stats_.plan_cost = AnalyzePlanCost(plan, cost_options).stats;
        cost_span.Counter("est_bigint_ops", stats_.plan_cost.total_bigint_ops);
      } else {
        stats_.plan = PlanPassStats();
        stats_.plan.plan_nodes = CountPlanNodes(*plan.root);
      }
      // Tier-3 gate: no plan reaches an executor unverified. A violation
      // here is an optimizer/planner bug surfacing as a clean LCDB012
      // kInternal instead of undefined executor behaviour downstream.
      if (options_.verify) {
        TraceSpan verify_span("plan.verify");
        Status verified = VerifyPlan(
            plan, options_.optimize ? "after plan.optimize" : "after plan.build",
            &stats_.verify);
        if (!verified.ok()) {
          settle();
          finish_record(verified);
          return verified;
        }
        verify_span.Counter("plan_nodes", stats_.verify.plan_nodes_verified);
      }
      if (recorder != nullptr) {
        // The optimize phase covers the pass pipeline plus the tier-2 cost
        // pass; the plan fingerprint hashes the final printed plan, so two
        // records agree exactly when their executions ran the same plan.
        record.plan_optimize_ns = ObsNowNs() - optimize_start_ns;
        record.plan_fingerprint = StableHash64(PrintPlan(plan));
      }
      if (plan_out != nullptr) *plan_out = plan;
      if (resume_collector.has_value()) {
        RegisterResumeSites(*plan.root, *resume_collector);
      }
      TraceSpan execute_span("plan.execute");
      const uint64_t execute_start_ns =
          recorder != nullptr ? ObsNowNs() : 0;
      result = ExecutePlan(plan, ext_, options_, &stats_, profile);
      if (recorder != nullptr) {
        record.execute_ns = ObsNowNs() - execute_start_ns;
      }
      execute_span.Counter("rows", result.disjuncts().size());
    } else {
      if (resume_collector.has_value()) {
        RegisterResumeSites(query, *resume_collector);
      }
      TraceSpan walk_span("legacy.walk");
      const uint64_t walk_start_ns = recorder != nullptr ? ObsNowNs() : 0;
      RegionEnv renv;
      SetEnv senv;
      result = Eval(query, renv, senv);
      if (recorder != nullptr) {
        record.execute_ns = ObsNowNs() - walk_start_ns;
      }
      walk_span.Counter("rows", result.disjuncts().size());
    }
  } catch (const QueryInterrupt& interrupt) {
    // Recovery boundary: budget trips, cancellation and injected faults all
    // surface here as the Status naming what went wrong.
    settle();
    Status status = interrupt.status();
    if (resume_collector.has_value() && status.IsResourceFailure()) {
      // The legacy walk's fixpoint/closure caches are evaluator members and
      // are still intact here (cleared at Evaluate *entry*, complete entries
      // only); harvest them. The plan backends' caches are stack-local, so
      // those engines harvest inside their own unwind instead. Anything
      // collected becomes a single-use token on the returned Status.
      for (const auto& entry : fixpoint_cache_) {
        if (uint64_t site = resume_collector->SiteKey(entry.first)) {
          resume_collector->CaptureCompletedFixpoint(site, entry.second);
        }
      }
      for (const auto& entry : closure_cache_) {
        if (uint64_t site = resume_collector->SiteKey(entry.first)) {
          resume_collector->CaptureCompletedClosure(site, entry.second);
        }
      }
      if (resume_collector->has_progress()) {
        const uint64_t token = ++next_resume_token_;
        resume_states_[token] = StoredResumeState{
            ResumeFingerprint(query), resume_collector->TakeState()};
        while (resume_states_.size() > kMaxStoredResumeStates) {
          resume_states_.erase(resume_states_.begin());
        }
        status.set_resume_token(token);
      }
    }
    finish_record(status);
    return status;
  }
  settle();

  // Keep only the free-variable columns (bound ones were eliminated; the
  // remaining order matches free_element_order by construction).
  std::set<std::string> free(info.free_element_order.begin(),
                             info.free_element_order.end());
  for (size_t col = info.all_element_vars.size(); col-- > 0;) {
    if (free.count(info.all_element_vars[col])) continue;
    if (VariableOccurs(result, col)) {
      Status leak = Status::Internal("bound variable '" +
                                     info.all_element_vars[col] +
                                     "' survived elimination");
      finish_record(leak);
      return leak;
    }
    result = DropVariable(result, col);
  }
  QueryAnswer answer{std::move(result), info.free_element_order};
  finish_record(Status::Ok());
  return answer;
}

Result<std::string> Evaluator::Explain(const FormulaNode& query) {
  TraceSpan explain_span("explain");
  Result<TypeInfo> checked = [&] {
    TraceSpan typecheck_span("typecheck");
    return TypeCheck(query, ext_.database());
  }();
  if (!checked.ok()) return checked.status();
  TypeInfo info = std::move(checked).value();
  LCDB_RETURN_IF_ERROR(CheckTupleSpaces(query, ext_.num_regions(),
                                        options_.max_tuple_space));
  // Compilation spends kernel work (the folding pass asks feasibility
  // questions), so Explain settles the ambient counters exactly as Evaluate
  // does — on the success and the interrupt path alike.
  const KernelStats kernel_before = CurrentKernel().stats();
  stats_.governor = GovernorStats();
  try {
    // Explain runs the same mandatory analysis phase as Evaluate, so a
    // query Evaluate would reject never gets a plan printed for it.
    {
      TraceSpan analyze_span("analyze");
      AnalyzerOptions analyzer_options;
      analyzer_options.num_regions = ext_.num_regions();
      analyzer_options.max_tuple_space = options_.max_tuple_space;
      AnalysisResult analysis = AnalyzeQuery(query, info, analyzer_options);
      stats_.analysis = analysis.stats;
      if (!analysis.diagnostics.empty()) {
        analyze_span.Counter("diagnostics", analysis.diagnostics.size());
      }
      if (analysis.has_errors()) {
        SettleAmbient(kernel_before);
        return AnalysisErrorStatus(analysis, source_);
      }
    }
    CompiledPlan plan;
    {
      TraceSpan build_span("plan.build");
      plan = BuildPlan(query, info, ext_);
    }
    stats_.plan = PlanPassStats();
    stats_.plan_cost = PlanCostStats();
    stats_.verify = VerifyStats();
    std::string out;
    if (options_.optimize) {
      {
        TraceSpan optimize_span("plan.optimize");
        OptimizePlan(&plan, &stats_.plan);
      }
      // Tier-2 estimates annotate every node line of the explain output
      // and surface the pass's diagnostics (LCDB011 dead caches, the
      // cost-refined LCDB004 budget warning) under the plan.
      TraceSpan cost_span("plan.cost");
      PlanCostOptions cost_options;
      cost_options.max_tuple_space = options_.max_tuple_space;
      PlanCostReport cost = AnalyzePlanCost(plan, cost_options);
      stats_.plan_cost = cost.stats;
      // Same tier-3 gate as Evaluate: never print a plan the executor
      // would refuse.
      if (options_.verify) {
        TraceSpan verify_span("plan.verify");
        Status verified =
            VerifyPlan(plan, "after plan.optimize", &stats_.verify);
        if (!verified.ok()) {
          SettleAmbient(kernel_before);
          return verified;
        }
      }
      out = PrintPlan(plan, nullptr, &cost.costs);
      out += "-- " + stats_.plan.ToString() + "\n";
      out += "-- cost: nodes=" + std::to_string(cost.stats.nodes) +
             " est_bigint_ops=" + std::to_string(cost.stats.total_bigint_ops) +
             " est_answer_rows=" + std::to_string(cost.stats.est_answer_rows) +
             " dead_caches=" + std::to_string(cost.stats.dead_caches) + "\n";
      if (!cost.diagnostics.empty()) {
        out += RenderDiagnostics(cost.diagnostics, source_);
      }
    } else {
      if (options_.verify) {
        TraceSpan verify_span("plan.verify");
        Status verified = VerifyPlan(plan, "after plan.build", &stats_.verify);
        if (!verified.ok()) {
          SettleAmbient(kernel_before);
          return verified;
        }
      }
      out = PrintPlan(plan);
      out += "-- " + stats_.plan.ToString() + "\n";
    }
    SettleAmbient(kernel_before);
    return out;
  } catch (const QueryInterrupt& interrupt) {
    // A budget or injected fault can fire during Explain too.
    SettleAmbient(kernel_before);
    return interrupt.status();
  }
}

Result<std::string> Evaluator::ExplainBytecode(const FormulaNode& query) {
  if (!options_.optimize) return BytecodeNeedsOptimizer();
  TraceSpan explain_span("explain.bytecode");
  Result<TypeInfo> checked = [&] {
    TraceSpan typecheck_span("typecheck");
    return TypeCheck(query, ext_.database());
  }();
  if (!checked.ok()) return checked.status();
  TypeInfo info = std::move(checked).value();
  LCDB_RETURN_IF_ERROR(CheckTupleSpaces(query, ext_.num_regions(),
                                        options_.max_tuple_space));
  const KernelStats kernel_before = CurrentKernel().stats();
  stats_.governor = GovernorStats();
  try {
    // Same mandatory analysis gate as Evaluate/Explain: a rejected query
    // never gets a program listing.
    {
      TraceSpan analyze_span("analyze");
      AnalyzerOptions analyzer_options;
      analyzer_options.num_regions = ext_.num_regions();
      analyzer_options.max_tuple_space = options_.max_tuple_space;
      AnalysisResult analysis = AnalyzeQuery(query, info, analyzer_options);
      stats_.analysis = analysis.stats;
      if (analysis.has_errors()) {
        SettleAmbient(kernel_before);
        return AnalysisErrorStatus(analysis, source_);
      }
    }
    CompiledPlan plan;
    {
      TraceSpan build_span("plan.build");
      plan = BuildPlan(query, info, ext_);
    }
    stats_.plan = PlanPassStats();
    stats_.verify = VerifyStats();
    {
      TraceSpan optimize_span("plan.optimize");
      OptimizePlan(&plan, &stats_.plan);
    }
    if (options_.verify) {
      TraceSpan verify_span("plan.verify");
      Status verified =
          VerifyPlan(plan, "after plan.optimize", &stats_.verify);
      if (!verified.ok()) {
        SettleAmbient(kernel_before);
        return verified;
      }
    }
    BytecodeProgram program = [&] {
      TraceSpan lower_span("plan.lower");
      return CompileToBytecode(plan);
    }();
    if (options_.verify) {
      // The listing must stay byte-identical to DisassembleBytecode (the
      // golden test pins it), so verification only gates — no footer.
      TraceSpan verify_span("bytecode.verify");
      BytecodeVerifyResult verdict = VerifyBytecode(program);
      AccumulateVerifyStats(verdict, &stats_.verify);
      if (!verdict.status.ok()) {
        SettleAmbient(kernel_before);
        return verdict.status;
      }
    }
    stats_.vm = VmStats();
    stats_.vm.procs = program.procs.size();
    stats_.vm.code_instructions = program.TotalInstructions();
    SettleAmbient(kernel_before);
    return DisassembleBytecode(program);
  } catch (const QueryInterrupt& interrupt) {
    SettleAmbient(kernel_before);
    return interrupt.status();
  }
}

Result<std::string> Evaluator::ExplainAnalyze(const FormulaNode& query) {
  PlanProfile profile;
  CompiledPlan plan;
  // stats_.kernel is cumulative across queries; diff it around the call to
  // report only this execution in the footer.
  const KernelStats kernel_cumulative_before = stats_.kernel;
  LCDB_ASSIGN_OR_RETURN(QueryAnswer answer,
                        EvaluateImpl(query, &profile, &plan));
  std::string out = PrintPlan(plan, &profile);
  out += "-- " + stats_.plan.ToString() + "\n";
  out += "-- kernel: " + (stats_.kernel - kernel_cumulative_before).ToString() +
         "\n";
  out += "-- governor: " + stats_.governor.ToString() + "\n";
  out += "-- answer: " +
         std::to_string(answer.formula.disjuncts().size()) + " disjunct(s)";
  if (!answer.free_vars.empty()) {
    out += " over (";
    for (size_t i = 0; i < answer.free_vars.size(); ++i) {
      if (i > 0) out += ",";
      out += answer.free_vars[i];
    }
    out += ")";
  }
  out += "\n";
  return out;
}

Result<bool> Evaluator::EvaluateSentence(const FormulaNode& query,
                                         uint64_t resume_token) {
  LCDB_ASSIGN_OR_RETURN(QueryAnswer answer, Evaluate(query, resume_token));
  if (!answer.free_vars.empty()) {
    return Status::InvalidArgument("sentence has free element variables");
  }
  const KernelStats kernel_before = CurrentKernel().stats();
  try {
    // The emptiness test asks the kernel, so it is itself interruptible.
    // Settling mirrors Evaluate on both exits — in particular the governor
    // counters refresh on success too, so checkpoints spent on the
    // emptiness test are not dropped from stats().
    const bool truth = !answer.formula.IsEmpty();
    SettleAmbient(kernel_before);
    return truth;
  } catch (const QueryInterrupt& interrupt) {
    SettleAmbient(kernel_before);
    return interrupt.status();
  }
}

size_t Evaluator::Column(const std::string& name) const {
  for (size_t i = 0; i < info_->all_element_vars.size(); ++i) {
    if (info_->all_element_vars[i] == name) return i;
  }
  LCDB_CHECK_MSG(false, "unknown element variable");
  return 0;
}

std::vector<AffineExpr> Evaluator::TermSubstitution(
    const std::vector<ElementTerm>& terms) const {
  std::vector<AffineExpr> map;
  map.reserve(terms.size());
  for (const ElementTerm& t : terms) {
    AffineExpr e;
    e.coeffs.assign(num_columns_, Rational(0));
    for (const auto& [name, coeff] : t.coeffs) {
      e.coeffs[Column(name)] = coeff;
    }
    e.constant = t.constant;
    map.push_back(std::move(e));
  }
  return map;
}

bool Evaluator::MemoKey(const FormulaNode& node, const RegionEnv& renv,
                        const SetEnv& senv, Tuple* key) const {
  const FreeVars& fv = info_->of(node);
  // Set-dependent results are only reusable within one fixpoint stage; with
  // several free region variables the key space matches the tuple space and
  // every entry would be written once and never read. Cache only narrow
  // keys there (e.g. the hoisted "Z was visited" test of the river query).
  if (!fv.set_vars.empty() && fv.region.size() > 1) return false;
  key->clear();
  for (const std::string& r : fv.region) {  // std::set: name-sorted
    auto it = renv.find(r);
    LCDB_CHECK(it != renv.end());
    key->push_back(it->second);
  }
  // Set-dependent results are cached per fixpoint *stage* via the binding's
  // version stamp.
  for (const std::string& m : fv.set_vars) {
    key->push_back(senv.at(m).version);
  }
  return true;
}

bool Evaluator::EvalRegionAtom(const FormulaNode& node, RegionEnv& renv,
                               SetEnv& senv) {
  auto region = [&](size_t i) { return renv.at(node.region_args[i]); };
  switch (node.kind) {
    case NodeKind::kAdjacent:
      return ext_.Adjacent(region(0), region(1));
    case NodeKind::kRegionEq:
      return region(0) == region(1);
    case NodeKind::kSubsetS:
      return ext_.RegionSubsetOfS(region(0));
    case NodeKind::kIntersectsS:
      return ext_.RegionIntersectsS(region(0));
    case NodeKind::kDimAtom:
      return ext_.RegionDim(region(0)) == node.dim_value;
    case NodeKind::kBoundedAtom:
      return ext_.RegionBounded(region(0));
    case NodeKind::kSetAtom: {
      const TupleSet* set = senv.at(node.set_var).tuples;
      Tuple tuple;
      tuple.reserve(node.region_args.size());
      for (const std::string& r : node.region_args) tuple.push_back(renv.at(r));
      return set->count(tuple) > 0;
    }
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp: {
      const TupleSet& fp = FixpointSet(node);
      Tuple tuple;
      tuple.reserve(node.region_args.size());
      for (const std::string& r : node.region_args) tuple.push_back(renv.at(r));
      return fp.count(tuple) > 0;
    }
    case NodeKind::kTc:
    case NodeKind::kDtc: {
      const auto& closure = ClosureMatrix(node);
      Tuple from, to;
      for (const std::string& r : node.region_args) from.push_back(renv.at(r));
      for (const std::string& r : node.region_args2) to.push_back(renv.at(r));
      return closure[TupleIndex(from)][TupleIndex(to)];
    }
    case NodeKind::kRbit:
      return EvalRbit(node, renv, senv);
    default:
      LCDB_CHECK_MSG(false, "not a region atom");
      return false;
  }
}

DnfFormula Evaluator::Eval(const FormulaNode& node, RegionEnv& renv,
                           SetEnv& senv) {
  // Cancellation point per node of the legacy walk — in particular one per
  // region-quantifier expansion step, the walk's widest loops.
  GovernorCheckpoint();
  ++stats_.node_evaluations;
  Tuple key;
  const bool cacheable = options_.memoize && info_->WorthCaching(node) &&
                         MemoKey(node, renv, senv, &key);
  if (cacheable) {
    auto& per_node = memo_[&node];
    auto it = per_node.find(key);
    if (it != per_node.end()) {
      ++stats_.memo_hits;
      return it->second;
    }
  }
  DnfFormula result = EvalUncached(node, renv, senv);
  if (cacheable) memo_[&node].emplace(std::move(key), result);
  return result;
}

DnfFormula Evaluator::EvalUncached(const FormulaNode& node, RegionEnv& renv,
                                   SetEnv& senv) {
  const size_t m = num_columns_;
  switch (node.kind) {
    case NodeKind::kTrue:
      return DnfFormula::True(m);
    case NodeKind::kFalse:
      return DnfFormula::False(m);
    case NodeKind::kCompare: {
      ElementTerm diff = node.lhs.Minus(node.rhs);
      Vec coeffs(m);
      for (const auto& [name, coeff] : diff.coeffs) {
        coeffs[Column(name)] = coeff;
      }
      return DnfFormula::FromAtom(LinearAtom(coeffs, node.rel, -diff.constant));
    }
    case NodeKind::kRelationAtom:
      return ext_.database().representation().Substitute(
          TermSubstitution(node.terms), m);
    case NodeKind::kInRegion: {
      const Conjunction& region =
          ext_.RegionFormula(renv.at(node.region_args[0]));
      DnfFormula region_formula(region.num_vars(), {region});
      return region_formula.Substitute(TermSubstitution(node.terms), m);
    }
    case NodeKind::kAdjacent:
    case NodeKind::kRegionEq:
    case NodeKind::kSubsetS:
    case NodeKind::kIntersectsS:
    case NodeKind::kDimAtom:
    case NodeKind::kBoundedAtom:
    case NodeKind::kSetAtom:
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp:
    case NodeKind::kTc:
    case NodeKind::kDtc:
    case NodeKind::kRbit:
      return EvalRegionAtom(node, renv, senv) ? DnfFormula::True(m)
                                              : DnfFormula::False(m);
    case NodeKind::kNot:
      return Eval(*node.children[0], renv, senv).Negate();
    case NodeKind::kAnd: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyFalse()) return a;
      return a.And(Eval(*node.children[1], renv, senv));
    }
    case NodeKind::kOr: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyTrue()) return a;
      return a.Or(Eval(*node.children[1], renv, senv));
    }
    case NodeKind::kImplies: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      if (a.IsSyntacticallyFalse()) return DnfFormula::True(m);
      return a.Negate().Or(Eval(*node.children[1], renv, senv));
    }
    case NodeKind::kIff: {
      DnfFormula a = Eval(*node.children[0], renv, senv);
      DnfFormula b = Eval(*node.children[1], renv, senv);
      return a.And(b).Or(a.Negate().And(b.Negate()));
    }
    case NodeKind::kHull: {
      // Section 8 extension: evaluate the body, project onto the bound
      // variables, take the closed convex hull, and substitute the applied
      // terms (geometry/convex_closure.h).
      DnfFormula body = Eval(*node.children[0], renv, senv);
      const size_t k = node.bound_vars.size();
      std::vector<AffineExpr> project;
      project.reserve(num_columns_);
      std::vector<size_t> bound_columns;
      for (const std::string& v : node.bound_vars) {
        bound_columns.push_back(Column(v));
      }
      for (size_t col = 0; col < num_columns_; ++col) {
        size_t hull_index = k;
        for (size_t i = 0; i < k; ++i) {
          if (bound_columns[i] == col) {
            hull_index = i;
            break;
          }
        }
        project.push_back(hull_index < k
                              ? AffineExpr::Variable(k, hull_index)
                              : AffineExpr::Constant(k, Rational(0)));
      }
      DnfFormula projected = body.Substitute(project, k);
      Result<DnfFormula> hull = ConvexClosure(projected);
      LCDB_CHECK_MSG(hull.ok(), "convex closure failed");
      return hull->Substitute(TermSubstitution(node.terms), m);
    }
    case NodeKind::kExistsElem: {
      ++stats_.qe_eliminations;
      return ExistsVariable(Eval(*node.children[0], renv, senv),
                            Column(node.bound_vars[0]));
    }
    case NodeKind::kForallElem: {
      ++stats_.qe_eliminations;
      return ForallVariable(Eval(*node.children[0], renv, senv),
                            Column(node.bound_vars[0]));
    }
    case NodeKind::kExistsRegion: {
      ++stats_.region_expansions;
      DnfFormula acc = DnfFormula::False(m);
      for (size_t r = 0; r < ext_.num_regions(); ++r) {
        renv[node.bound_vars[0]] = r;
        acc = acc.Or(Eval(*node.children[0], renv, senv));
        if (acc.IsSyntacticallyTrue()) break;
      }
      renv.erase(node.bound_vars[0]);
      return acc;
    }
    case NodeKind::kForallRegion: {
      ++stats_.region_expansions;
      DnfFormula acc = DnfFormula::True(m);
      for (size_t r = 0; r < ext_.num_regions(); ++r) {
        renv[node.bound_vars[0]] = r;
        acc = acc.And(Eval(*node.children[0], renv, senv));
        if (acc.IsSyntacticallyFalse()) break;
      }
      renv.erase(node.bound_vars[0]);
      return acc;
    }
  }
  LCDB_CHECK(false);
  return DnfFormula::False(m);
}

bool Evaluator::EvalBool(const FormulaNode& node, RegionEnv& renv,
                         SetEnv& senv) {
  GovernorCheckpoint();
  ++stats_.bool_evaluations;
  Tuple key;
  const bool cacheable = options_.memoize && info_->WorthCaching(node) &&
                         MemoKey(node, renv, senv, &key);
  if (cacheable) {
    auto& per_node = bool_memo_[&node];
    auto it = per_node.find(key);
    if (it != per_node.end()) {
      ++stats_.memo_hits;
      return it->second;
    }
  }
  const bool result = EvalBoolUncached(node, renv, senv);
  if (cacheable) bool_memo_[&node].emplace(std::move(key), result);
  return result;
}

bool Evaluator::EvalBoolUncached(const FormulaNode& node, RegionEnv& renv,
                                 SetEnv& senv) {
  switch (node.kind) {
    case NodeKind::kTrue:
      return true;
    case NodeKind::kFalse:
      return false;
    case NodeKind::kNot:
      return !EvalBool(*node.children[0], renv, senv);
    case NodeKind::kAnd:
      return EvalBool(*node.children[0], renv, senv) &&
             EvalBool(*node.children[1], renv, senv);
    case NodeKind::kOr:
      return EvalBool(*node.children[0], renv, senv) ||
             EvalBool(*node.children[1], renv, senv);
    case NodeKind::kImplies:
      return !EvalBool(*node.children[0], renv, senv) ||
             EvalBool(*node.children[1], renv, senv);
    case NodeKind::kIff:
      return EvalBool(*node.children[0], renv, senv) ==
             EvalBool(*node.children[1], renv, senv);
    case NodeKind::kExistsRegion: {
      bool found = false;
      for (size_t r = 0; r < ext_.num_regions() && !found; ++r) {
        renv[node.bound_vars[0]] = r;
        found = EvalBool(*node.children[0], renv, senv);
      }
      renv.erase(node.bound_vars[0]);
      return found;
    }
    case NodeKind::kForallRegion: {
      bool holds = true;
      for (size_t r = 0; r < ext_.num_regions() && holds; ++r) {
        renv[node.bound_vars[0]] = r;
        holds = EvalBool(*node.children[0], renv, senv);
      }
      renv.erase(node.bound_vars[0]);
      return holds;
    }
    case NodeKind::kAdjacent:
    case NodeKind::kRegionEq:
    case NodeKind::kSubsetS:
    case NodeKind::kIntersectsS:
    case NodeKind::kDimAtom:
    case NodeKind::kBoundedAtom:
    case NodeKind::kSetAtom:
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp:
    case NodeKind::kTc:
    case NodeKind::kDtc:
    case NodeKind::kRbit:
      return EvalRegionAtom(node, renv, senv);
    case NodeKind::kCompare:
    case NodeKind::kRelationAtom:
    case NodeKind::kInRegion:
    case NodeKind::kHull:
    case NodeKind::kExistsElem:
    case NodeKind::kForallElem:
      // Element-sort subtree: evaluate symbolically and test emptiness.
      // In a boolean context all element variables inside are bound, so the
      // result is a variable-free (constant) formula.
      return !Eval(node, renv, senv).IsEmpty();
  }
  LCDB_CHECK(false);
  return false;
}

MetricsSnapshot Evaluator::Stats::ToMetrics() const {
  MetricsRegistry registry;
  registry.Count("evaluator.node_evaluations", node_evaluations);
  registry.Count("evaluator.bool_evaluations", bool_evaluations);
  registry.Count("evaluator.memo_hits", memo_hits);
  registry.Count("evaluator.fixpoint_iterations", fixpoint_iterations);
  registry.Count("evaluator.fixpoints_computed", fixpoints_computed);
  registry.Count("evaluator.closures_computed", closures_computed);
  registry.Count("evaluator.qe_eliminations", qe_eliminations);
  registry.Count("evaluator.region_expansions", region_expansions);
  registry.Count("evaluator.fixpoint_feasibility_queries",
                 fixpoint_feasibility_queries);
  registry.Count("evaluator.closure_feasibility_queries",
                 closure_feasibility_queries);
  registry.Count("evaluator.resume.sets_restored", resume_sets_restored);
  registry.Count("evaluator.resume.fixpoints_resumed",
                 resume_fixpoints_resumed);
  registry.Count("evaluator.resume.stages_skipped", resume_stages_skipped);
  // Always registered (usually zero) so tail-latency dashboards can alert
  // on the first dropped span instead of on a missing series.
  registry.Count("trace.spans_dropped", trace_spans_dropped);
  registry.RegisterKernelStats(kernel);
  registry.RegisterGovernorStats(governor);
  registry.RegisterPlanPassStats(plan);
  registry.RegisterAnalysisStats(analysis);
  registry.RegisterOpTimings(op_timings);
  // Always registered (zeros when the tree backend ran / optimization was
  // off) so the vm.* and plan.cost.* families are schema-stable for the
  // bench harness and the CI metrics assertions.
  registry.RegisterVmStats(vm);
  registry.RegisterPlanCostStats(plan_cost);
  // Likewise always registered so analysis.verify.* is schema-stable even
  // under the --no-verify ablation.
  registry.RegisterVerifyStats(verify);
  return registry.Snapshot();
}

std::string Evaluator::Stats::ToJson() const { return ToMetrics().ToJson(); }

Result<QueryAnswer> EvaluateQueryText(const RegionExtension& extension,
                                      std::string_view query_text,
                                      Evaluator::Options options) {
  LCDB_ASSIGN_OR_RETURN(
      FormulaPtr query,
      ParseQuery(query_text, extension.database().relation_name()));
  Evaluator evaluator(extension, options);
  evaluator.AttachSource(std::string(query_text));
  return evaluator.Evaluate(*query);
}

Result<bool> EvaluateSentenceText(const RegionExtension& extension,
                                  std::string_view query_text,
                                  Evaluator::Options options) {
  LCDB_ASSIGN_OR_RETURN(
      FormulaPtr query,
      ParseQuery(query_text, extension.database().relation_name()));
  Evaluator evaluator(extension, options);
  evaluator.AttachSource(std::string(query_text));
  return evaluator.EvaluateSentence(*query);
}

}  // namespace lcdb
