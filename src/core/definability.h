#ifndef LCDB_CORE_DEFINABILITY_H_
#define LCDB_CORE_DEFINABILITY_H_

#include <cstddef>
#include <string>

namespace lcdb {

/// The paper asserts several region predicates to be RegFO-definable and
/// therefore adds them to the signature "as a mere convenience"
/// (Definition 4.1 for adj; the proof of Theorem 6.4 for boundedness and
/// the region order; [21; 22; 2] for dimension). This module spells the
/// defining formulas out in the query language, so the assertions can be
/// *checked* against the built-in predicates (definability_test.cc does,
/// for every region pair of assorted databases).
///
/// All formulas are over free region variables R (and R'), so they are
/// evaluated with the low-level Evaluator machinery in tests; the text
/// returned here parametrizes the arity d of the database.

/// Definition 4.1's adjacency, literally: there is a point of R whose every
/// epsilon-neighbourhood intersects R' — or symmetrically with R and R'
/// swapped (the built-in relation is symmetric; the paper's "one of them").
std::string AdjDefinitionText(size_t arity);

/// Boundedness: the region fits in a hypercube, i.e. some bound b dominates
/// the absolute value of every coordinate of every point of R (proof of
/// Theorem 6.4).
std::string BoundedDefinitionText(size_t arity);

/// dim(R) = 0: the region contains exactly one point (all points equal).
std::string ZeroDimDefinitionText(size_t arity);

/// Lexicographic order on 0-dimensional regions (the order the rBIT
/// operator and the Theorem 6.4 encoding use): the unique point of R is
/// lex-smaller than the unique point of R'.
std::string ZeroDimLexLessText(size_t arity);

}  // namespace lcdb

#endif  // LCDB_CORE_DEFINABILITY_H_
