#include "core/queries.h"

namespace lcdb {

namespace {

/// "x1, x2, ..., xd" with the given prefix.
std::string VarTuple(const std::string& prefix, size_t arity) {
  std::string out;
  for (size_t i = 1; i <= arity; ++i) {
    if (i > 1) out += ", ";
    out += prefix + std::to_string(i);
  }
  return out;
}

constexpr char kReachLfp[] =
    "[lfp M R R' : (R = R' & subset(R)) "
    "| (exists Z . (M(R, Z) & adj(Z, R') & subset(R')))]";

}  // namespace

std::string ConnQueryText(size_t arity) {
  const std::string xs = VarTuple("x", arity);
  const std::string ys = VarTuple("y", arity);
  std::string out = "forall ";
  for (size_t i = 1; i <= arity; ++i) out += "x" + std::to_string(i) + " ";
  for (size_t i = 1; i <= arity; ++i) out += "y" + std::to_string(i) + " ";
  out += ". (S(" + xs + ") & S(" + ys + ") -> exists Rx Ry . (in(" + xs +
         "; Rx) & in(" + ys + "; Ry) & " + kReachLfp + "(Rx, Ry)))";
  return out;
}

std::string RegionConnQueryText() {
  return std::string("forall Rx Ry . (subset(Rx) & subset(Ry) -> ") +
         kReachLfp + "(Rx, Ry))";
}

std::string RegionConnTcQueryText(bool deterministic) {
  const char* op = deterministic ? "dtc" : "tc";
  return std::string("forall Rx Ry . (subset(Rx) & subset(Ry) -> [") + op +
         " R ; R' : subset(R) & subset(R') & adj(R, R')](Rx ; Ry))";
}

std::string RiverPollutionQueryText() {
  // The Section 5 query, with the paper's "∃Z ∃Z' M(Z,Z') ∧ ..." regrouped
  // as "∃Z ((∃Z' M(Z,Z')) ∧ ...)" — logically identical, but the inner
  // "Z was visited" test memoizes per fixpoint stage instead of being
  // re-scanned for every (R, R') candidate.
  return "exists R1 R2 . (!(R1 = R2) & "
         "[lfp M R R' : "
         "   (R = R' & subset(R) & exists x exists l . (in(x, l; R) & l = 1 "
         "& x < 1))"
         " | (exists Z . ((exists Z' . M(Z, Z')) & adj(Z, R) & R = R' & "
         "subset(R) & exists x exists l . (in(x, l; R) & l = 1)))"
         " | (exists Z . ((exists Z' . M(Z, Z')) & R' = Z & "
         "exists x exists l . (in(x, l; Z) & l = 1 & S(x, 4)) & "
         "exists x2 exists l2 . (in(x2, l2; R) & l2 = 1 & S(x2, 5))))"
         "](R1, R2))";
}

}  // namespace lcdb
