#include "core/definability.h"

namespace lcdb {

namespace {

/// "x1, x2, ..., xd" with a prefix.
std::string Tuple(const std::string& prefix, size_t arity) {
  std::string out;
  for (size_t i = 1; i <= arity; ++i) {
    if (i > 1) out += ", ";
    out += prefix + std::to_string(i);
  }
  return out;
}

/// "x1 y1 x2 y2 ..." for quantifier variable lists.
std::string QuantList(const std::string& prefix, size_t arity) {
  std::string out;
  for (size_t i = 1; i <= arity; ++i) {
    if (i > 1) out += " ";
    out += prefix + std::to_string(i);
  }
  return out;
}

/// One direction of Definition 4.1: some point of `from` has every
/// epsilon-neighbourhood meeting `to`.
std::string OneSidedAdj(size_t d, const std::string& from,
                        const std::string& to) {
  std::string f = "exists " + QuantList("x", d) + " . (in(" + Tuple("x", d) +
                  "; " + from + ") & forall e . (e > 0 -> exists " +
                  QuantList("y", d) + " . (in(" + Tuple("y", d) + "; " + to +
                  ")";
  for (size_t i = 1; i <= d; ++i) {
    const std::string x = "x" + std::to_string(i);
    const std::string y = "y" + std::to_string(i);
    f += " & " + y + " - " + x + " < e & " + x + " - " + y + " < e";
  }
  f += ")))";
  return f;
}

}  // namespace

std::string AdjDefinitionText(size_t arity) {
  return "(" + OneSidedAdj(arity, "R", "R'") + ") | (" +
         OneSidedAdj(arity, "R'", "R") + ")";
}

std::string BoundedDefinitionText(size_t arity) {
  std::string f = "exists b . forall " + QuantList("x", arity) +
                  " . (in(" + Tuple("x", arity) + "; R) -> (true";
  for (size_t i = 1; i <= arity; ++i) {
    const std::string x = "x" + std::to_string(i);
    f += " & " + x + " < b & -b < " + x;
  }
  f += "))";
  return f;
}

std::string ZeroDimDefinitionText(size_t arity) {
  // All pairs of points of R coincide (regions are nonempty by
  // construction, so this says "exactly one point").
  std::string f = "forall " + QuantList("x", arity) + " " +
                  QuantList("y", arity) + " . (in(" + Tuple("x", arity) +
                  "; R) & in(" + Tuple("y", arity) + "; R) -> (true";
  for (size_t i = 1; i <= arity; ++i) {
    f += " & x" + std::to_string(i) + " = y" + std::to_string(i);
  }
  f += "))";
  return f;
}

std::string ZeroDimLexLessText(size_t arity) {
  // exists points x̄ in R, ȳ in R' with x̄ <_lex ȳ; for 0-dimensional
  // regions the points are unique, so this is exactly the order used by
  // the Theorem 6.4 encoding.
  std::string f = "exists " + QuantList("x", arity) + " " +
                  QuantList("y", arity) + " . (in(" + Tuple("x", arity) +
                  "; R) & in(" + Tuple("y", arity) + "; R') & (";
  for (size_t i = 1; i <= arity; ++i) {
    if (i > 1) f += " | ";
    f += "(";
    for (size_t j = 1; j < i; ++j) {
      f += "x" + std::to_string(j) + " = y" + std::to_string(j) + " & ";
    }
    f += "x" + std::to_string(i) + " < y" + std::to_string(i) + ")";
  }
  f += "))";
  return f;
}

}  // namespace lcdb
