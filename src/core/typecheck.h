#ifndef LCDB_CORE_TYPECHECK_H_
#define LCDB_CORE_TYPECHECK_H_

#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/ast.h"
#include "db/database.h"
#include "util/status.h"

namespace lcdb {

/// Free variables of a node, by sort.
struct FreeVars {
  std::set<std::string> element;
  std::set<std::string> region;
  std::set<std::string> set_vars;
};

/// Result of static analysis over a query.
struct TypeInfo {
  /// Free variables of every node (keyed by node identity).
  std::map<const FormulaNode*, FreeVars> free;
  /// Every element variable name in the query (bound or free), in a fixed
  /// order — the evaluator's symbolic variable space.
  std::vector<std::string> all_element_vars;
  /// The root's free element variables in order of first appearance — the
  /// column order of the query answer.
  std::vector<std::string> free_element_order;
  /// Nodes whose evaluation does real work (contains a quantifier, an
  /// element-sort atom, or an operator). Only these are worth memoizing;
  /// caching trees of plain region atoms costs more than recomputing them.
  std::map<const FormulaNode*, bool> worth_caching;

  const FreeVars& of(const FormulaNode& node) const {
    return free.at(&node);
  }

  bool WorthCaching(const FormulaNode& node) const {
    return worth_caching.at(&node);
  }
};

/// Statically checks a query against a database schema and computes
/// TypeInfo. Enforces the paper's well-formedness conditions:
///  * relation atoms use the database's relation name and arity; in(...)
///    atoms have arity d;
///  * every region, element and set variable is bound before use (queries
///    are formulas without free region or set variables — Defs. 4.2, 5.1);
///  * no variable shadowing or rebinding along a path (keeps the symbolic
///    variable space one column per name);
///  * fixed points: free(body) ⊆ {M, X1..Xk} plus outer *region* variables
///    are rejected per Definition 5.1 (free(φ) = {M, X̄}); no free element
///    variables; the body is positive in M for LFP; set-variable arities
///    are consistent;
///  * TC/DTC: body has free region variables exactly the bound 2m-tuple and
///    no free element variables (Definition 7.2); applied tuples have
///    matching length m;
///  * rBIT: body has exactly one free element variable (the bound one);
///    free region variables of the body are allowed (Definition 5.1 allows
///    parameters P̄).
Result<TypeInfo> TypeCheck(const FormulaNode& root,
                           const ConstraintDatabase& db);

/// True iff every occurrence of `set_var` in `node` is under an even number
/// of negations (with `->` flipping its left side and `<->` counting as an
/// occurrence of both polarities).
bool IsPositiveIn(const FormulaNode& node, const std::string& set_var,
                  bool polarity = true);

}  // namespace lcdb

#endif  // LCDB_CORE_TYPECHECK_H_
