#ifndef LCDB_CORE_QUERIES_H_
#define LCDB_CORE_QUERIES_H_

#include <cstddef>
#include <string>

namespace lcdb {

/// Canned queries from the paper, as query-language text.

/// The Section 5 connectivity query Conn for a d-ary relation S:
///   forall x̄ ȳ (S(x̄) & S(ȳ) -> exists Rx Ry (x̄ in Rx & ȳ in Ry &
///     [LFP_{M,R,R'} (R = R' & R ⊆ S) | (exists Z M(R,Z) & adj(Z,R') &
///      R' ⊆ S)](Rx, Ry)))
/// Quantifies over points, then walks regions — the paper's literal form.
std::string ConnQueryText(size_t arity);

/// Region-level connectivity: every pair of regions contained in S is
/// linked by the same LFP. Equivalent to Conn on arrangement extensions
/// (faces partition R^d and every point of S lies in a region ⊆ S) and
/// much cheaper to evaluate (no element quantifiers); used by benchmarks.
std::string RegionConnQueryText();

/// Same reachability core expressed with the Section 7 TC operator.
std::string RegionConnTcQueryText(bool deterministic = false);

/// The Section 5 river-pollution query (Figure 6 scenario) over the
/// MakeRiverScenario encoding: spring = river part with x < 1; river parts
/// live on layer 1; chem1/chem2 markers on layers 4/5 above the same x
/// range. Evaluates to true iff the fixpoint contains a pair of distinct
/// regions, i.e. the chem1-then-chem2 marking fired.
std::string RiverPollutionQueryText();

}  // namespace lcdb

#endif  // LCDB_CORE_QUERIES_H_
