#include "constraint/simplify.h"
#include "core/evaluator.h"
#include "util/status.h"

namespace lcdb {

/// Evaluates the rBIT operator (Definition 5.1). Given the environment's
/// interpretation of the body's free region parameters P̄, the body is a
/// formula with one free element variable x; if it defines exactly one
/// rational a, then [rBIT body](R_n, R_d) holds iff
///  (1) both regions are 0-dimensional and bit rank(R_n) of |numerator(a)|
///      and bit rank(R_d) of denominator(a) are 1 (ranks in the
///      lexicographic order of 0-dimensional regions, 0-indexed — the
///      paper leaves the indexing base open, see DESIGN.md), or
///  (2) a = 0, R_n = R_d and both have dimension > 0.
/// If the body does not define a unique rational, rBIT defines the empty
/// relation.
bool Evaluator::EvalRbit(const FormulaNode& node, RegionEnv& renv,
                         SetEnv& senv) {
  // Evaluate the body symbolically; only the bound variable's column may
  // occur in the result.
  DnfFormula body = Eval(*node.children[0], renv, senv);
  const size_t col = Column(node.bound_vars[0]);
  for (size_t c = 0; c < num_columns_; ++c) {
    if (c != col && VariableOccurs(body, c)) {
      // Cannot happen for type-checked queries.
      LCDB_CHECK_MSG(false, "rBIT body depends on another element variable");
    }
  }
  // Singleton test: nonempty, and implied to equal its witness value.
  Vec witness = body.FindWitness();
  if (witness.empty()) return false;  // empty set: no unique rational
  const Rational a = witness[col];
  Vec point_coeffs(num_columns_);
  point_coeffs[col] = Rational(1);
  DnfFormula exactly_a =
      DnfFormula::FromAtom(LinearAtom(point_coeffs, RelOp::kEq, a));
  if (!Implies(body, exactly_a)) return false;  // more than one value

  const size_t rn = renv.at(node.region_args[0]);
  const size_t rd = renv.at(node.region_args[1]);
  if (a.IsZero()) {
    return rn == rd && ext_.RegionDim(rn) > 0;
  }
  if (ext_.RegionDim(rn) != 0 || ext_.RegionDim(rd) != 0) return false;
  const size_t i = ext_.ZeroDimRank(rn);
  const size_t j = ext_.ZeroDimRank(rd);
  return a.num().Bit(i) && a.den().Bit(j);
}

}  // namespace lcdb
