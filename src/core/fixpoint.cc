#include <string>

#include "core/evaluator.h"
#include "core/pfp_cycle.h"
#include "core/resume.h"
#include "engine/governor.h"
#include "engine/kernel.h"
#include "engine/trace.h"
#include "util/failpoint.h"
#include "util/interrupt.h"
#include "util/status.h"

namespace lcdb {

/// Computes the semantics of [LFP/IFP/PFP_{M, X̄} body] as a set of region
/// tuples (Definition 5.1). The set is independent of the outer environment
/// because Definition 5.1 forces free(body) = {M, X̄}, so it is computed at
/// most once per operator node and cached.
///
///  * LFP: body is positive in M, so f_body is monotone and the Kleene
///    stages increase; tuples already derived are kept without re-proof.
///  * IFP: stages are inflationary by definition (M ∪ f(M)).
///  * PFP: stages iterate f exactly; if a fixed point is reached it is the
///    result, and if the sequence cycles without reaching one the result is
///    the empty set (standard PFP semantics on finite structures).
///
/// Resource limits (Options::max_* and any installed QueryGovernor budget)
/// surface as QueryInterrupt, caught at the Evaluate boundary; the cache
/// insert happens only after the full set is computed, so an interrupt
/// leaves fixpoint_cache_ without a (possibly partial) entry.
const Evaluator::TupleSet& Evaluator::FixpointSet(const FormulaNode& node) {
  auto cached = fixpoint_cache_.find(&node);
  if (cached != fixpoint_cache_.end()) return cached->second;

  // Resume fast path: a prior interrupted run already finished this
  // operator; install its set without recomputing (core/resume.h).
  ResumeCollector* resume = CurrentResumeCollectorOrNull();
  const uint64_t site = resume != nullptr ? resume->SiteKey(&node) : 0;
  if (site != 0) {
    if (const TupleSet* done = resume->CompletedFixpoint(site)) {
      ++stats_.resume_sets_restored;
      return fixpoint_cache_.emplace(&node, *done).first->second;
    }
  }

  ++stats_.fixpoints_computed;
  // How many oracle decisions the Kleene iteration spends — the quantity
  // Theorem 6.1's PTIME bound controls (iterations × |Reg|^k body tests).
  const uint64_t kernel_queries_before =
      CurrentKernel().stats().feasibility_queries;
  const size_t k = node.bound_vars.size();
  const size_t n = ext_.num_regions();
  // Tuple-space size guard (n^k).
  size_t space = 1;
  for (size_t i = 0; i < k; ++i) {
    if (space > options_.max_tuple_space / std::max<size_t>(n, 1)) {
      throw QueryInterrupt(Status::ResourceExhausted(
          "fixed-point tuple space exceeds max_tuple_space (" +
          std::to_string(options_.max_tuple_space) + ")"));
    }
    space *= n;
  }
  GovernorCheckTupleSpace(space, "fixed-point");

  const FormulaNode& body = *node.children[0];
  const bool is_pfp = node.kind == NodeKind::kPfp;

  // One Kleene stage: the next tuple set from the current one. Pure in the
  // set binding (memo entries are keyed by a fresh version each call), so
  // PfpCycleDetector may replay it to verify hash hits exactly.
  auto kleene_stage = [&](const TupleSet& cur) {
    TupleSet next;
    if (!is_pfp) next = cur;  // LFP (monotone) / IFP keep prior stage
    RegionEnv body_env;
    SetEnv body_senv;
    body_senv.emplace(node.set_var, SetBinding{&cur, ++set_version_counter_});
    Tuple tuple(k, 0);
    bool done_tuples = (n == 0);
    while (!done_tuples) {
      // Monotone/inflationary stages never lose tuples, so skip re-proofs.
      if (is_pfp || !next.count(tuple)) {
        for (size_t i = 0; i < k; ++i) {
          body_env[node.bound_vars[i]] = tuple[i];
        }
        if (EvalBool(body, body_env, body_senv)) next.insert(tuple);
      }
      // Advance the k-digit counter.
      size_t pos = k;
      while (pos > 0) {
        --pos;
        if (++tuple[pos] < n) break;
        tuple[pos] = 0;
        if (pos == 0) done_tuples = true;
      }
      if (k == 0) done_tuples = true;
    }
    return next;
  };

  auto account = [&] {
    stats_.fixpoint_feasibility_queries +=
        CurrentKernel().stats().feasibility_queries - kernel_queries_before;
  };

  TupleSet current;
  size_t iteration = 0;
  PfpCycleDetector cycle;  // PFP only; stores 8 bytes per stage
  if (site != 0) {
    // Continue an interrupted Kleene loop from its last completed stage.
    // Valid here because Definition 5.1 makes the stage sequence a pure
    // function of the operator, not of the environment we were called in.
    FixpointResumePoint point;
    if (resume->TakeInProgress(site, &point)) {
      current = std::move(point.approximation);
      iteration = point.iteration;
      cycle.SeedHashes(point.pfp_hashes);
      ++stats_.resume_fixpoints_resumed;
      stats_.resume_stages_skipped += point.iteration;
    }
  }
  try {
    for (;; ++iteration) {
      LCDB_FAILPOINT("fixpoint.stage");
      GovernorOnFixpointIteration();
      if (is_pfp) {
        if (iteration > options_.max_pfp_iterations) {
          throw QueryInterrupt(Status::ResourceExhausted(
              "PFP exceeded max_pfp_iterations (" +
              std::to_string(options_.max_pfp_iterations) + ")"));
        }
        if (cycle.SeenBefore(current, iteration, kleene_stage)) {
          // Revisited a state without reaching a fixed point: diverges.
          account();
          return fixpoint_cache_.emplace(&node, TupleSet{}).first->second;
        }
      }
      ++stats_.fixpoint_iterations;
      TupleSet next;
      {
        TraceSpan stage_span("fixpoint.stage");
        next = kleene_stage(current);
        stage_span.Counter("iteration", iteration);
        stage_span.Counter("tuples", next.size());
      }
      if (next == current) break;
      current = std::move(next);
    }
  } catch (const QueryInterrupt&) {
    // Checkpoint the last completed stage before unwinding. `current` is
    // whole even when the interrupt landed mid-stage: the partial `next`
    // was local to kleene_stage and the stage recomputes deterministically.
    if (site != 0) {
      std::vector<uint64_t> pfp_hashes =
          is_pfp ? cycle.ExportHashes(current) : std::vector<uint64_t>{};
      resume->CaptureInProgress(site, std::move(current), iteration,
                                std::move(pfp_hashes));
    }
    throw;
  }
  account();
  return fixpoint_cache_.emplace(&node, std::move(current)).first->second;
}

}  // namespace lcdb
