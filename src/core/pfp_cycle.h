#ifndef LCDB_CORE_PFP_CYCLE_H_
#define LCDB_CORE_PFP_CYCLE_H_

#include <cstdint>
#include <functional>
#include <set>
#include <string>
#include <unordered_set>
#include <vector>

#include "constraint/canonical.h"

namespace lcdb {

/// PFP cycle detection shared by the legacy walk (core/fixpoint.cc) and the
/// plan executor (plan/executor.cc).
///
/// The naive scheme kept every stage's full serialization in an
/// unordered_set<string>; for a diverging PFP over a large tuple space that
/// is O(iterations × |state|) resident bytes. This detector mirrors the
/// kernel's canonical-key scheme instead: it stores one 64-bit stable hash
/// per stage (the serialization is built transiently, hashed, and freed),
/// and resolves hash hits *exactly* — not by keeping the old bytes, but by
/// replaying the deterministic stage sequence from the empty 0th stage and
/// comparing tuple sets directly. A replay costs at most one extra pass of
/// stages; it runs only when a hash repeats, which is either the real
/// revisit that ends a diverging PFP (once per such operator) or a 64-bit
/// collision (essentially never, and counted when it happens).
class PfpCycleDetector {
 public:
  using TupleSet = std::set<std::vector<size_t>>;
  /// Given stage i's state, returns stage i+1's. Must be the same pure
  /// function the main Kleene loop applies (the executors guarantee this:
  /// stage evaluation depends only on the current set binding).
  using StageFn = std::function<TupleSet(const TupleSet&)>;

  /// Returns true iff `state` — the `iteration`-th stage, 0-based — is
  /// byte-identical to some earlier stage (PFP divergence). Records the
  /// state's hash either way.
  bool SeenBefore(const TupleSet& state, size_t iteration,
                  const StageFn& replay_stage) {
    if (hashes_.insert(Hash(state)).second) return false;  // fresh state
    ++exact_replays_;
    TupleSet replayed;  // the 0th stage is always the empty set
    // Divergence means some stage j < iteration equals `state`; replaying
    // past that point would only re-derive `state` itself (the sequence is
    // deterministic), so a full pass without a match is a hash collision.
    for (size_t i = 0; i < iteration; ++i) {
      if (replayed == state) return true;
      replayed = replay_stage(replayed);
    }
    ++hash_collisions_;  // two distinct states shared a 64-bit hash
    return false;
  }

  /// Checkpoint support (core/resume.h): the recorded history minus the
  /// hash of `resume_state` — the interrupted loop's current approximation,
  /// whose hash the resumed loop's first SeenBefore call re-records. (The
  /// interrupt may land before or after that call within an iteration, so
  /// whether the hash is present here is not knowable at capture time;
  /// exporting without it makes the seeded detector's state canonical.)
  std::vector<uint64_t> ExportHashes(const TupleSet& resume_state) const {
    const uint64_t current = Hash(resume_state);
    std::vector<uint64_t> out;
    out.reserve(hashes_.size());
    bool dropped = false;
    for (uint64_t h : hashes_) {
      if (!dropped && h == current) {
        dropped = true;
        continue;
      }
      out.push_back(h);
    }
    return out;
  }

  /// Seeds a fresh detector with an exported history.
  void SeedHashes(const std::vector<uint64_t>& hashes) {
    hashes_.insert(hashes.begin(), hashes.end());
  }

  uint64_t exact_replays() const { return exact_replays_; }
  uint64_t hash_collisions() const { return hash_collisions_; }

 private:
  static uint64_t Hash(const TupleSet& state) {
    std::string bytes;
    for (const auto& tuple : state) {
      for (size_t v : tuple) {
        bytes += std::to_string(v);
        bytes += ',';
      }
      bytes += ';';
    }
    return StableHash64(bytes);
  }

  std::unordered_set<uint64_t> hashes_;
  uint64_t exact_replays_ = 0;
  uint64_t hash_collisions_ = 0;
};

}  // namespace lcdb

#endif  // LCDB_CORE_PFP_CYCLE_H_
