#include "core/resume.h"

#include <set>

#include "core/ast.h"
#include "plan/plan_ir.h"

namespace lcdb {

namespace {
thread_local ResumeCollector* g_current_collector = nullptr;
}  // namespace

ResumeCollector* CurrentResumeCollectorOrNull() { return g_current_collector; }

ScopedResumeCollector::ScopedResumeCollector(ResumeCollector& collector)
    : previous_(g_current_collector) {
  g_current_collector = &collector;
}

ScopedResumeCollector::~ScopedResumeCollector() {
  g_current_collector = previous_;
}

void RegisterResumeSites(const FormulaNode& root, ResumeCollector& collector) {
  switch (root.kind) {
    case NodeKind::kLfp:
    case NodeKind::kIfp:
    case NodeKind::kPfp:
    case NodeKind::kTc:
    case NodeKind::kDtc:
      collector.RegisterSite(&root);
      break;
    default:
      break;
  }
  for (const auto& child : root.children) {
    if (child != nullptr) RegisterResumeSites(*child, collector);
  }
}

namespace {
void RegisterPlanSites(const PlanNode& node,
                       std::set<const PlanNode*>* visited,
                       ResumeCollector& collector) {
  if (!visited->insert(&node).second) return;  // CSE-shared subtree
  if (node.op == PlanOp::kFixpointMember || node.op == PlanOp::kClosureMember) {
    collector.RegisterSite(&node);
  }
  for (const auto& child : node.children) {
    if (child != nullptr) RegisterPlanSites(*child, visited, collector);
  }
}
}  // namespace

void RegisterResumeSites(const PlanNode& root, ResumeCollector& collector) {
  std::set<const PlanNode*> visited;
  RegisterPlanSites(root, &visited, collector);
}

}  // namespace lcdb
