#include "core/parser.h"

#include <cctype>
#include <optional>
#include <vector>

namespace lcdb {
namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kSymbol,
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
};

/// Splits the input into identifiers, integer literals and operator symbols.
class Lexer {
 public:
  explicit Lexer(std::string_view text) : text_(text) {}

  Result<std::vector<Token>> Tokenize() {
    std::vector<Token> out;
    size_t pos = 0;
    auto symbol = [&](std::string s) {
      out.push_back({TokenKind::kSymbol, std::move(s), pos});
    };
    while (pos < text_.size()) {
      const char c = text_[pos];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++pos;
        continue;
      }
      if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
        size_t start = pos;
        while (pos < text_.size() &&
               (std::isalnum(static_cast<unsigned char>(text_[pos])) ||
                text_[pos] == '_' || text_[pos] == '\'')) {
          ++pos;
        }
        out.push_back({TokenKind::kIdent,
                       std::string(text_.substr(start, pos - start)), start});
        continue;
      }
      if (std::isdigit(static_cast<unsigned char>(c))) {
        size_t start = pos;
        while (pos < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos]))) {
          ++pos;
        }
        out.push_back({TokenKind::kNumber,
                       std::string(text_.substr(start, pos - start)), start});
        continue;
      }
      // Multi-character operators first.
      auto two = text_.substr(pos, 2);
      auto three = text_.substr(pos, 3);
      if (three == "<->") {
        symbol("<->");
        pos += 3;
      } else if (two == "->" || two == "<=" || two == ">=" || two == "!=") {
        symbol(std::string(two));
        pos += 2;
      } else if (std::string("()[],;:.&|!<>=+-*/").find(c) !=
                 std::string::npos) {
        symbol(std::string(1, c));
        pos += 1;
      } else {
        return Status::ParseError("unexpected character '" +
                                  std::string(1, c) + "' at offset " +
                                  std::to_string(pos));
      }
    }
    out.push_back({TokenKind::kEnd, "", text_.size()});
    return out;
  }

 private:
  std::string_view text_;
};

bool IsRegionName(const std::string& name) {
  return !name.empty() && std::isupper(static_cast<unsigned char>(name[0]));
}

bool IsElementName(const std::string& name) {
  return !name.empty() && std::islower(static_cast<unsigned char>(name[0]));
}

const char* const kKeywords[] = {"exists", "forall", "in",  "adj",  "subset",
                                 "meets",  "dim",    "bounded", "true", "false",
                                 "lfp",    "ifp",    "pfp", "tc",   "dtc",
                                 "rbit",   "hull"};

bool IsKeyword(const std::string& name) {
  for (const char* kw : kKeywords) {
    if (name == kw) return true;
  }
  return false;
}

class QueryParser {
 public:
  QueryParser(std::vector<Token> tokens, std::string relation_name)
      : tokens_(std::move(tokens)), relation_(std::move(relation_name)) {}

  Result<FormulaPtr> Parse() {
    LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
    if (!AtEnd()) return Error("unexpected trailing input");
    return f;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Ahead(size_t k) const {
    return tokens_[std::min(pos_ + k, tokens_.size() - 1)];
  }
  bool AtEnd() const { return Cur().kind == TokenKind::kEnd; }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " near offset " +
                              std::to_string(Cur().offset) + " ('" +
                              Cur().text + "')");
  }

  /// Offset where the formula whose parse is about to begin starts.
  size_t StartOffset() const { return Cur().offset; }

  /// One past the end of the most recently consumed token.
  size_t EndOffset() const {
    const Token& prev = tokens_[pos_ == 0 ? 0 : pos_ - 1];
    return prev.offset + prev.text.size();
  }

  /// Stamps `node` with the source range [begin, EndOffset()). Applied on
  /// every production exit, so each AST node points at the tokens it came
  /// from; desugared nodes (e.g. the two compares of `!=`) share the range
  /// of the surface syntax they expand.
  FormulaPtr Span(FormulaPtr node, size_t begin) {
    node->span.begin = begin;
    node->span.end = EndOffset();
    return node;
  }

  bool ConsumeSymbol(const std::string& s) {
    if (Cur().kind == TokenKind::kSymbol && Cur().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeIdent(const std::string& s) {
    if (Cur().kind == TokenKind::kIdent && Cur().text == s) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<std::string> ExpectIdent(const std::string& what) {
    if (Cur().kind != TokenKind::kIdent) return Error("expected " + what);
    std::string name = Cur().text;
    ++pos_;
    return name;
  }

  Status ExpectSymbol(const std::string& s) {
    if (!ConsumeSymbol(s)) return Error("expected '" + s + "'");
    return Status::Ok();
  }

  Result<FormulaPtr> ParseIff() {
    const size_t begin = StartOffset();
    LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseImplies());
    while (ConsumeSymbol("<->")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr g, ParseImplies());
      f = Span(MakeIff(std::move(f), std::move(g)), begin);
    }
    return f;
  }

  Result<FormulaPtr> ParseImplies() {
    const size_t begin = StartOffset();
    LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseOr());
    if (ConsumeSymbol("->")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr g, ParseImplies());  // right assoc
      return Span(MakeImplies(std::move(f), std::move(g)), begin);
    }
    return f;
  }

  Result<FormulaPtr> ParseOr() {
    const size_t begin = StartOffset();
    LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseAnd());
    while (ConsumeSymbol("|")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr g, ParseAnd());
      f = Span(MakeOr(std::move(f), std::move(g)), begin);
    }
    return f;
  }

  Result<FormulaPtr> ParseAnd() {
    const size_t begin = StartOffset();
    LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
    while (ConsumeSymbol("&")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr g, ParseUnary());
      f = Span(MakeAnd(std::move(f), std::move(g)), begin);
    }
    return f;
  }

  Result<FormulaPtr> ParseUnary() {
    const size_t begin = StartOffset();
    if (ConsumeSymbol("!")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseUnary());
      return Span(MakeNot(std::move(f)), begin);
    }
    if (Cur().kind == TokenKind::kIdent &&
        (Cur().text == "exists" || Cur().text == "forall")) {
      return ParseQuantifier();
    }
    if (Cur().kind == TokenKind::kSymbol && Cur().text == "[") {
      return ParseFixpoint();
    }
    if (ConsumeSymbol("(")) {
      LCDB_ASSIGN_OR_RETURN(FormulaPtr f, ParseIff());
      LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
      return f;
    }
    return ParseAtom();
  }

  Result<FormulaPtr> ParseQuantifier() {
    const size_t begin = StartOffset();
    const bool universal = Cur().text == "forall";
    ++pos_;
    std::vector<std::string> vars;
    while (Cur().kind == TokenKind::kIdent && !IsKeyword(Cur().text)) {
      vars.push_back(Cur().text);
      ++pos_;
      ConsumeSymbol(",");
    }
    if (vars.empty()) return Error("expected quantified variable");
    const bool dotted = ConsumeSymbol(".");
    const bool body_start =
        (Cur().kind == TokenKind::kSymbol &&
         (Cur().text == "(" || Cur().text == "[" || Cur().text == "!")) ||
        (Cur().kind == TokenKind::kIdent && IsKeyword(Cur().text));
    if (!dotted && !body_start) {
      return Error("expected '.' or a parenthesized body after quantified "
                   "variables");
    }
    LCDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseUnary());
    for (size_t i = vars.size(); i-- > 0;) {
      const std::string& v = vars[i];
      if (IsElementName(v)) {
        body = universal ? MakeForallElem(v, std::move(body))
                         : MakeExistsElem(v, std::move(body));
      } else if (IsRegionName(v)) {
        body = universal ? MakeForallRegion(v, std::move(body))
                         : MakeExistsRegion(v, std::move(body));
      } else {
        return Error("cannot determine sort of variable '" + v + "'");
      }
      body = Span(std::move(body), begin);
    }
    return body;
  }

  Result<FormulaPtr> ParseFixpoint() {
    const size_t begin = StartOffset();
    LCDB_RETURN_IF_ERROR(ExpectSymbol("["));
    Result<FormulaPtr> f = [&]() -> Result<FormulaPtr> {
      if (ConsumeIdent("lfp")) return ParseLfpLike(NodeKind::kLfp);
      if (ConsumeIdent("ifp")) return ParseLfpLike(NodeKind::kIfp);
      if (ConsumeIdent("pfp")) return ParseLfpLike(NodeKind::kPfp);
      if (ConsumeIdent("tc")) return ParseTcLike(NodeKind::kTc);
      if (ConsumeIdent("dtc")) return ParseTcLike(NodeKind::kDtc);
      if (ConsumeIdent("rbit")) return ParseRbit();
      if (ConsumeIdent("hull")) return ParseHull();
      return Error("expected lfp/ifp/pfp/tc/dtc/rbit/hull after '['");
    }();
    if (!f.ok()) return f.status();
    return Span(std::move(*f), begin);
  }

  Result<FormulaPtr> ParseLfpLike(NodeKind op) {
    LCDB_ASSIGN_OR_RETURN(std::string set_var, ExpectIdent("set variable"));
    if (!IsRegionName(set_var)) {
      return Error("set variable must start uppercase: " + set_var);
    }
    ConsumeSymbol(",");
    std::vector<std::string> bound;
    while (Cur().kind == TokenKind::kIdent) {
      bound.push_back(Cur().text);
      ++pos_;
      ConsumeSymbol(",");
    }
    if (bound.empty()) return Error("fixed point needs bound region vars");
    LCDB_RETURN_IF_ERROR(ExpectSymbol(":"));
    LCDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
    LCDB_RETURN_IF_ERROR(ExpectSymbol("]"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> args;
    LCDB_RETURN_IF_ERROR(ParseRegionList(&args, ")"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return MakeFixpoint(op, std::move(set_var), std::move(bound),
                        std::move(body), std::move(args));
  }

  Result<FormulaPtr> ParseTcLike(NodeKind op) {
    std::vector<std::string> first, second;
    LCDB_RETURN_IF_ERROR(ParseRegionList(&first, ";"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(";"));
    LCDB_RETURN_IF_ERROR(ParseRegionList(&second, ":"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(":"));
    if (first.size() != second.size() || first.empty()) {
      return Error("TC needs equal-length nonempty variable tuples");
    }
    LCDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
    LCDB_RETURN_IF_ERROR(ExpectSymbol("]"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<std::string> args, args2;
    LCDB_RETURN_IF_ERROR(ParseRegionList(&args, ";"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(";"));
    LCDB_RETURN_IF_ERROR(ParseRegionList(&args2, ")"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    std::vector<std::string> bound = std::move(first);
    bound.insert(bound.end(), second.begin(), second.end());
    return MakeTransitiveClosure(op, std::move(bound), std::move(body),
                                 std::move(args), std::move(args2));
  }

  Result<FormulaPtr> ParseRbit() {
    LCDB_ASSIGN_OR_RETURN(std::string var, ExpectIdent("element variable"));
    if (!IsElementName(var)) {
      return Error("rbit variable must be element-sorted: " + var);
    }
    LCDB_RETURN_IF_ERROR(ExpectSymbol(":"));
    LCDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
    LCDB_RETURN_IF_ERROR(ExpectSymbol("]"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    LCDB_ASSIGN_OR_RETURN(std::string rn, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(","));
    LCDB_ASSIGN_OR_RETURN(std::string rd, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return MakeRbit(std::move(var), std::move(body), std::move(rn),
                    std::move(rd));
  }

  Result<FormulaPtr> ParseHull() {
    std::vector<std::string> vars;
    while (Cur().kind == TokenKind::kIdent && !IsKeyword(Cur().text)) {
      if (!IsElementName(Cur().text)) {
        return Error("hull variables must be element-sorted");
      }
      vars.push_back(Cur().text);
      ++pos_;
      ConsumeSymbol(",");
    }
    if (vars.empty()) return Error("hull needs bound element variables");
    LCDB_RETURN_IF_ERROR(ExpectSymbol(":"));
    LCDB_ASSIGN_OR_RETURN(FormulaPtr body, ParseIff());
    LCDB_RETURN_IF_ERROR(ExpectSymbol("]"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ElementTerm> terms;
    LCDB_RETURN_IF_ERROR(ParseTermList(&terms, ")"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    if (terms.size() != vars.size()) {
      return Error("hull applied to wrong-length term tuple");
    }
    return MakeHull(std::move(vars), std::move(body), std::move(terms));
  }

  /// Parses region names separated by ',' until `terminator` is seen
  /// (not consumed).
  Status ParseRegionList(std::vector<std::string>* out,
                         const std::string& terminator) {
    while (true) {
      if (Cur().kind == TokenKind::kSymbol && Cur().text == terminator) {
        return Status::Ok();
      }
      LCDB_ASSIGN_OR_RETURN(std::string name, ExpectIdent("region variable"));
      if (!IsRegionName(name)) {
        return Error("expected region variable, got '" + name + "'");
      }
      out->push_back(std::move(name));
      if (!ConsumeSymbol(",")) {
        if (Cur().kind == TokenKind::kSymbol && Cur().text == terminator) {
          return Status::Ok();
        }
        return Error("expected ',' or '" + terminator + "'");
      }
    }
  }

  Result<FormulaPtr> ParseAtom() {
    const size_t begin = StartOffset();
    // Stamps the atom (however deep its helper parser recursed) with the
    // tokens consumed since `begin`.
    auto spanned = [&](Result<FormulaPtr> r) -> Result<FormulaPtr> {
      if (!r.ok()) return r.status();
      return Span(std::move(*r), begin);
    };
    if (ConsumeIdent("true")) return Span(MakeTrue(), begin);
    if (ConsumeIdent("false")) return Span(MakeFalse(), begin);
    if (ConsumeIdent("in")) return spanned(ParseInAtom());
    if (ConsumeIdent("adj")) return spanned(ParseTwoRegionAtom(&MakeAdjacent));
    if (ConsumeIdent("subset")) {
      return spanned(ParseOneRegionAtom(&MakeSubsetS));
    }
    if (ConsumeIdent("meets")) {
      return spanned(ParseOneRegionAtom(&MakeIntersectsS));
    }
    if (ConsumeIdent("bounded")) {
      return spanned(ParseOneRegionAtom(&MakeBoundedAtom));
    }
    if (ConsumeIdent("dim")) return spanned(ParseDimAtom());

    // NAME(...): relation atom or set atom.
    if (Cur().kind == TokenKind::kIdent && Ahead(1).kind == TokenKind::kSymbol &&
        Ahead(1).text == "(" && !IsKeyword(Cur().text)) {
      std::string name = Cur().text;
      if (name == relation_) {
        pos_ += 2;
        std::vector<ElementTerm> terms;
        LCDB_RETURN_IF_ERROR(ParseTermList(&terms, ")"));
        LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Span(MakeRelationAtom(std::move(name), std::move(terms)),
                    begin);
      }
      if (IsRegionName(name)) {
        pos_ += 2;
        std::vector<std::string> args;
        LCDB_RETURN_IF_ERROR(ParseRegionList(&args, ")"));
        LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
        return Span(MakeSetAtom(std::move(name), std::move(args)), begin);
      }
      return Error("unknown predicate '" + name + "'");
    }

    // Region equality R1 = R2.
    if (Cur().kind == TokenKind::kIdent && IsRegionName(Cur().text)) {
      std::string r1 = Cur().text;
      ++pos_;
      if (ConsumeSymbol("=")) {
        LCDB_ASSIGN_OR_RETURN(std::string r2, ExpectIdent("region variable"));
        if (!IsRegionName(r2)) {
          return Error("region compared with non-region '" + r2 + "'");
        }
        return Span(MakeRegionEq(std::move(r1), std::move(r2)), begin);
      }
      if (ConsumeSymbol("!=")) {
        LCDB_ASSIGN_OR_RETURN(std::string r2, ExpectIdent("region variable"));
        if (!IsRegionName(r2)) {
          return Error("region compared with non-region '" + r2 + "'");
        }
        return Span(
            MakeNot(Span(MakeRegionEq(std::move(r1), std::move(r2)), begin)),
            begin);
      }
      return Error("region variable in element-term position");
    }

    // Element comparison.
    LCDB_ASSIGN_OR_RETURN(ElementTerm lhs, ParseTerm());
    std::optional<RelOp> rel;
    bool neq = false;
    if (ConsumeSymbol("<=")) {
      rel = RelOp::kLe;
    } else if (ConsumeSymbol(">=")) {
      rel = RelOp::kGe;
    } else if (ConsumeSymbol("!=")) {
      neq = true;
    } else if (ConsumeSymbol("<")) {
      rel = RelOp::kLt;
    } else if (ConsumeSymbol(">")) {
      rel = RelOp::kGt;
    } else if (ConsumeSymbol("=")) {
      rel = RelOp::kEq;
    } else {
      return Error("expected comparison operator");
    }
    LCDB_ASSIGN_OR_RETURN(ElementTerm rhs, ParseTerm());
    if (neq) {
      return Span(MakeOr(Span(MakeCompare(lhs, RelOp::kLt, rhs), begin),
                         Span(MakeCompare(lhs, RelOp::kGt, rhs), begin)),
                  begin);
    }
    return Span(MakeCompare(std::move(lhs), *rel, std::move(rhs)), begin);
  }

  Result<FormulaPtr> ParseInAtom() {
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    std::vector<ElementTerm> terms;
    LCDB_RETURN_IF_ERROR(ParseTermList(&terms, ";"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(";"));
    LCDB_ASSIGN_OR_RETURN(std::string region, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return MakeInRegion(std::move(terms), std::move(region));
  }

  Result<FormulaPtr> ParseOneRegionAtom(FormulaPtr (*make)(std::string)) {
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    LCDB_ASSIGN_OR_RETURN(std::string r, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return make(std::move(r));
  }

  Result<FormulaPtr> ParseTwoRegionAtom(
      FormulaPtr (*make)(std::string, std::string)) {
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    LCDB_ASSIGN_OR_RETURN(std::string r1, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(","));
    LCDB_ASSIGN_OR_RETURN(std::string r2, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    return make(std::move(r1), std::move(r2));
  }

  Result<FormulaPtr> ParseDimAtom() {
    LCDB_RETURN_IF_ERROR(ExpectSymbol("("));
    LCDB_ASSIGN_OR_RETURN(std::string r, ExpectIdent("region variable"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol(")"));
    LCDB_RETURN_IF_ERROR(ExpectSymbol("="));
    if (Cur().kind != TokenKind::kNumber) return Error("expected dimension");
    int dim = std::stoi(Cur().text);
    ++pos_;
    return MakeDimAtom(std::move(r), dim);
  }

  Status ParseTermList(std::vector<ElementTerm>* out,
                       const std::string& terminator) {
    while (true) {
      LCDB_ASSIGN_OR_RETURN(ElementTerm t, ParseTerm());
      out->push_back(std::move(t));
      if (!ConsumeSymbol(",")) {
        if (Cur().kind == TokenKind::kSymbol && Cur().text == terminator) {
          return Status::Ok();
        }
        return Error("expected ',' or '" + terminator + "'");
      }
    }
  }

  Result<ElementTerm> ParseTerm() {
    LCDB_ASSIGN_OR_RETURN(ElementTerm t, ParseTermFactor(false));
    while (true) {
      if (ConsumeSymbol("+")) {
        LCDB_ASSIGN_OR_RETURN(ElementTerm u, ParseTermFactor(false));
        t = t.Plus(u);
      } else if (ConsumeSymbol("-")) {
        LCDB_ASSIGN_OR_RETURN(ElementTerm u, ParseTermFactor(false));
        t = t.Minus(u);
      } else {
        break;
      }
    }
    return t;
  }

  Result<ElementTerm> ParseTermFactor(bool negated) {
    if (ConsumeSymbol("-")) return ParseTermFactor(!negated);
    Rational coeff(1);
    bool saw_number = false;
    if (Cur().kind == TokenKind::kNumber) {
      LCDB_ASSIGN_OR_RETURN(coeff, ParseRationalLiteral());
      saw_number = true;
      ConsumeSymbol("*");
    }
    if (Cur().kind == TokenKind::kIdent && !IsKeyword(Cur().text)) {
      if (!IsElementName(Cur().text)) {
        return Error("region variable '" + Cur().text +
                     "' used as element term");
      }
      ElementTerm t = ElementTerm::Variable(Cur().text);
      ++pos_;
      t = t.Scaled(negated ? -coeff : coeff);
      return t;
    }
    if (!saw_number) return Error("expected term");
    return ElementTerm::Constant(negated ? -coeff : coeff);
  }

  Result<Rational> ParseRationalLiteral() {
    LCDB_ASSIGN_OR_RETURN(BigInt num, BigInt::FromString(Cur().text));
    ++pos_;
    if (Cur().kind == TokenKind::kSymbol && Cur().text == "/" &&
        Ahead(1).kind == TokenKind::kNumber) {
      ++pos_;
      LCDB_ASSIGN_OR_RETURN(BigInt den, BigInt::FromString(Cur().text));
      ++pos_;
      if (den.IsZero()) return Error("zero denominator");
      return Rational(std::move(num), std::move(den));
    }
    return Rational(std::move(num));
  }

  std::vector<Token> tokens_;
  std::string relation_;
  size_t pos_ = 0;
};

}  // namespace

Result<FormulaPtr> ParseQuery(std::string_view text,
                              const std::string& relation_name) {
  Lexer lexer(text);
  LCDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, lexer.Tokenize());
  QueryParser parser(std::move(tokens), relation_name);
  return parser.Parse();
}

}  // namespace lcdb
