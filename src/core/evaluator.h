#ifndef LCDB_CORE_EVALUATOR_H_
#define LCDB_CORE_EVALUATOR_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "analysis/analysis_stats.h"
#include "analysis/verify_stats.h"
#include "core/ast.h"
#include "core/resume.h"
#include "core/typecheck.h"
#include "db/region_extension.h"
#include "engine/governor.h"
#include "engine/kernel_stats.h"
#include "engine/metrics.h"
#include "engine/trace.h"
#include "plan/plan_stats.h"
#include "qe/fourier_motzkin.h"

namespace lcdb {

struct CompiledPlan;

/// Answer of a (possibly non-boolean) query: a quantifier-free DNF formula
/// over the query's free element variables — the closure property of
/// Section 2, made concrete. `free_vars[i]` names column i.
struct QueryAnswer {
  DnfFormula formula = DnfFormula::False(0);
  std::vector<std::string> free_vars;

  std::string ToString() const { return formula.ToString(free_vars); }
};

/// Evaluator for RegFO / RegLFP / RegIFP / RegPFP / RegTC / RegDTC queries
/// over a region extension. This is the proof of Theorem 4.3 (and the
/// fixed-point cases of Theorem 6.1) turned into an algorithm:
///
///  * element-sort subformulas are evaluated *symbolically*: each node
///    yields a quantifier-free DNF formula over the query's element
///    variables, and element quantifiers are discharged by Fourier-Motzkin
///    elimination;
///  * region quantifiers expand over the finite region sort;
///  * fixed points iterate over sets of region tuples (Kleene iteration;
///    PFP with cycle detection and the empty-result convention);
///  * TC/DTC build the edge relation over region tuples once per operator
///    and take (deterministic) reflexive-transitive closures;
///  * rBIT evaluates its body to a univariate formula, tests for a
///    singleton rational and reads bits of its numerator/denominator.
///
/// Memoization: subformulas that do not depend on any set variable are
/// cached per assignment of their free region variables — across fixed-point
/// iterations this is the difference between O(iterations * |Reg|^k) and
/// O(|Reg|^k) evaluations of the M-independent parts. It can be disabled
/// (Options::memoize) for the ablation benchmark.
class Evaluator {
 public:
  struct Options {
    /// Cache set-variable-independent subformula results.
    bool memoize = true;
    /// Safety bound on PFP iterations before declaring divergence.
    size_t max_pfp_iterations = 1u << 16;
    /// Cap on n^m tuple-space size for fixed points and TC.
    size_t max_tuple_space = 1u << 22;
    /// Evaluate through the compile -> optimize -> execute pipeline
    /// (plan/planner.h, plan/optimizer.h, plan/executor.h). When false the
    /// legacy single-pass tree walk is used instead; the two produce
    /// byte-identical answer formulas. The legacy walk is kept for one
    /// release as an oracle for the equivalence tests and will then be
    /// removed.
    bool use_plan = true;
    /// Run the optimizer's pass pipeline over the compiled plan. Only
    /// meaningful with use_plan; disabling it also disables all subformula
    /// caching, because caching decisions are a pass (MarkCacheable) — this
    /// is the ablation EXPERIMENTS.md's optimizer-telemetry row measures.
    bool optimize = true;
    /// Execute through the register bytecode VM (plan/bytecode.h, plan/vm.h)
    /// instead of the tree-walking PlanExecutor: the optimized plan is
    /// flattened to fixed-width instructions with inline-cached kernel call
    /// sites. Answer formulas, memo behaviour, governor checkpoint cadence
    /// and op.*/trace telemetry are byte-identical to the tree walk (the
    /// equivalence tests sweep both); only kernel query *counts* may drop,
    /// thanks to the inline caches. Requires optimize=true — lowering is
    /// defined over optimized plans only, and Evaluate fails with
    /// kInvalidArgument on the combination use_bytecode && !optimize.
    bool use_bytecode = false;
    /// Checkpoint fixpoint progress (core/resume.h) so a resource failure
    /// returns a Status carrying a resume token and Evaluate(query, token)
    /// continues from the saved stage. The never-tripped cost is one
    /// thread-local read plus a map lookup per fixpoint/closure operator
    /// (BM_ResumeVsRecompute bounds it under 2%); the off switch exists for
    /// that ablation.
    bool capture_resume = true;
    /// Tier-3 static verification (analysis/plan_verify.h,
    /// analysis/bytecode_verify.h): the compiled plan is checked after the
    /// optimizer pipeline (after BuildPlan when optimization is off), and
    /// lowered bytecode is checked before the VM will run it. A violation
    /// surfaces as a clean LCDB012 kInternal Status instead of undefined
    /// executor behaviour. The off switch exists for the BM_VerifyOverhead
    /// ablation (tax bounded under 2%).
    bool verify = true;
  };

  struct Stats {
    size_t node_evaluations = 0;
    size_t bool_evaluations = 0;
    size_t memo_hits = 0;
    size_t fixpoint_iterations = 0;
    size_t fixpoints_computed = 0;
    size_t closures_computed = 0;
    size_t qe_eliminations = 0;
    size_t region_expansions = 0;
    /// Constraint-kernel telemetry attributed to this evaluator: the delta
    /// of CurrentKernel()'s counters accumulated over Evaluate /
    /// EvaluateSentence calls (oracle decisions, cache hits, simplex work).
    KernelStats kernel;
    /// Feasibility questions issued while computing fixpoint sets and
    /// TC/DTC closure matrices (subsets of `kernel.feasibility_queries`) —
    /// the oracle-decision counts Theorems 6.1/7.3 bound.
    size_t fixpoint_feasibility_queries = 0;
    size_t closure_feasibility_queries = 0;
    /// Resource-governance telemetry of the most recent Evaluate call:
    /// checkpoints passed, deadline reads, and — after a failed query —
    /// which budget tripped. All zeros when the query ran ungoverned.
    GovernorStats governor;
    /// Optimizer pass counters of the most recent compilation (plan mode).
    PlanPassStats plan;
    /// Static-analyzer telemetry of the most recent Evaluate/Explain call
    /// (diagnostic counts by severity, guard classification work).
    AnalysisStats analysis;
    /// Wall-clock per-operator timings of the most recent Evaluate call
    /// (expensive operators only: QE, region expansion, hull, fixpoints,
    /// closures, rBIT), keyed by PlanOpName. Reset at each Evaluate entry.
    OpTimings op_timings;
    /// Bytecode-VM telemetry of the most recent Evaluate call (instruction
    /// count, inline-cache outcomes, program shape). All zeros when the
    /// tree backend ran; reset at each Evaluate entry like op_timings.
    VmStats vm;
    /// Tier-3 static-verifier telemetry (analysis/verify_stats.h) of the
    /// most recent Evaluate call: plans/programs verified, dataflow
    /// coverage, and the proved facts the tier-2 analyzer tightens on.
    /// Reset at each Evaluate entry like op_timings.
    VerifyStats verify;
    /// Tier-2 cost-analyzer aggregates of the most recent compile
    /// (analysis/plan_cost.h). Zeros when optimization was off.
    PlanCostStats plan_cost;
    /// Checkpoint/resume telemetry (core/resume.h), cumulative like the
    /// counters above: completed fixpoint/closure sets reused from a resume
    /// token, in-progress Kleene loops continued mid-iteration, and the
    /// total stage transitions those continuations did not recompute.
    size_t resume_sets_restored = 0;
    size_t resume_fixpoints_resumed = 0;
    size_t resume_stages_skipped = 0;
    /// Completed spans the installed tracer's bounded ring evicted during
    /// this evaluator's queries (exported as trace.spans_dropped). Nonzero
    /// means tail-latency attribution from the trace is incomplete.
    size_t trace_spans_dropped = 0;

    /// Unified named view over all the telemetry above: the evaluator's own
    /// counters as `evaluator.*` plus the kernel.*, governor.*, plan.* and
    /// op.* families (engine/metrics.h). Every exporter — `lcdbq --stats`,
    /// the bench harness JSON, tests — reads this one flat namespace.
    MetricsSnapshot ToMetrics() const;
    /// Flat metrics JSON of ToMetrics() (the schema CI validates).
    std::string ToJson() const;
  };

  explicit Evaluator(const RegionExtension& extension);
  Evaluator(const RegionExtension& extension, Options options);

  /// Attaches the query source text, so analyzer diagnostics carried by a
  /// rejection Status render with the offending line and a caret run under
  /// the span. Optional — without it diagnostics degrade to span-less
  /// messages. EvaluateQueryText / EvaluateSentenceText attach automatically.
  void AttachSource(std::string source) { source_ = std::move(source); }

  /// Evaluates a well-formed query (no free region or set variables);
  /// type-checks first. The answer formula ranges over the free element
  /// variables in first-appearance order.
  Result<QueryAnswer> Evaluate(const FormulaNode& query);

  /// Resume continuation: re-evaluates `query` seeded with the checkpoint a
  /// prior resource failure left behind (Status::resume_token), skipping
  /// every completed fixpoint stage instead of recomputing it. The final
  /// answer is byte-identical to an uninterrupted run. Tokens are
  /// single-use, bound to this evaluator instance, and validated against
  /// the query text and backend options that produced them (kInvalidArgument
  /// on mismatch, or on an unknown/expired token). Token 0 degrades to a
  /// plain Evaluate.
  Result<QueryAnswer> Evaluate(const FormulaNode& query,
                               uint64_t resume_token);

  /// Evaluates a sentence (no free variables at all) to its truth value.
  /// A nonzero `resume_token` continues from a saved checkpoint, as in
  /// Evaluate(query, token).
  Result<bool> EvaluateSentence(const FormulaNode& query,
                                uint64_t resume_token = 0);

  /// Compiles (and, per Options::optimize, optimizes) the query and returns
  /// the plan rendered as an annotated tree plus the optimizer's pass
  /// counters, without executing it (`lcdbq --explain`).
  Result<std::string> Explain(const FormulaNode& query);

  /// EXPLAIN ANALYZE: compiles, optimizes and *executes* the query through
  /// the plan pipeline (regardless of Options::use_plan — the profile is a
  /// plan-level artifact), returning the plan tree annotated per node with
  /// measured execution — calls, inclusive wall-clock, kernel decisions and
  /// cache hits, executor memo hits, governor checkpoints and result
  /// cardinality — plus pass-counter / kernel / governor footer lines.
  /// Stats settle exactly as in Evaluate.
  Result<std::string> ExplainAnalyze(const FormulaNode& query);

  /// Compiles and optimizes the query, lowers the optimized plan to
  /// register bytecode and returns the disassembled program — procedures,
  /// instructions with resolved slot names, memo descriptors and the
  /// inline-cache slot count — without executing it (`lcdbq
  /// --explain-bytecode`). Fails with kInvalidArgument when
  /// Options::optimize is off, like evaluation under use_bytecode.
  Result<std::string> ExplainBytecode(const FormulaNode& query);

  const Stats& stats() const { return stats_; }
  const RegionExtension& extension() const { return ext_; }

  const Options& options() const { return options_; }
  /// Degradation hook for QuerySession (engine/session.h): lets the retry
  /// ladder flip backend knobs (use_bytecode, memoize) between attempts on
  /// *this* evaluator, because resume tokens are scoped to the instance.
  /// ResumeFingerprint deliberately treats the VM and the tree executor as
  /// one backend, so a checkpoint taken on the VM replays after a
  /// vm->tree degradation; flipping use_plan or optimize instead changes
  /// the fingerprint and invalidates outstanding tokens.
  Options& mutable_options() { return options_; }

 private:
  using RegionEnv = std::map<std::string, size_t>;
  using Tuple = std::vector<size_t>;
  using TupleSet = std::set<Tuple>;
  /// A set-variable binding: the current stage's tuple set plus a version
  /// stamp that changes whenever the stage changes, so memoized results of
  /// set-dependent subformulas are keyed by stage (Options::memoize).
  struct SetBinding {
    const TupleSet* tuples = nullptr;
    size_t version = 0;
  };
  using SetEnv = std::map<std::string, SetBinding>;

  /// Shared engine of Evaluate and ExplainAnalyze: the full pipeline with
  /// optional per-plan-node profiling. When `plan_out` is non-null the
  /// compiled plan is copied out (it owns the nodes the profile's keys point
  /// at) and the plan pipeline runs regardless of Options::use_plan. A
  /// nonzero `resume_token` seeds execution with a saved checkpoint.
  Result<QueryAnswer> EvaluateImpl(const FormulaNode& query,
                                   PlanProfile* profile,
                                   CompiledPlan* plan_out,
                                   uint64_t resume_token = 0);

  /// Settles ambient per-query telemetry into stats_: the kernel delta
  /// since `kernel_before` and the installed governor's counters. When
  /// `span` is non-null, the lemma-database share of the delta is emitted
  /// as counters on that span (the evaluate span in EvaluateImpl).
  void SettleAmbient(const KernelStats& kernel_before,
                     TraceSpan* span = nullptr);

  // Core symbolic recursion (evaluator.cc).
  DnfFormula Eval(const FormulaNode& node, RegionEnv& renv, SetEnv& senv);
  DnfFormula EvalUncached(const FormulaNode& node, RegionEnv& renv,
                          SetEnv& senv);
  /// Fast path for subformulas without free element variables.
  bool EvalBool(const FormulaNode& node, RegionEnv& renv, SetEnv& senv);
  bool EvalBoolUncached(const FormulaNode& node, RegionEnv& renv,
                        SetEnv& senv);

  /// Ground truth of atoms given a region environment.
  bool EvalRegionAtom(const FormulaNode& node, RegionEnv& renv,
                      SetEnv& senv);

  /// Column index of an element variable.
  size_t Column(const std::string& name) const;
  /// The affine substitution map turning a d-tuple of terms into columns.
  std::vector<AffineExpr> TermSubstitution(
      const std::vector<ElementTerm>& terms) const;
  /// Memo key: values of the node's free region variables, name-sorted.
  bool MemoKey(const FormulaNode& node, const RegionEnv& renv,
               const SetEnv& senv, Tuple* key) const;

  // Fixed points (fixpoint.cc).
  const TupleSet& FixpointSet(const FormulaNode& node);

  // Transitive closures (transitive_closure.cc).
  /// Reachability bitmap of the (deterministic) reflexive-transitive
  /// closure for a TC/DTC node; indexed [from][to] over tuple indices.
  const std::vector<std::vector<bool>>& ClosureMatrix(const FormulaNode& node);
  size_t TupleIndex(const Tuple& tuple) const;

  // rBIT (rbit.cc).
  bool EvalRbit(const FormulaNode& node, RegionEnv& renv, SetEnv& senv);

  const RegionExtension& ext_;
  Options options_;
  Stats stats_;
  std::string source_;  // query text for diagnostic rendering (may be empty)
  const TypeInfo* info_ = nullptr;  // valid during Evaluate
  size_t num_columns_ = 0;

  std::map<const FormulaNode*, std::map<Tuple, DnfFormula>> memo_;
  std::map<const FormulaNode*, std::map<Tuple, bool>> bool_memo_;
  std::map<const FormulaNode*, TupleSet> fixpoint_cache_;
  size_t set_version_counter_ = 0;
  std::map<const FormulaNode*, std::vector<std::vector<bool>>> closure_cache_;

  /// Checkpoints stashed by interrupted Evaluate calls, keyed by the token
  /// carried on the failure Status. `fingerprint` pins the query text and
  /// the site-numbering-relevant options, so a token cannot replay against
  /// a different query or backend. Bounded (oldest evicted) and single-use.
  struct StoredResumeState {
    uint64_t fingerprint = 0;
    ResumeState state;
  };
  static constexpr size_t kMaxStoredResumeStates = 4;
  uint64_t ResumeFingerprint(const FormulaNode& query) const;
  std::map<uint64_t, StoredResumeState> resume_states_;
  uint64_t next_resume_token_ = 0;
};

/// Convenience: parse + evaluate in one step (used by examples and tests).
Result<QueryAnswer> EvaluateQueryText(const RegionExtension& extension,
                                      std::string_view query_text,
                                      Evaluator::Options options = {});
Result<bool> EvaluateSentenceText(const RegionExtension& extension,
                                  std::string_view query_text,
                                  Evaluator::Options options = {});

}  // namespace lcdb

#endif  // LCDB_CORE_EVALUATOR_H_
