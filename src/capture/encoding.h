#ifndef LCDB_CAPTURE_ENCODING_H_
#define LCDB_CAPTURE_ENCODING_H_

#include <string>

#include "db/region_extension.h"

namespace lcdb {

/// The small coordinate property of Definition 6.2: the absolute values of
/// the coordinates of all points contained in 0-dimensional regions are
/// bounded by 2^(c*n), where n is the number of regions. The paper states
/// the bound as 2^O(n); `c` fixes the constant. (With bounded coordinates
/// both the numerator and denominator must fit, since rBIT addresses bits
/// by 0-dimensional-region rank.)
bool HasSmallCoordinateProperty(const RegionExtension& ext, size_t c = 1);

/// The binary word encoding of a database from the proof of Theorem 6.4 —
/// the input-tape representation β that the capture formula feeds to the
/// simulated Turing machine. Layout (exact format fixed by this library,
/// the proof only requires *some* RegFO-definable layout):
///
///   bounded part:
///     one record per 0-dimensional region in lexicographic order:
///       coord ("," coord)* ";" s_bit "|"
///       coord := ["-"] <numerator bits, LSB first> "/" <denominator bits>
///     then, per dimension i = 1..d: "#" followed by one s-bit per bounded
///     i-dimensional region in capture order;
///   "##"
///   unbounded part: per dimension i = 1..d: one s-bit per unbounded
///     i-dimensional region in capture order, "#"-separated.
///
/// s-bits are 1 iff the region is contained in S. The encoding is a
/// deterministic function of the region extension. Note that — exactly as
/// in the paper — different representations of the same abstract database
/// induce different arrangements and hence different encodings; a machine
/// deciding an *abstract* query must return the same verdict on all of them
/// (Section 2's abstractness requirement, exercised in the capture tests).
std::string EncodeDatabase(const RegionExtension& ext);

}  // namespace lcdb

#endif  // LCDB_CAPTURE_ENCODING_H_
