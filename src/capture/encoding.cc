#include "capture/encoding.h"

#include "capture/region_order.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// LSB-first bit string of a magnitude.
std::string BitsOf(const BigInt& value) {
  if (value.IsZero()) return "0";
  std::string out;
  for (size_t i = 0; i < value.BitLength(); ++i) {
    out.push_back(value.Bit(i) ? '1' : '0');
  }
  return out;
}

}  // namespace

bool HasSmallCoordinateProperty(const RegionExtension& ext, size_t c) {
  const size_t n = ext.num_regions();
  const BigInt bound = BigInt::Pow2(c * n);
  for (size_t r : ext.ZeroDimRegions()) {
    for (const Rational& coord : ext.ZeroDimPoint(r)) {
      if (coord.num().Abs() > bound || coord.den() > bound) return false;
    }
  }
  return true;
}

std::string EncodeDatabase(const RegionExtension& ext) {
  std::string out;
  const std::vector<size_t> order = CaptureRegionOrder(ext);
  const size_t d = ext.database().arity();

  // 0-dimensional records (the capture order lists them first among the
  // bounded regions, in lexicographic order).
  for (size_t r : ext.ZeroDimRegions()) {
    const Vec point = ext.ZeroDimPoint(r);
    for (size_t i = 0; i < d; ++i) {
      if (i > 0) out += ",";
      if (point[i].Sign() < 0) out += "-";
      out += BitsOf(point[i].num());
      out += "/";
      out += BitsOf(point[i].den());
    }
    out += ";";
    out += ext.RegionSubsetOfS(r) ? "1" : "0";
    out += "|";
  }

  // Bounded higher-dimensional regions, one bit each, dimension-major.
  for (size_t dim = 1; dim <= d; ++dim) {
    out += "#";
    for (size_t r : order) {
      if (!ext.RegionBounded(r)) continue;
      if (ext.RegionDim(r) != static_cast<int>(dim)) continue;
      out += ext.RegionSubsetOfS(r) ? "1" : "0";
    }
  }

  out += "##";

  // Unbounded regions, dimension-major.
  for (size_t dim = 1; dim <= d; ++dim) {
    for (size_t r : order) {
      if (ext.RegionBounded(r)) continue;
      if (ext.RegionDim(r) != static_cast<int>(dim)) continue;
      out += ext.RegionSubsetOfS(r) ? "1" : "0";
    }
    if (dim < d) out += "#";
  }
  return out;
}

}  // namespace lcdb
