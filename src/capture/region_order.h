#ifndef LCDB_CAPTURE_REGION_ORDER_H_
#define LCDB_CAPTURE_REGION_ORDER_H_

#include <vector>

#include "db/region_extension.h"

namespace lcdb {

/// The total order on regions used by the proof of Theorem 6.4 to lay the
/// database out on a Turing tape:
///
///  * bounded regions come before unbounded ones;
///  * within each group, lower dimension first ("If R, R' are bounded
///    regions and R' is of higher dimension than R, then R < R'");
///  * 0-dimensional regions are ordered lexicographically by their point;
///  * bounded i-dimensional regions (i > 0) are ordered by the
///    lexicographic order on the sorted tuple of ranks of 0-dimensional
///    regions adjacent to them (the paper's "(i+1)-tuples of 0-dimensional
///    regions");
///  * unbounded regions are ordered by the sorted tuple of ranks of their
///    adjacent bounded regions (the paper anchors 1-dimensional unbounded
///    regions at their unique adjacent 0-dimensional region and proceeds
///    analogously upwards).
///
/// The paper's sketch does not fully resolve ties (e.g. two regions with
/// the same adjacent vertex set); we break them by the region's witness
/// point, lexicographically — a deterministic, representation-independent
/// refinement (documented in DESIGN.md).
///
/// Returns the region ids in ascending order.
std::vector<size_t> CaptureRegionOrder(const RegionExtension& ext);

/// Rank of every region in the capture order (inverse permutation).
std::vector<size_t> CaptureRegionRanks(const RegionExtension& ext);

}  // namespace lcdb

#endif  // LCDB_CAPTURE_REGION_ORDER_H_
