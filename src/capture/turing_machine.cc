#include "capture/turing_machine.h"

namespace lcdb {

void TuringMachine::AddTransition(int state, char read, int next_state,
                                  char write, Move move) {
  delta_[{state, read}] = Transition{next_state, write, move};
}

TuringMachine::RunResult TuringMachine::Run(const std::string& input,
                                            size_t max_steps) const {
  std::string tape = input.empty() ? " " : input;
  size_t head = 0;
  int state = start_;
  RunResult result;
  while (result.steps < max_steps) {
    if (state == accept_ || state == reject_) {
      result.halted = true;
      result.accepted = state == accept_;
      return result;
    }
    auto it = delta_.find({state, tape[head]});
    if (it == delta_.end()) {
      result.halted = true;
      result.accepted = false;
      return result;
    }
    tape[head] = it->second.write;
    switch (it->second.move) {
      case Move::kLeft:
        if (head == 0) {
          tape.insert(tape.begin(), ' ');
        } else {
          --head;
        }
        break;
      case Move::kRight:
        ++head;
        if (head == tape.size()) tape.push_back(' ');
        break;
      case Move::kStay:
        break;
    }
    state = it->second.next_state;
    ++result.steps;
  }
  return result;  // not halted
}

namespace {
constexpr int kScan = 0;
constexpr int kAfterSemi = 1;
constexpr int kAccept = 100;
constexpr int kReject = 101;
}  // namespace

TuringMachine TuringMachine::SNonEmptyChecker() {
  // Accept on the first '1' that is an S-membership bit: the character
  // right after a ';', or any character inside the '#' blocks. To keep the
  // machine simple it tracks whether it is inside the coordinate part of a
  // record (between '|'/start and ';') — bits there are coordinate data and
  // must be ignored.
  TuringMachine tm(kScan, kAccept, kReject);
  // kScan: inside coordinate data; skip everything until ';' or '#'.
  for (char c : std::string("01-/,")) {
    tm.AddTransition(kScan, c, kScan, c, Move::kRight);
  }
  tm.AddTransition(kScan, ';', kAfterSemi, ';', Move::kRight);
  tm.AddTransition(kScan, '|', kScan, '|', Move::kRight);
  // After the first '#', every 0/1 is a membership bit: reuse kAfterSemi
  // but return to it on separators.
  tm.AddTransition(kScan, '#', kAfterSemi, '#', Move::kRight);
  tm.AddTransition(kScan, ' ', kReject, ' ', Move::kStay);
  // kAfterSemi: the current cell is a membership bit (or a separator).
  tm.AddTransition(kAfterSemi, '1', kAccept, '1', Move::kStay);
  tm.AddTransition(kAfterSemi, '0', kAfterSemi, '0', Move::kRight);
  tm.AddTransition(kAfterSemi, '|', kScan, '|', Move::kRight);
  tm.AddTransition(kAfterSemi, '#', kAfterSemi, '#', Move::kRight);
  tm.AddTransition(kAfterSemi, ' ', kReject, ' ', Move::kStay);
  return tm;
}

TuringMachine TuringMachine::ZeroDimParityChecker() {
  // Count '|' before the first '#' modulo 2; accept iff even.
  constexpr int kEven = 0;
  constexpr int kOdd = 1;
  TuringMachine tm(kEven, kAccept, kReject);
  for (char c : std::string("01-/,;")) {
    tm.AddTransition(kEven, c, kEven, c, Move::kRight);
    tm.AddTransition(kOdd, c, kOdd, c, Move::kRight);
  }
  tm.AddTransition(kEven, '|', kOdd, '|', Move::kRight);
  tm.AddTransition(kOdd, '|', kEven, '|', Move::kRight);
  tm.AddTransition(kEven, '#', kAccept, '#', Move::kStay);
  tm.AddTransition(kOdd, '#', kReject, '#', Move::kStay);
  tm.AddTransition(kEven, ' ', kAccept, ' ', Move::kStay);
  tm.AddTransition(kOdd, ' ', kReject, ' ', Move::kStay);
  return tm;
}

TuringMachine TuringMachine::AllVerticesInSChecker() {
  TuringMachine tm(kScan, kAccept, kReject);
  for (char c : std::string("01-/,|")) {
    tm.AddTransition(kScan, c, kScan, c, Move::kRight);
  }
  tm.AddTransition(kScan, ';', kAfterSemi, ';', Move::kRight);
  tm.AddTransition(kScan, '#', kAccept, '#', Move::kStay);
  tm.AddTransition(kScan, ' ', kAccept, ' ', Move::kStay);
  tm.AddTransition(kAfterSemi, '1', kScan, '1', Move::kRight);
  tm.AddTransition(kAfterSemi, '0', kReject, '0', Move::kStay);
  return tm;
}

}  // namespace lcdb
