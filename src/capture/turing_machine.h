#ifndef LCDB_CAPTURE_TURING_MACHINE_H_
#define LCDB_CAPTURE_TURING_MACHINE_H_

#include <map>
#include <string>
#include <vector>

#include "util/status.h"

namespace lcdb {

/// A deterministic single-tape Turing machine — the computation model of
/// the capture theorems (Theorems 6.4, 7.4). The capture proof encodes the
/// run of such a machine on the database encoding into a RegLFP sentence;
/// this simulator runs the machine on the very same encoding so the two
/// sides of the theorem can be compared experimentally (see DESIGN.md's
/// substitution table).
class TuringMachine {
 public:
  enum class Move { kLeft, kRight, kStay };

  struct Transition {
    int next_state = 0;
    char write = ' ';
    Move move = Move::kStay;
  };

  /// States are non-negative integers; `accept` and `reject` are terminal.
  TuringMachine(int start, int accept, int reject)
      : start_(start), accept_(accept), reject_(reject) {}

  /// Adds delta(state, read) = (next, write, move).
  void AddTransition(int state, char read, int next_state, char write,
                     Move move);

  struct RunResult {
    bool halted = false;
    bool accepted = false;
    size_t steps = 0;
  };

  /// Runs on `input` (blank = ' '); missing transitions reject. Gives up
  /// after `max_steps`.
  RunResult Run(const std::string& input, size_t max_steps = 1u << 20) const;

  /// A machine accepting iff some S-membership bit in a database encoding
  /// is 1, i.e. iff S is nonempty (scans for '1' in the positions following
  /// ';' and in the bit blocks after '#'). Accepts exactly when the RegFO
  /// sentence "exists x̄ S(x̄)" holds.
  static TuringMachine SNonEmptyChecker();

  /// A machine accepting iff the number of 0-dimensional regions is even
  /// (counts '|' separators before the first '#'). Parity is a PTIME — in
  /// fact LOGSPACE — query that is not RegFO-definable; it needs the
  /// fixed-point machinery of Theorem 6.4.
  static TuringMachine ZeroDimParityChecker();

  /// A machine accepting iff every 0-dimensional region lies in S (all
  /// ';'-following bits are 1).
  static TuringMachine AllVerticesInSChecker();

 private:
  int start_;
  int accept_;
  int reject_;
  std::map<std::pair<int, char>, Transition> delta_;
};

}  // namespace lcdb

#endif  // LCDB_CAPTURE_TURING_MACHINE_H_
