#include "capture/region_order.h"

#include <algorithm>

#include "util/status.h"

namespace lcdb {

namespace {

/// Sort key for one region.
struct OrderKey {
  bool unbounded = false;
  int dim = 0;
  std::vector<size_t> anchor_ranks;  // ranks of adjacent anchor regions
  Vec witness;                       // deterministic tie-break
};

bool KeyLess(const OrderKey& a, const OrderKey& b) {
  if (a.unbounded != b.unbounded) return !a.unbounded;
  if (a.dim != b.dim) return a.dim < b.dim;
  if (a.anchor_ranks != b.anchor_ranks) return a.anchor_ranks < b.anchor_ranks;
  return VecLexCompare(a.witness, b.witness) < 0;
}

}  // namespace

std::vector<size_t> CaptureRegionOrder(const RegionExtension& ext) {
  const size_t n = ext.num_regions();
  // Ranks of 0-dimensional regions in their lexicographic order.
  std::vector<size_t> zero_rank(n, n);
  const std::vector<size_t>& zeros = ext.ZeroDimRegions();
  for (size_t i = 0; i < zeros.size(); ++i) zero_rank[zeros[i]] = i;

  std::vector<OrderKey> keys(n);
  for (size_t r = 0; r < n; ++r) {
    OrderKey& key = keys[r];
    key.unbounded = !ext.RegionBounded(r);
    key.dim = ext.RegionDim(r);
    key.witness = ext.RegionWitness(r);
    if (key.dim == 0) {
      key.anchor_ranks = {zero_rank[r]};
      continue;
    }
    // Anchor on adjacent 0-dimensional regions; unbounded regions also
    // anchor on adjacent bounded regions of any dimension (their "(p, q)"
    // data in the proof reduces to which bounded skeleton they touch).
    for (size_t g = 0; g < n; ++g) {
      if (!ext.Adjacent(r, g)) continue;
      if (ext.RegionDim(g) == 0) {
        key.anchor_ranks.push_back(zero_rank[g]);
      } else if (key.unbounded && ext.RegionBounded(g)) {
        // Offset bounded non-vertex anchors past the vertex ranks so the
        // two anchor classes cannot collide.
        key.anchor_ranks.push_back(zeros.size() + g);
      }
    }
    std::sort(key.anchor_ranks.begin(), key.anchor_ranks.end());
  }

  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](size_t a, size_t b) { return KeyLess(keys[a], keys[b]); });
  return order;
}

std::vector<size_t> CaptureRegionRanks(const RegionExtension& ext) {
  std::vector<size_t> order = CaptureRegionOrder(ext);
  std::vector<size_t> ranks(order.size());
  for (size_t i = 0; i < order.size(); ++i) ranks[order[i]] = i;
  return ranks;
}

}  // namespace lcdb
