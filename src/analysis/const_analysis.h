#ifndef LCDB_ANALYSIS_CONST_ANALYSIS_H_
#define LCDB_ANALYSIS_CONST_ANALYSIS_H_

#include <optional>
#include <string>
#include <vector>

#include "analysis/analysis_stats.h"
#include "constraint/dnf_formula.h"
#include "core/ast.h"
#include "plan/plan_ir.h"

namespace lcdb {

// Compile-time constant analysis shared by the optimizer's dead-branch
// pruning (plan/optimizer.cc) and the analyzer's vacuity diagnostics
// (analysis/analyzer.cc). Both layers ask the same questions of the same
// ambient kernel; its canonical LRU memoizes the underlying oracle
// decisions, so a guard the analyzer classified costs the optimizer a cache
// hit, never a second LP solve.

// ---- Syntactic classification of plan nodes (no oracle). The folding
// pass uses exactly these so every fold stays representation-identical. ----

inline bool IsConstFormula(const PlanNode& n) {
  return n.op == PlanOp::kConstFormula;
}
inline bool IsConstTrueFormula(const PlanNode& n) {
  return IsConstFormula(n) && n.const_formula->IsSyntacticallyTrue();
}
inline bool IsConstFalseFormula(const PlanNode& n) {
  return IsConstFormula(n) && n.const_formula->IsSyntacticallyFalse();
}
inline bool IsConstBool(const PlanNode& n) {
  return n.op == PlanOp::kConstBool;
}

/// Kernel-backed emptiness of an environment-independent formula: the one
/// semantic truth question both the kNonEmpty fold and the analyzer's
/// vacuous-subquery diagnostic reduce to.
bool ConstFormulaProvablyEmpty(const DnfFormula& formula);

// ---- AST-level guard classification. ----

/// Compile-time truth value of a guard.
enum class GuardTruth {
  kUnknown,
  kAlwaysTrue,
  kAlwaysFalse,
};

struct GuardClassifyOptions {
  /// Guards whose lowered formula exceeds this atom count are left
  /// unclassified — tautology checking negates the formula, which is
  /// exponential in the worst case.
  size_t max_atoms = 64;
};

/// Lowers an element-pure subtree — true/false/compares combined with
/// not/and/or/implies/iff, no region atoms, no quantifiers, no database
/// relation — to a quantifier-free DNF over `columns` (the evaluator's
/// element-variable space), mirroring the planner's kCompare lowering
/// atom for atom. Returns nullopt for subtrees that are not element-pure.
std::optional<DnfFormula> LowerElementPure(
    const FormulaNode& node, const std::vector<std::string>& columns);

/// Classifies an element-pure guard as provably unsatisfiable, provably
/// tautological, or unknown, consulting the ambient kernel through the DNF
/// algebra. Counts its work into `stats` when non-null.
GuardTruth ClassifyGuard(const FormulaNode& node,
                         const std::vector<std::string>& columns,
                         const GuardClassifyOptions& options,
                         AnalysisStats* stats);

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_CONST_ANALYSIS_H_
