#include "analysis/analyzer.h"

#include <algorithm>
#include <limits>
#include <map>
#include <set>
#include <utility>

#include "core/parser.h"

namespace lcdb {

namespace {

/// Flattens a tree of `op` nodes into its maximal non-`op` subtrees.
void Flatten(const FormulaNode& node, NodeKind op,
             std::vector<const FormulaNode*>* out) {
  if (node.kind == op) {
    Flatten(*node.children[0], op, out);
    Flatten(*node.children[1], op, out);
    return;
  }
  out->push_back(&node);
}

/// Any set atom of `set_var`, for pointing LCDB001/002 at a `<->` operand
/// (both polarities — every occurrence is non-positive).
const FormulaNode* FindAnyOccurrence(const FormulaNode& node,
                                     const std::string& set_var) {
  if (node.kind == NodeKind::kSetAtom) {
    return node.set_var == set_var ? &node : nullptr;
  }
  for (const auto& child : node.children) {
    if (const FormulaNode* a = FindAnyOccurrence(*child, set_var)) return a;
  }
  return nullptr;
}

/// The set atom IsPositiveIn rejects: the first occurrence of `set_var`
/// reachable at negative polarity. Mirrors IsPositiveIn's polarity rules
/// (kNot flips, `->` flips its left side, `<->` is both polarities).
const FormulaNode* FindNonPositiveOccurrence(const FormulaNode& node,
                                             const std::string& set_var,
                                             bool polarity) {
  switch (node.kind) {
    case NodeKind::kSetAtom:
      return (node.set_var == set_var && !polarity) ? &node : nullptr;
    case NodeKind::kNot:
      return FindNonPositiveOccurrence(*node.children[0], set_var, !polarity);
    case NodeKind::kImplies: {
      if (const FormulaNode* a =
              FindNonPositiveOccurrence(*node.children[0], set_var, !polarity))
        return a;
      return FindNonPositiveOccurrence(*node.children[1], set_var, polarity);
    }
    case NodeKind::kIff: {
      if (const FormulaNode* a = FindAnyOccurrence(*node.children[0], set_var))
        return a;
      return FindAnyOccurrence(*node.children[1], set_var);
    }
    default:
      for (const auto& child : node.children) {
        if (const FormulaNode* a =
                FindNonPositiveOccurrence(*child, set_var, polarity))
          return a;
      }
      return nullptr;
  }
}

class Analyzer {
 public:
  Analyzer(const FormulaNode& root, const TypeInfo& info,
           const AnalyzerOptions& options)
      : root_(root), info_(info), options_(options) {}

  AnalysisResult Run() {
    result_.stats.queries_analyzed = 1;
    if (Walk(root_)) ClassifyAndReport(root_);
    CheckRangeRestriction();
    // Source order (span-less diagnostics last), ties broken by code, so
    // renderings and the JSON stream are deterministic.
    std::stable_sort(
        result_.diagnostics.begin(), result_.diagnostics.end(),
        [](const Diagnostic& a, const Diagnostic& b) {
          const size_t ka = a.span.valid()
                                ? a.span.begin
                                : std::numeric_limits<size_t>::max();
          const size_t kb = b.span.valid()
                                ? b.span.begin
                                : std::numeric_limits<size_t>::max();
          if (ka != kb) return ka < kb;
          return a.code < b.code;
        });
    // Deduplicate: a guard that several walks classify (e.g. one inside a
    // fixpoint body revisited per polarity) would repeat its LCDB006/007
    // warning verbatim and make --lint output depend on walk order. Keep
    // one diagnostic per (code, span, message) and recount the stats.
    auto last = std::unique(
        result_.diagnostics.begin(), result_.diagnostics.end(),
        [](const Diagnostic& a, const Diagnostic& b) {
          return a.code == b.code && a.span.begin == b.span.begin &&
                 a.span.end == b.span.end && a.message == b.message;
        });
    if (last != result_.diagnostics.end()) {
      result_.diagnostics.erase(last, result_.diagnostics.end());
      result_.stats.diagnostics = result_.diagnostics.size();
      result_.stats.errors = 0;
      result_.stats.warnings = 0;
      result_.stats.notes = 0;
      for (const Diagnostic& d : result_.diagnostics) {
        switch (d.severity) {
          case DiagSeverity::kError:
            ++result_.stats.errors;
            break;
          case DiagSeverity::kWarning:
            ++result_.stats.warnings;
            break;
          case DiagSeverity::kNote:
            ++result_.stats.notes;
            break;
        }
      }
    }
    return std::move(result_);
  }

 private:
  void Emit(std::string code, DiagSeverity severity, std::string message,
            SourceSpan span, std::string fix) {
    ++result_.stats.diagnostics;
    switch (severity) {
      case DiagSeverity::kError:
        ++result_.stats.errors;
        break;
      case DiagSeverity::kWarning:
        ++result_.stats.warnings;
        break;
      case DiagSeverity::kNote:
        ++result_.stats.notes;
        break;
    }
    result_.diagnostics.push_back(Diagnostic{std::move(code), severity,
                                             std::move(message), span,
                                             std::move(fix)});
  }

  /// Per-node checks plus guard discovery. Returns true when the subtree is
  /// element-pure; an element-pure child of an impure parent is a maximal
  /// guard and gets classified exactly once.
  bool Walk(const FormulaNode& node) {
    NodeChecks(node);
    std::vector<bool> pure;
    pure.reserve(node.children.size());
    for (const auto& child : node.children) pure.push_back(Walk(*child));
    switch (node.kind) {
      case NodeKind::kTrue:
      case NodeKind::kFalse:
      case NodeKind::kCompare:
        return true;
      case NodeKind::kNot:
        return pure[0];
      case NodeKind::kAnd:
      case NodeKind::kOr:
      case NodeKind::kImplies:
      case NodeKind::kIff:
        if (pure[0] && pure[1]) return true;
        for (size_t i = 0; i < pure.size(); ++i) {
          if (pure[i]) ClassifyAndReport(*node.children[i]);
        }
        return false;
      default:
        for (size_t i = 0; i < pure.size(); ++i) {
          if (pure[i]) ClassifyAndReport(*node.children[i]);
        }
        return false;
    }
  }

  // ---- LCDB006 / LCDB007: kernel-backed guard truth. ----

  void ClassifyAndReport(const FormulaNode& node) {
    if (!options_.classify_guards) return;
    // Literal true/false is intentional, not a mistake to diagnose.
    if (node.kind == NodeKind::kTrue || node.kind == NodeKind::kFalse) return;
    const GuardTruth truth = ClassifyGuard(node, info_.all_element_vars,
                                           options_.guard, &result_.stats);
    if (truth == GuardTruth::kAlwaysFalse) {
      Emit("LCDB006", DiagSeverity::kWarning,
           "subquery is provably unsatisfiable (vacuous)", node.span,
           "this branch contributes nothing; remove it or fix the bounds");
    } else if (truth == GuardTruth::kAlwaysTrue) {
      Emit("LCDB007", DiagSeverity::kWarning,
           "guard is provably always true", node.span,
           "the guard never filters anything; drop it");
    }
  }

  void NodeChecks(const FormulaNode& node) {
    switch (node.kind) {
      case NodeKind::kLfp:
        FixpointChecks(node);
        if (!IsPositiveIn(*node.children[0], node.set_var)) {
          const FormulaNode* occurrence = FindNonPositiveOccurrence(
              *node.children[0], node.set_var, true);
          Emit("LCDB001", DiagSeverity::kError,
               "LFP body is not positive in the fixpoint variable '" +
                   node.set_var + "'",
               occurrence != nullptr ? occurrence->span : node.span,
               "every occurrence of '" + node.set_var +
                   "' must be under an even number of negations "
                   "(Definition 5.1); use ifp or pfp for non-monotone "
                   "induction");
        }
        break;
      case NodeKind::kIfp:
      case NodeKind::kPfp:
        FixpointChecks(node);
        if (!IsPositiveIn(*node.children[0], node.set_var)) {
          const FormulaNode* occurrence = FindNonPositiveOccurrence(
              *node.children[0], node.set_var, true);
          Emit("LCDB002", DiagSeverity::kNote,
               std::string(node.kind == NodeKind::kIfp ? "IFP" : "PFP") +
                   " body is not positive in '" + node.set_var +
                   "'; stages are not monotone" +
                   (node.kind == NodeKind::kIfp
                        ? " (IFP stays inflationary by construction)"
                        : " (PFP may fail to converge)"),
               occurrence != nullptr ? occurrence->span : node.span, "");
        }
        break;
      case NodeKind::kTc:
      case NodeKind::kDtc:
        CheckGrowth(node);
        CheckUnusedBound(node, node.bound_vars, /*element_sort=*/false);
        if (node.region_args == node.region_args2) {
          Emit("LCDB010", DiagSeverity::kNote,
               "transitive closure applied to two identical tuples is "
               "reflexively true",
               node.span,
               "the reflexive-transitive closure always relates a tuple to "
               "itself");
        }
        if (node.kind == NodeKind::kDtc) CheckDtcDeterminism(node);
        break;
      case NodeKind::kExistsElem:
      case NodeKind::kForallElem:
        CheckUnusedBound(node, node.bound_vars, /*element_sort=*/true);
        break;
      case NodeKind::kExistsRegion:
      case NodeKind::kForallRegion:
        CheckUnusedBound(node, node.bound_vars, /*element_sort=*/false);
        break;
      case NodeKind::kHull:
        CheckUnusedBound(node, node.bound_vars, /*element_sort=*/true);
        break;
      default:
        break;
    }
  }

  void FixpointChecks(const FormulaNode& node) {
    CheckGrowth(node);
    CheckUnusedBound(node, node.bound_vars, /*element_sort=*/false);
    // LCDB009: a body independent of M reaches its fixed point at stage 1.
    if (info_.of(*node.children[0]).set_vars.count(node.set_var) == 0) {
      Emit("LCDB009", DiagSeverity::kWarning,
           "fixpoint body never references its set variable '" +
               node.set_var + "'; the fixpoint is reached at stage 1",
           node.span,
           "the operator is equivalent to its body; evaluate the body "
           "directly");
    }
  }

  // ---- LCDB004: region tuple space growth, mirroring the evaluator's
  // CheckTupleSpaces loop shape so the warning predicts the exact refusal. --

  void CheckGrowth(const FormulaNode& node) {
    const size_t k = node.bound_vars.size();
    const size_t n = options_.num_regions;
    if (k == 0 || n <= 1) return;
    constexpr size_t kMaxSize = std::numeric_limits<size_t>::max();
    size_t space = 1;
    for (size_t i = 0; i < k; ++i) {
      if (space > kMaxSize / n) {
        Emit("LCDB004", DiagSeverity::kError,
             "operator tuple space n^k overflows the addressable index "
             "space (n=" +
                 std::to_string(n) + ", k=" + std::to_string(k) + ")",
             node.span, "reduce the operator arity");
        return;
      }
      space *= n;
    }
    if (space > options_.max_tuple_space) {
      Emit("LCDB004", DiagSeverity::kWarning,
           "operator tuple space n^k = " + std::to_string(space) +
               " exceeds max_tuple_space (" +
               std::to_string(options_.max_tuple_space) +
               "); Evaluate refuses such queries with kResourceExhausted",
           node.span,
           "reduce the operator arity or raise Options::max_tuple_space");
    }
  }

  // ---- LCDB005: determinism precondition of Definition 7.2. ----

  void CheckDtcDeterminism(const FormulaNode& node) {
    const size_t m = node.bound_vars.size() / 2;
    std::vector<const FormulaNode*> disjuncts;
    Flatten(*node.children[0], NodeKind::kOr, &disjuncts);
    for (const FormulaNode* disjunct : disjuncts) {
      std::vector<const FormulaNode*> conjuncts;
      Flatten(*disjunct, NodeKind::kAnd, &conjuncts);
      std::string unpinned;
      for (size_t i = m; i < node.bound_vars.size(); ++i) {
        const std::string& target = node.bound_vars[i];
        bool pinned = false;
        for (const FormulaNode* conjunct : conjuncts) {
          if (conjunct->kind == NodeKind::kRegionEq &&
              (conjunct->region_args[0] == target ||
               conjunct->region_args[1] == target)) {
            pinned = true;
            break;
          }
        }
        if (!pinned) {
          if (!unpinned.empty()) unpinned += ", ";
          unpinned += "'" + target + "'";
        }
      }
      if (!unpinned.empty()) {
        Emit("LCDB005", DiagSeverity::kWarning,
             "DTC body disjunct does not pin target variable(s) " + unpinned +
                 " with a region equality; the edge relation may be "
                 "non-functional, and DTC drops every tuple with more than "
                 "one successor (Definition 7.2)",
             disjunct->span,
             "conjoin an equality determining each primed variable, or use "
             "tc if non-deterministic edges are intended");
      }
    }
  }

  // ---- LCDB008: unused bound variables. ----

  void CheckUnusedBound(const FormulaNode& node,
                        const std::vector<std::string>& bound,
                        bool element_sort) {
    const FreeVars& body_free = info_.of(*node.children[0]);
    const std::set<std::string>& used =
        element_sort ? body_free.element : body_free.region;
    for (const std::string& var : bound) {
      if (used.count(var) == 0) {
        Emit("LCDB008", DiagSeverity::kWarning,
             "bound variable '" + var + "' is never used in the body",
             node.span, "remove the binding or use the variable");
      }
    }
  }

  // ---- LCDB003: range restriction of the root's free element variables. --

  void CheckRangeRestriction() {
    const FreeVars& root_free = info_.of(root_);
    if (root_free.element.empty()) return;
    PolarityWalk(root_, /*can_pos=*/true, /*can_neg=*/false);
    for (const std::string& var : root_free.element) {
      if (positive_.count(var) != 0) continue;
      auto it = first_atom_.find(var);
      Emit("LCDB003", DiagSeverity::kError,
           "free variable '" + var +
               "' occurs only under negative polarity; the answer is "
               "range-unrestricted in it",
           it != first_atom_.end() ? it->second->span : root_.span,
           "mention '" + var +
               "' in at least one non-negated atom (a relation atom, "
               "in(...), or a comparison)");
    }
  }

  void NoteTerm(const ElementTerm& term, const FormulaNode& atom,
                bool can_pos) {
    for (const auto& entry : term.coeffs) {
      if (first_atom_.count(entry.first) == 0) first_atom_[entry.first] = &atom;
      if (can_pos) positive_.insert(entry.first);
    }
  }

  void PolarityWalk(const FormulaNode& node, bool can_pos, bool can_neg) {
    switch (node.kind) {
      case NodeKind::kCompare:
        NoteTerm(node.lhs, node, can_pos);
        NoteTerm(node.rhs, node, can_pos);
        return;
      case NodeKind::kRelationAtom:
      case NodeKind::kInRegion:
        for (const ElementTerm& term : node.terms) {
          NoteTerm(term, node, can_pos);
        }
        return;
      case NodeKind::kHull:
        // The applied terms are atoms at the hull's polarity; the body's
        // element variables are bound, so its occurrences never concern the
        // root's free variables (no shadowing).
        for (const ElementTerm& term : node.terms) {
          NoteTerm(term, node, can_pos);
        }
        PolarityWalk(*node.children[0], can_pos, can_neg);
        return;
      case NodeKind::kNot:
        PolarityWalk(*node.children[0], can_neg, can_pos);
        return;
      case NodeKind::kImplies:
        PolarityWalk(*node.children[0], can_neg, can_pos);
        PolarityWalk(*node.children[1], can_pos, can_neg);
        return;
      case NodeKind::kIff:
        PolarityWalk(*node.children[0], true, true);
        PolarityWalk(*node.children[1], true, true);
        return;
      default:
        for (const auto& child : node.children) {
          PolarityWalk(*child, can_pos, can_neg);
        }
        return;
    }
  }

  const FormulaNode& root_;
  const TypeInfo& info_;
  const AnalyzerOptions& options_;
  AnalysisResult result_;
  // LCDB003 state: variables seen in a positive-polarity atom, and the
  // first atom mentioning each variable (the diagnostic's span).
  std::set<std::string> positive_;
  std::map<std::string, const FormulaNode*> first_atom_;
};

}  // namespace

const Diagnostic* AnalysisResult::FirstError() const {
  for (const Diagnostic& d : diagnostics) {
    if (d.severity == DiagSeverity::kError) return &d;
  }
  return nullptr;
}

AnalysisResult AnalyzeQuery(const FormulaNode& root, const TypeInfo& info,
                            const AnalyzerOptions& options) {
  return Analyzer(root, info, options).Run();
}

Status AnalysisErrorStatus(const AnalysisResult& result,
                           std::string_view source) {
  const Diagnostic* first = result.FirstError();
  if (first == nullptr) return Status::Ok();
  std::string message =
      "query rejected by static analysis:\n" + RenderDiagnostic(*first, source);
  if (result.stats.errors > 1) {
    message += "(and " + std::to_string(result.stats.errors - 1) +
               " more error(s))\n";
  }
  return Status::InvalidArgument(message);
}

LintReport LintQueryText(std::string_view query_text,
                         const ConstraintDatabase& db,
                         const AnalyzerOptions& options) {
  LintReport report;
  Result<FormulaPtr> parsed = ParseQuery(query_text, db.relation_name());
  if (!parsed.ok()) {
    report.diagnostics.push_back(
        Diagnostic{"LCDB900", DiagSeverity::kError,
                   parsed.status().message(), SourceSpan{},
                   "fix the syntax error; nothing else can be checked"});
    report.stats.diagnostics = 1;
    report.stats.errors = 1;
    return report;
  }
  report.parse_ok = true;
  Result<TypeInfo> info = TypeCheck(**parsed, db);
  if (!info.ok()) {
    report.diagnostics.push_back(
        Diagnostic{"LCDB901", DiagSeverity::kError, info.status().message(),
                   SourceSpan{},
                   "fix the type error; analysis needs a typed AST"});
    report.stats.diagnostics = 1;
    report.stats.errors = 1;
    return report;
  }
  report.typecheck_ok = true;
  AnalysisResult result = AnalyzeQuery(**parsed, *info, options);
  report.diagnostics = std::move(result.diagnostics);
  report.stats = result.stats;
  return report;
}

}  // namespace lcdb
