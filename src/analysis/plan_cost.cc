#include "analysis/plan_cost.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "util/status.h"

namespace lcdb {

namespace {

/// Everything saturates here instead of overflowing to inf: large enough to
/// order any two realistic plans, small enough that sums of many capped
/// terms still fit a double exactly-ish and a uint64 after truncation.
constexpr double kOpsCap = 1e18;
/// Row estimates cap much lower — DNF sizes beyond this are equally "huge"
/// and letting them grow would drown every other term in the ops total.
constexpr double kRowCap = 1e6;
/// Stage-count estimate cap for fixpoint iteration (Kleene reaches the
/// fixed point in at most space+1 stages; PFP may cycle longer but the
/// evaluator bounds it too).
constexpr double kStageCap = 4096.0;

double Capped(double v, double cap) { return v < cap ? v : cap; }

double PowD(double base, size_t exp, double cap) {
  double out = 1.0;
  for (size_t i = 0; i < exp; ++i) {
    out *= base;
    if (out >= cap) return cap;
  }
  return out;
}

std::string Approx(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3g", v);
  return buf;
}

/// The tier-2 pass as a class so the traversal state (topological order,
/// stage multipliers) stays together. One instance analyzes one plan.
class CostAnalyzer {
 public:
  CostAnalyzer(const CompiledPlan& plan, const PlanCostOptions& options)
      : plan_(plan),
        options_(options),
        n_(std::max<size_t>(plan.num_regions, 1)),
        m_(std::max<size_t>(plan.num_columns, 1)) {}

  PlanCostReport Run() {
    Postorder(*plan_.root);
    // Bottom-up rows first (children precede parents in postorder) ...
    for (const PlanNode* node : order_) {
      report_.costs[node].est_rows = EstRows(*node);
    }
    // ... then calls top-down: reverse postorder is a topological order of
    // the DAG with every parent before its children, so arrivals are final
    // by the time a node distributes them onward.
    arrivals_[order_.back()] += 1.0;  // the root
    stage_mult_[order_.back()] = 1.0;
    for (size_t i = order_.size(); i-- > 0;) {
      Distribute(*order_[i]);
    }
    Finish();
    return std::move(report_);
  }

 private:
  void Postorder(const PlanNode& node) {
    if (!seen_.insert(&node).second) return;
    for (const PlanPtr& child : node.children) Postorder(*child);
    order_.push_back(&node);
  }

  double Rows(const PlanNode& node) const {
    return report_.costs.at(&node).est_rows;
  }

  /// Result-cardinality estimate: disjuncts for symbolic nodes, 1 for
  /// boolean ones. Mirrors how the DNF algebra combines disjunct counts
  /// (And multiplies, Or adds, Negate can blow up) with hard caps.
  double EstRows(const PlanNode& node) const {
    auto child = [&](size_t i) { return Rows(*node.children[i]); };
    switch (node.op) {
      case PlanOp::kConstFormula:
        return std::max<double>(node.const_formula->disjuncts().size(), 1.0);
      case PlanOp::kInRegion:
      case PlanOp::kLiftBool:
        return 1.0;
      case PlanOp::kNegateSym:
        // CNF->DNF distribution; estimate a doubling rather than the true
        // exponential so one negation does not dominate every total.
        return Capped(2.0 * child(0), kRowCap);
      case PlanOp::kAndSym:
        return Capped(child(0) * child(1), kRowCap);
      case PlanOp::kOrSym:
        return Capped(child(0) + child(1), kRowCap);
      case PlanOp::kImpliesSym:
        return Capped(2.0 * child(0) + child(1), kRowCap);
      case PlanOp::kIffSym:
        return Capped(4.0 * child(0) * child(1), kRowCap);
      case PlanOp::kHull:
        return 1.0;  // a closed convex set is one conjunction
      case PlanOp::kExistsElim:
      case PlanOp::kForallElim:
        return Capped(child(0), kRowCap);
      case PlanOp::kExpandExists:
        return Capped(static_cast<double>(n_) * child(0), kRowCap);
      case PlanOp::kExpandForall:
        return Capped(PowD(child(0), std::min<size_t>(n_, 8), kRowCap),
                      kRowCap);
      default:
        return 1.0;  // boolean operators
    }
  }

  double StageEstimate(const PlanNode& node) const {
    const double space = PowD(static_cast<double>(n_),
                              node.bound_vars.size(), kOpsCap);
    return Capped(space + 1.0, kStageCap);
  }

  /// Memo key space of a cache-marked node: one entry per assignment of
  /// its free region variables; set-dependent nodes key by stage version
  /// too, so the enclosing fixpoint's stage count multiplies in.
  double KeySpace(const PlanNode& node) const {
    double space =
        PowD(static_cast<double>(n_), node.free_region.size(), kOpsCap);
    if (!node.free_sets.empty()) {
      auto it = stage_mult_.find(&node);
      space = Capped(space * (it == stage_mult_.end() ? 1.0 : it->second),
                     kOpsCap);
    }
    return space;
  }

  /// Pushes this node's call count into its children and fixes its own
  /// executions (memo-collapsed). Arrivals of `node` are final here.
  void Distribute(const PlanNode& node) {
    const double arrivals = arrivals_[&node];
    const double stage_mult = stage_mult_[&node];
    PlanCostEstimate& est = report_.costs[&node];
    double executions = arrivals;
    if (node.cache == CachePolicy::kByRegionKey) {
      const double key_space = KeySpace(node);
      executions = std::min(arrivals, key_space);
      // Dead cache: no key can ever repeat, every store is write-once.
      est.dead_cache = arrivals <= key_space + 0.5;
    }
    est.est_calls = executions;
    est.est_bigint_ops = Capped(executions * PerCallOps(node), kOpsCap);

    // Loop multipliers of this node's children.
    double child_mult = executions;
    double child_stage = stage_mult;
    switch (node.op) {
      case PlanOp::kExpandExists:
      case PlanOp::kExpandForall:
      case PlanOp::kAnyRegion:
      case PlanOp::kAllRegion:
        child_mult = Capped(executions * static_cast<double>(n_), kOpsCap);
        break;
      case PlanOp::kFixpointMember: {
        const double space = PowD(static_cast<double>(n_),
                                  node.bound_vars.size(), kOpsCap);
        const double stages = StageEstimate(node);
        child_mult = Capped(executions * stages * space, kOpsCap);
        child_stage = Capped(stage_mult * stages, kOpsCap);
        break;
      }
      case PlanOp::kClosureMember: {
        // One body evaluation per (from, to) tuple pair.
        const double space = PowD(static_cast<double>(n_),
                                  node.bound_vars.size(), kOpsCap);
        child_mult = Capped(executions * space * space, kOpsCap);
        break;
      }
      default:
        break;
    }
    for (const PlanPtr& child : node.children) {
      arrivals_[child.get()] =
          Capped(arrivals_[child.get()] + child_mult, kOpsCap);
      auto [it, inserted] = stage_mult_.emplace(child.get(), child_stage);
      if (!inserted) it->second = std::max(it->second, child_stage);
    }
  }

  /// Node-local BigInt operations of ONE evaluation, as a function of the
  /// children's row estimates and the column count. The formulas price the
  /// dominant inner loops of each operator's implementation, not exact
  /// counts — relative order is what the budget check and the EXPLAIN
  /// column need.
  double PerCallOps(const PlanNode& node) const {
    const double m = static_cast<double>(m_);
    auto child = [&](size_t i) { return Rows(*node.children[i]); };
    switch (node.op) {
      case PlanOp::kConstFormula:
        return Rows(node) * m;  // copy of the stored formula
      case PlanOp::kInRegion:
        return m * m;  // affine substitution through one conjunction
      case PlanOp::kLiftBool:
        return 1.0;
      case PlanOp::kNegateSym:
        return Capped(child(0) * child(0) * m, kOpsCap);
      case PlanOp::kAndSym:
        return Capped(child(0) * child(1) * m, kOpsCap);
      case PlanOp::kOrSym:
        return child(0) + child(1);  // concatenation
      case PlanOp::kImpliesSym:
        return Capped(child(0) * child(0) * m + child(1), kOpsCap);
      case PlanOp::kIffSym:
        return Capped((child(0) * child(0) + child(1) * child(1) +
                       2.0 * child(0) * child(1)) *
                          m,
                      kOpsCap);
      case PlanOp::kHull:
        // Vertex/ray enumeration dominates: cubic in the hull dimension
        // per disjunct of the projected body.
        return Capped(child(0) * m * m * m, kOpsCap);
      case PlanOp::kExistsElim:
        // Fourier-Motzkin pairs upper and lower bounds per disjunct.
        return Capped(child(0) * m * m, kOpsCap);
      case PlanOp::kForallElim:
        return Capped(2.0 * child(0) * m * m, kOpsCap);  // via two negations
      case PlanOp::kExpandExists:
      case PlanOp::kExpandForall:
        // The accumulator re-combines once per region iteration.
        return Capped(static_cast<double>(n_) * Rows(node) * m, kOpsCap);
      case PlanOp::kRegionAtom:
        return 4.0;  // a few rational comparisons against the extension
      case PlanOp::kSetMember:
        return static_cast<double>(node.region_args.size()) + 1.0;
      case PlanOp::kFixpointMember: {
        // Per-stage set bookkeeping (the body formula work is priced at
        // the body nodes via the child multiplier).
        const double space = PowD(static_cast<double>(n_),
                                  node.bound_vars.size(), kOpsCap);
        return Capped(StageEstimate(node) * space, kOpsCap);
      }
      case PlanOp::kClosureMember: {
        const double space = PowD(static_cast<double>(n_),
                                  node.bound_vars.size(), kOpsCap);
        return Capped(space * space, kOpsCap);  // matrix + BFS bookkeeping
      }
      case PlanOp::kRbitMember:
        // Witness extraction + one implication over the body formula,
        // plus the bit reads.
        return Capped(child(0) * m * m + 64.0, kOpsCap);
      case PlanOp::kNonEmpty:
        return Capped(child(0) * m * m, kOpsCap);  // one LP per disjunct
      default:
        return 1.0;  // boolean connectives and constants
    }
  }

  void Finish() {
    double total = 0.0;
    for (const PlanNode* node : order_) {
      const PlanCostEstimate& est = report_.costs.at(node);
      total = Capped(total + est.est_bigint_ops, kOpsCap);
      if (est.dead_cache) {
        ++report_.stats.dead_caches;
        Diagnostic d;
        d.code = "LCDB011";
        d.severity = DiagSeverity::kWarning;
        d.message = "cache-marked subplan '" + PlanOpName(node->op) +
                    "' can never hit: ~" + Approx(report_.costs.at(node).est_calls) +
                    " estimated evaluation(s) over a memo key space of ~" +
                    Approx(KeySpace(*node));
        d.fix =
            "expected for hoisted loop invariants evaluated once per key; "
            "the cache column is not a win here";
        report_.diagnostics.push_back(std::move(d));
      }
    }
    report_.stats.nodes = order_.size();
    report_.stats.total_bigint_ops = static_cast<uint64_t>(total);
    report_.stats.est_answer_rows =
        static_cast<uint64_t>(report_.costs.at(plan_.root.get()).est_rows);
    const double budget =
        options_.ops_per_tuple * static_cast<double>(options_.max_tuple_space);
    if (total > budget) {
      Diagnostic d;
      d.code = "LCDB004";
      d.severity = DiagSeverity::kWarning;
      d.message = "estimated execution cost ~" + Approx(total) +
                  " BigInt operation(s) exceeds the tier-2 budget ~" +
                  Approx(budget) + " (ops_per_tuple x max_tuple_space), "
                  "after memoization collapses repeated evaluations";
      d.fix =
          "narrow region quantifiers or lower the fixpoint arity; raise "
          "max_tuple_space only if the cost is intended";
      report_.diagnostics.push_back(std::move(d));
    }
    report_.stats.warnings = report_.diagnostics.size();
  }

  const CompiledPlan& plan_;
  const PlanCostOptions& options_;
  const size_t n_;  // regions (>= 1 to keep powers meaningful)
  const size_t m_;  // element columns (>= 1)

  PlanCostReport report_;
  std::set<const PlanNode*> seen_;
  std::vector<const PlanNode*> order_;  // postorder: children before parents
  std::map<const PlanNode*, double> arrivals_;
  std::map<const PlanNode*, double> stage_mult_;
};

}  // namespace

PlanCostReport AnalyzePlanCost(const CompiledPlan& plan,
                               const PlanCostOptions& options) {
  LCDB_CHECK(plan.root != nullptr);
  return CostAnalyzer(plan, options).Run();
}

}  // namespace lcdb
