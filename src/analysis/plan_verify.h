#ifndef LCDB_ANALYSIS_PLAN_VERIFY_H_
#define LCDB_ANALYSIS_PLAN_VERIFY_H_

#include <string_view>

#include "analysis/verify_stats.h"
#include "plan/plan_ir.h"
#include "util/status.h"

namespace lcdb {

/// Tier-3 static verification of the plan IR (LCDB012).
///
/// The executor and the bytecode lowering trust a long list of structural
/// invariants that nothing re-checks once the optimizer has rewritten the
/// tree. `VerifyPlan` re-establishes every one of them over the (possibly
/// shared) plan DAG:
///
///  * **Mode consistency** — each operator has the arity the executor
///    dispatches on, and every child produces the mode (symbolic vs
///    boolean) the parent consumes. A boolean child under `and.sym` would
///    make the executor read a DnfFormula that was never produced.
///  * **Payload presence** — `const.formula` carries a formula, QE and
///    rBIT columns are inside the plan's column space, region atoms carry
///    the argument count their `source_kind` dictates, fixpoint /closure
///    members carry matching bound-variable and argument tuples.
///  * **Annotation consistency** — `free_region` / `free_sets` /
///    `region_pure` / `worth_caching` / `est_fanout` equal what
///    `DeriveAnnotations` recomputes from the children. The executor keys
///    memo entries by `free_region` order, so a stale annotation silently
///    corrupts the cache.
///  * **Cache-key well-formedness** — `CachePolicy::kByRegionKey` appears
///    only on worth-caching, non-constant nodes whose key is narrow
///    (`free_sets` empty, or at most one free region variable), mirroring
///    the optimizer's MarkCacheable contract.
///  * **Scope discipline / closedness** — the root has no free region or
///    set variables; together with annotation consistency this proves
///    every `in`/atom/set reference is bound by an enclosing quantifier,
///    fixpoint or closure binder on every DAG path.
///  * **Shape sanity** — no null children, no cycles through the shared
///    DAG (the executor's recursive walk would not terminate).
///
/// A violation is reported as a clean `kInternal` Status whose message
/// starts with `LCDB012:` and names `context` (the pipeline stage or
/// optimizer pass that produced the plan) plus a specific sub-reason —
/// never a crash. Verification is read-only and runs in one DFS over the
/// DAG (each shared node checked once).
Status VerifyPlan(const PlanNode& root, size_t num_columns,
                  size_t num_regions, std::string_view context,
                  VerifyStats* stats = nullptr);

/// Convenience wrapper over a CompiledPlan, as the evaluator calls it after
/// `OptimizePlan` (and after `BuildPlan` when optimization is disabled).
Status VerifyPlan(const CompiledPlan& plan, std::string_view context,
                  VerifyStats* stats = nullptr);

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_PLAN_VERIFY_H_
