#include "analysis/plan_verify.h"

#include <string>
#include <unordered_map>
#include <vector>

namespace lcdb {

namespace {

/// Per-node DFS colour: absent = unvisited, false = on the current DFS
/// stack (grey), true = fully verified (black).
using ColourMap = std::unordered_map<const PlanNode*, bool>;

Status Fail(std::string_view context, const std::string& reason) {
  return Status::Internal("LCDB012: plan verification failed (" +
                          std::string(context) + "): " + reason);
}

/// Expected child count and child modes per operator. Child modes are
/// uniform per operator in this IR: symbolic operators consume symbolic
/// children except kLiftBool; boolean connectives consume boolean children
/// except the member operators, whose bodies are listed explicitly.
struct OpShape {
  size_t arity = 0;
  bool child_symbolic = false;
};

bool OpShapeFor(PlanOp op, OpShape* shape) {
  switch (op) {
    case PlanOp::kConstFormula:
    case PlanOp::kInRegion:
    case PlanOp::kConstBool:
    case PlanOp::kRegionAtom:
    case PlanOp::kSetMember:
      shape->arity = 0;
      return true;
    case PlanOp::kLiftBool:
      shape->arity = 1;
      shape->child_symbolic = false;
      return true;
    case PlanOp::kNegateSym:
    case PlanOp::kHull:
    case PlanOp::kExistsElim:
    case PlanOp::kForallElim:
    case PlanOp::kExpandExists:
    case PlanOp::kExpandForall:
    case PlanOp::kRbitMember:
    case PlanOp::kNonEmpty:
      shape->arity = 1;
      shape->child_symbolic = true;
      return true;
    case PlanOp::kAndSym:
    case PlanOp::kOrSym:
    case PlanOp::kImpliesSym:
    case PlanOp::kIffSym:
      shape->arity = 2;
      shape->child_symbolic = true;
      return true;
    case PlanOp::kNotBool:
    case PlanOp::kFixpointMember:
    case PlanOp::kClosureMember:
      shape->arity = 1;
      shape->child_symbolic = false;
      return true;
    case PlanOp::kAndBool:
    case PlanOp::kOrBool:
    case PlanOp::kImpliesBool:
    case PlanOp::kIffBool:
      shape->arity = 2;
      shape->child_symbolic = false;
      return true;
    case PlanOp::kAnyRegion:
    case PlanOp::kAllRegion:
      shape->arity = 1;
      shape->child_symbolic = false;
      return true;
  }
  return false;
}

/// Operator-specific payload checks (beyond arity/mode).
Status CheckPayload(const PlanNode& node, size_t num_columns,
                    std::string_view context) {
  const std::string name = PlanOpName(node.op);
  switch (node.op) {
    case PlanOp::kConstFormula:
      if (!node.const_formula.has_value()) {
        return Fail(context, "missing payload: " + name + " has no formula");
      }
      break;
    case PlanOp::kInRegion:
      if (node.region_args.size() != 1) {
        return Fail(context, "region argument count: " + name + " expects 1, has " +
                                 std::to_string(node.region_args.size()));
      }
      break;
    case PlanOp::kExistsElim:
    case PlanOp::kForallElim:
      if (node.column >= num_columns) {
        return Fail(context, "column out of range: " + name + " eliminates column " +
                                 std::to_string(node.column) + " of " +
                                 std::to_string(num_columns));
      }
      break;
    case PlanOp::kExpandExists:
    case PlanOp::kExpandForall:
    case PlanOp::kAnyRegion:
    case PlanOp::kAllRegion:
      if (node.region_var.empty()) {
        return Fail(context, "missing binder: " + name + " has no region variable");
      }
      break;
    case PlanOp::kRegionAtom: {
      size_t want = 1;
      switch (node.source_kind) {
        case NodeKind::kAdjacent:
        case NodeKind::kRegionEq:
          want = 2;
          break;
        case NodeKind::kSubsetS:
        case NodeKind::kIntersectsS:
        case NodeKind::kDimAtom:
        case NodeKind::kBoundedAtom:
          want = 1;
          break;
        default:
          return Fail(context, "source kind: " + name +
                                   " does not name a region predicate");
      }
      if (node.region_args.size() != want) {
        return Fail(context, "region argument count: " + name + " expects " +
                                 std::to_string(want) + ", has " +
                                 std::to_string(node.region_args.size()));
      }
      break;
    }
    case PlanOp::kSetMember:
      if (node.set_var.empty()) {
        return Fail(context, "missing binder: " + name + " has no set variable");
      }
      if (node.region_args.empty()) {
        return Fail(context,
                    "region argument count: " + name + " applies an empty tuple");
      }
      break;
    case PlanOp::kFixpointMember:
      if (node.source_kind != NodeKind::kLfp &&
          node.source_kind != NodeKind::kIfp &&
          node.source_kind != NodeKind::kPfp) {
        return Fail(context,
                    "source kind: " + name + " is not lfp/ifp/pfp");
      }
      if (node.set_var.empty()) {
        return Fail(context, "missing binder: " + name + " has no set variable");
      }
      if (node.bound_vars.empty()) {
        return Fail(context,
                    "missing binder: " + name + " binds no region variables");
      }
      if (node.region_args.size() != node.bound_vars.size()) {
        return Fail(context, "fixpoint arity: " + name + " applies " +
                                 std::to_string(node.region_args.size()) +
                                 " arguments to " +
                                 std::to_string(node.bound_vars.size()) +
                                 " bound variables");
      }
      break;
    case PlanOp::kClosureMember:
      if (node.source_kind != NodeKind::kTc && node.source_kind != NodeKind::kDtc) {
        return Fail(context, "source kind: " + name + " is not tc/dtc");
      }
      if (node.region_args.empty() ||
          node.region_args.size() != node.region_args2.size()) {
        return Fail(context, "closure arity: " + name +
                                 " argument tuples have mismatched lengths");
      }
      if (node.bound_vars.size() !=
          node.region_args.size() + node.region_args2.size()) {
        return Fail(context, "closure arity: " + name + " binds " +
                                 std::to_string(node.bound_vars.size()) +
                                 " variables for " +
                                 std::to_string(node.region_args.size() +
                                                node.region_args2.size()) +
                                 " arguments");
      }
      break;
    case PlanOp::kRbitMember:
      if (node.region_args.size() != 2) {
        return Fail(context, "region argument count: " + name + " expects 2, has " +
                                 std::to_string(node.region_args.size()));
      }
      if (node.column >= num_columns) {
        return Fail(context, "column out of range: " + name + " tests column " +
                                 std::to_string(node.column) + " of " +
                                 std::to_string(num_columns));
      }
      break;
    default:
      break;
  }
  return Status::Ok();
}

std::string JoinNames(const std::vector<std::string>& names) {
  std::string out;
  for (const std::string& n : names) {
    if (!out.empty()) out += ", ";
    out += n;
  }
  return out;
}

/// Recomputes the derived annotations on a copy and compares. The copy
/// shares the children (shared_ptr), so `DeriveAnnotations` reads the
/// children's actual annotations — which the DFS has already verified.
Status CheckAnnotations(const PlanNode& node, size_t num_regions,
                        std::string_view context) {
  PlanNode copy = node;
  DeriveAnnotations(&copy, num_regions);
  const std::string name = PlanOpName(node.op);
  if (copy.free_region != node.free_region) {
    return Fail(context, "annotation mismatch on " + name +
                             ": free_region is {" + JoinNames(node.free_region) +
                             "}, derivation gives {" +
                             JoinNames(copy.free_region) + "}");
  }
  if (copy.free_sets != node.free_sets) {
    return Fail(context, "annotation mismatch on " + name +
                             ": free_sets is {" + JoinNames(node.free_sets) +
                             "}, derivation gives {" + JoinNames(copy.free_sets) +
                             "}");
  }
  if (copy.region_pure != node.region_pure) {
    return Fail(context, "annotation mismatch on " + name + ": region_pure");
  }
  if (copy.worth_caching != node.worth_caching) {
    return Fail(context, "annotation mismatch on " + name + ": worth_caching");
  }
  if (copy.est_fanout != node.est_fanout) {
    return Fail(context, "annotation mismatch on " + name + ": est_fanout is " +
                             std::to_string(node.est_fanout) +
                             ", derivation gives " +
                             std::to_string(copy.est_fanout));
  }
  return Status::Ok();
}

/// The optimizer's MarkCacheable contract: kByRegionKey only on
/// worth-caching non-constant nodes with a narrow memo key.
Status CheckCachePolicy(const PlanNode& node, std::string_view context) {
  if (node.cache != CachePolicy::kByRegionKey) return Status::Ok();
  const std::string name = PlanOpName(node.op);
  if (node.op == PlanOp::kConstFormula || node.op == PlanOp::kConstBool) {
    return Fail(context, "cache key ill-formed: constant " + name +
                             " is cache-marked");
  }
  if (!node.worth_caching) {
    return Fail(context, "cache key ill-formed: " + name +
                             " is cache-marked but not worth caching");
  }
  if (!node.free_sets.empty() && node.free_region.size() > 1) {
    return Fail(context, "cache key ill-formed: " + name +
                             " is set-dependent with a wide region key (" +
                             std::to_string(node.free_region.size()) +
                             " free region variables)");
  }
  return Status::Ok();
}

Status VerifyNode(const PlanNode* node, size_t num_columns,
                  size_t num_regions, std::string_view context,
                  ColourMap* colour, size_t* nodes_verified) {
  auto [it, inserted] = colour->emplace(node, false);
  if (!inserted) {
    if (!it->second) {
      return Fail(context, "plan DAG contains a cycle through " +
                               PlanOpName(node->op));
    }
    return Status::Ok();  // shared node, already verified
  }

  OpShape shape;
  if (!OpShapeFor(node->op, &shape)) {
    return Fail(context, "unknown plan operator");
  }
  if (node->children.size() != shape.arity) {
    return Fail(context, "operator arity: " + PlanOpName(node->op) +
                             " expects " + std::to_string(shape.arity) +
                             " children, has " +
                             std::to_string(node->children.size()));
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    const PlanPtr& child = node->children[i];
    if (child == nullptr) {
      return Fail(context, "null child " + std::to_string(i) + " under " +
                               PlanOpName(node->op));
    }
    if (child->IsSymbolic() != shape.child_symbolic) {
      return Fail(context,
                  "mode confusion: child " + std::to_string(i) + " of " +
                      PlanOpName(node->op) + " must be " +
                      (shape.child_symbolic ? "symbolic" : "boolean") +
                      ", is " + PlanOpName(child->op));
    }
    Status s = VerifyNode(child.get(), num_columns, num_regions, context,
                          colour, nodes_verified);
    if (!s.ok()) return s;
  }

  Status s = CheckPayload(*node, num_columns, context);
  if (!s.ok()) return s;
  s = CheckAnnotations(*node, num_regions, context);
  if (!s.ok()) return s;
  s = CheckCachePolicy(*node, context);
  if (!s.ok()) return s;

  it = colour->find(node);
  it->second = true;
  ++*nodes_verified;
  return Status::Ok();
}

}  // namespace

Status VerifyPlan(const PlanNode& root, size_t num_columns,
                  size_t num_regions, std::string_view context,
                  VerifyStats* stats) {
  ColourMap colour;
  size_t nodes_verified = 0;
  Status s = VerifyNode(&root, num_columns, num_regions, context, &colour,
                        &nodes_verified);
  if (stats != nullptr) {
    ++stats->plans_verified;
    stats->plan_nodes_verified += nodes_verified;
  }
  if (s.ok() && !root.free_region.empty()) {
    s = Fail(context, "plan not closed: free region variables remain at root ({" +
                          JoinNames(root.free_region) + "})");
  }
  if (s.ok() && !root.free_sets.empty()) {
    s = Fail(context, "plan not closed: free set variables remain at root ({" +
                          JoinNames(root.free_sets) + "})");
  }
  if (!s.ok() && stats != nullptr) ++stats->violations;
  return s;
}

Status VerifyPlan(const CompiledPlan& plan, std::string_view context,
                  VerifyStats* stats) {
  if (plan.root == nullptr) {
    if (stats != nullptr) {
      ++stats->plans_verified;
      ++stats->violations;
    }
    return Fail(context, "plan has no root");
  }
  return VerifyPlan(*plan.root, plan.num_columns, plan.num_regions, context,
                    stats);
}

}  // namespace lcdb
