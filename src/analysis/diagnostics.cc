#include "analysis/diagnostics.h"

#include <algorithm>

namespace lcdb {

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

const char* DiagSeverityName(DiagSeverity severity) {
  switch (severity) {
    case DiagSeverity::kNote:
      return "note";
    case DiagSeverity::kWarning:
      return "warning";
    case DiagSeverity::kError:
      return "error";
  }
  return "unknown";
}

std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source) {
  std::string out = std::string(DiagSeverityName(diagnostic.severity)) + "[" +
                    diagnostic.code + "]: " + diagnostic.message + "\n";
  const SourceSpan& span = diagnostic.span;
  if (span.valid() && span.begin < source.size()) {
    // Echo the source line the span starts on, caret run underneath. Query
    // sources are usually one line; multi-line spans caret to line end.
    size_t line_begin = source.rfind('\n', span.begin);
    line_begin = line_begin == std::string_view::npos ? 0 : line_begin + 1;
    size_t line_end = source.find('\n', span.begin);
    if (line_end == std::string_view::npos) line_end = source.size();
    const size_t caret_begin = span.begin - line_begin;
    const size_t caret_end =
        std::min(span.end, line_end) - line_begin;
    out += "  --> offset " + std::to_string(span.begin) + "\n";
    out += "   | " +
           std::string(source.substr(line_begin, line_end - line_begin)) +
           "\n";
    out += "   | " + std::string(caret_begin, ' ') +
           std::string(std::max<size_t>(caret_end - caret_begin, 1), '^') +
           "\n";
  }
  if (!diagnostic.fix.empty()) {
    out += "  fix: " + diagnostic.fix + "\n";
  }
  return out;
}

std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source) {
  std::string out;
  for (const Diagnostic& d : diagnostics) out += RenderDiagnostic(d, source);
  return out;
}

std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics) {
  std::string out = "[";
  for (size_t i = 0; i < diagnostics.size(); ++i) {
    const Diagnostic& d = diagnostics[i];
    if (i > 0) out += ",";
    out += "{\"code\":\"" + JsonEscape(d.code) + "\"";
    out += ",\"severity\":\"" + std::string(DiagSeverityName(d.severity)) +
           "\"";
    out += ",\"message\":\"" + JsonEscape(d.message) + "\"";
    const size_t begin = d.span.valid() ? d.span.begin : 0;
    const size_t end = d.span.valid() ? d.span.end : 0;
    out += ",\"begin\":" + std::to_string(begin);
    out += ",\"end\":" + std::to_string(end);
    out += ",\"fix\":\"" + JsonEscape(d.fix) + "\"}";
  }
  out += "]";
  return out;
}

}  // namespace lcdb
