#ifndef LCDB_ANALYSIS_VERIFY_STATS_H_
#define LCDB_ANALYSIS_VERIFY_STATS_H_

#include <cstdint>
#include <string>

namespace lcdb {

/// Telemetry of the tier-3 static verifiers (analysis/plan_verify.h,
/// analysis/bytecode_verify.h). Header-only like AnalysisStats so the
/// metrics registry can adapt it into the `analysis.verify.*` family
/// without linking the verifiers themselves.
struct VerifyStats {
  /// Plan-IR verification runs and the nodes they walked.
  uint64_t plans_verified = 0;
  uint64_t plan_nodes_verified = 0;
  /// Bytecode verification runs, and the procs / instructions their
  /// dataflow covered.
  uint64_t programs_verified = 0;
  uint64_t procs_verified = 0;
  uint64_t instructions_verified = 0;
  /// Back-edges whose governor-checkpoint discipline was proved (nonzero
  /// loop.head stride, or an Enter checkpoint inside the loop body).
  uint64_t loops_verified = 0;
  /// Invariant violations detected (each surfaced as an LCDB012 Status).
  uint64_t violations = 0;
  /// Tier-2 tightening: procs the dataflow proved unreachable from the
  /// entry proc, and LCDB011 dead-cache estimates upgraded from heuristic
  /// to proved because their memo sites sit in unreachable code.
  uint64_t unreachable_procs = 0;
  uint64_t dead_caches_proved = 0;

  VerifyStats& operator+=(const VerifyStats& o) {
    plans_verified += o.plans_verified;
    plan_nodes_verified += o.plan_nodes_verified;
    programs_verified += o.programs_verified;
    procs_verified += o.procs_verified;
    instructions_verified += o.instructions_verified;
    loops_verified += o.loops_verified;
    violations += o.violations;
    unreachable_procs += o.unreachable_procs;
    dead_caches_proved += o.dead_caches_proved;
    return *this;
  }

  std::string ToString() const {
    std::string out = "plans=" + std::to_string(plans_verified);
    out += " plan_nodes=" + std::to_string(plan_nodes_verified);
    out += " programs=" + std::to_string(programs_verified);
    out += " procs=" + std::to_string(procs_verified);
    out += " instructions=" + std::to_string(instructions_verified);
    out += " loops=" + std::to_string(loops_verified);
    out += " violations=" + std::to_string(violations);
    return out;
  }
};

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_VERIFY_STATS_H_
