#include "analysis/const_analysis.h"

#include <algorithm>

#include "constraint/linear_atom.h"

namespace lcdb {

namespace {

/// Column index of `name` in the evaluator's element-variable space, or
/// nullopt for a variable outside it (possible only for ASTs that skipped
/// typechecking).
std::optional<size_t> ColumnOf(const std::vector<std::string>& columns,
                               const std::string& name) {
  auto it = std::find(columns.begin(), columns.end(), name);
  if (it == columns.end()) return std::nullopt;
  return static_cast<size_t>(it - columns.begin());
}

}  // namespace

bool ConstFormulaProvablyEmpty(const DnfFormula& formula) {
  if (formula.IsSyntacticallyFalse()) return true;
  if (formula.IsSyntacticallyTrue()) return false;
  return formula.IsEmpty();
}

std::optional<DnfFormula> LowerElementPure(
    const FormulaNode& node, const std::vector<std::string>& columns) {
  const size_t m = columns.size();
  switch (node.kind) {
    case NodeKind::kTrue:
      return DnfFormula::True(m);
    case NodeKind::kFalse:
      return DnfFormula::False(m);
    case NodeKind::kCompare: {
      // Identical to the planner's kCompare lowering, so the atoms
      // canonicalize to the same kernel encodings.
      ElementTerm diff = node.lhs.Minus(node.rhs);
      Vec coeffs(m);
      for (const auto& [name, coeff] : diff.coeffs) {
        std::optional<size_t> col = ColumnOf(columns, name);
        if (!col.has_value()) return std::nullopt;
        coeffs[*col] = coeff;
      }
      return DnfFormula::FromAtom(
          LinearAtom(coeffs, node.rel, -diff.constant));
    }
    case NodeKind::kNot: {
      std::optional<DnfFormula> a = LowerElementPure(*node.children[0], columns);
      if (!a.has_value()) return std::nullopt;
      return a->Negate();
    }
    case NodeKind::kAnd:
    case NodeKind::kOr:
    case NodeKind::kImplies:
    case NodeKind::kIff: {
      std::optional<DnfFormula> a = LowerElementPure(*node.children[0], columns);
      if (!a.has_value()) return std::nullopt;
      std::optional<DnfFormula> b = LowerElementPure(*node.children[1], columns);
      if (!b.has_value()) return std::nullopt;
      switch (node.kind) {
        case NodeKind::kAnd:
          return a->And(*b);
        case NodeKind::kOr:
          return a->Or(*b);
        case NodeKind::kImplies:
          return a->Negate().Or(*b);
        default:  // kIff
          return a->And(*b).Or(a->Negate().And(b->Negate()));
      }
    }
    default:
      // Region atoms, relation/in atoms (database-dependent), quantifiers
      // and operators are not compile-time constants at this layer.
      return std::nullopt;
  }
}

GuardTruth ClassifyGuard(const FormulaNode& node,
                         const std::vector<std::string>& columns,
                         const GuardClassifyOptions& options,
                         AnalysisStats* stats) {
  std::optional<DnfFormula> lowered = LowerElementPure(node, columns);
  if (!lowered.has_value()) return GuardTruth::kUnknown;
  if (lowered->AtomCount() > options.max_atoms) {
    if (stats != nullptr) ++stats->guards_skipped_size;
    return GuardTruth::kUnknown;
  }
  if (stats != nullptr) ++stats->guards_classified;
  if (ConstFormulaProvablyEmpty(*lowered)) {
    if (stats != nullptr) ++stats->guards_proved_unsat;
    return GuardTruth::kAlwaysFalse;
  }
  if (ConstFormulaProvablyEmpty(lowered->Negate())) {
    if (stats != nullptr) ++stats->guards_proved_tautology;
    return GuardTruth::kAlwaysTrue;
  }
  return GuardTruth::kUnknown;
}

}  // namespace lcdb
