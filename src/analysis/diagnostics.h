#ifndef LCDB_ANALYSIS_DIAGNOSTICS_H_
#define LCDB_ANALYSIS_DIAGNOSTICS_H_

#include <string>
#include <string_view>
#include <vector>

#include "core/ast.h"

namespace lcdb {

/// Severity of a static-analysis diagnostic. Errors make Evaluate fail with
/// kInvalidArgument before any engine work; warnings and notes are advisory
/// and surface through the lint front ends and the analysis.* metrics.
enum class DiagSeverity {
  kNote,
  kWarning,
  kError,
};

const char* DiagSeverityName(DiagSeverity severity);

/// One structured diagnostic from the static query analyzer: a stable
/// LCDB### code, a severity, a one-line message, the source span of the
/// offending construct (invalid for programmatically built ASTs) and an
/// optional fix note.
struct Diagnostic {
  std::string code;  ///< "LCDB001" .. "LCDB901"
  DiagSeverity severity = DiagSeverity::kWarning;
  std::string message;
  SourceSpan span;
  std::string fix;  ///< optional "rewrite it like this" hint
};

/// Renders one diagnostic for terminals. When `source` is nonempty and the
/// span is valid, the offending source line is echoed with a caret run
/// underneath:
///
///   error[LCDB001]: LFP body must be positive in the fixpoint variable 'M'
///     --> offset 17
///      | exists A . [lfp M R : !(M(R))](A)
///      |                       ^^^^^^^
///     fix: rewrite the body so 'M' occurs under an even number of negations
std::string RenderDiagnostic(const Diagnostic& diagnostic,
                             std::string_view source);

/// Renders a batch, one diagnostic after another.
std::string RenderDiagnostics(const std::vector<Diagnostic>& diagnostics,
                              std::string_view source);

/// JSON array of objects {"code","severity","message","begin","end","fix"}
/// — the schema the CI lint job validates. Spanless diagnostics carry
/// begin = end = 0.
std::string DiagnosticsToJson(const std::vector<Diagnostic>& diagnostics);

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_DIAGNOSTICS_H_
