#ifndef LCDB_ANALYSIS_BYTECODE_VERIFY_H_
#define LCDB_ANALYSIS_BYTECODE_VERIFY_H_

#include <cstddef>
#include <vector>

#include "analysis/verify_stats.h"
#include "plan/bytecode.h"
#include "util/status.h"

namespace lcdb {

/// Outcome of one bytecode verification run. Besides the pass/fail Status,
/// the abstract interpretation leaves behind facts the tier-2 analyzer can
/// lean on: which procs are provably unreachable from the entry proc, how
/// many loop counters were proved inside the region bound, and which
/// cache-marked nodes can *never* hit because every one of their memo sites
/// sits in unreachable code.
struct BytecodeVerifyResult {
  /// Ok, or a kInternal Status whose message starts with `LCDB012:` and
  /// names the proc, pc and opcode of the first violation.
  Status status;
  /// Per-proc: reachable from proc 0 through call sites / fixpoint /
  /// closure bodies located in reachable code.
  std::vector<bool> proc_reachable;
  size_t procs_verified = 0;
  size_t instructions_verified = 0;
  /// Back-edges whose governor-checkpoint discipline was proved: either a
  /// nonzero `loop.head` stride or an Enter / member / call checkpoint
  /// source inside the loop body.
  size_t loops_verified = 0;
  size_t unreachable_procs = 0;
  /// kSetRegion sites whose `i` register the interval dataflow proved
  /// within [0, |Reg|) on every reaching path, over the total number of
  /// reachable kSetRegion sites. When bounded == total, the tier-2 LCDB004
  /// tuple-space estimate's |Reg|^k base is a *verified* upper bound.
  size_t counters_bounded = 0;
  size_t counters_total = 0;
  /// Cache-marked plan nodes all of whose memo Enter sites are in
  /// unreachable code — the LCDB011 "can never hit" verdict upgraded from
  /// heuristic to proved.
  size_t dead_caches_proved = 0;
};

/// Tier-3 static verification of lowered bytecode (LCDB012) — a JVM-style
/// abstract interpreter over every proc of the program:
///
///  * **Operand bounds** — every register operand is inside the proc's
///    s/b/i register files, every slot / memo-descriptor / site / proc /
///    inline-cache index is inside its side table, jump targets are inside
///    the proc (checked for all instructions, reachable or not).
///  * **Typestate dataflow** — forward abstract interpretation with a
///    worklist: registers are defined before use on all paths (bit-vector
///    states, intersection at joins), conditional jumps on constant-loaded
///    registers prune provably dead edges, and `i` registers carry
///    intervals clamped by the `loop.head` guard.
///  * **Memo-bracket balance** — Enter pushes an abstract frame (mode,
///    register, memo id), Leave pops a matching one, the memo-hit skip
///    edge carries the pre-Enter stack; stacks must agree at joins and be
///    empty at ret/halt. Timed begin.op / end.op frames balance the same
///    way.
///  * **Control discipline** — every backward jump is a kLoopNext
///    targeting its kLoopHead (same counter register), every such cycle
///    contains a governor checkpoint source (nonzero head stride, or an
///    Enter / member / call in the body), no proc's control falls off the
///    end, halt only in the entry proc, ret only outside it.
///  * **Call graph** — kCallSym/kCallBool callees exist and match the
///    caller's mode, fixpoint/closure body procs are boolean, and the
///    whole proc call graph (member-site edges included) is acyclic.
///
/// Verification is read-only and runs once per lowering; `BytecodeVm`
/// refuses to run a program whose `verified` flag the caller has not set
/// (see plan/bytecode.h) unless `Options::verify` is off.
BytecodeVerifyResult VerifyBytecode(const BytecodeProgram& program);

/// Folds a verification result into the `analysis.verify.*` telemetry.
void AccumulateVerifyStats(const BytecodeVerifyResult& result,
                           VerifyStats* stats);

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_BYTECODE_VERIFY_H_
