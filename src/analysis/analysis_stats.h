#ifndef LCDB_ANALYSIS_ANALYSIS_STATS_H_
#define LCDB_ANALYSIS_ANALYSIS_STATS_H_

#include <cstdint>
#include <string>

namespace lcdb {

/// Telemetry of the static query analyzer (analysis/analyzer.h). Header-only
/// like KernelStats so the metrics registry can adapt it into the
/// `analysis.*` family without linking the analyzer itself.
struct AnalysisStats {
  /// AnalyzeQuery invocations.
  uint64_t queries_analyzed = 0;
  /// Diagnostics emitted, total and by severity.
  uint64_t diagnostics = 0;
  uint64_t errors = 0;
  uint64_t warnings = 0;
  uint64_t notes = 0;
  /// Element-pure guards handed to the kernel-backed truth classifier,
  /// and its verdicts. Skipped guards exceeded the atom bound.
  uint64_t guards_classified = 0;
  uint64_t guards_proved_unsat = 0;
  uint64_t guards_proved_tautology = 0;
  uint64_t guards_skipped_size = 0;

  AnalysisStats& operator+=(const AnalysisStats& o) {
    queries_analyzed += o.queries_analyzed;
    diagnostics += o.diagnostics;
    errors += o.errors;
    warnings += o.warnings;
    notes += o.notes;
    guards_classified += o.guards_classified;
    guards_proved_unsat += o.guards_proved_unsat;
    guards_proved_tautology += o.guards_proved_tautology;
    guards_skipped_size += o.guards_skipped_size;
    return *this;
  }

  std::string ToString() const {
    std::string out = "diagnostics=" + std::to_string(diagnostics);
    out += " errors=" + std::to_string(errors);
    out += " warnings=" + std::to_string(warnings);
    out += " notes=" + std::to_string(notes);
    out += " guards_classified=" + std::to_string(guards_classified);
    out += " guards_unsat=" + std::to_string(guards_proved_unsat);
    out += " guards_tautology=" + std::to_string(guards_proved_tautology);
    return out;
  }
};

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_ANALYSIS_STATS_H_
