#include "analysis/bytecode_verify.h"

#include <algorithm>
#include <cstdint>
#include <deque>
#include <limits>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace lcdb {

namespace {

constexpr int64_t kUnbounded = std::numeric_limits<int64_t>::max();

Status Fail(const std::string& reason) {
  return Status::Internal("LCDB012: bytecode verification failed: " + reason);
}

Status FailAt(size_t proc, size_t pc, const VmInstr& in,
              const std::string& reason) {
  return Fail(reason + " [proc " + std::to_string(proc) + " pc " +
              std::to_string(pc) + " " + VmOpName(in.op) + "]");
}

// ---------------------------------------------------------------------------
// Abstract domain.

/// Constant lattice for jump pruning: kLoadBool / kLoadTrueSym /
/// kLoadFalseSym produce known truth values; any other write is kUnknown.
enum class Tri : uint8_t { kUnknown, kFalse, kTrue };

Tri JoinTri(Tri a, Tri b) { return a == b ? a : Tri::kUnknown; }

/// Loop-counter interval, clamped by the kLoopHead guard.
struct Interval {
  int64_t lo = 0;
  int64_t hi = kUnbounded;
};

/// One open Enter bracket: the Leave that closes it must match mode,
/// destination register and memo descriptor id.
struct AbsFrame {
  bool symbolic = true;
  uint32_t reg = 0;
  uint32_t memo = 0;
  bool operator==(const AbsFrame& o) const {
    return symbolic == o.symbolic && reg == o.reg && memo == o.memo;
  }
};

struct AbsState {
  std::vector<uint8_t> sdef, bdef, idef;  // defined-before-use bits
  std::vector<Tri> sval, bval;            // constants for edge pruning
  std::vector<Interval> ival;             // i-register intervals
  std::vector<AbsFrame> brackets;         // open Enter frames
  int op_depth = 0;                       // open timed begin.op frames

  static AbsState Entry(const VmProc& proc) {
    AbsState st;
    st.sdef.assign(proc.num_sregs, 0);
    st.bdef.assign(proc.num_bregs, 0);
    st.idef.assign(proc.num_iregs, 0);
    st.sval.assign(proc.num_sregs, Tri::kUnknown);
    st.bval.assign(proc.num_bregs, Tri::kUnknown);
    st.ival.assign(proc.num_iregs, Interval{});
    return st;
  }
};

/// Merges `from` into `*into`. Returns false (bracket conflict) when the
/// two paths disagree on open Enter / op frames — the VM's profile and
/// timer stacks would diverge. Sets `*changed` when `*into` moved.
bool Join(AbsState* into, const AbsState& from, size_t num_regions,
          bool* changed) {
  if (into->brackets != from.brackets || into->op_depth != from.op_depth) {
    return false;
  }
  for (size_t r = 0; r < into->sdef.size(); ++r) {
    if (into->sdef[r] && !from.sdef[r]) {
      into->sdef[r] = 0;
      *changed = true;
    }
    Tri joined = JoinTri(into->sval[r], from.sval[r]);
    if (joined != into->sval[r]) {
      into->sval[r] = joined;
      *changed = true;
    }
  }
  for (size_t r = 0; r < into->bdef.size(); ++r) {
    if (into->bdef[r] && !from.bdef[r]) {
      into->bdef[r] = 0;
      *changed = true;
    }
    Tri joined = JoinTri(into->bval[r], from.bval[r]);
    if (joined != into->bval[r]) {
      into->bval[r] = joined;
      *changed = true;
    }
  }
  for (size_t r = 0; r < into->idef.size(); ++r) {
    if (into->idef[r] && !from.idef[r]) {
      into->idef[r] = 0;
      *changed = true;
    }
    Interval& iv = into->ival[r];
    const Interval& other = from.ival[r];
    int64_t lo = std::min(iv.lo, other.lo);
    int64_t hi = std::max(iv.hi, other.hi);
    // Widen once the upper bound escapes the region space: the only
    // interesting fact is i < |Reg|, so anything beyond is just "unbounded".
    if (hi != kUnbounded && hi > static_cast<int64_t>(num_regions) + 8) {
      hi = kUnbounded;
    }
    if (lo != iv.lo || hi != iv.hi) {
      iv.lo = lo;
      iv.hi = hi;
      *changed = true;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Static (flow-insensitive) per-instruction checks.

class ProcChecker {
 public:
  ProcChecker(const BytecodeProgram& program, size_t proc_id)
      : program_(program), proc_(program.procs[proc_id]), proc_id_(proc_id) {}

  /// Operand bounds, payload presence, jump-target sanity and back-edge
  /// discipline for every instruction, reachable or not.
  Status CheckStatic(size_t* loops_verified) {
    const auto& code = proc_.code;
    if (code.empty()) {
      return Fail("proc " + std::to_string(proc_id_) + " has no code");
    }
    for (size_t pc = 0; pc < code.size(); ++pc) {
      Status s = CheckInstr(pc, loops_verified);
      if (!s.ok()) return s;
      // No proc may fall off the end: the last instruction of every
      // fallthrough path must be ret/halt (or an unconditional transfer).
      if (pc + 1 == code.size() && FallsThrough(code[pc].op)) {
        return FailAt(proc_id_, pc, code[pc],
                      "control falls off the end of the proc");
      }
    }
    return Status::Ok();
  }

 private:
  static bool FallsThrough(VmOp op) {
    switch (op) {
      case VmOp::kJmp:
      case VmOp::kLoopNext:
      case VmOp::kRet:
      case VmOp::kHalt:
        return false;
      default:
        return true;
    }
  }

  Status S(size_t pc, uint32_t r) {
    if (r >= proc_.num_sregs) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "s-register out of range: s" + std::to_string(r) +
                        " of " + std::to_string(proc_.num_sregs));
    }
    return Status::Ok();
  }
  Status B(size_t pc, uint32_t r) {
    if (r >= proc_.num_bregs) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "b-register out of range: b" + std::to_string(r) +
                        " of " + std::to_string(proc_.num_bregs));
    }
    return Status::Ok();
  }
  Status I(size_t pc, uint32_t r) {
    if (r >= proc_.num_iregs) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "i-register out of range: i" + std::to_string(r) +
                        " of " + std::to_string(proc_.num_iregs));
    }
    return Status::Ok();
  }
  Status Forward(size_t pc, uint32_t target) {
    const VmInstr& in = proc_.code[pc];
    if (target >= proc_.code.size()) {
      return FailAt(proc_id_, pc, in,
                    "jump target out of range: " + std::to_string(target) +
                        " of " + std::to_string(proc_.code.size()));
    }
    if (target <= pc) {
      return FailAt(proc_id_, pc, in,
                    "backward jump is not a loop back-edge (target " +
                        std::to_string(target) + ")");
    }
    return Status::Ok();
  }
  Status RegionSlot(size_t pc, uint32_t slot) {
    if (slot >= program_.region_slot_names.size()) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "region slot out of range: " + std::to_string(slot) +
                        " of " +
                        std::to_string(program_.region_slot_names.size()));
    }
    return Status::Ok();
  }
  Status Memo(size_t pc, uint32_t imm) {
    if (imm > program_.memo_descs.size()) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "memo descriptor id out of range: " + std::to_string(imm) +
                        " of " + std::to_string(program_.memo_descs.size()));
    }
    return Status::Ok();
  }
  Status Node(size_t pc) {
    if (proc_.code[pc].node == nullptr) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "missing node payload");
    }
    return Status::Ok();
  }

  Status CheckInstr(size_t pc, size_t* loops_verified) {
    const VmInstr& in = proc_.code[pc];
    Status s = Status::Ok();
    auto all = [&](std::initializer_list<Status> checks) {
      for (const Status& c : checks) {
        if (!c.ok()) return c;
      }
      return Status::Ok();
    };
    switch (in.op) {
      case VmOp::kEnterSym:
        s = all({S(pc, in.a), Memo(pc, in.imm), Node(pc)});
        if (s.ok() && in.imm != 0) s = Forward(pc, in.b);
        return s;
      case VmOp::kLeaveSym:
        return all({S(pc, in.a), Memo(pc, in.imm), Node(pc)});
      case VmOp::kEnterBool:
        s = all({B(pc, in.a), Memo(pc, in.imm), Node(pc)});
        if (s.ok() && in.imm != 0) s = Forward(pc, in.b);
        return s;
      case VmOp::kLeaveBool:
        return all({B(pc, in.a), Memo(pc, in.imm), Node(pc)});
      case VmOp::kConstFormula:
        s = all({S(pc, in.a), Node(pc)});
        if (s.ok() && !in.node->const_formula.has_value()) {
          s = FailAt(proc_id_, pc, in, "const.formula node has no formula");
        }
        return s;
      case VmOp::kInRegion:
        return all({S(pc, in.a), RegionSlot(pc, in.b), Node(pc)});
      case VmOp::kLiftBool:
        return all({S(pc, in.a), B(pc, in.b)});
      case VmOp::kNegSym:
      case VmOp::kLoadTrueSym:
      case VmOp::kLoadFalseSym:
        return S(pc, in.a);
      case VmOp::kAndSym:
      case VmOp::kOrSym:
      case VmOp::kIffSym:
        return all({S(pc, in.a), S(pc, in.b)});
      case VmOp::kHullFinish:
        return all({S(pc, in.a), S(pc, in.b), Node(pc)});
      case VmOp::kQeExists:
      case VmOp::kQeForall:
        s = all({S(pc, in.a), S(pc, in.b), Node(pc)});
        if (s.ok() && in.node->column >= program_.num_columns) {
          s = FailAt(proc_id_, pc, in,
                     "column out of range: " + std::to_string(in.node->column) +
                         " of " + std::to_string(program_.num_columns));
        }
        return s;
      case VmOp::kLoadBool:
      case VmOp::kNotBool:
        return B(pc, in.a);
      case VmOp::kEqBool:
        return all({B(pc, in.a), B(pc, in.b)});
      case VmOp::kRegionAtom: {
        s = all({B(pc, in.a), RegionSlot(pc, in.b), Node(pc)});
        if (!s.ok()) return s;
        switch (in.node->source_kind) {
          case NodeKind::kAdjacent:
          case NodeKind::kRegionEq:
            return RegionSlot(pc, in.c);
          case NodeKind::kSubsetS:
          case NodeKind::kIntersectsS:
          case NodeKind::kDimAtom:
          case NodeKind::kBoundedAtom:
            return Status::Ok();
          default:
            return FailAt(proc_id_, pc, in,
                          "node kind is not a region predicate");
        }
      }
      case VmOp::kSetMember:
        s = B(pc, in.a);
        if (s.ok() && in.b >= program_.set_slot_names.size()) {
          s = FailAt(proc_id_, pc, in,
                     "set slot out of range: " + std::to_string(in.b) + " of " +
                         std::to_string(program_.set_slot_names.size()));
        }
        if (s.ok() && in.imm >= program_.slot_lists.size()) {
          s = FailAt(proc_id_, pc, in,
                     "slot-list id out of range: " + std::to_string(in.imm) +
                         " of " + std::to_string(program_.slot_lists.size()));
        }
        return s;
      case VmOp::kFixpointMember:
        s = all({B(pc, in.a), Node(pc)});
        if (s.ok() && in.imm >= program_.fixpoint_sites.size()) {
          s = FailAt(proc_id_, pc, in,
                     "fixpoint site id out of range: " + std::to_string(in.imm) +
                         " of " +
                         std::to_string(program_.fixpoint_sites.size()));
        }
        return s;
      case VmOp::kClosureMember:
        s = all({B(pc, in.a), Node(pc)});
        if (s.ok() && in.imm >= program_.closure_sites.size()) {
          s = FailAt(proc_id_, pc, in,
                     "closure site id out of range: " + std::to_string(in.imm) +
                         " of " + std::to_string(program_.closure_sites.size()));
        }
        return s;
      case VmOp::kRbitFinish:
        s = all({B(pc, in.a), S(pc, in.b), Node(pc)});
        if (s.ok() && in.c >= program_.num_icache_slots) {
          s = FailAt(proc_id_, pc, in,
                     "inline-cache slot out of range: " + std::to_string(in.c) +
                         " of " + std::to_string(program_.num_icache_slots));
        }
        if (s.ok() && in.imm >= program_.rbit_sites.size()) {
          s = FailAt(proc_id_, pc, in,
                     "rbit site id out of range: " + std::to_string(in.imm) +
                         " of " + std::to_string(program_.rbit_sites.size()));
        }
        return s;
      case VmOp::kNonEmpty:
        s = all({B(pc, in.a), S(pc, in.b)});
        if (s.ok() && in.c >= program_.num_icache_slots) {
          s = FailAt(proc_id_, pc, in,
                     "inline-cache slot out of range: " + std::to_string(in.c) +
                         " of " + std::to_string(program_.num_icache_slots));
        }
        return s;
      case VmOp::kJmp:
        return Forward(pc, in.b);
      case VmOp::kJmpIfSymFalse:
      case VmOp::kJmpIfSymTrue:
        return all({S(pc, in.a), Forward(pc, in.b)});
      case VmOp::kJmpIfFalseBool:
      case VmOp::kJmpIfTrueBool:
        return all({B(pc, in.a), Forward(pc, in.b)});
      case VmOp::kLoadImm:
        return I(pc, in.a);
      case VmOp::kLoopHead:
        return all({I(pc, in.a), Forward(pc, in.b)});
      case VmOp::kLoopNext: {
        s = I(pc, in.a);
        if (!s.ok()) return s;
        if (in.b >= proc_.code.size()) {
          return FailAt(proc_id_, pc, in,
                        "jump target out of range: " + std::to_string(in.b) +
                            " of " + std::to_string(proc_.code.size()));
        }
        const VmInstr& head = proc_.code[in.b];
        if (head.op != VmOp::kLoopHead) {
          return FailAt(proc_id_, pc, in,
                        "loop back-edge does not target its loop.head");
        }
        if (head.a != in.a) {
          return FailAt(proc_id_, pc, in,
                        "loop back-edge counter mismatch: i" +
                            std::to_string(in.a) + " vs head i" +
                            std::to_string(head.a));
        }
        if (in.b < pc) {
          // Governor discipline: the cycle [head, next] must contain a
          // checkpoint source — a nonzero head stride, or an Enter /
          // member / call instruction in the body (Enters checkpoint at
          // the tree cadence; member engines and callee procs open with
          // Enters of their own).
          bool checkpointed = head.imm != 0;
          for (size_t body = in.b + 1; !checkpointed && body < pc; ++body) {
            switch (proc_.code[body].op) {
              case VmOp::kEnterSym:
              case VmOp::kEnterBool:
              case VmOp::kFixpointMember:
              case VmOp::kClosureMember:
              case VmOp::kCallSym:
              case VmOp::kCallBool:
                checkpointed = true;
                break;
              default:
                break;
            }
          }
          if (!checkpointed) {
            return FailAt(proc_id_, pc, in,
                          "loop without a governor checkpoint: head stride is "
                          "0 and the body has no Enter/member/call site");
          }
          ++*loops_verified;
        }
        return Status::Ok();
      }
      case VmOp::kSetRegion:
        return all({RegionSlot(pc, in.a), I(pc, in.b)});
      case VmOp::kBeginOp:
        if ((in.imm & kOpTimed) != 0) return Node(pc);
        return Status::Ok();
      case VmOp::kEndOp:
        return Status::Ok();
      case VmOp::kCallSym:
      case VmOp::kCallBool: {
        const bool symbolic = in.op == VmOp::kCallSym;
        s = symbolic ? S(pc, in.a) : B(pc, in.a);
        if (!s.ok()) return s;
        if (in.imm >= program_.procs.size()) {
          return FailAt(proc_id_, pc, in,
                        "proc id out of range: " + std::to_string(in.imm) +
                            " of " + std::to_string(program_.procs.size()));
        }
        const VmProc& callee = program_.procs[in.imm];
        if (callee.symbolic != symbolic) {
          return FailAt(proc_id_, pc, in,
                        "mode confusion: " +
                            std::string(symbolic ? "call.sym" : "call.bool") +
                            " targets a " +
                            (callee.symbolic ? "symbolic" : "boolean") +
                            " proc");
        }
        const uint32_t result_regs =
            symbolic ? callee.num_sregs : callee.num_bregs;
        if (result_regs == 0) {
          return FailAt(proc_id_, pc, in,
                        "callee has no result register 0");
        }
        return Status::Ok();
      }
      case VmOp::kRet:
        if (proc_id_ == 0) {
          return FailAt(proc_id_, pc, in, "ret in the entry proc");
        }
        return Status::Ok();
      case VmOp::kHalt:
        if (proc_id_ != 0) {
          return FailAt(proc_id_, pc, in, "halt outside the entry proc");
        }
        return Status::Ok();
    }
    return FailAt(proc_id_, pc, in, "unknown opcode");
  }

  const BytecodeProgram& program_;
  const VmProc& proc_;
  const size_t proc_id_;
};

// ---------------------------------------------------------------------------
// Flow-sensitive dataflow (typestate + brackets + intervals) per proc.

class ProcDataflow {
 public:
  ProcDataflow(const BytecodeProgram& program, size_t proc_id)
      : program_(program),
        proc_(program.procs[proc_id]),
        proc_id_(proc_id),
        states_(proc_.code.size()),
        reachable_(proc_.code.size(), false),
        counter_bounded_(proc_.code.size(), true) {}

  Status Run() {
    Propagate(0, AbsState::Entry(proc_));
    if (!status_.ok()) return status_;
    while (!worklist_.empty()) {
      const size_t pc = worklist_.front();
      worklist_.pop_front();
      in_worklist_.erase(pc);
      Step(pc);
      if (!status_.ok()) return status_;
    }
    return Status::Ok();
  }

  const std::vector<bool>& reachable() const { return reachable_; }

  /// kSetRegion interval facts over reachable sites.
  void CountCounters(size_t* bounded, size_t* total) const {
    for (size_t pc = 0; pc < proc_.code.size(); ++pc) {
      if (!reachable_[pc] || proc_.code[pc].op != VmOp::kSetRegion) continue;
      ++*total;
      if (counter_bounded_[pc]) ++*bounded;
    }
  }

 private:
  Status ReadS(size_t pc, const AbsState& st, uint32_t r) {
    if (!st.sdef[r]) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "read of undefined s-register s" + std::to_string(r));
    }
    return Status::Ok();
  }
  Status ReadB(size_t pc, const AbsState& st, uint32_t r) {
    if (!st.bdef[r]) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "read of undefined b-register b" + std::to_string(r));
    }
    return Status::Ok();
  }
  Status ReadI(size_t pc, const AbsState& st, uint32_t r) {
    if (!st.idef[r]) {
      return FailAt(proc_id_, pc, proc_.code[pc],
                    "read of undefined i-register i" + std::to_string(r));
    }
    return Status::Ok();
  }

  static void WriteS(AbsState* st, uint32_t r, Tri value = Tri::kUnknown) {
    st->sdef[r] = 1;
    st->sval[r] = value;
  }
  static void WriteB(AbsState* st, uint32_t r, Tri value = Tri::kUnknown) {
    st->bdef[r] = 1;
    st->bval[r] = value;
  }
  static void WriteI(AbsState* st, uint32_t r, Interval iv) {
    st->idef[r] = 1;
    st->ival[r] = iv;
  }

  void Propagate(size_t target, AbsState state) {
    if (!reachable_[target]) {
      reachable_[target] = true;
      states_[target] = std::move(state);
      Enqueue(target);
      return;
    }
    bool changed = false;
    if (!Join(&states_[target], state, program_.num_regions, &changed)) {
      status_ = FailAt(proc_id_, target, proc_.code[target],
                       "inconsistent memo bracket depth at join");
      return;
    }
    if (changed) Enqueue(target);
  }

  void Enqueue(size_t pc) {
    if (in_worklist_.insert(pc).second) worklist_.push_back(pc);
  }

  void Step(size_t pc) {
    const VmInstr& in = proc_.code[pc];
    AbsState st = states_[pc];  // copy: transfer below mutates
    switch (in.op) {
      case VmOp::kEnterSym:
      case VmOp::kEnterBool: {
        const bool symbolic = in.op == VmOp::kEnterSym;
        if (in.imm != 0) {
          // Memo-hit edge: dest defined, bracket NOT pushed (the VM jumps
          // past the Leave).
          AbsState hit = st;
          if (symbolic) {
            WriteS(&hit, in.a);
          } else {
            WriteB(&hit, in.a);
          }
          Propagate(in.b, std::move(hit));
          if (!status_.ok()) return;
        }
        st.brackets.push_back(AbsFrame{symbolic, in.a, in.imm});
        Propagate(pc + 1, std::move(st));
        return;
      }
      case VmOp::kLeaveSym:
      case VmOp::kLeaveBool: {
        const bool symbolic = in.op == VmOp::kLeaveSym;
        status_ = symbolic ? ReadS(pc, st, in.a) : ReadB(pc, st, in.a);
        if (!status_.ok()) return;
        if (st.brackets.empty()) {
          status_ = FailAt(proc_id_, pc, in,
                           "memo bracket underflow: leave without enter");
          return;
        }
        const AbsFrame expect{symbolic, in.a, in.imm};
        if (!(st.brackets.back() == expect)) {
          status_ = FailAt(proc_id_, pc, in,
                           "memo bracket mismatch: leave does not match the "
                           "open enter");
          return;
        }
        st.brackets.pop_back();
        Propagate(pc + 1, std::move(st));
        return;
      }
      case VmOp::kConstFormula:
      case VmOp::kInRegion:
        WriteS(&st, in.a);
        break;
      case VmOp::kLiftBool:
        status_ = ReadB(pc, st, in.b);
        if (!status_.ok()) return;
        WriteS(&st, in.a, st.bval[in.b]);
        break;
      case VmOp::kNegSym:
        status_ = ReadS(pc, st, in.a);
        if (!status_.ok()) return;
        WriteS(&st, in.a);
        break;
      case VmOp::kAndSym:
      case VmOp::kOrSym:
      case VmOp::kIffSym:
        status_ = ReadS(pc, st, in.a);
        if (status_.ok()) status_ = ReadS(pc, st, in.b);
        if (!status_.ok()) return;
        WriteS(&st, in.a);
        break;
      case VmOp::kLoadTrueSym:
        WriteS(&st, in.a, Tri::kTrue);
        break;
      case VmOp::kLoadFalseSym:
        WriteS(&st, in.a, Tri::kFalse);
        break;
      case VmOp::kHullFinish:
      case VmOp::kQeExists:
      case VmOp::kQeForall:
        status_ = ReadS(pc, st, in.b);
        if (!status_.ok()) return;
        WriteS(&st, in.a);
        break;
      case VmOp::kLoadBool:
        WriteB(&st, in.a, in.imm != 0 ? Tri::kTrue : Tri::kFalse);
        break;
      case VmOp::kNotBool: {
        status_ = ReadB(pc, st, in.a);
        if (!status_.ok()) return;
        Tri v = st.bval[in.a];
        Tri flipped = v == Tri::kTrue    ? Tri::kFalse
                      : v == Tri::kFalse ? Tri::kTrue
                                         : Tri::kUnknown;
        WriteB(&st, in.a, flipped);
        break;
      }
      case VmOp::kEqBool:
        status_ = ReadB(pc, st, in.a);
        if (status_.ok()) status_ = ReadB(pc, st, in.b);
        if (!status_.ok()) return;
        WriteB(&st, in.a);
        break;
      case VmOp::kRegionAtom:
      case VmOp::kSetMember:
      case VmOp::kFixpointMember:
      case VmOp::kClosureMember:
        WriteB(&st, in.a);
        break;
      case VmOp::kRbitFinish:
      case VmOp::kNonEmpty:
        status_ = ReadS(pc, st, in.b);
        if (!status_.ok()) return;
        WriteB(&st, in.a);
        break;
      case VmOp::kJmp:
        Propagate(in.b, std::move(st));
        return;
      case VmOp::kJmpIfSymFalse:
      case VmOp::kJmpIfSymTrue: {
        status_ = ReadS(pc, st, in.a);
        if (!status_.ok()) return;
        const Tri v = st.sval[in.a];
        const Tri taken_on = in.op == VmOp::kJmpIfSymTrue ? Tri::kTrue
                                                          : Tri::kFalse;
        // A constant-loaded register prunes the edge that cannot fire.
        // (Only syntactic constants: LoadTrue/LoadFalse survive to here
        // untouched, matching IsSyntacticallyTrue/False at runtime.)
        if (v == Tri::kUnknown || v == taken_on) {
          Propagate(in.b, st);
          if (!status_.ok()) return;
        }
        if (v == Tri::kUnknown || v != taken_on) {
          Propagate(pc + 1, std::move(st));
        }
        return;
      }
      case VmOp::kJmpIfFalseBool:
      case VmOp::kJmpIfTrueBool: {
        status_ = ReadB(pc, st, in.a);
        if (!status_.ok()) return;
        const Tri v = st.bval[in.a];
        const Tri taken_on = in.op == VmOp::kJmpIfTrueBool ? Tri::kTrue
                                                           : Tri::kFalse;
        if (v == Tri::kUnknown || v == taken_on) {
          Propagate(in.b, st);
          if (!status_.ok()) return;
        }
        if (v == Tri::kUnknown || v != taken_on) {
          Propagate(pc + 1, std::move(st));
        }
        return;
      }
      case VmOp::kLoadImm:
        WriteI(&st, in.a,
               Interval{static_cast<int64_t>(in.imm),
                        static_cast<int64_t>(in.imm)});
        break;
      case VmOp::kLoopHead: {
        status_ = ReadI(pc, st, in.a);
        if (!status_.ok()) return;
        const int64_t n = static_cast<int64_t>(program_.num_regions);
        const Interval iv = st.ival[in.a];
        // Exit edge: i >= |Reg|.
        Interval exit_iv{std::max(iv.lo, n), iv.hi};
        if (exit_iv.lo <= exit_iv.hi) {
          AbsState exit_st = st;
          exit_st.ival[in.a] = exit_iv;
          Propagate(in.b, std::move(exit_st));
          if (!status_.ok()) return;
        }
        // Fallthrough (body) edge: i < |Reg|.
        Interval body_iv{iv.lo, std::min(iv.hi, n - 1)};
        if (body_iv.lo <= body_iv.hi) {
          st.ival[in.a] = body_iv;
          Propagate(pc + 1, std::move(st));
        }
        return;
      }
      case VmOp::kLoopNext: {
        status_ = ReadI(pc, st, in.a);
        if (!status_.ok()) return;
        Interval iv = st.ival[in.a];
        if (iv.lo != kUnbounded) ++iv.lo;
        if (iv.hi != kUnbounded) ++iv.hi;
        st.ival[in.a] = iv;
        Propagate(in.b, std::move(st));
        return;
      }
      case VmOp::kSetRegion:
        status_ = ReadI(pc, st, in.b);
        if (!status_.ok()) return;
        if (st.ival[in.b].hi == kUnbounded ||
            st.ival[in.b].hi >= static_cast<int64_t>(program_.num_regions)) {
          counter_bounded_[pc] = false;
        }
        break;
      case VmOp::kBeginOp:
        if ((in.imm & kOpTimed) != 0) ++st.op_depth;
        break;
      case VmOp::kEndOp:
        if (st.op_depth == 0) {
          status_ = FailAt(proc_id_, pc, in,
                           "unmatched end.op: no timed begin.op on this path");
          return;
        }
        --st.op_depth;
        break;
      case VmOp::kCallSym:
        WriteS(&st, in.a);
        break;
      case VmOp::kCallBool:
        WriteB(&st, in.a);
        break;
      case VmOp::kRet:
      case VmOp::kHalt: {
        if (!st.brackets.empty()) {
          status_ = FailAt(proc_id_, pc, in,
                           "unclosed enter bracket at proc exit");
          return;
        }
        if (st.op_depth != 0) {
          status_ = FailAt(proc_id_, pc, in,
                           "unclosed op frame at proc exit");
          return;
        }
        // Result convention: frame-local register 0 of the proc's mode.
        status_ = proc_.symbolic ? ReadS(pc, st, 0) : ReadB(pc, st, 0);
        if (!status_.ok()) {
          status_ = FailAt(proc_id_, pc, in,
                           "result register 0 undefined at proc exit");
        }
        return;
      }
    }
    Propagate(pc + 1, std::move(st));
  }

  const BytecodeProgram& program_;
  const VmProc& proc_;
  const size_t proc_id_;
  std::vector<AbsState> states_;
  std::vector<bool> reachable_;
  std::vector<bool> counter_bounded_;
  std::deque<size_t> worklist_;
  std::unordered_set<size_t> in_worklist_;
  Status status_ = Status::Ok();
};

// ---------------------------------------------------------------------------
// Program-level checks: side tables, call graph, proc reachability.

Status CheckSideTables(const BytecodeProgram& p) {
  const size_t region_slots = p.region_slot_names.size();
  const size_t set_slots = p.set_slot_names.size();
  for (size_t i = 0; i < p.memo_descs.size(); ++i) {
    for (uint32_t slot : p.memo_descs[i].region_slots) {
      if (slot >= region_slots) {
        return Fail("memo descriptor " + std::to_string(i) +
                    ": region slot out of range");
      }
    }
    for (uint32_t slot : p.memo_descs[i].set_slots) {
      if (slot >= set_slots) {
        return Fail("memo descriptor " + std::to_string(i) +
                    ": set slot out of range");
      }
    }
  }
  for (size_t i = 0; i < p.slot_lists.size(); ++i) {
    for (uint32_t slot : p.slot_lists[i]) {
      if (slot >= region_slots) {
        return Fail("slot-list " + std::to_string(i) +
                    ": region slot out of range");
      }
    }
  }
  for (size_t i = 0; i < p.fixpoint_sites.size(); ++i) {
    const VmFixpointSite& site = p.fixpoint_sites[i];
    if (site.body_proc >= p.procs.size()) {
      return Fail("fixpoint site " + std::to_string(i) +
                  ": proc id out of range");
    }
    if (p.procs[site.body_proc].symbolic) {
      return Fail("fixpoint site " + std::to_string(i) +
                  ": body proc must be boolean");
    }
    if (site.set_slot >= set_slots) {
      return Fail("fixpoint site " + std::to_string(i) +
                  ": set slot out of range");
    }
    if (site.bound_slots.empty() ||
        site.arg_slots.size() != site.bound_slots.size()) {
      return Fail("fixpoint site " + std::to_string(i) +
                  ": arity mismatch between bound and argument slots");
    }
    for (uint32_t slot : site.bound_slots) {
      if (slot >= region_slots) {
        return Fail("fixpoint site " + std::to_string(i) +
                    ": region slot out of range");
      }
    }
    for (uint32_t slot : site.arg_slots) {
      if (slot >= region_slots) {
        return Fail("fixpoint site " + std::to_string(i) +
                    ": region slot out of range");
      }
    }
  }
  for (size_t i = 0; i < p.closure_sites.size(); ++i) {
    const VmClosureSite& site = p.closure_sites[i];
    if (site.body_proc >= p.procs.size()) {
      return Fail("closure site " + std::to_string(i) +
                  ": proc id out of range");
    }
    if (p.procs[site.body_proc].symbolic) {
      return Fail("closure site " + std::to_string(i) +
                  ": body proc must be boolean");
    }
    if (site.arg_slots.empty() ||
        site.arg_slots.size() != site.arg2_slots.size() ||
        site.bound_slots.size() !=
            site.arg_slots.size() + site.arg2_slots.size()) {
      return Fail("closure site " + std::to_string(i) +
                  ": arity mismatch between bound and argument slots");
    }
    for (const auto* slots :
         {&site.bound_slots, &site.arg_slots, &site.arg2_slots}) {
      for (uint32_t slot : *slots) {
        if (slot >= region_slots) {
          return Fail("closure site " + std::to_string(i) +
                      ": region slot out of range");
        }
      }
    }
  }
  for (size_t i = 0; i < p.rbit_sites.size(); ++i) {
    if (p.rbit_sites[i].rn_slot >= region_slots ||
        p.rbit_sites[i].rd_slot >= region_slots) {
      return Fail("rbit site " + std::to_string(i) +
                  ": region slot out of range");
    }
  }
  return Status::Ok();
}

/// Callee procs referenced by one instruction (call ops and member sites).
/// Operand bounds are already verified when this runs.
void AppendCallees(const BytecodeProgram& p, const VmInstr& in,
                   std::vector<uint32_t>* out) {
  switch (in.op) {
    case VmOp::kCallSym:
    case VmOp::kCallBool:
      out->push_back(in.imm);
      break;
    case VmOp::kFixpointMember:
      out->push_back(p.fixpoint_sites[in.imm].body_proc);
      break;
    case VmOp::kClosureMember:
      out->push_back(p.closure_sites[in.imm].body_proc);
      break;
    default:
      break;
  }
}

Status CheckCallGraphAcyclic(const BytecodeProgram& p) {
  // Colours: 0 white, 1 grey (on stack), 2 black.
  std::vector<uint8_t> colour(p.procs.size(), 0);
  std::vector<uint32_t> callees;
  // Iterative DFS: (proc, next-callee-index) frames.
  for (uint32_t root = 0; root < p.procs.size(); ++root) {
    if (colour[root] != 0) continue;
    std::vector<std::pair<uint32_t, size_t>> stack{{root, 0}};
    std::vector<std::vector<uint32_t>> callee_stack;
    callees.clear();
    for (const VmInstr& in : p.procs[root].code) {
      AppendCallees(p, in, &callees);
    }
    callee_stack.push_back(callees);
    colour[root] = 1;
    while (!stack.empty()) {
      auto& [proc, next] = stack.back();
      if (next >= callee_stack.back().size()) {
        colour[proc] = 2;
        stack.pop_back();
        callee_stack.pop_back();
        continue;
      }
      const uint32_t callee = callee_stack.back()[next++];
      if (colour[callee] == 1) {
        return Fail("proc call graph contains a cycle (proc " +
                    std::to_string(callee) + ")");
      }
      if (colour[callee] != 0) continue;
      colour[callee] = 1;
      callees.clear();
      for (const VmInstr& in : p.procs[callee].code) {
        AppendCallees(p, in, &callees);
      }
      stack.emplace_back(callee, 0);
      callee_stack.push_back(callees);
    }
  }
  return Status::Ok();
}

/// Cache-marked plan nodes whose every memo Enter site is unreachable: the
/// cache can never hit because the node is never executed — LCDB011's
/// heuristic verdict, proved.
size_t CountProvedDeadCaches(
    const BytecodeProgram& p, const std::vector<bool>& proc_reachable,
    const std::vector<std::vector<bool>>& instr_reachable) {
  // Memo sites per cache-marked node across all procs.
  std::unordered_map<const PlanNode*, std::pair<size_t, size_t>> sites;
  for (size_t proc = 0; proc < p.procs.size(); ++proc) {
    for (size_t pc = 0; pc < p.procs[proc].code.size(); ++pc) {
      const VmInstr& in = p.procs[proc].code[pc];
      if ((in.op != VmOp::kEnterSym && in.op != VmOp::kEnterBool) ||
          in.imm == 0 || in.node == nullptr ||
          in.node->cache != CachePolicy::kByRegionKey) {
        continue;
      }
      auto& [total, dead] = sites[in.node];
      ++total;
      if (!proc_reachable[proc] || !instr_reachable[proc][pc]) ++dead;
    }
  }
  size_t proved = 0;
  for (const auto& [node, counts] : sites) {
    if (counts.first > 0 && counts.first == counts.second) ++proved;
  }
  return proved;
}

}  // namespace

BytecodeVerifyResult VerifyBytecode(const BytecodeProgram& program) {
  BytecodeVerifyResult result;
  result.proc_reachable.assign(program.procs.size(), false);
  if (program.procs.empty()) {
    result.status = Fail("program has no procs");
    return result;
  }
  if (!program.procs[0].symbolic) {
    result.status = Fail("entry proc must be symbolic");
    return result;
  }
  result.status = CheckSideTables(program);
  if (!result.status.ok()) return result;

  std::vector<std::vector<bool>> instr_reachable(program.procs.size());
  for (size_t proc = 0; proc < program.procs.size(); ++proc) {
    ProcChecker checker(program, proc);
    result.status = checker.CheckStatic(&result.loops_verified);
    if (!result.status.ok()) return result;

    ProcDataflow dataflow(program, proc);
    result.status = dataflow.Run();
    if (!result.status.ok()) return result;
    dataflow.CountCounters(&result.counters_bounded, &result.counters_total);
    instr_reachable[proc] = dataflow.reachable();
    ++result.procs_verified;
    result.instructions_verified += program.procs[proc].code.size();
  }

  result.status = CheckCallGraphAcyclic(program);
  if (!result.status.ok()) return result;

  // Proc reachability from the entry proc, following call / member-site
  // edges located at dataflow-reachable instructions only.
  std::deque<uint32_t> queue{0};
  result.proc_reachable[0] = true;
  std::vector<uint32_t> callees;
  while (!queue.empty()) {
    const uint32_t proc = queue.front();
    queue.pop_front();
    for (size_t pc = 0; pc < program.procs[proc].code.size(); ++pc) {
      if (!instr_reachable[proc][pc]) continue;
      callees.clear();
      AppendCallees(program, program.procs[proc].code[pc], &callees);
      for (uint32_t callee : callees) {
        if (!result.proc_reachable[callee]) {
          result.proc_reachable[callee] = true;
          queue.push_back(callee);
        }
      }
    }
  }
  for (bool reachable : result.proc_reachable) {
    if (!reachable) ++result.unreachable_procs;
  }
  result.dead_caches_proved =
      CountProvedDeadCaches(program, result.proc_reachable, instr_reachable);
  return result;
}

void AccumulateVerifyStats(const BytecodeVerifyResult& result,
                           VerifyStats* stats) {
  ++stats->programs_verified;
  stats->procs_verified += result.procs_verified;
  stats->instructions_verified += result.instructions_verified;
  stats->loops_verified += result.loops_verified;
  stats->unreachable_procs += result.unreachable_procs;
  stats->dead_caches_proved += result.dead_caches_proved;
  if (!result.status.ok()) ++stats->violations;
}

}  // namespace lcdb
