#ifndef LCDB_ANALYSIS_ANALYZER_H_
#define LCDB_ANALYSIS_ANALYZER_H_

#include <string_view>
#include <vector>

#include "analysis/analysis_stats.h"
#include "analysis/const_analysis.h"
#include "analysis/diagnostics.h"
#include "core/ast.h"
#include "core/typecheck.h"
#include "db/database.h"
#include "util/status.h"

namespace lcdb {

/// Configuration of the static query analyzer.
struct AnalyzerOptions {
  /// Region count of the extension the query will run against; 0 when
  /// unknown (lint without an extension), which skips the tuple-space cap
  /// warning but not the overflow error.
  size_t num_regions = 0;
  /// The evaluator's Options::max_tuple_space cap the LCDB004 warning
  /// compares against.
  size_t max_tuple_space = 1u << 22;
  /// Ask the ambient kernel whether element-pure guards are vacuous or
  /// tautological (LCDB006/LCDB007). Kernel-memoized, but still oracle
  /// work; disable for span-free syntactic-only analysis.
  bool classify_guards = true;
  GuardClassifyOptions guard;
};

/// Outcome of one AnalyzeQuery call: the diagnostics in source order plus
/// the analyzer's telemetry (registered as `analysis.*` metrics).
struct AnalysisResult {
  std::vector<Diagnostic> diagnostics;
  AnalysisStats stats;

  bool has_errors() const { return stats.errors > 0; }
  /// First error-severity diagnostic, or nullptr.
  const Diagnostic* FirstError() const;
};

/// The static analysis pass pipeline over a *typechecked* AST (`info` must
/// come from TypeCheck on `root`). Runs as a mandatory phase between
/// typecheck and plan building; pure — never throws, never mutates the AST.
///
/// Diagnostic codes:
///   LCDB001 error    LFP body not positive in the fixpoint variable
///   LCDB002 note     IFP/PFP body not positive (polarity report)
///   LCDB003 error    free element variable with only negative-polarity
///                    atom occurrences (range-unrestricted)
///   LCDB004 error/   region tuple space n^k overflows size_t / exceeds
///           warning  the configured max_tuple_space
///   LCDB005 warning  DTC body disjunct does not pin a target variable
///                    (determinism precondition of Definition 7.2)
///   LCDB006 warning  subquery provably unsatisfiable (vacuous)
///   LCDB007 warning  guard provably always true
///   LCDB008 warning  bound variable never used
///   LCDB009 warning  fixpoint body independent of its set variable
///   LCDB010 note     TC/DTC applied to identical tuples (reflexively true)
///   LCDB900 error    parse failure (lint front ends only)
///   LCDB901 error    typecheck failure (lint front ends only)
AnalysisResult AnalyzeQuery(const FormulaNode& root, const TypeInfo& info,
                            const AnalyzerOptions& options = {});

/// The kInvalidArgument Status Evaluate returns when analysis finds errors:
/// the first error rendered (with caret when `source` covers its span) plus
/// a count of the rest. Ok when the result has no errors.
Status AnalysisErrorStatus(const AnalysisResult& result,
                           std::string_view source);

/// One-stop lint for the CLI front ends: parse (LCDB900 on failure),
/// typecheck (LCDB901 on failure), then AnalyzeQuery. Never a Status —
/// every failure mode is a diagnostic.
struct LintReport {
  std::vector<Diagnostic> diagnostics;
  AnalysisStats stats;
  bool parse_ok = false;
  bool typecheck_ok = false;

  bool has_errors() const { return stats.errors > 0; }
};
LintReport LintQueryText(std::string_view query_text,
                         const ConstraintDatabase& db,
                         const AnalyzerOptions& options = {});

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_ANALYZER_H_
