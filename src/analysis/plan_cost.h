#ifndef LCDB_ANALYSIS_PLAN_COST_H_
#define LCDB_ANALYSIS_PLAN_COST_H_

#include <cstddef>
#include <vector>

#include "analysis/diagnostics.h"
#include "plan/plan_ir.h"

namespace lcdb {

/// Options of the tier-2 cost pass. The budget mirrors the evaluator's
/// tuple-space cap: the pass warns when the *estimated* BigInt work of a
/// query exceeds what the configured space bound implies, refining the
/// tier-1 analyzer's purely syntactic LCDB004 check with plan-shape
/// knowledge (memoization, hoisting, short-circuit structure).
struct PlanCostOptions {
  size_t max_tuple_space = 1u << 22;
  /// BigInt operations budgeted per unit of tuple space before the
  /// cost-refined LCDB004 warning fires.
  double ops_per_tuple = 64.0;
};

/// Result of AnalyzePlanCost: per-node estimates (for the EXPLAIN cost
/// column), aggregate telemetry (the plan.cost.* metrics family) and the
/// diagnostics the estimates imply.
struct PlanCostReport {
  PlanCostMap costs;
  PlanCostStats stats;
  std::vector<Diagnostic> diagnostics;
};

/// Tier-2 static analyzer: a cost model over the *optimized* plan. Where
/// the tier-1 analyzer (analysis/analyzer.h) inspects the AST before any
/// plan exists, this pass runs after optimization and prices what will
/// actually execute:
///
///  * `est_calls` propagates top-down through the DAG — quantifier loops
///    multiply by their region fan-out, fixpoint bodies by stages x tuple
///    space, closure bodies by the squared tuple space — and memo-marked
///    nodes collapse to their key-space size (values of the free region
///    variables, times the stage count when the node is set-dependent);
///  * `est_rows` propagates bottom-up (disjunct counts through the DNF
///    algebra, with caps);
///  * `est_bigint_ops` prices each node's own work per call in the
///    Grimson-Heintz-Kuijpers unit — BigInt arithmetic operations — as a
///    function of its children's row estimates and the column count.
///
/// Two diagnostics come out of the estimates:
///
///   LCDB011 warning  a cache-marked subplan can never hit: the estimated
///                    arrivals do not exceed the memo key space, so every
///                    store is written once and never read (expected for
///                    hoisted loop invariants; flagged so the EXPLAIN
///                    reader knows the cache column is not a win there);
///   LCDB004 warning  cost-refined budget check: the estimated total
///                    BigInt work exceeds ops_per_tuple x max_tuple_space
///                    even after memoization collapses repeats.
///
/// Both are spanless (plan nodes carry no source spans) and never errors:
/// estimates must not reject queries. Everything here is a deterministic
/// function of the plan shape and the region count — no clocks, no kernel
/// calls — so EXPLAIN output is byte-stable across runs.
PlanCostReport AnalyzePlanCost(const CompiledPlan& plan,
                               const PlanCostOptions& options = {});

}  // namespace lcdb

#endif  // LCDB_ANALYSIS_PLAN_COST_H_
