#include "constraint/canonical.h"

#include <algorithm>

namespace lcdb {

namespace {

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

char RelChar(RelOp rel) {
  // LinearAtom orients greater-relations away, so only three appear.
  switch (rel) {
    case RelOp::kLt:
      return '<';
    case RelOp::kLe:
      return 'l';
    case RelOp::kEq:
      return '=';
    case RelOp::kGe:
      return 'g';
    case RelOp::kGt:
      return '>';
  }
  return '?';
}

/// Shared tail of both canonicalization entry points: `atoms` must already
/// be constant-free, sorted and deduplicated.
CanonicalSystem EncodeNormalizedAtoms(size_t num_vars,
                                      std::vector<LinearAtom> atoms,
                                      bool syntactically_false) {
  CanonicalSystem out;
  out.num_vars = num_vars;
  out.syntactically_false = syntactically_false;
  out.encoding = "n";
  out.encoding += std::to_string(num_vars);
  out.encoding += ':';
  if (syntactically_false) {
    out.encoding += 'F';
  } else {
    out.atoms = std::move(atoms);
    for (const LinearAtom& atom : out.atoms) {
      AppendAtomEncoding(atom, &out.encoding);
    }
  }
  out.hash = StableHash64(out.encoding);
  return out;
}

}  // namespace

uint64_t StableHash64(std::string_view bytes) {
  uint64_t h = kFnvOffset;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

void AppendAtomEncoding(const LinearAtom& atom, std::string* out) {
  out->push_back(RelChar(atom.rel()));
  for (size_t i = 0; i < atom.coeffs().size(); ++i) {
    if (i > 0) out->push_back(',');
    *out += atom.coeffs()[i].ToString();
  }
  out->push_back('|');
  *out += atom.rhs().ToString();
  out->push_back(';');
}

uint64_t StableAtomHash(const LinearAtom& atom) {
  std::string enc;
  AppendAtomEncoding(atom, &enc);
  return StableHash64(enc);
}

CanonicalSystem CanonicalizeSystem(
    size_t num_vars, const std::vector<LinearConstraint>& constraints) {
  std::vector<LinearAtom> atoms;
  atoms.reserve(constraints.size());
  for (const LinearConstraint& c : constraints) {
    LinearAtom atom(c.coeffs, c.rel, c.rhs);
    if (atom.IsConstant()) {
      if (!atom.ConstantValue()) {
        return EncodeNormalizedAtoms(num_vars, {}, /*syntactically_false=*/true);
      }
      continue;  // constant-true atoms impose nothing
    }
    atoms.push_back(std::move(atom));
  }
  std::sort(atoms.begin(), atoms.end());
  atoms.erase(std::unique(atoms.begin(), atoms.end()), atoms.end());
  return EncodeNormalizedAtoms(num_vars, std::move(atoms),
                               /*syntactically_false=*/false);
}

CanonicalSystem CanonicalizeConjunction(const Conjunction& conj) {
  if (conj.IsSyntacticallyFalse()) {
    return EncodeNormalizedAtoms(conj.num_vars(), {},
                                 /*syntactically_false=*/true);
  }
  return EncodeNormalizedAtoms(conj.num_vars(), conj.atoms(),
                               /*syntactically_false=*/false);
}

}  // namespace lcdb
