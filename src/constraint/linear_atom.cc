#include "constraint/linear_atom.h"

#include <algorithm>

#include "util/status.h"

namespace lcdb {

AffineExpr AffineExpr::Variable(size_t num_vars, size_t index) {
  LCDB_CHECK(index < num_vars);
  AffineExpr out;
  out.coeffs.assign(num_vars, Rational(0));
  out.coeffs[index] = Rational(1);
  return out;
}

AffineExpr AffineExpr::Constant(size_t num_vars, Rational k) {
  AffineExpr out;
  out.coeffs.assign(num_vars, Rational(0));
  out.constant = std::move(k);
  return out;
}

Rational AffineExpr::EvaluateAt(const Vec& point) const {
  return Dot(coeffs, point) + constant;
}

LinearAtom::LinearAtom(const Vec& coeffs, RelOp rel, const Rational& rhs) {
  rel_ = rel;
  Vec c = coeffs;
  Rational b = rhs;
  // Orient greater-relations to less-relations by negating the row.
  if (rel_ == RelOp::kGt || rel_ == RelOp::kGe) {
    for (Rational& x : c) x = -x;
    b = -b;
    rel_ = (rel_ == RelOp::kGt) ? RelOp::kLt : RelOp::kLe;
  }
  Canonicalize(c, b);
}

void LinearAtom::Canonicalize(const Vec& coeffs, const Rational& rhs) {
  // Scale by the lcm of denominators to obtain integers.
  BigInt lcm(1);
  auto fold = [&lcm](const Rational& r) {
    BigInt g = BigInt::Gcd(lcm, r.den());
    lcm = (lcm / g) * r.den();
  };
  for (const Rational& r : coeffs) fold(r);
  fold(rhs);
  std::vector<BigInt> ints;
  ints.reserve(coeffs.size());
  const Rational scale(lcm);
  for (const Rational& r : coeffs) {
    Rational v = r * scale;
    LCDB_CHECK(v.IsInteger());
    ints.push_back(v.num());
  }
  Rational scaled_rhs = rhs * scale;
  LCDB_CHECK(scaled_rhs.IsInteger());
  BigInt b = scaled_rhs.num();

  // Divide by the gcd of all entries.
  BigInt g;
  for (const BigInt& v : ints) g = BigInt::Gcd(g, v);
  g = BigInt::Gcd(g, b);
  if (!g.IsZero() && !g.IsOne()) {
    for (BigInt& v : ints) v = v / g;
    b = b / g;
  }

  // Equalities: positive leading coefficient.
  if (rel_ == RelOp::kEq) {
    for (const BigInt& v : ints) {
      if (v.IsZero()) continue;
      if (v.IsNegative()) {
        for (BigInt& w : ints) w = -w;
        b = -b;
      }
      break;
    }
  }
  coeffs_ = std::move(ints);
  rhs_ = std::move(b);
}

bool LinearAtom::IsConstant() const {
  for (const BigInt& v : coeffs_) {
    if (!v.IsZero()) return false;
  }
  return true;
}

bool LinearAtom::ConstantValue() const {
  LCDB_CHECK(IsConstant());
  // The left-hand side is 0, so compare 0 REL rhs.
  return EvalRelOp(-rhs_.Sign(), rel_);
}

bool LinearAtom::Satisfies(const Vec& point) const {
  LCDB_CHECK(point.size() == coeffs_.size());
  Rational lhs;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].IsZero()) continue;
    lhs += Rational(coeffs_[i]) * point[i];
  }
  const Rational b(rhs_);
  int cmp = lhs < b ? -1 : (b < lhs ? 1 : 0);
  return EvalRelOp(cmp, rel_);
}

std::vector<LinearAtom> LinearAtom::Negate() const {
  Vec c(coeffs_.size());
  for (size_t i = 0; i < coeffs_.size(); ++i) c[i] = Rational(coeffs_[i]);
  const Rational b(rhs_);
  switch (rel_) {
    case RelOp::kLt:
      return {LinearAtom(c, RelOp::kGe, b)};
    case RelOp::kLe:
      return {LinearAtom(c, RelOp::kGt, b)};
    case RelOp::kEq:
      return {LinearAtom(c, RelOp::kLt, b), LinearAtom(c, RelOp::kGt, b)};
    case RelOp::kGe:
      return {LinearAtom(c, RelOp::kLt, b)};
    case RelOp::kGt:
      return {LinearAtom(c, RelOp::kLe, b)};
  }
  LCDB_CHECK(false);
  return {};
}

LinearAtom LinearAtom::ClosureAtom() const {
  LinearAtom out = *this;
  out.rel_ = Closure(rel_);
  return out;
}

LinearAtom LinearAtom::Substitute(const std::vector<AffineExpr>& map,
                                  size_t target_arity) const {
  LCDB_CHECK(map.size() == coeffs_.size());
  Vec new_coeffs(target_arity);
  Rational new_rhs(rhs_);
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].IsZero()) continue;
    const Rational factor{coeffs_[i]};
    LCDB_CHECK(map[i].coeffs.size() == target_arity);
    for (size_t j = 0; j < target_arity; ++j) {
      new_coeffs[j] += factor * map[i].coeffs[j];
    }
    new_rhs -= factor * map[i].constant;
  }
  return LinearAtom(new_coeffs, rel_, new_rhs);
}

LinearConstraint LinearAtom::ToLinearConstraint() const {
  Vec c(coeffs_.size());
  for (size_t i = 0; i < coeffs_.size(); ++i) c[i] = Rational(coeffs_[i]);
  return LinearConstraint(std::move(c), rel_, Rational(rhs_));
}

std::string LinearAtom::ToString(
    const std::vector<std::string>& var_names) const {
  std::string out;
  bool first = true;
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i].IsZero()) continue;
    const BigInt& c = coeffs_[i];
    std::string name = i < var_names.size()
                           ? var_names[i]
                           : "x" + std::to_string(i);
    if (first) {
      if (c == BigInt(1)) {
        out += name;
      } else if (c == BigInt(-1)) {
        out += "-" + name;
      } else {
        out += c.ToString() + name;
      }
      first = false;
    } else {
      if (c.IsNegative()) {
        out += " - ";
        BigInt a = -c;
        if (!a.IsOne()) out += a.ToString();
      } else {
        out += " + ";
        if (!c.IsOne()) out += c.ToString();
      }
      out += name;
    }
  }
  if (first) out += "0";
  out += " ";
  out += RelOpToString(rel_);
  out += " ";
  out += rhs_.ToString();
  return out;
}

bool LinearAtom::operator==(const LinearAtom& other) const {
  return rel_ == other.rel_ && rhs_ == other.rhs_ && coeffs_ == other.coeffs_;
}

bool LinearAtom::operator<(const LinearAtom& other) const {
  if (rel_ != other.rel_) return static_cast<int>(rel_) < static_cast<int>(other.rel_);
  if (coeffs_.size() != other.coeffs_.size()) {
    return coeffs_.size() < other.coeffs_.size();
  }
  for (size_t i = 0; i < coeffs_.size(); ++i) {
    if (coeffs_[i] != other.coeffs_[i]) return coeffs_[i] < other.coeffs_[i];
  }
  return rhs_ < other.rhs_;
}

size_t LinearAtom::Hash() const {
  size_t h = static_cast<size_t>(rel_) * 0x9e3779b97f4a7c15ull;
  for (const BigInt& c : coeffs_) {
    h ^= c.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  h ^= rhs_.Hash() + (h << 6) + (h >> 2);
  return h;
}

}  // namespace lcdb
