#ifndef LCDB_CONSTRAINT_LINEAR_ATOM_H_
#define LCDB_CONSTRAINT_LINEAR_ATOM_H_

#include <string>
#include <vector>

#include "arith/bigint.h"
#include "linalg/matrix.h"
#include "lp/simplex.h"
#include "util/relop.h"

namespace lcdb {

/// An affine expression  coeffs . y + constant  over a variable space of
/// fixed arity. Used to substitute terms for variables in atoms (e.g. when
/// evaluating S(t1, ..., td) for compound terms t_i).
struct AffineExpr {
  Vec coeffs;
  Rational constant;

  AffineExpr() = default;
  AffineExpr(Vec c, Rational k) : coeffs(std::move(c)), constant(std::move(k)) {}

  /// The expression `y_index` over `num_vars` variables.
  static AffineExpr Variable(size_t num_vars, size_t index);
  /// The constant expression `k` over `num_vars` variables.
  static AffineExpr Constant(size_t num_vars, Rational k);

  Rational EvaluateAt(const Vec& point) const;
};

/// A canonical linear atom  sum coeffs_i x_i  REL  rhs  with *integer*
/// (BigInt) coefficients — exactly the atoms the paper's representation
/// formulas are built from (Section 2 fixes integer coefficients).
///
/// Canonical form:
///  - coefficients and rhs are integers with gcd 1 (or the atom is the
///    trivial `0 REL rhs` constant atom),
///  - the relation is one of <, <=, = (greater relations are flipped by
///    negating the row),
///  - equalities have a positive leading (first nonzero) coefficient.
/// Canonicalization makes syntactic equality meaningful, which DNF
/// deduplication and hyperplane identification rely on.
class LinearAtom {
 public:
  /// Builds the canonical atom for `coeffs . x REL rhs` with rational input.
  LinearAtom(const Vec& coeffs, RelOp rel, const Rational& rhs);

  size_t num_vars() const { return coeffs_.size(); }
  const std::vector<BigInt>& coeffs() const { return coeffs_; }
  const BigInt& rhs() const { return rhs_; }
  RelOp rel() const { return rel_; }

  /// True if all coefficients are zero, i.e. the atom is constantly true or
  /// false.
  bool IsConstant() const;
  /// For constant atoms: the truth value.
  bool ConstantValue() const;

  bool Satisfies(const Vec& point) const;

  /// The negation, which is again a single atom (e.g. !(a.x <= b) is
  /// a.x > b, canonicalized to -a.x < -b) — except for equalities which
  /// split into two strict atoms.
  std::vector<LinearAtom> Negate() const;

  /// The atom with strictness relaxed (topological closure).
  LinearAtom ClosureAtom() const;

  /// Rewrites the atom under the affine substitution x_i := map[i], yielding
  /// an atom over the target variable space of `target_arity` variables.
  LinearAtom Substitute(const std::vector<AffineExpr>& map,
                        size_t target_arity) const;

  /// LP-facing view (rational coefficients).
  LinearConstraint ToLinearConstraint() const;

  /// Renders e.g. "2x - 3y <= 5" using the given variable names (or x0, x1,
  /// ... when names are not provided).
  std::string ToString(const std::vector<std::string>& var_names = {}) const;

  bool operator==(const LinearAtom& other) const;
  bool operator<(const LinearAtom& other) const;  ///< arbitrary total order
  size_t Hash() const;

 private:
  LinearAtom() = default;
  void Canonicalize(const Vec& coeffs, const Rational& rhs);

  std::vector<BigInt> coeffs_;
  RelOp rel_ = RelOp::kLe;
  BigInt rhs_;
};

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_LINEAR_ATOM_H_
