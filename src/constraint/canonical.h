#ifndef LCDB_CONSTRAINT_CANONICAL_H_
#define LCDB_CONSTRAINT_CANONICAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "constraint/conjunction.h"

namespace lcdb {

/// The canonical form of a conjunctive constraint system, the key format of
/// the constraint kernel's caches (engine/kernel.h).
///
/// Canonicalization reuses the invariants the constraint layer already
/// enforces — per-atom GCD-normalized integer coefficients with oriented
/// relations (LinearAtom), plus sorted, deduplicated atom lists with
/// constant atoms folded away (Conjunction) — and adds a stable byte
/// encoding of that normal form together with its 64-bit FNV-1a hash. Two
/// systems that differ only by scaling, relation orientation, atom order,
/// duplicate atoms or constant atoms therefore share `encoding` (and hence
/// `hash`), which is what lets the kernel recognize the same feasibility
/// question when it arrives from different layers (DNF pruning,
/// Fourier-Motzkin redundancy tests, arrangement probes, decomposition cell
/// tests).
struct CanonicalSystem {
  size_t num_vars = 0;
  /// FNV-1a 64 of `encoding`: stable across runs and platforms, used as the
  /// cache bucket key.
  uint64_t hash = 0;
  /// Exact canonical byte encoding; resolves hash collisions in the caches.
  std::string encoding;
  /// The system contains a constant-false atom, i.e. it is trivially
  /// infeasible without any oracle call.
  bool syntactically_false = false;
  /// The canonicalized atoms: constant atoms removed, sorted, deduplicated.
  /// Empty (with `syntactically_false` unset) means TRUE.
  std::vector<LinearAtom> atoms;
};

/// Stable FNV-1a 64-bit hash of a byte string.
uint64_t StableHash64(std::string_view bytes);

/// Appends the canonical byte encoding of one atom to `out`. The encoding
/// is `R c_1,...,c_n|rhs;` with R the oriented relation character and the
/// coefficients in decimal.
void AppendAtomEncoding(const LinearAtom& atom, std::string* out);

/// Stable 64-bit hash of a single canonical atom.
uint64_t StableAtomHash(const LinearAtom& atom);

/// Canonicalizes a raw LP-level system: every constraint is rebuilt as a
/// canonical LinearAtom, constant atoms are folded, and the result is
/// sorted and deduplicated before encoding.
CanonicalSystem CanonicalizeSystem(
    size_t num_vars, const std::vector<LinearConstraint>& constraints);

/// Canonicalizes a Conjunction. Its invariant already provides the
/// normalized atom list, so this only encodes and hashes; the result equals
/// `CanonicalizeSystem(conj.num_vars(), conj.ToConstraints())`.
CanonicalSystem CanonicalizeConjunction(const Conjunction& conj);

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_CANONICAL_H_
