#include "constraint/simplify.h"

namespace lcdb {

DnfFormula Difference(const DnfFormula& lhs, const DnfFormula& rhs) {
  return lhs.And(rhs.Negate());
}

bool Implies(const DnfFormula& lhs, const DnfFormula& rhs) {
  return Difference(lhs, rhs).IsEmpty();
}

bool AreEquivalent(const DnfFormula& lhs, const DnfFormula& rhs) {
  return Implies(lhs, rhs) && Implies(rhs, lhs);
}

}  // namespace lcdb
