#include "constraint/simplify.h"

#include "engine/kernel.h"
#include "util/status.h"

namespace lcdb {

DnfFormula Difference(const DnfFormula& lhs, const DnfFormula& rhs) {
  return lhs.And(rhs.Negate());
}

bool Implies(const DnfFormula& lhs, const DnfFormula& rhs) {
  LCDB_CHECK(lhs.num_vars() == rhs.num_vars());
  // Single-conjunct rhs: lhs ⊨ rhs iff every (nonempty) disjunct of lhs
  // implies every atom of the conjunct. Decided atom-by-atom in the
  // kernel's implication cache without materializing NOT(rhs) in DNF —
  // the common shape for redundancy and containment questions.
  if (rhs.disjuncts().size() == 1) {
    ConstraintKernel& kernel = CurrentKernel();
    for (const Conjunction& disjunct : lhs.disjuncts()) {
      if (!disjunct.IsFeasible()) continue;
      for (const LinearAtom& atom : rhs.disjuncts()[0].atoms()) {
        if (!kernel.ImpliesAtom(disjunct, atom)) return false;
      }
    }
    return true;
  }
  return Difference(lhs, rhs).IsEmpty();
}

bool AreEquivalent(const DnfFormula& lhs, const DnfFormula& rhs) {
  return Implies(lhs, rhs) && Implies(rhs, lhs);
}

}  // namespace lcdb
