#include "constraint/parser.h"

#include <cctype>
#include <optional>

namespace lcdb {
namespace {

/// Hand-written recursive-descent parser over a character cursor. The
/// constraint grammar is small enough that no separate token stream is
/// needed; the core query language has its own, richer parser.
class ConstraintParser {
 public:
  ConstraintParser(std::string_view text,
                   const std::vector<std::string>& var_names)
      : text_(text), var_names_(var_names) {}

  Result<DnfFormula> ParseFormula() {
    LCDB_ASSIGN_OR_RETURN(DnfFormula f, ParseDisjunction());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return f;
  }

  Result<LinearAtom> ParseSingleAtom() {
    LCDB_ASSIGN_OR_RETURN(LinearAtom atom, ParseAtomInner());
    SkipSpace();
    if (pos_ != text_.size()) {
      return Error("unexpected trailing input");
    }
    return atom;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::ParseError(message + " at offset " + std::to_string(pos_) +
                              " in \"" + std::string(text_) + "\"");
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(std::string_view token) {
    SkipSpace();
    if (text_.substr(pos_, token.size()) == token) {
      pos_ += token.size();
      return true;
    }
    return false;
  }

  char Peek() {
    SkipSpace();
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }

  Result<DnfFormula> ParseDisjunction() {
    LCDB_ASSIGN_OR_RETURN(DnfFormula f, ParseConjunction());
    while (Consume("|")) {
      LCDB_ASSIGN_OR_RETURN(DnfFormula g, ParseConjunction());
      f = f.Or(g);
    }
    return f;
  }

  Result<DnfFormula> ParseConjunction() {
    LCDB_ASSIGN_OR_RETURN(DnfFormula f, ParseUnary());
    while (Consume("&")) {
      LCDB_ASSIGN_OR_RETURN(DnfFormula g, ParseUnary());
      f = f.And(g);
    }
    return f;
  }

  Result<DnfFormula> ParseUnary() {
    if (Consume("!")) {
      LCDB_ASSIGN_OR_RETURN(DnfFormula f, ParseUnary());
      return f.Negate();
    }
    // A '(' may open either a subformula or never occurs inside linexpr, so
    // it is unambiguous here.
    if (Peek() == '(') {
      Consume("(");
      LCDB_ASSIGN_OR_RETURN(DnfFormula f, ParseDisjunction());
      if (!Consume(")")) return Error("expected ')'");
      return f;
    }
    SkipSpace();
    size_t atom_start = pos_;
    // "true" / "false" literals.
    if (ConsumeWord("true")) return DnfFormula::True(var_names_.size());
    if (ConsumeWord("false")) return DnfFormula::False(var_names_.size());
    pos_ = atom_start;
    // != desugars to two atoms.
    LCDB_ASSIGN_OR_RETURN(Vec lhs, ParseLinExpr());
    LCDB_ASSIGN_OR_RETURN(Rational lhs_const, TakeConstant());
    SkipSpace();
    std::optional<RelOp> rel = ParseRelOp();
    if (!rel.has_value() && !not_equal_) return Error("expected relation");
    bool neq = not_equal_;
    not_equal_ = false;
    LCDB_ASSIGN_OR_RETURN(Vec rhs, ParseLinExpr());
    LCDB_ASSIGN_OR_RETURN(Rational rhs_const, TakeConstant());
    // Move variables left, constants right:  (lhs - rhs).x REL rc - lc.
    Vec coeffs = VecSub(lhs, rhs);
    Rational constant = rhs_const - lhs_const;
    if (neq) {
      DnfFormula lt = DnfFormula::FromAtom(LinearAtom(coeffs, RelOp::kLt, constant));
      DnfFormula gt = DnfFormula::FromAtom(LinearAtom(coeffs, RelOp::kGt, constant));
      return lt.Or(gt);
    }
    return DnfFormula::FromAtom(LinearAtom(coeffs, *rel, constant));
  }

  Result<LinearAtom> ParseAtomInner() {
    LCDB_ASSIGN_OR_RETURN(Vec lhs, ParseLinExpr());
    LCDB_ASSIGN_OR_RETURN(Rational lhs_const, TakeConstant());
    std::optional<RelOp> rel = ParseRelOp();
    if (!rel.has_value()) return Error("expected relation");
    LCDB_ASSIGN_OR_RETURN(Vec rhs, ParseLinExpr());
    LCDB_ASSIGN_OR_RETURN(Rational rhs_const, TakeConstant());
    return LinearAtom(VecSub(lhs, rhs), *rel, rhs_const - lhs_const);
  }

  bool ConsumeWord(std::string_view word) {
    SkipSpace();
    if (text_.substr(pos_, word.size()) != word) return false;
    size_t end = pos_ + word.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_')) {
      return false;
    }
    pos_ = end;
    return true;
  }

  std::optional<RelOp> ParseRelOp() {
    if (Consume("<=")) return RelOp::kLe;
    if (Consume(">=")) return RelOp::kGe;
    if (Consume("!=")) {
      not_equal_ = true;
      return std::nullopt;
    }
    if (Consume("<")) return RelOp::kLt;
    if (Consume(">")) return RelOp::kGt;
    if (Consume("=")) return RelOp::kEq;
    return std::nullopt;
  }

  /// Parses a linear expression; variable coefficients go into the returned
  /// vector and the accumulated constant is stored for `TakeConstant`.
  Result<Vec> ParseLinExpr() {
    Vec coeffs(var_names_.size());
    constant_ = Rational(0);
    bool negative = Consume("-");
    LCDB_RETURN_IF_ERROR(ParseTerm(&coeffs, negative));
    while (true) {
      SkipSpace();
      if (Consume("+")) {
        LCDB_RETURN_IF_ERROR(ParseTerm(&coeffs, false));
      } else if (Consume("-")) {
        LCDB_RETURN_IF_ERROR(ParseTerm(&coeffs, true));
      } else {
        break;
      }
    }
    return coeffs;
  }

  Result<Rational> TakeConstant() { return constant_; }

  Status ParseTerm(Vec* coeffs, bool negative) {
    SkipSpace();
    Rational coeff(1);
    bool saw_number = false;
    if (pos_ < text_.size() &&
        std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      LCDB_ASSIGN_OR_RETURN(coeff, ParseRational());
      saw_number = true;
    }
    Consume("*");
    SkipSpace();
    if (pos_ < text_.size() &&
        (std::isalpha(static_cast<unsigned char>(text_[pos_])) ||
         text_[pos_] == '_')) {
      size_t start = pos_;
      while (pos_ < text_.size() &&
             (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
              text_[pos_] == '_')) {
        ++pos_;
      }
      std::string name(text_.substr(start, pos_ - start));
      size_t index = var_names_.size();
      for (size_t i = 0; i < var_names_.size(); ++i) {
        if (var_names_[i] == name) {
          index = i;
          break;
        }
      }
      if (index == var_names_.size()) {
        return Status::ParseError("unknown variable '" + name + "'");
      }
      (*coeffs)[index] += negative ? -coeff : coeff;
      return Status::Ok();
    }
    if (!saw_number) return Error("expected term");
    constant_ += negative ? -coeff : coeff;
    return Status::Ok();
  }

  Result<Rational> ParseRational() {
    LCDB_ASSIGN_OR_RETURN(BigInt numerator, ParseInteger());
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '/') {
      ++pos_;
      SkipSpace();
      LCDB_ASSIGN_OR_RETURN(BigInt denominator, ParseInteger());
      if (denominator.IsZero()) return Error("zero denominator");
      return Rational(std::move(numerator), std::move(denominator));
    }
    return Rational(std::move(numerator));
  }

  Result<BigInt> ParseInteger() {
    SkipSpace();
    size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected integer");
    return BigInt::FromString(text_.substr(start, pos_ - start));
  }

  std::string_view text_;
  const std::vector<std::string>& var_names_;
  size_t pos_ = 0;
  Rational constant_;
  bool not_equal_ = false;
};

}  // namespace

Result<DnfFormula> ParseDnf(std::string_view text,
                            const std::vector<std::string>& var_names) {
  ConstraintParser parser(text, var_names);
  return parser.ParseFormula();
}

Result<LinearAtom> ParseAtom(std::string_view text,
                             const std::vector<std::string>& var_names) {
  ConstraintParser parser(text, var_names);
  return parser.ParseSingleAtom();
}

}  // namespace lcdb
