#include "constraint/dnf_formula.h"

#include <algorithm>

#include "engine/kernel.h"
#include "util/status.h"

namespace lcdb {

DnfFormula::DnfFormula(size_t num_vars, std::vector<Conjunction> disjuncts)
    : num_vars_(num_vars), disjuncts_(std::move(disjuncts)) {
  for (const Conjunction& c : disjuncts_) {
    LCDB_CHECK(c.num_vars() == num_vars_);
  }
  std::erase_if(disjuncts_,
                [](const Conjunction& c) { return c.IsSyntacticallyFalse(); });
  for (const Conjunction& c : disjuncts_) {
    if (c.IsTrue()) {
      disjuncts_ = {Conjunction(num_vars_)};
      break;
    }
  }
}

DnfFormula DnfFormula::True(size_t num_vars) {
  return DnfFormula(num_vars, {Conjunction(num_vars)});
}

DnfFormula DnfFormula::False(size_t num_vars) { return DnfFormula(num_vars); }

DnfFormula DnfFormula::FromAtom(const LinearAtom& atom) {
  if (atom.IsConstant()) {
    return atom.ConstantValue() ? True(atom.num_vars()) : False(atom.num_vars());
  }
  return DnfFormula(atom.num_vars(), {Conjunction(atom.num_vars(), {atom})});
}

bool DnfFormula::IsEmpty() const {
  for (const Conjunction& c : disjuncts_) {
    if (c.IsFeasible()) return false;
  }
  return true;
}

Vec DnfFormula::FindWitness() const {
  for (const Conjunction& c : disjuncts_) {
    Vec w = c.FindWitness();
    if (!w.empty() || (c.IsTrue() && num_vars_ == 0)) return w;
    if (c.IsTrue()) return Vec(num_vars_);
  }
  return {};
}

bool DnfFormula::Satisfies(const Vec& point) const {
  for (const Conjunction& c : disjuncts_) {
    if (c.Satisfies(point)) return true;
  }
  return false;
}

DnfFormula DnfFormula::Or(const DnfFormula& other) const {
  LCDB_CHECK(num_vars_ == other.num_vars_);
  std::vector<Conjunction> out = disjuncts_;
  out.insert(out.end(), other.disjuncts_.begin(), other.disjuncts_.end());
  DnfFormula result(num_vars_, std::move(out));
  result.Simplify();
  return result;
}

DnfFormula DnfFormula::And(const DnfFormula& other) const {
  LCDB_CHECK(num_vars_ == other.num_vars_);
  std::vector<Conjunction> out;
  out.reserve(disjuncts_.size() * other.disjuncts_.size());
  for (const Conjunction& a : disjuncts_) {
    for (const Conjunction& b : other.disjuncts_) {
      std::vector<LinearAtom> atoms = a.atoms();
      atoms.insert(atoms.end(), b.atoms().begin(), b.atoms().end());
      Conjunction merged(num_vars_, std::move(atoms));
      if (!merged.IsSyntacticallyFalse()) out.push_back(std::move(merged));
    }
  }
  DnfFormula result(num_vars_, std::move(out));
  result.Simplify();
  return result;
}

DnfFormula DnfFormula::Negate() const {
  // NOT (C1 | ... | Cm) == AND_i NOT(Ci); NOT(Ci) is the disjunction of the
  // negations of its atoms. Build the conjunction incrementally with pruning
  // so intermediate formulas stay small.
  DnfFormula acc = True(num_vars_);
  for (const Conjunction& c : disjuncts_) {
    if (c.IsTrue()) return False(num_vars_);
    std::vector<Conjunction> negated;
    for (const LinearAtom& atom : c.atoms()) {
      for (const LinearAtom& neg : atom.Negate()) {
        negated.emplace_back(num_vars_, std::vector<LinearAtom>{neg});
      }
    }
    acc = acc.And(DnfFormula(num_vars_, std::move(negated)));
    if (acc.IsSyntacticallyFalse()) return acc;
  }
  return acc;
}

DnfFormula DnfFormula::Substitute(const std::vector<AffineExpr>& map,
                                  size_t target_arity) const {
  std::vector<Conjunction> out;
  out.reserve(disjuncts_.size());
  bool top = false;
  for (const Conjunction& c : disjuncts_) {
    Conjunction sub = c.Substitute(map, target_arity);
    if (sub.IsTrue()) top = true;
    if (!sub.IsSyntacticallyFalse()) out.push_back(std::move(sub));
  }
  if (top) return True(target_arity);
  return DnfFormula(target_arity, std::move(out));
}

void DnfFormula::Simplify() {
  // Drop semantically empty disjuncts.
  std::erase_if(disjuncts_,
                [](const Conjunction& c) { return !c.IsFeasible(); });
  // Sort + dedupe.
  std::sort(disjuncts_.begin(), disjuncts_.end());
  disjuncts_.erase(std::unique(disjuncts_.begin(), disjuncts_.end()),
                   disjuncts_.end());
  // Syntactic subsumption: disjunct B is redundant if some other disjunct's
  // atoms are a subset of B's.
  std::vector<bool> dead(disjuncts_.size(), false);
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (dead[i]) continue;
    for (size_t j = 0; j < disjuncts_.size(); ++j) {
      if (i == j || dead[j]) continue;
      if (disjuncts_[i].SyntacticallySubsumes(disjuncts_[j])) dead[j] = true;
    }
  }
  size_t keep = 0;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (dead[i]) continue;
    if (keep != i) disjuncts_[keep] = std::move(disjuncts_[i]);
    ++keep;
  }
  disjuncts_.erase(disjuncts_.begin() + keep, disjuncts_.end());
  if (disjuncts_.size() == 1 && disjuncts_[0].IsTrue()) return;
  for (const Conjunction& c : disjuncts_) {
    if (c.IsTrue()) {
      disjuncts_ = {Conjunction(num_vars_)};
      return;
    }
  }
}

void DnfFormula::SimplifyStrong() {
  Simplify();
  for (Conjunction& c : disjuncts_) c.RemoveRedundantAtoms();
  Simplify();
  // Semantic subsumption through the kernel's implication cache: disjunct D
  // is dropped when some other surviving disjunct C contains it, i.e. D
  // implies every atom of C. Simplify's syntactic pass only catches
  // atom-subset containment; this catches e.g. a strict slab inside a wider
  // closed one. Dead disjuncts never kill others, so of a semantically
  // equal pair exactly one survives.
  if (disjuncts_.size() > 1) {
    ConstraintKernel& kernel = CurrentKernel();
    std::vector<bool> dead(disjuncts_.size(), false);
    for (size_t j = 0; j < disjuncts_.size(); ++j) {
      for (size_t i = 0; i < disjuncts_.size() && !dead[j]; ++i) {
        if (i == j || dead[i]) continue;
        bool contained = true;
        for (const LinearAtom& atom : disjuncts_[i].atoms()) {
          if (!kernel.ImpliesAtom(disjuncts_[j], atom)) {
            contained = false;
            break;
          }
        }
        if (contained) dead[j] = true;
      }
    }
    size_t keep = 0;
    for (size_t j = 0; j < disjuncts_.size(); ++j) {
      if (dead[j]) continue;
      if (keep != j) disjuncts_[keep] = std::move(disjuncts_[j]);
      ++keep;
    }
    disjuncts_.erase(disjuncts_.begin() + keep, disjuncts_.end());
  }
}

size_t DnfFormula::AtomCount() const {
  size_t n = 0;
  for (const Conjunction& c : disjuncts_) n += c.atoms().size();
  return n;
}

std::string DnfFormula::ToString(
    const std::vector<std::string>& var_names) const {
  if (disjuncts_.empty()) return "false";
  if (IsSyntacticallyTrue()) return "true";
  std::string out;
  for (size_t i = 0; i < disjuncts_.size(); ++i) {
    if (i > 0) out += " | ";
    if (disjuncts_.size() > 1 && disjuncts_[i].atoms().size() > 1) {
      out += "(" + disjuncts_[i].ToString(var_names) + ")";
    } else {
      out += disjuncts_[i].ToString(var_names);
    }
  }
  return out;
}

size_t DnfFormula::SizeMeasure() const {
  size_t n = 1;  // the formula itself
  for (const Conjunction& c : disjuncts_) n += 1 + c.atoms().size();
  return n;
}

}  // namespace lcdb
