#ifndef LCDB_CONSTRAINT_CONJUNCTION_H_
#define LCDB_CONSTRAINT_CONJUNCTION_H_

#include <string>
#include <vector>

#include "constraint/linear_atom.h"

namespace lcdb {

/// A conjunction of linear atoms, i.e. one disjunct of a DNF representation.
/// Geometrically this is a (possibly relatively open) polyhedron: the
/// intersection of open/closed halfspaces and hyperplanes — exactly the
/// paper's generalized polyhedra (Section 3 allows open halfspaces).
///
/// Invariant: atoms are sorted and deduplicated; constant-true atoms are
/// dropped. A conjunction containing a constant-false atom normalizes to the
/// canonical false conjunction (single false atom). An empty atom list means
/// TRUE (all of R^d).
class Conjunction {
 public:
  explicit Conjunction(size_t num_vars) : num_vars_(num_vars) {}
  Conjunction(size_t num_vars, std::vector<LinearAtom> atoms);

  size_t num_vars() const { return num_vars_; }
  const std::vector<LinearAtom>& atoms() const { return atoms_; }
  bool IsTrue() const { return atoms_.empty(); }
  /// Syntactically false (contains a constant-false atom). A conjunction can
  /// also be semantically empty without being syntactically false; use
  /// `IsFeasible` for the semantic test.
  bool IsSyntacticallyFalse() const;

  void AddAtom(const LinearAtom& atom);

  bool Satisfies(const Vec& point) const;

  /// LP view of the atoms.
  std::vector<LinearConstraint> ToConstraints() const;

  /// Exact feasibility via the LP oracle.
  bool IsFeasible() const;

  /// A point satisfying all atoms (empty if infeasible).
  Vec FindWitness() const;

  /// Atom-wise affine substitution (see LinearAtom::Substitute).
  Conjunction Substitute(const std::vector<AffineExpr>& map,
                         size_t target_arity) const;

  /// Topological closure (strict atoms relaxed).
  Conjunction ClosureConjunction() const;

  /// True if this conjunction's atom set is a subset of `other`'s, which
  /// means `other` implies this syntactically (used for subsumption).
  bool SyntacticallySubsumes(const Conjunction& other) const;

  /// Removes atoms implied by the remaining ones (one LP call per atom).
  void RemoveRedundantAtoms();

  std::string ToString(const std::vector<std::string>& var_names = {}) const;

  bool operator==(const Conjunction& other) const {
    return num_vars_ == other.num_vars_ && atoms_ == other.atoms_;
  }
  bool operator<(const Conjunction& other) const;
  size_t Hash() const;

 private:
  void Normalize();

  size_t num_vars_;
  std::vector<LinearAtom> atoms_;
};

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_CONJUNCTION_H_
