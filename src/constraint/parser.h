#ifndef LCDB_CONSTRAINT_PARSER_H_
#define LCDB_CONSTRAINT_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "constraint/dnf_formula.h"
#include "util/status.h"

namespace lcdb {

/// Parses a quantifier-free boolean combination of linear (in)equalities
/// over the named variables into DNF.
///
/// Grammar (usual precedence, `&` over `|`):
///   formula := conj ('|' conj)* ; conj := unary ('&' unary)*
///   unary   := '!' unary | '(' formula ')' | atom
///   atom    := linexpr (< | <= | = | >= | > | !=) linexpr
///   linexpr := ['-'] term (('+'|'-') term)*
///   term    := rational ['*' var | var] | var      e.g. "2x", "3/2*y", "5"
///
/// `!=` desugars to a disjunction of `<` and `>`; `!` is compiled away by
/// DNF negation, matching the paper's negation-free representations.
Result<DnfFormula> ParseDnf(std::string_view text,
                            const std::vector<std::string>& var_names);

/// Parses a single linear atom (no boolean connectives).
Result<LinearAtom> ParseAtom(std::string_view text,
                             const std::vector<std::string>& var_names);

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_PARSER_H_
