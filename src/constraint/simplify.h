#ifndef LCDB_CONSTRAINT_SIMPLIFY_H_
#define LCDB_CONSTRAINT_SIMPLIFY_H_

#include "constraint/dnf_formula.h"

namespace lcdb {

/// Exact semantic implication: every point of `lhs` satisfies `rhs`.
/// Decided as emptiness of lhs AND NOT(rhs) via the LP oracle.
bool Implies(const DnfFormula& lhs, const DnfFormula& rhs);

/// Exact semantic equivalence of two quantifier-free formulas. Queries are
/// *abstract* (Section 2): different representations of the same relation
/// must be treated identically, and this predicate is how lcdb (and its
/// tests) compare representations semantically.
bool AreEquivalent(const DnfFormula& lhs, const DnfFormula& rhs);

/// The set difference lhs AND NOT(rhs) as a DNF formula.
DnfFormula Difference(const DnfFormula& lhs, const DnfFormula& rhs);

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_SIMPLIFY_H_
