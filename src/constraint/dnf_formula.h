#ifndef LCDB_CONSTRAINT_DNF_FORMULA_H_
#define LCDB_CONSTRAINT_DNF_FORMULA_H_

#include <string>
#include <vector>

#include "constraint/conjunction.h"

namespace lcdb {

/// A quantifier-free formula in disjunctive normal form over `num_vars` real
/// variables — the paper's representation format for database relations and
/// for every query answer (Section 2 requires representations in DNF and
/// query languages to be *closed*, i.e. to output such formulas again).
///
/// Semantics: the union of the disjunct polyhedra; an empty disjunct list is
/// FALSE, a disjunct with no atoms is TRUE.
class DnfFormula {
 public:
  explicit DnfFormula(size_t num_vars) : num_vars_(num_vars) {}
  DnfFormula(size_t num_vars, std::vector<Conjunction> disjuncts);

  static DnfFormula True(size_t num_vars);
  static DnfFormula False(size_t num_vars);
  /// The formula with a single atom.
  static DnfFormula FromAtom(const LinearAtom& atom);

  size_t num_vars() const { return num_vars_; }
  const std::vector<Conjunction>& disjuncts() const { return disjuncts_; }

  bool IsSyntacticallyFalse() const { return disjuncts_.empty(); }
  bool IsSyntacticallyTrue() const {
    return disjuncts_.size() == 1 && disjuncts_[0].IsTrue();
  }

  /// Exact semantic emptiness via the LP oracle.
  bool IsEmpty() const;
  /// A point satisfying the formula (empty vector if none).
  Vec FindWitness() const;

  bool Satisfies(const Vec& point) const;

  /// Disjunction (concatenates and light-normalizes).
  DnfFormula Or(const DnfFormula& other) const;
  /// Conjunction (pairwise products of disjuncts, infeasible ones pruned).
  DnfFormula And(const DnfFormula& other) const;
  /// Negation via De Morgan, distributing back into DNF with pruning. This
  /// is the expensive operation; the simplifier keeps the result small.
  DnfFormula Negate() const;

  /// Atom-wise affine substitution x_i := map[i] into a `target_arity`-ary
  /// formula.
  DnfFormula Substitute(const std::vector<AffineExpr>& map,
                        size_t target_arity) const;

  /// Drops infeasible disjuncts (LP per disjunct), deduplicates, and removes
  /// syntactically subsumed disjuncts.
  void Simplify();
  /// Additionally removes per-disjunct redundant atoms (more LP calls).
  void SimplifyStrong();

  /// Total number of atoms across disjuncts; the paper's notion of the size
  /// of a representation (Section 2) up to a constant factor.
  size_t AtomCount() const;

  std::string ToString(const std::vector<std::string>& var_names = {}) const;

  /// Number of boolean constants, atoms and connectives — the database size
  /// measure |B| used in the complexity statements.
  size_t SizeMeasure() const;

  bool operator==(const DnfFormula& other) const {
    return num_vars_ == other.num_vars_ && disjuncts_ == other.disjuncts_;
  }

 private:
  size_t num_vars_;
  std::vector<Conjunction> disjuncts_;
};

}  // namespace lcdb

#endif  // LCDB_CONSTRAINT_DNF_FORMULA_H_
