#include "constraint/conjunction.h"

#include <algorithm>

#include "engine/kernel.h"
#include "util/status.h"

namespace lcdb {

namespace {
LinearAtom FalseAtom(size_t num_vars) {
  return LinearAtom(Vec(num_vars), RelOp::kLt, Rational(0));  // 0 < 0
}
}  // namespace

Conjunction::Conjunction(size_t num_vars, std::vector<LinearAtom> atoms)
    : num_vars_(num_vars), atoms_(std::move(atoms)) {
  Normalize();
}

void Conjunction::Normalize() {
  for (const LinearAtom& atom : atoms_) {
    LCDB_CHECK(atom.num_vars() == num_vars_);
    if (atom.IsConstant() && !atom.ConstantValue()) {
      atoms_ = {FalseAtom(num_vars_)};
      return;
    }
  }
  std::erase_if(atoms_, [](const LinearAtom& a) { return a.IsConstant(); });
  std::sort(atoms_.begin(), atoms_.end());
  atoms_.erase(std::unique(atoms_.begin(), atoms_.end()), atoms_.end());
}

bool Conjunction::IsSyntacticallyFalse() const {
  return atoms_.size() == 1 && atoms_[0].IsConstant() &&
         !atoms_[0].ConstantValue();
}

void Conjunction::AddAtom(const LinearAtom& atom) {
  atoms_.push_back(atom);
  Normalize();
}

bool Conjunction::Satisfies(const Vec& point) const {
  for (const LinearAtom& atom : atoms_) {
    if (atom.IsConstant()) {
      if (!atom.ConstantValue()) return false;
      continue;
    }
    if (!atom.Satisfies(point)) return false;
  }
  return true;
}

std::vector<LinearConstraint> Conjunction::ToConstraints() const {
  std::vector<LinearConstraint> out;
  out.reserve(atoms_.size());
  for (const LinearAtom& atom : atoms_) out.push_back(atom.ToLinearConstraint());
  return out;
}

bool Conjunction::IsFeasible() const {
  if (IsSyntacticallyFalse()) return false;
  if (atoms_.empty()) return true;
  return CurrentKernel().IsFeasible(*this);
}

Vec Conjunction::FindWitness() const {
  if (IsSyntacticallyFalse()) return {};
  FeasibilityResult r = CurrentKernel().Feasibility(*this);
  return r.feasible ? r.witness : Vec{};
}

Conjunction Conjunction::Substitute(const std::vector<AffineExpr>& map,
                                    size_t target_arity) const {
  std::vector<LinearAtom> atoms;
  atoms.reserve(atoms_.size());
  for (const LinearAtom& atom : atoms_) {
    atoms.push_back(atom.Substitute(map, target_arity));
  }
  return Conjunction(target_arity, std::move(atoms));
}

Conjunction Conjunction::ClosureConjunction() const {
  std::vector<LinearAtom> atoms;
  atoms.reserve(atoms_.size());
  for (const LinearAtom& atom : atoms_) atoms.push_back(atom.ClosureAtom());
  return Conjunction(num_vars_, std::move(atoms));
}

bool Conjunction::SyntacticallySubsumes(const Conjunction& other) const {
  // Both atom lists are sorted.
  return std::includes(other.atoms_.begin(), other.atoms_.end(),
                       atoms_.begin(), atoms_.end());
}

void Conjunction::RemoveRedundantAtoms() {
  if (atoms_.size() <= 1) return;
  ConstraintKernel& kernel = CurrentKernel();
  for (size_t i = 0; i < atoms_.size();) {
    std::vector<LinearAtom> rest;
    rest.reserve(atoms_.size() - 1);
    for (size_t j = 0; j < atoms_.size(); ++j) {
      if (j != i) rest.push_back(atoms_[j]);
    }
    if (kernel.ImpliesAtom(Conjunction(num_vars_, std::move(rest)),
                           atoms_[i])) {
      atoms_.erase(atoms_.begin() + i);
    } else {
      ++i;
    }
  }
}

std::string Conjunction::ToString(
    const std::vector<std::string>& var_names) const {
  if (atoms_.empty()) return "true";
  if (IsSyntacticallyFalse()) return "false";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i > 0) out += " & ";
    out += atoms_[i].ToString(var_names);
  }
  return out;
}

bool Conjunction::operator<(const Conjunction& other) const {
  return atoms_ < other.atoms_;
}

size_t Conjunction::Hash() const {
  size_t h = 1469598103934665603ull;
  for (const LinearAtom& atom : atoms_) {
    h ^= atom.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace lcdb
