#include "lp/simplex.h"

#include <atomic>
#include <optional>
#include <utility>

#include "engine/governor.h"
#include "engine/trace.h"
#include "util/status.h"

namespace lcdb {

namespace {
std::atomic<uint64_t> g_simplex_invocations{0};
std::atomic<uint64_t> g_simplex_pivots{0};
}  // namespace

SimplexCounters GetSimplexCounters() {
  SimplexCounters out;
  out.invocations = g_simplex_invocations.load(std::memory_order_relaxed);
  out.pivots = g_simplex_pivots.load(std::memory_order_relaxed);
  return out;
}

bool LinearConstraint::Satisfies(const Vec& point) const {
  const Rational lhs = Dot(coeffs, point);
  int cmp = 0;
  if (lhs < rhs) {
    cmp = -1;
  } else if (rhs < lhs) {
    cmp = 1;
  }
  return EvalRelOp(cmp, rel);
}

namespace {

/// Tableau simplex over exact rationals. All variables are >= 0; each row r
/// maintains  sum_j rows_[r][j] x_j = rhs_[r]  with rhs_[r] >= 0 and
/// basis_[r] the index of the variable basic in row r (coefficient one in
/// its row, zero elsewhere). The objective is kept as
/// z = obj_const_ + sum_j obj_[j] x_j with obj_[basic] = 0.
class Tableau {
 public:
  Tableau(size_t num_cols) : num_cols_(num_cols), obj_(num_cols) {}

  size_t num_cols() const { return num_cols_; }
  size_t num_rows() const { return rows_.size(); }
  const std::vector<size_t>& basis() const { return basis_; }
  const Rational& rhs(size_t r) const { return rhs_[r]; }
  const Rational& coeff(size_t r, size_t c) const { return rows_[r][c]; }
  const Rational& objective_value() const { return obj_const_; }

  void AddRow(Vec row, Rational rhs, size_t basic_var) {
    LCDB_CHECK(row.size() == num_cols_);
    LCDB_CHECK(rhs.Sign() >= 0);
    rows_.push_back(std::move(row));
    rhs_.push_back(std::move(rhs));
    basis_.push_back(basic_var);
  }

  /// Installs objective `z = sum coeffs[j] x_j`, rewritten through the
  /// current basis so that basic variables have zero reduced cost.
  void SetObjective(const Vec& coeffs) {
    LCDB_CHECK(coeffs.size() == num_cols_);
    obj_ = coeffs;
    obj_const_ = Rational(0);
    for (size_t r = 0; r < rows_.size(); ++r) {
      const Rational factor = obj_[basis_[r]];
      if (factor.IsZero()) continue;
      for (size_t c = 0; c < num_cols_; ++c) {
        obj_[c] -= factor * rows_[r][c];
      }
      obj_const_ += factor * rhs_[r];
      obj_[basis_[r]] = Rational(0);
    }
  }

  /// Runs Bland's-rule simplex until optimal or unbounded. `allowed` masks
  /// columns eligible to enter the basis (used to keep artificials out in
  /// phase 2). Returns false iff unbounded.
  bool Optimize(const std::vector<bool>& allowed) {
    while (true) {
      // Entering column: smallest index with positive reduced cost.
      size_t enter = num_cols_;
      for (size_t c = 0; c < num_cols_; ++c) {
        if (allowed[c] && obj_[c].Sign() > 0) {
          enter = c;
          break;
        }
      }
      if (enter == num_cols_) return true;  // optimal
      // Leaving row: minimum ratio rhs/coeff over rows with coeff > 0;
      // ties broken by smallest basic-variable index (Bland).
      size_t leave = num_rows();
      std::optional<Rational> best_ratio;
      for (size_t r = 0; r < num_rows(); ++r) {
        if (rows_[r][enter].Sign() <= 0) continue;
        Rational ratio = rhs_[r] / rows_[r][enter];
        if (!best_ratio.has_value() || ratio < *best_ratio ||
            (ratio == *best_ratio && basis_[r] < basis_[leave])) {
          best_ratio = std::move(ratio);
          leave = r;
        }
      }
      if (leave == num_rows()) return false;  // unbounded
      Pivot(leave, enter);
    }
  }

  void Pivot(size_t row, size_t col) {
    LCDB_CHECK(rows_[row][col].Sign() != 0);
    g_simplex_pivots.fetch_add(1, std::memory_order_relaxed);
    // Per-pivot cancellation point: a single adversarial LP can spin for a
    // long time, so the pivot budget and the wall-clock deadline must be
    // enforceable from inside one solve, not just between solves. The
    // tableau is function-local, so the unwind leaves no shared state.
    GovernorOnSimplexPivot();
    const Rational inv = Rational(1) / rows_[row][col];
    for (size_t c = 0; c < num_cols_; ++c) rows_[row][c] *= inv;
    rhs_[row] *= inv;
    rows_[row][col] = Rational(1);  // kill rounding-free drift from aliasing
    for (size_t r = 0; r < num_rows(); ++r) {
      if (r == row) continue;
      const Rational factor = rows_[r][col];
      if (factor.IsZero()) continue;
      for (size_t c = 0; c < num_cols_; ++c) {
        rows_[r][c] -= factor * rows_[row][c];
      }
      rhs_[r] -= factor * rhs_[row];
      rows_[r][col] = Rational(0);
    }
    const Rational ofactor = obj_[col];
    if (!ofactor.IsZero()) {
      for (size_t c = 0; c < num_cols_; ++c) {
        obj_[c] -= ofactor * rows_[row][c];
      }
      obj_const_ += ofactor * rhs_[row];
      obj_[col] = Rational(0);
    }
    basis_[row] = col;
  }

  void DropRow(size_t r) {
    rows_.erase(rows_.begin() + r);
    rhs_.erase(rhs_.begin() + r);
    basis_.erase(basis_.begin() + r);
  }

 private:
  size_t num_cols_;
  std::vector<Vec> rows_;
  Vec rhs_;
  std::vector<size_t> basis_;
  Vec obj_;
  Rational obj_const_;
};

}  // namespace

namespace {

/// Trace span of one LP solve, publishing the pivot count it spent. The
/// counter reads are gated on an installed tracer, so the disabled path
/// stays one relaxed load (the invocation counter is unconditional and
/// predates tracing).
class LpSolveSpan {
 public:
  LpSolveSpan()
      : pivots_before_(span_.active()
                           ? g_simplex_pivots.load(std::memory_order_relaxed)
                           : 0) {}
  ~LpSolveSpan() {
    if (span_.active()) {
      span_.Counter("pivots",
                    g_simplex_pivots.load(std::memory_order_relaxed) -
                        pivots_before_);
    }
  }

 private:
  TraceSpan span_{"lp.solve"};
  uint64_t pivots_before_;
};

}  // namespace

LpResult MaximizeLp(size_t num_vars,
                    const std::vector<LinearConstraint>& constraints,
                    const Vec& objective) {
  LCDB_CHECK(objective.size() == num_vars);
  g_simplex_invocations.fetch_add(1, std::memory_order_relaxed);
  LpSolveSpan lp_span;
  // Normalize constraints to `a . x <= b` form rows; equalities become two
  // inequalities. Strict relations are rejected (feasibility.h handles them).
  struct Row {
    Vec a;
    Rational b;
  };
  std::vector<Row> le_rows;
  for (const LinearConstraint& c : constraints) {
    LCDB_CHECK_MSG(!IsStrict(c.rel), "MaximizeLp requires non-strict relations");
    LCDB_CHECK(c.coeffs.size() == num_vars);
    if (c.rel == RelOp::kLe || c.rel == RelOp::kEq) {
      le_rows.push_back({c.coeffs, c.rhs});
    }
    if (c.rel == RelOp::kGe || c.rel == RelOp::kEq) {
      le_rows.push_back({VecScale(Rational(-1), c.coeffs), -c.rhs});
    }
  }

  // Column layout: [x+_0..x+_{n-1} | x-_0..x-_{n-1} | slacks | artificials].
  const size_t m = le_rows.size();
  const size_t slack_base = 2 * num_vars;
  // Count artificials: rows whose rhs is negative after slack insertion.
  size_t num_artificial = 0;
  for (const Row& row : le_rows) {
    if (row.b.Sign() < 0) ++num_artificial;
  }
  const size_t art_base = slack_base + m;
  const size_t num_cols = art_base + num_artificial;

  Tableau tableau(num_cols);
  size_t next_art = art_base;
  std::vector<size_t> artificial_vars;
  for (size_t r = 0; r < m; ++r) {
    Vec row(num_cols);
    Rational rhs = le_rows[r].b;
    Rational sign(1);
    if (rhs.Sign() < 0) {
      sign = Rational(-1);
      rhs = -rhs;
    }
    for (size_t j = 0; j < num_vars; ++j) {
      row[j] = sign * le_rows[r].a[j];
      row[num_vars + j] = -row[j];
    }
    row[slack_base + r] = sign;  // slack: +1 normally, -1 on negated rows
    size_t basic;
    if (sign.Sign() > 0) {
      basic = slack_base + r;
    } else {
      row[next_art] = Rational(1);
      basic = next_art;
      artificial_vars.push_back(next_art);
      ++next_art;
    }
    tableau.AddRow(std::move(row), std::move(rhs), basic);
  }

  std::vector<bool> allow_all(num_cols, true);
  if (num_artificial > 0) {
    // Phase 1: maximize -sum(artificials).
    Vec phase1(num_cols);
    for (size_t v : artificial_vars) phase1[v] = Rational(-1);
    tableau.SetObjective(phase1);
    bool bounded = tableau.Optimize(allow_all);
    LCDB_CHECK_MSG(bounded, "phase-1 objective cannot be unbounded");
    if (tableau.objective_value().Sign() < 0) {
      return {LpStatus::kInfeasible, Rational(0), {}};
    }
    // Drive remaining artificials out of the basis.
    for (size_t r = 0; r < tableau.num_rows();) {
      size_t bv = tableau.basis()[r];
      if (bv < art_base) {
        ++r;
        continue;
      }
      size_t pivot_col = num_cols;
      for (size_t c = 0; c < art_base; ++c) {
        if (tableau.coeff(r, c).Sign() != 0) {
          pivot_col = c;
          break;
        }
      }
      if (pivot_col == num_cols) {
        tableau.DropRow(r);  // redundant constraint
      } else {
        tableau.Pivot(r, pivot_col);
        ++r;
      }
    }
  }

  // Phase 2: real objective over split variables; artificials locked out.
  Vec phase2(num_cols);
  for (size_t j = 0; j < num_vars; ++j) {
    phase2[j] = objective[j];
    phase2[num_vars + j] = -objective[j];
  }
  tableau.SetObjective(phase2);
  std::vector<bool> allowed(num_cols, true);
  for (size_t c = art_base; c < num_cols; ++c) allowed[c] = false;
  if (!tableau.Optimize(allowed)) {
    return {LpStatus::kUnbounded, Rational(0), {}};
  }

  Vec split(num_cols);
  for (size_t r = 0; r < tableau.num_rows(); ++r) {
    split[tableau.basis()[r]] = tableau.rhs(r);
  }
  Vec solution(num_vars);
  for (size_t j = 0; j < num_vars; ++j) {
    solution[j] = split[j] - split[num_vars + j];
  }
  return {LpStatus::kOptimal, tableau.objective_value(), std::move(solution)};
}

}  // namespace lcdb
