#ifndef LCDB_LP_SIMPLEX_H_
#define LCDB_LP_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "linalg/matrix.h"
#include "util/relop.h"

namespace lcdb {

/// One linear constraint  coeffs . x  REL  rhs  over free (unrestricted)
/// real variables.
struct LinearConstraint {
  Vec coeffs;
  RelOp rel = RelOp::kLe;
  Rational rhs;

  LinearConstraint() = default;
  LinearConstraint(Vec c, RelOp r, Rational b)
      : coeffs(std::move(c)), rel(r), rhs(std::move(b)) {}

  /// True iff `point` satisfies the constraint.
  bool Satisfies(const Vec& point) const;
};

enum class LpStatus { kOptimal, kInfeasible, kUnbounded };

struct LpResult {
  LpStatus status = LpStatus::kInfeasible;
  Rational objective;  ///< optimal value (kOptimal only)
  Vec solution;        ///< an optimal point (kOptimal only)
};

/// Maximizes `objective . x` subject to the *non-strict* constraints
/// (strict relations are not allowed here; use feasibility.h for those).
/// Variables are free; internally each is split into a difference of two
/// non-negative variables and solved with a two-phase tableau simplex using
/// Bland's rule over exact rationals, so the solver always terminates with
/// an exact answer.
LpResult MaximizeLp(size_t num_vars,
                    const std::vector<LinearConstraint>& constraints,
                    const Vec& objective);

/// Process-wide monotone counters of simplex work, maintained atomically.
/// The constraint kernel (engine/kernel.h) attributes oracle cost by taking
/// deltas around each underlying solve; with concurrent solvers a delta may
/// include another thread's pivots, so the totals are exact while the
/// attribution is approximate.
struct SimplexCounters {
  uint64_t invocations = 0;  ///< completed MaximizeLp calls
  uint64_t pivots = 0;       ///< tableau pivot steps across all calls
};

SimplexCounters GetSimplexCounters();

}  // namespace lcdb

#endif  // LCDB_LP_SIMPLEX_H_
