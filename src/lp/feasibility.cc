#include "lp/feasibility.h"

#include <utility>

#include "util/status.h"

namespace lcdb {

FeasibilityResult CheckFeasibility(
    size_t num_vars, const std::vector<LinearConstraint>& constraints) {
  // Column layout: x_0..x_{n-1}, eps.
  std::vector<LinearConstraint> relaxed;
  relaxed.reserve(constraints.size() + 1);
  bool any_strict = false;
  for (const LinearConstraint& c : constraints) {
    LCDB_CHECK(c.coeffs.size() == num_vars);
    Vec coeffs = c.coeffs;
    coeffs.push_back(Rational(0));
    switch (c.rel) {
      case RelOp::kLt:
        coeffs[num_vars] = Rational(1);
        relaxed.emplace_back(std::move(coeffs), RelOp::kLe, c.rhs);
        any_strict = true;
        break;
      case RelOp::kGt:
        coeffs[num_vars] = Rational(-1);
        relaxed.emplace_back(std::move(coeffs), RelOp::kGe, c.rhs);
        any_strict = true;
        break;
      default:
        relaxed.emplace_back(std::move(coeffs), c.rel, c.rhs);
        break;
    }
  }
  // eps <= 1 keeps the objective bounded; eps >= 0 ensures the relaxation is
  // a relaxation even when there are no strict constraints.
  {
    Vec eps_row(num_vars + 1);
    eps_row[num_vars] = Rational(1);
    relaxed.emplace_back(eps_row, RelOp::kLe, Rational(1));
    relaxed.emplace_back(std::move(eps_row), RelOp::kGe, Rational(0));
  }
  Vec objective(num_vars + 1);
  objective[num_vars] = Rational(1);
  LpResult lp = MaximizeLp(num_vars + 1, relaxed, objective);
  if (lp.status == LpStatus::kInfeasible) return {false, {}};
  LCDB_CHECK(lp.status == LpStatus::kOptimal);
  if (any_strict && lp.objective.Sign() <= 0) return {false, {}};
  Vec witness(lp.solution.begin(), lp.solution.begin() + num_vars);
  return {true, std::move(witness)};
}

LpResult MaximizeOverClosure(size_t num_vars,
                             const std::vector<LinearConstraint>& constraints,
                             const Vec& objective) {
  std::vector<LinearConstraint> closed;
  closed.reserve(constraints.size());
  for (const LinearConstraint& c : constraints) {
    closed.emplace_back(c.coeffs, Closure(c.rel), c.rhs);
  }
  return MaximizeLp(num_vars, closed, objective);
}

bool IsBoundedSystem(size_t num_vars,
                     const std::vector<LinearConstraint>& constraints) {
  for (size_t j = 0; j < num_vars; ++j) {
    Vec objective(num_vars);
    objective[j] = Rational(1);
    LpResult up = MaximizeOverClosure(num_vars, constraints, objective);
    if (up.status == LpStatus::kInfeasible) return true;
    if (up.status == LpStatus::kUnbounded) return false;
    objective[j] = Rational(-1);
    LpResult down = MaximizeOverClosure(num_vars, constraints, objective);
    if (down.status == LpStatus::kUnbounded) return false;
  }
  return true;
}

bool IsConsistentWithNegation(size_t num_vars,
                              const std::vector<LinearConstraint>& constraints,
                              const LinearConstraint& c) {
  // NOT(a.x REL b): equalities split into two strict alternatives.
  std::vector<RelOp> negated;
  switch (c.rel) {
    case RelOp::kLt:
      negated = {RelOp::kGe};
      break;
    case RelOp::kLe:
      negated = {RelOp::kGt};
      break;
    case RelOp::kEq:
      negated = {RelOp::kLt, RelOp::kGt};
      break;
    case RelOp::kGe:
      negated = {RelOp::kLt};
      break;
    case RelOp::kGt:
      negated = {RelOp::kLe};
      break;
  }
  for (RelOp rel : negated) {
    std::vector<LinearConstraint> system = constraints;
    system.emplace_back(c.coeffs, rel, c.rhs);
    if (CheckFeasibility(num_vars, system).feasible) return true;
  }
  return false;
}

}  // namespace lcdb
