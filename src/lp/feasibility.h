#ifndef LCDB_LP_FEASIBILITY_H_
#define LCDB_LP_FEASIBILITY_H_

#include <vector>

#include "lp/simplex.h"

namespace lcdb {

struct FeasibilityResult {
  bool feasible = false;
  /// A point satisfying every constraint, including strict ones
  /// (set only when feasible).
  Vec witness;
};

/// Decides whether a system of linear constraints over free real variables —
/// including *strict* inequalities and equalities — has a solution, and if so
/// produces a rational witness point. Strictness is handled by the standard
/// epsilon trick: every strict constraint `a.x < b` is tightened to
/// `a.x + eps <= b`, `eps <= 1` is added, and `eps` is maximized; the system
/// is feasible iff the optimum is positive. This single oracle underlies
/// arrangement construction, adjacency tests, and DNF pruning.
FeasibilityResult CheckFeasibility(
    size_t num_vars, const std::vector<LinearConstraint>& constraints);

/// Maximizes `objective . x` over the topological closure of the system
/// (strict relations relaxed to their non-strict counterparts).
LpResult MaximizeOverClosure(size_t num_vars,
                             const std::vector<LinearConstraint>& constraints,
                             const Vec& objective);

/// True iff the solution set of the (closure of the) system is bounded,
/// i.e. every coordinate is bounded above and below. For a nonempty
/// relatively open set this coincides with boundedness of the set itself.
/// Returns true for infeasible systems (the empty set is bounded).
bool IsBoundedSystem(size_t num_vars,
                     const std::vector<LinearConstraint>& constraints);

/// True iff the first system implies the second constraint on the closure
/// level is *violated* somewhere, i.e. whether `constraints AND NOT(c)` is
/// satisfiable. Used for redundancy elimination.
bool IsConsistentWithNegation(size_t num_vars,
                              const std::vector<LinearConstraint>& constraints,
                              const LinearConstraint& c);

}  // namespace lcdb

#endif  // LCDB_LP_FEASIBILITY_H_
