#ifndef LCDB_LINALG_GAUSS_H_
#define LCDB_LINALG_GAUSS_H_

#include <optional>
#include <vector>

#include "linalg/matrix.h"

namespace lcdb {

/// Outcome of solving a linear system A x = b exactly.
enum class SolveOutcome {
  kUnique,        ///< exactly one solution
  kInconsistent,  ///< no solution
  kUnderdetermined,  ///< infinitely many solutions
};

/// Result of `SolveLinearSystem`. `solution` is set only for kUnique.
struct SolveResult {
  SolveOutcome outcome = SolveOutcome::kInconsistent;
  Vec solution;
};

/// Solves A x = b by Gaussian elimination over the rationals.
/// A is m x n, b has m entries.
SolveResult SolveLinearSystem(const Matrix& a, const Vec& b);

/// Rank of `a` over the rationals.
size_t Rank(const Matrix& a);

/// Determinant of a square matrix.
Rational Determinant(const Matrix& a);

/// A basis of the null space of `a` (n-dimensional column space).
std::vector<Vec> NullSpaceBasis(const Matrix& a);

/// Rank of the affine hull of `points`, i.e. the dimension of the smallest
/// affine subspace containing them (-1 for an empty set, 0 for a single
/// point). This is the paper's notion of the dimension of a face via its
/// affine support (Section 3).
int AffineDimension(const std::vector<Vec>& points);

}  // namespace lcdb

#endif  // LCDB_LINALG_GAUSS_H_
