#include "linalg/gauss.h"

#include <utility>

#include "util/status.h"

namespace lcdb {

namespace {

/// Reduces `m` (rows x (cols)) to row echelon form in place; returns the list
/// of pivot columns. Operates on the full rows, so callers can append an
/// augmented column before calling.
std::vector<size_t> RowEchelon(std::vector<Vec>* m, size_t cols) {
  std::vector<size_t> pivot_cols;
  size_t row = 0;
  for (size_t col = 0; col < cols && row < m->size(); ++col) {
    size_t pivot = row;
    while (pivot < m->size() && (*m)[pivot][col].IsZero()) ++pivot;
    if (pivot == m->size()) continue;
    std::swap((*m)[row], (*m)[pivot]);
    const Rational inv = Rational(1) / (*m)[row][col];
    for (size_t c = col; c < (*m)[row].size(); ++c) {
      (*m)[row][c] *= inv;
    }
    for (size_t r = 0; r < m->size(); ++r) {
      if (r == row || (*m)[r][col].IsZero()) continue;
      const Rational factor = (*m)[r][col];
      for (size_t c = col; c < (*m)[r].size(); ++c) {
        (*m)[r][c] -= factor * (*m)[row][c];
      }
    }
    pivot_cols.push_back(col);
    ++row;
  }
  return pivot_cols;
}

std::vector<Vec> ToRows(const Matrix& a) {
  std::vector<Vec> rows(a.rows());
  for (size_t r = 0; r < a.rows(); ++r) {
    rows[r].resize(a.cols());
    for (size_t c = 0; c < a.cols(); ++c) rows[r][c] = a.at(r, c);
  }
  return rows;
}

}  // namespace

SolveResult SolveLinearSystem(const Matrix& a, const Vec& b) {
  LCDB_CHECK(a.rows() == b.size());
  const size_t n = a.cols();
  std::vector<Vec> rows = ToRows(a);
  for (size_t r = 0; r < rows.size(); ++r) rows[r].push_back(b[r]);
  std::vector<size_t> pivots = RowEchelon(&rows, n);
  // Inconsistent if some row is (0 ... 0 | nonzero).
  for (size_t r = pivots.size(); r < rows.size(); ++r) {
    if (!rows[r][n].IsZero()) return {SolveOutcome::kInconsistent, {}};
  }
  if (pivots.size() < n) return {SolveOutcome::kUnderdetermined, {}};
  Vec solution(n);
  for (size_t i = 0; i < n; ++i) solution[pivots[i]] = rows[i][n];
  return {SolveOutcome::kUnique, std::move(solution)};
}

size_t Rank(const Matrix& a) {
  std::vector<Vec> rows = ToRows(a);
  return RowEchelon(&rows, a.cols()).size();
}

Rational Determinant(const Matrix& a) {
  LCDB_CHECK(a.rows() == a.cols());
  std::vector<Vec> rows = ToRows(a);
  const size_t n = a.cols();
  Rational det(1);
  for (size_t col = 0; col < n; ++col) {
    size_t pivot = col;
    while (pivot < n && rows[pivot][col].IsZero()) ++pivot;
    if (pivot == n) return Rational(0);
    if (pivot != col) {
      std::swap(rows[col], rows[pivot]);
      det = -det;
    }
    det *= rows[col][col];
    const Rational inv = Rational(1) / rows[col][col];
    for (size_t r = col + 1; r < n; ++r) {
      if (rows[r][col].IsZero()) continue;
      const Rational factor = rows[r][col] * inv;
      for (size_t c = col; c < n; ++c) {
        rows[r][c] -= factor * rows[col][c];
      }
    }
  }
  return det;
}

std::vector<Vec> NullSpaceBasis(const Matrix& a) {
  const size_t n = a.cols();
  std::vector<Vec> rows = ToRows(a);
  std::vector<size_t> pivots = RowEchelon(&rows, n);
  std::vector<bool> is_pivot(n, false);
  for (size_t c : pivots) is_pivot[c] = true;
  std::vector<Vec> basis;
  for (size_t free_col = 0; free_col < n; ++free_col) {
    if (is_pivot[free_col]) continue;
    Vec v(n);
    v[free_col] = Rational(1);
    for (size_t i = 0; i < pivots.size(); ++i) {
      v[pivots[i]] = -rows[i][free_col];
    }
    basis.push_back(std::move(v));
  }
  return basis;
}

int AffineDimension(const std::vector<Vec>& points) {
  if (points.empty()) return -1;
  if (points.size() == 1) return 0;
  Matrix differences;
  for (size_t i = 1; i < points.size(); ++i) {
    differences.AppendRow(VecSub(points[i], points[0]));
  }
  return static_cast<int>(Rank(differences));
}

}  // namespace lcdb
