#include "linalg/matrix.h"

#include "util/status.h"

namespace lcdb {

Vec VecAdd(const Vec& v, const Vec& w) {
  LCDB_CHECK(v.size() == w.size());
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] + w[i];
  return out;
}

Vec VecSub(const Vec& v, const Vec& w) {
  LCDB_CHECK(v.size() == w.size());
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = v[i] - w[i];
  return out;
}

Vec VecScale(const Rational& c, const Vec& v) {
  Vec out(v.size());
  for (size_t i = 0; i < v.size(); ++i) out[i] = c * v[i];
  return out;
}

Rational Dot(const Vec& v, const Vec& w) {
  LCDB_CHECK(v.size() == w.size());
  Rational out;
  for (size_t i = 0; i < v.size(); ++i) out += v[i] * w[i];
  return out;
}

bool VecIsZero(const Vec& v) {
  for (const Rational& x : v) {
    if (!x.IsZero()) return false;
  }
  return true;
}

std::string VecToString(const Vec& v) {
  std::string out = "(";
  for (size_t i = 0; i < v.size(); ++i) {
    if (i > 0) out += ", ";
    out += v[i].ToString();
  }
  out += ")";
  return out;
}

int VecLexCompare(const Vec& a, const Vec& b) {
  LCDB_CHECK(a.size() == b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] < b[i]) return -1;
    if (b[i] < a[i]) return 1;
  }
  return 0;
}

Matrix::Matrix(std::initializer_list<std::initializer_list<Rational>> rows) {
  for (const auto& row : rows) {
    AppendRow(Vec(row));
  }
}

void Matrix::AppendRow(const Vec& row) {
  if (cols_ == 0 && data_.empty()) {
    cols_ = row.size();
  }
  LCDB_CHECK(row.size() == cols_);
  data_.insert(data_.end(), row.begin(), row.end());
}

std::string Matrix::ToString() const {
  std::string out;
  for (size_t r = 0; r < rows(); ++r) {
    out += "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) out += ", ";
      out += at(r, c).ToString();
    }
    out += "]\n";
  }
  return out;
}

}  // namespace lcdb
