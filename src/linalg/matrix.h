#ifndef LCDB_LINALG_MATRIX_H_
#define LCDB_LINALG_MATRIX_H_

#include <initializer_list>
#include <string>
#include <vector>

#include "arith/rational.h"

namespace lcdb {

/// Dense vector of rationals; used for points, directions and coefficient
/// rows throughout lcdb.
using Vec = std::vector<Rational>;

/// v + w (sizes must match).
Vec VecAdd(const Vec& v, const Vec& w);
/// v - w (sizes must match).
Vec VecSub(const Vec& v, const Vec& w);
/// c * v.
Vec VecScale(const Rational& c, const Vec& v);
/// Standard inner product.
Rational Dot(const Vec& v, const Vec& w);
/// All-zero test.
bool VecIsZero(const Vec& v);
/// "(a, b, c)" rendering.
std::string VecToString(const Vec& v);
/// Lexicographic comparison, used for the paper's ordering of 0-dimensional
/// regions (proof of Theorem 6.4). Returns <0, 0, >0.
int VecLexCompare(const Vec& a, const Vec& b);

/// Dense row-major matrix of rationals.
class Matrix {
 public:
  Matrix() = default;
  Matrix(size_t rows, size_t cols) : cols_(cols), data_(rows * cols) {}
  Matrix(std::initializer_list<std::initializer_list<Rational>> rows);

  size_t rows() const { return cols_ == 0 ? 0 : data_.size() / cols_; }
  size_t cols() const { return cols_; }

  Rational& at(size_t r, size_t c) { return data_[r * cols_ + c]; }
  const Rational& at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// Appends a row (size must equal cols(), or set cols on first row).
  void AppendRow(const Vec& row);

  std::string ToString() const;

 private:
  size_t cols_ = 0;
  std::vector<Rational> data_;
};

}  // namespace lcdb

#endif  // LCDB_LINALG_MATRIX_H_
