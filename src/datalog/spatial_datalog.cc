#include "datalog/spatial_datalog.h"

#include <algorithm>

#include "constraint/parser.h"
#include "constraint/simplify.h"
#include "qe/fourier_motzkin.h"

namespace lcdb {

namespace {

/// Variables of a rule in first-occurrence order (head first).
Result<std::vector<std::string>> RuleVariables(const DatalogRule& rule) {
  std::vector<std::string> vars;
  auto note = [&vars](const std::string& v) {
    if (std::find(vars.begin(), vars.end(), v) == vars.end()) {
      vars.push_back(v);
    }
  };
  for (const std::string& v : rule.head_args) note(v);
  for (const DatalogLiteral& lit : rule.body) {
    for (const std::string& v : lit.args) note(v);
  }
  if (vars.empty()) {
    return Status::InvalidArgument("rule for '" + rule.head +
                                   "' has no variables");
  }
  return vars;
}

/// Substitution mapping predicate argument columns to rule-variable columns.
std::vector<AffineExpr> ArgsToRuleColumns(
    const std::vector<std::string>& args,
    const std::vector<std::string>& rule_vars) {
  std::vector<AffineExpr> map;
  map.reserve(args.size());
  for (const std::string& a : args) {
    size_t col = 0;
    while (rule_vars[col] != a) ++col;
    map.push_back(AffineExpr::Variable(rule_vars.size(), col));
  }
  return map;
}

/// Evaluates one rule body against the current IDB stage; returns the head
/// relation contribution (over head-arg columns).
Result<DnfFormula> EvaluateRule(const DatalogRule& rule,
                                const ConstraintDatabase& db,
                                const std::map<std::string, DnfFormula>& idb) {
  LCDB_ASSIGN_OR_RETURN(std::vector<std::string> vars, RuleVariables(rule));
  const size_t n = vars.size();
  DnfFormula body = DnfFormula::True(n);
  for (const DatalogLiteral& lit : rule.body) {
    switch (lit.kind) {
      case DatalogLiteral::Kind::kEdb: {
        if (lit.args.size() != db.arity()) {
          return Status::InvalidArgument("EDB arity mismatch in rule for '" +
                                         rule.head + "'");
        }
        body = body.And(db.representation().Substitute(
            ArgsToRuleColumns(lit.args, vars), n));
        break;
      }
      case DatalogLiteral::Kind::kIdb: {
        auto it = idb.find(lit.predicate);
        if (it == idb.end()) {
          return Status::InvalidArgument("unknown IDB predicate '" +
                                         lit.predicate + "'");
        }
        if (lit.args.size() != it->second.num_vars()) {
          return Status::InvalidArgument("IDB arity mismatch for '" +
                                         lit.predicate + "'");
        }
        body = body.And(
            it->second.Substitute(ArgsToRuleColumns(lit.args, vars), n));
        break;
      }
      case DatalogLiteral::Kind::kConstraint: {
        LCDB_ASSIGN_OR_RETURN(DnfFormula c,
                              ParseDnf(lit.constraint_text, vars));
        body = body.And(c);
        break;
      }
    }
    if (body.IsSyntacticallyFalse()) break;
  }
  // Project out non-head variables, then rearrange columns to head order.
  std::vector<size_t> eliminate;
  for (size_t col = 0; col < n; ++col) {
    if (std::find(rule.head_args.begin(), rule.head_args.end(), vars[col]) ==
        rule.head_args.end()) {
      eliminate.push_back(col);
    }
  }
  DnfFormula projected = ExistsVariables(body, std::move(eliminate));
  // Map rule columns to head columns.
  const size_t k = rule.head_args.size();
  std::vector<AffineExpr> to_head;
  to_head.reserve(n);
  for (size_t col = 0; col < n; ++col) {
    size_t head_index = k;
    for (size_t i = 0; i < k; ++i) {
      if (rule.head_args[i] == vars[col]) {
        head_index = i;
        break;
      }
    }
    to_head.push_back(head_index < k
                          ? AffineExpr::Variable(k, head_index)
                          : AffineExpr::Constant(k, Rational(0)));
  }
  return projected.Substitute(to_head, k);
}

}  // namespace

Result<DatalogResult> EvaluateDatalog(const DatalogProgram& program,
                                      const ConstraintDatabase& db,
                                      size_t max_iterations,
                                      const std::string& tracked) {
  // Validate heads and initialize every IDB predicate to the empty relation.
  std::map<std::string, DnfFormula> current;
  for (const auto& [name, arity] : program.idb_arities) {
    current.emplace(name, DnfFormula::False(arity));
  }
  for (const DatalogRule& rule : program.rules) {
    auto it = program.idb_arities.find(rule.head);
    if (it == program.idb_arities.end()) {
      return Status::InvalidArgument("undeclared head predicate '" +
                                     rule.head + "'");
    }
    if (it->second != rule.head_args.size()) {
      return Status::InvalidArgument("head arity mismatch for '" + rule.head +
                                     "'");
    }
  }

  DatalogResult result;
  for (size_t iteration = 0; iteration < max_iterations; ++iteration) {
    ++result.iterations;
    std::map<std::string, DnfFormula> next = current;
    for (const DatalogRule& rule : program.rules) {
      LCDB_ASSIGN_OR_RETURN(DnfFormula contribution,
                            EvaluateRule(rule, db, current));
      auto it = next.find(rule.head);
      it->second = it->second.Or(contribution);
    }
    if (!tracked.empty()) {
      auto it = next.find(tracked);
      if (it != next.end()) result.stage_sizes.push_back(it->second.SizeMeasure());
    }
    bool stable = true;
    for (const auto& [name, relation] : next) {
      if (!AreEquivalent(relation, current.at(name))) {
        stable = false;
        break;
      }
    }
    current = std::move(next);
    if (stable) {
      result.converged = true;
      break;
    }
  }
  result.relations = std::move(current);
  return result;
}

DatalogProgram NaturalNumbersProgram() {
  DatalogProgram p;
  p.idb_arities["N"] = 1;
  p.rules.push_back({"N", {"x"}, {{DatalogLiteral::Kind::kConstraint,
                                   "", {}, "x = 0"}}});
  p.rules.push_back(
      {"N",
       {"x"},
       {{DatalogLiteral::Kind::kIdb, "N", {"y"}, ""},
        {DatalogLiteral::Kind::kConstraint, "", {}, "x = y + 1"}}});
  return p;
}

DatalogProgram DownwardClosureProgram() {
  DatalogProgram p;
  p.idb_arities["D"] = 1;
  p.rules.push_back({"D", {"x"}, {{DatalogLiteral::Kind::kEdb, "S", {"x"},
                                   ""}}});
  p.rules.push_back(
      {"D",
       {"x"},
       {{DatalogLiteral::Kind::kIdb, "D", {"y"}, ""},
        {DatalogLiteral::Kind::kConstraint, "", {}, "x <= y"}}});
  return p;
}

DatalogProgram BoundedCounterProgram(int64_t k) {
  DatalogProgram p;
  p.idb_arities["C"] = 1;
  p.rules.push_back({"C", {"x"}, {{DatalogLiteral::Kind::kConstraint,
                                   "", {}, "x = 0"}}});
  p.rules.push_back(
      {"C",
       {"x"},
       {{DatalogLiteral::Kind::kIdb, "C", {"y"}, ""},
        {DatalogLiteral::Kind::kConstraint, "", {},
         "x = y + 1 & x <= " + std::to_string(k)}}});
  return p;
}

}  // namespace lcdb
