#ifndef LCDB_DATALOG_SPATIAL_DATALOG_H_
#define LCDB_DATALOG_SPATIAL_DATALOG_H_

#include <map>
#include <string>
#include <vector>

#include "constraint/dnf_formula.h"
#include "db/database.h"
#include "util/status.h"

namespace lcdb {

/// Spatial datalog over linear constraint databases — the *unrestricted*
/// recursion the paper's introduction warns about. IDB predicates denote
/// finitely representable (possibly infinite) relations; rules combine EDB
/// atoms, IDB atoms and linear constraints; evaluation is naive bottom-up
/// with each stage computed symbolically (conjunction + Fourier–Motzkin
/// projection) and convergence decided by exact semantic equivalence.
///
/// The point of this module is the paper's motivation (Section 1): "a naive
/// definition of least fixed-point logic leads to a non-terminating and
/// undecidable language, as it is possible to define the natural numbers"
/// over (R, <, +). Programs here genuinely diverge (the stage formulas grow
/// forever) unless their fixpoint happens to be semilinear and reached in
/// finitely many steps — which is exactly why the paper restricts fixed
/// points to the finite region sort. See also Geerts–Kuijpers [5] on
/// termination of spatial datalog, discussed in the same paragraph.

/// One body literal of a rule.
struct DatalogLiteral {
  enum class Kind {
    kEdb,        ///< the database relation S(args...)
    kIdb,        ///< an IDB predicate P(args...)
    kConstraint  ///< a quantifier-free linear constraint over the rule vars
  };
  Kind kind = Kind::kConstraint;
  std::string predicate;              ///< kEdb/kIdb: predicate name
  std::vector<std::string> args;      ///< kEdb/kIdb: variable names
  std::string constraint_text;        ///< kConstraint: formula text
};

/// A rule  head(head_args) :- body.  All rule variables are universally
/// quantified; body variables not in the head are projected out (exists).
struct DatalogRule {
  std::string head;
  std::vector<std::string> head_args;
  std::vector<DatalogLiteral> body;
};

struct DatalogProgram {
  /// Predicate name -> arity. Every head must be declared here.
  std::map<std::string, size_t> idb_arities;
  std::vector<DatalogRule> rules;
};

/// Result of running a program to (attempted) fixpoint.
struct DatalogResult {
  /// True iff a fixpoint was reached within the iteration cap.
  bool converged = false;
  size_t iterations = 0;
  /// Final (or last-stage) IDB relations.
  std::map<std::string, DnfFormula> relations;
  /// Stage-by-stage representation sizes of one tracked predicate — the
  /// divergence signal (monotone growth without convergence).
  std::vector<size_t> stage_sizes;
};

/// Naive bottom-up evaluation with at most `max_iterations` stages.
/// `tracked` (optional) selects the predicate whose size series is logged.
Result<DatalogResult> EvaluateDatalog(const DatalogProgram& program,
                                      const ConstraintDatabase& db,
                                      size_t max_iterations,
                                      const std::string& tracked = "");

/// The paper's divergence witness: N(x) :- x = 0 ; N(x) :- N(y), x = y + 1
/// defines the natural numbers — never a fixpoint over (R, <, +).
DatalogProgram NaturalNumbersProgram();

/// A terminating contrast: the downward closure D(x) :- S(x) ;
/// D(x) :- D(y), x <= y converges in two stages (its fixpoint is
/// semilinear).
DatalogProgram DownwardClosureProgram();

/// A bounded counter: C(x) :- x = 0 ; C(x) :- C(y), x = y + 1, x <= k —
/// terminates after k+1 stages (the fixpoint is the finite set {0..k}).
DatalogProgram BoundedCounterProgram(int64_t k);

}  // namespace lcdb

#endif  // LCDB_DATALOG_SPATIAL_DATALOG_H_
