#ifndef LCDB_QE_FOURIER_MOTZKIN_H_
#define LCDB_QE_FOURIER_MOTZKIN_H_

#include <vector>

#include "constraint/dnf_formula.h"

namespace lcdb {

/// Quantifier elimination for first-order logic over (R, <, +) with rational
/// coefficients — the engine behind the *closure* of every query language in
/// the paper (Section 2: the result of a query must again be representable
/// by a quantifier-free formula) and behind the element-variable quantifier
/// cases in the proof of Theorem 4.3.
///
/// Tuning knobs for quantifier elimination.
struct QeOptions {
  /// Remove per-disjunct redundant atoms (kernel-cached implication tests)
  /// and skip infeasible disjuncts *before* each variable projection, so
  /// Fourier–Motzkin only pairs irredundant bounds. Redundant bounds enter
  /// the lower×upper product quadratically, and the product compounds
  /// across variables — pruning first is the difference between projecting
  /// the polyhedron and projecting its syntactic description. Off only for
  /// the ablation/equivalence tests.
  bool presimplify = true;
};

/// `ExistsVariable(f, var)` returns a quantifier-free DNF formula over the
/// same variable space (with `var` no longer occurring) equivalent to
/// `exists x_var . f`. Per disjunct it first substitutes out equalities
/// containing the variable (a Gauss step) and otherwise combines lower and
/// upper bounds pairwise (Fourier–Motzkin), with strictness propagated:
/// a lower bound L <(=) x and an upper bound x <(=) U combine to L REL U
/// where REL is strict iff either input was strict.
DnfFormula ExistsVariable(const DnfFormula& f, size_t var,
                          const QeOptions& options = {});

/// `forall x_var . f`, computed as NOT exists NOT.
DnfFormula ForallVariable(const DnfFormula& f, size_t var,
                          const QeOptions& options = {});

/// Eliminates several variables existentially, cheapest-first (the variable
/// whose elimination produces the fewest product atoms is chosen next).
DnfFormula ExistsVariables(const DnfFormula& f, std::vector<size_t> vars,
                           const QeOptions& options = {});

/// True iff `var` occurs with nonzero coefficient anywhere in `f`.
bool VariableOccurs(const DnfFormula& f, size_t var);

/// Removes column `var` from the variable space (the variable must not
/// occur); the remaining variables shift down by one.
DnfFormula DropVariable(const DnfFormula& f, size_t var);

}  // namespace lcdb

#endif  // LCDB_QE_FOURIER_MOTZKIN_H_
