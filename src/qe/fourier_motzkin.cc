#include "qe/fourier_motzkin.h"

#include <algorithm>
#include <optional>

#include "engine/governor.h"
#include "engine/trace.h"
#include "util/failpoint.h"
#include "util/status.h"

namespace lcdb {
namespace {

/// Bit length of the widest integer (coefficient or rhs) in the conjunct —
/// the quantity the governor's max_bigint_bits ceiling bounds. QE is where
/// coefficient blowup actually happens (each Fourier-Motzkin combination
/// multiplies bounds), so the scan runs here and only when a governor with
/// that budget is installed.
uint64_t MaxCoeffBits(const Conjunction& conj) {
  uint64_t bits = 0;
  for (const LinearAtom& atom : conj.atoms()) {
    for (const BigInt& c : atom.coeffs()) {
      bits = std::max<uint64_t>(bits, c.BitLength());
    }
    bits = std::max<uint64_t>(bits, atom.rhs().BitLength());
  }
  return bits;
}

/// A bound on the eliminated variable: x REL expr, with expr an affine
/// expression not involving x. `strict` distinguishes < from <=.
struct Bound {
  AffineExpr expr;
  bool strict = false;
};

/// Result of classifying one conjunct's atoms w.r.t. the variable.
struct Classified {
  std::vector<LinearAtom> free_atoms;  // atoms not involving x
  std::vector<Bound> lowers;           // expr REL x
  std::vector<Bound> uppers;           // x REL expr
  std::optional<AffineExpr> equality;  // x = expr (if any equality has x)
};

Classified Classify(const Conjunction& conj, size_t var) {
  Classified out;
  const size_t n = conj.num_vars();
  for (const LinearAtom& atom : conj.atoms()) {
    const BigInt& a = atom.coeffs()[var];
    if (a.IsZero()) {
      out.free_atoms.push_back(atom);
      continue;
    }
    // Rewrite  sum a_i x_i REL b  as  x REL' (b - sum_{i != var} a_i x_i)/a.
    AffineExpr expr;
    expr.coeffs.assign(n, Rational(0));
    const Rational inv = Rational(1) / Rational(a);
    for (size_t i = 0; i < n; ++i) {
      if (i == var || atom.coeffs()[i].IsZero()) continue;
      expr.coeffs[i] = -Rational(atom.coeffs()[i]) * inv;
    }
    expr.constant = Rational(atom.rhs()) * inv;
    RelOp rel = atom.rel();
    if (a.IsNegative()) rel = Flip(rel);  // dividing by negative flips
    switch (rel) {
      case RelOp::kEq:
        if (!out.equality.has_value()) {
          out.equality = expr;
        } else {
          // Second equality on x: keep as a free constraint expr == first.
          Vec diff = VecSub(expr.coeffs, out.equality->coeffs);
          out.free_atoms.push_back(LinearAtom(
              diff, RelOp::kEq, out.equality->constant - expr.constant));
        }
        break;
      case RelOp::kLt:
        out.uppers.push_back({std::move(expr), true});
        break;
      case RelOp::kLe:
        out.uppers.push_back({std::move(expr), false});
        break;
      case RelOp::kGt:
        out.lowers.push_back({std::move(expr), true});
        break;
      case RelOp::kGe:
        out.lowers.push_back({std::move(expr), false});
        break;
    }
  }
  return out;
}

/// lower REL upper with strictness if either side is strict.
LinearAtom CombineBounds(const Bound& lower, const Bound& upper) {
  Vec coeffs = VecSub(lower.expr.coeffs, upper.expr.coeffs);
  Rational rhs = upper.expr.constant - lower.expr.constant;
  RelOp rel = (lower.strict || upper.strict) ? RelOp::kLt : RelOp::kLe;
  return LinearAtom(coeffs, rel, rhs);
}

Conjunction EliminateFromConjunct(const Conjunction& conj, size_t var) {
  const size_t n = conj.num_vars();
  Classified c = Classify(conj, var);
  if (c.equality.has_value()) {
    // Gauss step: substitute x := expr into every atom of the original
    // conjunct except the defining equality occurrence.
    std::vector<AffineExpr> map;
    map.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      map.push_back(i == var ? *c.equality : AffineExpr::Variable(n, i));
    }
    std::vector<LinearAtom> atoms;
    atoms.reserve(c.free_atoms.size() + c.lowers.size() + c.uppers.size());
    atoms = c.free_atoms;
    for (const Bound& b : c.lowers) {
      // expr_lower REL x  with x := equality expr.
      atoms.push_back(CombineBounds(b, Bound{*c.equality, false}));
    }
    for (const Bound& b : c.uppers) {
      atoms.push_back(CombineBounds(Bound{*c.equality, false}, b));
    }
    return Conjunction(n, std::move(atoms));
  }
  // Fourier-Motzkin: all lower/upper pairs.
  std::vector<LinearAtom> atoms = std::move(c.free_atoms);
  atoms.reserve(atoms.size() + c.lowers.size() * c.uppers.size());
  for (const Bound& lo : c.lowers) {
    for (const Bound& up : c.uppers) {
      atoms.push_back(CombineBounds(lo, up));
    }
  }
  // If there are no lowers or no uppers, x escapes to -inf/+inf: the bounds
  // impose no condition, i.e. they are simply dropped.
  return Conjunction(n, std::move(atoms));
}

}  // namespace

DnfFormula ExistsVariable(const DnfFormula& f, size_t var,
                          const QeOptions& options) {
  LCDB_FAILPOINT("qe.project");
  TraceSpan project_span("qe.project");
  project_span.Counter("disjuncts_in", f.disjuncts().size());
  const bool watch_bits = GovernorWantsBigIntBits();
  std::vector<Conjunction> out;
  out.reserve(f.disjuncts().size());
  for (const Conjunction& conj : f.disjuncts()) {
    // One cancellation point per disjunct: a projection over a wide DNF is
    // the longest uninterruptible stretch QE would otherwise have.
    GovernorCheckpoint();
    // Redundancy elimination BEFORE projection: every redundant bound on
    // `var` would otherwise multiply into the lower×upper product and
    // compound over later variables. The implication tests all go through
    // the kernel, so re-asking about the same (sub)system later is a cache
    // hit. The feasibility pre-test doubles as correctness guard: removing
    // "redundant" atoms from an infeasible conjunct would erase it.
    if (options.presimplify && conj.atoms().size() >= 3) {
      if (!conj.IsFeasible()) continue;
      Conjunction pruned = conj;
      pruned.RemoveRedundantAtoms();
      Conjunction reduced = EliminateFromConjunct(pruned, var);
      if (watch_bits) GovernorCheckBigIntBits(MaxCoeffBits(reduced));
      if (!reduced.IsSyntacticallyFalse()) out.push_back(std::move(reduced));
      continue;
    }
    Conjunction reduced = EliminateFromConjunct(conj, var);
    if (watch_bits) GovernorCheckBigIntBits(MaxCoeffBits(reduced));
    if (!reduced.IsSyntacticallyFalse()) out.push_back(std::move(reduced));
  }
  // The disjunct ceiling is checked on the pre-simplification width — that
  // is the allocation the projection actually made.
  GovernorCheckDnfDisjuncts(out.size());
  DnfFormula result(f.num_vars(), std::move(out));
  result.Simplify();
  project_span.Counter("disjuncts_out", result.disjuncts().size());
  return result;
}

DnfFormula ForallVariable(const DnfFormula& f, size_t var,
                          const QeOptions& options) {
  return ExistsVariable(f.Negate(), var, options).Negate();
}

bool VariableOccurs(const DnfFormula& f, size_t var) {
  for (const Conjunction& conj : f.disjuncts()) {
    for (const LinearAtom& atom : conj.atoms()) {
      if (!atom.coeffs()[var].IsZero()) return true;
    }
  }
  return false;
}

DnfFormula ExistsVariables(const DnfFormula& f, std::vector<size_t> vars,
                           const QeOptions& options) {
  DnfFormula current = f;
  while (!vars.empty()) {
    // Pick the variable with the smallest lower*upper product estimate.
    size_t best_index = 0;
    size_t best_cost = SIZE_MAX;
    for (size_t k = 0; k < vars.size(); ++k) {
      size_t cost = 0;
      for (const Conjunction& conj : current.disjuncts()) {
        size_t lowers = 0, uppers = 0, eqs = 0;
        for (const LinearAtom& atom : conj.atoms()) {
          const BigInt& a = atom.coeffs()[vars[k]];
          if (a.IsZero()) continue;
          if (atom.rel() == RelOp::kEq) {
            ++eqs;
          } else if ((atom.rel() == RelOp::kLt || atom.rel() == RelOp::kLe) ==
                     !a.IsNegative()) {
            ++uppers;
          } else {
            ++lowers;
          }
        }
        cost += eqs > 0 ? conj.atoms().size() : lowers * uppers;
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_index = k;
      }
    }
    current = ExistsVariable(current, vars[best_index], options);
    vars.erase(vars.begin() + best_index);
  }
  return current;
}

DnfFormula DropVariable(const DnfFormula& f, size_t var) {
  LCDB_CHECK_MSG(!VariableOccurs(f, var), "dropping a live variable");
  const size_t n = f.num_vars();
  LCDB_CHECK(var < n);
  // Build the reindexing substitution from the old space into the new one.
  std::vector<AffineExpr> map;
  map.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    if (i == var) {
      map.push_back(AffineExpr::Constant(n - 1, Rational(0)));
    } else {
      map.push_back(AffineExpr::Variable(n - 1, i < var ? i : i - 1));
    }
  }
  return f.Substitute(map, n - 1);
}

}  // namespace lcdb
