#ifndef LCDB_DECOMP_DECOMPOSITION_H_
#define LCDB_DECOMP_DECOMPOSITION_H_

#include <string>
#include <vector>

#include "constraint/dnf_formula.h"
#include "geometry/generator_region.h"

namespace lcdb {

/// Provenance of a region produced by the Appendix A decomposition.
enum class DecompKind {
  kInner,          ///< open hull of p_low and d vertices (bounded case)
  kOuter,          ///< open hull of at most d vertices on the boundary
  kRay,            ///< open ray of an up(ψ) pair (unbounded case)
  kUnboundedHull,  ///< open hull of up to d rays (unbounded case)
};

/// One region of the Section 7 / Appendix A decomposition, with provenance.
struct DecompRegion {
  GeneratorRegion region;
  size_t disjunct = 0;  ///< index of the disjunct ψ_i it was computed from
  DecompKind kind = DecompKind::kOuter;

  std::string ToString() const;
};

/// The Section 7 decomposition regions(ψ) of a single (feasible) disjunct.
/// Follows Appendix A literally:
///  1. vert(ψ): unique intersections of d-tuples of hyperplanes of 𝔥(ψ)
///     lying in closure(ψ).
///  2. Boundedness via the cube(ψ) facet test at 2(c+1).
///  3. Bounded: inner regions are open hulls of p_low (the lexicographically
///     smallest vertex) and d further vertices (with repetition) such that
///     the open segment from p_low to every *other* vertex misses the hull;
///     outer regions are open hulls of at most d vertices whose pairwise
///     open segments miss the relative interior of ψ.
///  4. Unbounded: bounded regions of ψ ∩ icube(ψ), plus the up(ψ) rays
///     (p on the cube boundary, direction p - q, ray inside closure(ψ)) and
///     open hulls of up to d of those rays.
std::vector<DecompRegion> DecomposeDisjunct(const Conjunction& poly,
                                            size_t disjunct_index);

/// The full decomposition regions(S) = union over disjuncts (Note 7.1);
/// regions of different disjuncts may overlap and need not be contained in
/// or disjoint from S.
std::vector<DecompRegion> DecomposeFormula(const DnfFormula& formula);

/// Counts regions per (geometric) dimension; index k = number of regions of
/// dimension k.
std::vector<size_t> RegionCountsByDimension(
    const std::vector<DecompRegion>& regions, size_t ambient_dim);

}  // namespace lcdb

#endif  // LCDB_DECOMP_DECOMPOSITION_H_
