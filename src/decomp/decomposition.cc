#include "decomp/decomposition.h"

#include <algorithm>

#include "engine/kernel.h"
#include "geometry/predicates.h"
#include "geometry/vertex_enumeration.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// Calls `visit` with every size-k multiset (combination with repetition)
/// of indices {0, ..., n-1}, as a non-decreasing index vector.
template <typename Visitor>
void ForEachMultiset(size_t n, size_t k, Visitor visit) {
  if (n == 0 || k == 0) return;
  std::vector<size_t> idx(k, 0);
  while (true) {
    visit(idx);
    size_t i = k;
    while (i > 0 && idx[i - 1] == n - 1) --i;
    if (i == 0) return;
    ++idx[i - 1];
    for (size_t j = i; j < k; ++j) idx[j] = idx[i - 1];
  }
}

void AppendUnique(std::vector<DecompRegion>* out, DecompRegion region) {
  for (const DecompRegion& existing : *out) {
    if (existing.region == region.region) return;
  }
  out->push_back(std::move(region));
}

/// Appendix A, bounded case: inner and outer regions from a vertex set.
void BoundedRegions(const Conjunction& poly, const std::vector<Vec>& vertices,
                    size_t disjunct, std::vector<DecompRegion>* out) {
  if (vertices.empty()) return;
  const size_t d = poly.num_vars();
  const Conjunction interior = RelativeInterior(poly);

  // Outer regions: open hulls of at most d vertices (with repetition) whose
  // pairwise open segments avoid the relative interior of poly.
  for (size_t k = 1; k <= d; ++k) {
    ForEachMultiset(vertices.size(), k, [&](const std::vector<size_t>& idx) {
      for (size_t a = 0; a < idx.size(); ++a) {
        for (size_t b = a + 1; b < idx.size(); ++b) {
          if (idx[a] == idx[b]) continue;
          GeneratorRegion seg = GeneratorRegion::OpenSegment(
              vertices[idx[a]], vertices[idx[b]]);
          if (seg.IntersectsConjunction(interior)) return;
        }
      }
      std::vector<Vec> points;
      for (size_t i : idx) points.push_back(vertices[i]);
      AppendUnique(out, {GeneratorRegion::OpenHull(d, std::move(points)),
                         disjunct, DecompKind::kOuter});
    });
  }

  // Inner regions: p_low is the lexicographically smallest vertex; hulls of
  // p_low plus d vertices (with repetition) from the others, such that the
  // open segment from p_low to every remaining vertex misses the hull.
  size_t low = 0;
  for (size_t i = 1; i < vertices.size(); ++i) {
    if (VecLexCompare(vertices[i], vertices[low]) < 0) low = i;
  }
  std::vector<size_t> others;
  for (size_t i = 0; i < vertices.size(); ++i) {
    if (i != low) others.push_back(i);
  }
  ForEachMultiset(others.size(), d, [&](const std::vector<size_t>& idx) {
    std::vector<Vec> points = {vertices[low]};
    std::vector<bool> chosen(vertices.size(), false);
    chosen[low] = true;
    for (size_t i : idx) {
      points.push_back(vertices[others[i]]);
      chosen[others[i]] = true;
    }
    GeneratorRegion hull = GeneratorRegion::OpenHull(d, std::move(points));
    for (size_t v = 0; v < vertices.size(); ++v) {
      if (chosen[v]) continue;
      GeneratorRegion probe =
          GeneratorRegion::OpenSegment(vertices[low], vertices[v]);
      if (probe.Intersects(hull)) return;
    }
    AppendUnique(out, {std::move(hull), disjunct, DecompKind::kInner});
  });
}

/// Computes the Appendix A coordinate bound c for `poly`.
Rational CoordinateBound(const Conjunction& poly,
                         const std::vector<Vec>& vertices) {
  if (!vertices.empty()) return MaxAbsCoordinate(vertices);
  // No vertices: use vert'(psi) over 𝔥(psi) extended with the axes x_i = 0.
  const size_t d = poly.num_vars();
  std::vector<Hyperplane> planes = HyperplanesOf(poly);
  for (size_t i = 0; i < d; ++i) {
    Vec row(d);
    row[i] = Rational(1);
    planes.push_back(
        Hyperplane::FromAtom(LinearAtom(row, RelOp::kEq, Rational(0))));
  }
  std::sort(planes.begin(), planes.end());
  planes.erase(std::unique(planes.begin(), planes.end()), planes.end());
  return MaxAbsCoordinate(EnumerateIntersectionPoints(planes, d));
}

/// Appendix A boundedness test: psi is bounded iff every facet hyperplane of
/// cube(psi) misses psi.
bool CubeBounded(const Conjunction& poly, const Rational& c) {
  for (const LinearAtom& facet : CubeAtoms(poly.num_vars(), c)) {
    std::vector<LinearAtom> atoms = poly.atoms();
    atoms.push_back(facet);
    if (CurrentKernel().IsFeasible(
            Conjunction(poly.num_vars(), std::move(atoms)))) {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string DecompRegion::ToString() const {
  std::string kind_name;
  switch (kind) {
    case DecompKind::kInner:
      kind_name = "inner";
      break;
    case DecompKind::kOuter:
      kind_name = "outer";
      break;
    case DecompKind::kRay:
      kind_name = "ray";
      break;
    case DecompKind::kUnboundedHull:
      kind_name = "unbounded-hull";
      break;
  }
  return kind_name + "[psi_" + std::to_string(disjunct) + "] " +
         region.ToString();
}

std::vector<DecompRegion> DecomposeDisjunct(const Conjunction& poly,
                                            size_t disjunct_index) {
  std::vector<DecompRegion> out;
  if (!CurrentKernel().IsFeasible(poly)) return out;
  const size_t d = poly.num_vars();
  const std::vector<Vec> vertices = VerticesOf(poly);
  const Rational c = CoordinateBound(poly, vertices);
  if (CubeBounded(poly, c)) {
    BoundedRegions(poly, vertices, disjunct_index, &out);
    return out;
  }

  // Unbounded case: clip by the open inner cube and decompose the clipped
  // polyhedron as in the bounded case.
  std::vector<LinearAtom> clipped_atoms = poly.atoms();
  for (const LinearAtom& atom : InnerCubeAtoms(d, c)) {
    clipped_atoms.push_back(atom);
  }
  const Conjunction clipped(d, std::move(clipped_atoms));
  const std::vector<Vec> cube_vertices = VerticesOf(clipped);
  BoundedRegions(clipped, cube_vertices, disjunct_index, &out);

  // up(psi): pairs (p, p - q), p a vertex on the boundary of icube, q any
  // other vertex, with the full ray inside closure(psi).
  const Rational bound = (c + Rational(1)) * Rational(2);
  auto on_cube_boundary = [&](const Vec& p) {
    for (const Rational& x : p) {
      if (x == bound || x == -bound) return true;
    }
    return false;
  };
  std::vector<std::pair<Vec, Vec>> up;
  for (const Vec& p : cube_vertices) {
    if (!on_cube_boundary(p)) continue;
    for (const Vec& q : cube_vertices) {
      if (q == p) continue;
      Vec dir = VecSub(p, q);
      if (VecIsZero(dir)) continue;
      if (RayInClosure(p, dir, poly)) {
        up.emplace_back(p, std::move(dir));
      }
    }
  }
  // Each up pair is an (open) ray region; open hulls of up to d rays form
  // the higher-dimensional unbounded regions.
  for (const auto& [p, dir] : up) {
    AppendUnique(&out, {GeneratorRegion::OpenRay(p, dir), disjunct_index,
                        DecompKind::kRay});
  }
  for (size_t k = 2; k <= d && k <= up.size(); ++k) {
    ForEachMultiset(up.size(), k, [&](const std::vector<size_t>& idx) {
      // Skip multisets that repeat a ray (they collapse to fewer rays).
      for (size_t a = 1; a < idx.size(); ++a) {
        if (idx[a] == idx[a - 1]) return;
      }
      std::vector<Vec> points;
      std::vector<Vec> rays;
      for (size_t i : idx) {
        points.push_back(up[i].first);
        rays.push_back(up[i].second);
      }
      AppendUnique(&out,
                   {GeneratorRegion(d, std::move(points), std::move(rays),
                                    /*open=*/true),
                    disjunct_index, DecompKind::kUnboundedHull});
    });
  }
  return out;
}

std::vector<DecompRegion> DecomposeFormula(const DnfFormula& formula) {
  std::vector<DecompRegion> out;
  for (size_t i = 0; i < formula.disjuncts().size(); ++i) {
    for (DecompRegion& r : DecomposeDisjunct(formula.disjuncts()[i], i)) {
      out.push_back(std::move(r));
    }
  }
  return out;
}

std::vector<size_t> RegionCountsByDimension(
    const std::vector<DecompRegion>& regions, size_t ambient_dim) {
  std::vector<size_t> counts(ambient_dim + 1, 0);
  for (const DecompRegion& r : regions) {
    const int dim = r.region.Dimension();
    LCDB_CHECK(dim >= 0 && dim <= static_cast<int>(ambient_dim));
    counts[static_cast<size_t>(dim)]++;
  }
  return counts;
}

}  // namespace lcdb
