#include "geometry/vertex_enumeration.h"

#include <algorithm>

#include "linalg/gauss.h"
#include "util/status.h"

namespace lcdb {

namespace {

/// Calls `visit` with every size-k index subset of {0, ..., n-1}.
template <typename Visitor>
void ForEachSubset(size_t n, size_t k, Visitor visit) {
  if (k > n) return;
  if (k == 0) {
    visit(std::vector<size_t>{});
    return;
  }
  std::vector<size_t> idx(k);
  for (size_t i = 0; i < k; ++i) idx[i] = i;
  while (true) {
    visit(idx);
    // Advance to next combination.
    size_t i = k;
    while (i > 0) {
      --i;
      if (idx[i] != i + n - k) break;
      if (i == 0) return;
    }
    if (idx[i] == i + n - k) return;
    ++idx[i];
    for (size_t j = i + 1; j < k; ++j) idx[j] = idx[j - 1] + 1;
  }
}

}  // namespace

std::vector<Vec> EnumerateIntersectionPoints(
    const std::vector<Hyperplane>& planes, size_t dim) {
  std::vector<Vec> points;
  if (dim == 0) return points;
  ForEachSubset(planes.size(), dim, [&](const std::vector<size_t>& idx) {
    Matrix a;
    Vec b;
    for (size_t i : idx) {
      Vec row(dim);
      for (size_t c = 0; c < dim; ++c) row[c] = Rational(planes[i].coeffs()[c]);
      a.AppendRow(row);
      b.push_back(Rational(planes[i].rhs()));
    }
    SolveResult r = SolveLinearSystem(a, b);
    if (r.outcome == SolveOutcome::kUnique) points.push_back(std::move(r.solution));
  });
  std::sort(points.begin(), points.end(),
            [](const Vec& p, const Vec& q) { return VecLexCompare(p, q) < 0; });
  points.erase(std::unique(points.begin(), points.end()), points.end());
  return points;
}

std::vector<Hyperplane> HyperplanesOf(const Conjunction& conj) {
  std::vector<Hyperplane> planes;
  for (const LinearAtom& atom : conj.atoms()) {
    if (atom.IsConstant()) continue;
    planes.push_back(Hyperplane::FromAtom(atom));
  }
  std::sort(planes.begin(), planes.end());
  planes.erase(std::unique(planes.begin(), planes.end()), planes.end());
  return planes;
}

std::vector<Vec> VerticesOf(const Conjunction& poly) {
  const size_t d = poly.num_vars();
  const Conjunction closure = poly.ClosureConjunction();
  std::vector<Vec> vertices;
  for (Vec& p : EnumerateIntersectionPoints(HyperplanesOf(poly), d)) {
    if (closure.Satisfies(p)) vertices.push_back(std::move(p));
  }
  return vertices;
}

}  // namespace lcdb
