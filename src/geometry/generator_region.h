#ifndef LCDB_GEOMETRY_GENERATOR_REGION_H_
#define LCDB_GEOMETRY_GENERATOR_REGION_H_

#include <string>
#include <vector>

#include "constraint/conjunction.h"

namespace lcdb {

/// A region given by generators rather than constraints:
///
///   { sum_i lambda_i p_i + sum_j mu_j r_j :
///     lambda_i REL 0, sum lambda_i = 1, mu_j REL 0 }
///
/// where REL is > for an *open* region (the paper's open convex hull,
/// Section 3 / Appendix A) and >= for its closure. Points p_i come from
/// vertex sets; rays r_j appear in the unbounded regions of Appendix A
/// (directions p - q of up(ψ)).
///
/// All predicates reduce to LP feasibility over the barycentric coordinates,
/// and the defining quantifier-free formula is obtained by eliminating those
/// coordinates with the library's own Fourier–Motzkin engine.
class GeneratorRegion {
 public:
  GeneratorRegion(size_t ambient_dim, std::vector<Vec> points,
                  std::vector<Vec> rays, bool open);

  /// Open convex hull of `points` (openconv of Section 3).
  static GeneratorRegion OpenHull(size_t ambient_dim, std::vector<Vec> points);
  /// Closed convex hull.
  static GeneratorRegion ClosedHull(size_t ambient_dim,
                                    std::vector<Vec> points);
  /// The open ray { p + a * dir : a > 0 } of Appendix A's up(ψ) pairs.
  static GeneratorRegion OpenRay(Vec p, Vec dir);
  /// Open segment between two points (endpoints excluded).
  static GeneratorRegion OpenSegment(const Vec& p, const Vec& q);
  /// Closed segment between two points.
  static GeneratorRegion ClosedSegment(const Vec& p, const Vec& q);

  size_t ambient_dim() const { return ambient_dim_; }
  const std::vector<Vec>& points() const { return points_; }
  const std::vector<Vec>& rays() const { return rays_; }
  bool open() const { return open_; }

  /// The closure (same generators, non-strict coordinates).
  GeneratorRegion ClosureRegion() const;

  /// Dimension of the affine hull of the region.
  int Dimension() const;

  /// Exact membership test.
  bool Contains(const Vec& point) const;

  /// True iff this region intersects `other`.
  bool Intersects(const GeneratorRegion& other) const;

  /// True iff this region intersects the solution set of `conj`.
  bool IntersectsConjunction(const Conjunction& conj) const;

  /// Adjacency in the paper's sense (Definition 4.1): some point of one
  /// region has every epsilon-neighbourhood meeting the other, i.e.
  /// A ∩ cl(B) or cl(A) ∩ B is nonempty.
  bool AdjacentTo(const GeneratorRegion& other) const;

  /// A point in the region (barycenter-like; regions are nonempty by
  /// construction as long as they have at least one point generator).
  Vec Witness() const;

  /// The defining quantifier-free formula, computed by eliminating the
  /// barycentric coordinates. For a convex region this is a single
  /// conjunction.
  Conjunction ToConjunction() const;

  std::string ToString() const;

  bool operator==(const GeneratorRegion& other) const;

 private:
  /// Builds the parametric constraint system in variables
  /// (x_0..x_{d-1}, lambda..., mu...) optionally shifted by `var_offset`
  /// for the lambda/mu block, with `x` either symbolic or pinned to a point.
  std::vector<LinearConstraint> ParametricSystem(size_t total_vars,
                                                 size_t lambda_offset,
                                                 bool closed) const;

  size_t ambient_dim_;
  std::vector<Vec> points_;
  std::vector<Vec> rays_;
  bool open_;
};

}  // namespace lcdb

#endif  // LCDB_GEOMETRY_GENERATOR_REGION_H_
