#include "geometry/hyperplane.h"

#include "util/status.h"

namespace lcdb {

Hyperplane Hyperplane::FromAtom(const LinearAtom& atom) {
  LCDB_CHECK_MSG(!atom.IsConstant(), "constant atom has no hyperplane");
  Vec coeffs(atom.num_vars());
  for (size_t i = 0; i < atom.num_vars(); ++i) {
    coeffs[i] = Rational(atom.coeffs()[i]);
  }
  // Rebuilding with kEq canonicalizes the orientation (positive leading
  // coefficient), so <= and >= versions of the same plane coincide.
  return Hyperplane(LinearAtom(coeffs, RelOp::kEq, Rational(atom.rhs())));
}

int Hyperplane::SideOf(const Vec& point) const {
  LCDB_CHECK(point.size() == num_vars());
  Rational lhs;
  for (size_t i = 0; i < num_vars(); ++i) {
    if (coeffs()[i].IsZero()) continue;
    lhs += Rational(coeffs()[i]) * point[i];
  }
  const Rational b(rhs());
  if (lhs < b) return -1;
  if (b < lhs) return 1;
  return 0;
}

LinearAtom Hyperplane::ToAtom(RelOp rel) const {
  Vec coeffs(num_vars());
  for (size_t i = 0; i < num_vars(); ++i) coeffs[i] = Rational(this->coeffs()[i]);
  return LinearAtom(coeffs, rel, Rational(rhs()));
}

SignVector PositionVector(const std::vector<Hyperplane>& planes,
                          const Vec& point) {
  SignVector sv(planes.size());
  for (size_t i = 0; i < planes.size(); ++i) {
    sv[i] = static_cast<int8_t>(planes[i].SideOf(point));
  }
  return sv;
}

std::string SignVectorToString(const SignVector& sv) {
  std::string out = "(";
  for (size_t i = 0; i < sv.size(); ++i) {
    if (i > 0) out += ", ";
    out += sv[i] > 0 ? "+" : (sv[i] < 0 ? "-" : "0");
  }
  out += ")";
  return out;
}

Conjunction SignVectorConjunction(const std::vector<Hyperplane>& planes,
                                  const SignVector& sv) {
  LCDB_CHECK(planes.size() == sv.size());
  LCDB_CHECK(!planes.empty());
  std::vector<LinearAtom> atoms;
  atoms.reserve(planes.size());
  for (size_t i = 0; i < planes.size(); ++i) {
    RelOp rel = sv[i] > 0 ? RelOp::kGt : (sv[i] < 0 ? RelOp::kLt : RelOp::kEq);
    atoms.push_back(planes[i].ToAtom(rel));
  }
  return Conjunction(planes[0].num_vars(), std::move(atoms));
}

bool InClosureOf(const SignVector& sv_f, const SignVector& sv_g) {
  LCDB_CHECK(sv_f.size() == sv_g.size());
  for (size_t i = 0; i < sv_f.size(); ++i) {
    if (sv_f[i] != 0 && sv_f[i] != sv_g[i]) return false;
  }
  return true;
}

}  // namespace lcdb
