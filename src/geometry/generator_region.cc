#include "geometry/generator_region.h"

#include <algorithm>

#include "linalg/gauss.h"
#include "engine/kernel.h"
#include "qe/fourier_motzkin.h"
#include "util/status.h"

namespace lcdb {

GeneratorRegion::GeneratorRegion(size_t ambient_dim, std::vector<Vec> points,
                                 std::vector<Vec> rays, bool open)
    : ambient_dim_(ambient_dim),
      points_(std::move(points)),
      rays_(std::move(rays)),
      open_(open) {
  LCDB_CHECK_MSG(!points_.empty(), "a generator region needs a point");
  for (const Vec& p : points_) LCDB_CHECK(p.size() == ambient_dim_);
  for (const Vec& r : rays_) LCDB_CHECK(r.size() == ambient_dim_);
  // Deduplicate generators; multiset choices (Appendix A allows repeated
  // vertices) collapse to the same region.
  std::sort(points_.begin(), points_.end(),
            [](const Vec& a, const Vec& b) { return VecLexCompare(a, b) < 0; });
  points_.erase(std::unique(points_.begin(), points_.end()), points_.end());
  std::sort(rays_.begin(), rays_.end(),
            [](const Vec& a, const Vec& b) { return VecLexCompare(a, b) < 0; });
  rays_.erase(std::unique(rays_.begin(), rays_.end()), rays_.end());
}

GeneratorRegion GeneratorRegion::OpenHull(size_t ambient_dim,
                                          std::vector<Vec> points) {
  return GeneratorRegion(ambient_dim, std::move(points), {}, /*open=*/true);
}

GeneratorRegion GeneratorRegion::ClosedHull(size_t ambient_dim,
                                            std::vector<Vec> points) {
  return GeneratorRegion(ambient_dim, std::move(points), {}, /*open=*/false);
}

GeneratorRegion GeneratorRegion::OpenRay(Vec p, Vec dir) {
  const size_t d = p.size();
  LCDB_CHECK_MSG(!VecIsZero(dir), "ray needs a nonzero direction");
  return GeneratorRegion(d, {std::move(p)}, {std::move(dir)}, /*open=*/true);
}

GeneratorRegion GeneratorRegion::OpenSegment(const Vec& p, const Vec& q) {
  return OpenHull(p.size(), {p, q});
}

GeneratorRegion GeneratorRegion::ClosedSegment(const Vec& p, const Vec& q) {
  return ClosedHull(p.size(), {p, q});
}

GeneratorRegion GeneratorRegion::ClosureRegion() const {
  return GeneratorRegion(ambient_dim_, points_, rays_, /*open=*/false);
}

int GeneratorRegion::Dimension() const {
  std::vector<Vec> span = points_;
  for (const Vec& r : rays_) span.push_back(VecAdd(points_[0], r));
  return AffineDimension(span);
}

std::vector<LinearConstraint> GeneratorRegion::ParametricSystem(
    size_t total_vars, size_t lambda_offset, bool closed) const {
  const size_t k = points_.size();
  const size_t m = rays_.size();
  LCDB_CHECK(lambda_offset + k + m <= total_vars);
  std::vector<LinearConstraint> out;
  const RelOp positive = (open_ && !closed) ? RelOp::kGt : RelOp::kGe;
  // sum lambda = 1.
  {
    Vec row(total_vars);
    for (size_t j = 0; j < k; ++j) row[lambda_offset + j] = Rational(1);
    out.emplace_back(std::move(row), RelOp::kEq, Rational(1));
  }
  for (size_t j = 0; j < k + m; ++j) {
    Vec row(total_vars);
    row[lambda_offset + j] = Rational(1);
    out.emplace_back(std::move(row), positive, Rational(0));
  }
  return out;
}

bool GeneratorRegion::Contains(const Vec& point) const {
  LCDB_CHECK(point.size() == ambient_dim_);
  const size_t k = points_.size();
  const size_t m = rays_.size();
  const size_t total = k + m;
  std::vector<LinearConstraint> system =
      ParametricSystem(total, /*lambda_offset=*/0, /*closed=*/false);
  // Coordinate equations: sum_j lambda_j p_j[i] + sum_l mu_l r_l[i] = x_i.
  for (size_t i = 0; i < ambient_dim_; ++i) {
    Vec row(total);
    for (size_t j = 0; j < k; ++j) row[j] = points_[j][i];
    for (size_t l = 0; l < m; ++l) row[k + l] = rays_[l][i];
    system.emplace_back(std::move(row), RelOp::kEq, point[i]);
  }
  return CurrentKernel().CheckFeasibility(total, system).feasible;
}

bool GeneratorRegion::Intersects(const GeneratorRegion& other) const {
  LCDB_CHECK(ambient_dim_ == other.ambient_dim_);
  const size_t k1 = points_.size(), m1 = rays_.size();
  const size_t k2 = other.points_.size(), m2 = other.rays_.size();
  const size_t total = k1 + m1 + k2 + m2;
  std::vector<LinearConstraint> system =
      ParametricSystem(total, /*lambda_offset=*/0, /*closed=*/false);
  {
    std::vector<LinearConstraint> second =
        other.ParametricSystem(total, /*lambda_offset=*/k1 + m1,
                               /*closed=*/false);
    system.insert(system.end(), second.begin(), second.end());
  }
  // Coordinate equations: point of A equals point of B.
  for (size_t i = 0; i < ambient_dim_; ++i) {
    Vec row(total);
    for (size_t j = 0; j < k1; ++j) row[j] = points_[j][i];
    for (size_t l = 0; l < m1; ++l) row[k1 + l] = rays_[l][i];
    for (size_t j = 0; j < k2; ++j) row[k1 + m1 + j] = -other.points_[j][i];
    for (size_t l = 0; l < m2; ++l) row[k1 + m1 + k2 + l] = -other.rays_[l][i];
    system.emplace_back(std::move(row), RelOp::kEq, Rational(0));
  }
  return CurrentKernel().CheckFeasibility(total, system).feasible;
}

bool GeneratorRegion::IntersectsConjunction(const Conjunction& conj) const {
  LCDB_CHECK(conj.num_vars() == ambient_dim_);
  const size_t k = points_.size();
  const size_t m = rays_.size();
  const size_t total = ambient_dim_ + k + m;
  std::vector<LinearConstraint> system =
      ParametricSystem(total, /*lambda_offset=*/ambient_dim_,
                       /*closed=*/false);
  for (size_t i = 0; i < ambient_dim_; ++i) {
    Vec row(total);
    row[i] = Rational(1);
    for (size_t j = 0; j < k; ++j) row[ambient_dim_ + j] = -points_[j][i];
    for (size_t l = 0; l < m; ++l) row[ambient_dim_ + k + l] = -rays_[l][i];
    system.emplace_back(std::move(row), RelOp::kEq, Rational(0));
  }
  for (const LinearAtom& atom : conj.atoms()) {
    LinearConstraint c = atom.ToLinearConstraint();
    c.coeffs.resize(total, Rational(0));
    system.push_back(std::move(c));
  }
  return CurrentKernel().CheckFeasibility(total, system).feasible;
}

bool GeneratorRegion::AdjacentTo(const GeneratorRegion& other) const {
  return ClosureRegion().Intersects(other) ||
         Intersects(other.ClosureRegion());
}

Vec GeneratorRegion::Witness() const {
  Vec out(ambient_dim_);
  const Rational weight(1, static_cast<int64_t>(points_.size()));
  for (const Vec& p : points_) out = VecAdd(out, VecScale(weight, p));
  for (const Vec& r : rays_) out = VecAdd(out, r);
  return out;
}

Conjunction GeneratorRegion::ToConjunction() const {
  const size_t k = points_.size();
  const size_t m = rays_.size();
  const size_t total = ambient_dim_ + k + m;
  std::vector<LinearAtom> atoms;
  for (const LinearConstraint& c :
       ParametricSystem(total, ambient_dim_, /*closed=*/false)) {
    atoms.emplace_back(c.coeffs, c.rel, c.rhs);
  }
  for (size_t i = 0; i < ambient_dim_; ++i) {
    Vec row(total);
    row[i] = Rational(1);
    for (size_t j = 0; j < k; ++j) row[ambient_dim_ + j] = -points_[j][i];
    for (size_t l = 0; l < m; ++l) row[ambient_dim_ + k + l] = -rays_[l][i];
    atoms.emplace_back(row, RelOp::kEq, Rational(0));
  }
  DnfFormula parametric(total, {Conjunction(total, std::move(atoms))});
  std::vector<size_t> eliminate;
  for (size_t v = ambient_dim_; v < total; ++v) eliminate.push_back(v);
  DnfFormula projected = ExistsVariables(parametric, std::move(eliminate));
  for (size_t v = total; v-- > ambient_dim_;) {
    projected = DropVariable(projected, v);
  }
  if (projected.disjuncts().empty()) {
    // Empty region (cannot happen for well-formed generators, but keep the
    // representation total): the false conjunction.
    return Conjunction(ambient_dim_,
                       {LinearAtom(Vec(ambient_dim_), RelOp::kLt, Rational(0))});
  }
  LCDB_CHECK_MSG(projected.disjuncts().size() == 1,
                 "projection of a convex region must be one conjunction");
  Conjunction result = projected.disjuncts()[0];
  result.RemoveRedundantAtoms();
  return result;
}

std::string GeneratorRegion::ToString() const {
  std::string out = open_ ? "open{" : "closed{";
  for (size_t i = 0; i < points_.size(); ++i) {
    if (i > 0) out += ", ";
    out += VecToString(points_[i]);
  }
  for (const Vec& r : rays_) {
    out += ", ray ";
    out += VecToString(r);
  }
  out += "}";
  return out;
}

bool GeneratorRegion::operator==(const GeneratorRegion& other) const {
  return ambient_dim_ == other.ambient_dim_ && open_ == other.open_ &&
         points_ == other.points_ && rays_ == other.rays_;
}

}  // namespace lcdb
