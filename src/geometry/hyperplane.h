#ifndef LCDB_GEOMETRY_HYPERPLANE_H_
#define LCDB_GEOMETRY_HYPERPLANE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraint/conjunction.h"
#include "constraint/linear_atom.h"

namespace lcdb {

/// An oriented hyperplane  sum coeffs_i x_i = rhs  in canonical form
/// (integer coefficients, gcd one, positive leading coefficient). The
/// canonical form makes the hyperplane set 𝔥(S) of Section 3 a *set*: two
/// atoms touching the same geometric hyperplane yield equal Hyperplane
/// objects, and "above"/"below" (h+, h-) are well defined by the canonical
/// orientation.
class Hyperplane {
 public:
  /// The hyperplane obtained by replacing the atom's relation with equality
  /// — exactly the construction of 𝔥(S). The atom must not be constant.
  static Hyperplane FromAtom(const LinearAtom& atom);

  size_t num_vars() const { return equality_.num_vars(); }
  const std::vector<BigInt>& coeffs() const { return equality_.coeffs(); }
  const BigInt& rhs() const { return equality_.rhs(); }

  /// Position of a point: +1 above (sum > rhs), 0 on, -1 below — the
  /// components v_i(p) of the paper's position vectors.
  int SideOf(const Vec& point) const;

  /// The atom `this REL rhs` for synthesizing face formulas from position
  /// vectors.
  LinearAtom ToAtom(RelOp rel) const;

  std::string ToString(const std::vector<std::string>& var_names = {}) const {
    return equality_.ToString(var_names);
  }

  bool operator==(const Hyperplane& other) const {
    return equality_ == other.equality_;
  }
  bool operator<(const Hyperplane& other) const {
    return equality_ < other.equality_;
  }
  size_t Hash() const { return equality_.Hash(); }

 private:
  explicit Hyperplane(LinearAtom equality) : equality_(std::move(equality)) {}

  LinearAtom equality_;  // canonical equality atom
};

/// A position vector (Section 3): the vector of sides of a point w.r.t. an
/// ordered list of hyperplanes. Entries are -1, 0, +1.
using SignVector = std::vector<int8_t>;

/// Computes the position vector of `point` w.r.t. `planes`.
SignVector PositionVector(const std::vector<Hyperplane>& planes,
                          const Vec& point);

/// Renders e.g. "(+, 0, -)".
std::string SignVectorToString(const SignVector& sv);

/// The conjunction of atoms asserting position `sv` w.r.t. `planes` — the
/// formula defining a face, read off the incidence-graph data as in the
/// proof of Theorem 4.3.
Conjunction SignVectorConjunction(const std::vector<Hyperplane>& planes,
                                  const SignVector& sv);

/// Sign-vector closure order: F is in the closure of G iff every nonzero
/// entry of F's vector agrees with G's (zeros of F may "absorb" anything is
/// NOT allowed — F's zero entries are exactly where F lies on the plane).
/// Precisely: for all i, sv_f[i] == sv_g[i] or sv_f[i] == 0.
bool InClosureOf(const SignVector& sv_f, const SignVector& sv_g);

}  // namespace lcdb

#endif  // LCDB_GEOMETRY_HYPERPLANE_H_
