#ifndef LCDB_GEOMETRY_VERTEX_ENUMERATION_H_
#define LCDB_GEOMETRY_VERTEX_ENUMERATION_H_

#include <vector>

#include "constraint/conjunction.h"
#include "geometry/hyperplane.h"

namespace lcdb {

/// All points that arise as the *unique* intersection of `dim`-many
/// hyperplanes from `planes` (deduplicated, lexicographically sorted).
/// This is the first step of the Appendix A decomposition: "For each d-tuple
/// of atoms from 𝔥(ψ) we compute the intersection of the hyperplanes."
std::vector<Vec> EnumerateIntersectionPoints(
    const std::vector<Hyperplane>& planes, size_t dim);

/// The hyperplane set 𝔥 of a conjunction: one canonical hyperplane per
/// non-constant atom, deduplicated (Section 3's 𝔥(S) restricted to one
/// disjunct).
std::vector<Hyperplane> HyperplanesOf(const Conjunction& conj);

/// The vertex set vert(ψ) of Appendix A: intersection points of d-tuples of
/// hyperplanes of `poly` that lie in the closure of `poly`.
std::vector<Vec> VerticesOf(const Conjunction& poly);

}  // namespace lcdb

#endif  // LCDB_GEOMETRY_VERTEX_ENUMERATION_H_
