#include "geometry/predicates.h"

#include "engine/kernel.h"
#include "util/status.h"

namespace lcdb {

Conjunction RelativeInterior(const Conjunction& poly) {
  const size_t n = poly.num_vars();
  std::vector<LinearAtom> atoms;
  atoms.reserve(poly.atoms().size());
  std::vector<LinearConstraint> closure;
  for (const LinearAtom& atom : poly.atoms()) {
    closure.push_back(atom.ClosureAtom().ToLinearConstraint());
  }
  for (const LinearAtom& atom : poly.atoms()) {
    if (atom.rel() == RelOp::kEq) {
      atoms.push_back(atom);
      continue;
    }
    // Implicit equality test: can the atom be strict somewhere on poly?
    std::vector<LinearConstraint> system = closure;
    LinearConstraint strict = atom.ToLinearConstraint();
    strict.rel = atom.rel() == RelOp::kLe || atom.rel() == RelOp::kLt
                     ? RelOp::kLt
                     : RelOp::kGt;
    system.push_back(strict);
    if (CurrentKernel().CheckFeasibility(n, system).feasible) {
      // Regular inequality: strictify for the relative interior.
      Vec coeffs(n);
      for (size_t i = 0; i < n; ++i) coeffs[i] = Rational(atom.coeffs()[i]);
      atoms.emplace_back(coeffs, strict.rel, Rational(atom.rhs()));
    } else {
      // Holds with equality everywhere: part of the affine support.
      Vec coeffs(n);
      for (size_t i = 0; i < n; ++i) coeffs[i] = Rational(atom.coeffs()[i]);
      atoms.emplace_back(coeffs, RelOp::kEq, Rational(atom.rhs()));
    }
  }
  return Conjunction(n, std::move(atoms));
}

bool RayInClosure(const Vec& p, const Vec& dir, const Conjunction& poly) {
  const Conjunction closure = poly.ClosureConjunction();
  if (!closure.Satisfies(p)) return false;
  for (const LinearAtom& atom : closure.atoms()) {
    Vec coeffs(atom.num_vars());
    for (size_t i = 0; i < atom.num_vars(); ++i) {
      coeffs[i] = Rational(atom.coeffs()[i]);
    }
    const Rational slope = Dot(coeffs, dir);
    switch (atom.rel()) {
      case RelOp::kLe:
        if (slope.Sign() > 0) return false;
        break;
      case RelOp::kEq:
        if (slope.Sign() != 0) return false;
        break;
      default:
        LCDB_CHECK_MSG(false, "closure atoms are <= or =");
    }
  }
  return true;
}

Rational MaxAbsCoordinate(const std::vector<Vec>& points) {
  Rational c(0);
  for (const Vec& p : points) {
    for (const Rational& x : p) {
      if (c < x.Abs()) c = x.Abs();
    }
  }
  return c;
}

std::vector<LinearAtom> CubeAtoms(size_t dim, const Rational& c) {
  const Rational bound = (c + Rational(1)) * Rational(2);
  std::vector<LinearAtom> atoms;
  atoms.reserve(2 * dim);
  for (size_t i = 0; i < dim; ++i) {
    Vec row(dim);
    row[i] = Rational(1);
    atoms.emplace_back(row, RelOp::kEq, bound);
    atoms.emplace_back(row, RelOp::kEq, -bound);
  }
  return atoms;
}

std::vector<LinearAtom> InnerCubeAtoms(size_t dim, const Rational& c) {
  const Rational bound = (c + Rational(1)) * Rational(2);
  std::vector<LinearAtom> atoms;
  atoms.reserve(2 * dim);
  for (size_t i = 0; i < dim; ++i) {
    Vec row(dim);
    row[i] = Rational(1);
    atoms.emplace_back(row, RelOp::kLt, bound);
    atoms.emplace_back(row, RelOp::kGt, -bound);
  }
  return atoms;
}

bool IsBoundedPolyhedron(const Conjunction& poly) {
  return CurrentKernel().IsBoundedSystem(poly.num_vars(), poly.ToConstraints());
}

}  // namespace lcdb
